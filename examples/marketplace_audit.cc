// Marketplace audit: a data federation operator pays 8 providers for a
// bank term-deposit prediction model and re-scores contributions every
// settlement round. Between rounds, one provider pads its dataset with
// exact duplicates hoping to inflate volume-based payouts.
//
// The audit compares the micro (volume-proportional, Eq. 5) and macro
// (replication-robust, Eq. 6) allocations across rounds: the cheater's
// micro score jumps while its macro score stays flat — the replication
// fingerprint of paper §IV-A. Settling payouts on the macro scheme makes
// the padding worthless.

#include <cstdio>

#include "ctfl/core/pipeline.h"
#include "ctfl/data/gen/benchmarks.h"
#include "ctfl/data/split.h"
#include "ctfl/fl/adversary.h"
#include "ctfl/fl/partition.h"

namespace {

ctfl::CtflConfig AuditConfig() {
  ctfl::CtflConfig config;
  config.federated = false;
  config.central.epochs = 20;
  config.central.learning_rate = 0.05;
  config.net.logic_layers = {{48, 48}};
  config.tracer.tau_w = 0.9;
  config.macro_delta = 1;
  return config;
}

}  // namespace

int main() {
  using namespace ctfl;

  // The bank marketing task (synthetic equivalent; see DESIGN.md §5).
  const Dataset all = MakeBenchmark("bank", 3000, /*seed=*/21).value();
  Rng rng(22);
  const TrainTestSplit split = StratifiedSplit(all, 0.2, rng);
  Rng prng(23);
  std::vector<Dataset> providers =
      PartitionSkewSample(split.train, 8, 8.0, prng);

  // Round 1: everyone honest.
  const Federation round1 = MakeFederation(providers);
  const CtflReport before = RunCtfl(round1, split.test, AuditConfig()).value();

  // Between rounds, provider 5 pads its data: +100% exact duplicates.
  Rng cheat_rng(24);
  const size_t added = ReplicateData(providers[5], 1.0, cheat_rng);
  std::printf("between rounds, P5 quietly duplicated %zu records\n\n",
              added);

  // Round 2: same data everywhere except P5's padding.
  const Federation round2 = MakeFederation(std::move(providers));
  const CtflReport after = RunCtfl(round2, split.test, AuditConfig()).value();

  std::printf("round-over-round contribution audit (accuracy %.3f -> "
              "%.3f):\n\n",
              before.test_accuracy, after.test_accuracy);
  std::printf("provider   micro r1 -> r2 (delta)      macro r1 -> r2 "
              "(delta)\n");
  int suspect = -1;
  double biggest_jump = 0.0;
  for (const Participant& p : round2) {
    const double dm = after.micro_scores[p.id] - before.micro_scores[p.id];
    const double dM = after.macro_scores[p.id] - before.macro_scores[p.id];
    std::printf("%-8s  %.4f -> %.4f (%+.4f)     %.4f -> %.4f (%+.4f)\n",
                p.name.c_str(), before.micro_scores[p.id],
                after.micro_scores[p.id], dm, before.macro_scores[p.id],
                after.macro_scores[p.id], dM);
    // The fingerprint: micro jump not mirrored by the macro allocation.
    const double jump = dm - dM;
    if (jump > biggest_jump) {
      biggest_jump = jump;
      suspect = p.id;
    }
  }
  std::printf(
      "\nAudit verdict: P%d's micro credit jumped %+0.4f more than its\n"
      "macro credit — volume grew without any new rule coverage, i.e.\n"
      "duplicated or near-duplicate records. Settle payouts with the\n"
      "macro allocation (replication gains it nothing) and ask P%d to\n"
      "deduplicate.\n",
      suspect, biggest_jump, suspect);
  return 0;
}
