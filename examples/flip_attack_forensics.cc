// Label-flip forensics: one participant in an income-prediction
// federation poisons part of its data with flipped labels (Biggio-style
// attack). Black-box valuation barely moves — but CTFL's loss tracing
// (Eq. 5 with the indicator inverted, paper §IV-A) attributes the model's
// misclassifications to the records that taught them, flagging the
// attacker and even pointing at the poisoned records.

#include <cstdio>

#include "ctfl/core/pipeline.h"
#include "ctfl/data/gen/benchmarks.h"
#include "ctfl/data/split.h"
#include "ctfl/fl/adversary.h"
#include "ctfl/fl/partition.h"

int main() {
  using namespace ctfl;

  const Dataset all = MakeBenchmark("adult", 3000, /*seed=*/31).value();
  Rng rng(32);
  const TrainTestSplit split = StratifiedSplit(all, 0.2, rng);
  Rng prng(33);
  std::vector<Dataset> clients = PartitionUniform(split.train, 6, prng);

  // Participant 3 flips 80% of its labels.
  Rng attack_rng(34);
  const size_t flipped = FlipLabels(clients[3], 0.8, attack_rng);
  std::printf("participant P3 flipped %zu of its labels\n\n", flipped);

  const Federation federation = MakeFederation(std::move(clients));

  CtflConfig config;
  config.federated = false;
  config.central.epochs = 20;
  config.central.learning_rate = 0.05;
  config.net.logic_layers = {{48, 48}};
  config.tracer.tau_w = 0.85;
  const CtflReport report = RunCtfl(federation, split.test, config).value();

  std::printf("model accuracy: %.3f\n\n", report.test_accuracy);

  LossAnalysisConfig loss_config;
  loss_config.flag_threshold = 0.30;
  const LossReport loss = AnalyzeLoss(report.trace, loss_config);
  std::printf("%s\n", FormatLossReport(loss).c_str());

  if (loss.flagged.empty()) {
    std::printf("no participant crossed the suspicion threshold.\n");
    return 0;
  }
  for (int p : loss.flagged) {
    // Which of the flagged participant's records backed the failures?
    const auto& miss = report.trace.train_match_miss[p];
    size_t implicated = 0;
    for (int count : miss) implicated += count > 0;
    std::printf(
        "P%d flagged: %zu of its %zu records were related to\n"
        "misclassified test instances — candidates for exclusion before\n"
        "the next training round.\n",
        p, implicated, miss.size());
  }
  return 0;
}
