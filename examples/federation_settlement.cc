// Federation settlement: a full operating round of a CTFL-powered data
// federation, combining most of the library's surface:
//   1. federated training with secure aggregation (server never sees an
//      individual client update),
//   2. contribution tracing with differentially-private activation
//      uploads,
//   3. loss-tracing forensics,
//   4. budget distribution via the incentive mechanism (flagged
//      participants forfeit),
//   5. publishing the round's artifacts: the global model file and the
//      human-readable rule report.

#include <cstdio>

#include "ctfl/core/incentive.h"
#include "ctfl/core/pipeline.h"
#include "ctfl/data/gen/benchmarks.h"
#include "ctfl/data/split.h"
#include "ctfl/fl/adversary.h"
#include "ctfl/fl/partition.h"
#include "ctfl/nn/serialize.h"
#include "ctfl/rules/extraction.h"

int main() {
  using namespace ctfl;

  // Federation of 6 providers on the adult income task; one of them is a
  // label flipper.
  const Dataset all = MakeBenchmark("adult", 2400, /*seed=*/71).value();
  Rng rng(72);
  const TrainTestSplit split = StratifiedSplit(all, 0.2, rng);
  Rng prng(73);
  std::vector<Dataset> clients = PartitionSkewSample(split.train, 6, 4.0, prng);
  Rng attack_rng(74);
  FlipLabels(clients[4], 0.8, attack_rng);
  const Federation federation = MakeFederation(std::move(clients));

  // 1-2. Train federated w/ secure aggregation; trace with per-bit DP.
  CtflConfig config;
  config.federated = true;
  config.fedavg.rounds = 4;
  config.fedavg.local_epochs = 3;
  config.fedavg.local.learning_rate = 0.05;
  config.fedavg.secure_aggregation = true;
  config.net.logic_layers = {{48, 48}};
  config.tracer.tau_w = 0.85;
  config.tracer.dp_epsilon = 6.0;  // per-bit randomized response
  const CtflReport report = RunCtfl(federation, split.test, config).value();
  std::printf("round complete: model accuracy %.3f "
              "(secure aggregation ON, activation DP epsilon %.1f)\n\n",
              report.test_accuracy, config.tracer.dp_epsilon);

  // 3-4. Forensics + payouts.
  IncentiveConfig incentive;
  incentive.budget = 10000.0;
  incentive.use_macro = true;            // replication-robust settlement
  incentive.participation_floor = 200.0;
  incentive.flagged_penalty = 0.0;       // poisoners forfeit
  incentive.loss.flag_threshold = 0.30;
  const std::vector<Payout> payouts = ComputePayouts(report, incentive);
  std::printf("%s\n", FormatPayouts(payouts).c_str());

  // 5. Publish the round's artifacts.
  const std::string model_path = "/tmp/ctfl_round_model.txt";
  const std::string rules_path = "/tmp/ctfl_round_rules.txt";
  if (SaveLogicalNet(report.model, model_path).ok() &&
      ExportRulesText(report.model, rules_path, 0.01).ok()) {
    std::printf("published %s and %s\n", model_path.c_str(),
                rules_path.c_str());
  }
  // Round-trip sanity: anyone can reload and verify the published model.
  const Result<LogicalNet> reloaded =
      LoadLogicalNet(split.test.schema(), model_path);
  if (reloaded.ok()) {
    std::printf("reloaded model accuracy: %.3f (matches: %s)\n",
                reloaded->Accuracy(split.test),
                reloaded->Accuracy(split.test) == report.test_accuracy
                    ? "yes"
                    : "no");
  }
  return 0;
}
