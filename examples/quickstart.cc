// Quickstart: estimate participant contributions on the tic-tac-toe
// endgame dataset in ~20 lines of CTFL API.
//
//   1. Build a federation (here: 3 skew-label partitions of the dataset).
//   2. RunCtfl: trains ONE global rule-based model with gradient grafting,
//      traces each participant's share of the test accuracy via activated
//      rules, and allocates micro (volume-proportional) and macro
//      (replication-robust) credits.
//   3. Inspect scores and the rules behind them.

#include <cstdio>

#include "ctfl/core/interpret.h"
#include "ctfl/core/pipeline.h"
#include "ctfl/data/gen/tictactoe.h"
#include "ctfl/data/split.h"
#include "ctfl/fl/partition.h"

int main() {
  using namespace ctfl;

  // 1. Data: the exact UCI tic-tac-toe endgame set, split 75/25, with the
  //    training side partitioned across 3 participants by label skew.
  const Dataset full = GenerateTicTacToe();
  Rng rng(7);
  const TrainTestSplit split = StratifiedSplit(full, 0.25, rng);
  Rng partition_rng(8);
  const Federation federation =
      MakeFederation(PartitionSkewLabel(split.train, 3, 0.6, partition_rng));

  // 2. One call: train + trace + allocate.
  CtflConfig config;
  config.federated = false;          // central training of the global model
  config.central.epochs = 50;
  config.central.learning_rate = 0.05;
  config.net.logic_layers = {{48, 48}};
  config.tracer.tau_w = 0.9;         // Eq. 4 rule-overlap threshold
  const CtflReport report = RunCtfl(federation, split.test, config).value();

  // 3. Results.
  std::printf("global model test accuracy: %.3f\n\n", report.test_accuracy);
  std::printf("participant   records  pos-rate   micro     macro\n");
  for (const Participant& p : federation) {
    std::printf("%-12s %8zu  %7.2f   %.4f    %.4f\n", p.name.c_str(),
                p.data.size(), p.data.PositiveRate(),
                report.micro_scores[p.id], report.macro_scores[p.id]);
  }

  // Why did each participant earn its score? Ask the tracer.
  const ExtractionResult rules = ExtractRules(report.model);
  const auto profiles = BuildProfiles(report.trace, /*top_k=*/2);
  std::printf("\n");
  for (const ParticipantProfile& profile : profiles) {
    std::printf("%s\n", FormatProfile(profile, rules, *full.schema(),
                                      federation[profile.participant].name)
                            .c_str());
  }
  return 0;
}
