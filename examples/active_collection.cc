// Active data collection: after a CTFL run, the federation wants to know
// *what data to recruit next*. Misclassified test instances with no
// related training records mark uncovered scenarios; aggregating their
// activated rules yields a concrete shopping list (paper §IV-B "Guide
// Data Collection"). This example deliberately starves the federation of
// one region of the feature space, then shows the guidance pointing
// straight at it.

#include <cstdio>

#include "ctfl/core/interpret.h"
#include "ctfl/core/pipeline.h"
#include "ctfl/data/gen/synthetic.h"
#include "ctfl/fl/partition.h"

int main() {
  using namespace ctfl;

  // Task: two rules; the "rare" rule only fires when temperature > 80.
  SyntheticSpec spec;
  spec.schema = std::make_shared<FeatureSchema>(
      std::vector<FeatureSpec>{
          FeatureSchema::Continuous("temperature", 0, 100),
          FeatureSchema::Continuous("humidity", 0, 100),
      },
      "normal", "alert");
  spec.samplers = {
      FeatureSampler{FeatureSampler::Kind::kUniform, 0, 0, {}},
      FeatureSampler{FeatureSampler::Kind::kUniform, 0, 0, {}}};
  spec.rules = {{{{0, GtPredicate::Op::kGt, 80.0}}, 1, 2.0},
                {{{1, GtPredicate::Op::kGt, 90.0}}, 1, 2.0},
                {{{0, GtPredicate::Op::kLt, 80.0},
                  {1, GtPredicate::Op::kLt, 90.0}},
                 0,
                 1.0}};
  Rng rng(41);

  // Training data is censored: participants never saw temperature > 80.
  Dataset censored(spec.schema);
  while (censored.size() < 1200) {
    const Dataset batch = GenerateSynthetic(spec, 128, rng);
    for (const Instance& inst : batch.instances()) {
      if (inst.values[0] <= 80.0 && censored.size() < 1200) {
        censored.AppendUnchecked(inst);
      }
    }
  }
  Rng prng(42);
  const Federation federation =
      MakeFederation(PartitionUniform(censored, 4, prng));

  // The reserved test set is NOT censored — it contains hot-weather cases.
  const Dataset test = GenerateSynthetic(spec, 400, rng);

  CtflConfig config;
  config.federated = false;
  config.central.epochs = 25;
  config.central.learning_rate = 0.05;
  config.net.logic_layers = {{24, 24}};
  // Strict tracing: a test instance counts as covered only when training
  // data matches ALL of its activated supporting rules — coverage gaps
  // (like the censored hot-weather region) then surface as uncovered.
  config.tracer.tau_w = 1.0;
  const CtflReport report = RunCtfl(federation, test, config).value();

  std::printf("model accuracy: %.3f (hot-weather alerts are being "
              "missed)\n\n",
              report.test_accuracy);

  const ExtractionResult rules = ExtractRules(report.model);
  const CollectionGuidance guidance =
      GuideDataCollection(report.trace, /*top_k=*/6);
  std::printf("%s\n",
              FormatGuidance(guidance, rules, *spec.schema).c_str());
  std::printf(
      "Expected reading: the guidance rules reference high 'temperature'\n"
      "thresholds — exactly the region the training data never covered.\n"
      "The federation should recruit participants with hot-weather data.\n");
  return 0;
}
