#!/usr/bin/env bash
# Runs the perf-trajectory benchmark suite and writes the machine-readable
# BENCH_*.json files the CI perf gate (tools/perf_gate.py) compares against
# their committed baselines:
#
#   BENCH_trace.json   BM_TracePass/{legacy,blocked}   Eq. 4 tracing pass
#   BENCH_fedavg.json  BM_FedAvgRound/threads:*        one federated round
#   BENCH_query.json   BM_QueryRelated/* + BM_BundleLoad  bundle serving
#   BENCH_serve.json   BM_Serve/related-test/connections:N  resident query
#                      service soak (ctfl_serve + ctfl_query_client --load:
#                      requests/sec + p50/p99 latency over a live socket)
#   BENCH_stream.json  BM_StreamFold/{fold,recompute} + BM_StreamFoldEmpty
#                      O(delta) incremental score fold vs full pipeline
#                      recompute (acceptance: fold >= 10x cheaper)
#
# Guard rails:
#   * The build is forced to (and verified as) CMAKE_BUILD_TYPE=Release —
#     debug numbers must never enter a perf trajectory. The benchmark
#     binary additionally stamps "ctfl_build_type" into each JSON context
#     (from its own NDEBUG), and this script refuses to continue if that
#     says anything but "release".
#   * The repo git revision is stamped into each JSON context as
#     "ctfl_git_revision" so a trajectory point names the code it measured.
#
# Usage: tools/bench_suite.sh [build-dir] [out-dir] [suite]
#   build-dir defaults to build-release (configured Release if missing).
#   out-dir   defaults to the repo root (BENCH_*.json land next to the
#             committed baselines).
#   suite     trace|fedavg|query|serve|stream|all (default all).
# Extra benchmark flags (e.g. --benchmark_min_time=0.05s for CI smoke
# runs) can be passed via CTFL_BENCH_EXTRA_ARGS. The serve suite's load
# shape is tuned via CTFL_SERVE_BENCH_CONNECTIONS (default 8) and
# CTFL_SERVE_BENCH_REQUESTS (per connection, default 200).

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build-release}"
OUT_DIR="${2:-${REPO_ROOT}}"
SUITE="${3:-all}"
EXTRA_ARGS=(${CTFL_BENCH_EXTRA_ARGS:-})

case "${SUITE}" in
  trace|fedavg|query|serve|stream|all) ;;
  *)
    echo "bench_suite: unknown suite '${SUITE}' (want trace|fedavg|query|serve|stream|all)" >&2
    exit 2
    ;;
esac

cmake -S "${REPO_ROOT}" -B "${BUILD_DIR}" -DCMAKE_BUILD_TYPE=Release >/dev/null
# Belt and braces: an existing build dir configured Debug would silently
# win over the -D above in older CMake workflows; verify the cache.
CACHED_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "${BUILD_DIR}/CMakeCache.txt")"
if [[ "${CACHED_TYPE}" != "Release" ]]; then
  echo "bench_suite: ${BUILD_DIR} is configured '${CACHED_TYPE}', not Release" >&2
  echo "bench_suite: use a dedicated Release build dir (default: build-release)" >&2
  exit 2
fi
cmake --build "${BUILD_DIR}" --target micro_benchmarks -j "$(nproc)" >/dev/null

BENCH_BIN="$(find "${BUILD_DIR}" -name micro_benchmarks -type f -perm -u+x | head -n 1)"
if [[ -z "${BENCH_BIN}" ]]; then
  echo "bench_suite: micro_benchmarks binary not found under ${BUILD_DIR}" >&2
  exit 2
fi

GIT_REV="$(git -C "${REPO_ROOT}" rev-parse --short HEAD 2>/dev/null || echo unknown)"
mkdir -p "${OUT_DIR}"

# Stamps the git revision into a BENCH json and refuses debug numbers —
# both a debug CTFL build and a debug google-benchmark library (its timing
# loop overhead skews every measurement). The library check is a hard
# refusal, not a warning; CTFL_BENCH_ALLOW_DEBUG_LIB=1 overrides it on
# machines whose only libbenchmark is a debug build (numbers so produced
# are for local comparison, never for committing as baselines).
stamp_json() {
  local out_json="$1"
  python3 - "${out_json}" "${GIT_REV}" <<'PY'
import json, os, sys
path, rev = sys.argv[1], sys.argv[2]
with open(path) as f:
    data = json.load(f)
ctx = data.setdefault("context", {})
build_type = ctx.get("ctfl_build_type")
if build_type != "release":
    print(f"bench_suite: {path} measured a '{build_type}' CTFL build; "
          "perf trajectories only accept release numbers", file=sys.stderr)
    sys.exit(2)
lib_type = ctx.get("library_build_type")
if lib_type == "debug" and os.environ.get("CTFL_BENCH_ALLOW_DEBUG_LIB") != "1":
    print(f"bench_suite: {path} was produced by a debug google-benchmark "
          "library; its harness overhead poisons perf trajectories. Link a "
          "release libbenchmark, or set CTFL_BENCH_ALLOW_DEBUG_LIB=1 to "
          "accept local-only numbers.", file=sys.stderr)
    sys.exit(2)
if not data.get("benchmarks"):
    print(f"bench_suite: {path} contains no benchmarks (bad filter?)",
          file=sys.stderr)
    sys.exit(2)
ctx["ctfl_git_revision"] = rev
with open(path, "w") as f:
    json.dump(data, f, indent=2)
    f.write("\n")
PY
  echo "wrote ${out_json}"
}

run_group() {
  local name="$1" filter="$2"
  local out_json="${OUT_DIR}/BENCH_${name}.json"
  echo "== ${name}: ${filter}"
  "${BENCH_BIN}" \
    --benchmark_filter="${filter}" \
    --benchmark_out="${out_json}" \
    --benchmark_out_format=json \
    --benchmark_format=console \
    "${EXTRA_ARGS[@]+"${EXTRA_ARGS[@]}"}"
  stamp_json "${out_json}"
}

# Resident-service soak: train a small snapshot bundle, start ctfl_serve on
# a unix socket, drive it with the concurrent client's --load mode
# (response verification on), and keep the client's BENCH json. Cleans up
# the server even when the client fails.
run_serve() {
  local out_json="${OUT_DIR}/BENCH_serve.json"
  local connections="${CTFL_SERVE_BENCH_CONNECTIONS:-8}"
  local requests="${CTFL_SERVE_BENCH_REQUESTS:-200}"
  echo "== serve: ${connections} connections x ${requests} requests"
  cmake --build "${BUILD_DIR}" \
      --target ctfl_cli ctfl_serve_bin ctfl_query_client \
      -j "$(nproc)" >/dev/null
  local tools_dir="${BUILD_DIR}/tools"
  local work
  work="$(mktemp -d)"
  local serve_pid=""
  cleanup_serve() {
    if [[ -n "${serve_pid}" ]] && kill -0 "${serve_pid}" 2>/dev/null; then
      kill "${serve_pid}" 2>/dev/null || true
      wait "${serve_pid}" 2>/dev/null || true
    fi
    rm -rf "${work}"
  }
  trap cleanup_serve RETURN

  "${tools_dir}/ctfl" generate --dataset adult --out "${work}/train.csv" \
      --n 600 --seed 7 >/dev/null
  "${tools_dir}/ctfl" generate --dataset adult --out "${work}/test.csv" \
      --n 150 --seed 8 >/dev/null
  "${tools_dir}/ctfl" snapshot --dataset adult --train "${work}/train.csv" \
      --test "${work}/test.csv" --participants 3 --epochs 6 \
      --bundle-out "${work}/run.ctflb" >/dev/null

  "${tools_dir}/ctfl_serve" --bundle "${work}/run.ctflb" \
      --socket "${work}/serve.sock" > "${work}/serve.log" 2>&1 &
  serve_pid=$!
  for _ in $(seq 1 100); do
    grep -q "^listening on " "${work}/serve.log" 2>/dev/null && break
    if ! kill -0 "${serve_pid}" 2>/dev/null; then
      echo "bench_suite: ctfl_serve exited before listening" >&2
      cat "${work}/serve.log" >&2
      return 2
    fi
    sleep 0.1
  done

  "${tools_dir}/ctfl_query_client" --socket "${work}/serve.sock" --load \
      --connections "${connections}" --requests "${requests}" --verify \
      --json-out "${out_json}"
  "${tools_dir}/ctfl_query_client" --socket "${work}/serve.sock" \
      --op shutdown >/dev/null
  wait "${serve_pid}"
  serve_pid=""
  stamp_json "${out_json}"
}

if [[ "${SUITE}" == "trace" || "${SUITE}" == "all" ]]; then
  run_group trace '^BM_TracePass/'
  # Sanity-check the tracing variants + pruning counters (the historical
  # bench_trace_json.sh contract: blocked must report its counters, and
  # legacy's records_scanned is 0 by construction), then the per-ISA legs:
  # blocked_scalar must always exist, and whenever the dispatched tier is
  # a SIMD one, the default blocked leg must beat the forced-scalar leg by
  # >= 2x (the ISSUE PR9 acceptance bar). CTFL_BENCH_SKIP_ISA_CHECK=1
  # downgrades that bar to a report for smoke runs with tiny min_time.
  python3 - "${OUT_DIR}/BENCH_trace.json" <<'PY'
import json, os, sys
with open(sys.argv[1]) as f:
    data = json.load(f)
rows = {}
for b in data.get("benchmarks", []):
    name = b.get("name", "")
    if name.startswith("BM_TracePass/"):
        rows[name.split("/")[1]] = b
missing = {"legacy", "blocked", "blocked_scalar"} - rows.keys()
if missing:
    print(f"bench_suite: missing trace variants: {sorted(missing)}",
          file=sys.stderr)
    sys.exit(2)
for variant in sorted(rows):
    b = rows[variant]
    for counter in ("tau_w_checks", "records_scanned", "blocks_pruned"):
        if counter not in b:
            print(f"bench_suite: {variant} missing counter {counter}",
                  file=sys.stderr)
            sys.exit(2)
    unit = b.get("time_unit", "ns")
    print(f"BM_TracePass/{variant}: {b['real_time']:.3f} {unit}/pass  "
          f"tau_w_checks={b['tau_w_checks']:.0f}  "
          f"records_scanned={b['records_scanned']:.0f}  "
          f"blocks_pruned={b['blocks_pruned']:.0f}")
speedup = rows["legacy"]["real_time"] / max(rows["blocked"]["real_time"], 1e-12)
print(f"blocked speedup over legacy: {speedup:.2f}x")
isa = data.get("context", {}).get("ctfl_trace_isa", "scalar")
simd = rows["blocked_scalar"]["real_time"] / max(rows["blocked"]["real_time"], 1e-12)
print(f"blocked ({isa}) speedup over blocked_scalar: {simd:.2f}x")
if isa != "scalar" and simd < 2.0:
    msg = (f"bench_suite: blocked ({isa}) is only {simd:.2f}x over "
           "blocked_scalar; the SIMD dispatch acceptance bar is 2x")
    if os.environ.get("CTFL_BENCH_SKIP_ISA_CHECK") == "1":
        print(msg + " (ignored: CTFL_BENCH_SKIP_ISA_CHECK=1)")
    else:
        print(msg, file=sys.stderr)
        sys.exit(2)
PY
fi
if [[ "${SUITE}" == "fedavg" || "${SUITE}" == "all" ]]; then
  run_group fedavg '^BM_FedAvgRound/'
fi
if [[ "${SUITE}" == "query" || "${SUITE}" == "all" ]]; then
  run_group query '^BM_QueryRelated/|^BM_BundleLoad'
fi
if [[ "${SUITE}" == "serve" || "${SUITE}" == "all" ]]; then
  run_serve
fi
if [[ "${SUITE}" == "stream" || "${SUITE}" == "all" ]]; then
  run_group stream '^BM_StreamFold'
  # The delta log's reason to exist: folding one round's delta must be
  # >= 10x cheaper than recomputing scores through the full one-shot
  # pipeline (the ISSUE PR10 acceptance bar). CTFL_BENCH_SKIP_STREAM_CHECK=1
  # downgrades the bar to a report for smoke runs with tiny min_time.
  python3 - "${OUT_DIR}/BENCH_stream.json" <<'PY'
import json, os, sys
with open(sys.argv[1]) as f:
    data = json.load(f)
rows = {}
for b in data.get("benchmarks", []):
    name = b.get("name", "")
    if name.startswith("BM_StreamFold"):
        rows[name] = b
fold = rows.get("BM_StreamFold/fold/real_time")
recompute = rows.get("BM_StreamFold/recompute/real_time")
if fold is None or recompute is None:
    print(f"bench_suite: BENCH_stream.json lacks BM_StreamFold legs "
          f"(have {sorted(rows)})", file=sys.stderr)
    sys.exit(2)
for name in sorted(rows):
    b = rows[name]
    print(f"{name}: {b['real_time']:.3f} {b.get('time_unit', 'ns')}")
speedup = recompute["real_time"] / max(fold["real_time"], 1e-12)
print(f"fold speedup over full recompute: {speedup:.1f}x")
if speedup < 10.0:
    msg = (f"bench_suite: fold is only {speedup:.1f}x cheaper than full "
           "recompute; the streaming acceptance bar is 10x")
    if os.environ.get("CTFL_BENCH_SKIP_STREAM_CHECK") == "1":
        print(msg + " (ignored: CTFL_BENCH_SKIP_STREAM_CHECK=1)")
    else:
        print(msg, file=sys.stderr)
        sys.exit(2)
PY
fi

echo "bench_suite: done (${SUITE})"
