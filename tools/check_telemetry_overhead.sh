#!/usr/bin/env bash
# Contract check for the telemetry subsystem: a *disabled* span must stay
# cheap enough that CTFL_SPAN can be compiled into every hot path
# unconditionally. The fast path is one relaxed atomic load + branch, so
# the per-iteration cost of BM_SpanDisabled should be single-digit
# nanoseconds; we fail only above a generous threshold to stay robust on
# slow/shared CI machines.
#
# Usage: tools/check_telemetry_overhead.sh [build-dir]
#   build-dir defaults to build-release (configured Release if missing).
#   Override the threshold with CTFL_SPAN_OVERHEAD_NS_MAX (default 100).

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build-release}"
THRESHOLD_NS="${CTFL_SPAN_OVERHEAD_NS_MAX:-100}"

cmake -S "${REPO_ROOT}" -B "${BUILD_DIR}" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "${BUILD_DIR}" --target micro_benchmarks -j "$(nproc)" >/dev/null

BENCH_BIN="$(find "${BUILD_DIR}" -name micro_benchmarks -type f -perm -u+x | head -n 1)"
if [[ -z "${BENCH_BIN}" ]]; then
  echo "check_telemetry_overhead: micro_benchmarks binary not found under ${BUILD_DIR}" >&2
  exit 2
fi

JSON_OUT="$(mktemp)"
trap 'rm -f "${JSON_OUT}"' EXIT

"${BENCH_BIN}" \
  --benchmark_filter='^BM_SpanDisabled$' \
  --benchmark_format=json \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  >"${JSON_OUT}"

# Pull the median aggregate's real_time (ns). No jq dependency: the JSON is
# machine-generated with one key per line.
MEDIAN_NS="$(python3 - "${JSON_OUT}" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    data = json.load(f)
best = None
for b in data.get("benchmarks", []):
    if b.get("name", "").startswith("BM_SpanDisabled"):
        if b.get("aggregate_name") == "median" or best is None:
            unit = b.get("time_unit", "ns")
            scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
            best = b["real_time"] * scale
print(f"{best:.2f}" if best is not None else "")
PY
)"

if [[ -z "${MEDIAN_NS}" ]]; then
  echo "check_telemetry_overhead: could not parse BM_SpanDisabled result" >&2
  exit 2
fi

echo "BM_SpanDisabled: ${MEDIAN_NS} ns/op (threshold ${THRESHOLD_NS} ns)"
awk -v got="${MEDIAN_NS}" -v max="${THRESHOLD_NS}" 'BEGIN {
  if (got + 0 > max + 0) {
    printf "FAIL: disabled-span overhead %.2f ns exceeds %.2f ns\n", got, max
    exit 1
  }
  print "OK: disabled-span overhead within budget"
}'
