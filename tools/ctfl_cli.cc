// ctfl — command-line front end for the CTFL library.
//
// Subcommands:
//   generate  --dataset NAME --out FILE [--n N] [--seed S]
//       Writes a benchmark dataset (tic-tac-toe exact, or the synthetic
//       adult/bank/dota2 equivalents) as CSV.
//   train     --dataset NAME --data FILE --model OUT [--epochs E] [--lr R]
//       Trains a rule-based model on a CSV dataset and saves it.
//   rules     --dataset NAME --model FILE [--out FILE] [--min-weight W]
//       Prints (or writes) the model's extracted symbolic rules.
//   score     --dataset NAME --train FILE --test FILE [--participants K]
//             [--tau-w T] [--skew-label] [--seed S] [--num-threads N]
//             [--federated] [--rounds R] [--local-epochs E] [--secure-agg]
//             [--failure-plan SPEC] [--retry-budget B]
//             [--trace-kernel legacy|blocked] [--bundle-out FILE]
//             [--delta-log-out FILE]
//             [--trace-isa auto|scalar|avx2|avx512|neon] [--trace-threads N]
//             [--telemetry-out FILE.json] [--telemetry-summary]
//             [--metrics-out FILE.jsonl] [--report-out FILE.json]
//       Partitions the training CSV into K participants, runs the full
//       CTFL pipeline, and prints micro/macro scores + a loss report.
//       --federated trains the global model with FedAvg rounds across
//       the participants (the paper's setting) instead of centrally;
//       --secure-agg masks every upload with cohort-aware pairwise
//       secure aggregation. --failure-plan injects a deterministic fault
//       schedule into the rounds (DESIGN.md §11), e.g.
//       "dropout=0.2,straggler=0.1,corrupt=0.05,mismatch=0.05,seed=17";
//       bad uploads are retried up to --retry-budget times, then
//       quarantined — the run completes over the surviving cohorts and
//       is a pure function of (seed, plan). --bundle-out additionally
//       persists a contribution bundle for later `query` runs.
//       --delta-log-out (federated only) appends one per-round delta
//       record to FILE as the run trains, so `query --delta-log` or
//       `ctfl_serve --delta-log` can fold live scores in O(delta) per
//       round without retraining (DESIGN.md §15).
//       --num-threads steers training, tracing, and the matrix kernels
//       together (0 = all cores, 1 = serial; scores are bit-identical
//       either way). --trace-kernel selects the Eq. 4 matching engine:
//       `blocked` (default) is the word-parallel blocked kernel with
//       early-exit pruning, `legacy` the scalar reference loop — results
//       are bit-identical either way. --trace-isa pins the blocked
//       kernel's SIMD tier (`auto` = best the CPU supports) and
//       --trace-threads shards its block sweep; both are execution
//       context, never semantics — every tier at every thread count
//       produces bit-identical scores. --telemetry-out writes a Chrome
//       trace (open in chrome://tracing or ui.perfetto.dev);
//       --telemetry-summary prints per-span and per-phase cost tables.
//       --metrics-out appends one JSONL metrics snapshot per federated
//       round (plus a final one), turning round health into a time
//       series; --report-out writes the structured RunReport JSON
//       (fingerprints, per-phase wall/CPU breakdown, kernel counters —
//       DESIGN.md §12).
//   snapshot  --dataset NAME --train FILE --test FILE --bundle-out FILE
//             [score flags]
//       Same pipeline as `score`, but the bundle is the point: trains
//       once, traces once, and persists model + rules + activation
//       uploads + posting index so every later query needs no retraining
//       and no retracing.
//   query     --bundle FILE [--tau-w T] [--delta D] [--top-k K]
//             [--instances FILE.csv] [--max-records N] [--linear]
//             [--trace-kernel legacy|blocked] [--requests-file FILE]
//             [--trace-isa auto|scalar|avx2|avx512|neon] [--trace-threads N]
//             [--delta-log FILE] [--telemetry-summary]
//       Serves a persisted bundle: re-evaluates micro/macro scores under
//       the requested (or originating) parameters — bit-identical to the
//       originating run at its own parameters — prints per-participant
//       interpretability summaries, and looks up Eq. 4 related records
//       for new instances from --instances (posting-list prefiltered;
//       --linear forces the full class-bucket scan instead).
//       --requests-file switches to batch mode: every line of FILE is one
//       request (`evaluate [tau-w=V] [delta=D] [top-k=K]`,
//       `related-test INDEX`, or `related F1,F2,...,LABEL`; blank lines
//       and `#` comments skipped), all answered from the single bundle
//       load — the resident-service workflow without a server.
//       --delta-log switches to streaming mode: folds every round of the
//       delta log into live scores (O(delta) per round), prints the score
//       table, and exits nonzero unless the folded scores bit-match the
//       bundle snapshot.
//
// The --dataset flag names the schema (the federation's agreed feature
// space); CSV files must match it. `query` needs no --dataset: the
// bundle carries its schema.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <string_view>

#include "ctfl/core/incentive.h"
#include "ctfl/core/interpret.h"
#include "ctfl/core/pipeline.h"
#include "ctfl/data/gen/benchmarks.h"
#include "ctfl/data/gen/tictactoe.h"
#include "ctfl/data/split.h"
#include "ctfl/fl/partition.h"
#include "ctfl/kernel/trace_kernel.h"
#include "ctfl/nn/serialize.h"
#include "ctfl/replay/recorder.h"
#include "ctfl/replay/runner.h"
#include "ctfl/serve/render.h"
#include "ctfl/store/query_engine.h"
#include "ctfl/stream/emitter.h"
#include "ctfl/stream/scorer.h"
#include "ctfl/telemetry/exposition.h"
#include "ctfl/telemetry/metrics.h"
#include "ctfl/telemetry/trace.h"
#include "ctfl/util/cpu_features.h"
#include "ctfl/util/flags.h"
#include "ctfl/util/logging.h"
#include "ctfl/util/string_util.h"

namespace ctfl {
namespace {

Result<SchemaPtr> SchemaFor(const std::string& dataset) {
  if (dataset == "tic-tac-toe") return TicTacToeSchema();
  CTFL_ASSIGN_OR_RETURN(SyntheticSpec spec, BenchmarkSpec(dataset));
  return spec.schema;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Applies --trace-isa: "auto" keeps runtime dispatch (best available
/// tier), anything else pins the process-wide trace ISA.
Status ApplyTraceIsaFlag(const std::string& name) {
  if (name.empty() || name == "auto") return Status::OK();
  CTFL_ASSIGN_OR_RETURN(TraceIsa isa, ParseTraceIsa(name));
  return SetTraceIsa(isa);
}

/// Content digest of a recorded input file (pins the exact bytes a
/// replay must see; see replay::RunSpec).
Result<uint64_t> FileDigest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path + " for digest");
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return replay::HashBytes(bytes);
}

Status RunGenerate(int argc, const char* const* argv) {
  FlagParser flags({{"dataset", "adult"},
                    {"out", ""},
                    {"n", "1000"},
                    {"seed", "42"}});
  CTFL_RETURN_IF_ERROR(flags.Parse(argc, argv));
  if (flags.GetString("out").empty()) {
    return Status::InvalidArgument("--out is required");
  }
  CTFL_ASSIGN_OR_RETURN(int n, flags.GetInt("n"));
  CTFL_ASSIGN_OR_RETURN(int seed, flags.GetInt("seed"));
  CTFL_ASSIGN_OR_RETURN(
      Dataset dataset,
      MakeBenchmark(flags.GetString("dataset"), n, seed));
  CTFL_RETURN_IF_ERROR(SaveCsvDataset(flags.GetString("out"), dataset));
  std::printf("wrote %zu instances to %s\n", dataset.size(),
              flags.GetString("out").c_str());
  return Status::OK();
}

Status RunTrain(int argc, const char* const* argv) {
  FlagParser flags({{"dataset", "adult"},
                    {"data", ""},
                    {"model", ""},
                    {"epochs", "30"},
                    {"lr", "0.05"},
                    {"width", "96"},
                    {"num-threads", "0"},
                    {"seed", "42"}});
  CTFL_RETURN_IF_ERROR(flags.Parse(argc, argv));
  if (flags.GetString("data").empty() || flags.GetString("model").empty()) {
    return Status::InvalidArgument("--data and --model are required");
  }
  CTFL_ASSIGN_OR_RETURN(SchemaPtr schema,
                        SchemaFor(flags.GetString("dataset")));
  CTFL_ASSIGN_OR_RETURN(Dataset data,
                        LoadCsvDataset(flags.GetString("data"), schema));
  CTFL_ASSIGN_OR_RETURN(int epochs, flags.GetInt("epochs"));
  CTFL_ASSIGN_OR_RETURN(double lr, flags.GetDouble("lr"));
  CTFL_ASSIGN_OR_RETURN(int width, flags.GetInt("width"));
  CTFL_ASSIGN_OR_RETURN(int num_threads, flags.GetInt("num-threads"));
  CTFL_ASSIGN_OR_RETURN(int seed, flags.GetInt("seed"));

  LogicalNetConfig net_config;
  net_config.logic_layers = {{width / 2, width - width / 2}};
  net_config.seed = seed;
  TrainConfig train_config;
  train_config.epochs = epochs;
  train_config.learning_rate = lr;
  train_config.num_threads = num_threads;
  LogicalNet net(schema, net_config);
  const TrainReport report = TrainGrafted(net, data, train_config);
  CTFL_RETURN_IF_ERROR(SaveLogicalNet(net, flags.GetString("model")));
  std::printf("trained on %zu instances (train accuracy %.3f); model -> %s\n",
              data.size(), report.train_accuracy,
              flags.GetString("model").c_str());
  return Status::OK();
}

Status RunRules(int argc, const char* const* argv) {
  FlagParser flags({{"dataset", "adult"},
                    {"model", ""},
                    {"out", ""},
                    {"min-weight", "0.01"}});
  CTFL_RETURN_IF_ERROR(flags.Parse(argc, argv));
  if (flags.GetString("model").empty()) {
    return Status::InvalidArgument("--model is required");
  }
  CTFL_ASSIGN_OR_RETURN(SchemaPtr schema,
                        SchemaFor(flags.GetString("dataset")));
  CTFL_ASSIGN_OR_RETURN(LogicalNet net,
                        LoadLogicalNet(schema, flags.GetString("model")));
  CTFL_ASSIGN_OR_RETURN(double min_weight, flags.GetDouble("min-weight"));
  const std::string out = flags.GetString("out");
  if (!out.empty()) {
    CTFL_RETURN_IF_ERROR(ExportRulesText(net, out, min_weight));
    std::printf("rules -> %s\n", out.c_str());
    return Status::OK();
  }
  const ExtractionResult extraction = ExtractRules(net);
  for (const ExtractedRule& er : extraction.rules) {
    if (er.weight < min_weight) continue;
    std::printf("r%d%s w=%.4f : %s\n", er.coordinate,
                er.support_class == 1 ? "+" : "-", er.weight,
                er.rule.ToString(*schema).c_str());
  }
  return Status::OK();
}

// Shared by `score` (bundle optional) and `snapshot` (bundle required).
Status RunScore(int argc, const char* const* argv, bool snapshot_mode) {
  FlagParser flags({{"dataset", "adult"},
                    {"train", ""},
                    {"test", ""},
                    {"participants", "4"},
                    {"tau-w", "0.9"},
                    {"alpha", "0.8"},
                    {"skew-label", "false"},
                    {"epochs", "20"},
                    {"width", "96"},
                    {"budget", "0"},
                    {"num-threads", "-1"},
                    {"seed", "42"},
                    {"federated", "false"},
                    {"rounds", "5"},
                    {"local-epochs", "2"},
                    {"secure-agg", "false"},
                    {"failure-plan", ""},
                    {"retry-budget", "1"},
                    {"trace-kernel", "blocked"},
                    {"trace-isa", "auto"},
                    {"trace-threads", "1"},
                    {"bundle-out", ""},
                    {"delta-log-out", ""},
                    {"telemetry-out", ""},
                    {"telemetry-summary", "false"},
                    {"metrics-out", ""},
                    {"report-out", ""},
                    {"record", ""}});
  CTFL_RETURN_IF_ERROR(flags.Parse(argc, argv));
  if (flags.GetString("train").empty() || flags.GetString("test").empty()) {
    return Status::InvalidArgument("--train and --test are required");
  }
  if (snapshot_mode && flags.GetString("bundle-out").empty()) {
    return Status::InvalidArgument("snapshot requires --bundle-out");
  }
  CTFL_ASSIGN_OR_RETURN(SchemaPtr schema,
                        SchemaFor(flags.GetString("dataset")));
  CTFL_ASSIGN_OR_RETURN(Dataset train,
                        LoadCsvDataset(flags.GetString("train"), schema));
  CTFL_ASSIGN_OR_RETURN(Dataset test,
                        LoadCsvDataset(flags.GetString("test"), schema));
  CTFL_ASSIGN_OR_RETURN(int participants, flags.GetInt("participants"));
  CTFL_ASSIGN_OR_RETURN(double tau_w, flags.GetDouble("tau-w"));
  CTFL_ASSIGN_OR_RETURN(double alpha, flags.GetDouble("alpha"));
  CTFL_ASSIGN_OR_RETURN(int epochs, flags.GetInt("epochs"));
  CTFL_ASSIGN_OR_RETURN(int width, flags.GetInt("width"));
  CTFL_ASSIGN_OR_RETURN(double budget, flags.GetDouble("budget"));
  CTFL_ASSIGN_OR_RETURN(int num_threads, flags.GetInt("num-threads"));
  CTFL_ASSIGN_OR_RETURN(int seed, flags.GetInt("seed"));
  CTFL_ASSIGN_OR_RETURN(int rounds, flags.GetInt("rounds"));
  CTFL_ASSIGN_OR_RETURN(int local_epochs, flags.GetInt("local-epochs"));
  CTFL_ASSIGN_OR_RETURN(int retry_budget, flags.GetInt("retry-budget"));
  if (retry_budget < 0) {
    return Status::InvalidArgument("--retry-budget must be >= 0");
  }
  CTFL_ASSIGN_OR_RETURN(FailurePlan failure_plan,
                        FailurePlan::Parse(flags.GetString("failure-plan")));
  CTFL_ASSIGN_OR_RETURN(TraceKernelKind trace_kernel,
                        ParseTraceKernelKind(flags.GetString("trace-kernel")));
  CTFL_RETURN_IF_ERROR(ApplyTraceIsaFlag(flags.GetString("trace-isa")));
  CTFL_ASSIGN_OR_RETURN(int trace_threads, flags.GetInt("trace-threads"));
  const std::string telemetry_out = flags.GetString("telemetry-out");
  const bool telemetry_summary = flags.GetBool("telemetry-summary");
  if (!telemetry_out.empty() || telemetry_summary) {
    telemetry::SetTracingEnabled(true);
  }
  const std::string metrics_out = flags.GetString("metrics-out");
  const std::string report_out = flags.GetString("report-out");

  Rng prng(seed);
  const Federation fed = MakeFederation(
      flags.GetBool("skew-label")
          ? PartitionSkewLabel(train, participants, alpha, prng)
          : PartitionSkewSample(train, participants, alpha, prng));

  CtflConfig config;
  config.federated = flags.GetBool("federated");
  config.central.epochs = epochs;
  config.central.learning_rate = 0.05;
  config.fedavg.rounds = rounds;
  config.fedavg.local_epochs = local_epochs;
  config.fedavg.local.learning_rate = 0.05;
  config.fedavg.local.seed = static_cast<uint64_t>(seed);
  config.fedavg.secure_aggregation = flags.GetBool("secure-agg");
  config.fedavg.failure = failure_plan;
  config.fedavg.retry_budget = retry_budget;
  if (!config.federated && (!failure_plan.empty() ||
                            config.fedavg.secure_aggregation)) {
    return Status::InvalidArgument(
        "--failure-plan/--secure-agg require --federated "
        "(faults and masking happen in FedAvg rounds)");
  }
  config.net.logic_layers = {{width / 2, width - width / 2}};
  config.net.seed = seed;
  config.tracer.tau_w = tau_w;
  config.tracer.kernel = trace_kernel;
  config.tracer.isa = CurrentTraceIsa();
  config.tracer.trace_threads = trace_threads;
  config.num_threads = num_threads;
  config.bundle_out = flags.GetString("bundle-out");

  // --metrics-out: one metrics snapshot per completed federated round
  // (plus a closing "final" line after the run), so round health is a
  // time series rather than an end-of-run total.
  std::unique_ptr<telemetry::MetricsSnapshotWriter> metrics_writer;
  if (!metrics_out.empty()) {
    metrics_writer =
        std::make_unique<telemetry::MetricsSnapshotWriter>(metrics_out);
    CTFL_RETURN_IF_ERROR(metrics_writer->status());
    config.fedavg.round_observer =
        [&metrics_writer](const telemetry::RoundTelemetry& round) {
          const Status status = metrics_writer->WriteRound(round);
          if (!status.ok()) {
            CTFL_LOG(Warning)
                << "metrics snapshot failed: " << status.message();
          }
        };
  }

  // --delta-log-out: observe every committed FedAvg round and append one
  // RoundDelta per round (plus the round-0 header) so a streaming scorer
  // can fold the run's scores incrementally (DESIGN.md §15).
  const std::string delta_log_out = flags.GetString("delta-log-out");
  std::unique_ptr<stream::DeltaLogEmitter> emitter;
  if (!delta_log_out.empty()) {
    if (!config.federated) {
      return Status::InvalidArgument(
          "--delta-log-out requires --federated (deltas are per FedAvg "
          "round)");
    }
    emitter = std::make_unique<stream::DeltaLogEmitter>(delta_log_out, &fed,
                                                        &test, &config);
    emitter->Attach(&config.fedavg);
  }

  CTFL_ASSIGN_OR_RETURN(const CtflReport report, RunCtfl(fed, test, config));
  if (emitter != nullptr) {
    CTFL_RETURN_IF_ERROR(emitter->status());
    std::printf("delta log (%u rounds, %llu bytes) -> %s\n",
                emitter->rounds_emitted(),
                static_cast<unsigned long long>(emitter->bytes_written()),
                delta_log_out.c_str());
  }
  if (metrics_writer != nullptr) {
    CTFL_RETURN_IF_ERROR(metrics_writer->WriteLabeled("final"));
    std::printf("metrics snapshots (%d) -> %s\n",
                metrics_writer->snapshots_written(), metrics_out.c_str());
  }
  if (!report_out.empty()) {
    const telemetry::RunReport run_report =
        MakeRunReport(report, config, fed, test);
    CTFL_RETURN_IF_ERROR(telemetry::WriteRunReport(run_report, report_out));
    std::printf("run report (fingerprint 0x%016llx, %s build) -> %s\n",
                static_cast<unsigned long long>(run_report.run_fingerprint),
                run_report.build_type.c_str(), report_out.c_str());
  }
  if (!config.bundle_out.empty()) {
    CTFL_RETURN_IF_ERROR(report.bundle_status);
    std::printf("bundle (%zu bytes) -> %s\n", report.bundle_bytes,
                config.bundle_out.c_str());
  }
  // --record: persist the run spec (CSV paths pinned by content digest)
  // + bit-exact outcome as a replay file (DESIGN.md §14); `ctfl_replay
  // replay --file F` re-runs it and asserts bit-identity.
  const std::string record_out = flags.GetString("record");
  if (!record_out.empty()) {
    replay::RunSpec spec;
    spec.source = replay::DataSource::kCsv;
    spec.dataset = flags.GetString("dataset");
    spec.train_path = flags.GetString("train");
    spec.test_path = flags.GetString("test");
    CTFL_ASSIGN_OR_RETURN(spec.train_csv_digest,
                          FileDigest(spec.train_path));
    CTFL_ASSIGN_OR_RETURN(spec.test_csv_digest, FileDigest(spec.test_path));
    spec.participants = static_cast<uint32_t>(participants);
    spec.alpha = alpha;
    spec.skew_label = flags.GetBool("skew-label");
    spec.seed = static_cast<uint64_t>(seed);
    spec.federated = config.federated;
    spec.rounds = static_cast<uint32_t>(rounds);
    spec.local_epochs = static_cast<uint32_t>(local_epochs);
    spec.epochs = static_cast<uint32_t>(epochs);
    spec.width = static_cast<uint32_t>(width);
    spec.tau_w = tau_w;
    spec.secure_agg = config.fedavg.secure_aggregation;
    spec.failure_plan = flags.GetString("failure-plan");
    spec.retry_budget = static_cast<uint32_t>(retry_budget);
    spec.trace_kernel = static_cast<uint8_t>(trace_kernel);
    spec.num_threads = num_threads;
    replay::ReplayRecorder recorder;
    recorder.CaptureRun(spec,
                        replay::MakeRunOutcome(report, config, fed, test));
    CTFL_RETURN_IF_ERROR(recorder.WriteTo(record_out));
    std::printf("replay file -> %s\n", record_out.c_str());
  }

  std::printf("model accuracy: %.4f  (train %.1fs, trace %.2fs)\n\n",
              report.test_accuracy, report.train_seconds,
              report.trace_seconds);
  std::printf("participant  records    micro     macro\n");
  for (const Participant& p : fed) {
    std::printf("%-11s %8zu   %.4f    %.4f\n", p.name.c_str(),
                p.data.size(), report.micro_scores[p.id],
                report.macro_scores[p.id]);
  }
  std::printf("\nloss-tracing report:\n%s",
              FormatLossReport(AnalyzeLoss(report.trace)).c_str());
  if (budget > 0.0) {
    IncentiveConfig incentive;
    incentive.budget = budget;
    std::printf("\npayouts (budget %.2f, macro scheme):\n%s", budget,
                FormatPayouts(ComputePayouts(report, incentive)).c_str());
  }
  if (telemetry_summary) {
    std::printf("\nrun telemetry:\n%s", report.telemetry.Summary().c_str());
    std::printf("\nspan summary:\n%s",
                telemetry::TraceSummaryTable().c_str());
    std::printf("\nmetrics:\n%s",
                telemetry::MetricsRegistry::Global().SummaryTable().c_str());
  }
  if (!telemetry_out.empty()) {
    CTFL_RETURN_IF_ERROR(telemetry::WriteChromeTrace(telemetry_out));
    std::printf("\nchrome trace (%zu events) -> %s\n",
                telemetry::TraceEventCount(), telemetry_out.c_str());
  }
  return Status::OK();
}

// Batch mode of `query`: one request per line, every line answered from
// the already-loaded engine (no per-request bundle reads). Returns on the
// first malformed line, naming it.
Status RunRequestsFile(const store::QueryEngine& engine,
                       const std::string& path,
                       const store::EvalOptions& eval_defaults,
                       const store::QueryOptions& query_defaults,
                       replay::ReplayRecorder* recorder) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open requests file " + path);
  const store::BundleContent& bundle = engine.bundle();
  std::string line;
  size_t lineno = 0;
  size_t handled = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const size_t space = trimmed.find(' ');
    const std::string_view command = trimmed.substr(0, space);
    const std::string_view rest =
        space == std::string_view::npos ? std::string_view()
                                        : Trim(trimmed.substr(space + 1));
    std::printf("request %zu: %.*s\n", handled,
                static_cast<int>(trimmed.size()), trimmed.data());
    if (command == "evaluate") {
      store::EvalOptions eval = eval_defaults;
      for (const std::string& token :
           Split(std::string(rest), ' ')) {
        if (token.empty()) continue;
        const size_t eq = token.find('=');
        const std::string key = token.substr(0, eq);
        if (eq == std::string::npos) {
          return Status::InvalidArgument(StrFormat(
              "%s:%zu: evaluate option '%s' is not key=value",
              path.c_str(), lineno, token.c_str()));
        }
        const std::string value = token.substr(eq + 1);
        if (key == "tau-w") {
          CTFL_ASSIGN_OR_RETURN(eval.tau_w, ParseDouble(value));
        } else if (key == "delta") {
          CTFL_ASSIGN_OR_RETURN(eval.delta, ParseInt(value));
        } else if (key == "top-k") {
          CTFL_ASSIGN_OR_RETURN(eval.top_k, ParseInt(value));
        } else {
          return Status::InvalidArgument(
              StrFormat("%s:%zu: unknown evaluate option '%s'",
                        path.c_str(), lineno, key.c_str()));
        }
      }
      const store::QueryReport report =
          recorder != nullptr ? recorder->RecordEvaluate(engine, eval)
                              : engine.Evaluate(eval);
      std::fputs(serve::RenderEvaluation(report, eval.kernel,
                                         engine.origin_tau_w(),
                                         engine.origin_delta(),
                                         bundle.meta.micro_scores,
                                         bundle.meta.macro_scores)
                     .c_str(),
                 stdout);
    } else if (command == "related-test") {
      CTFL_ASSIGN_OR_RETURN(int test_index, ParseInt(std::string(rest)));
      if (test_index < 0 ||
          static_cast<size_t>(test_index) >= bundle.tests.size()) {
        return Status::OutOfRange(
            StrFormat("%s:%zu: test index %d out of range (bundle has %zu "
                      "tests)",
                      path.c_str(), lineno, test_index,
                      bundle.tests.size()));
      }
      const store::RelatedResult related =
          recorder != nullptr
              ? recorder->RecordRelatedForTest(
                    engine, static_cast<uint64_t>(test_index),
                    query_defaults)
              : engine.RelatedForTest(static_cast<size_t>(test_index),
                                      query_defaults);
      std::fputs(serve::RenderRelatedLookup(
                     static_cast<size_t>(test_index), related,
                     bundle.meta.participant_names)
                     .c_str(),
                 stdout);
    } else if (command == "related") {
      std::vector<std::string> fields = Split(std::string(rest), ',');
      for (std::string& field : fields) field = std::string(Trim(field));
      auto parsed = ParseCsvInstanceRow(bundle.schema, fields);
      if (!parsed.ok()) {
        return Status::InvalidArgument(StrFormat(
            "%s:%zu: %s", path.c_str(), lineno,
            parsed.status().message().c_str()));
      }
      const store::RelatedResult related =
          recorder != nullptr
              ? recorder->RecordRelated(engine, *parsed, query_defaults)
              : engine.Related(*parsed, query_defaults);
      std::fputs(serve::RenderRelatedLookup(handled, related,
                                            bundle.meta.participant_names)
                     .c_str(),
                 stdout);
    } else {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: unknown request '%.*s' (expected evaluate, "
                    "related-test, or related)",
                    path.c_str(), lineno, static_cast<int>(command.size()),
                    command.data()));
    }
    ++handled;
  }
  std::printf("\nanswered %zu requests from %s (single bundle load)\n",
              handled, path.c_str());
  return Status::OK();
}

Status RunQuery(int argc, const char* const* argv) {
  FlagParser flags({{"bundle", ""},
                    {"tau-w", "-1"},
                    {"delta", "-1"},
                    {"top-k", "5"},
                    {"instances", ""},
                    {"max-records", "3"},
                    {"linear", "false"},
                    {"trace-kernel", "blocked"},
                    {"trace-isa", "auto"},
                    {"trace-threads", "1"},
                    {"requests-file", ""},
                    {"delta-log", ""},
                    {"telemetry-summary", "false"},
                    {"record", ""}});
  CTFL_RETURN_IF_ERROR(flags.Parse(argc, argv));
  if (flags.GetString("bundle").empty()) {
    return Status::InvalidArgument("--bundle is required");
  }
  CTFL_ASSIGN_OR_RETURN(double tau_w, flags.GetDouble("tau-w"));
  CTFL_ASSIGN_OR_RETURN(int delta, flags.GetInt("delta"));
  CTFL_ASSIGN_OR_RETURN(int top_k, flags.GetInt("top-k"));
  CTFL_ASSIGN_OR_RETURN(int max_records, flags.GetInt("max-records"));
  CTFL_ASSIGN_OR_RETURN(TraceKernelKind trace_kernel,
                        ParseTraceKernelKind(flags.GetString("trace-kernel")));
  CTFL_RETURN_IF_ERROR(ApplyTraceIsaFlag(flags.GetString("trace-isa")));
  CTFL_ASSIGN_OR_RETURN(int trace_threads, flags.GetInt("trace-threads"));
  const bool telemetry_summary = flags.GetBool("telemetry-summary");
  if (telemetry_summary) telemetry::SetTracingEnabled(true);

  // --delta-log: streaming mode. Open the bundle plus its delta chain,
  // fold every round, print the live score table (same line format as
  // `score`), and fail unless the folded scores bit-match the snapshot.
  const std::string delta_log = flags.GetString("delta-log");
  if (!delta_log.empty()) {
    stream::ScorerOptions scorer_options;
    scorer_options.kernel = trace_kernel;
    scorer_options.isa = CurrentTraceIsa();
    scorer_options.trace_threads = trace_threads;
    CTFL_ASSIGN_OR_RETURN(
        stream::StreamedEngine streamed,
        stream::StreamedEngine::Open(flags.GetString("bundle"), delta_log,
                                     scorer_options));
    const stream::StreamingScorer& scorer = streamed.scorer();
    std::printf("delta log %s: %llu rounds folded\n\n", delta_log.c_str(),
                static_cast<unsigned long long>(streamed.rounds_folded()));
    std::printf("participant  records    micro     macro\n");
    for (size_t p = 0; p < scorer.num_participants(); ++p) {
      std::printf("%-11s %8zu   %.4f    %.4f\n",
                  scorer.participant_names()[p].c_str(),
                  scorer.participant_records(p), scorer.micro_scores()[p],
                  scorer.macro_scores()[p]);
    }
    CTFL_RETURN_IF_ERROR(streamed.VerifyAgainstBundle());
    std::printf("\nstreamed scores bit-match the bundle snapshot\n");
    return Status::OK();
  }

  CTFL_ASSIGN_OR_RETURN(store::QueryEngine engine,
                        store::QueryEngine::Open(flags.GetString("bundle")));
  const store::BundleContent& bundle = engine.bundle();
  std::printf(
      "bundle %s: %d participants, %d rules, %zu train records, %zu tests\n",
      flags.GetString("bundle").c_str(), engine.num_participants(),
      bundle.num_rules(), bundle.total_train_records(),
      bundle.tests.size());
  std::printf("origin run: tau_w=%.4f delta=%d accuracy=%.4f\n\n",
              engine.origin_tau_w(), engine.origin_delta(),
              bundle.meta.global_accuracy);

  store::EvalOptions eval;
  eval.tau_w = tau_w;
  eval.delta = delta;
  eval.top_k = top_k;
  eval.kernel = trace_kernel;
  eval.isa = CurrentTraceIsa();
  eval.trace_threads = trace_threads;
  store::QueryOptions options;
  options.tau_w = tau_w;
  options.use_index = !flags.GetBool("linear");
  options.kernel = trace_kernel;
  options.isa = CurrentTraceIsa();
  options.trace_threads = trace_threads;
  options.max_records = static_cast<size_t>(std::max(0, max_records));

  // --record: capture every query issued below as a replay event. When
  // the target file already holds a recorded run (e.g. from `ctfl score
  // --record`), seed from it so the query stream appends to that run.
  const std::string record_out = flags.GetString("record");
  std::unique_ptr<replay::ReplayRecorder> recorder;
  if (!record_out.empty()) {
    Result<replay::ReplayFile> seed = replay::ReadReplayFile(record_out);
    recorder = seed.ok()
                   ? std::make_unique<replay::ReplayRecorder>(
                         std::move(*seed))
                   : std::make_unique<replay::ReplayRecorder>();
  }
  const auto finish_recording = [&]() -> Status {
    if (recorder == nullptr) return Status::OK();
    CTFL_RETURN_IF_ERROR(recorder->WriteTo(record_out));
    std::printf("recorded %zu query events -> %s\n",
                recorder->num_events(), record_out.c_str());
    return Status::OK();
  };

  const std::string requests_path = flags.GetString("requests-file");
  if (!requests_path.empty()) {
    CTFL_RETURN_IF_ERROR(RunRequestsFile(engine, requests_path, eval,
                                         options, recorder.get()));
    return finish_recording();
  }

  const store::QueryReport report =
      recorder != nullptr ? recorder->RecordEvaluate(engine, eval)
                          : engine.Evaluate(eval);
  std::fputs(serve::RenderEvaluation(report, eval.kernel,
                                     engine.origin_tau_w(),
                                     engine.origin_delta(),
                                     bundle.meta.micro_scores,
                                     bundle.meta.macro_scores)
                 .c_str(),
             stdout);

  const std::string instances_path = flags.GetString("instances");
  if (!instances_path.empty()) {
    CTFL_ASSIGN_OR_RETURN(Dataset instances,
                          LoadCsvDataset(instances_path, bundle.schema));
    std::fputs(serve::RenderRelatedHeader(options.use_index).c_str(),
               stdout);
    for (size_t i = 0; i < instances.size(); ++i) {
      const store::RelatedResult related =
          recorder != nullptr
              ? recorder->RecordRelated(engine, instances.instance(i),
                                        options)
              : engine.Related(instances.instance(i), options);
      std::fputs(serve::RenderRelatedLookup(i, related,
                                            bundle.meta.participant_names)
                     .c_str(),
                 stdout);
    }
  }

  if (telemetry_summary) {
    std::printf("\nspan summary:\n%s",
                telemetry::TraceSummaryTable().c_str());
    std::printf("\nmetrics:\n%s",
                telemetry::MetricsRegistry::Global().SummaryTable().c_str());
  }
  return finish_recording();
}

int Main(int argc, const char* const* argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: ctfl <generate|train|rules|score|snapshot|query> "
                 "[flags]\n"
                 "run a subcommand with no flags to see its options\n");
    return 1;
  }
  const std::string command = argv[1];
  Status status;
  if (command == "generate") {
    status = RunGenerate(argc - 2, argv + 2);
  } else if (command == "train") {
    status = RunTrain(argc - 2, argv + 2);
  } else if (command == "rules") {
    status = RunRules(argc - 2, argv + 2);
  } else if (command == "score") {
    status = RunScore(argc - 2, argv + 2, /*snapshot_mode=*/false);
  } else if (command == "snapshot") {
    status = RunScore(argc - 2, argv + 2, /*snapshot_mode=*/true);
  } else if (command == "query") {
    status = RunQuery(argc - 2, argv + 2);
  } else {
    status = Status::InvalidArgument("unknown subcommand " + command);
  }
  return status.ok() ? 0 : Fail(status);
}

}  // namespace
}  // namespace ctfl

int main(int argc, char** argv) { return ctfl::Main(argc, argv); }
