// ctfl — command-line front end for the CTFL library.
//
// Subcommands:
//   generate  --dataset NAME --out FILE [--n N] [--seed S]
//       Writes a benchmark dataset (tic-tac-toe exact, or the synthetic
//       adult/bank/dota2 equivalents) as CSV.
//   train     --dataset NAME --data FILE --model OUT [--epochs E] [--lr R]
//       Trains a rule-based model on a CSV dataset and saves it.
//   rules     --dataset NAME --model FILE [--out FILE] [--min-weight W]
//       Prints (or writes) the model's extracted symbolic rules.
//   score     --dataset NAME --train FILE --test FILE [--participants K]
//             [--tau-w T] [--skew-label] [--seed S]
//             [--telemetry-out FILE.json] [--telemetry-summary]
//       Partitions the training CSV into K participants, runs the full
//       CTFL pipeline, and prints micro/macro scores + a loss report.
//       --telemetry-out writes a Chrome trace (open in chrome://tracing
//       or ui.perfetto.dev); --telemetry-summary prints per-span and
//       per-phase cost tables.
//
// The --dataset flag names the schema (the federation's agreed feature
// space); CSV files must match it.

#include <cstdio>
#include <map>

#include "ctfl/core/incentive.h"
#include "ctfl/core/interpret.h"
#include "ctfl/core/pipeline.h"
#include "ctfl/data/gen/benchmarks.h"
#include "ctfl/data/gen/tictactoe.h"
#include "ctfl/data/split.h"
#include "ctfl/fl/partition.h"
#include "ctfl/nn/serialize.h"
#include "ctfl/telemetry/metrics.h"
#include "ctfl/telemetry/trace.h"
#include "ctfl/util/flags.h"

namespace ctfl {
namespace {

Result<SchemaPtr> SchemaFor(const std::string& dataset) {
  if (dataset == "tic-tac-toe") return TicTacToeSchema();
  CTFL_ASSIGN_OR_RETURN(SyntheticSpec spec, BenchmarkSpec(dataset));
  return spec.schema;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

Status RunGenerate(int argc, const char* const* argv) {
  FlagParser flags({{"dataset", "adult"},
                    {"out", ""},
                    {"n", "1000"},
                    {"seed", "42"}});
  CTFL_RETURN_IF_ERROR(flags.Parse(argc, argv));
  if (flags.GetString("out").empty()) {
    return Status::InvalidArgument("--out is required");
  }
  CTFL_ASSIGN_OR_RETURN(int n, flags.GetInt("n"));
  CTFL_ASSIGN_OR_RETURN(int seed, flags.GetInt("seed"));
  CTFL_ASSIGN_OR_RETURN(
      Dataset dataset,
      MakeBenchmark(flags.GetString("dataset"), n, seed));
  CTFL_RETURN_IF_ERROR(SaveCsvDataset(flags.GetString("out"), dataset));
  std::printf("wrote %zu instances to %s\n", dataset.size(),
              flags.GetString("out").c_str());
  return Status::OK();
}

Status RunTrain(int argc, const char* const* argv) {
  FlagParser flags({{"dataset", "adult"},
                    {"data", ""},
                    {"model", ""},
                    {"epochs", "30"},
                    {"lr", "0.05"},
                    {"width", "96"},
                    {"seed", "42"}});
  CTFL_RETURN_IF_ERROR(flags.Parse(argc, argv));
  if (flags.GetString("data").empty() || flags.GetString("model").empty()) {
    return Status::InvalidArgument("--data and --model are required");
  }
  CTFL_ASSIGN_OR_RETURN(SchemaPtr schema,
                        SchemaFor(flags.GetString("dataset")));
  CTFL_ASSIGN_OR_RETURN(Dataset data,
                        LoadCsvDataset(flags.GetString("data"), schema));
  CTFL_ASSIGN_OR_RETURN(int epochs, flags.GetInt("epochs"));
  CTFL_ASSIGN_OR_RETURN(double lr, flags.GetDouble("lr"));
  CTFL_ASSIGN_OR_RETURN(int width, flags.GetInt("width"));
  CTFL_ASSIGN_OR_RETURN(int seed, flags.GetInt("seed"));

  LogicalNetConfig net_config;
  net_config.logic_layers = {{width / 2, width - width / 2}};
  net_config.seed = seed;
  TrainConfig train_config;
  train_config.epochs = epochs;
  train_config.learning_rate = lr;
  LogicalNet net(schema, net_config);
  const TrainReport report = TrainGrafted(net, data, train_config);
  CTFL_RETURN_IF_ERROR(SaveLogicalNet(net, flags.GetString("model")));
  std::printf("trained on %zu instances (train accuracy %.3f); model -> %s\n",
              data.size(), report.train_accuracy,
              flags.GetString("model").c_str());
  return Status::OK();
}

Status RunRules(int argc, const char* const* argv) {
  FlagParser flags({{"dataset", "adult"},
                    {"model", ""},
                    {"out", ""},
                    {"min-weight", "0.01"}});
  CTFL_RETURN_IF_ERROR(flags.Parse(argc, argv));
  if (flags.GetString("model").empty()) {
    return Status::InvalidArgument("--model is required");
  }
  CTFL_ASSIGN_OR_RETURN(SchemaPtr schema,
                        SchemaFor(flags.GetString("dataset")));
  CTFL_ASSIGN_OR_RETURN(LogicalNet net,
                        LoadLogicalNet(schema, flags.GetString("model")));
  CTFL_ASSIGN_OR_RETURN(double min_weight, flags.GetDouble("min-weight"));
  const std::string out = flags.GetString("out");
  if (!out.empty()) {
    CTFL_RETURN_IF_ERROR(ExportRulesText(net, out, min_weight));
    std::printf("rules -> %s\n", out.c_str());
    return Status::OK();
  }
  const ExtractionResult extraction = ExtractRules(net);
  for (const ExtractedRule& er : extraction.rules) {
    if (er.weight < min_weight) continue;
    std::printf("r%d%s w=%.4f : %s\n", er.coordinate,
                er.support_class == 1 ? "+" : "-", er.weight,
                er.rule.ToString(*schema).c_str());
  }
  return Status::OK();
}

Status RunScore(int argc, const char* const* argv) {
  FlagParser flags({{"dataset", "adult"},
                    {"train", ""},
                    {"test", ""},
                    {"participants", "4"},
                    {"tau-w", "0.9"},
                    {"alpha", "0.8"},
                    {"skew-label", "false"},
                    {"epochs", "20"},
                    {"width", "96"},
                    {"budget", "0"},
                    {"seed", "42"},
                    {"telemetry-out", ""},
                    {"telemetry-summary", "false"}});
  CTFL_RETURN_IF_ERROR(flags.Parse(argc, argv));
  if (flags.GetString("train").empty() || flags.GetString("test").empty()) {
    return Status::InvalidArgument("--train and --test are required");
  }
  CTFL_ASSIGN_OR_RETURN(SchemaPtr schema,
                        SchemaFor(flags.GetString("dataset")));
  CTFL_ASSIGN_OR_RETURN(Dataset train,
                        LoadCsvDataset(flags.GetString("train"), schema));
  CTFL_ASSIGN_OR_RETURN(Dataset test,
                        LoadCsvDataset(flags.GetString("test"), schema));
  CTFL_ASSIGN_OR_RETURN(int participants, flags.GetInt("participants"));
  CTFL_ASSIGN_OR_RETURN(double tau_w, flags.GetDouble("tau-w"));
  CTFL_ASSIGN_OR_RETURN(double alpha, flags.GetDouble("alpha"));
  CTFL_ASSIGN_OR_RETURN(int epochs, flags.GetInt("epochs"));
  CTFL_ASSIGN_OR_RETURN(int width, flags.GetInt("width"));
  CTFL_ASSIGN_OR_RETURN(double budget, flags.GetDouble("budget"));
  CTFL_ASSIGN_OR_RETURN(int seed, flags.GetInt("seed"));
  const std::string telemetry_out = flags.GetString("telemetry-out");
  const bool telemetry_summary = flags.GetBool("telemetry-summary");
  if (!telemetry_out.empty() || telemetry_summary) {
    telemetry::SetTracingEnabled(true);
  }

  Rng prng(seed);
  const Federation fed = MakeFederation(
      flags.GetBool("skew-label")
          ? PartitionSkewLabel(train, participants, alpha, prng)
          : PartitionSkewSample(train, participants, alpha, prng));

  CtflConfig config;
  config.federated = false;
  config.central.epochs = epochs;
  config.central.learning_rate = 0.05;
  config.net.logic_layers = {{width / 2, width - width / 2}};
  config.net.seed = seed;
  config.tracer.tau_w = tau_w;
  const CtflReport report = RunCtfl(fed, test, config);

  std::printf("model accuracy: %.4f  (train %.1fs, trace %.2fs)\n\n",
              report.test_accuracy, report.train_seconds,
              report.trace_seconds);
  std::printf("participant  records    micro     macro\n");
  for (const Participant& p : fed) {
    std::printf("%-11s %8zu   %.4f    %.4f\n", p.name.c_str(),
                p.data.size(), report.micro_scores[p.id],
                report.macro_scores[p.id]);
  }
  std::printf("\nloss-tracing report:\n%s",
              FormatLossReport(AnalyzeLoss(report.trace)).c_str());
  if (budget > 0.0) {
    IncentiveConfig incentive;
    incentive.budget = budget;
    std::printf("\npayouts (budget %.2f, macro scheme):\n%s", budget,
                FormatPayouts(ComputePayouts(report, incentive)).c_str());
  }
  if (telemetry_summary) {
    std::printf("\nrun telemetry:\n%s", report.telemetry.Summary().c_str());
    std::printf("\nspan summary:\n%s",
                telemetry::TraceSummaryTable().c_str());
    std::printf("\nmetrics:\n%s",
                telemetry::MetricsRegistry::Global().SummaryTable().c_str());
  }
  if (!telemetry_out.empty()) {
    CTFL_RETURN_IF_ERROR(telemetry::WriteChromeTrace(telemetry_out));
    std::printf("\nchrome trace (%zu events) -> %s\n",
                telemetry::TraceEventCount(), telemetry_out.c_str());
  }
  return Status::OK();
}

int Main(int argc, const char* const* argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: ctfl <generate|train|rules|score> [flags]\n"
                 "run a subcommand with no flags to see its options\n");
    return 1;
  }
  const std::string command = argv[1];
  Status status;
  if (command == "generate") {
    status = RunGenerate(argc - 2, argv + 2);
  } else if (command == "train") {
    status = RunTrain(argc - 2, argv + 2);
  } else if (command == "rules") {
    status = RunRules(argc - 2, argv + 2);
  } else if (command == "score") {
    status = RunScore(argc - 2, argv + 2);
  } else {
    status = Status::InvalidArgument("unknown subcommand " + command);
  }
  return status.ok() ? 0 : Fail(status);
}

}  // namespace
}  // namespace ctfl

int main(int argc, char** argv) { return ctfl::Main(argc, argv); }
