// ctfl_query_client — wire-protocol client for ctfl_serve.
//
// Single-shot mode (default): runs one query against a resident server
// and renders the result *byte-identically* to the tail of one-shot
// `ctfl query` over the same bundle (the CI smoke test diffs the two).
// Status chatter goes to stderr; stdout carries only the rendered result.
//
//   ctfl_query_client (--socket PATH | --port N [--host 127.0.0.1])
//     --op query      EVALUATE + optional --instances RELATED lookups
//                     (default; equals `ctfl query` output from the
//                     "scores at ..." line on). --instances needs --bundle
//                     to parse the CSV against the bundle's schema.
//     --op related-test --test-index N   one stored-test lookup
//     --op stats      server counters + bundle shape
//     --op shutdown   ask the server to drain
//
// Load mode (--load): N concurrent connections x M requests each, then a
// latency/throughput report and optionally google-benchmark-shaped JSON
// (--json-out) for BENCH_serve.json and the CI perf gate.
//
//   ctfl_query_client --socket S --load --connections 8 --requests 200
//     [--op related-test|evaluate|stats] [--verify] [--json-out FILE]
//     [--replay FILE.ctflr] [--seed N]
//
// --replay draws the load mix from a recorded replay file (DESIGN.md §14)
// instead of the synthetic single-op shape: each connection replays a
// deterministic, seeded sample of the captured RELATED / RELATED_FOR_TEST
// / EVALUATE stream (seeded per connection with --seed + connection id),
// and the report adds a per-op latency breakdown.
//
// --verify additionally checks that every response body is byte-identical
// across connections for the same request (concurrency must not change a
// single bit of any answer); under --replay it also checks each response
// digest against the digest captured at record time.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ctfl/data/dataset.h"
#include "ctfl/kernel/trace_kernel.h"
#include "ctfl/replay/replay_file.h"
#include "ctfl/serve/client.h"
#include "ctfl/serve/protocol.h"
#include "ctfl/serve/render.h"
#include "ctfl/store/bundle.h"
#include "ctfl/util/build_info.h"
#include "ctfl/util/flags.h"
#include "ctfl/util/rng.h"
#include "ctfl/util/string_util.h"

namespace ctfl {
namespace {

using serve::Client;
using serve::Op;
using serve::Request;
using serve::Response;

Result<Client> Connect(const FlagParser& flags) {
  const std::string socket_path = flags.GetString("socket");
  if (!socket_path.empty()) return Client::ConnectUnix(socket_path);
  CTFL_ASSIGN_OR_RETURN(int port, flags.GetInt("port"));
  if (port <= 0) {
    return Status::InvalidArgument("one of --socket or --port is required");
  }
  return Client::ConnectTcp(flags.GetString("host"), port);
}

/// Sends `request`; transport and server-side failures both surface as
/// error Status so callers handle one channel.
Result<Response> CallChecked(Client& client, const Request& request) {
  CTFL_ASSIGN_OR_RETURN(Response response, client.Call(request));
  if (!response.status.ok()) return response.status;
  return response;
}

Status RunQueryOp(Client& client, const FlagParser& flags,
                  const store::QueryOptions& query_options,
                  const store::EvalOptions& eval_options) {
  Request request;
  request.op = Op::kEvaluate;
  request.evaluate.options = eval_options;
  CTFL_ASSIGN_OR_RETURN(Response response, CallChecked(client, request));
  std::fputs(serve::RenderEvaluation(response.report,
                                     eval_options.kernel,
                                     response.origin_tau_w,
                                     response.origin_delta,
                                     response.origin_micro,
                                     response.origin_macro)
                 .c_str(),
             stdout);

  const std::string instances_path = flags.GetString("instances");
  if (instances_path.empty()) return Status::OK();
  const std::string bundle_path = flags.GetString("bundle");
  if (bundle_path.empty()) {
    return Status::InvalidArgument(
        "--instances needs --bundle (schema source for CSV parsing)");
  }
  CTFL_ASSIGN_OR_RETURN(store::BundleContent content,
                        store::ReadBundle(bundle_path));
  CTFL_ASSIGN_OR_RETURN(Dataset instances,
                        LoadCsvDataset(instances_path, content.schema));

  Request stats_request;
  stats_request.op = Op::kStats;
  CTFL_ASSIGN_OR_RETURN(Response stats, CallChecked(client, stats_request));

  std::fputs(serve::RenderRelatedHeader(query_options.use_index).c_str(),
             stdout);
  for (size_t i = 0; i < instances.size(); ++i) {
    Request related;
    related.op = Op::kRelated;
    related.related.instance = instances.instance(i);
    related.related.options = query_options;
    CTFL_ASSIGN_OR_RETURN(Response r, CallChecked(client, related));
    std::fputs(serve::RenderRelatedLookup(i, r.related,
                                          stats.stats.participant_names)
                   .c_str(),
               stdout);
  }
  return Status::OK();
}

Status RunRelatedTestOp(Client& client, const FlagParser& flags,
                        const store::QueryOptions& query_options) {
  CTFL_ASSIGN_OR_RETURN(int test_index, flags.GetInt("test-index"));
  if (test_index < 0) {
    return Status::InvalidArgument("--test-index must be >= 0");
  }
  Request stats_request;
  stats_request.op = Op::kStats;
  CTFL_ASSIGN_OR_RETURN(Response stats, CallChecked(client, stats_request));
  Request request;
  request.op = Op::kRelatedForTest;
  request.related_for_test.test_index = static_cast<uint64_t>(test_index);
  request.related_for_test.options = query_options;
  CTFL_ASSIGN_OR_RETURN(Response response, CallChecked(client, request));
  std::fputs(serve::RenderRelatedLookup(static_cast<size_t>(test_index),
                                        response.related,
                                        stats.stats.participant_names)
                 .c_str(),
             stdout);
  return Status::OK();
}

Status RunStatsOp(Client& client) {
  Request request;
  request.op = Op::kStats;
  CTFL_ASSIGN_OR_RETURN(Response response, CallChecked(client, request));
  const serve::ServerStats& s = response.stats;
  std::printf(
      "bundle: %u participants, %u rules, %llu train records, %llu tests "
      "(%llu bytes)\n"
      "origin: tau_w=%.4f delta=%d\n"
      "requests: %llu total, %llu errors (%llu related, %llu related-test, "
      "%llu evaluate)\n"
      "cache: %llu hits, %llu misses\n"
      "trace kernel: isa=%s, %llu exact fallbacks\n"
      "streaming: %llu rounds folded\n",
      s.num_participants, s.num_rules,
      static_cast<unsigned long long>(s.train_records),
      static_cast<unsigned long long>(s.test_records),
      static_cast<unsigned long long>(s.bundle_bytes), s.origin_tau_w,
      s.origin_delta, static_cast<unsigned long long>(s.requests_total),
      static_cast<unsigned long long>(s.errors_total),
      static_cast<unsigned long long>(s.related_requests),
      static_cast<unsigned long long>(s.related_for_test_requests),
      static_cast<unsigned long long>(s.evaluate_requests),
      static_cast<unsigned long long>(s.cache_hits),
      static_cast<unsigned long long>(s.cache_misses),
      s.trace_isa.empty() ? "unknown" : s.trace_isa.c_str(),
      static_cast<unsigned long long>(s.exact_fallbacks),
      static_cast<unsigned long long>(s.rounds_folded));
  return Status::OK();
}

Status RunShutdownOp(Client& client) {
  Request request;
  request.op = Op::kShutdown;
  CTFL_ASSIGN_OR_RETURN(Response response, CallChecked(client, request));
  std::fprintf(stderr, "server draining after %llu requests\n",
               static_cast<unsigned long long>(
                   response.stats.requests_total));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Load mode.
// ---------------------------------------------------------------------------

struct LoadResult {
  std::vector<double> latencies_us;  ///< one entry per completed request
  std::vector<uint8_t> ops;          ///< wire op of each entry (same order)
  Status status = Status::OK();
};

/// One replayable request drawn from a recorded query stream: the decoded
/// request (id zeroed so the client stamps fresh ids), the response digest
/// captured at record time, and the event's index in the file (the
/// cross-connection identity key).
struct ReplayItem {
  Request request;
  uint64_t digest = 0;
  size_t event_index = 0;
};

/// Decodes the digest-stable events (RELATED / RELATED_FOR_TEST /
/// EVALUATE) of a replay file into a request pool for load mode. STATS
/// and SHUTDOWN events are skipped: stats drift with traffic and a
/// replayed shutdown would drain the server mid-soak.
Result<std::vector<ReplayItem>> LoadReplayMix(const std::string& path) {
  CTFL_ASSIGN_OR_RETURN(replay::ReplayFile file,
                        replay::ReadReplayFile(path));
  std::vector<ReplayItem> items;
  items.reserve(file.events.size());
  for (size_t i = 0; i < file.events.size(); ++i) {
    const replay::QueryEvent& event = file.events[i];
    if (!replay::OpIsDigestStable(event.op)) continue;
    CTFL_ASSIGN_OR_RETURN(Request request,
                          serve::DecodeRequest(event.request));
    request.request_id = 0;
    items.push_back(ReplayItem{std::move(request), event.response_digest, i});
  }
  if (items.empty()) {
    return Status::FailedPrecondition(
        path + " holds no replayable query events (record one with "
               "`ctfl query --record` or `ctfl_serve --record`)");
  }
  return items;
}

/// Re-encodes `response` with the request id zeroed: a canonical byte
/// string for cross-connection identity checks.
std::string CanonicalBytes(Response response) {
  response.request_id = 0;
  return EncodeResponse(response);
}

Status RunLoad(const FlagParser& flags,
               const store::QueryOptions& query_options,
               const store::EvalOptions& eval_options) {
  CTFL_ASSIGN_OR_RETURN(int connections, flags.GetInt("connections"));
  CTFL_ASSIGN_OR_RETURN(int requests, flags.GetInt("requests"));
  if (connections <= 0 || requests <= 0) {
    return Status::InvalidArgument(
        "--connections and --requests must be > 0");
  }
  const std::string replay_path = flags.GetString("replay");
  std::vector<ReplayItem> mix;
  std::string op_name = flags.GetString("op");
  Op op = Op::kStats;
  if (!replay_path.empty()) {
    CTFL_ASSIGN_OR_RETURN(mix, LoadReplayMix(replay_path));
    op_name = "replay-mix";
  } else {
    if (op_name == "query") op_name = "related-test";  // load-mode default
    if (op_name == "related-test") {
      op = Op::kRelatedForTest;
    } else if (op_name == "evaluate") {
      op = Op::kEvaluate;
    } else if (op_name == "stats") {
      op = Op::kStats;
    } else {
      return Status::InvalidArgument(
          "--load supports --op related-test|evaluate|stats, got " + op_name);
    }
  }
  const bool verify = flags.GetBool("verify");
  CTFL_ASSIGN_OR_RETURN(int seed, flags.GetInt("seed"));

  // One probe connection: fail fast on a bad address and learn the test
  // count for index cycling.
  uint64_t num_tests = 0;
  {
    CTFL_ASSIGN_OR_RETURN(Client probe, Connect(flags));
    Request stats_request;
    stats_request.op = Op::kStats;
    CTFL_ASSIGN_OR_RETURN(Response stats, CallChecked(probe, stats_request));
    num_tests = stats.stats.test_records;
    if (mix.empty() && op == Op::kRelatedForTest && num_tests == 0) {
      return Status::FailedPrecondition(
          "bundle has no stored tests to cycle RELATED_FOR_TEST over");
    }
  }

  std::mutex canonical_mu;
  std::map<uint64_t, std::string> canonical;  // request key -> bytes
  std::vector<LoadResult> results(connections);
  std::vector<std::thread> threads;
  threads.reserve(connections);
  const auto start = std::chrono::steady_clock::now();
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      LoadResult& result = results[c];
      Result<Client> client = Connect(flags);
      if (!client.ok()) {
        result.status = client.status();
        return;
      }
      result.latencies_us.reserve(requests);
      result.ops.reserve(requests);
      // Each connection draws its own deterministic sample of the mix:
      // same --seed, same file => same per-connection request sequence.
      Rng rng(static_cast<uint64_t>(seed) + static_cast<uint64_t>(c));
      for (int i = 0; i < requests; ++i) {
        Request request;
        uint64_t key = 0;
        uint64_t want_digest = 0;
        if (!mix.empty()) {
          const ReplayItem& item = mix[rng.UniformInt(mix.size())];
          request = item.request;
          key = static_cast<uint64_t>(item.event_index);
          want_digest = item.digest;
        } else {
          request.op = op;
          if (op == Op::kRelatedForTest) {
            key = static_cast<uint64_t>(i) % num_tests;
            request.related_for_test.test_index = key;
            request.related_for_test.options = query_options;
          } else if (op == Op::kEvaluate) {
            request.evaluate.options = eval_options;
          }
        }
        const auto t0 = std::chrono::steady_clock::now();
        Result<Response> response = client->Call(request);
        const auto t1 = std::chrono::steady_clock::now();
        if (!response.ok()) {
          result.status = response.status();
          return;
        }
        if (!response->status.ok()) {
          result.status = response->status;
          return;
        }
        result.latencies_us.push_back(
            std::chrono::duration_cast<
                std::chrono::duration<double, std::micro>>(t1 - t0)
                .count());
        result.ops.push_back(static_cast<uint8_t>(request.op));
        if (verify && request.op != Op::kStats) {
          if (!mix.empty()) {
            const uint64_t got_digest = replay::ResponseDigest(*response);
            if (got_digest != want_digest) {
              result.status = Status::Internal(StrFormat(
                  "replayed event %llu: response digest %016llx differs "
                  "from the recorded digest %016llx",
                  static_cast<unsigned long long>(key),
                  static_cast<unsigned long long>(got_digest),
                  static_cast<unsigned long long>(want_digest)));
              return;
            }
          }
          const std::string bytes = CanonicalBytes(*std::move(response));
          std::lock_guard<std::mutex> lock(canonical_mu);
          auto [it, inserted] = canonical.emplace(key, bytes);
          if (!inserted && it->second != bytes) {
            result.status = Status::Internal(StrFormat(
                "response for request key %llu differs across connections",
                static_cast<unsigned long long>(key)));
            return;
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - start)
          .count();

  std::vector<double> latencies;
  std::map<uint8_t, std::vector<double>> by_op;
  for (const LoadResult& result : results) {
    CTFL_RETURN_IF_ERROR(result.status);
    latencies.insert(latencies.end(), result.latencies_us.begin(),
                     result.latencies_us.end());
    for (size_t i = 0; i < result.latencies_us.size(); ++i) {
      by_op[result.ops[i]].push_back(result.latencies_us[i]);
    }
  }
  std::sort(latencies.begin(), latencies.end());
  const size_t n = latencies.size();
  // quantile over an already-sorted vector (nearest-rank on p*(n-1)).
  auto quantile = [](const std::vector<double>& sorted, double p) {
    if (sorted.empty()) return 0.0;
    const size_t idx = static_cast<size_t>(p * (sorted.size() - 1));
    return sorted[idx];
  };
  const double p50 = quantile(latencies, 0.50);
  const double p99 = quantile(latencies, 0.99);
  double sum = 0.0;
  for (double v : latencies) sum += v;
  const double mean = n == 0 ? 0.0 : sum / n;
  const double rps = wall_seconds > 0.0 ? n / wall_seconds : 0.0;

  std::printf("%s x %d connections x %d requests: %zu ok\n", op_name.c_str(),
              connections, requests, n);
  std::printf("throughput %.1f req/s; latency mean %.1f us, p50 %.1f us, "
              "p99 %.1f us%s\n",
              rps, mean, p50, p99,
              verify ? "; responses byte-identical across connections" : "");
  // Per-op breakdown whenever the mix spans more than one op (always the
  // interesting case under --replay).
  if (by_op.size() > 1) {
    for (auto& [op_byte, lats] : by_op) {
      std::sort(lats.begin(), lats.end());
      double op_sum = 0.0;
      for (double v : lats) op_sum += v;
      std::printf("  %-16s %6zu reqs  mean %8.1f us  p50 %8.1f us  "
                  "p99 %8.1f us\n",
                  serve::OpName(static_cast<Op>(op_byte)), lats.size(),
                  lats.empty() ? 0.0 : op_sum / lats.size(),
                  quantile(lats, 0.50), quantile(lats, 0.99));
    }
  }

  const std::string json_out = flags.GetString("json-out");
  if (!json_out.empty()) {
    std::ofstream out(json_out);
    if (!out) return Status::IoError("cannot write " + json_out);
    // google-benchmark JSON shape so tools/perf_gate.py gates it like the
    // micro benchmarks (context gate: release build + same host shape).
    out << StrFormat(
        "{\n"
        "  \"context\": {\n"
        "    \"ctfl_build_type\": \"%s\",\n"
        "    \"num_cpus\": %u\n"
        "  },\n"
        "  \"benchmarks\": [\n"
        "    {\n"
        "      \"name\": \"BM_Serve/%s/connections:%d\",\n"
        "      \"run_type\": \"iteration\",\n"
        "      \"iterations\": %zu,\n"
        "      \"real_time\": %.3f,\n"
        "      \"time_unit\": \"us\",\n"
        "      \"items_per_second\": %.3f,\n"
        "      \"p50_us\": %.3f,\n"
        "      \"p99_us\": %.3f\n"
        "    }\n"
        "  ]\n"
        "}\n",
        BuildTypeName(),
        static_cast<unsigned>(std::thread::hardware_concurrency()),
        op_name.c_str(), connections, n, mean, rps, p50, p99);
    std::fprintf(stderr, "load report -> %s\n", json_out.c_str());
  }
  return Status::OK();
}

Status Run(int argc, const char* const* argv) {
  FlagParser flags({{"socket", ""},
                    {"host", "127.0.0.1"},
                    {"port", "0"},
                    {"op", "query"},
                    {"bundle", ""},
                    {"instances", ""},
                    {"test-index", "0"},
                    {"tau-w", "-1"},
                    {"delta", "-1"},
                    {"top-k", "5"},
                    {"max-records", "3"},
                    {"linear", "false"},
                    {"trace-kernel", "blocked"},
                    {"load", "false"},
                    {"connections", "8"},
                    {"requests", "100"},
                    {"verify", "false"},
                    {"json-out", ""},
                    {"replay", ""},
                    {"seed", "1"}});
  CTFL_RETURN_IF_ERROR(flags.Parse(argc, argv));
  CTFL_ASSIGN_OR_RETURN(double tau_w, flags.GetDouble("tau-w"));
  CTFL_ASSIGN_OR_RETURN(int delta, flags.GetInt("delta"));
  CTFL_ASSIGN_OR_RETURN(int top_k, flags.GetInt("top-k"));
  CTFL_ASSIGN_OR_RETURN(int max_records, flags.GetInt("max-records"));
  CTFL_ASSIGN_OR_RETURN(TraceKernelKind kernel,
                        ParseTraceKernelKind(flags.GetString("trace-kernel")));
  store::QueryOptions query_options;
  query_options.tau_w = tau_w;
  query_options.use_index = !flags.GetBool("linear");
  query_options.kernel = kernel;
  query_options.max_records =
      static_cast<size_t>(std::max(0, max_records));
  store::EvalOptions eval_options;
  eval_options.tau_w = tau_w;
  eval_options.delta = delta;
  eval_options.top_k = top_k;
  eval_options.kernel = kernel;

  if (flags.GetBool("load")) {
    return RunLoad(flags, query_options, eval_options);
  }

  CTFL_ASSIGN_OR_RETURN(Client client, Connect(flags));
  const std::string op = flags.GetString("op");
  if (op == "query") {
    return RunQueryOp(client, flags, query_options, eval_options);
  }
  if (op == "related-test") {
    return RunRelatedTestOp(client, flags, query_options);
  }
  if (op == "stats") return RunStatsOp(client);
  if (op == "shutdown") return RunShutdownOp(client);
  return Status::InvalidArgument(
      "--op must be query, related-test, stats, or shutdown; got " + op);
}

}  // namespace
}  // namespace ctfl

int main(int argc, char** argv) {
  const ctfl::Status status = ctfl::Run(argc - 1, argv + 1);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
