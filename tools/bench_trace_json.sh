#!/usr/bin/env bash
# Back-compat wrapper: the tracing benchmark JSON is now produced by the
# generalized suite runner (tools/bench_suite.sh, suite "trace"), which
# enforces a Release build and stamps build type + git revision into the
# JSON context. This wrapper keeps the historical interface alive for
# scripts and CI jobs that call it directly.
#
# Usage: tools/bench_trace_json.sh [build-dir] [out.json]
#   build-dir defaults to build-release (configured Release if missing).
#   out.json  defaults to BENCH_trace.json in the repo root; may also be
#             set via CTFL_BENCH_TRACE_OUT.

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build-release}"
OUT_JSON="${2:-${CTFL_BENCH_TRACE_OUT:-${REPO_ROOT}/BENCH_trace.json}}"

OUT_DIR="$(cd "$(dirname "${OUT_JSON}")" && pwd)"
"${REPO_ROOT}/tools/bench_suite.sh" "${BUILD_DIR}" "${OUT_DIR}" trace

if [[ "${OUT_DIR}/BENCH_trace.json" != "${OUT_JSON}" ]]; then
  mv "${OUT_DIR}/BENCH_trace.json" "${OUT_JSON}"
fi
echo "wrote ${OUT_JSON}"
