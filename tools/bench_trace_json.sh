#!/usr/bin/env bash
# Runs the tracing-kernel benchmarks (BM_TracePass legacy vs blocked) and
# writes a machine-readable BENCH_trace.json. The JSON carries, per variant,
# the pass wall time plus the pruning counters exported by the kernel:
# tau_w_checks (candidates submitted), records_scanned (candidates whose
# overlap words were actually touched by the blocked kernel) and
# blocks_pruned (64-record blocks skipped wholesale by the upper-bound
# early exit). The legacy kernel reports records_scanned == 0 by
# construction, so downstream checks compare blocked.records_scanned
# against legacy.tau_w_checks.
#
# Usage: tools/bench_trace_json.sh [build-dir] [out.json]
#   build-dir defaults to build-release (configured Release if missing).
#   out.json  defaults to BENCH_trace.json in the repo root; may also be
#             set via CTFL_BENCH_TRACE_OUT.

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build-release}"
OUT_JSON="${2:-${CTFL_BENCH_TRACE_OUT:-${REPO_ROOT}/BENCH_trace.json}}"

cmake -S "${REPO_ROOT}" -B "${BUILD_DIR}" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "${BUILD_DIR}" --target micro_benchmarks -j "$(nproc)" >/dev/null

BENCH_BIN="$(find "${BUILD_DIR}" -name micro_benchmarks -type f -perm -u+x | head -n 1)"
if [[ -z "${BENCH_BIN}" ]]; then
  echo "bench_trace_json: micro_benchmarks binary not found under ${BUILD_DIR}" >&2
  exit 2
fi

"${BENCH_BIN}" \
  --benchmark_filter='^BM_TracePass/' \
  --benchmark_out="${OUT_JSON}" \
  --benchmark_out_format=json \
  --benchmark_format=console

# Human-readable summary + sanity check that both variants and their
# counters landed in the JSON.
python3 - "${OUT_JSON}" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    data = json.load(f)
rows = {}
for b in data.get("benchmarks", []):
    name = b.get("name", "")
    if not name.startswith("BM_TracePass/"):
        continue
    variant = name.split("/")[1]
    rows[variant] = b
missing = {"legacy", "blocked"} - rows.keys()
if missing:
    print(f"bench_trace_json: missing variants in output: {sorted(missing)}",
          file=sys.stderr)
    sys.exit(2)
for variant in ("legacy", "blocked"):
    b = rows[variant]
    for counter in ("tau_w_checks", "records_scanned", "blocks_pruned"):
        if counter not in b:
            print(f"bench_trace_json: {variant} missing counter {counter}",
                  file=sys.stderr)
            sys.exit(2)
    unit = b.get("time_unit", "ns")
    print(f"BM_TracePass/{variant}: {b['real_time']:.3f} {unit}/pass  "
          f"tau_w_checks={b['tau_w_checks']:.0f}  "
          f"records_scanned={b['records_scanned']:.0f}  "
          f"blocks_pruned={b['blocks_pruned']:.0f}")
speedup = rows["legacy"]["real_time"] / max(rows["blocked"]["real_time"], 1e-12)
print(f"blocked speedup over legacy: {speedup:.2f}x")
PY

echo "wrote ${OUT_JSON}"
