// ctfl_replay — trace-driven record/replay harness (DESIGN.md §14).
//
// Subcommands:
//   record    --out FILE.ctflr [score flags] [--queries N]
//             [--bundle-out FILE.ctflb]
//       Runs the CTFL pipeline on a generated benchmark (same knob
//       surface as `ctfl score`), persists a contribution bundle, drives
//       a recorded query stream through a tapped QueryService, and
//       writes a replay file capturing the run spec, its outcome
//       (fingerprints + bit-exact scores), and every request/response
//       digest.
//   replay    --file FILE.ctflr [--matrix] [--cell NAME] [--scratch DIR]
//             [--no-served] [--bundle FILE.ctflb]
//       Re-executes the recorded run and asserts the bit-identity
//       contract: byte-identical rendered scores and an equal RunReport
//       fingerprint, then replays the query stream digest-for-digest.
//       --matrix runs the full differential matrix (legacy-vs-blocked
//       kernel, threads 1/2/8, faulty-vs-clean, batch vs one-shot vs
//       served); --cell runs one named cell. Exit status is nonzero on
//       any divergence. --bundle replays a query-only file (no spec)
//       against an existing bundle.
//   gen-tests --file FILE.ctflr [--out FILE]
//       Expands the replay file into its differential regression
//       manifest: one `cell NAME: DESCRIPTION` line per matrix cell,
//       each runnable via `ctfl_replay replay --file F --cell NAME`.
//       tests/replay_test.cc executes the same matrix under ctest.

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "ctfl/replay/recorder.h"
#include "ctfl/replay/replay_file.h"
#include "ctfl/replay/runner.h"
#include "ctfl/serve/service.h"
#include "ctfl/store/query_engine.h"
#include "ctfl/util/flags.h"
#include "ctfl/util/string_util.h"

namespace ctfl {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

// --trace-isa forces the process-wide SIMD tier ("auto" keeps runtime
// dispatch). Purely an implementation selector: every replay contract is
// asserted unchanged under any forced tier.
Status ApplyTraceIsaFlag(const std::string& name) {
  if (name.empty() || name == "auto") return Status::OK();
  CTFL_ASSIGN_OR_RETURN(TraceIsa isa, ParseTraceIsa(name));
  return SetTraceIsa(isa);
}

Status RunRecord(int argc, const char* const* argv) {
  FlagParser flags({{"out", ""},
                    {"bundle-out", ""},
                    {"dataset", "adult"},
                    {"train-n", "600"},
                    {"train-seed", "7"},
                    {"test-n", "150"},
                    {"test-seed", "8"},
                    {"participants", "3"},
                    {"tau-w", "0.9"},
                    {"alpha", "0.8"},
                    {"skew-label", "false"},
                    {"epochs", "20"},
                    {"width", "96"},
                    {"num-threads", "-1"},
                    {"seed", "42"},
                    {"federated", "false"},
                    {"rounds", "5"},
                    {"local-epochs", "2"},
                    {"secure-agg", "false"},
                    {"failure-plan", ""},
                    {"retry-budget", "1"},
                    {"trace-kernel", "blocked"},
                    {"trace-isa", "auto"},
                    {"queries", "8"}});
  CTFL_RETURN_IF_ERROR(flags.Parse(argc, argv));
  CTFL_RETURN_IF_ERROR(ApplyTraceIsaFlag(flags.GetString("trace-isa")));
  const std::string out = flags.GetString("out");
  if (out.empty()) return Status::InvalidArgument("--out is required");
  std::string bundle_out = flags.GetString("bundle-out");
  if (bundle_out.empty()) bundle_out = out + ".ctflb";
  CTFL_ASSIGN_OR_RETURN(int queries, flags.GetInt("queries"));
  CTFL_ASSIGN_OR_RETURN(TraceKernelKind trace_kernel,
                        ParseTraceKernelKind(flags.GetString("trace-kernel")));

  replay::RunSpec spec;
  spec.source = replay::DataSource::kGenerate;
  spec.dataset = flags.GetString("dataset");
  CTFL_ASSIGN_OR_RETURN(int train_n, flags.GetInt("train-n"));
  CTFL_ASSIGN_OR_RETURN(int train_seed, flags.GetInt("train-seed"));
  CTFL_ASSIGN_OR_RETURN(int test_n, flags.GetInt("test-n"));
  CTFL_ASSIGN_OR_RETURN(int test_seed, flags.GetInt("test-seed"));
  spec.train_n = static_cast<uint64_t>(train_n);
  spec.train_seed = static_cast<uint64_t>(train_seed);
  spec.test_n = static_cast<uint64_t>(test_n);
  spec.test_seed = static_cast<uint64_t>(test_seed);
  CTFL_ASSIGN_OR_RETURN(int participants, flags.GetInt("participants"));
  spec.participants = static_cast<uint32_t>(participants);
  CTFL_ASSIGN_OR_RETURN(spec.alpha, flags.GetDouble("alpha"));
  spec.skew_label = flags.GetBool("skew-label");
  CTFL_ASSIGN_OR_RETURN(int seed, flags.GetInt("seed"));
  spec.seed = static_cast<uint64_t>(seed);
  spec.federated = flags.GetBool("federated");
  CTFL_ASSIGN_OR_RETURN(int rounds, flags.GetInt("rounds"));
  spec.rounds = static_cast<uint32_t>(rounds);
  CTFL_ASSIGN_OR_RETURN(int local_epochs, flags.GetInt("local-epochs"));
  spec.local_epochs = static_cast<uint32_t>(local_epochs);
  CTFL_ASSIGN_OR_RETURN(int epochs, flags.GetInt("epochs"));
  spec.epochs = static_cast<uint32_t>(epochs);
  CTFL_ASSIGN_OR_RETURN(int width, flags.GetInt("width"));
  spec.width = static_cast<uint32_t>(width);
  CTFL_ASSIGN_OR_RETURN(spec.tau_w, flags.GetDouble("tau-w"));
  spec.secure_agg = flags.GetBool("secure-agg");
  spec.failure_plan = flags.GetString("failure-plan");
  CTFL_ASSIGN_OR_RETURN(int retry_budget, flags.GetInt("retry-budget"));
  spec.retry_budget = static_cast<uint32_t>(retry_budget);
  spec.trace_kernel = static_cast<uint8_t>(trace_kernel);
  CTFL_ASSIGN_OR_RETURN(int num_threads, flags.GetInt("num-threads"));
  spec.num_threads = num_threads;

  replay::RunOverrides overrides;
  overrides.bundle_out = bundle_out;
  CTFL_ASSIGN_OR_RETURN(replay::RunArtifacts artifacts,
                        replay::ExecuteRunSpec(spec, overrides));
  std::printf("run fingerprint %s\n%s",
              StrFormat("0x%016llx",
                        static_cast<unsigned long long>(
                            artifacts.outcome.run_fingerprint))
                  .c_str(),
              artifacts.score_table.c_str());
  std::printf("bundle (%zu bytes) -> %s\n", artifacts.bundle_bytes,
              bundle_out.c_str());

  // Drive the query stream through a tapped QueryService — the same
  // capture point a recording ctfl_serve uses — so the recorded digests
  // are exactly what any replay leg must reproduce.
  replay::ReplayRecorder recorder;
  recorder.CaptureRun(spec, artifacts.outcome);
  CTFL_ASSIGN_OR_RETURN(store::QueryEngine engine,
                        store::QueryEngine::Open(bundle_out));
  const size_t num_tests = engine.bundle().tests.size();
  serve::ServiceConfig service_config;
  service_config.request_tap = recorder.Tap();
  serve::QueryService service(std::move(engine), service_config);

  auto handle = [&service](serve::Request request) {
    return service.Handle(request);
  };
  {
    serve::Request request;  // EVALUATE at the originating parameters
    request.op = serve::Op::kEvaluate;
    handle(request);
  }
  {
    serve::Request request;  // EVALUATE off the origin point
    request.op = serve::Op::kEvaluate;
    request.evaluate.options.tau_w = 0.8;
    handle(request);
  }
  {
    serve::Request request;  // STATS: replayed, never digest-checked
    request.op = serve::Op::kStats;
    handle(request);
  }
  for (int i = 0; i < queries && num_tests > 0; ++i) {
    serve::Request request;
    request.op = serve::Op::kRelatedForTest;
    request.related_for_test.test_index =
        static_cast<uint64_t>(i) % num_tests;
    // Alternate kernel and index-vs-linear across the stream so a replay
    // exercises every lookup path.
    request.related_for_test.options.kernel =
        (i % 2 == 0) ? TraceKernelKind::kBlocked : TraceKernelKind::kLegacy;
    request.related_for_test.options.use_index = (i % 3 != 2);
    request.related_for_test.options.max_records = 3;
    handle(request);
  }
  for (size_t i = 0; i < 2 && i < artifacts.test.size(); ++i) {
    serve::Request request;  // RELATED: deployed inference on the replica
    request.op = serve::Op::kRelated;
    request.related.instance = artifacts.test.instance(i);
    request.related.options.max_records = 3;
    handle(request);
  }

  CTFL_RETURN_IF_ERROR(recorder.WriteTo(out));
  std::printf("recorded %zu query events -> %s\n", recorder.num_events(),
              out.c_str());
  return Status::OK();
}

Status RunReplay(int argc, const char* const* argv) {
  FlagParser flags({{"file", ""},
                    {"matrix", "false"},
                    {"cell", ""},
                    {"scratch", "."},
                    {"no-served", "false"},
                    {"trace-isa", "auto"},
                    {"bundle", ""}});
  CTFL_RETURN_IF_ERROR(flags.Parse(argc, argv));
  CTFL_RETURN_IF_ERROR(ApplyTraceIsaFlag(flags.GetString("trace-isa")));
  if (flags.GetString("file").empty()) {
    return Status::InvalidArgument("--file is required");
  }
  CTFL_ASSIGN_OR_RETURN(replay::ReplayFile file,
                        replay::ReadReplayFile(flags.GetString("file")));

  // Query-only file: replay the stream against a caller-supplied bundle.
  if (!file.has_spec) {
    const std::string bundle = flags.GetString("bundle");
    if (bundle.empty()) {
      return Status::InvalidArgument(
          "replay file has no run spec; --bundle is required to replay "
          "its query stream");
    }
    CTFL_ASSIGN_OR_RETURN(store::QueryEngine engine,
                          store::QueryEngine::Open(bundle));
    serve::QueryService service(std::move(engine));
    CTFL_ASSIGN_OR_RETURN(
        replay::EventReplayResult result,
        replay::ReplayEventsThroughService(file.events, service));
    if (!result.ok()) {
      return Status::FailedPrecondition("queries: " + result.detail);
    }
    std::printf("queries: %zu replayed, %zu digests matched\n",
                result.replayed, result.digest_checked);
    return Status::OK();
  }

  replay::MatrixOptions options;
  options.scratch_dir = flags.GetString("scratch");
  options.only_cell = flags.GetString("cell");
  options.include_served = !flags.GetBool("no-served");
  if (flags.GetBool("matrix") || !options.only_cell.empty()) {
    CTFL_ASSIGN_OR_RETURN(std::vector<replay::CellResult> results,
                          replay::RunMatrix(file, options));
    if (results.empty()) {
      return Status::NotFound("no matrix cell matched " + options.only_cell);
    }
    size_t failed = 0;
    for (const replay::CellResult& result : results) {
      std::printf("cell %s: %s (%s)\n", result.name.c_str(),
                  result.pass ? "PASS" : "FAIL", result.detail.c_str());
      if (!result.pass) ++failed;
    }
    if (failed != 0) {
      return Status::FailedPrecondition(
          StrFormat("%zu of %zu matrix cells diverged", failed,
                    results.size()));
    }
    std::printf("matrix: %zu cells, all bit-identical\n", results.size());
    return Status::OK();
  }

  // Default mode: base replay + streamed query replay.
  replay::RunOverrides overrides;
  const std::string bundle_path =
      options.scratch_dir + "/replay_base.ctflb";
  if (!file.events.empty()) overrides.bundle_out = bundle_path;
  CTFL_ASSIGN_OR_RETURN(replay::RunArtifacts artifacts,
                        replay::ExecuteRunSpec(file.spec, overrides));
  if (!file.has_outcome) {
    return Status::InvalidArgument(
        "replay file has a spec but no recorded outcome to compare to");
  }
  CTFL_RETURN_IF_ERROR(
      replay::CompareOutcomes(file.outcome, artifacts.outcome));
  std::fputs(artifacts.score_table.c_str(), stdout);
  std::printf("scores: bit-identical\n");
  std::printf("run fingerprint: match (0x%016llx)\n",
              static_cast<unsigned long long>(
                  artifacts.outcome.run_fingerprint));
  if (!file.events.empty()) {
    CTFL_ASSIGN_OR_RETURN(store::QueryEngine engine,
                          store::QueryEngine::Open(bundle_path));
    serve::QueryService service(std::move(engine));
    CTFL_ASSIGN_OR_RETURN(
        replay::EventReplayResult result,
        replay::ReplayEventsThroughService(file.events, service));
    if (!result.ok()) {
      return Status::FailedPrecondition("queries: " + result.detail);
    }
    std::printf("queries: %zu replayed, %zu digests matched\n",
                result.replayed, result.digest_checked);
  }
  return Status::OK();
}

Status RunGenTests(int argc, const char* const* argv) {
  FlagParser flags({{"file", ""}, {"out", ""}});
  CTFL_RETURN_IF_ERROR(flags.Parse(argc, argv));
  const std::string path = flags.GetString("file");
  if (path.empty()) return Status::InvalidArgument("--file is required");
  CTFL_ASSIGN_OR_RETURN(replay::ReplayFile file,
                        replay::ReadReplayFile(path));
  const std::vector<replay::MatrixCell> cells =
      replay::GenerateMatrix(file);
  if (cells.empty()) {
    return Status::InvalidArgument(
        "replay file has no spec+outcome; nothing to expand");
  }
  std::string manifest = StrFormat(
      "# differential regression matrix generated from %s\n"
      "# run a cell:  ctfl_replay replay --file %s --cell NAME\n"
      "# run all:     ctfl_replay replay --file %s --matrix\n"
      "# every cell asserts bit-identical scores + fingerprints except\n"
      "# 'clean', which asserts the fingerprint DIVERGES without faults\n",
      path.c_str(), path.c_str(), path.c_str());
  for (const replay::MatrixCell& cell : cells) {
    manifest += StrFormat("cell %s: %s\n", cell.name.c_str(),
                          cell.description.c_str());
  }
  const std::string out = flags.GetString("out");
  if (out.empty()) {
    std::fputs(manifest.c_str(), stdout);
  } else {
    std::ofstream f(out);
    if (!f) return Status::IoError("cannot write " + out);
    f << manifest;
    std::printf("matrix manifest (%zu cells) -> %s\n", cells.size(),
                out.c_str());
  }
  return Status::OK();
}

int Main(int argc, const char* const* argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: ctfl_replay <record|replay|gen-tests> [flags]\n");
    return 1;
  }
  const std::string command = argv[1];
  Status status;
  if (command == "record") {
    status = RunRecord(argc - 2, argv + 2);
  } else if (command == "replay") {
    status = RunReplay(argc - 2, argv + 2);
  } else if (command == "gen-tests") {
    status = RunGenTests(argc - 2, argv + 2);
  } else {
    status = Status::InvalidArgument("unknown subcommand " + command);
  }
  return status.ok() ? 0 : Fail(status);
}

}  // namespace
}  // namespace ctfl

int main(int argc, char** argv) {
  return ctfl::Main(argc, const_cast<const char* const*>(argv));
}
