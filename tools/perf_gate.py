#!/usr/bin/env python3
"""CI perf-regression gate over google-benchmark JSON trajectories.

Compares candidate BENCH_*.json files (fresh tools/bench_suite.sh output)
against their committed baselines and fails when any benchmark's
items_per_second dropped by more than the threshold (default 25%).

Comparisons only run when the numbers are actually comparable: the
baseline and candidate must carry the same ctfl_build_type (and both must
be "release"), the same num_cpus host shape, and the same ctfl_trace_isa
dispatch tier (an AVX-512 run against a scalar baseline measures the
dispatcher, not the code change). Anything else SKIPs that pair with a
note instead of failing — a laptop run against a CI baseline must not
turn red, it is simply not evidence.

Usage:
  tools/perf_gate.py BASELINE.json CANDIDATE.json [BASELINE CANDIDATE ...]
      [--threshold 0.25] [--require-comparable]
  tools/perf_gate.py --self-test

Exit codes: 0 = pass (or nothing comparable), 1 = regression detected,
2 = usage/IO error. --require-comparable turns "nothing comparable" into
exit 2, for CI jobs where a silent skip would mask a broken setup.
--self-test exercises the gate on synthetic data (a >25% drop must fail,
a small drop must pass, a build-type mismatch must skip) and is wired
into ctest so the gate's failure path stays covered.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def comparable(baseline, candidate):
    """Returns (ok, reason): whether the two runs may be compared."""
    bctx = baseline.get("context", {})
    cctx = candidate.get("context", {})
    bt_base = bctx.get("ctfl_build_type")
    bt_cand = cctx.get("ctfl_build_type")
    if bt_base != "release" or bt_cand != "release":
        return False, (f"build type mismatch or non-release "
                       f"(baseline={bt_base}, candidate={bt_cand})")
    cpus_base = bctx.get("num_cpus")
    cpus_cand = cctx.get("num_cpus")
    if cpus_base != cpus_cand:
        return False, (f"host shape mismatch "
                       f"(num_cpus baseline={cpus_base}, "
                       f"candidate={cpus_cand})")
    # Both-missing passes: pre-ISA baselines stay comparable with each
    # other until they are regenerated with the stamped tier.
    isa_base = bctx.get("ctfl_trace_isa")
    isa_cand = cctx.get("ctfl_trace_isa")
    if isa_base != isa_cand:
        return False, (f"trace ISA mismatch "
                       f"(baseline={isa_base}, candidate={isa_cand})")
    return True, ""


def rows(data):
    """name -> items_per_second for plain (non-aggregate) runs."""
    out = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        ips = b.get("items_per_second")
        if ips is None or ips <= 0:
            continue
        out[b["name"]] = ips
    return out


def gate_pair(baseline, candidate, threshold, label, verbose=True):
    """Returns (checked, regressions) for one baseline/candidate pair."""
    ok, reason = comparable(baseline, candidate)
    if not ok:
        if verbose:
            print(f"SKIP  {label}: {reason}")
        return 0, []
    base_rows = rows(baseline)
    cand_rows = rows(candidate)
    regressions = []
    checked = 0
    for name in sorted(base_rows.keys() & cand_rows.keys()):
        base_ips, cand_ips = base_rows[name], cand_rows[name]
        drop = (base_ips - cand_ips) / base_ips
        checked += 1
        status = "FAIL" if drop > threshold else "ok"
        if drop > threshold:
            regressions.append((name, base_ips, cand_ips, drop))
        if verbose:
            print(f"{status:>4}  {label} {name}: "
                  f"{base_ips:.3g} -> {cand_ips:.3g} items/s "
                  f"({-drop:+.1%})")
    missing = base_rows.keys() - cand_rows.keys()
    if missing and verbose:
        # A vanished benchmark is not a perf regression, but CI should
        # see it happen rather than silently shrink its coverage.
        print(f"note  {label}: candidate lacks {sorted(missing)}")
    return checked, regressions


def run_gate(pairs, threshold, require_comparable):
    total_checked = 0
    all_regressions = []
    for base_path, cand_path in pairs:
        try:
            baseline = load(base_path)
            candidate = load(cand_path)
        except (OSError, json.JSONDecodeError) as e:
            print(f"perf_gate: cannot load pair "
                  f"({base_path}, {cand_path}): {e}", file=sys.stderr)
            return 2
        checked, regressions = gate_pair(
            baseline, candidate, threshold, label=base_path)
        total_checked += checked
        all_regressions.extend(regressions)
    if all_regressions:
        print(f"perf_gate: {len(all_regressions)} regression(s) beyond "
              f"{threshold:.0%}:")
        for name, base_ips, cand_ips, drop in all_regressions:
            print(f"  {name}: {base_ips:.3g} -> {cand_ips:.3g} items/s "
                  f"({-drop:+.1%})")
        return 1
    if total_checked == 0:
        print("perf_gate: nothing comparable was checked")
        return 2 if require_comparable else 0
    print(f"perf_gate: {total_checked} benchmark(s) within "
          f"{threshold:.0%} of baseline")
    return 0


def synthetic(ips_by_name, build_type="release", num_cpus=1,
              trace_isa=None):
    ctx = {"ctfl_build_type": build_type, "num_cpus": num_cpus}
    if trace_isa is not None:
        ctx["ctfl_trace_isa"] = trace_isa
    return {
        "context": ctx,
        "benchmarks": [
            {"name": name, "items_per_second": ips}
            for name, ips in ips_by_name.items()
        ],
    }


def self_test():
    failures = []

    def expect(label, got, want):
        if got != want:
            failures.append(f"{label}: got {got}, want {want}")

    base = synthetic({"BM_TracePass/blocked": 100.0,
                      "BM_TracePass/legacy": 20.0})

    # A 30% throughput drop on one benchmark must trip the gate.
    drop30 = synthetic({"BM_TracePass/blocked": 70.0,
                        "BM_TracePass/legacy": 20.0})
    checked, regressions = gate_pair(base, drop30, 0.25, "drop30",
                                     verbose=False)
    expect("drop30 checked", checked, 2)
    expect("drop30 regressions", len(regressions), 1)

    # A 10% drop stays within the 25% budget.
    drop10 = synthetic({"BM_TracePass/blocked": 90.0,
                        "BM_TracePass/legacy": 20.0})
    checked, regressions = gate_pair(base, drop10, 0.25, "drop10",
                                     verbose=False)
    expect("drop10 checked", checked, 2)
    expect("drop10 regressions", len(regressions), 0)

    # An improvement never fails.
    faster = synthetic({"BM_TracePass/blocked": 300.0,
                        "BM_TracePass/legacy": 20.0})
    checked, regressions = gate_pair(base, faster, 0.25, "faster",
                                     verbose=False)
    expect("faster regressions", len(regressions), 0)

    # Debug candidates and host-shape mismatches are not evidence: skip.
    debug = synthetic({"BM_TracePass/blocked": 1.0}, build_type="debug")
    checked, _ = gate_pair(base, debug, 0.25, "debug", verbose=False)
    expect("debug checked", checked, 0)

    other_host = synthetic({"BM_TracePass/blocked": 1.0}, num_cpus=64)
    checked, _ = gate_pair(base, other_host, 0.25, "other_host",
                           verbose=False)
    expect("other_host checked", checked, 0)

    # Trace-ISA tiers must match: an AVX-512 candidate is not evidence
    # against a scalar baseline (and vice versa) — but two pre-ISA files
    # with no stamp at all stay comparable.
    avx512_base = synthetic({"BM_TracePass/blocked": 100.0},
                            trace_isa="avx512")
    scalar_cand = synthetic({"BM_TracePass/blocked": 30.0},
                            trace_isa="scalar")
    checked, _ = gate_pair(avx512_base, scalar_cand, 0.25, "isa_mismatch",
                           verbose=False)
    expect("isa_mismatch checked", checked, 0)
    stamped_cand = synthetic({"BM_TracePass/blocked": 99.0},
                             trace_isa="avx512")
    checked, regressions = gate_pair(avx512_base, stamped_cand, 0.25,
                                     "isa_match", verbose=False)
    expect("isa_match checked", checked, 1)
    expect("isa_match regressions", len(regressions), 0)
    checked, _ = gate_pair(avx512_base, base, 0.25, "isa_half_stamped",
                           verbose=False)
    expect("isa_half_stamped checked", checked, 0)

    # Exactly-at-threshold is a pass; just beyond is a failure.
    at_edge = synthetic({"BM_TracePass/blocked": 75.0,
                         "BM_TracePass/legacy": 15.0})
    _, regressions = gate_pair(base, at_edge, 0.25, "at_edge",
                               verbose=False)
    expect("at_edge regressions", len(regressions), 0)
    past_edge = synthetic({"BM_TracePass/blocked": 74.9,
                           "BM_TracePass/legacy": 14.9})
    _, regressions = gate_pair(base, past_edge, 0.25, "past_edge",
                               verbose=False)
    expect("past_edge regressions", len(regressions), 2)

    if failures:
        for failure in failures:
            print(f"perf_gate self-test FAIL: {failure}", file=sys.stderr)
        return 1
    print("perf_gate self-test: ok")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="Perf-regression gate over BENCH_*.json files.")
    parser.add_argument("files", nargs="*",
                        help="baseline/candidate JSON pairs, interleaved")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="max tolerated items_per_second drop "
                             "(fraction, default 0.25)")
    parser.add_argument("--require-comparable", action="store_true",
                        help="exit 2 when no pair was comparable")
    parser.add_argument("--self-test", action="store_true",
                        help="run the synthetic-drop self test and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.files or len(args.files) % 2 != 0:
        parser.error("expected BASELINE CANDIDATE file pairs")
    pairs = list(zip(args.files[0::2], args.files[1::2]))
    return run_gate(pairs, args.threshold, args.require_comparable)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
