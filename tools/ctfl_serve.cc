// ctfl_serve — resident contribution-query server (DESIGN.md §13).
//
// Loads one contribution bundle into an immutable QueryEngine (memory-
// mapped by default) and answers RELATED / RELATED_FOR_TEST / EVALUATE /
// STATS / SHUTDOWN requests over the length-prefixed wire protocol, on a
// unix-domain socket (--socket) or a TCP loopback port (--port). Served
// responses are byte-identical to one-shot `ctfl query` output over the
// same bundle.
//
//   ctfl_serve --bundle FILE (--socket PATH | --port N)
//              [--num-threads T] [--lru-capacity N] [--open-mode auto|mmap|stream]
//              [--trace-isa auto|scalar|avx2|avx512|neon] [--trace-threads N]
//              [--delta-log FILE] [--delta-poll-ms MS]
//              [--idle-timeout-ms MS]
//              [--metrics-out FILE] [--record FILE.ctflr]
//
// --delta-log attaches a streaming scorer to the bundle's per-round delta
// chain (DESIGN.md §15): every round already in the log is folded at
// startup, then a poll thread re-reads the log every --delta-poll-ms
// (default 500) and folds rounds appended by a still-training run —
// STATS reports the live `rounds_folded` count and the final streamed
// score table prints at drain. --idle-timeout-ms closes connections that
// complete no frame for that long (slow-loris guard; default 5000,
// <= 0 disables), counted in `ctfl.serve.idle_closed`.
//
// Prints one "listening on ..." line once ready (scripts wait for it),
// then serves until SIGTERM/SIGINT or a SHUTDOWN request, drains
// gracefully (in-flight frames finish, response written before the drain),
// and on exit writes Prometheus-format metrics to --metrics-out.
// --record taps every handled request/response into a replay file
// (DESIGN.md §14) written at drain; `ctfl_replay replay --file F
// --bundle B` re-issues the captured traffic digest-for-digest, and
// `ctfl_query_client --load --replay F` uses it as a soak mix.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include <fstream>

#include "ctfl/replay/recorder.h"
#include "ctfl/serve/server.h"
#include "ctfl/serve/service.h"
#include "ctfl/store/bundle.h"
#include "ctfl/store/query_engine.h"
#include "ctfl/stream/scorer.h"
#include "ctfl/telemetry/exposition.h"
#include "ctfl/util/cpu_features.h"
#include "ctfl/util/flags.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace ctfl {
namespace {

volatile std::sig_atomic_t g_signal_received = 0;

void HandleSignal(int) { g_signal_received = 1; }

Result<store::BundleReader::OpenMode> ParseOpenMode(const std::string& mode) {
  if (mode == "auto") return store::BundleReader::OpenMode::kAuto;
  if (mode == "mmap") return store::BundleReader::OpenMode::kMmap;
  if (mode == "stream") return store::BundleReader::OpenMode::kStream;
  return Status::InvalidArgument("--open-mode must be auto, mmap, or stream");
}

Status Run(int argc, const char* const* argv) {
  FlagParser flags({{"bundle", ""},
                    {"socket", ""},
                    {"port", "-1"},
                    {"num-threads", "0"},
                    {"lru-capacity", "256"},
                    {"open-mode", "auto"},
                    {"trace-isa", "auto"},
                    {"trace-threads", "1"},
                    {"delta-log", ""},
                    {"delta-poll-ms", "500"},
                    {"idle-timeout-ms", "5000"},
                    {"metrics-out", ""},
                    {"record", ""}});
  CTFL_RETURN_IF_ERROR(flags.Parse(argc, argv));
  if (flags.GetString("bundle").empty()) {
    return Status::InvalidArgument("--bundle is required");
  }
  const std::string socket_path = flags.GetString("socket");
  CTFL_ASSIGN_OR_RETURN(int port, flags.GetInt("port"));
  if (socket_path.empty() && port < 0) {
    return Status::InvalidArgument("one of --socket or --port is required");
  }
  if (!socket_path.empty() && port >= 0) {
    return Status::InvalidArgument("--socket and --port are exclusive");
  }
  CTFL_ASSIGN_OR_RETURN(int num_threads, flags.GetInt("num-threads"));
  CTFL_ASSIGN_OR_RETURN(int lru_capacity, flags.GetInt("lru-capacity"));
  if (lru_capacity < 0) {
    return Status::InvalidArgument("--lru-capacity must be >= 0");
  }
  CTFL_ASSIGN_OR_RETURN(store::BundleReader::OpenMode open_mode,
                        ParseOpenMode(flags.GetString("open-mode")));
  const std::string isa_flag = flags.GetString("trace-isa");
  if (!isa_flag.empty() && isa_flag != "auto") {
    CTFL_ASSIGN_OR_RETURN(TraceIsa isa, ParseTraceIsa(isa_flag));
    CTFL_RETURN_IF_ERROR(SetTraceIsa(isa));
  }
  CTFL_ASSIGN_OR_RETURN(int trace_threads, flags.GetInt("trace-threads"));

  const std::string bundle_path = flags.GetString("bundle");
  CTFL_ASSIGN_OR_RETURN(store::BundleContent content,
                        store::ReadBundle(bundle_path, open_mode));
  serve::ServiceConfig service_config;
  service_config.lru_capacity = static_cast<size_t>(lru_capacity);
  service_config.trace_threads = trace_threads;
  {
    std::ifstream f(bundle_path, std::ios::binary | std::ios::ate);
    if (f) service_config.bundle_bytes = static_cast<uint64_t>(f.tellg());
  }
  const std::string record_out = flags.GetString("record");
  replay::ReplayRecorder recorder;
  if (!record_out.empty()) service_config.request_tap = recorder.Tap();

  // --delta-log: fold the bundle's delta chain into a streaming scorer
  // (every round already in the log), then keep polling for appended
  // rounds while serving. STATS reports the fold count live.
  const std::string delta_log = flags.GetString("delta-log");
  CTFL_ASSIGN_OR_RETURN(int delta_poll_ms, flags.GetInt("delta-poll-ms"));
  std::unique_ptr<stream::StreamingScorer> scorer;
  std::atomic<uint64_t> rounds_folded{0};
  if (!delta_log.empty()) {
    CTFL_ASSIGN_OR_RETURN(stream::DeltaLogContents log_contents,
                          stream::ReadDeltaLog(delta_log));
    if (content.meta.schema_fingerprint != 0 &&
        log_contents.header.schema_fingerprint != 0 &&
        content.meta.schema_fingerprint !=
            log_contents.header.schema_fingerprint) {
      return Status::InvalidArgument(
          delta_log +
          ": delta-log schema fingerprint disagrees with the bundle");
    }
    stream::ScorerOptions scorer_options;
    scorer_options.trace_threads = trace_threads;
    CTFL_ASSIGN_OR_RETURN(
        stream::StreamingScorer folded,
        stream::StreamingScorer::FromHeader(std::move(log_contents.header),
                                            scorer_options));
    CTFL_RETURN_IF_ERROR(folded.FoldAll(log_contents).status());
    scorer = std::make_unique<stream::StreamingScorer>(std::move(folded));
    rounds_folded.store(scorer->rounds_folded(),
                        std::memory_order_relaxed);
    service_config.rounds_folded_fn = [&rounds_folded] {
      return rounds_folded.load(std::memory_order_relaxed);
    };
  }

  CTFL_ASSIGN_OR_RETURN(store::QueryEngine engine,
                        store::QueryEngine::FromContent(std::move(content)));
  serve::QueryService service(std::move(engine), service_config);
  const serve::ServerStats stats = service.Stats();
  std::printf("bundle %s: %u participants, %u rules, %llu train records, "
              "%llu tests\n",
              bundle_path.c_str(), stats.num_participants, stats.num_rules,
              static_cast<unsigned long long>(stats.train_records),
              static_cast<unsigned long long>(stats.test_records));
  std::printf("trace kernel: isa=%s, %d shard thread%s\n",
              TraceIsaName(CurrentTraceIsa()), trace_threads,
              trace_threads == 1 ? "" : "s");

  if (scorer != nullptr) {
    std::printf("delta log %s: %llu rounds folded (poll every %d ms)\n",
                delta_log.c_str(),
                static_cast<unsigned long long>(scorer->rounds_folded()),
                delta_poll_ms);
  }

  CTFL_ASSIGN_OR_RETURN(int idle_timeout_ms, flags.GetInt("idle-timeout-ms"));
  serve::ServerConfig server_config;
  server_config.socket_path = socket_path;
  server_config.port = port < 0 ? 0 : port;
  server_config.num_threads = num_threads;
  server_config.idle_timeout_ms = idle_timeout_ms;
  serve::Server server(&service, server_config);
  CTFL_RETURN_IF_ERROR(server.Start());

  // Streaming poll thread: re-read the delta log and fold any rounds a
  // still-training run appended. The scorer is only ever touched from
  // this thread; request handlers read the atomic fold counter.
  std::atomic<bool> poll_stop{false};
  std::thread poller;
  if (scorer != nullptr && delta_poll_ms > 0) {
    poller = std::thread([&] {
      while (!poll_stop.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(delta_poll_ms));
        Result<stream::DeltaLogContents> appended =
            stream::ReadDeltaLog(delta_log);
        if (!appended.ok()) continue;  // transient read races: retry later
        if (scorer->FoldAll(*appended).ok()) {
          rounds_folded.store(scorer->rounds_folded(),
                              std::memory_order_relaxed);
        }
      }
    });
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  if (!socket_path.empty()) {
    std::printf("listening on unix:%s\n", socket_path.c_str());
  } else {
    std::printf("listening on 127.0.0.1:%d\n", server.port());
  }
  std::fflush(stdout);

  // The acceptor and connection handlers run on their own threads; this
  // thread watches for either a delivered signal or a protocol-driven
  // drain (a SHUTDOWN request calls Server::Shutdown() internally, which
  // flips draining()).
#if defined(__unix__) || defined(__APPLE__)
  while (g_signal_received == 0 && !server.draining()) {
    usleep(50 * 1000);
  }
#endif
  server.Shutdown();
  server.Wait();
  poll_stop.store(true, std::memory_order_release);
  if (poller.joinable()) poller.join();
  std::printf("drained after %llu requests\n",
              static_cast<unsigned long long>(
                  service.Stats().requests_total));
  if (scorer != nullptr) {
    std::printf("streamed scores after %llu rounds:\n",
                static_cast<unsigned long long>(scorer->rounds_folded()));
    for (size_t p = 0; p < scorer->num_participants(); ++p) {
      std::printf("%-11s %8zu   %.4f    %.4f\n",
                  scorer->participant_names()[p].c_str(),
                  scorer->participant_records(p), scorer->micro_scores()[p],
                  scorer->macro_scores()[p]);
    }
  }

  if (!record_out.empty()) {
    CTFL_RETURN_IF_ERROR(recorder.WriteTo(record_out));
    std::printf("recorded %zu query events -> %s\n", recorder.num_events(),
                record_out.c_str());
  }

  const std::string metrics_out = flags.GetString("metrics-out");
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    if (!out) return Status::IoError("cannot write " + metrics_out);
    out << telemetry::PrometheusText();
    // Info-style gauge: the label carries the dispatched SIMD tier so
    // scrapes can group runs by ISA (mirrors the bench context stamp).
    out << "# TYPE ctfl_serve_trace_isa gauge\n";
    out << "ctfl_serve_trace_isa{isa=\"" << TraceIsaName(CurrentTraceIsa())
        << "\"} 1\n";
    std::printf("metrics -> %s\n", metrics_out.c_str());
  }
  return Status::OK();
}

}  // namespace
}  // namespace ctfl

int main(int argc, char** argv) {
  const ctfl::Status status = ctfl::Run(argc - 1, argv + 1);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
