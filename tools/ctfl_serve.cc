// ctfl_serve — resident contribution-query server (DESIGN.md §13).
//
// Loads one contribution bundle into an immutable QueryEngine (memory-
// mapped by default) and answers RELATED / RELATED_FOR_TEST / EVALUATE /
// STATS / SHUTDOWN requests over the length-prefixed wire protocol, on a
// unix-domain socket (--socket) or a TCP loopback port (--port). Served
// responses are byte-identical to one-shot `ctfl query` output over the
// same bundle.
//
//   ctfl_serve --bundle FILE (--socket PATH | --port N)
//              [--num-threads T] [--lru-capacity N] [--open-mode auto|mmap|stream]
//              [--trace-isa auto|scalar|avx2|avx512|neon] [--trace-threads N]
//              [--metrics-out FILE] [--record FILE.ctflr]
//
// Prints one "listening on ..." line once ready (scripts wait for it),
// then serves until SIGTERM/SIGINT or a SHUTDOWN request, drains
// gracefully (in-flight frames finish, response written before the drain),
// and on exit writes Prometheus-format metrics to --metrics-out.
// --record taps every handled request/response into a replay file
// (DESIGN.md §14) written at drain; `ctfl_replay replay --file F
// --bundle B` re-issues the captured traffic digest-for-digest, and
// `ctfl_query_client --load --replay F` uses it as a soak mix.

#include <csignal>
#include <cstdio>
#include <string>

#include <fstream>

#include "ctfl/replay/recorder.h"
#include "ctfl/serve/server.h"
#include "ctfl/serve/service.h"
#include "ctfl/store/bundle.h"
#include "ctfl/store/query_engine.h"
#include "ctfl/telemetry/exposition.h"
#include "ctfl/util/cpu_features.h"
#include "ctfl/util/flags.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace ctfl {
namespace {

volatile std::sig_atomic_t g_signal_received = 0;

void HandleSignal(int) { g_signal_received = 1; }

Result<store::BundleReader::OpenMode> ParseOpenMode(const std::string& mode) {
  if (mode == "auto") return store::BundleReader::OpenMode::kAuto;
  if (mode == "mmap") return store::BundleReader::OpenMode::kMmap;
  if (mode == "stream") return store::BundleReader::OpenMode::kStream;
  return Status::InvalidArgument("--open-mode must be auto, mmap, or stream");
}

Status Run(int argc, const char* const* argv) {
  FlagParser flags({{"bundle", ""},
                    {"socket", ""},
                    {"port", "-1"},
                    {"num-threads", "0"},
                    {"lru-capacity", "256"},
                    {"open-mode", "auto"},
                    {"trace-isa", "auto"},
                    {"trace-threads", "1"},
                    {"metrics-out", ""},
                    {"record", ""}});
  CTFL_RETURN_IF_ERROR(flags.Parse(argc, argv));
  if (flags.GetString("bundle").empty()) {
    return Status::InvalidArgument("--bundle is required");
  }
  const std::string socket_path = flags.GetString("socket");
  CTFL_ASSIGN_OR_RETURN(int port, flags.GetInt("port"));
  if (socket_path.empty() && port < 0) {
    return Status::InvalidArgument("one of --socket or --port is required");
  }
  if (!socket_path.empty() && port >= 0) {
    return Status::InvalidArgument("--socket and --port are exclusive");
  }
  CTFL_ASSIGN_OR_RETURN(int num_threads, flags.GetInt("num-threads"));
  CTFL_ASSIGN_OR_RETURN(int lru_capacity, flags.GetInt("lru-capacity"));
  if (lru_capacity < 0) {
    return Status::InvalidArgument("--lru-capacity must be >= 0");
  }
  CTFL_ASSIGN_OR_RETURN(store::BundleReader::OpenMode open_mode,
                        ParseOpenMode(flags.GetString("open-mode")));
  const std::string isa_flag = flags.GetString("trace-isa");
  if (!isa_flag.empty() && isa_flag != "auto") {
    CTFL_ASSIGN_OR_RETURN(TraceIsa isa, ParseTraceIsa(isa_flag));
    CTFL_RETURN_IF_ERROR(SetTraceIsa(isa));
  }
  CTFL_ASSIGN_OR_RETURN(int trace_threads, flags.GetInt("trace-threads"));

  const std::string bundle_path = flags.GetString("bundle");
  CTFL_ASSIGN_OR_RETURN(store::BundleContent content,
                        store::ReadBundle(bundle_path, open_mode));
  serve::ServiceConfig service_config;
  service_config.lru_capacity = static_cast<size_t>(lru_capacity);
  service_config.trace_threads = trace_threads;
  {
    std::ifstream f(bundle_path, std::ios::binary | std::ios::ate);
    if (f) service_config.bundle_bytes = static_cast<uint64_t>(f.tellg());
  }
  const std::string record_out = flags.GetString("record");
  replay::ReplayRecorder recorder;
  if (!record_out.empty()) service_config.request_tap = recorder.Tap();
  CTFL_ASSIGN_OR_RETURN(store::QueryEngine engine,
                        store::QueryEngine::FromContent(std::move(content)));
  serve::QueryService service(std::move(engine), service_config);
  const serve::ServerStats stats = service.Stats();
  std::printf("bundle %s: %u participants, %u rules, %llu train records, "
              "%llu tests\n",
              bundle_path.c_str(), stats.num_participants, stats.num_rules,
              static_cast<unsigned long long>(stats.train_records),
              static_cast<unsigned long long>(stats.test_records));
  std::printf("trace kernel: isa=%s, %d shard thread%s\n",
              TraceIsaName(CurrentTraceIsa()), trace_threads,
              trace_threads == 1 ? "" : "s");

  serve::ServerConfig server_config;
  server_config.socket_path = socket_path;
  server_config.port = port < 0 ? 0 : port;
  server_config.num_threads = num_threads;
  serve::Server server(&service, server_config);
  CTFL_RETURN_IF_ERROR(server.Start());

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  if (!socket_path.empty()) {
    std::printf("listening on unix:%s\n", socket_path.c_str());
  } else {
    std::printf("listening on 127.0.0.1:%d\n", server.port());
  }
  std::fflush(stdout);

  // The acceptor and connection handlers run on their own threads; this
  // thread watches for either a delivered signal or a protocol-driven
  // drain (a SHUTDOWN request calls Server::Shutdown() internally, which
  // flips draining()).
#if defined(__unix__) || defined(__APPLE__)
  while (g_signal_received == 0 && !server.draining()) {
    usleep(50 * 1000);
  }
#endif
  server.Shutdown();
  server.Wait();
  std::printf("drained after %llu requests\n",
              static_cast<unsigned long long>(
                  service.Stats().requests_total));

  if (!record_out.empty()) {
    CTFL_RETURN_IF_ERROR(recorder.WriteTo(record_out));
    std::printf("recorded %zu query events -> %s\n", recorder.num_events(),
                record_out.c_str());
  }

  const std::string metrics_out = flags.GetString("metrics-out");
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    if (!out) return Status::IoError("cannot write " + metrics_out);
    out << telemetry::PrometheusText();
    // Info-style gauge: the label carries the dispatched SIMD tier so
    // scrapes can group runs by ISA (mirrors the bench context stamp).
    out << "# TYPE ctfl_serve_trace_isa gauge\n";
    out << "ctfl_serve_trace_isa{isa=\"" << TraceIsaName(CurrentTraceIsa())
        << "\"} 1\n";
    std::printf("metrics -> %s\n", metrics_out.c_str());
  }
  return Status::OK();
}

}  // namespace
}  // namespace ctfl

int main(int argc, char** argv) {
  const ctfl::Status status = ctfl::Run(argc - 1, argv + 1);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
