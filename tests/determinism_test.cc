// Differential determinism suite for the parallel training engine
// (DESIGN.md §9): `num_threads = 1` and `num_threads = N` must produce
// bit-identical global parameters, tracing related-counts, and Eq. 5/6
// micro/macro contribution scores end-to-end — with and without secure
// aggregation and DP perturbation. Contribution scores that depend on the
// worker schedule would be worthless as incentives (cf. the fragility
// critique of Pejó et al.), so these tests are the PR's contract.

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "ctfl/core/pipeline.h"
#include "ctfl/data/gen/synthetic.h"
#include "ctfl/fl/fedavg.h"
#include "ctfl/fl/partition.h"
#include "ctfl/nn/matrix.h"

namespace ctfl {
namespace {

// Two-feature task with a conjunctive rule so the logic layers carry real
// signal: label = (x > 0.5 AND a = yes).
Dataset TwoFeatureDataset(size_t n, uint64_t seed) {
  SyntheticSpec spec;
  spec.schema = std::make_shared<FeatureSchema>(
      std::vector<FeatureSpec>{FeatureSchema::Continuous("x", 0, 1),
                               FeatureSchema::Discrete("a", {"no", "yes"})},
      "neg", "pos");
  spec.samplers = {
      FeatureSampler{FeatureSampler::Kind::kUniform, 0, 0, {}},
      FeatureSampler{FeatureSampler::Kind::kCategorical, 0, 0, {0.5, 0.5}}};
  spec.rules = {{{{0, GtPredicate::Op::kGt, 0.5}, {1, GtPredicate::Op::kGt, 0.5}},
                 1,
                 1.0},
                {{{0, GtPredicate::Op::kLt, 0.5}}, 0, 1.0}};
  Rng rng(seed);
  return GenerateSynthetic(spec, n, rng);
}

class DeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Force even the tiny test matrices onto the sharded kernel path so
    // the differential legs actually exercise parallel code.
    SetMatrixParallelGrain(1);
  }
  void TearDown() override {
    SetMatrixParallelism(0);
    SetMatrixParallelGrain(size_t{1} << 16);
  }
};

CtflConfig BaseConfig() {
  CtflConfig config;
  config.federated = true;
  config.net.logic_layers = {{8, 8}};
  config.net.tau_d = 6;
  config.net.seed = 11;
  config.fedavg.rounds = 2;
  config.fedavg.local_epochs = 2;
  config.fedavg.local.learning_rate = 0.05;
  config.tracer.tau_w = 0.9;
  return config;
}

struct PipelineSnapshot {
  std::vector<double> params;
  std::vector<double> micro;
  std::vector<double> macro;
  std::vector<std::vector<int>> related_counts;
  std::vector<size_t> total_related;
  int64_t tau_w_checks = 0;
  int64_t related_records = 0;
  int64_t num_keys = 0;
  double global_accuracy = 0.0;
  double matched_accuracy = 0.0;
};

PipelineSnapshot RunPipeline(const Federation& fed, const Dataset& test,
                             CtflConfig config, int num_threads) {
  config.num_threads = num_threads;
  const CtflReport report = RunCtfl(fed, test, config).value();
  PipelineSnapshot snap;
  snap.params = report.model.GetParameters();
  snap.micro = report.micro_scores;
  snap.macro = report.macro_scores;
  for (const TestTrace& t : report.trace.tests) {
    snap.related_counts.push_back(t.related_count);
    snap.total_related.push_back(t.total_related);
  }
  snap.tau_w_checks = report.trace.tau_w_checks;
  snap.related_records = report.trace.related_records;
  snap.num_keys = report.trace.num_keys;
  snap.global_accuracy = report.trace.global_accuracy;
  snap.matched_accuracy = report.trace.matched_accuracy;
  return snap;
}

/// Bitwise equality for double vectors (EXPECT_EQ would accept -0.0 vs
/// +0.0; the determinism contract is *bit* identity).
::testing::AssertionResult BitIdentical(const std::vector<double>& a,
                                        const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "size mismatch: " << a.size() << " vs " << b.size();
  }
  if (!a.empty() &&
      std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) != 0) {
    for (size_t i = 0; i < a.size(); ++i) {
      if (std::memcmp(&a[i], &b[i], sizeof(double)) != 0) {
        return ::testing::AssertionFailure()
               << "first bit difference at index " << i << ": " << a[i]
               << " vs " << b[i];
      }
    }
  }
  return ::testing::AssertionSuccess();
}

void ExpectSnapshotsIdentical(const PipelineSnapshot& base,
                              const PipelineSnapshot& other,
                              const char* label) {
  SCOPED_TRACE(label);
  EXPECT_TRUE(BitIdentical(base.params, other.params)) << "global parameters";
  EXPECT_TRUE(BitIdentical(base.micro, other.micro)) << "micro scores";
  EXPECT_TRUE(BitIdentical(base.macro, other.macro)) << "macro scores";
  EXPECT_EQ(base.related_counts, other.related_counts);
  EXPECT_EQ(base.total_related, other.total_related);
  EXPECT_EQ(base.tau_w_checks, other.tau_w_checks);
  EXPECT_EQ(base.related_records, other.related_records);
  EXPECT_EQ(base.num_keys, other.num_keys);
  EXPECT_EQ(base.global_accuracy, other.global_accuracy);
  EXPECT_EQ(base.matched_accuracy, other.matched_accuracy);
}

TEST_F(DeterminismTest, RunFedAvgBitIdenticalAcrossThreadCounts) {
  const Dataset all = TwoFeatureDataset(400, 7);
  Rng rng(3);
  const std::vector<Dataset> clients = PartitionUniform(all, 5, rng);

  LogicalNetConfig net_config;
  net_config.logic_layers = {{8, 8}};
  net_config.seed = 4;

  FedAvgConfig config;
  config.rounds = 3;
  config.local_epochs = 2;
  config.local.learning_rate = 0.05;

  std::vector<double> baseline;
  std::vector<telemetry::RoundTelemetry> baseline_rounds;
  for (const int threads : {1, 2, 8}) {
    config.num_threads = threads;
    config.local.num_threads = threads;
    FedAvgStats stats;
    const LogicalNet net =
        TrainFederated(all.schema(), net_config, clients, config, &stats)
            .value();
    const std::vector<double> params = net.GetParameters();
    ASSERT_EQ(stats.rounds.size(), 3u);
    if (threads == 1) {
      baseline = params;
      baseline_rounds = stats.rounds;
      continue;
    }
    SCOPED_TRACE(threads);
    EXPECT_TRUE(BitIdentical(baseline, params));
    // Round stats (loss fold runs in the ordered commit) match too.
    for (size_t r = 0; r < stats.rounds.size(); ++r) {
      EXPECT_EQ(stats.rounds[r].mean_local_loss,
                baseline_rounds[r].mean_local_loss);
      EXPECT_EQ(stats.rounds[r].clients_trained,
                baseline_rounds[r].clients_trained);
    }
    EXPECT_EQ(stats.grafting_steps, stats.grafting_steps);
  }
}

TEST_F(DeterminismTest, RunFedAvgBitIdenticalWithSecureAggregation) {
  const Dataset all = TwoFeatureDataset(300, 17);
  Rng rng(5);
  const std::vector<Dataset> clients = PartitionUniform(all, 4, rng);

  LogicalNetConfig net_config;
  net_config.logic_layers = {{8, 8}};
  net_config.seed = 6;

  FedAvgConfig config;
  config.rounds = 2;
  config.local_epochs = 2;
  config.local.learning_rate = 0.05;
  config.secure_aggregation = true;

  std::vector<double> baseline;
  for (const int threads : {1, 2, 8}) {
    config.num_threads = threads;
    config.local.num_threads = threads;
    const LogicalNet net =
        TrainFederated(all.schema(), net_config, clients, config).value();
    if (threads == 1) {
      baseline = net.GetParameters();
    } else {
      SCOPED_TRACE(threads);
      // Masking consumes updates in client-index order; the parallel
      // fan-out must not perturb a single bit of the masked sum.
      EXPECT_TRUE(BitIdentical(baseline, net.GetParameters()));
    }
  }
}

TEST_F(DeterminismTest, FaultyRunFedAvgBitIdenticalAcrossThreadCounts) {
  // DESIGN.md §11: a FailurePlan is a pure function of (seed, round,
  // client, attempt), so injected faults must not break the thread-count
  // determinism contract — dropouts, retries, and quarantines land on the
  // same clients no matter how the fan-out is scheduled.
  const Dataset all = TwoFeatureDataset(400, 57);
  Rng rng(19);
  const std::vector<Dataset> clients = PartitionUniform(all, 5, rng);

  LogicalNetConfig net_config;
  net_config.logic_layers = {{8, 8}};
  net_config.seed = 21;

  FedAvgConfig config;
  config.rounds = 4;
  config.local_epochs = 2;
  config.local.learning_rate = 0.05;
  config.secure_aggregation = true;
  config.failure =
      FailurePlan::Parse(
          "dropout=0.25,straggler=0.15,corrupt=0.1,mismatch=0.1,seed=77")
          .value();
  config.retry_budget = 2;

  std::vector<double> baseline;
  FedAvgStats baseline_stats;
  for (const int threads : {1, 2, 8}) {
    config.num_threads = threads;
    config.local.num_threads = threads;
    FedAvgStats stats;
    const LogicalNet net =
        TrainFederated(all.schema(), net_config, clients, config, &stats)
            .value();
    if (threads == 1) {
      baseline = net.GetParameters();
      baseline_stats = stats;
      // The plan must actually bite, or the test is vacuous.
      ASSERT_GT(stats.clients_dropped, 0);
      continue;
    }
    SCOPED_TRACE(threads);
    EXPECT_TRUE(BitIdentical(baseline, net.GetParameters()));
    EXPECT_EQ(stats.clients_dropped, baseline_stats.clients_dropped);
    EXPECT_EQ(stats.retries, baseline_stats.retries);
    EXPECT_EQ(stats.rounds_degraded, baseline_stats.rounds_degraded);
    ASSERT_EQ(stats.rounds.size(), baseline_stats.rounds.size());
    for (size_t r = 0; r < stats.rounds.size(); ++r) {
      EXPECT_EQ(stats.rounds[r].clients_dropped,
                baseline_stats.rounds[r].clients_dropped);
      EXPECT_EQ(stats.rounds[r].mean_local_loss,
                baseline_stats.rounds[r].mean_local_loss);
    }
  }
}

TEST_F(DeterminismTest, FaultyPipelineScoresBitIdenticalAcrossThreadCounts) {
  // End-to-end: contribution scores computed from a degraded federation
  // are still a pure function of (seed, plan) — the incentive payments
  // cannot depend on which worker thread observed the fault.
  const Dataset all = TwoFeatureDataset(360, 61);
  const Dataset test = TwoFeatureDataset(120, 67);
  Rng rng(23);
  const Federation fed = MakeFederation(PartitionUniform(all, 4, rng));

  CtflConfig config = BaseConfig();
  config.fedavg.rounds = 3;
  config.fedavg.secure_aggregation = true;
  config.fedavg.failure =
      FailurePlan::Parse("dropout=0.3,straggler=0.2,seed=41").value();
  config.fedavg.retry_budget = 1;

  const PipelineSnapshot base = RunPipeline(fed, test, config, 1);
  ASSERT_GT(base.num_keys, 0);
  ExpectSnapshotsIdentical(base, RunPipeline(fed, test, config, 2),
                           "threads=2");
  ExpectSnapshotsIdentical(base, RunPipeline(fed, test, config, 8),
                           "threads=8");
}

TEST_F(DeterminismTest, FullPipelineBitIdenticalAcrossThreadCounts) {
  const Dataset all = TwoFeatureDataset(360, 23);
  const Dataset test = TwoFeatureDataset(120, 29);
  Rng rng(9);
  const Federation fed = MakeFederation(PartitionUniform(all, 4, rng));

  const CtflConfig config = BaseConfig();
  const PipelineSnapshot base = RunPipeline(fed, test, config, 1);
  // A federation with data must actually produce tracing work, or the
  // equalities below would be vacuous.
  ASSERT_GT(base.num_keys, 0);
  ASSERT_GT(base.tau_w_checks, 0);
  ExpectSnapshotsIdentical(base, RunPipeline(fed, test, config, 2),
                           "threads=2");
  ExpectSnapshotsIdentical(base, RunPipeline(fed, test, config, 8),
                           "threads=8");
}

TEST_F(DeterminismTest, FullPipelineBitIdenticalWithSecureAggAndDp) {
  const Dataset all = TwoFeatureDataset(360, 33);
  const Dataset test = TwoFeatureDataset(120, 39);
  Rng rng(13);
  const Federation fed = MakeFederation(PartitionUniform(all, 4, rng));

  CtflConfig config = BaseConfig();
  config.fedavg.secure_aggregation = true;
  config.tracer.dp_epsilon = 2.0;  // randomized-response perturbation on
  const PipelineSnapshot base = RunPipeline(fed, test, config, 1);
  ASSERT_GT(base.num_keys, 0);
  ExpectSnapshotsIdentical(base, RunPipeline(fed, test, config, 2),
                           "threads=2");
  ExpectSnapshotsIdentical(base, RunPipeline(fed, test, config, 8),
                           "threads=8");
}

TEST_F(DeterminismTest, CentralPathBitIdenticalAcrossThreadCounts) {
  const Dataset all = TwoFeatureDataset(360, 43);
  const Dataset test = TwoFeatureDataset(120, 49);
  Rng rng(17);
  const Federation fed = MakeFederation(PartitionUniform(all, 3, rng));

  CtflConfig config = BaseConfig();
  config.federated = false;
  config.central.epochs = 4;
  config.central.learning_rate = 0.05;
  const PipelineSnapshot base = RunPipeline(fed, test, config, 1);
  ExpectSnapshotsIdentical(base, RunPipeline(fed, test, config, 8),
                           "threads=8");
}

}  // namespace
}  // namespace ctfl
