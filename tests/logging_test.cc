#include "ctfl/util/logging.h"

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ctfl/util/thread_pool.h"

namespace ctfl {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kWarning);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, SuppressedMessagesDoNotCrash) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  CTFL_LOG(Debug) << "below threshold " << 42;
  CTFL_LOG(Info) << "also below";
  SetLogLevel(original);
}

TEST(LoggingTest, LogLevelFromStringParsesNamesAndDigits) {
  EXPECT_EQ(LogLevelFromString("debug"), LogLevel::kDebug);
  EXPECT_EQ(LogLevelFromString("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(LogLevelFromString("0"), LogLevel::kDebug);
  EXPECT_EQ(LogLevelFromString("info"), LogLevel::kInfo);
  EXPECT_EQ(LogLevelFromString("1"), LogLevel::kInfo);
  EXPECT_EQ(LogLevelFromString("warning"), LogLevel::kWarning);
  EXPECT_EQ(LogLevelFromString("Warn"), LogLevel::kWarning);
  EXPECT_EQ(LogLevelFromString("2"), LogLevel::kWarning);
  EXPECT_EQ(LogLevelFromString("error"), LogLevel::kError);
  EXPECT_EQ(LogLevelFromString("3"), LogLevel::kError);
  // Unrecognized input falls back.
  EXPECT_EQ(LogLevelFromString("bogus"), LogLevel::kInfo);
  EXPECT_EQ(LogLevelFromString("", LogLevel::kError), LogLevel::kError);
  EXPECT_EQ(LogLevelFromString("7", LogLevel::kWarning), LogLevel::kWarning);
}

// The CTFL_LOG_LEVEL env var is read once at startup through the same
// parser; LogLevelFromString above pins its semantics. Here we only check
// the startup default is sane when the var is unset (the common CI case).
TEST(LoggingTest, StartupLevelIsValid) {
  const int level = static_cast<int>(GetLogLevel());
  EXPECT_GE(level, static_cast<int>(LogLevel::kDebug));
  EXPECT_LE(level, static_cast<int>(LogLevel::kError));
}

TEST(LoggingTest, ConcurrentRecordsDoNotInterleave) {
  // Hammer the logger from ThreadPool workers; each record must come out
  // as one intact line because Flush() writes it with a single fwrite.
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;

  ::testing::internal::CaptureStderr();
  {
    ThreadPool pool(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      pool.Submit([t] {
        for (int i = 0; i < kPerThread; ++i) {
          CTFL_LOG(Info) << "worker=" << t << " msg=" << i << " payload="
                         << "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx" << " end";
        }
      });
    }
    pool.Wait();
  }
  const std::string captured = ::testing::internal::GetCapturedStderr();
  SetLogLevel(original);

  std::istringstream lines(captured);
  std::string line;
  int intact = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    // Every line must be one complete record: prefix at the very start and
    // the sentinel suffix at the very end — a torn/interleaved write would
    // break one of these.
    EXPECT_EQ(line.rfind("[I ", 0), 0u) << "torn line: " << line;
    ASSERT_GE(line.size(), 4u);
    EXPECT_EQ(line.substr(line.size() - 4), " end") << "torn line: " << line;
    ++intact;
  }
  EXPECT_EQ(intact, kThreads * kPerThread);
}

TEST(LoggingTest, CheckPassesOnTrueCondition) {
  CTFL_CHECK(1 + 1 == 2) << "never shown";
}

TEST(LoggingDeathTest, CheckAbortsOnFalseCondition) {
  EXPECT_DEATH({ CTFL_CHECK(false) << "boom"; }, "Check failed");
}

TEST(LoggingDeathTest, FatalAborts) {
  EXPECT_DEATH({ CTFL_LOG_FATAL << "fatal path"; }, "fatal path");
}

}  // namespace
}  // namespace ctfl
