#include "ctfl/util/logging.h"

#include <gtest/gtest.h>

#include "ctfl/util/stopwatch.h"

namespace ctfl {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kWarning);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, SuppressedMessagesDoNotCrash) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  CTFL_LOG(Debug) << "below threshold " << 42;
  CTFL_LOG(Info) << "also below";
  SetLogLevel(original);
}

TEST(LoggingTest, CheckPassesOnTrueCondition) {
  CTFL_CHECK(1 + 1 == 2) << "never shown";
}

TEST(LoggingDeathTest, CheckAbortsOnFalseCondition) {
  EXPECT_DEATH({ CTFL_CHECK(false) << "boom"; }, "Check failed");
}

TEST(LoggingDeathTest, FatalAborts) {
  EXPECT_DEATH({ CTFL_LOG_FATAL << "fatal path"; }, "fatal path");
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  // Burn a little CPU deterministically.
  volatile double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink = sink + i * 1e-9;
  const double elapsed = watch.ElapsedSeconds();
  EXPECT_GT(elapsed, 0.0);
  EXPECT_NEAR(watch.ElapsedMillis(), watch.ElapsedSeconds() * 1e3,
              watch.ElapsedMillis());  // loose consistency bound
  watch.Restart();
  EXPECT_LT(watch.ElapsedSeconds(), elapsed + 1.0);
}

}  // namespace
}  // namespace ctfl
