#include "ctfl/core/rounds.h"

#include <gtest/gtest.h>

namespace ctfl {
namespace {

RoundTracker::Config DefaultConfig() {
  RoundTracker::Config config;
  config.ema_alpha = 0.5;
  config.drift_threshold = 0.5;
  config.warmup_rounds = 2;
  return config;
}

TEST(RoundTrackerTest, RejectsWrongWidth) {
  RoundTracker tracker(3, DefaultConfig());
  EXPECT_FALSE(tracker.RecordRound({0.1, 0.2}).ok());
  EXPECT_TRUE(tracker.RecordRound({0.1, 0.2, 0.3}).ok());
}

TEST(RoundTrackerTest, AccumulatesAndSmooths) {
  RoundTracker tracker(2, DefaultConfig());
  ASSERT_TRUE(tracker.RecordRound({0.4, 0.2}).ok());
  ASSERT_TRUE(tracker.RecordRound({0.2, 0.2}).ok());
  EXPECT_EQ(tracker.rounds_recorded(), 2);
  EXPECT_NEAR(tracker.state(0).cumulative, 0.6, 1e-12);
  // EMA after round1 = 0.4; round2 = 0.5*0.2 + 0.5*0.4 = 0.3.
  EXPECT_NEAR(tracker.state(0).ema, 0.3, 1e-12);
  EXPECT_NEAR(tracker.state(1).ema, 0.2, 1e-12);
  EXPECT_NEAR(tracker.state(0).last_score, 0.2, 1e-12);
}

TEST(RoundTrackerTest, DriftAlertsArmAfterWarmup) {
  RoundTracker tracker(1, DefaultConfig());
  // Warm-up rounds never alert, however wild.
  EXPECT_TRUE(tracker.RecordRound({0.5})->empty());
  EXPECT_TRUE(tracker.RecordRound({5.0})->empty());
  // Steady round: EMA ~2.75, score 2.75 -> no drift.
  EXPECT_TRUE(tracker.RecordRound({2.75})->empty());
  // Collapse: big negative drift.
  const auto alerts = tracker.RecordRound({0.01}).value();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].participant, 0);
  EXPECT_LT(alerts[0].relative_drift, -0.5);
}

TEST(RoundTrackerTest, OnlyDriftingParticipantAlerts) {
  RoundTracker tracker(2, DefaultConfig());
  for (int r = 0; r < 3; ++r) {
    ASSERT_TRUE(tracker.RecordRound({0.3, 0.3}).ok());
  }
  const auto alerts = tracker.RecordRound({0.3, 0.9}).value();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].participant, 1);
  EXPECT_GT(alerts[0].relative_drift, 0.5);
}

TEST(RoundTrackerTest, CumulativeRanking) {
  RoundTracker tracker(3, DefaultConfig());
  ASSERT_TRUE(tracker.RecordRound({0.1, 0.5, 0.3}).ok());
  ASSERT_TRUE(tracker.RecordRound({0.1, 0.4, 0.6}).ok());
  const std::vector<int> ranking = tracker.CumulativeRanking();
  EXPECT_EQ(ranking, (std::vector<int>{1, 2, 0}));
}

TEST(RoundTrackerTest, SummaryListsEveryParticipant) {
  RoundTracker tracker(2, DefaultConfig());
  ASSERT_TRUE(tracker.RecordRound({0.25, 0.75}).ok());
  const std::string summary = tracker.Summary();
  EXPECT_NE(summary.find("P0"), std::string::npos);
  EXPECT_NE(summary.find("P1"), std::string::npos);
  EXPECT_NE(summary.find("after 1 rounds"), std::string::npos);
}

}  // namespace
}  // namespace ctfl
