#include "ctfl/fl/failure.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "ctfl/data/gen/synthetic.h"
#include "ctfl/fl/fedavg.h"
#include "ctfl/fl/partition.h"

namespace ctfl {
namespace {

// ---------------------------------------------------------------------------
// FailurePlan: parsing, determinism, fingerprints.
// ---------------------------------------------------------------------------

TEST(FailurePlanTest, EmptyStringParsesToEmptyPlan) {
  const Result<FailurePlan> plan = FailurePlan::Parse("");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(plan->empty());
  EXPECT_EQ(plan->Fingerprint(), 0u);
  EXPECT_EQ(plan->ToString(), "");
  // The empty plan injects nothing, anywhere.
  for (int r = 0; r < 5; ++r) {
    for (int c = 0; c < 5; ++c) {
      EXPECT_FALSE(plan->DropsOut(r, c));
      EXPECT_EQ(plan->UploadOutcome(r, c, 0), FailureKind::kNone);
    }
  }
}

TEST(FailurePlanTest, ParseReadsEveryKey) {
  const Result<FailurePlan> plan = FailurePlan::Parse(
      " dropout=0.2, straggler=0.1,corrupt=0.05,mismatch=0.04,seed=17 ");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_DOUBLE_EQ(plan->spec().dropout, 0.2);
  EXPECT_DOUBLE_EQ(plan->spec().straggler, 0.1);
  EXPECT_DOUBLE_EQ(plan->spec().corrupt, 0.05);
  EXPECT_DOUBLE_EQ(plan->spec().size_mismatch, 0.04);
  EXPECT_EQ(plan->spec().seed, 17u);
  // "size_mismatch" is an accepted alias.
  const Result<FailurePlan> alias =
      FailurePlan::Parse("size_mismatch=0.3");
  ASSERT_TRUE(alias.ok()) << alias.status();
  EXPECT_DOUBLE_EQ(alias->spec().size_mismatch, 0.3);
}

TEST(FailurePlanTest, ToStringRoundTripsThroughParse) {
  const Result<FailurePlan> plan =
      FailurePlan::Parse("dropout=0.25,corrupt=0.125,seed=9");
  ASSERT_TRUE(plan.ok()) << plan.status();
  const Result<FailurePlan> reparsed = FailurePlan::Parse(plan->ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(reparsed->Fingerprint(), plan->Fingerprint());
}

TEST(FailurePlanTest, ParseRejectsMalformedSpecs) {
  EXPECT_FALSE(FailurePlan::Parse("dropout").ok());        // not key=value
  EXPECT_FALSE(FailurePlan::Parse("jitter=0.5").ok());     // unknown key
  EXPECT_FALSE(FailurePlan::Parse("dropout=1.5").ok());    // rate > 1
  EXPECT_FALSE(FailurePlan::Parse("corrupt=-0.1").ok());   // rate < 0
  EXPECT_FALSE(FailurePlan::Parse("dropout=abc").ok());    // not a number
  // Upload fault rates are mutually exclusive bands; they cannot sum > 1.
  EXPECT_FALSE(
      FailurePlan::Parse("straggler=0.5,corrupt=0.4,mismatch=0.2").ok());
}

TEST(FailurePlanTest, OutcomesArePureFunctionsOfTheKey) {
  FailureSpec spec;
  spec.dropout = 0.3;
  spec.straggler = 0.2;
  spec.corrupt = 0.2;
  spec.size_mismatch = 0.2;
  spec.seed = 42;
  const FailurePlan a(spec);
  const FailurePlan b(spec);
  // Two plan instances (no shared state) agree everywhere, and repeated
  // queries — in any order — return the same answer: no generator state.
  for (int r = 4; r >= 0; --r) {
    for (int c = 0; c < 6; ++c) {
      EXPECT_EQ(a.DropsOut(r, c), b.DropsOut(r, c));
      for (int attempt : {2, 0, 1}) {
        EXPECT_EQ(a.UploadOutcome(r, c, attempt),
                  b.UploadOutcome(r, c, attempt));
        EXPECT_EQ(a.UploadOutcome(r, c, attempt),
                  a.UploadOutcome(r, c, attempt));
      }
    }
  }

  // A different seed reshuffles the schedule.
  spec.seed = 43;
  const FailurePlan other(spec);
  int differences = 0;
  for (int r = 0; r < 20; ++r) {
    for (int c = 0; c < 20; ++c) {
      differences += a.DropsOut(r, c) != other.DropsOut(r, c);
    }
  }
  EXPECT_GT(differences, 0);
}

TEST(FailurePlanTest, EmpiricalRatesMatchTheSpec) {
  FailureSpec spec;
  spec.dropout = 0.3;
  spec.straggler = 0.25;
  spec.corrupt = 0.15;
  spec.size_mismatch = 0.1;
  spec.seed = 7;
  const FailurePlan plan(spec);
  int drops = 0, stragglers = 0, corrupts = 0, mismatches = 0;
  const int rounds = 200, clients = 50;
  for (int r = 0; r < rounds; ++r) {
    for (int c = 0; c < clients; ++c) {
      drops += plan.DropsOut(r, c);
      switch (plan.UploadOutcome(r, c, 0)) {
        case FailureKind::kStraggler: ++stragglers; break;
        case FailureKind::kCorrupt: ++corrupts; break;
        case FailureKind::kSizeMismatch: ++mismatches; break;
        default: break;
      }
    }
  }
  const double n = rounds * clients;
  EXPECT_NEAR(drops / n, 0.3, 0.02);
  EXPECT_NEAR(stragglers / n, 0.25, 0.02);
  EXPECT_NEAR(corrupts / n, 0.15, 0.02);
  EXPECT_NEAR(mismatches / n, 0.1, 0.02);
}

TEST(FailurePlanTest, FingerprintSeparatesPlans) {
  const FailurePlan a = FailurePlan::Parse("dropout=0.2,seed=1").value();
  const FailurePlan b = FailurePlan::Parse("dropout=0.2,seed=2").value();
  const FailurePlan c = FailurePlan::Parse("straggler=0.2,seed=1").value();
  EXPECT_NE(a.Fingerprint(), 0u);
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
  EXPECT_NE(a.Fingerprint(), c.Fingerprint());
  EXPECT_NE(b.Fingerprint(), c.Fingerprint());
  // Stable across instances: the digest names the spec, not the object.
  EXPECT_EQ(a.Fingerprint(),
            FailurePlan::Parse("dropout=0.2,seed=1").value().Fingerprint());
}

// ---------------------------------------------------------------------------
// Upload validation and wire-level tampering.
// ---------------------------------------------------------------------------

TEST(ValidateClientUpdateTest, AcceptsOnlyFiniteWellSizedUpdates) {
  const std::vector<double> good = {1.0, -2.5, 0.0};
  EXPECT_TRUE(ValidateClientUpdate(good, 3).ok());
  EXPECT_FALSE(ValidateClientUpdate(good, 4).ok());  // size mismatch

  std::vector<double> nan_update = good;
  nan_update[1] = std::nan("");
  EXPECT_FALSE(ValidateClientUpdate(nan_update, 3).ok());

  std::vector<double> inf_update = good;
  inf_update[2] = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(ValidateClientUpdate(inf_update, 3).ok());
}

TEST(TamperUpdateTest, CorruptPlantsNansDeterministically) {
  std::vector<double> update(64, 1.0);
  TamperUpdate(FailureKind::kCorrupt, 2, 3, 0, update);
  ASSERT_EQ(update.size(), 64u);
  int nans = 0;
  for (double v : update) nans += std::isnan(v);
  EXPECT_GT(nans, 0);
  EXPECT_LT(nans, 64);  // partial corruption, not a wipe
  EXPECT_FALSE(ValidateClientUpdate(update, 64).ok());

  // Deterministic in (round, client, attempt).
  std::vector<double> replay(64, 1.0);
  TamperUpdate(FailureKind::kCorrupt, 2, 3, 0, replay);
  EXPECT_EQ(0, std::memcmp(update.data(), replay.data(),
                           update.size() * sizeof(double)));
}

TEST(TamperUpdateTest, SizeMismatchTruncates) {
  std::vector<double> update(64, 1.0);
  TamperUpdate(FailureKind::kSizeMismatch, 0, 0, 0, update);
  EXPECT_LT(update.size(), 64u);
  EXPECT_FALSE(ValidateClientUpdate(update, 64).ok());
}

TEST(TamperUpdateTest, CleanAndStragglerLeavePayloadAlone) {
  const std::vector<double> original(16, 0.25);
  for (FailureKind kind : {FailureKind::kNone, FailureKind::kStraggler,
                           FailureKind::kDropout}) {
    std::vector<double> update = original;
    TamperUpdate(kind, 1, 1, 1, update);
    EXPECT_EQ(update, original);
  }
}

// ---------------------------------------------------------------------------
// Fault-tolerant RunFedAvg: quarantine, retries, degraded rounds, replay.
// ---------------------------------------------------------------------------

Dataset ThresholdDataset(size_t n, uint64_t seed) {
  SyntheticSpec spec;
  spec.schema = std::make_shared<FeatureSchema>(
      std::vector<FeatureSpec>{FeatureSchema::Continuous("x", 0, 1)}, "neg",
      "pos");
  spec.samplers = {FeatureSampler{FeatureSampler::Kind::kUniform, 0, 0, {}}};
  spec.rules = {{{{0, GtPredicate::Op::kGt, 0.5}}, 1, 1.0},
                {{{0, GtPredicate::Op::kLt, 0.5}}, 0, 1.0}};
  Rng rng(seed);
  return GenerateSynthetic(spec, n, rng);
}

LogicalNetConfig SmallNet() {
  LogicalNetConfig config;
  config.logic_layers = {{8, 8}};
  config.seed = 3;
  return config;
}

FedAvgConfig FaultyConfig(const std::string& plan) {
  FedAvgConfig config;
  config.rounds = 4;
  config.local_epochs = 2;
  config.local.learning_rate = 0.05;
  config.failure = FailurePlan::Parse(plan).value();
  return config;
}

TEST(FaultTolerantFedAvgTest, SizeMismatchedUploadsFailTheRoundCleanly) {
  // Satellite regression: RunFedAvg used to call Mask(...).value() /
  // Aggregate(...).value() and would CHECK-crash on the first bad upload.
  // Now a plan that mangles most uploads must complete, quarantining the
  // bad ones and degrading the affected rounds.
  const Dataset all = ThresholdDataset(400, 31);
  Rng rng(32);
  const std::vector<Dataset> clients = PartitionUniform(all, 4, rng);

  FedAvgConfig config = FaultyConfig("mismatch=0.6,seed=5");
  config.retry_budget = 0;  // no second chances: quarantine on first fault
  LogicalNet net(all.schema(), SmallNet());
  FedAvgStats stats;
  const Status status = RunFedAvg(net, clients, config, &stats);
  ASSERT_TRUE(status.ok()) << status;
  ASSERT_EQ(stats.rounds.size(), 4u);
  EXPECT_GT(stats.clients_dropped, 0);
  EXPECT_GT(stats.rounds_degraded, 0);
  // Quarantine keeps the aggregate finite and usable.
  for (double v : net.GetParameters()) EXPECT_TRUE(std::isfinite(v));
}

TEST(FaultTolerantFedAvgTest, SecureAggSurvivesDropoutAndMatchesPlain) {
  // Cohort-aware masking: with clients dropping out every round, the
  // surviving cohort's masks must still cancel — secure and plain
  // aggregation see the same cohorts and agree numerically.
  const Dataset all = ThresholdDataset(480, 33);
  Rng rng(34);
  const std::vector<Dataset> clients = PartitionUniform(all, 4, rng);

  FedAvgConfig plain = FaultyConfig("dropout=0.35,straggler=0.2,seed=11");
  FedAvgConfig secure = plain;
  secure.secure_aggregation = true;

  FedAvgStats plain_stats, secure_stats;
  const LogicalNet a =
      TrainFederated(all.schema(), SmallNet(), clients, plain, &plain_stats)
          .value();
  const LogicalNet b =
      TrainFederated(all.schema(), SmallNet(), clients, secure,
                     &secure_stats)
          .value();

  // The plan is a pure function of (seed, round, client): both runs lose
  // the same clients.
  EXPECT_GT(plain_stats.clients_dropped, 0);
  EXPECT_EQ(plain_stats.clients_dropped, secure_stats.clients_dropped);
  EXPECT_EQ(plain_stats.rounds_degraded, secure_stats.rounds_degraded);

  const std::vector<double> pa = a.GetParameters();
  const std::vector<double> pb = b.GetParameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t k = 0; k < pa.size(); ++k) {
    EXPECT_NEAR(pa[k], pb[k], 1e-6) << "coordinate " << k;
  }
}

TEST(FaultTolerantFedAvgTest, FaultyRunsReplayBitIdentically) {
  const Dataset all = ThresholdDataset(360, 35);
  Rng rng(36);
  const std::vector<Dataset> clients = PartitionUniform(all, 5, rng);

  const FedAvgConfig config =
      FaultyConfig("dropout=0.2,straggler=0.15,corrupt=0.1,mismatch=0.1,"
                   "seed=23");
  FedAvgStats first_stats, second_stats;
  const LogicalNet first =
      TrainFederated(all.schema(), SmallNet(), clients, config, &first_stats)
          .value();
  const LogicalNet second =
      TrainFederated(all.schema(), SmallNet(), clients, config,
                     &second_stats)
          .value();

  const std::vector<double> pa = first.GetParameters();
  const std::vector<double> pb = second.GetParameters();
  ASSERT_EQ(pa.size(), pb.size());
  EXPECT_EQ(0, std::memcmp(pa.data(), pb.data(), pa.size() * sizeof(double)));
  EXPECT_EQ(first_stats.clients_dropped, second_stats.clients_dropped);
  EXPECT_EQ(first_stats.retries, second_stats.retries);
  EXPECT_EQ(first_stats.rounds_degraded, second_stats.rounds_degraded);
  ASSERT_EQ(first_stats.rounds.size(), second_stats.rounds.size());
  for (size_t r = 0; r < first_stats.rounds.size(); ++r) {
    EXPECT_EQ(first_stats.rounds[r].clients_dropped,
              second_stats.rounds[r].clients_dropped);
    EXPECT_EQ(first_stats.rounds[r].retries,
              second_stats.rounds[r].retries);
    EXPECT_EQ(first_stats.rounds[r].degraded,
              second_stats.rounds[r].degraded);
  }
}

TEST(FaultTolerantFedAvgTest, RetryBudgetRecoversStragglers) {
  // A straggler's payload is intact — it is merely late — so a retry
  // usually lands it. More budget => fewer quarantines, and the retry
  // counter moves.
  const Dataset all = ThresholdDataset(360, 37);
  Rng rng(38);
  const std::vector<Dataset> clients = PartitionUniform(all, 4, rng);

  FedAvgConfig config = FaultyConfig("straggler=0.5,seed=3");
  config.rounds = 6;

  config.retry_budget = 0;
  FedAvgStats no_retries;
  LogicalNet strict_net(all.schema(), SmallNet());
  ASSERT_TRUE(RunFedAvg(strict_net, clients, config, &no_retries).ok());
  EXPECT_EQ(no_retries.retries, 0);
  EXPECT_GT(no_retries.clients_dropped, 0);

  config.retry_budget = 4;
  FedAvgStats generous;
  LogicalNet net(all.schema(), SmallNet());
  ASSERT_TRUE(RunFedAvg(net, clients, config, &generous).ok());
  EXPECT_GT(generous.retries, 0);
  EXPECT_LT(generous.clients_dropped, no_retries.clients_dropped);
}

TEST(FaultTolerantFedAvgTest, FullyDegradedRoundLeavesModelUntouched) {
  const Dataset all = ThresholdDataset(200, 39);
  Rng rng(40);
  const std::vector<Dataset> clients = PartitionUniform(all, 3, rng);

  FedAvgConfig config = FaultyConfig("dropout=1,seed=1");
  config.rounds = 3;
  LogicalNet net(all.schema(), SmallNet());
  const std::vector<double> before = net.GetParameters();
  FedAvgStats stats;
  ASSERT_TRUE(RunFedAvg(net, clients, config, &stats).ok());
  EXPECT_EQ(net.GetParameters(), before);
  EXPECT_EQ(stats.rounds_degraded, 3);
  EXPECT_EQ(stats.clients_dropped, 3 * 3);
  for (const telemetry::RoundTelemetry& rt : stats.rounds) {
    EXPECT_TRUE(rt.degraded);
    EXPECT_EQ(rt.clients_trained, 0);
    EXPECT_EQ(rt.mean_local_loss, 0.0);
  }
}

TEST(FaultTolerantFedAvgTest, EmptyPlanIsBitIdenticalToFaultFreeEngine) {
  // The acceptance criterion that keeps this PR honest: wiring the fault
  // machinery through the round loop must not move a single bit on the
  // default path.
  const Dataset all = ThresholdDataset(400, 41);
  Rng rng(42);
  const std::vector<Dataset> clients = PartitionUniform(all, 4, rng);

  FedAvgConfig baseline;
  baseline.rounds = 3;
  baseline.local_epochs = 2;
  baseline.local.learning_rate = 0.05;

  FedAvgConfig with_plan = baseline;
  with_plan.failure = FailurePlan::Parse("").value();
  with_plan.retry_budget = 5;  // budget is irrelevant when nothing fails

  for (const bool secure : {false, true}) {
    FedAvgConfig a = baseline, b = with_plan;
    a.secure_aggregation = b.secure_aggregation = secure;
    const std::vector<double> pa =
        TrainFederated(all.schema(), SmallNet(), clients, a)
            .value()
            .GetParameters();
    const std::vector<double> pb =
        TrainFederated(all.schema(), SmallNet(), clients, b)
            .value()
            .GetParameters();
    ASSERT_EQ(pa.size(), pb.size());
    EXPECT_EQ(
        0, std::memcmp(pa.data(), pb.data(), pa.size() * sizeof(double)))
        << "secure=" << secure;
  }
}

TEST(FaultTolerantFedAvgTest, NegativeRetryBudgetIsRejected) {
  const Dataset all = ThresholdDataset(100, 43);
  FedAvgConfig config;
  config.retry_budget = -1;
  LogicalNet net(all.schema(), SmallNet());
  const Status status = RunFedAvg(net, {all}, config);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace ctfl
