#include "ctfl/core/tracer.h"

#include <gtest/gtest.h>

#include "ctfl/data/gen/synthetic.h"
#include "ctfl/fl/partition.h"
#include "ctfl/nn/trainer.h"

namespace ctfl {
namespace {

// ---------------------------------------------------------------------------
// Handcrafted fixture mirroring paper Examples III.3 / III.4: two discrete
// features; the vote layer is programmed so that exactly four encoded
// predicates act as rules with chosen classes and weights:
//   f = a  -> positive, w = 1.0     (r1+)
//   f = b  -> positive, w = 0.5     (r2+)
//   f = c  -> negative, w = 1.0     (r1-)
//   g = y  -> negative, w = 0.5     (r2-)
// All logic-layer rules get zero vote weight, so tracing ignores them.
// ---------------------------------------------------------------------------
class HandcraftedTracerTest : public ::testing::Test {
 protected:
  HandcraftedTracerTest()
      : schema_(std::make_shared<FeatureSchema>(
            std::vector<FeatureSpec>{
                FeatureSchema::Discrete("f", {"a", "b", "c"}),
                FeatureSchema::Discrete("g", {"n", "y"}),
            },
            "neg", "pos")),
        net_(schema_, MakeConfig()) {
    // Encoded predicate order: f=a(0), f=b(1), f=c(2), g=n(3), g=y(4).
    Matrix& w = MutableLinear().weights();
    w.Fill(0.0);
    MutableLinear().bias().Fill(0.0);
    w(1, 0) = 1.0;   // f=a positive, weight 1
    w(1, 1) = 0.5;   // f=b positive, weight 0.5
    w(0, 2) = 1.0;   // f=c negative, weight 1
    w(0, 4) = 0.5;   // g=y negative, weight 0.5
    // Zero the logic-layer weights so their nodes are constant rules with
    // zero vote weight (filtered by min_rule_weight).
    for (LogicLayer& layer : net_.mutable_logic_layers()) {
      layer.weights().Fill(0.0);
    }
  }

  static LogicalNetConfig MakeConfig() {
    LogicalNetConfig config;
    config.logic_layers = {{2, 2}};
    config.fan_in = 1;
    config.seed = 1;
    return config;
  }

  // The test programs the vote layer directly to realize known rules.
  LinearLayer& MutableLinear() {
    return const_cast<LinearLayer&>(net_.linear());
  }

  Instance Make(int f, int g, int label) {
    Instance inst;
    inst.values = {static_cast<double>(f), static_cast<double>(g)};
    inst.label = label;
    return inst;
  }

  Federation MakeFederation(std::vector<std::vector<Instance>> per_client) {
    std::vector<Dataset> datasets;
    for (auto& instances : per_client) {
      Dataset d(schema_);
      for (Instance& inst : instances) d.AppendUnchecked(std::move(inst));
      datasets.push_back(std::move(d));
    }
    return ::ctfl::MakeFederation(std::move(datasets));
  }

  SchemaPtr schema_;
  LogicalNet net_;
};

TEST_F(HandcraftedTracerTest, PredictionsFollowProgrammedRules) {
  EXPECT_EQ(net_.Predict(Make(0, 0, 0)), 1);  // f=a: +1 vs 0
  EXPECT_EQ(net_.Predict(Make(2, 0, 0)), 0);  // f=c: 0 vs 1
  EXPECT_EQ(net_.Predict(Make(1, 1, 0)), 1);  // +0.5 vs -0.5: tie -> pos
  EXPECT_EQ(net_.Predict(Make(2, 1, 0)), 0);  // 0 vs 1.5
}

TEST_F(HandcraftedTracerTest, StrictTracingRequiresFullRuleCoverage) {
  // Paper Example III.3. Test instance (f=c, g=y, label neg) activates
  // r1- (w 1) and r2- (w 0.5). Participant B holds (c, y) records that
  // activate both; participant C holds (c, n) records activating only r1-.
  Federation fed = MakeFederation({
      {Make(0, 0, 1), Make(0, 0, 1)},                 // A: positive data
      {Make(2, 1, 0), Make(2, 1, 0), Make(2, 1, 0)},  // B: full coverage
      {Make(2, 0, 0), Make(2, 0, 0)},                 // C: only r1-
  });
  Dataset test(schema_);
  test.AppendUnchecked(Make(2, 1, 0));

  TracerConfig strict;
  strict.tau_w = 1.0;
  strict.num_threads = 1;
  const TraceResult trace =
      ContributionTracer(&net_, &fed, strict).Trace(test);
  ASSERT_EQ(trace.tests.size(), 1u);
  EXPECT_TRUE(trace.tests[0].correct);
  EXPECT_EQ(trace.tests[0].related_count[0], 0);
  EXPECT_EQ(trace.tests[0].related_count[1], 3);
  EXPECT_EQ(trace.tests[0].related_count[2], 0);  // 2/3 < 1.0

  // Softer threshold 0.6 admits C's records: ratio 1/1.5 = 2/3 >= 0.6.
  TracerConfig soft = strict;
  soft.tau_w = 0.6;
  const TraceResult soft_trace =
      ContributionTracer(&net_, &fed, soft).Trace(test);
  EXPECT_EQ(soft_trace.tests[0].related_count[1], 3);
  EXPECT_EQ(soft_trace.tests[0].related_count[2], 2);
}

TEST_F(HandcraftedTracerTest, LabelMismatchNeverRelated) {
  // Training data with the right activations but the wrong label must not
  // be related (the label-flip defense, §IV-A).
  Federation fed = MakeFederation({
      {Make(2, 1, 1)},  // label-flipped copy of the test pattern
      {Make(2, 1, 0)},  // honest record
  });
  Dataset test(schema_);
  test.AppendUnchecked(Make(2, 1, 0));
  TracerConfig config;
  config.tau_w = 0.8;
  config.num_threads = 1;
  const TraceResult trace =
      ContributionTracer(&net_, &fed, config).Trace(test);
  EXPECT_EQ(trace.tests[0].related_count[0], 0);
  EXPECT_EQ(trace.tests[0].related_count[1], 1);
}

TEST_F(HandcraftedTracerTest, MisclassifiedTestsTraceToWrongClassData) {
  // Test (f=c, g=n) with TRUE label positive: the model predicts negative
  // (r1- fires), a false negative. Loss tracing should attribute it to
  // holders of negative data activating r1-.
  Federation fed = MakeFederation({
      {Make(2, 0, 0), Make(2, 0, 0)},  // negative-class holders
      {Make(0, 0, 1)},                 // positive data, unrelated
  });
  Dataset test(schema_);
  test.AppendUnchecked(Make(2, 0, 1));  // true label positive
  TracerConfig config;
  config.tau_w = 1.0;
  config.num_threads = 1;
  const TraceResult trace =
      ContributionTracer(&net_, &fed, config).Trace(test);
  ASSERT_FALSE(trace.tests[0].correct);
  EXPECT_EQ(trace.tests[0].predicted, 0);
  EXPECT_EQ(trace.tests[0].related_count[0], 2);
  EXPECT_EQ(trace.tests[0].related_count[1], 0);
  // Those matches land in the miss ledger, not the correct ledger.
  EXPECT_EQ(trace.train_match_miss[0][0], 1);
  EXPECT_EQ(trace.train_match_correct[0][0], 0);
}

TEST_F(HandcraftedTracerTest, UncoveredMisclassificationsFeedGuidance) {
  // A false-negative test with NO related training data at all.
  Federation fed = MakeFederation({
      {Make(0, 0, 1)},  // positive data only
  });
  Dataset test(schema_);
  test.AppendUnchecked(Make(2, 0, 1));  // predicted neg, no neg data exists
  TracerConfig config;
  config.num_threads = 1;
  const TraceResult trace =
      ContributionTracer(&net_, &fed, config).Trace(test);
  EXPECT_EQ(trace.uncovered_tests, 1u);
  // The activated rule f=c (coordinate 2) must appear in the guidance
  // frequencies.
  EXPECT_GT(trace.uncovered_rule_freq[2], 0.0);
}

TEST_F(HandcraftedTracerTest, GlobalAccuracyMatchesModel) {
  Federation fed = MakeFederation({{Make(0, 0, 1), Make(2, 1, 0)}});
  Dataset test(schema_);
  test.AppendUnchecked(Make(0, 0, 1));  // correct
  test.AppendUnchecked(Make(2, 1, 0));  // correct
  test.AppendUnchecked(Make(2, 1, 1));  // wrong
  TracerConfig config;
  config.num_threads = 1;
  const TraceResult trace =
      ContributionTracer(&net_, &fed, config).Trace(test);
  EXPECT_NEAR(trace.global_accuracy, 2.0 / 3, 1e-12);
  EXPECT_NEAR(trace.global_accuracy, net_.Accuracy(test), 1e-12);
}

// ---------------------------------------------------------------------------
// Consistency properties on a *trained* model over synthetic data: the
// dedup, Max-Miner, and threading fast paths must not change any count.
// ---------------------------------------------------------------------------
struct ConsistencyCase {
  bool use_dedup;
  bool use_max_miner;
  int num_threads;
};

class TracerConsistencyTest
    : public ::testing::TestWithParam<ConsistencyCase> {
 protected:
  static void SetUpTestSuite() {
    SyntheticSpec spec;
    spec.schema = std::make_shared<FeatureSchema>(
        std::vector<FeatureSpec>{
            FeatureSchema::Continuous("x", 0, 1),
            FeatureSchema::Discrete("d", {"p", "q", "r"}),
        },
        "neg", "pos");
    spec.samplers = {
        FeatureSampler{FeatureSampler::Kind::kUniform, 0, 0, {}},
        FeatureSampler{FeatureSampler::Kind::kCategorical, 0, 0, {}}};
    spec.rules = {{{{0, GtPredicate::Op::kGt, 0.6}}, 1, 1.0},
                  {{{0, GtPredicate::Op::kLt, 0.3}}, 0, 1.0},
                  {{{1, GtPredicate::Op::kEq, 2}}, 1, 0.5}};
    spec.label_noise = 0.05;
    Rng rng(404);
    const Dataset all = GenerateSynthetic(spec, 900, rng);
    Rng prng(405);
    federation_ = new Federation(
        ::ctfl::MakeFederation(PartitionSkewLabel(all, 4, 0.8, prng)));
    test_ = new Dataset(GenerateSynthetic(spec, 250, rng));

    LogicalNetConfig config;
    config.logic_layers = {{16, 16}};
    config.seed = 9;
    net_ = new LogicalNet(spec.schema, config);
    TrainConfig tc;
    tc.epochs = 15;
    tc.learning_rate = 0.05;
    TrainGrafted(*net_, MergeFederation(*federation_), tc);
  }

  static void TearDownTestSuite() {
    delete net_;
    delete test_;
    delete federation_;
    net_ = nullptr;
    test_ = nullptr;
    federation_ = nullptr;
  }

  static Federation* federation_;
  static Dataset* test_;
  static LogicalNet* net_;
};

Federation* TracerConsistencyTest::federation_ = nullptr;
Dataset* TracerConsistencyTest::test_ = nullptr;
LogicalNet* TracerConsistencyTest::net_ = nullptr;

TEST_P(TracerConsistencyTest, FastPathsMatchBruteForce) {
  TracerConfig brute;
  brute.tau_w = 0.85;
  brute.use_dedup = false;
  brute.use_max_miner = false;
  brute.num_threads = 1;
  const TraceResult expected =
      ContributionTracer(net_, federation_, brute).Trace(*test_);

  const ConsistencyCase& c = GetParam();
  TracerConfig fast = brute;
  fast.use_dedup = c.use_dedup;
  fast.use_max_miner = c.use_max_miner;
  fast.num_threads = c.num_threads;
  const TraceResult actual =
      ContributionTracer(net_, federation_, fast).Trace(*test_);

  ASSERT_EQ(actual.tests.size(), expected.tests.size());
  for (size_t t = 0; t < expected.tests.size(); ++t) {
    EXPECT_EQ(actual.tests[t].related_count, expected.tests[t].related_count)
        << "test " << t;
    EXPECT_EQ(actual.tests[t].correct, expected.tests[t].correct);
  }
  EXPECT_EQ(actual.train_match_correct, expected.train_match_correct);
  EXPECT_EQ(actual.train_match_miss, expected.train_match_miss);
  for (size_t i = 0; i < expected.beneficial_rule_freq.size(); ++i) {
    // Thread-dependent summation order perturbs the last few bits.
    EXPECT_NEAR(actual.beneficial_rule_freq.data()[i],
                expected.beneficial_rule_freq.data()[i], 1e-6);
  }
  EXPECT_EQ(actual.uncovered_tests, expected.uncovered_tests);
}

INSTANTIATE_TEST_SUITE_P(
    Paths, TracerConsistencyTest,
    ::testing::Values(ConsistencyCase{true, false, 1},
                      ConsistencyCase{true, true, 1},
                      ConsistencyCase{false, true, 1},
                      ConsistencyCase{true, true, 4},
                      ConsistencyCase{false, false, 8}));

// Monotonicity property (paper §III-C Remark): raising tau_w can only
// shrink every related set — a stricter overlap requirement admits fewer
// training records.
TEST_P(TracerConsistencyTest, RelatedSetsShrinkAsTauGrows) {
  std::vector<TraceResult> traces;
  for (double tau : {0.6, 0.8, 1.0}) {
    TracerConfig config;
    config.tau_w = tau;
    config.num_threads = 1;
    traces.push_back(
        ContributionTracer(net_, federation_, config).Trace(*test_));
  }
  for (size_t level = 1; level < traces.size(); ++level) {
    for (size_t t = 0; t < traces[level].tests.size(); ++t) {
      EXPECT_LE(traces[level].tests[t].total_related,
                traces[level - 1].tests[t].total_related)
          << "test " << t << " level " << level;
      for (int p = 0; p < traces[level].num_participants; ++p) {
        EXPECT_LE(traces[level].tests[t].related_count[p],
                  traces[level - 1].tests[t].related_count[p]);
      }
    }
  }
}

}  // namespace
}  // namespace ctfl
