#include "ctfl/nn/logical_net.h"
#include <cmath>

#include <gtest/gtest.h>

#include "ctfl/data/gen/benchmarks.h"
#include "ctfl/data/gen/tictactoe.h"
#include "ctfl/nn/loss.h"

namespace ctfl {
namespace {

SchemaPtr SmallSchema() {
  return std::make_shared<FeatureSchema>(
      std::vector<FeatureSpec>{
          FeatureSchema::Continuous("x", 0.0, 1.0),
          FeatureSchema::Discrete("c", {"a", "b"}),
      },
      "neg", "pos");
}

LogicalNetConfig SmallConfig() {
  LogicalNetConfig config;
  config.tau_d = 3;
  config.logic_layers = {{4, 4}};
  config.fan_in = 2;
  config.seed = 11;
  return config;
}

TEST(LogicalNetTest, RuleSpaceAccounting) {
  const LogicalNet net(SmallSchema(), SmallConfig());
  // Encoded: 2*3 bounds + 2 one-hot = 8. Rules: 8 (skip) + 8 (logic).
  EXPECT_EQ(net.encoded_size(), 8);
  EXPECT_EQ(net.num_rules(), 16);
}

TEST(LogicalNetTest, RuleSourceMapping) {
  const LogicalNet net(SmallSchema(), SmallConfig());
  // First encoded_size rules are skip predicates.
  for (int j = 0; j < net.encoded_size(); ++j) {
    const auto [layer, idx] = net.RuleSource(j);
    EXPECT_EQ(layer, -1);
    EXPECT_EQ(idx, j);
  }
  for (int j = net.encoded_size(); j < net.num_rules(); ++j) {
    const auto [layer, idx] = net.RuleSource(j);
    EXPECT_EQ(layer, 0);
    EXPECT_EQ(idx, j - net.encoded_size());
  }
}

TEST(LogicalNetTest, NoSkipConfigShrinksRuleSpace) {
  LogicalNetConfig config = SmallConfig();
  config.input_skip = false;
  const LogicalNet net(SmallSchema(), config);
  EXPECT_EQ(net.num_rules(), 8);
  const auto [layer, idx] = net.RuleSource(0);
  EXPECT_EQ(layer, 0);
  EXPECT_EQ(idx, 0);
}

TEST(LogicalNetTest, ParameterRoundTrip) {
  LogicalNet net(SmallSchema(), SmallConfig());
  const std::vector<double> params = net.GetParameters();
  EXPECT_EQ(params.size(), net.NumParameters());

  LogicalNetConfig config = SmallConfig();
  config.seed = 11;  // same seed -> same architecture
  LogicalNet other(SmallSchema(), config);
  other.SetParameters(params);
  EXPECT_EQ(other.GetParameters(), params);
}

TEST(LogicalNetTest, RuleActivationsMatchRulesDiscrete) {
  const LogicalNet net(SmallSchema(), SmallConfig());
  Dataset d(SmallSchema());
  Rng rng(12);
  for (int i = 0; i < 20; ++i) {
    Instance inst;
    inst.values = {rng.Uniform(), static_cast<double>(rng.UniformInt(2))};
    d.AppendUnchecked(std::move(inst));
  }
  const Matrix encoded = net.EncodeBatch(d);
  const Matrix rules = net.RulesDiscrete(encoded);
  for (size_t r = 0; r < d.size(); ++r) {
    const Bitset bits = net.RuleActivations(d.instance(r));
    for (int j = 0; j < net.num_rules(); ++j) {
      EXPECT_EQ(bits.Test(j), rules(r, j) > 0.5);
    }
  }
}

TEST(LogicalNetTest, PredictConsistentWithForwardDiscrete) {
  const LogicalNet net(SmallSchema(), SmallConfig());
  Rng rng(13);
  for (int i = 0; i < 20; ++i) {
    Instance inst;
    inst.values = {rng.Uniform(), static_cast<double>(rng.UniformInt(2))};
    Matrix encoded(1, net.encoded_size());
    net.encoder().Encode(inst, encoded.row(0));
    const Matrix logits = net.ForwardDiscrete(encoded);
    const int expected = logits(0, 1) >= logits(0, 0) ? 1 : 0;
    EXPECT_EQ(net.Predict(inst), expected);
  }
}

TEST(LogicalNetTest, RuleClassAndWeightMatchVoteLayer) {
  LogicalNet net(SmallSchema(), SmallConfig());
  for (int j = 0; j < net.num_rules(); ++j) {
    const double w0 = net.linear().weights()(0, j);
    const double w1 = net.linear().weights()(1, j);
    EXPECT_EQ(net.RuleClass(j), w1 >= w0 ? 1 : 0);
    EXPECT_NEAR(net.RuleWeight(j), std::abs(w1 - w0), 1e-12);
  }
}

// End-to-end grafting gradient check: dL(Ŷ_discrete)/dŶ pushed through the
// continuous graph must match finite differences of the *continuous* loss
// surrogate (same dlogits contraction).
TEST(LogicalNetTest, GraftedBackwardMatchesFiniteDifferenceOfContinuousPath) {
  LogicalNet net(SmallSchema(), SmallConfig());
  Rng rng(14);
  Dataset d(SmallSchema());
  std::vector<int> labels;
  for (int i = 0; i < 6; ++i) {
    Instance inst;
    inst.values = {rng.Uniform(), static_cast<double>(rng.UniformInt(2))};
    inst.label = static_cast<int>(rng.UniformInt(2));
    labels.push_back(inst.label);
    d.AppendUnchecked(std::move(inst));
  }
  const Matrix encoded = net.EncodeBatch(d);

  // Fix an arbitrary upstream gradient (as grafting would produce from the
  // discrete loss) and define L_cont = sum dlogits .* Y_continuous.
  Matrix dlogits(6, 2);
  for (size_t r = 0; r < 6; ++r) {
    dlogits(r, 0) = rng.Uniform(-1, 1);
    dlogits(r, 1) = rng.Uniform(-1, 1);
  }
  auto loss = [&]() {
    const Matrix y = net.ForwardContinuous(encoded, nullptr);
    double total = 0.0;
    for (size_t r = 0; r < y.rows(); ++r) {
      total += dlogits(r, 0) * y(r, 0) + dlogits(r, 1) * y(r, 1);
    }
    return total;
  };

  net.ZeroGrads();
  LogicalNet::Cache cache;
  net.ForwardContinuous(encoded, &cache);
  net.Backward(cache, dlogits);

  const double eps = 1e-6;
  auto slots = net.ParamSlots();
  for (const ParamSlot& slot : slots) {
    // Spot-check a handful of coordinates per tensor.
    Rng pick(99);
    const size_t checks = std::min<size_t>(slot.param->size(), 10);
    for (size_t c = 0; c < checks; ++c) {
      const size_t k = pick.UniformInt(slot.param->size());
      const double v0 = slot.param->data()[k];
      // Keep logic weights in a differentiable interior region.
      slot.param->data()[k] = v0 + eps;
      const double up = loss();
      slot.param->data()[k] = v0 - eps;
      const double down = loss();
      slot.param->data()[k] = v0;
      EXPECT_NEAR(slot.grad->data()[k], (up - down) / (2 * eps), 1e-4);
    }
  }
}

// Same grafted-gradient check for a two-layer architecture: the reverse
// pass must chain dX through the deeper logic layer correctly.
TEST(LogicalNetTest, TwoLayerBackwardMatchesFiniteDifferences) {
  LogicalNetConfig config;
  config.tau_d = 3;
  config.logic_layers = {{3, 3}, {2, 2}};
  config.fan_in = 2;
  config.seed = 21;
  LogicalNet net(SmallSchema(), config);
  Rng rng(22);
  Dataset d(SmallSchema());
  for (int i = 0; i < 5; ++i) {
    Instance inst;
    inst.values = {rng.Uniform(), static_cast<double>(rng.UniformInt(2))};
    d.AppendUnchecked(std::move(inst));
  }
  const Matrix encoded = net.EncodeBatch(d);
  Matrix dlogits(5, 2);
  for (size_t r = 0; r < 5; ++r) {
    dlogits(r, 0) = rng.Uniform(-1, 1);
    dlogits(r, 1) = rng.Uniform(-1, 1);
  }
  auto loss = [&]() {
    const Matrix y = net.ForwardContinuous(encoded, nullptr);
    double total = 0.0;
    for (size_t r = 0; r < y.rows(); ++r) {
      total += dlogits(r, 0) * y(r, 0) + dlogits(r, 1) * y(r, 1);
    }
    return total;
  };
  net.ZeroGrads();
  LogicalNet::Cache cache;
  net.ForwardContinuous(encoded, &cache);
  net.Backward(cache, dlogits);

  const double eps = 1e-6;
  for (const ParamSlot& slot : net.ParamSlots()) {
    Rng pick(33);
    const size_t checks = std::min<size_t>(slot.param->size(), 8);
    for (size_t c = 0; c < checks; ++c) {
      const size_t k = pick.UniformInt(slot.param->size());
      const double v0 = slot.param->data()[k];
      slot.param->data()[k] = v0 + eps;
      const double up = loss();
      slot.param->data()[k] = v0 - eps;
      const double down = loss();
      slot.param->data()[k] = v0;
      EXPECT_NEAR(slot.grad->data()[k], (up - down) / (2 * eps), 1e-4);
    }
  }
}

TEST(LogicalNetTest, AccuracyOfConstantModel) {
  // Fresh nets with near-zero vote weights still classify consistently;
  // accuracy equals the fraction of the predicted-everywhere class only if
  // predictions are constant — here we just bound it to [0, 1].
  const LogicalNet net(SmallSchema(), SmallConfig());
  Dataset d(SmallSchema());
  Rng rng(15);
  for (int i = 0; i < 50; ++i) {
    Instance inst;
    inst.values = {rng.Uniform(), static_cast<double>(rng.UniformInt(2))};
    inst.label = static_cast<int>(rng.UniformInt(2));
    d.AppendUnchecked(std::move(inst));
  }
  const double acc = net.Accuracy(d);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

TEST(SoftmaxLossTest, HandValuesAndGradient) {
  Matrix logits(2, 2);
  logits(0, 0) = 0.0;
  logits(0, 1) = 0.0;
  logits(1, 0) = 100.0;
  logits(1, 1) = -100.0;
  Matrix dlogits;
  const double loss =
      SoftmaxCrossEntropy(logits, {1, 0}, &dlogits);
  // Row 0: -log(0.5); row 1: -log(~1) = ~0.
  EXPECT_NEAR(loss, -std::log(0.5) / 2, 1e-6);
  // Gradient row 0: (0.5 - 0, 0.5 - 1)/2.
  EXPECT_NEAR(dlogits(0, 0), 0.25, 1e-9);
  EXPECT_NEAR(dlogits(0, 1), -0.25, 1e-9);
  EXPECT_NEAR(dlogits(1, 0), 0.0, 1e-6);
}

TEST(SoftmaxLossTest, ArgmaxRows) {
  Matrix logits(2, 3);
  logits(0, 2) = 5.0;
  logits(1, 0) = 1.0;
  const std::vector<int> preds = ArgmaxRows(logits);
  EXPECT_EQ(preds[0], 2);
  EXPECT_EQ(preds[1], 0);
}

}  // namespace
}  // namespace ctfl
