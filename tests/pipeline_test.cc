#include "ctfl/core/pipeline.h"

#include <numeric>

#include <gtest/gtest.h>

#include "ctfl/data/gen/synthetic.h"
#include "ctfl/fl/partition.h"

namespace ctfl {
namespace {

SyntheticSpec TwoRuleSpec() {
  SyntheticSpec spec;
  spec.schema = std::make_shared<FeatureSchema>(
      std::vector<FeatureSpec>{
          FeatureSchema::Continuous("x", 0, 1),
          FeatureSchema::Continuous("y", 0, 1),
      },
      "neg", "pos");
  spec.samplers = {
      FeatureSampler{FeatureSampler::Kind::kUniform, 0, 0, {}},
      FeatureSampler{FeatureSampler::Kind::kUniform, 0, 0, {}}};
  spec.rules = {{{{0, GtPredicate::Op::kGt, 0.5}}, 1, 1.0},
                {{{0, GtPredicate::Op::kLt, 0.5}}, 0, 1.0}};
  return spec;
}

CtflConfig FastConfig() {
  CtflConfig config;
  config.federated = false;
  config.central.epochs = 15;
  config.central.learning_rate = 0.05;
  config.net.logic_layers = {{12, 12}};
  config.net.seed = 3;
  config.tracer.tau_w = 0.85;
  return config;
}

TEST(PipelineTest, EndToEndProducesScoresForAllParticipants) {
  Rng rng(1);
  const SyntheticSpec spec = TwoRuleSpec();
  const Dataset all = GenerateSynthetic(spec, 800, rng);
  const Dataset test = GenerateSynthetic(spec, 200, rng);
  Rng prng(2);
  const Federation fed =
      MakeFederation(PartitionSkewSample(all, 5, 0.8, prng));

  const CtflReport report = RunCtfl(fed, test, FastConfig()).value();
  EXPECT_EQ(report.micro_scores.size(), 5u);
  EXPECT_EQ(report.macro_scores.size(), 5u);
  EXPECT_GT(report.test_accuracy, 0.8);
  for (double s : report.micro_scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
  // Group rationality over matched tests.
  const double micro_total = std::accumulate(
      report.micro_scores.begin(), report.micro_scores.end(), 0.0);
  EXPECT_NEAR(micro_total, report.trace.matched_accuracy, 1e-9);
  EXPECT_LE(report.trace.matched_accuracy,
            report.trace.global_accuracy + 1e-12);
}

TEST(PipelineTest, FederatedPathAlsoWorks) {
  Rng rng(3);
  const SyntheticSpec spec = TwoRuleSpec();
  const Dataset all = GenerateSynthetic(spec, 600, rng);
  const Dataset test = GenerateSynthetic(spec, 150, rng);
  Rng prng(4);
  const Federation fed = MakeFederation(PartitionUniform(all, 3, prng));

  CtflConfig config = FastConfig();
  config.federated = true;
  config.fedavg.rounds = 3;
  config.fedavg.local_epochs = 3;
  config.fedavg.local.learning_rate = 0.05;
  const CtflReport report = RunCtfl(fed, test, config).value();
  EXPECT_GT(report.test_accuracy, 0.75);

  // RunCtfl must populate per-round telemetry on the federated path.
  const telemetry::RunTelemetry& run = report.telemetry;
  ASSERT_EQ(run.rounds.size(), 3u);
  EXPECT_TRUE(run.epochs.empty());
  double round_total = 0.0;
  for (size_t r = 0; r < run.rounds.size(); ++r) {
    EXPECT_EQ(run.rounds[r].round, static_cast<int>(r));
    EXPECT_GE(run.rounds[r].seconds, 0.0);
    EXPECT_EQ(run.rounds[r].clients_trained, 3);
    round_total += run.rounds[r].seconds;
  }
  // Round laps tile the training phase.
  EXPECT_LE(round_total, run.train_seconds + 1e-3);
  EXPECT_GT(run.grafting_steps, 0);
}

// Regression: a failed TrainFederated used to be swallowed (the pipeline
// kept scoring a half-trained model); the Status must surface through
// RunCtfl instead.
TEST(PipelineTest, FederatedTrainingFailurePropagatesStatus) {
  Rng rng(5);
  const SyntheticSpec spec = TwoRuleSpec();
  const Dataset all = GenerateSynthetic(spec, 200, rng);
  const Dataset test = GenerateSynthetic(spec, 60, rng);
  Rng prng(6);
  const Federation fed = MakeFederation(PartitionUniform(all, 3, prng));

  CtflConfig config = FastConfig();
  config.federated = true;
  config.fedavg.rounds = 2;
  config.fedavg.retry_budget = -1;  // malformed: TrainFederated rejects it
  const Result<CtflReport> report = RunCtfl(fed, test, config);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(report.status().ToString().find("retry_budget"),
            std::string::npos)
      << report.status();
}

TEST(PipelineTest, EmptyFederationIsRejectedNotDereferenced) {
  Rng rng(7);
  const Dataset test = GenerateSynthetic(TwoRuleSpec(), 60, rng);
  const Result<CtflReport> report = RunCtfl(Federation{}, test, FastConfig());
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(PipelineTest, RunCtflPopulatesTelemetryCentral) {
  Rng rng(9);
  const SyntheticSpec spec = TwoRuleSpec();
  const Dataset all = GenerateSynthetic(spec, 400, rng);
  const Dataset test = GenerateSynthetic(spec, 100, rng);
  Rng prng(10);
  const Federation fed = MakeFederation(PartitionUniform(all, 3, prng));

  const CtflConfig config = FastConfig();
  const CtflReport report = RunCtfl(fed, test, config).value();
  const telemetry::RunTelemetry& run = report.telemetry;

  // Central path: per-epoch stats instead of rounds.
  EXPECT_TRUE(run.rounds.empty());
  ASSERT_EQ(run.epochs.size(),
            static_cast<size_t>(config.central.epochs));
  for (const telemetry::EpochTelemetry& epoch : run.epochs) {
    EXPECT_GE(epoch.seconds, 0.0);
    EXPECT_GE(epoch.loss, 0.0);
  }
  EXPECT_GT(run.grafting_steps, 0);
  EXPECT_GT(run.train_accuracy, 0.5);

  // Phase timings mirror the report's headline numbers.
  EXPECT_DOUBLE_EQ(run.train_seconds, report.train_seconds);
  EXPECT_DOUBLE_EQ(run.trace_seconds, report.trace_seconds);
  EXPECT_GE(run.allocate_seconds, 0.0);

  // Rule stats partition the model's rule coordinates.
  EXPECT_EQ(run.rules_total, report.model.num_rules());
  EXPECT_EQ(run.rules_kept + run.rules_pruned, run.rules_total);
  EXPECT_GT(run.rules_kept, 0);

  // Tracer stats: keys exist, every related hit came from a tau_w check,
  // and the uncovered count matches the trace.
  EXPECT_GT(run.trace_keys, 0);
  EXPECT_GE(run.tau_w_checks, run.related_records);
  EXPECT_GT(run.related_records, 0);
  EXPECT_EQ(run.trace_keys, report.trace.num_keys);
  EXPECT_EQ(run.uncovered_tests,
            static_cast<int64_t>(report.trace.uncovered_tests));
  EXPECT_NE(run.Summary().find("trace"), std::string::npos);
}

TEST(PipelineTest, SchemeAdapterMatchesPipeline) {
  Rng rng(5);
  const SyntheticSpec spec = TwoRuleSpec();
  const Dataset all = GenerateSynthetic(spec, 600, rng);
  const Dataset test = GenerateSynthetic(spec, 150, rng);
  Rng prng(6);
  const Federation fed = MakeFederation(PartitionUniform(all, 4, prng));

  const CtflReport direct = RunCtfl(fed, test, FastConfig()).value();

  CtflScheme micro(&fed, &test, FastConfig(), CtflScheme::Variant::kMicro);
  // The utility is only consulted for the participant count.
  RetrainUtility::Config ucfg;
  ucfg.train.epochs = 1;
  RetrainUtility utility(&fed, &test, ucfg);
  const ContributionResult result = micro.Compute(utility).value();
  EXPECT_EQ(result.scheme, "CTFL-micro");
  ASSERT_EQ(result.scores.size(), direct.micro_scores.size());
  for (size_t p = 0; p < result.scores.size(); ++p) {
    EXPECT_NEAR(result.scores[p], direct.micro_scores[p], 1e-9);
  }
  EXPECT_EQ(result.coalitions_evaluated, 1);
  ASSERT_NE(micro.last_report(), nullptr);
}

TEST(PipelineTest, SchemeAdapterRejectsMismatchedUtility) {
  Rng rng(7);
  const SyntheticSpec spec = TwoRuleSpec();
  const Dataset all = GenerateSynthetic(spec, 100, rng);
  const Dataset test = GenerateSynthetic(spec, 50, rng);
  Rng prng(8);
  const Federation fed = MakeFederation(PartitionUniform(all, 2, prng));

  CtflScheme micro(&fed, &test, FastConfig(), CtflScheme::Variant::kMicro);
  TabularUtility wrong(3, std::vector<double>(8, 0.0));
  EXPECT_FALSE(micro.Compute(wrong).ok());
}

}  // namespace
}  // namespace ctfl
