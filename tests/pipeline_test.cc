#include "ctfl/core/pipeline.h"

#include <numeric>

#include <gtest/gtest.h>

#include "ctfl/data/gen/synthetic.h"
#include "ctfl/fl/partition.h"

namespace ctfl {
namespace {

SyntheticSpec TwoRuleSpec() {
  SyntheticSpec spec;
  spec.schema = std::make_shared<FeatureSchema>(
      std::vector<FeatureSpec>{
          FeatureSchema::Continuous("x", 0, 1),
          FeatureSchema::Continuous("y", 0, 1),
      },
      "neg", "pos");
  spec.samplers = {
      FeatureSampler{FeatureSampler::Kind::kUniform, 0, 0, {}},
      FeatureSampler{FeatureSampler::Kind::kUniform, 0, 0, {}}};
  spec.rules = {{{{0, GtPredicate::Op::kGt, 0.5}}, 1, 1.0},
                {{{0, GtPredicate::Op::kLt, 0.5}}, 0, 1.0}};
  return spec;
}

CtflConfig FastConfig() {
  CtflConfig config;
  config.federated = false;
  config.central.epochs = 15;
  config.central.learning_rate = 0.05;
  config.net.logic_layers = {{12, 12}};
  config.net.seed = 3;
  config.tracer.tau_w = 0.85;
  return config;
}

TEST(PipelineTest, EndToEndProducesScoresForAllParticipants) {
  Rng rng(1);
  const SyntheticSpec spec = TwoRuleSpec();
  const Dataset all = GenerateSynthetic(spec, 800, rng);
  const Dataset test = GenerateSynthetic(spec, 200, rng);
  Rng prng(2);
  const Federation fed =
      MakeFederation(PartitionSkewSample(all, 5, 0.8, prng));

  const CtflReport report = RunCtfl(fed, test, FastConfig());
  EXPECT_EQ(report.micro_scores.size(), 5u);
  EXPECT_EQ(report.macro_scores.size(), 5u);
  EXPECT_GT(report.test_accuracy, 0.8);
  for (double s : report.micro_scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
  // Group rationality over matched tests.
  const double micro_total = std::accumulate(
      report.micro_scores.begin(), report.micro_scores.end(), 0.0);
  EXPECT_NEAR(micro_total, report.trace.matched_accuracy, 1e-9);
  EXPECT_LE(report.trace.matched_accuracy,
            report.trace.global_accuracy + 1e-12);
}

TEST(PipelineTest, FederatedPathAlsoWorks) {
  Rng rng(3);
  const SyntheticSpec spec = TwoRuleSpec();
  const Dataset all = GenerateSynthetic(spec, 600, rng);
  const Dataset test = GenerateSynthetic(spec, 150, rng);
  Rng prng(4);
  const Federation fed = MakeFederation(PartitionUniform(all, 3, prng));

  CtflConfig config = FastConfig();
  config.federated = true;
  config.fedavg.rounds = 3;
  config.fedavg.local_epochs = 3;
  config.fedavg.local.learning_rate = 0.05;
  const CtflReport report = RunCtfl(fed, test, config);
  EXPECT_GT(report.test_accuracy, 0.75);
}

TEST(PipelineTest, SchemeAdapterMatchesPipeline) {
  Rng rng(5);
  const SyntheticSpec spec = TwoRuleSpec();
  const Dataset all = GenerateSynthetic(spec, 600, rng);
  const Dataset test = GenerateSynthetic(spec, 150, rng);
  Rng prng(6);
  const Federation fed = MakeFederation(PartitionUniform(all, 4, prng));

  const CtflReport direct = RunCtfl(fed, test, FastConfig());

  CtflScheme micro(&fed, &test, FastConfig(), CtflScheme::Variant::kMicro);
  // The utility is only consulted for the participant count.
  RetrainUtility::Config ucfg;
  ucfg.train.epochs = 1;
  RetrainUtility utility(&fed, &test, ucfg);
  const ContributionResult result = micro.Compute(utility).value();
  EXPECT_EQ(result.scheme, "CTFL-micro");
  ASSERT_EQ(result.scores.size(), direct.micro_scores.size());
  for (size_t p = 0; p < result.scores.size(); ++p) {
    EXPECT_NEAR(result.scores[p], direct.micro_scores[p], 1e-9);
  }
  EXPECT_EQ(result.coalitions_evaluated, 1);
  ASSERT_NE(micro.last_report(), nullptr);
}

TEST(PipelineTest, SchemeAdapterRejectsMismatchedUtility) {
  Rng rng(7);
  const SyntheticSpec spec = TwoRuleSpec();
  const Dataset all = GenerateSynthetic(spec, 100, rng);
  const Dataset test = GenerateSynthetic(spec, 50, rng);
  Rng prng(8);
  const Federation fed = MakeFederation(PartitionUniform(all, 2, prng));

  CtflScheme micro(&fed, &test, FastConfig(), CtflScheme::Variant::kMicro);
  TabularUtility wrong(3, std::vector<double>(8, 0.0));
  EXPECT_FALSE(micro.Compute(wrong).ok());
}

}  // namespace
}  // namespace ctfl
