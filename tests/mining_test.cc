#include <algorithm>

#include <gtest/gtest.h>

#include "ctfl/mining/apriori.h"
#include "ctfl/mining/max_miner.h"
#include "ctfl/util/rng.h"

namespace ctfl {
namespace {

Bitset MakeTransaction(size_t num_items, std::vector<int> items) {
  Bitset t(num_items);
  for (int i : items) t.Set(i);
  return t;
}

// Classic 5-transaction example over items {0..4}.
std::vector<Bitset> ClassicDb() {
  return {
      MakeTransaction(5, {0, 1, 4}),
      MakeTransaction(5, {1, 3}),
      MakeTransaction(5, {1, 2}),
      MakeTransaction(5, {0, 1, 3}),
      MakeTransaction(5, {0, 2}),
  };
}

TEST(VerticalDbTest, SupportCounting) {
  const VerticalDb db(ClassicDb(), 5);
  EXPECT_EQ(db.num_transactions(), 5u);
  EXPECT_EQ(db.Support(1), 4u);
  EXPECT_EQ(db.Support(0), 3u);
  EXPECT_EQ(db.Support(Itemset{0, 1}), 2u);
  EXPECT_EQ(db.Support(Itemset{1, 3}), 2u);
  EXPECT_EQ(db.Support(Itemset{0, 1, 4}), 1u);
  EXPECT_EQ(db.Support(Itemset{}), 5u);
}

TEST(IsSubsetOfTest, Basics) {
  EXPECT_TRUE(IsSubsetOf({1, 3}, {0, 1, 3, 4}));
  EXPECT_FALSE(IsSubsetOf({1, 5}, {0, 1, 3, 4}));
  EXPECT_TRUE(IsSubsetOf({}, {0}));
}

TEST(AprioriTest, ClassicExampleMinSupport2) {
  const VerticalDb db(ClassicDb(), 5);
  std::vector<Itemset> frequent = AprioriFrequent(db, 2);
  std::sort(frequent.begin(), frequent.end());
  const std::vector<Itemset> expected = {
      {0}, {0, 1}, {1}, {1, 2}, {1, 3}, {2}, {3}, {4}};
  // {4} has support 1 -> should be absent. Recompute expectations:
  // items: 0:3, 1:4, 2:2, 3:2, 4:1. Pairs with support>=2: {0,1}:2,
  // {1,2}:1? t3 = {1,2} only -> support 1. {1,3}:2.
  const std::vector<Itemset> truth = {{0}, {0, 1}, {1}, {1, 3}, {2}, {3}};
  (void)expected;
  EXPECT_EQ(frequent, truth);
}

TEST(AprioriTest, MaxLenCapsItemsets) {
  const VerticalDb db(ClassicDb(), 5);
  const std::vector<Itemset> frequent = AprioriFrequent(db, 1, /*max_len=*/1);
  for (const Itemset& s : frequent) EXPECT_EQ(s.size(), 1u);
}

TEST(MaximalOnlyTest, RemovesSubsumed) {
  std::vector<Itemset> sets = {{0}, {0, 1}, {1}, {2}, {0, 1, 2}};
  const std::vector<Itemset> maximal = MaximalOnly(sets);
  ASSERT_EQ(maximal.size(), 1u);
  EXPECT_EQ(maximal[0], (Itemset{0, 1, 2}));
}

TEST(MaxMinerTest, ClassicExample) {
  const VerticalDb db(ClassicDb(), 5);
  std::vector<Itemset> maximal = MaxMinerMaximal(db, 2);
  std::sort(maximal.begin(), maximal.end());
  // Frequent: {0},{1},{2},{3},{0,1},{1,3}. Maximal: {0,1},{1,3},{2}.
  const std::vector<Itemset> truth = {{0, 1}, {1, 3}, {2}};
  EXPECT_EQ(maximal, truth);
}

TEST(MaxMinerTest, LookAheadCollapsesUniformDb) {
  // All transactions identical: the single maximal set is the whole
  // itemset, found via the look-ahead in one step.
  std::vector<Bitset> transactions(6, MakeTransaction(8, {1, 3, 5, 7}));
  const VerticalDb db(transactions, 8);
  const std::vector<Itemset> maximal = MaxMinerMaximal(db, 3);
  ASSERT_EQ(maximal.size(), 1u);
  EXPECT_EQ(maximal[0], (Itemset{1, 3, 5, 7}));
}

TEST(MaxMinerTest, EmptyWhenNothingFrequent) {
  std::vector<Bitset> transactions = {MakeTransaction(4, {0}),
                                      MakeTransaction(4, {1})};
  const VerticalDb db(transactions, 4);
  EXPECT_TRUE(MaxMinerMaximal(db, 2).empty());
}

// Property: Max-Miner equals the maximal filter of Apriori on random DBs.
class MaxMinerEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MaxMinerEquivalence, AgreesWithAprioriMaximal) {
  Rng rng(GetParam());
  const size_t num_items = 10 + rng.UniformInt(6);
  const size_t num_transactions = 30 + rng.UniformInt(40);
  std::vector<Bitset> transactions;
  for (size_t t = 0; t < num_transactions; ++t) {
    Bitset row(num_items);
    for (size_t i = 0; i < num_items; ++i) {
      if (rng.Bernoulli(0.3)) row.Set(i);
    }
    transactions.push_back(std::move(row));
  }
  const VerticalDb db(transactions, num_items);
  const size_t min_support = 2 + rng.UniformInt(5);

  std::vector<Itemset> expected =
      MaximalOnly(AprioriFrequent(db, min_support));
  std::vector<Itemset> actual = MaxMinerMaximal(db, min_support);
  std::sort(expected.begin(), expected.end());
  std::sort(actual.begin(), actual.end());
  EXPECT_EQ(actual, expected) << "items=" << num_items
                              << " minsup=" << min_support;
}

INSTANTIATE_TEST_SUITE_P(RandomDbs, MaxMinerEquivalence,
                         ::testing::Range<uint64_t>(0, 12));

}  // namespace
}  // namespace ctfl
