#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "ctfl/valuation/individual.h"
#include "ctfl/valuation/least_core.h"
#include "ctfl/valuation/leave_one_out.h"
#include "ctfl/valuation/shapley.h"

namespace ctfl {
namespace {

// Additive game: v(S) = sum of per-player values. Shapley = the values.
TabularUtility AdditiveGame(const std::vector<double>& values) {
  const int n = static_cast<int>(values.size());
  std::vector<double> table(1ULL << n, 0.0);
  for (uint64_t mask = 0; mask < table.size(); ++mask) {
    for (int i = 0; i < n; ++i) {
      if (mask & (1ULL << i)) table[mask] += values[i];
    }
  }
  return TabularUtility(n, std::move(table));
}

// Paper Table II game: A/B substitutable, C complementary.
TabularUtility PaperTableIIGame() {
  // masks: bit0=A, bit1=B, bit2=C.
  std::vector<double> v(8);
  v[0b000] = 0.50;
  v[0b001] = 0.80;  // A
  v[0b010] = 0.80;  // B
  v[0b100] = 0.65;  // C
  v[0b011] = 0.80;  // AB
  v[0b101] = 0.90;  // AC
  v[0b110] = 0.90;  // BC
  v[0b111] = 0.90;  // ABC
  return TabularUtility(3, std::move(v));
}

TEST(RankByScoreTest, DescendingStable) {
  const std::vector<int> order = RankByScore({0.1, 0.5, 0.5, 0.2});
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 0}));
}

TEST(IndividualTest, ScoresAreSingletonValues) {
  TabularUtility game = PaperTableIIGame();
  IndividualScheme scheme;
  const ContributionResult result = scheme.Compute(game).value();
  EXPECT_EQ(result.scheme, "Individual");
  EXPECT_DOUBLE_EQ(result.scores[0], 0.80);
  EXPECT_DOUBLE_EQ(result.scores[1], 0.80);
  EXPECT_DOUBLE_EQ(result.scores[2], 0.65);
  EXPECT_EQ(result.coalitions_evaluated, 3);
}

TEST(LeaveOneOutTest, SubstitutableParticipantsGetZero) {
  TabularUtility game = PaperTableIIGame();
  LeaveOneOutScheme scheme;
  const ContributionResult result = scheme.Compute(game).value();
  // v(N) = 0.9; removing A: v(BC) = 0.9 -> 0 (paper's criticism of LOO).
  EXPECT_NEAR(result.scores[0], 0.0, 1e-12);
  EXPECT_NEAR(result.scores[1], 0.0, 1e-12);
  EXPECT_NEAR(result.scores[2], 0.9 - 0.8, 1e-12);
}

TEST(ShapleyExactTest, PaperTableIIValues) {
  TabularUtility game = PaperTableIIGame();
  const ContributionResult result =
      ShapleyValueScheme::ComputeExact(game).value();
  // Hand computation on Table II's utilities: phi(A) = phi(B) =
  // (2*0.30 + 0 + 0.25 + 0)/6 = 0.14167 and phi(C) =
  // (2*0.15 + 0.10 + 0.10 + 2*0.10)/6 = 0.11667. (The paper's in-text
  // Example II.1 numbers (11.7, 11.7, 16.6) satisfy efficiency but do not
  // follow from its own Table II; see EXPERIMENTS.md.)
  EXPECT_NEAR(result.scores[0], 0.85 / 6, 1e-9);
  EXPECT_NEAR(result.scores[1], 0.85 / 6, 1e-9);
  EXPECT_NEAR(result.scores[2], 0.70 / 6, 1e-9);
  // Efficiency: scores sum to v(N) - v(empty).
  const double total =
      std::accumulate(result.scores.begin(), result.scores.end(), 0.0);
  EXPECT_NEAR(total, 0.9 - 0.5, 1e-9);
}

TEST(ShapleyExactTest, AdditiveGameRecoversValues) {
  TabularUtility game = AdditiveGame({0.1, 0.3, 0.05, 0.2});
  const ContributionResult result =
      ShapleyValueScheme::ComputeExact(game).value();
  EXPECT_NEAR(result.scores[0], 0.1, 1e-9);
  EXPECT_NEAR(result.scores[1], 0.3, 1e-9);
  EXPECT_NEAR(result.scores[2], 0.05, 1e-9);
  EXPECT_NEAR(result.scores[3], 0.2, 1e-9);
}

TEST(ShapleyMonteCarloTest, ApproximatesExactOnRandomGame) {
  Rng rng(5);
  const int n = 5;
  std::vector<double> table(1ULL << n);
  // Monotone submodular-ish random game.
  for (uint64_t mask = 0; mask < table.size(); ++mask) {
    table[mask] = std::sqrt(static_cast<double>(std::popcount(mask))) +
                  0.05 * rng.Uniform();
  }
  table[0] = 0.0;
  TabularUtility exact_game(n, table);
  const ContributionResult exact =
      ShapleyValueScheme::ComputeExact(exact_game).value();

  TabularUtility mc_game(n, table);
  ShapleyValueScheme::Options options;
  options.budget_multiplier = 30.0;  // plenty of permutations
  options.truncation_tol = 0.0;      // no truncation for this check
  ShapleyValueScheme scheme(options);
  const ContributionResult approx = scheme.Compute(mc_game).value();
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(approx.scores[i], exact.scores[i], 0.08) << "player " << i;
  }
}

TEST(ShapleyMonteCarloTest, SymmetricPlayersGetSimilarScores) {
  // Symmetric game: v(S) = |S|^2 / 100.
  const int n = 6;
  std::vector<double> table(1ULL << n);
  for (uint64_t mask = 0; mask < table.size(); ++mask) {
    const int k = std::popcount(mask);
    table[mask] = k * k / 100.0;
  }
  TabularUtility game(n, table);
  ShapleyValueScheme::Options options;
  options.budget_multiplier = 20.0;
  options.truncation_tol = 0.0;
  ShapleyValueScheme scheme(options);
  const ContributionResult result = scheme.Compute(game).value();
  for (int i = 1; i < n; ++i) {
    EXPECT_NEAR(result.scores[i], result.scores[0], 0.03);
  }
}

TEST(ShapleyMonteCarloTest, TruncationReducesEvaluations) {
  // Game that saturates immediately: any non-empty coalition has value 1.
  const int n = 8;
  std::vector<double> table(1ULL << n, 1.0);
  table[0] = 0.0;
  TabularUtility with_trunc(n, table);
  ShapleyValueScheme::Options opt_trunc;
  opt_trunc.truncation_tol = 1e-6;
  opt_trunc.seed = 5;
  const ContributionResult truncated =
      ShapleyValueScheme(opt_trunc).Compute(with_trunc).value();

  TabularUtility without_trunc(n, table);
  ShapleyValueScheme::Options opt_full;
  opt_full.truncation_tol = 0.0;
  opt_full.seed = 5;
  const ContributionResult full =
      ShapleyValueScheme(opt_full).Compute(without_trunc).value();
  EXPECT_LT(truncated.coalitions_evaluated, full.coalitions_evaluated);
}

TEST(LeastCoreTest, GloveGameSolution) {
  // Glove game: players {0,1} hold left gloves, {2} right. v(S) = 1 if S
  // contains a left and the right, else 0. Core: phi = (0, 0, 1).
  std::vector<double> v(8, 0.0);
  v[0b101] = 1.0;
  v[0b110] = 1.0;
  v[0b111] = 1.0;
  TabularUtility game(3, v);
  LeastCoreScheme::Options options;
  options.exact_limit = 8;
  LeastCoreScheme scheme(options);
  const ContributionResult result = scheme.Compute(game).value();
  const double total =
      std::accumulate(result.scores.begin(), result.scores.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-6);
  // The core gives (almost) everything to the scarce right glove.
  EXPECT_GT(result.scores[2], 0.6);
}

TEST(LeastCoreTest, EfficiencyHoldsOnSampledConstraints) {
  TabularUtility game = PaperTableIIGame();
  LeastCoreScheme::Options options;
  options.budget_multiplier = 2.0;
  LeastCoreScheme scheme(options);
  const ContributionResult result = scheme.Compute(game).value();
  const double total =
      std::accumulate(result.scores.begin(), result.scores.end(), 0.0);
  EXPECT_NEAR(total, 0.9, 1e-6);
}

TEST(LeastCoreTest, SymmetricGameGivesEqualScores) {
  const int n = 4;
  std::vector<double> table(1ULL << n);
  for (uint64_t mask = 0; mask < table.size(); ++mask) {
    table[mask] = static_cast<double>(std::popcount(mask)) / n;
  }
  TabularUtility game(n, table);
  LeastCoreScheme::Options options;
  options.exact_limit = 16;
  LeastCoreScheme scheme(options);
  const ContributionResult result = scheme.Compute(game).value();
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(result.scores[i], 0.25, 1e-6);
  }
}

}  // namespace
}  // namespace ctfl
