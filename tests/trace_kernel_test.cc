#include "ctfl/kernel/trace_kernel.h"

#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "ctfl/core/pipeline.h"
#include "ctfl/core/tracer.h"
#include "ctfl/data/gen/synthetic.h"
#include "ctfl/fl/partition.h"
#include "ctfl/nn/trainer.h"
#include "ctfl/store/query_engine.h"
#include "ctfl/store/snapshot.h"
#include "ctfl/util/rng.h"

namespace ctfl {
namespace {

// ---------------------------------------------------------------------------
// Kernel unit tests: Match against the brute-force scalar loop on random
// bit-matrices, including trailing-block and candidate-mask edges.
// ---------------------------------------------------------------------------

struct RandomBucket {
  std::vector<Bitset> storage;
  std::vector<const Bitset*> refs;
};

RandomBucket MakeRandomBucket(size_t num_records, int num_rules,
                              double density, uint64_t seed) {
  RandomBucket bucket;
  Rng rng(seed);
  bucket.storage.reserve(num_records);
  for (size_t r = 0; r < num_records; ++r) {
    Bitset b(num_rules);
    for (int j = 0; j < num_rules; ++j) {
      if (rng.Bernoulli(density)) b.Set(j);
    }
    bucket.storage.push_back(std::move(b));
  }
  for (const Bitset& b : bucket.storage) bucket.refs.push_back(&b);
  return bucket;
}

std::vector<std::pair<int, double>> MakeSupport(int num_rules, size_t count,
                                                uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<int, double>> supp;
  for (int j = 0; j < num_rules && supp.size() < count; ++j) {
    if (rng.Bernoulli(static_cast<double>(count) / num_rules)) {
      supp.emplace_back(j, 0.05 + rng.Uniform());
    }
  }
  if (supp.empty()) supp.emplace_back(0, 0.5);
  return supp;
}

// The scalar reference decision: ascending-order accumulation, then the
// exact comparison the tracer (kGeThreshold) or the Max-Miner prefilter
// (kPlusEpsGe) uses.
bool ScalarRelated(const Bitset& act,
                   const std::vector<std::pair<int, double>>& supp,
                   double threshold, TraceKernel::Cmp cmp, double eps) {
  double overlap = 0.0;
  for (const auto& [rule, weight] : supp) {
    if (act.Test(static_cast<size_t>(rule))) overlap += weight;
  }
  if (cmp == TraceKernel::Cmp::kGeThreshold) return !(overlap < threshold);
  return overlap + eps >= threshold;
}

TEST(TraceKernelTest, MatchMatchesScalarOnRandomRecords) {
  const int num_rules = 48;
  for (uint64_t seed = 0; seed < 6; ++seed) {
    // 67 records: a full block plus a 3-lane trailing block.
    const RandomBucket bucket = MakeRandomBucket(67, num_rules, 0.35, seed);
    const TraceKernel kernel(bucket.refs, num_rules);
    ASSERT_EQ(kernel.num_records(), 67u);
    ASSERT_EQ(kernel.num_blocks(), 2u);

    const auto supp = MakeSupport(num_rules, 12, seed + 100);
    double weight_sum = 0.0;
    for (const auto& [rule, weight] : supp) weight_sum += weight;
    for (double tau : {0.3, 0.7, 1.0}) {
      const double threshold = tau * weight_sum - 1e-9;
      const TraceKernel::Support support =
          TraceKernel::Prepare(supp, threshold);
      std::vector<uint64_t> related(kernel.num_blocks(), ~0ULL);
      TraceKernelStats stats;
      const size_t matched =
          kernel.Match(support, nullptr, related.data(), &stats);

      size_t expected = 0;
      for (size_t r = 0; r < bucket.storage.size(); ++r) {
        const bool want =
            ScalarRelated(bucket.storage[r], supp, threshold,
                          TraceKernel::Cmp::kGeThreshold, 0.0);
        const bool got = (related[r / 64] >> (r % 64)) & 1;
        EXPECT_EQ(got, want) << "seed " << seed << " tau " << tau
                             << " record " << r;
        if (want) ++expected;
      }
      EXPECT_EQ(matched, expected);
      // Lanes past the trailing record must stay clear.
      EXPECT_EQ(related[1] >> 3, 0ULL);
      EXPECT_LE(stats.records_scanned, 67);
    }
  }
}

TEST(TraceKernelTest, CandidateMaskRestrictsAndPrunesBlocks) {
  const int num_rules = 32;
  const RandomBucket bucket = MakeRandomBucket(130, num_rules, 0.4, 11);
  const TraceKernel kernel(bucket.refs, num_rules);
  ASSERT_EQ(kernel.num_blocks(), 3u);

  const auto supp = MakeSupport(num_rules, 8, 12);
  double weight_sum = 0.0;
  for (const auto& [rule, weight] : supp) weight_sum += weight;
  const double threshold = 0.5 * weight_sum - 1e-9;
  const TraceKernel::Support support = TraceKernel::Prepare(supp, threshold);

  // Candidates only in the middle block.
  std::vector<uint64_t> cmask(kernel.num_blocks(), 0);
  cmask[1] = 0x00FF00FF00FF00FFULL;
  std::vector<uint64_t> related(kernel.num_blocks(), ~0ULL);
  TraceKernelStats stats;
  kernel.Match(support, cmask.data(), related.data(), &stats);

  EXPECT_EQ(related[0], 0ULL);
  EXPECT_EQ(related[2], 0ULL);
  EXPECT_GE(stats.blocks_pruned, 2);  // blocks 0 and 2 skipped outright
  EXPECT_LE(stats.records_scanned, 32);
  for (size_t r = 64; r < 128; ++r) {
    const bool candidate = (cmask[1] >> (r - 64)) & 1;
    const bool want =
        candidate && ScalarRelated(bucket.storage[r], supp, threshold,
                                   TraceKernel::Cmp::kGeThreshold, 0.0);
    const bool got = (related[1] >> (r - 64)) & 1;
    EXPECT_EQ(got, want) << "record " << r;
  }
}

TEST(TraceKernelTest, PlusEpsGeModeMatchesScalarPrefilter) {
  const int num_rules = 24;
  const RandomBucket bucket = MakeRandomBucket(100, num_rules, 0.5, 21);
  const TraceKernel kernel(bucket.refs, num_rules);
  const auto supp = MakeSupport(num_rules, 6, 22);
  double weight_sum = 0.0;
  for (const auto& [rule, weight] : supp) weight_sum += weight;
  const double theta = 0.4 * weight_sum;
  const double eps = 1e-9;

  const TraceKernel::Support support = TraceKernel::Prepare(
      supp, theta, TraceKernel::Cmp::kPlusEpsGe, eps);
  std::vector<uint64_t> related(kernel.num_blocks(), 0);
  kernel.Match(support, nullptr, related.data(), nullptr);
  for (size_t r = 0; r < bucket.storage.size(); ++r) {
    const bool want = ScalarRelated(bucket.storage[r], supp, theta,
                                    TraceKernel::Cmp::kPlusEpsGe, eps);
    const bool got = (related[r / 64] >> (r % 64)) & 1;
    EXPECT_EQ(got, want) << "record " << r;
  }
}

TEST(TraceKernelTest, EmptyKernelAndEmptySupport) {
  const TraceKernel empty(std::vector<const Bitset*>{}, 16);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.num_blocks(), 0u);
  const TraceKernel::Support support =
      TraceKernel::Prepare({{0, 1.0}}, 0.5);
  TraceKernelStats stats;
  EXPECT_EQ(empty.Match(support, nullptr, nullptr, &stats), 0u);

  // Empty support with threshold <= 0: every record matches (the scalar
  // comparison !(0 < threshold) accepts).
  const RandomBucket bucket = MakeRandomBucket(70, 16, 0.3, 31);
  const TraceKernel kernel(bucket.refs, 16);
  const TraceKernel::Support zero = TraceKernel::Prepare({}, -1e-9);
  std::vector<uint64_t> related(kernel.num_blocks(), 0);
  EXPECT_EQ(kernel.Match(zero, nullptr, related.data(), nullptr), 70u);
}

TEST(TraceKernelTest, ParseAndName) {
  EXPECT_EQ(ParseTraceKernelKind("legacy").value(), TraceKernelKind::kLegacy);
  EXPECT_EQ(ParseTraceKernelKind("blocked").value(),
            TraceKernelKind::kBlocked);
  EXPECT_FALSE(ParseTraceKernelKind("simd").ok());
  EXPECT_STREQ(TraceKernelKindName(TraceKernelKind::kLegacy), "legacy");
  EXPECT_STREQ(TraceKernelKindName(TraceKernelKind::kBlocked), "blocked");
}

TEST(TraceKernelTest, TraceIsaParseAndName) {
  EXPECT_EQ(ParseTraceIsa("scalar").value(), TraceIsa::kScalar);
  EXPECT_EQ(ParseTraceIsa("neon").value(), TraceIsa::kNeon);
  EXPECT_EQ(ParseTraceIsa("avx2").value(), TraceIsa::kAvx2);
  EXPECT_EQ(ParseTraceIsa("avx512").value(), TraceIsa::kAvx512);
  // "auto" is a CLI sentinel (keep the process-wide dispatch), not a tier.
  EXPECT_FALSE(ParseTraceIsa("auto").ok());
  EXPECT_FALSE(ParseTraceIsa("sse2").ok());
  for (const TraceIsa isa : AvailableTraceIsas()) {
    EXPECT_EQ(ParseTraceIsa(TraceIsaName(isa)).value(), isa);
    EXPECT_TRUE(TraceIsaAvailable(isa));
  }
  // The scalar tier exists everywhere and every list starts with it.
  const std::vector<TraceIsa> available = AvailableTraceIsas();
  ASSERT_FALSE(available.empty());
  EXPECT_EQ(available.front(), TraceIsa::kScalar);
  EXPECT_TRUE(TraceIsaAvailable(BestAvailableTraceIsa()));
}

// Every available SIMD tier at every thread count must reproduce the
// forced-scalar serial sweep cell-for-cell: same related words, same match
// count, same stats (the ordered stripe commit makes records_scanned /
// blocks_pruned / exact_fallbacks schedule-independent).
TEST(TraceKernelTest, IsaThreadsMatrixIsBitIdentical) {
  const int num_rules = 96;
  for (uint64_t seed = 0; seed < 3; ++seed) {
    // 1500 records: many blocks, so thread sharding gets real stripes.
    const RandomBucket bucket =
        MakeRandomBucket(1500, num_rules, 0.3, seed * 7 + 1);
    const TraceKernel kernel(bucket.refs, num_rules);
    const auto supp = MakeSupport(num_rules, 24, seed + 50);
    double weight_sum = 0.0;
    for (const auto& [rule, weight] : supp) weight_sum += weight;
    for (double tau : {0.4, 0.8}) {
      const double threshold = tau * weight_sum - 1e-9;
      const TraceKernel::Support support =
          TraceKernel::Prepare(supp, threshold);

      std::vector<uint64_t> baseline(kernel.num_blocks(), 0);
      TraceKernelStats base_stats;
      const size_t base_matched =
          kernel.Match(support, nullptr, baseline.data(), &base_stats,
                       {TraceIsa::kScalar, 1});

      for (const TraceIsa isa : AvailableTraceIsas()) {
        for (int threads : {1, 2, 8}) {
          std::vector<uint64_t> related(kernel.num_blocks(), ~0ULL);
          TraceKernelStats stats;
          const size_t matched = kernel.Match(
              support, nullptr, related.data(), &stats, {isa, threads});
          EXPECT_EQ(matched, base_matched)
              << TraceIsaName(isa) << " t" << threads << " seed " << seed
              << " tau " << tau;
          EXPECT_EQ(related, baseline)
              << TraceIsaName(isa) << " t" << threads << " seed " << seed
              << " tau " << tau;
          EXPECT_EQ(stats.records_scanned, base_stats.records_scanned)
              << TraceIsaName(isa) << " t" << threads;
          EXPECT_EQ(stats.blocks_pruned, base_stats.blocks_pruned)
              << TraceIsaName(isa) << " t" << threads;
          EXPECT_EQ(stats.exact_fallbacks, base_stats.exact_fallbacks)
              << TraceIsaName(isa) << " t" << threads;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Differential suite: blocked vs legacy must produce bit-identical
// TraceResults across the full configuration matrix —
// tau_w x dedup x Max-Miner x DP x threads.
// ---------------------------------------------------------------------------

struct DiffCase {
  double tau_w;
  bool use_dedup;
  bool use_max_miner;
  double dp_epsilon;
  int num_threads;
};

std::vector<DiffCase> FullMatrix() {
  std::vector<DiffCase> cases;
  for (double tau_w : {0.3, 0.7, 1.0}) {
    for (bool dedup : {false, true}) {
      for (bool max_miner : {false, true}) {
        for (double dp : {0.0, 2.0}) {
          for (int threads : {1, 8}) {
            cases.push_back({tau_w, dedup, max_miner, dp, threads});
          }
        }
      }
    }
  }
  return cases;
}

std::string CaseName(const ::testing::TestParamInfo<DiffCase>& info) {
  const DiffCase& c = info.param;
  std::string name = "tau" + std::to_string(static_cast<int>(c.tau_w * 10));
  name += c.use_dedup ? "_dedup" : "_nodedup";
  name += c.use_max_miner ? "_miner" : "_nominer";
  name += c.dp_epsilon > 0 ? "_dp" : "_nodp";
  name += "_t" + std::to_string(c.num_threads);
  return name;
}

class TraceKernelDifferentialTest
    : public ::testing::TestWithParam<DiffCase> {
 protected:
  static void SetUpTestSuite() {
    SyntheticSpec spec;
    spec.schema = std::make_shared<FeatureSchema>(
        std::vector<FeatureSpec>{
            FeatureSchema::Continuous("x", 0, 1),
            FeatureSchema::Discrete("d", {"p", "q", "r"}),
        },
        "neg", "pos");
    spec.samplers = {
        FeatureSampler{FeatureSampler::Kind::kUniform, 0, 0, {}},
        FeatureSampler{FeatureSampler::Kind::kCategorical, 0, 0, {}}};
    spec.rules = {{{{0, GtPredicate::Op::kGt, 0.6}}, 1, 1.0},
                  {{{0, GtPredicate::Op::kLt, 0.3}}, 0, 1.0},
                  {{{1, GtPredicate::Op::kEq, 2}}, 1, 0.5}};
    spec.label_noise = 0.05;
    Rng rng(606);
    const Dataset all = GenerateSynthetic(spec, 700, rng);
    Rng prng(607);
    federation_ = new Federation(
        MakeFederation(PartitionSkewLabel(all, 4, 0.8, prng)));
    test_ = new Dataset(GenerateSynthetic(spec, 180, rng));

    LogicalNetConfig config;
    config.logic_layers = {{16, 16}};
    config.seed = 13;
    net_ = new LogicalNet(spec.schema, config);
    TrainConfig tc;
    tc.epochs = 12;
    tc.learning_rate = 0.05;
    TrainGrafted(*net_, MergeFederation(*federation_), tc);
  }

  static void TearDownTestSuite() {
    delete net_;
    delete test_;
    delete federation_;
    net_ = nullptr;
    test_ = nullptr;
    federation_ = nullptr;
  }

  static Federation* federation_;
  static Dataset* test_;
  static LogicalNet* net_;
};

Federation* TraceKernelDifferentialTest::federation_ = nullptr;
Dataset* TraceKernelDifferentialTest::test_ = nullptr;
LogicalNet* TraceKernelDifferentialTest::net_ = nullptr;

// Everything except the blocked-only work counters must be *bit-identical*:
// EXPECT_EQ on doubles, no tolerance.
void ExpectBitIdentical(const TraceResult& blocked,
                        const TraceResult& legacy) {
  EXPECT_EQ(blocked.num_keys, legacy.num_keys);
  EXPECT_EQ(blocked.tau_w_checks, legacy.tau_w_checks);
  EXPECT_EQ(blocked.related_records, legacy.related_records);
  EXPECT_EQ(blocked.global_accuracy, legacy.global_accuracy);
  EXPECT_EQ(blocked.matched_accuracy, legacy.matched_accuracy);
  EXPECT_EQ(blocked.uncovered_tests, legacy.uncovered_tests);
  ASSERT_EQ(blocked.tests.size(), legacy.tests.size());
  for (size_t t = 0; t < legacy.tests.size(); ++t) {
    EXPECT_EQ(blocked.tests[t].predicted, legacy.tests[t].predicted);
    EXPECT_EQ(blocked.tests[t].correct, legacy.tests[t].correct);
    EXPECT_EQ(blocked.tests[t].support_size, legacy.tests[t].support_size);
    EXPECT_EQ(blocked.tests[t].related_count, legacy.tests[t].related_count)
        << "test " << t;
    EXPECT_EQ(blocked.tests[t].total_related, legacy.tests[t].total_related);
  }
  EXPECT_EQ(blocked.train_match_correct, legacy.train_match_correct);
  EXPECT_EQ(blocked.train_match_miss, legacy.train_match_miss);
  ASSERT_EQ(blocked.beneficial_rule_freq.size(),
            legacy.beneficial_rule_freq.size());
  for (size_t i = 0; i < legacy.beneficial_rule_freq.size(); ++i) {
    EXPECT_EQ(blocked.beneficial_rule_freq.data()[i],
              legacy.beneficial_rule_freq.data()[i])
        << "beneficial cell " << i;
    EXPECT_EQ(blocked.harmful_rule_freq.data()[i],
              legacy.harmful_rule_freq.data()[i])
        << "harmful cell " << i;
  }
  EXPECT_EQ(blocked.uncovered_rule_freq, legacy.uncovered_rule_freq);
  // The work counters are the one intentional difference: the blocked
  // kernel reports pruning; the legacy path reports zeros.
  EXPECT_EQ(legacy.records_scanned, 0);
  EXPECT_EQ(legacy.blocks_pruned, 0);
  EXPECT_LE(blocked.records_scanned, blocked.tau_w_checks);
}

TEST_P(TraceKernelDifferentialTest, BlockedMatchesLegacyBitIdentically) {
  const DiffCase& c = GetParam();
  TracerConfig config;
  config.tau_w = c.tau_w;
  config.use_dedup = c.use_dedup;
  config.use_max_miner = c.use_max_miner;
  config.dp_epsilon = c.dp_epsilon;
  config.num_threads = c.num_threads;

  TracerConfig legacy_config = config;
  legacy_config.kernel = TraceKernelKind::kLegacy;
  TracerConfig blocked_config = config;
  blocked_config.kernel = TraceKernelKind::kBlocked;

  // DP perturbation is seeded per participant (dp_seed + p), so the two
  // tracers draw identical randomized-response noise.
  const TraceResult legacy =
      ContributionTracer(net_, federation_, legacy_config).Trace(*test_);
  const TraceResult blocked =
      ContributionTracer(net_, federation_, blocked_config).Trace(*test_);
  ExpectBitIdentical(blocked, legacy);
}

INSTANTIATE_TEST_SUITE_P(Matrix, TraceKernelDifferentialTest,
                         ::testing::ValuesIn(FullMatrix()), CaseName);

// ---------------------------------------------------------------------------
// Query-engine leg: both kernel kinds must agree with each other and with
// the originating tracer on every stored test instance.
// ---------------------------------------------------------------------------

class TraceKernelQueryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticSpec spec;
    spec.schema = std::make_shared<FeatureSchema>(
        std::vector<FeatureSpec>{
            FeatureSchema::Continuous("x", 0, 1),
            FeatureSchema::Continuous("y", 0, 1),
        },
        "neg", "pos");
    spec.samplers = {
        FeatureSampler{FeatureSampler::Kind::kUniform, 0, 0, {}},
        FeatureSampler{FeatureSampler::Kind::kUniform, 0, 0, {}}};
    spec.rules = {{{{0, GtPredicate::Op::kGt, 0.5}}, 1, 1.0},
                  {{{0, GtPredicate::Op::kLt, 0.5}}, 0, 1.0}};
    Rng rng(71);
    const Dataset all = GenerateSynthetic(spec, 500, rng);
    Rng prng(72);
    Federation fed = MakeFederation(PartitionSkewSample(all, 4, 0.7, prng));
    Dataset test = GenerateSynthetic(spec, 140, rng);

    CtflConfig config;
    config.federated = false;
    config.central.epochs = 12;
    config.central.learning_rate = 0.05;
    config.net.logic_layers = {{10, 10}};
    config.net.seed = 7;
    config.tracer.tau_w = 0.85;
    config.bundle_out = ::testing::TempDir() + "/trace_kernel_query.ctflb";
    report_ = new CtflReport(RunCtfl(fed, test, config).value());
    ASSERT_TRUE(report_->bundle_status.ok()) << report_->bundle_status;
    engine_ = new store::QueryEngine(
        store::QueryEngine::Open(config.bundle_out).value());
    num_tests_ = test.size();
  }

  static void TearDownTestSuite() {
    delete engine_;
    delete report_;
    engine_ = nullptr;
    report_ = nullptr;
  }

  static CtflReport* report_;
  static store::QueryEngine* engine_;
  static size_t num_tests_;
};

CtflReport* TraceKernelQueryTest::report_ = nullptr;
store::QueryEngine* TraceKernelQueryTest::engine_ = nullptr;
size_t TraceKernelQueryTest::num_tests_ = 0;

TEST_F(TraceKernelQueryTest, RelatedAgreesAcrossKernelsAndWithTracer) {
  for (size_t t = 0; t < num_tests_; ++t) {
    const TestTrace& expected = report_->trace.tests[t];
    for (bool use_index : {true, false}) {
      store::QueryOptions legacy;
      legacy.use_index = use_index;
      legacy.max_records = 1 << 20;
      legacy.kernel = TraceKernelKind::kLegacy;
      store::QueryOptions blocked = legacy;
      blocked.kernel = TraceKernelKind::kBlocked;

      const store::RelatedResult a = engine_->RelatedForTest(t, legacy);
      const store::RelatedResult b = engine_->RelatedForTest(t, blocked);
      EXPECT_EQ(a.related_count, expected.related_count) << "test " << t;
      EXPECT_EQ(b.related_count, expected.related_count) << "test " << t;
      EXPECT_EQ(a.total_related, b.total_related);
      EXPECT_EQ(a.tau_w_checks, b.tau_w_checks);
      ASSERT_EQ(a.records.size(), b.records.size());
      for (size_t i = 0; i < a.records.size(); ++i) {
        EXPECT_EQ(a.records[i].participant, b.records[i].participant);
        EXPECT_EQ(a.records[i].local_index, b.records[i].local_index);
      }
      EXPECT_EQ(a.records_scanned, 0);
      EXPECT_LE(b.records_scanned, b.tau_w_checks);
    }
  }
}

TEST_F(TraceKernelQueryTest, EvaluateAgreesAcrossKernels) {
  for (double tau_w : {-1.0, 0.7}) {
    store::EvalOptions legacy;
    legacy.tau_w = tau_w;
    legacy.kernel = TraceKernelKind::kLegacy;
    store::EvalOptions blocked = legacy;
    blocked.kernel = TraceKernelKind::kBlocked;

    const store::QueryReport a = engine_->Evaluate(legacy);
    const store::QueryReport b = engine_->Evaluate(blocked);
    EXPECT_EQ(a.micro, b.micro);
    EXPECT_EQ(a.macro, b.macro);
    EXPECT_EQ(a.global_accuracy, b.global_accuracy);
    EXPECT_EQ(a.matched_accuracy, b.matched_accuracy);
    EXPECT_EQ(a.uncovered_tests, b.uncovered_tests);
    EXPECT_EQ(a.keys, b.keys);
    EXPECT_EQ(a.tau_w_checks, b.tau_w_checks);
    EXPECT_EQ(a.records_scanned, 0);
    EXPECT_LE(b.records_scanned, b.tau_w_checks);
    ASSERT_EQ(a.participants.size(), b.participants.size());
    for (size_t p = 0; p < a.participants.size(); ++p) {
      EXPECT_EQ(a.participants[p].useless_ratio,
                b.participants[p].useless_ratio);
      ASSERT_EQ(a.participants[p].beneficial.size(),
                b.participants[p].beneficial.size());
      for (size_t i = 0; i < a.participants[p].beneficial.size(); ++i) {
        EXPECT_EQ(a.participants[p].beneficial[i].rule,
                  b.participants[p].beneficial[i].rule);
        EXPECT_EQ(a.participants[p].beneficial[i].frequency,
                  b.participants[p].beneficial[i].frequency);
      }
    }
  }
  // At the originating parameters the blocked evaluation also reproduces
  // the originating run exactly.
  store::EvalOptions origin;
  origin.kernel = TraceKernelKind::kBlocked;
  const store::QueryReport report = engine_->Evaluate(origin);
  EXPECT_EQ(report.micro, report_->micro_scores);
  EXPECT_EQ(report.macro, report_->macro_scores);
}

}  // namespace
}  // namespace ctfl
