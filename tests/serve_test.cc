// Tests of the resident query service (src/ctfl/serve/): wire-protocol
// codec strictness, the sharded LRU, QueryService parity with direct
// QueryEngine calls, concurrent read-only engine use (bit-identical to
// serial), and the end-to-end unix-socket server under concurrent
// clients with graceful drain.
//
// Suite names start with "Serve" so the TSan CI job's --gtest-style regex
// picks every suite up.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ctfl/core/pipeline.h"
#include "ctfl/data/gen/synthetic.h"
#include "ctfl/fl/partition.h"
#include "ctfl/serve/client.h"
#include "ctfl/serve/lru_cache.h"
#include "ctfl/serve/protocol.h"
#include "ctfl/serve/server.h"
#include "ctfl/serve/service.h"
#include "ctfl/store/query_engine.h"
#include "ctfl/telemetry/metrics.h"
#include "ctfl/util/rng.h"

#if defined(__unix__) || defined(__APPLE__)
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#define CTFL_SERVE_TEST_HAS_SOCKETS 1
#endif

namespace ctfl {
namespace serve {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

SyntheticSpec TwoRuleSpec() {
  SyntheticSpec spec;
  spec.schema = std::make_shared<FeatureSchema>(
      std::vector<FeatureSpec>{
          FeatureSchema::Continuous("x", 0, 1),
          FeatureSchema::Continuous("y", 0, 1),
      },
      "neg", "pos");
  spec.samplers = {
      FeatureSampler{FeatureSampler::Kind::kUniform, 0, 0, {}},
      FeatureSampler{FeatureSampler::Kind::kUniform, 0, 0, {}}};
  spec.rules = {{{{0, GtPredicate::Op::kGt, 0.5}}, 1, 1.0},
                {{{0, GtPredicate::Op::kLt, 0.5}}, 0, 1.0}};
  return spec;
}

CtflConfig FastConfig() {
  CtflConfig config;
  config.federated = false;
  config.central.epochs = 12;
  config.central.learning_rate = 0.05;
  config.net.logic_layers = {{10, 10}};
  config.net.seed = 7;
  config.tracer.tau_w = 0.85;
  return config;
}

struct Fixture {
  Federation fed;
  Dataset test;
  CtflReport report;
  std::string bundle_path;
};

Fixture MakeFixture(CtflConfig config, const std::string& name,
                    int participants = 4) {
  Rng rng(41);
  const SyntheticSpec spec = TwoRuleSpec();
  const Dataset all = GenerateSynthetic(spec, 500, rng);
  Dataset test = GenerateSynthetic(spec, 140, rng);
  Rng prng(42);
  Federation fed =
      MakeFederation(PartitionSkewSample(all, participants, 0.7, prng));
  config.bundle_out = TempPath(name);
  CtflReport report = RunCtfl(fed, test, config).value();
  EXPECT_TRUE(report.bundle_status.ok()) << report.bundle_status;
  return Fixture{std::move(fed), std::move(test), std::move(report),
                 config.bundle_out};
}

store::QueryEngine OpenEngine(const std::string& path) {
  Result<store::QueryEngine> engine = store::QueryEngine::Open(path);
  EXPECT_TRUE(engine.ok()) << engine.status();
  return std::move(engine).value();
}

// ---------------------------------------------------------------------------
// Protocol codec.
// ---------------------------------------------------------------------------

Request SampleRelatedRequest() {
  Request request;
  request.op = Op::kRelated;
  request.request_id = 77;
  request.related.instance.values = {0.25, 0.75};
  request.related.instance.label = 1;
  request.related.options.tau_w = 0.9;
  request.related.options.use_index = false;
  request.related.options.max_records = 12;
  request.related.options.kernel = TraceKernelKind::kLegacy;
  return request;
}

store::RelatedResult SampleRelatedResult() {
  store::RelatedResult related;
  related.predicted = 1;
  related.support_size = 3;
  related.support_weight = 1.5;
  related.related_count = {4, 0, 7};
  related.total_related = 11;
  related.records = {{0, 2}, {2, 5}};
  related.bucket_size = 250;
  related.tau_w_checks = 60;
  related.postings_scanned = 90;
  related.candidates_pruned = 190;
  related.records_scanned = 48;
  related.blocks_pruned = 2;
  return related;
}

TEST(ServeProtocolTest, RequestRoundTripsEveryOpBitExactly) {
  std::vector<Request> requests;
  requests.push_back(SampleRelatedRequest());
  {
    Request request;
    request.op = Op::kRelatedForTest;
    request.request_id = 5;
    request.related_for_test.test_index = 42;
    request.related_for_test.options.tau_w = -1.0;
    request.related_for_test.options.max_records = 3;
    requests.push_back(request);
  }
  {
    Request request;
    request.op = Op::kEvaluate;
    request.request_id = 6;
    request.evaluate.options.tau_w = 0.8;
    request.evaluate.options.delta = -1;  // defaulted server-side
    request.evaluate.options.top_k = 9;
    request.evaluate.options.kernel = TraceKernelKind::kLegacy;
    requests.push_back(request);
  }
  {
    Request request;
    request.op = Op::kStats;
    request.request_id = 8;
    requests.push_back(request);
  }
  {
    Request request;
    request.op = Op::kShutdown;
    request.request_id = 9;
    requests.push_back(request);
  }

  for (const Request& request : requests) {
    const std::string encoded = EncodeRequest(request);
    const Result<Request> decoded = DecodeRequest(encoded);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->op, request.op);
    EXPECT_EQ(decoded->request_id, request.request_id);
    // Re-encoding the decoded request must reproduce the original bytes:
    // the codec has one canonical form.
    EXPECT_EQ(EncodeRequest(*decoded), encoded) << OpName(request.op);
  }
}

TEST(ServeProtocolTest, ResponseRoundTripsRelatedAndStatsBitExactly) {
  Response response;
  response.op = Op::kRelated;
  response.request_id = 99;
  response.related = SampleRelatedResult();

  const std::string encoded = EncodeResponse(response);
  const Result<Response> decoded = DecodeResponse(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded->status.ok());
  EXPECT_EQ(decoded->related.related_count, response.related.related_count);
  EXPECT_EQ(decoded->related.support_weight, response.related.support_weight);
  ASSERT_EQ(decoded->related.records.size(), 2u);
  EXPECT_EQ(decoded->related.records[1].participant, 2);
  EXPECT_EQ(decoded->related.records[1].local_index, 5);
  EXPECT_EQ(EncodeResponse(*decoded), encoded);

  Response stats;
  stats.op = Op::kStats;
  stats.request_id = 3;
  stats.stats.requests_total = 10;
  stats.stats.cache_hits = 4;
  stats.stats.num_participants = 3;
  stats.stats.origin_tau_w = 0.85;
  stats.stats.origin_delta = 2;
  stats.stats.participant_names = {"P0", "P1", "a name with spaces"};
  stats.stats.rounds_folded = 6;  // v3 field
  const std::string stats_encoded = EncodeResponse(stats);
  const Result<Response> stats_decoded = DecodeResponse(stats_encoded);
  ASSERT_TRUE(stats_decoded.ok()) << stats_decoded.status();
  EXPECT_EQ(stats_decoded->stats.participant_names,
            stats.stats.participant_names);
  EXPECT_EQ(stats_decoded->stats.origin_tau_w, 0.85);
  EXPECT_EQ(stats_decoded->stats.rounds_folded, 6u);
  EXPECT_EQ(EncodeResponse(*stats_decoded), stats_encoded);
}

TEST(ServeProtocolTest, ErrorResponseCarriesCodeAndMessage) {
  Response response;
  response.op = Op::kRelatedForTest;
  response.request_id = 12;
  response.status = Status::OutOfRange("test index 7 out of range");

  const std::string encoded = EncodeResponse(response);
  const Result<Response> decoded = DecodeResponse(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->op, Op::kRelatedForTest);
  EXPECT_EQ(decoded->request_id, 12u);
  EXPECT_EQ(decoded->status.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(decoded->status.message(), "test index 7 out of range");
}

TEST(ServeProtocolTest, DecodeRejectsVersionOpTruncationAndTrailing) {
  const std::string good = EncodeRequest(SampleRelatedRequest());

  // Unknown protocol version.
  std::string bad_version = good;
  bad_version[0] = static_cast<char>(kProtocolVersion + 1);
  EXPECT_FALSE(DecodeRequest(bad_version).ok());

  // Unknown op byte.
  std::string bad_op = good;
  bad_op[1] = 0x7f;
  EXPECT_FALSE(DecodeRequest(bad_op).ok());

  // Every strict prefix is a truncation error, never a silent default.
  for (size_t len = 0; len < good.size(); ++len) {
    EXPECT_FALSE(DecodeRequest(std::string_view(good.data(), len)).ok())
        << "prefix of " << len << " bytes decoded";
  }

  // Trailing garbage is an error too.
  EXPECT_FALSE(DecodeRequest(good + "x").ok());

  Response response;
  response.op = Op::kStats;
  response.stats.participant_names = {"P0"};
  const std::string good_response = EncodeResponse(response);
  for (size_t len = 0; len < good_response.size(); ++len) {
    EXPECT_FALSE(
        DecodeResponse(std::string_view(good_response.data(), len)).ok());
  }
  EXPECT_FALSE(DecodeResponse(good_response + "x").ok());
}

TEST(ServeProtocolTest, FrameDecoderReassemblesByteByByte) {
  const std::string payload_a = EncodeRequest(SampleRelatedRequest());
  Request stats;
  stats.op = Op::kStats;
  stats.request_id = 2;
  const std::string payload_b = EncodeRequest(stats);

  const std::string stream =
      Frame(payload_a).value() + Frame(payload_b).value();

  FrameDecoder decoder;
  std::vector<std::string> popped;
  for (size_t i = 0; i < stream.size(); ++i) {
    decoder.Append(stream.data() + i, 1);
    std::string frame;
    Result<bool> next = decoder.Next(&frame);
    ASSERT_TRUE(next.ok()) << next.status();
    if (*next) popped.push_back(frame);
  }
  ASSERT_EQ(popped.size(), 2u);
  EXPECT_EQ(popped[0], payload_a);
  EXPECT_EQ(popped[1], payload_b);
  EXPECT_TRUE(decoder.idle());
}

TEST(ServeProtocolTest, FrameDecoderPoisonsOnOversizedPrefix) {
  // Little-endian length prefix far beyond kMaxFrameBytes.
  const uint32_t huge = kMaxFrameBytes + 1;
  char prefix[4];
  for (int i = 0; i < 4; ++i) {
    prefix[i] = static_cast<char>((huge >> (8 * i)) & 0xff);
  }
  FrameDecoder decoder;
  decoder.Append(prefix, 4);
  std::string frame;
  EXPECT_FALSE(decoder.Next(&frame).ok());
  // Poisoned: even a well-formed follow-up frame cannot resynchronize.
  const std::string good = Frame("abc").value();
  decoder.Append(good.data(), good.size());
  EXPECT_FALSE(decoder.Next(&frame).ok());
  EXPECT_FALSE(decoder.idle());
}

// Drains every completed frame out of `decoder`, enforcing the decoder
// invariants: a popped payload never exceeds kMaxFrameBytes, and once
// Next() errors the poison is sticky. Returns false once poisoned.
bool DrainFrames(FrameDecoder& decoder, std::vector<std::string>* frames) {
  while (true) {
    std::string frame;
    Result<bool> next = decoder.Next(&frame);
    if (!next.ok()) {
      std::string again;
      EXPECT_FALSE(decoder.Next(&again).ok()) << "poison must be sticky";
      return false;
    }
    if (!*next) return true;
    EXPECT_LE(frame.size(), kMaxFrameBytes);
    frames->push_back(std::move(frame));
  }
}

TEST(ServeProtocolTest, FrameDecoderFuzzSplitsAndCoalescing) {
  // Whatever chunk boundaries the transport produces, the decoder must
  // pop the same frames in the same order.
  const std::vector<std::string> payloads = {
      EncodeRequest(SampleRelatedRequest()),
      std::string(1, '\0'),
      std::string(300, 'x'),
      "",
  };
  std::string stream;
  for (const std::string& payload : payloads) {
    stream += Frame(payload).value();
  }
  Rng rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    FrameDecoder decoder;
    std::vector<std::string> popped;
    size_t offset = 0;
    bool alive = true;
    while (offset < stream.size()) {
      const size_t chunk =
          1 + rng.UniformInt(std::min<uint64_t>(stream.size() - offset, 64));
      decoder.Append(stream.data() + offset, chunk);
      offset += chunk;
      alive = DrainFrames(decoder, &popped);
      ASSERT_TRUE(alive) << "well-formed stream poisoned the decoder";
    }
    ASSERT_EQ(popped.size(), payloads.size());
    for (size_t i = 0; i < payloads.size(); ++i) {
      EXPECT_EQ(popped[i], payloads[i]);
    }
    EXPECT_TRUE(decoder.idle());
  }
}

TEST(ServeProtocolTest, FrameDecoderFuzzSingleByteMutations) {
  // Every single-byte mutation of a two-frame stream must either decode
  // (possibly garbled payloads — framing can survive a body flip), stall
  // waiting for more bytes, or poison. Never crash, never over-read,
  // never pop an oversized frame.
  const std::string stream = Frame(EncodeRequest(SampleRelatedRequest())).value() +
                             Frame(std::string(40, 'y')).value();
  Rng rng(99);
  for (size_t pos = 0; pos < stream.size(); ++pos) {
    for (int flip = 0; flip < 3; ++flip) {
      std::string mutated = stream;
      mutated[pos] = static_cast<char>(rng.UniformInt(256));
      FrameDecoder decoder;
      std::vector<std::string> popped;
      // Feed in random chunks so the mutation also exercises partial-
      // prefix states.
      size_t offset = 0;
      bool alive = true;
      while (offset < mutated.size() && alive) {
        const size_t chunk = 1 + rng.UniformInt(std::min<uint64_t>(
                                     mutated.size() - offset, 16));
        decoder.Append(mutated.data() + offset, chunk);
        offset += chunk;
        alive = DrainFrames(decoder, &popped);
      }
      for (const std::string& frame : popped) {
        EXPECT_LE(frame.size(), kMaxFrameBytes);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Sharded LRU.
// ---------------------------------------------------------------------------

TEST(ServeLruCacheTest, HitMissUpdateAndEviction) {
  // One shard makes the LRU order deterministic for the eviction check.
  ShardedLruCache<int, std::string> cache(2, /*num_shards=*/1);
  EXPECT_FALSE(cache.Get(1).has_value());
  cache.Put(1, "one");
  cache.Put(2, "two");
  EXPECT_EQ(cache.Get(1).value(), "one");  // 1 is now most recent
  cache.Put(3, "three");                   // evicts 2
  EXPECT_FALSE(cache.Get(2).has_value());
  EXPECT_EQ(cache.Get(1).value(), "one");
  EXPECT_EQ(cache.Get(3).value(), "three");
  EXPECT_EQ(cache.size(), 2u);

  cache.Put(1, "uno");  // update-in-place, no eviction
  EXPECT_EQ(cache.Get(1).value(), "uno");
  EXPECT_EQ(cache.size(), 2u);

  EXPECT_EQ(cache.hits(), 4u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(ServeLruCacheTest, CapacityZeroDisablesStorage) {
  ShardedLruCache<int, int> cache(0);
  cache.Put(1, 10);
  EXPECT_FALSE(cache.Get(1).has_value());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ServeLruCacheTest, ConcurrentMixedUseIsSafeAndBounded) {
  ShardedLruCache<int, int> cache(64, 8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 2000; ++i) {
        const int key = (t * 131 + i) % 200;
        if (auto hit = cache.Get(key)) {
          EXPECT_EQ(*hit, key * 3);
        } else {
          cache.Put(key, key * 3);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_LE(cache.size(), 64u + 8u);  // per-shard cap rounds capacity up
  EXPECT_EQ(cache.hits() + cache.misses(), 4u * 2000u);
}

// ---------------------------------------------------------------------------
// QueryService (transport-free).
// ---------------------------------------------------------------------------

/// Encodes `response` with its request id + status echo preserved but the
/// payload replaced by a directly computed result — comparing encodings
/// proves the service's payload is bit-identical to the direct engine call.
std::string WithRelated(Response response, store::RelatedResult related) {
  response.related = std::move(related);
  return EncodeResponse(response);
}

std::string WithReport(Response response, store::QueryReport report) {
  response.report = std::move(report);
  return EncodeResponse(response);
}

TEST(ServeServiceTest, HandlersMatchDirectEngineCallsBitIdentically) {
  const Fixture fx = MakeFixture(FastConfig(), "serve_service.ctflb");
  const store::QueryEngine direct = OpenEngine(fx.bundle_path);
  QueryService service(OpenEngine(fx.bundle_path));

  // RELATED on a fresh instance, both kernels.
  for (const TraceKernelKind kernel :
       {TraceKernelKind::kBlocked, TraceKernelKind::kLegacy}) {
    Request request;
    request.op = Op::kRelated;
    request.request_id = 21;
    request.related.instance = fx.test.instance(3);
    request.related.options.kernel = kernel;
    request.related.options.max_records = 8;
    const Response response = service.Handle(request);
    ASSERT_TRUE(response.status.ok()) << response.status;
    EXPECT_EQ(response.request_id, 21u);
    EXPECT_EQ(EncodeResponse(response),
              WithRelated(response, direct.Related(fx.test.instance(3),
                                                   request.related.options)));
  }

  // RELATED_FOR_TEST over stored activations.
  {
    Request request;
    request.op = Op::kRelatedForTest;
    request.request_id = 22;
    request.related_for_test.test_index = 11;
    request.related_for_test.options.max_records = 5;
    const Response response = service.Handle(request);
    ASSERT_TRUE(response.status.ok()) << response.status;
    EXPECT_EQ(
        EncodeResponse(response),
        WithRelated(response,
                    direct.RelatedForTest(11, request.related_for_test.options)));
  }

  // EVALUATE carries the originating run's parameters + scores so clients
  // can render the CLI's reproduction line without the bundle.
  {
    Request request;
    request.op = Op::kEvaluate;
    request.request_id = 23;
    request.evaluate.options.tau_w = 0.8;
    request.evaluate.options.delta = 2;
    const Response response = service.Handle(request);
    ASSERT_TRUE(response.status.ok()) << response.status;
    EXPECT_EQ(EncodeResponse(response),
              WithReport(response, direct.Evaluate(request.evaluate.options)));
    EXPECT_EQ(response.origin_tau_w, direct.origin_tau_w());
    EXPECT_EQ(response.origin_delta, direct.origin_delta());
    EXPECT_EQ(response.origin_micro, direct.bundle().meta.micro_scores);
    EXPECT_EQ(response.origin_macro, direct.bundle().meta.macro_scores);
  }

  // STATS reflects the traffic above (including itself) and the bundle
  // shape.
  {
    Request request;
    request.op = Op::kStats;
    const Response response = service.Handle(request);
    ASSERT_TRUE(response.status.ok()) << response.status;
    EXPECT_EQ(response.stats.requests_total, 5u);
    EXPECT_EQ(response.stats.related_requests, 2u);
    EXPECT_EQ(response.stats.related_for_test_requests, 1u);
    EXPECT_EQ(response.stats.evaluate_requests, 1u);
    EXPECT_EQ(response.stats.errors_total, 0u);
    EXPECT_EQ(response.stats.num_participants, 4u);
    EXPECT_EQ(response.stats.test_records, fx.test.size());
    EXPECT_EQ(response.stats.participant_names,
              direct.bundle().meta.participant_names);
  }
}

TEST(ServeServiceTest, BadRequestsTravelAsStatusNotCrashes) {
  const Fixture fx = MakeFixture(FastConfig(), "serve_service_bad.ctflb");
  QueryService service(OpenEngine(fx.bundle_path));

  Request bad_index;
  bad_index.op = Op::kRelatedForTest;
  bad_index.request_id = 31;
  bad_index.related_for_test.test_index = 1u << 20;
  const Response response = service.Handle(bad_index);
  EXPECT_FALSE(response.status.ok());
  EXPECT_EQ(response.request_id, 31u);

  Request bad_width;
  bad_width.op = Op::kRelated;
  bad_width.related.instance.values = {0.5};  // schema has 2 features
  EXPECT_FALSE(service.Handle(bad_width).status.ok());

  EXPECT_EQ(service.Stats().errors_total, 2u);
}

TEST(ServeServiceTest, HandlePayloadEchoesHeaderOnMalformedFrames) {
  const Fixture fx = MakeFixture(FastConfig(), "serve_payload.ctflb");
  QueryService service(OpenEngine(fx.bundle_path));

  // A structurally valid header followed by a truncated body: the encoded
  // error response must echo the op + request id so the client can match
  // it to the in-flight call.
  Request request;
  request.op = Op::kRelatedForTest;
  request.request_id = 417;
  request.related_for_test.test_index = 3;
  std::string payload = EncodeRequest(request);
  payload.resize(payload.size() - 2);

  bool shutdown = false;
  const std::string encoded = service.HandlePayload(payload, &shutdown);
  EXPECT_FALSE(shutdown);
  const Result<Response> response = DecodeResponse(encoded);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_FALSE(response->status.ok());
  EXPECT_EQ(response->op, Op::kRelatedForTest);
  EXPECT_EQ(response->request_id, 417u);

  // SHUTDOWN flips the flag and still answers ok.
  Request stop;
  stop.op = Op::kShutdown;
  stop.request_id = 1;
  const std::string stop_encoded =
      service.HandlePayload(EncodeRequest(stop), &shutdown);
  EXPECT_TRUE(shutdown);
  const Result<Response> stop_response = DecodeResponse(stop_encoded);
  ASSERT_TRUE(stop_response.ok()) << stop_response.status();
  EXPECT_TRUE(stop_response->status.ok());
}

TEST(ServeServiceTest, RelatedForTestCacheHitsAreBitIdentical) {
  const Fixture fx = MakeFixture(FastConfig(), "serve_cache.ctflb");
  ServiceConfig config;
  config.lru_capacity = 32;
  QueryService service(OpenEngine(fx.bundle_path), config);

  Request request;
  request.op = Op::kRelatedForTest;
  request.related_for_test.test_index = 7;
  request.related_for_test.options.max_records = 4;

  Response first = service.Handle(request);
  ASSERT_TRUE(first.status.ok()) << first.status;
  // An explicit tau_w equal to the origin default hits the same entry as
  // the defaulted (-1) request: the cache key normalizes tau_w first.
  Request explicit_tau = request;
  explicit_tau.related_for_test.options.tau_w = service.engine().origin_tau_w();
  Response second = service.Handle(explicit_tau);
  ASSERT_TRUE(second.status.ok()) << second.status;

  first.request_id = second.request_id = 0;
  EXPECT_EQ(EncodeResponse(first), EncodeResponse(second));
  const ServerStats stats = service.Stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);

  // Different options are different cache entries, not stale hits.
  Request linear = request;
  linear.related_for_test.options.use_index = false;
  Response third = service.Handle(linear);
  ASSERT_TRUE(third.status.ok()) << third.status;
  EXPECT_EQ(service.Stats().cache_misses, 2u);
  third.request_id = 0;
  EXPECT_EQ(third.related.related_count, first.related.related_count);
}

// ---------------------------------------------------------------------------
// Concurrent read-only engine use (satellite: N threads bit-identical to
// serial).
// ---------------------------------------------------------------------------

TEST(ServeConcurrencyTest, InterleavedQueriesMatchSerialBitIdentically) {
  const Fixture fx = MakeFixture(FastConfig(), "serve_conc.ctflb");
  const store::QueryEngine engine = OpenEngine(fx.bundle_path);
  QueryService service(OpenEngine(fx.bundle_path));

  // The work list interleaves every query type across both kernels.
  struct Work {
    Request request;
  };
  std::vector<Request> work;
  for (int i = 0; i < 24; ++i) {
    Request request;
    request.request_id = 1;  // constant: responses must not depend on id
    switch (i % 3) {
      case 0:
        request.op = Op::kRelated;
        request.related.instance = fx.test.instance(i % fx.test.size());
        request.related.options.max_records = 6;
        request.related.options.kernel = (i % 2) ? TraceKernelKind::kLegacy
                                                 : TraceKernelKind::kBlocked;
        break;
      case 1:
        request.op = Op::kRelatedForTest;
        request.related_for_test.test_index = (i * 5) % fx.test.size();
        request.related_for_test.options.max_records = 6;
        request.related_for_test.options.use_index = (i % 2) == 0;
        break;
      default:
        request.op = Op::kEvaluate;
        request.evaluate.options.tau_w = (i % 2) ? 0.8 : -1.0;
        request.evaluate.options.kernel = (i % 2) ? TraceKernelKind::kLegacy
                                                  : TraceKernelKind::kBlocked;
        break;
    }
    work.push_back(request);
  }

  // Serial baseline over the direct engine.
  std::vector<std::string> serial;
  for (const Request& request : work) {
    serial.push_back(EncodeResponse(service.Handle(request)));
  }

  // N threads replay the same work interleaved, against both the service
  // (cache + counters exercised) and the bare engine.
  constexpr int kThreads = 8;
  std::vector<std::vector<std::string>> served(kThreads);
  std::atomic<int> engine_mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      served[t].resize(work.size());
      for (size_t i = 0; i < work.size(); ++i) {
        // Stagger start offsets so threads hit different ops at once.
        const size_t j = (i + t * 7) % work.size();
        const Request& request = work[j];
        served[t][j] = EncodeResponse(service.Handle(request));
        // Direct engine calls from the same threads, interleaved.
        if (request.op == Op::kRelated) {
          const store::RelatedResult direct =
              engine.Related(request.related.instance,
                             request.related.options);
          Response wrap;
          wrap.op = Op::kRelated;
          wrap.request_id = 1;
          wrap.related = direct;
          if (EncodeResponse(wrap) != serial[j]) engine_mismatches++;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(engine_mismatches.load(), 0);
  for (int t = 0; t < kThreads; ++t) {
    for (size_t i = 0; i < work.size(); ++i) {
      EXPECT_EQ(served[t][i], serial[i])
          << "thread " << t << " request " << i << " ("
          << OpName(work[i].op) << ") diverged from serial";
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end socket server.
// ---------------------------------------------------------------------------

TEST(ServeServerTest, ConcurrentClientsGetBitIdenticalResponsesAndDrain) {
  if (!ServerSupported()) GTEST_SKIP() << "socket server not compiled in";

  const Fixture fx = MakeFixture(FastConfig(), "serve_server.ctflb");
  QueryService service(OpenEngine(fx.bundle_path));

  ServerConfig config;
  config.socket_path = TempPath("serve_server.sock");
  config.num_threads = 4;
  Server server(&service, config);
  ASSERT_TRUE(server.Start().ok());

  // Serial expectations, keyed by (op kind, index), ids pinned to 0.
  const store::QueryEngine direct = OpenEngine(fx.bundle_path);
  auto expected_related_for_test = [&](size_t index) {
    store::QueryOptions options;
    options.max_records = 4;
    Response wrap;
    wrap.op = Op::kRelatedForTest;
    wrap.request_id = 0;
    wrap.related = direct.RelatedForTest(index, options);
    return EncodeResponse(wrap);
  };

  constexpr int kClients = 8;
  constexpr int kRequests = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Result<Client> client = Client::ConnectUnix(config.socket_path);
      if (!client.ok()) {
        failures++;
        return;
      }
      for (int i = 0; i < kRequests; ++i) {
        Request request;
        request.op = Op::kRelatedForTest;
        request.related_for_test.test_index =
            (c * 31 + i) % fx.test.size();
        request.related_for_test.options.max_records = 4;
        Result<Response> response = client->Call(request);
        if (!response.ok() || !response->status.ok()) {
          failures++;
          continue;
        }
        Response normalized = *response;
        normalized.request_id = 0;
        if (EncodeResponse(normalized) !=
            expected_related_for_test(request.related_for_test.test_index)) {
          failures++;
        }
      }
    });
  }
  for (auto& thread : clients) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(service.Stats().requests_total,
            static_cast<uint64_t>(kClients * kRequests));

  // Graceful drain via the SHUTDOWN op: the response still arrives, then
  // the server unwinds completely.
  Result<Client> closer = Client::ConnectUnix(config.socket_path);
  ASSERT_TRUE(closer.ok()) << closer.status();
  Request stop;
  stop.op = Op::kShutdown;
  Result<Response> stop_response = closer->Call(stop);
  ASSERT_TRUE(stop_response.ok()) << stop_response.status();
  EXPECT_TRUE(stop_response->status.ok());
  server.Wait();
  EXPECT_FALSE(server.running());

  // The socket file is gone and fresh connections fail: nothing leaked.
  EXPECT_FALSE(Client::ConnectUnix(config.socket_path).ok());
}

TEST(ServeServiceTest, StatsReportsRoundsFoldedFromCallback) {
  const Fixture fx = MakeFixture(FastConfig(), "serve_folds.ctflb");
  ServiceConfig config;
  std::atomic<uint64_t> folds{3};
  config.rounds_folded_fn = [&folds] { return folds.load(); };
  QueryService service(OpenEngine(fx.bundle_path), config);
  EXPECT_EQ(service.Stats().rounds_folded, 3u);
  // The callback is consulted per STATS call, never cached: a poller
  // folding appended rounds shows up on the next request.
  folds.store(8);
  EXPECT_EQ(service.Stats().rounds_folded, 8u);

  // Without a callback the field stays 0 (non-streaming servers).
  QueryService plain(OpenEngine(fx.bundle_path));
  EXPECT_EQ(plain.Stats().rounds_folded, 0u);
}

#if defined(CTFL_SERVE_TEST_HAS_SOCKETS)
// Slow-loris hardening (ISSUE PR10 satellite): a peer that connects and
// never completes a frame must be disconnected after idle_timeout_ms and
// counted, instead of pinning a worker slot forever.
TEST(ServeServerTest, IdleConnectionsAreClosedAndCounted) {
  if (!ServerSupported()) GTEST_SKIP() << "socket server not compiled in";

  const Fixture fx = MakeFixture(FastConfig(), "serve_idle.ctflb");
  QueryService service(OpenEngine(fx.bundle_path));

  ServerConfig config;
  config.socket_path = TempPath("serve_idle.sock");
  config.num_threads = 2;
  config.idle_timeout_ms = 200;
  Server server(&service, config);
  ASSERT_TRUE(server.Start().ok());

  telemetry::Counter& idle_closed =
      telemetry::MetricsRegistry::Global().GetCounter(
          "ctfl.serve.idle_closed");
  const int64_t before = idle_closed.value();

  // The loris: connect, send half a frame header, then stall forever.
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  ASSERT_LT(config.socket_path.size(), sizeof(addr.sun_path));
  std::memcpy(addr.sun_path, config.socket_path.c_str(),
              config.socket_path.size() + 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const char half_header[2] = {0x02, 0x00};
  ASSERT_EQ(::send(fd, half_header, sizeof(half_header), 0), 2);

  // The server closes its end within the idle budget: EOF on ours. The
  // 5s poll cap only bounds the test on failure.
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  ASSERT_GT(::poll(&pfd, 1, 5000), 0)
      << "server never closed the idle connection";
  char buf[8];
  EXPECT_EQ(::recv(fd, buf, sizeof(buf), 0), 0);  // clean EOF, no bytes
  ::close(fd);
  EXPECT_GT(idle_closed.value(), before);

  // The freed slot keeps serving well-behaved clients.
  Result<Client> client = Client::ConnectUnix(config.socket_path);
  ASSERT_TRUE(client.ok()) << client.status();
  Request request;
  request.op = Op::kStats;
  Result<Response> response = client->Call(request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->status.ok());

  server.Shutdown();
  server.Wait();
}
#endif  // CTFL_SERVE_TEST_HAS_SOCKETS

TEST(ServeServerTest, TcpLoopbackServesAndShutsDownViaApi) {
  if (!ServerSupported()) GTEST_SKIP() << "socket server not compiled in";

  const Fixture fx = MakeFixture(FastConfig(), "serve_tcp.ctflb");
  QueryService service(OpenEngine(fx.bundle_path));

  ServerConfig config;
  config.port = 0;  // kernel-assigned
  config.num_threads = 2;
  Server server(&service, config);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  Result<Client> client = Client::ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status();
  Request request;
  request.op = Op::kStats;
  Result<Response> response = client->Call(request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->status.ok());
  EXPECT_EQ(response->stats.num_participants, 4u);

  server.Shutdown();
  server.Wait();
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace serve
}  // namespace ctfl
