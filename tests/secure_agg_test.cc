#include "ctfl/fl/secure_agg.h"

#include <cmath>

#include <gtest/gtest.h>

#include "ctfl/data/gen/synthetic.h"
#include "ctfl/fl/fedavg.h"
#include "ctfl/fl/partition.h"

namespace ctfl {
namespace {

TEST(SecureAggTest, MasksCancelExactly) {
  const size_t dim = 200;
  const int clients = 5;
  SecureAggregator agg(clients, dim, /*session_seed=*/7);

  Rng rng(1);
  std::vector<std::vector<double>> updates(clients,
                                           std::vector<double>(dim));
  std::vector<double> expected(dim, 0.0);
  for (auto& update : updates) {
    for (double& v : update) v = rng.Uniform(-2.0, 2.0);
    for (size_t k = 0; k < dim; ++k) expected[k] += update[k];
  }

  std::vector<std::vector<double>> masked;
  for (int c = 0; c < clients; ++c) {
    masked.push_back(agg.Mask(c, updates[c]).value());
  }
  const std::vector<double> sum = agg.Aggregate(masked).value();
  for (size_t k = 0; k < dim; ++k) {
    EXPECT_NEAR(sum[k], expected[k], 1e-9);
  }
}

TEST(SecureAggTest, MaskedUpdateHidesTheOriginal) {
  const size_t dim = 1000;
  SecureAggregator agg(4, dim, 11);
  std::vector<double> update(dim, 0.5);  // constant, easy to recognize
  const std::vector<double> masked = agg.Mask(1, update).value();
  // The masked vector should look nothing like the constant input: its
  // empirical variance is dominated by the masks.
  double mean = 0.0;
  for (double v : masked) mean += v;
  mean /= dim;
  double var = 0.0;
  for (double v : masked) var += (v - mean) * (v - mean);
  var /= dim;
  EXPECT_GT(var, 0.2);  // sum of 3 U[-1,1] masks has variance 1.0
}

TEST(SecureAggTest, RejectsBadInputs) {
  SecureAggregator agg(3, 10, 13);
  std::vector<double> wrong_size(5, 0.0);
  EXPECT_FALSE(agg.Mask(0, wrong_size).ok());
  EXPECT_FALSE(agg.Mask(7, std::vector<double>(10, 0.0)).ok());
  // Aggregation requires every client's contribution.
  std::vector<std::vector<double>> partial(2, std::vector<double>(10, 0.0));
  EXPECT_FALSE(agg.Aggregate(partial).ok());
}

TEST(SecureAggTest, SingleClientIsPassthrough) {
  SecureAggregator agg(1, 4, 17);
  const std::vector<double> update = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> masked = agg.Mask(0, update).value();
  EXPECT_EQ(masked, update);  // no pairs, no masks
}

// FedAvg with secure aggregation must match plain FedAvg numerically.
TEST(SecureAggTest, SecureFedAvgMatchesPlain) {
  SyntheticSpec spec;
  spec.schema = std::make_shared<FeatureSchema>(
      std::vector<FeatureSpec>{FeatureSchema::Continuous("x", 0, 1)}, "neg",
      "pos");
  spec.samplers = {FeatureSampler{FeatureSampler::Kind::kUniform, 0, 0, {}}};
  spec.rules = {{{{0, GtPredicate::Op::kGt, 0.5}}, 1, 1.0},
                {{{0, GtPredicate::Op::kLt, 0.5}}, 0, 1.0}};
  Rng rng(2);
  const Dataset all = GenerateSynthetic(spec, 400, rng);
  Rng prng(3);
  const std::vector<Dataset> clients = PartitionUniform(all, 3, prng);

  LogicalNetConfig net_config;
  net_config.logic_layers = {{8, 8}};
  net_config.seed = 5;
  FedAvgConfig plain;
  plain.rounds = 3;
  plain.local_epochs = 2;
  plain.local.learning_rate = 0.05;
  FedAvgConfig secure = plain;
  secure.secure_aggregation = true;

  const LogicalNet a =
      TrainFederated(all.schema(), net_config, clients, plain);
  const LogicalNet b =
      TrainFederated(all.schema(), net_config, clients, secure);

  const std::vector<double> pa = a.GetParameters();
  const std::vector<double> pb = b.GetParameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t k = 0; k < pa.size(); ++k) {
    EXPECT_NEAR(pa[k], pb[k], 1e-6);
  }
}

}  // namespace
}  // namespace ctfl
