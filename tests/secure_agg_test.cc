#include "ctfl/fl/secure_agg.h"

#include <cmath>

#include <gtest/gtest.h>

#include "ctfl/data/gen/synthetic.h"
#include "ctfl/fl/fedavg.h"
#include "ctfl/fl/partition.h"

namespace ctfl {
namespace {

TEST(SecureAggTest, MasksCancelExactly) {
  const size_t dim = 200;
  const int clients = 5;
  SecureAggregator agg(clients, dim, /*session_seed=*/7);

  Rng rng(1);
  std::vector<std::vector<double>> updates(clients,
                                           std::vector<double>(dim));
  std::vector<double> expected(dim, 0.0);
  for (auto& update : updates) {
    for (double& v : update) v = rng.Uniform(-2.0, 2.0);
    for (size_t k = 0; k < dim; ++k) expected[k] += update[k];
  }

  std::vector<std::vector<double>> masked;
  for (int c = 0; c < clients; ++c) {
    masked.push_back(agg.Mask(c, updates[c]).value());
  }
  const std::vector<double> sum = agg.Aggregate(masked).value();
  for (size_t k = 0; k < dim; ++k) {
    EXPECT_NEAR(sum[k], expected[k], 1e-9);
  }
}

TEST(SecureAggTest, MaskedUpdateHidesTheOriginal) {
  const size_t dim = 1000;
  SecureAggregator agg(4, dim, 11);
  std::vector<double> update(dim, 0.5);  // constant, easy to recognize
  const std::vector<double> masked = agg.Mask(1, update).value();
  // The masked vector should look nothing like the constant input: its
  // empirical variance is dominated by the masks.
  double mean = 0.0;
  for (double v : masked) mean += v;
  mean /= dim;
  double var = 0.0;
  for (double v : masked) var += (v - mean) * (v - mean);
  var /= dim;
  EXPECT_GT(var, 0.2);  // sum of 3 U[-1,1] masks has variance 1.0
}

TEST(SecureAggTest, RejectsBadInputs) {
  SecureAggregator agg(3, 10, 13);
  std::vector<double> wrong_size(5, 0.0);
  EXPECT_FALSE(agg.Mask(0, wrong_size).ok());
  EXPECT_FALSE(agg.Mask(7, std::vector<double>(10, 0.0)).ok());
  // Aggregation requires every client's contribution.
  std::vector<std::vector<double>> partial(2, std::vector<double>(10, 0.0));
  EXPECT_FALSE(agg.Aggregate(partial).ok());
}

TEST(SecureAggTest, SingleClientIsPassthrough) {
  SecureAggregator agg(1, 4, 17);
  const std::vector<double> update = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> masked = agg.Mask(0, update).value();
  EXPECT_EQ(masked, update);  // no pairs, no masks
}

TEST(SecureAggTest, CohortMasksCancelOverTheSurvivors) {
  // Clients 1 and 3 dropped out; masks are derived pairwise over the
  // survivors {0, 2, 4} only, so the cohort sum recovers their true sum.
  const size_t dim = 128;
  SecureAggregator agg(5, dim, /*session_seed=*/19);
  const std::vector<int> cohort = {0, 2, 4};

  Rng rng(7);
  std::vector<std::vector<double>> updates;
  std::vector<double> expected(dim, 0.0);
  for (size_t i = 0; i < cohort.size(); ++i) {
    std::vector<double> u(dim);
    for (double& v : u) v = rng.Uniform(-2.0, 2.0);
    for (size_t k = 0; k < dim; ++k) expected[k] += u[k];
    updates.push_back(std::move(u));
  }

  std::vector<std::vector<double>> masked;
  for (size_t i = 0; i < cohort.size(); ++i) {
    masked.push_back(agg.MaskCohort(cohort[i], cohort, updates[i]).value());
    // Each masked upload in isolation hides the original.
    if (cohort.size() > 1) {
      EXPECT_NE(masked.back(), updates[i]);
    }
  }
  const std::vector<double> sum =
      agg.AggregateCohort(cohort, masked).value();
  for (size_t k = 0; k < dim; ++k) {
    EXPECT_NEAR(sum[k], expected[k], 1e-9);
  }
}

TEST(SecureAggTest, FullCohortIsBitIdenticalToFullParticipationApi) {
  const size_t dim = 64;
  const int n = 4;
  SecureAggregator agg(n, dim, 23);
  std::vector<int> everyone(n);
  for (int c = 0; c < n; ++c) everyone[c] = c;

  Rng rng(9);
  std::vector<std::vector<double>> updates(n, std::vector<double>(dim));
  for (auto& u : updates) {
    for (double& v : u) v = rng.Uniform(-1.0, 1.0);
  }

  std::vector<std::vector<double>> masked_full, masked_cohort;
  for (int c = 0; c < n; ++c) {
    masked_full.push_back(agg.Mask(c, updates[c]).value());
    masked_cohort.push_back(
        agg.MaskCohort(c, everyone, updates[c]).value());
    EXPECT_EQ(masked_full[c], masked_cohort[c]) << "client " << c;
  }
  EXPECT_EQ(agg.Aggregate(masked_full).value(),
            agg.AggregateCohort(everyone, masked_cohort).value());
}

TEST(SecureAggTest, SingletonCohortIsPassthrough) {
  SecureAggregator agg(5, 3, 29);
  const std::vector<double> update = {1.0, 2.0, 3.0};
  const std::vector<int> cohort = {3};
  EXPECT_EQ(agg.MaskCohort(3, cohort, update).value(), update);
  EXPECT_EQ(agg.AggregateCohort(cohort, {update}).value(), update);
}

TEST(SecureAggTest, CohortApisRejectBadInputs) {
  SecureAggregator agg(4, 8, 31);
  const std::vector<double> update(8, 0.0);
  // Client not in the cohort.
  EXPECT_FALSE(agg.MaskCohort(1, {0, 2}, update).ok());
  // Cohort not strictly ascending / duplicate / out of range / empty.
  EXPECT_FALSE(agg.MaskCohort(2, {2, 0}, update).ok());
  EXPECT_FALSE(agg.MaskCohort(0, {0, 0}, update).ok());
  EXPECT_FALSE(agg.MaskCohort(0, {0, 7}, update).ok());
  EXPECT_FALSE(agg.MaskCohort(0, {}, update).ok());
  // Wrong update width.
  EXPECT_FALSE(agg.MaskCohort(0, {0, 1}, std::vector<double>(3)).ok());
  // Aggregation needs exactly one masked update per cohort member.
  std::vector<std::vector<double>> one(1, update);
  EXPECT_FALSE(agg.AggregateCohort({0, 1}, one).ok());
}

// FedAvg with secure aggregation must match plain FedAvg numerically.
TEST(SecureAggTest, SecureFedAvgMatchesPlain) {
  SyntheticSpec spec;
  spec.schema = std::make_shared<FeatureSchema>(
      std::vector<FeatureSpec>{FeatureSchema::Continuous("x", 0, 1)}, "neg",
      "pos");
  spec.samplers = {FeatureSampler{FeatureSampler::Kind::kUniform, 0, 0, {}}};
  spec.rules = {{{{0, GtPredicate::Op::kGt, 0.5}}, 1, 1.0},
                {{{0, GtPredicate::Op::kLt, 0.5}}, 0, 1.0}};
  Rng rng(2);
  const Dataset all = GenerateSynthetic(spec, 400, rng);
  Rng prng(3);
  const std::vector<Dataset> clients = PartitionUniform(all, 3, prng);

  LogicalNetConfig net_config;
  net_config.logic_layers = {{8, 8}};
  net_config.seed = 5;
  FedAvgConfig plain;
  plain.rounds = 3;
  plain.local_epochs = 2;
  plain.local.learning_rate = 0.05;
  FedAvgConfig secure = plain;
  secure.secure_aggregation = true;

  const LogicalNet a =
      TrainFederated(all.schema(), net_config, clients, plain).value();
  const LogicalNet b =
      TrainFederated(all.schema(), net_config, clients, secure).value();

  const std::vector<double> pa = a.GetParameters();
  const std::vector<double> pb = b.GetParameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t k = 0; k < pa.size(); ++k) {
    EXPECT_NEAR(pa[k], pb[k], 1e-6);
  }
}

}  // namespace
}  // namespace ctfl
