#include "ctfl/fl/fedavg.h"

#include <gtest/gtest.h>

#include "ctfl/data/gen/synthetic.h"
#include "ctfl/fl/partition.h"

namespace ctfl {
namespace {

Dataset ThresholdDataset(size_t n, uint64_t seed) {
  SyntheticSpec spec;
  spec.schema = std::make_shared<FeatureSchema>(
      std::vector<FeatureSpec>{FeatureSchema::Continuous("x", 0, 1)}, "neg",
      "pos");
  spec.samplers = {FeatureSampler{FeatureSampler::Kind::kUniform, 0, 0, {}}};
  spec.rules = {{{{0, GtPredicate::Op::kGt, 0.5}}, 1, 1.0},
                {{{0, GtPredicate::Op::kLt, 0.5}}, 0, 1.0}};
  Rng rng(seed);
  return GenerateSynthetic(spec, n, rng);
}

LogicalNetConfig SmallNet() {
  LogicalNetConfig config;
  config.logic_layers = {{8, 8}};
  config.seed = 3;
  return config;
}

TEST(FedAvgTest, FederatedTrainingLearnsAcrossClients) {
  const Dataset all = ThresholdDataset(1200, 1);
  const Dataset test = ThresholdDataset(400, 2);
  Rng rng(3);
  const std::vector<Dataset> clients = PartitionUniform(all, 4, rng);

  FedAvgConfig config;
  config.rounds = 6;
  config.local_epochs = 3;
  config.local.learning_rate = 0.05;
  const LogicalNet net =
      TrainFederated(all.schema(), SmallNet(), clients, config).value();
  EXPECT_GT(net.Accuracy(test), 0.9);
}

TEST(FedAvgTest, EmptyClientsAreSkipped) {
  const Dataset all = ThresholdDataset(400, 4);
  Rng rng(5);
  std::vector<Dataset> clients = PartitionUniform(all, 2, rng);
  clients.emplace_back(all.schema());  // empty third client

  FedAvgConfig config;
  config.rounds = 2;
  config.local_epochs = 1;
  const LogicalNet net =
      TrainFederated(all.schema(), SmallNet(), clients, config).value();
  EXPECT_GT(net.Accuracy(all), 0.5);
}

TEST(FedAvgTest, AllEmptyClientsLeaveModelUntouched) {
  const SchemaPtr schema = ThresholdDataset(1, 1).schema();
  std::vector<Dataset> clients(3, Dataset(schema));
  LogicalNet net(schema, SmallNet());
  const std::vector<double> before = net.GetParameters();
  FedAvgConfig config;
  config.rounds = 3;
  ASSERT_TRUE(RunFedAvg(net, clients, config).ok());
  EXPECT_EQ(net.GetParameters(), before);
}

TEST(FedAvgTest, StatsAreResetEvenWhenFederationIsEmpty) {
  // Regression: RunFedAvg used to return early on an all-empty federation
  // *before* clearing the caller's stats, so a reused FedAvgStats kept the
  // previous invocation's rounds.
  const SchemaPtr schema = ThresholdDataset(1, 1).schema();

  FedAvgStats stats;
  {
    const Dataset all = ThresholdDataset(200, 12);
    Rng rng(13);
    const std::vector<Dataset> clients = PartitionUniform(all, 2, rng);
    FedAvgConfig config;
    config.rounds = 2;
    config.local_epochs = 1;
    LogicalNet net(schema, SmallNet());
    ASSERT_TRUE(RunFedAvg(net, clients, config, &stats).ok());
    ASSERT_EQ(stats.rounds.size(), 2u);
    ASSERT_GT(stats.grafting_steps, 0);
  }

  std::vector<Dataset> empty_clients(3, Dataset(schema));
  FedAvgConfig config;
  config.rounds = 4;
  LogicalNet net(schema, SmallNet());
  ASSERT_TRUE(RunFedAvg(net, empty_clients, config, &stats).ok());
  EXPECT_TRUE(stats.rounds.empty());
  EXPECT_EQ(stats.grafting_steps, 0);
}

TEST(FedAvgTest, ParallelFanOutMatchesSerial) {
  const Dataset all = ThresholdDataset(600, 14);
  Rng rng(15);
  const std::vector<Dataset> clients = PartitionUniform(all, 4, rng);

  FedAvgConfig config;
  config.rounds = 3;
  config.local_epochs = 2;
  config.local.learning_rate = 0.05;

  config.num_threads = 1;
  const LogicalNet serial =
      TrainFederated(all.schema(), SmallNet(), clients, config).value();
  config.num_threads = 4;
  const LogicalNet parallel =
      TrainFederated(all.schema(), SmallNet(), clients, config).value();
  EXPECT_EQ(serial.GetParameters(), parallel.GetParameters());
}

TEST(FedAvgTest, SingleClientFedAvgApproximatesCentral) {
  const Dataset all = ThresholdDataset(600, 6);
  FedAvgConfig config;
  config.rounds = 1;
  config.local_epochs = 10;
  config.local.learning_rate = 0.05;
  const LogicalNet fed =
      TrainFederated(all.schema(), SmallNet(), {all}, config).value();

  EXPECT_GT(fed.Accuracy(all), 0.85);
}

TEST(FedAvgTest, IdenticalClientsDrawDistinctSeeds) {
  // Satellite regression: the old derivation `seed + round * 7919` gave
  // every client of a round the same training seed, so two clients with
  // byte-identical data emitted byte-identical updates — and the
  // federation's average collapsed, bit-for-bit, to a single client's
  // update (0.5*u + 0.5*u == u in IEEE arithmetic). With per-client seed
  // mixing the clones shuffle differently, so the two-clone average must
  // differ from the single-client run.
  const Dataset d = ThresholdDataset(300, 11);
  FedAvgConfig config;
  config.rounds = 1;
  config.local_epochs = 2;
  config.local.learning_rate = 0.05;

  const std::vector<double> solo =
      TrainFederated(d.schema(), SmallNet(), {d}, config)
          .value()
          .GetParameters();
  const std::vector<double> clones =
      TrainFederated(d.schema(), SmallNet(), {d, d}, config)
          .value()
          .GetParameters();
  ASSERT_EQ(solo.size(), clones.size());
  EXPECT_NE(solo, clones);
}

TEST(FedAvgTest, WeightedAveragingFavorsLargeClient) {
  // One large clean client + one tiny label-flipped client: FedAvg should
  // still learn the majority signal.
  const Dataset big = ThresholdDataset(1000, 8);
  Dataset small = ThresholdDataset(50, 9);
  // Flip the small client completely.
  Dataset flipped(small.schema());
  for (const Instance& inst : small.instances()) {
    Instance bad = inst;
    bad.label = 1 - bad.label;
    flipped.AppendUnchecked(std::move(bad));
  }
  FedAvgConfig config;
  config.rounds = 4;
  config.local_epochs = 2;
  config.local.learning_rate = 0.05;
  const LogicalNet net =
      TrainFederated(big.schema(), SmallNet(), {big, flipped}, config).value();
  EXPECT_GT(net.Accuracy(big), 0.8);
}

TEST(FedAvgTest, CentralTrainingMatchesTrainerPath) {
  const Dataset all = ThresholdDataset(500, 10);
  TrainConfig tc;
  tc.epochs = 15;
  tc.learning_rate = 0.05;
  const LogicalNet net = TrainCentral(all.schema(), SmallNet(), all, tc);
  EXPECT_GT(net.Accuracy(all), 0.85);
}

}  // namespace
}  // namespace ctfl
