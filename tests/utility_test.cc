#include "ctfl/fl/utility.h"

#include <gtest/gtest.h>

#include "ctfl/data/gen/synthetic.h"
#include "ctfl/fl/partition.h"

namespace ctfl {
namespace {

TEST(CoalitionMaskTest, BuildsBitmask) {
  EXPECT_EQ(CoalitionMask({}), 0u);
  EXPECT_EQ(CoalitionMask({0}), 1u);
  EXPECT_EQ(CoalitionMask({1, 3}), 0b1010u);
  EXPECT_EQ(CoalitionMask({3, 1}), 0b1010u);  // order-insensitive
}

TEST(TabularUtilityTest, LooksUpValuesAndCountsDistinctEvaluations) {
  // 2 participants: v({})=0, v({0})=1, v({1})=2, v({0,1})=4.
  TabularUtility u(2, {0.0, 1.0, 2.0, 4.0});
  EXPECT_EQ(u.num_participants(), 2);
  EXPECT_DOUBLE_EQ(u.Value({}), 0.0);
  EXPECT_DOUBLE_EQ(u.Value({0}), 1.0);
  EXPECT_DOUBLE_EQ(u.Value({1}), 2.0);
  EXPECT_DOUBLE_EQ(u.Value({0, 1}), 4.0);
  EXPECT_EQ(u.evaluations(), 3);  // empty coalition is free
  u.Value({0});
  EXPECT_EQ(u.evaluations(), 3);  // repeat is cached
}

Dataset ThresholdDataset(size_t n, uint64_t seed) {
  SyntheticSpec spec;
  spec.schema = std::make_shared<FeatureSchema>(
      std::vector<FeatureSpec>{FeatureSchema::Continuous("x", 0, 1)}, "neg",
      "pos");
  spec.samplers = {FeatureSampler{FeatureSampler::Kind::kUniform, 0, 0, {}}};
  spec.rules = {{{{0, GtPredicate::Op::kGt, 0.5}}, 1, 1.0},
                {{{0, GtPredicate::Op::kLt, 0.5}}, 0, 1.0}};
  Rng rng(seed);
  return GenerateSynthetic(spec, n, rng);
}

class RetrainUtilityTest : public ::testing::Test {
 protected:
  RetrainUtilityTest() : test_(ThresholdDataset(300, 2)) {
    const Dataset all = ThresholdDataset(600, 1);
    Rng rng(3);
    federation_ = MakeFederation(PartitionUniform(all, 3, rng));
    config_.net.logic_layers = {{8, 8}};
    config_.train.epochs = 8;
    config_.train.learning_rate = 0.05;
  }

  Federation federation_;
  Dataset test_;
  RetrainUtility::Config config_;
};

TEST_F(RetrainUtilityTest, EmptyCoalitionIsMajorityBaseline) {
  RetrainUtility u(&federation_, &test_, config_);
  const auto counts = test_.ClassCounts();
  const double majority =
      static_cast<double>(std::max(counts[0], counts[1])) / test_.size();
  EXPECT_DOUBLE_EQ(u.Value({}), majority);
  EXPECT_EQ(u.evaluations(), 0);
}

TEST_F(RetrainUtilityTest, GrandCoalitionBeatsBaseline) {
  RetrainUtility u(&federation_, &test_, config_);
  const double grand = u.Value({0, 1, 2});
  EXPECT_GT(grand, u.Value({}) + 0.1);
  EXPECT_EQ(u.evaluations(), 1);
}

TEST_F(RetrainUtilityTest, CachesByMask) {
  RetrainUtility u(&federation_, &test_, config_);
  const double a = u.Value({0, 2});
  const double b = u.Value({2, 0});
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_EQ(u.evaluations(), 1);
}

TEST_F(RetrainUtilityTest, FederatedModeAlsoWorks) {
  config_.federated = true;
  config_.fedavg.rounds = 2;
  config_.fedavg.local_epochs = 2;
  config_.fedavg.local.learning_rate = 0.05;
  RetrainUtility u(&federation_, &test_, config_);
  const double grand = u.Value({0, 1, 2});
  EXPECT_GT(grand, 0.6);
}

TEST_F(RetrainUtilityTest, DeterministicAcrossInstances) {
  RetrainUtility u1(&federation_, &test_, config_);
  RetrainUtility u2(&federation_, &test_, config_);
  EXPECT_DOUBLE_EQ(u1.Value({0, 1}), u2.Value({0, 1}));
}

}  // namespace
}  // namespace ctfl
