#include "ctfl/util/bitset.h"

#include <gtest/gtest.h>

#include "ctfl/util/rng.h"

namespace ctfl {
namespace {

TEST(BitsetTest, StartsEmpty) {
  Bitset b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_TRUE(b.None());
}

TEST(BitsetTest, SetTestClear) {
  Bitset b(100);
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(99);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(63));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(99));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 4u);
  b.Clear(63);
  EXPECT_FALSE(b.Test(63));
  EXPECT_EQ(b.Count(), 3u);
}

TEST(BitsetTest, AndCountAcrossWordBoundaries) {
  Bitset a(200), b(200);
  for (size_t i = 0; i < 200; i += 3) a.Set(i);
  for (size_t i = 0; i < 200; i += 5) b.Set(i);
  size_t expected = 0;
  for (size_t i = 0; i < 200; i += 15) ++expected;
  EXPECT_EQ(a.AndCount(b), expected);
  EXPECT_EQ(b.AndCount(a), expected);
}

TEST(BitsetTest, Contains) {
  Bitset super(80), sub(80);
  super.Set(3);
  super.Set(70);
  super.Set(12);
  sub.Set(3);
  sub.Set(70);
  EXPECT_TRUE(super.Contains(sub));
  EXPECT_FALSE(sub.Contains(super));
  EXPECT_TRUE(super.Contains(super));
  Bitset empty(80);
  EXPECT_TRUE(super.Contains(empty));
}

TEST(BitsetTest, AndOrOperators) {
  Bitset a(70), b(70);
  a.Set(1);
  a.Set(65);
  b.Set(65);
  b.Set(2);
  Bitset and_result = a;
  and_result &= b;
  EXPECT_EQ(and_result.Count(), 1u);
  EXPECT_TRUE(and_result.Test(65));
  Bitset or_result = a;
  or_result |= b;
  EXPECT_EQ(or_result.Count(), 3u);
}

TEST(BitsetTest, SetBitsAscending) {
  Bitset b(150);
  b.Set(149);
  b.Set(0);
  b.Set(64);
  const std::vector<size_t> bits = b.SetBits();
  ASSERT_EQ(bits.size(), 3u);
  EXPECT_EQ(bits[0], 0u);
  EXPECT_EQ(bits[1], 64u);
  EXPECT_EQ(bits[2], 149u);
}

TEST(BitsetTest, ForEachSetBitMatchesSetBits) {
  Bitset b(150);
  b.Set(149);
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(127);
  b.Set(128);
  std::vector<size_t> visited;
  b.ForEachSetBit([&](size_t i) { visited.push_back(i); });
  EXPECT_EQ(visited, b.SetBits());
}

TEST(BitsetTest, ForEachSetBitEmptyAndFull) {
  Bitset empty(130);
  size_t calls = 0;
  empty.ForEachSetBit([&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0u);

  // Full bitset with a partial trailing word: every index visited once,
  // ascending, none past size().
  Bitset full(67);
  for (size_t i = 0; i < 67; ++i) full.Set(i);
  std::vector<size_t> visited;
  full.ForEachSetBit([&](size_t i) { visited.push_back(i); });
  ASSERT_EQ(visited.size(), 67u);
  for (size_t i = 0; i < 67; ++i) EXPECT_EQ(visited[i], i);
}

TEST(BitsetTest, ForEachSetBitTrailingWordEdge) {
  // Sizes that land exactly on / just past a word boundary.
  for (size_t size : {64u, 65u, 128u, 129u}) {
    Bitset b(size);
    b.Set(size - 1);
    std::vector<size_t> visited;
    b.ForEachSetBit([&](size_t i) { visited.push_back(i); });
    ASSERT_EQ(visited.size(), 1u) << "size=" << size;
    EXPECT_EQ(visited[0], size - 1) << "size=" << size;
  }
}

TEST(BitsetTest, AndWordsInto) {
  Bitset b(130);
  b.Set(0);
  b.Set(64);
  b.Set(129);
  ASSERT_EQ(b.word_count(), 3u);
  std::vector<uint64_t> dst = {~0ULL, ~0ULL, ~0ULL};
  b.AndWordsInto(dst.data());
  EXPECT_EQ(dst[0], 1ULL);
  EXPECT_EQ(dst[1], 1ULL);
  EXPECT_EQ(dst[2], 1ULL << 1);
}

TEST(BitsetTest, AndWordsIntoMatchesAndOperator) {
  Rng rng(7);
  const size_t size = 64 + rng.UniformInt(200);
  Bitset a(size), b(size);
  for (size_t i = 0; i < size; ++i) {
    if (rng.Bernoulli(0.4)) a.Set(i);
    if (rng.Bernoulli(0.4)) b.Set(i);
  }
  std::vector<uint64_t> dst = a.words();
  b.AndWordsInto(dst.data());
  Bitset reference = a;
  reference &= b;
  EXPECT_EQ(dst, reference.words());
}

TEST(BitsetTest, EqualityAndHash) {
  Bitset a(66), b(66);
  a.Set(65);
  b.Set(65);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  b.Set(1);
  EXPECT_FALSE(a == b);
}

TEST(BitsetTest, ToStringOrder) {
  Bitset b(5);
  b.Set(0);
  b.Set(3);
  EXPECT_EQ(b.ToString(), "10010");
}

// Property: AndCount agrees with a naive bit loop on random bitsets.
class BitsetRandomProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BitsetRandomProperty, AndCountMatchesNaive) {
  Rng rng(GetParam());
  const size_t size = 64 + rng.UniformInt(200);
  Bitset a(size), b(size);
  for (size_t i = 0; i < size; ++i) {
    if (rng.Bernoulli(0.3)) a.Set(i);
    if (rng.Bernoulli(0.3)) b.Set(i);
  }
  size_t naive = 0;
  for (size_t i = 0; i < size; ++i) {
    if (a.Test(i) && b.Test(i)) ++naive;
  }
  EXPECT_EQ(a.AndCount(b), naive);
  // Contains is equivalent to AndCount(sub) == sub.Count().
  EXPECT_EQ(a.Contains(b), a.AndCount(b) == b.Count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitsetRandomProperty,
                         ::testing::Range<uint64_t>(0, 10));

}  // namespace
}  // namespace ctfl
