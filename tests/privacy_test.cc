#include "ctfl/fl/privacy.h"

#include <gtest/gtest.h>

#include "ctfl/core/pipeline.h"
#include "ctfl/data/gen/synthetic.h"
#include "ctfl/fl/partition.h"
#include "ctfl/valuation/scheme.h"

namespace ctfl {
namespace {

TEST(RandomizedResponseTest, FlipProbabilityEndpoints) {
  EXPECT_DOUBLE_EQ(RandomizedResponseFlipProbability(0.0), 0.5);
  EXPECT_LT(RandomizedResponseFlipProbability(3.0), 0.05);
  EXPECT_LT(RandomizedResponseFlipProbability(10.0), 1e-4);
  // Monotone decreasing in epsilon.
  EXPECT_GT(RandomizedResponseFlipProbability(1.0),
            RandomizedResponseFlipProbability(2.0));
}

TEST(RandomizedResponseTest, HighEpsilonPreservesBits) {
  Rng rng(1);
  Bitset bits(256);
  for (size_t i = 0; i < 256; i += 3) bits.Set(i);
  const Bitset noisy = RandomizedResponse(bits, /*epsilon=*/20.0, rng);
  EXPECT_EQ(noisy, bits);
}

TEST(RandomizedResponseTest, ZeroEpsilonFlipsHalf) {
  Rng rng(2);
  Bitset bits(20000);
  size_t flips = 0;
  const Bitset noisy = RandomizedResponse(bits, /*epsilon=*/0.0, rng);
  for (size_t i = 0; i < bits.size(); ++i) {
    flips += noisy.Test(i) != bits.Test(i);
  }
  EXPECT_NEAR(static_cast<double>(flips) / bits.size(), 0.5, 0.02);
}

TEST(RandomizedResponseTest, EmpiricalFlipRateMatchesTheory) {
  for (double epsilon : {0.5, 1.0, 2.0}) {
    Rng rng(3);
    Bitset bits(20000);
    for (size_t i = 0; i < bits.size(); i += 2) bits.Set(i);
    const Bitset noisy = RandomizedResponse(bits, epsilon, rng);
    size_t flips = 0;
    for (size_t i = 0; i < bits.size(); ++i) {
      flips += noisy.Test(i) != bits.Test(i);
    }
    EXPECT_NEAR(static_cast<double>(flips) / bits.size(),
                RandomizedResponseFlipProbability(epsilon), 0.02)
        << "epsilon " << epsilon;
  }
}

TEST(RandomizedResponseTest, DebiasedCountRecoversTruth) {
  const double epsilon = 1.0;
  Rng rng(4);
  const size_t n = 50000;
  const size_t true_count = 12000;
  Bitset bits(n);
  for (size_t i = 0; i < true_count; ++i) bits.Set(i);
  const Bitset noisy = RandomizedResponse(bits, epsilon, rng);
  const double estimate =
      DebiasedCount(static_cast<double>(noisy.Count()), n, epsilon);
  EXPECT_NEAR(estimate, true_count, n * 0.02);
}

TEST(RandomizedResponseTest, DebiasedCountClampedToFeasibleRange) {
  // eps -> 0: q -> 0.5 and 1/(1-2q) explodes. An observed count barely
  // below n*q would debias to a huge negative number; barely above, to a
  // huge positive one. Both must project back onto [0, n].
  const double n = 1000.0;
  const double eps = 1e-6;
  EXPECT_EQ(DebiasedCount(0.0, n, eps), 0.0);
  EXPECT_EQ(DebiasedCount(n, n, eps), n);
  EXPECT_GE(DebiasedCount(n * 0.4999, n, eps), 0.0);
  EXPECT_LE(DebiasedCount(n * 0.5001, n, eps), n);

  // eps = 0 exactly: flip probability is 1/2, the channel carries no
  // information, and the estimator falls back to the observed count —
  // still clamped should the caller hand in a nonsense observation.
  EXPECT_EQ(DebiasedCount(300.0, n, 0.0), 300.0);
  EXPECT_EQ(DebiasedCount(-5.0, n, 0.0), 0.0);
  EXPECT_EQ(DebiasedCount(n + 5.0, n, 0.0), n);
}

TEST(RandomizedResponseTest, DebiasedCountAllBitsFlippedStaysInRange) {
  // Adversarial worst case: every reported bit set (observed = n) or
  // cleared (observed = 0). At any epsilon the estimate is a valid count.
  for (double eps : {0.1, 0.5, 1.0, 3.0, 10.0}) {
    const double n = 500.0;
    const double high = DebiasedCount(n, n, eps);
    const double low = DebiasedCount(0.0, n, eps);
    EXPECT_GE(high, 0.0) << "eps " << eps;
    EXPECT_LE(high, n) << "eps " << eps;
    EXPECT_GE(low, 0.0) << "eps " << eps;
    EXPECT_LE(low, n) << "eps " << eps;
    // Saturated observations debias to the endpoints exactly.
    EXPECT_EQ(high, n) << "eps " << eps;
    EXPECT_EQ(low, 0.0) << "eps " << eps;
  }
}

TEST(RandomizedResponseTest, AllPerturbsEveryUpload) {
  Rng rng(5);
  std::vector<Bitset> uploads(4, Bitset(64));
  const auto noisy = RandomizedResponseAll(uploads, 0.5, rng);
  ASSERT_EQ(noisy.size(), 4u);
  int changed = 0;
  for (const Bitset& b : noisy) changed += !b.None();
  EXPECT_GE(changed, 3);  // epsilon 0.5 flips ~38% of bits
}

// End-to-end: DP-perturbed tracing degrades gracefully — at moderate
// epsilon the contribution ranking stays close to the noiseless one.
TEST(DpTracingTest, ModerateEpsilonPreservesRanking) {
  SyntheticSpec spec;
  spec.schema = std::make_shared<FeatureSchema>(
      std::vector<FeatureSpec>{
          FeatureSchema::Continuous("x", 0, 1),
          FeatureSchema::Continuous("y", 0, 1),
      },
      "neg", "pos");
  spec.samplers = {
      FeatureSampler{FeatureSampler::Kind::kUniform, 0, 0, {}},
      FeatureSampler{FeatureSampler::Kind::kUniform, 0, 0, {}}};
  spec.rules = {{{{0, GtPredicate::Op::kGt, 0.5}}, 1, 1.0},
                {{{0, GtPredicate::Op::kLt, 0.5}}, 0, 1.0}};
  Rng rng(6);
  // A clear volume gradient: P0 >> P1 >> P2.
  const Dataset big = GenerateSynthetic(spec, 900, rng);
  const Dataset mid = GenerateSynthetic(spec, 300, rng);
  const Dataset small = GenerateSynthetic(spec, 100, rng);
  const Dataset test = GenerateSynthetic(spec, 250, rng);
  const Federation fed = MakeFederation({big, mid, small});

  CtflConfig config;
  config.federated = false;
  config.central.epochs = 15;
  config.central.learning_rate = 0.05;
  config.net.logic_layers = {{12, 12}};
  config.tracer.tau_w = 0.85;

  const CtflReport clean = RunCtfl(fed, test, config).value();
  config.tracer.dp_epsilon = 8.0;  // mild per-bit noise
  const CtflReport private_run = RunCtfl(fed, test, config).value();

  EXPECT_EQ(RankByScore(clean.micro_scores),
            RankByScore(private_run.micro_scores));
}

}  // namespace
}  // namespace ctfl
