#include "ctfl/util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace ctfl {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> touched(5000);
  pool.ParallelFor(0, touched.size(), [&](size_t i) {
    touched[i].fetch_add(1);
  });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(10, 10, [&](size_t) { ++calls; });
  pool.ParallelFor(10, 5, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, ParallelForComputesCorrectSum) {
  ThreadPool pool(4);
  const size_t n = 10000;
  std::vector<long> values(n);
  pool.ParallelFor(0, n, [&](size_t i) { values[i] = static_cast<long>(i); });
  const long total = std::accumulate(values.begin(), values.end(), 0L);
  EXPECT_EQ(total, static_cast<long>(n * (n - 1) / 2));
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, DefaultThreadCountPositive) {
  ThreadPool pool;
  EXPECT_GT(pool.num_threads(), 0);
}

TEST(ThreadPoolTest, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.ParallelFor(0, 64, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 64);
}

}  // namespace
}  // namespace ctfl
