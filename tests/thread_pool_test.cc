#include "ctfl/util/thread_pool.h"

#include <atomic>
#include <cmath>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace ctfl {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> touched(5000);
  pool.ParallelFor(0, touched.size(), [&](size_t i) {
    touched[i].fetch_add(1);
  });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(10, 10, [&](size_t) { ++calls; });
  pool.ParallelFor(10, 5, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, ParallelForComputesCorrectSum) {
  ThreadPool pool(4);
  const size_t n = 10000;
  std::vector<long> values(n);
  pool.ParallelFor(0, n, [&](size_t i) { values[i] = static_cast<long>(i); });
  const long total = std::accumulate(values.begin(), values.end(), 0L);
  EXPECT_EQ(total, static_cast<long>(n * (n - 1) / 2));
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, DefaultThreadCountPositive) {
  ThreadPool pool;
  EXPECT_GT(pool.num_threads(), 0);
}

TEST(ThreadPoolTest, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.ParallelFor(0, 64, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPoolTest, ResolveThreadCountSemantics) {
  EXPECT_EQ(ResolveThreadCount(1), 1);
  EXPECT_EQ(ResolveThreadCount(7), 7);
  EXPECT_GT(ResolveThreadCount(0), 0);
  EXPECT_GT(ResolveThreadCount(-3), 0);
  EXPECT_EQ(ResolveThreadCount(0), ResolveThreadCount(-1));
}

TEST(ThreadPoolTest, ParallelForRangeSmallerThanWorkerCount) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> touched(3);
  pool.ParallelFor(0, touched.size(),
                   [&](size_t i) { touched[i].fetch_add(1); });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolTest, ParallelForPropagatesWorkerException) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  EXPECT_THROW(
      pool.ParallelFor(0, 1000,
                       [&](size_t i) {
                         calls.fetch_add(1);
                         if (i == 137) {
                           throw std::runtime_error("boom at 137");
                         }
                       }),
      std::runtime_error);
  // The faulting chunk stopped early but every other chunk ran.
  EXPECT_GT(calls.load(), 0);
  EXPECT_LE(calls.load(), 1000);

  // The pool is still usable after an exception.
  std::atomic<int> after{0};
  pool.ParallelFor(0, 100, [&](size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 100);
}

TEST(ThreadPoolTest, ParallelForExceptionMessageSurvives) {
  ThreadPool pool(2);
  try {
    pool.ParallelFor(0, 10, [](size_t i) {
      if (i == 3) throw std::runtime_error("deterministic failure");
    });
    FAIL() << "expected a rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "deterministic failure");
  }
}

TEST(ThreadPoolTest, InPoolWorkerFlagTracksContext) {
  EXPECT_FALSE(ThreadPool::InPoolWorker());
  ThreadPool pool(2);
  std::atomic<int> inside{0};
  pool.ParallelFor(0, 16, [&](size_t) {
    if (ThreadPool::InPoolWorker()) inside.fetch_add(1);
  });
  EXPECT_EQ(inside.load(), 16);
  EXPECT_FALSE(ThreadPool::InPoolWorker());
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  // A worker calling ParallelFor on its own pool must not block in Wait()
  // while holding the worker slot its chunks would need; the guard runs
  // the nested loop inline. With pool size 1 a real nested submission
  // would deadlock instantly, so completion *is* the assertion.
  ThreadPool pool(1);
  std::atomic<int> outer{0}, inner{0};
  pool.ParallelFor(0, 4, [&](size_t) {
    outer.fetch_add(1);
    pool.ParallelFor(0, 8, [&](size_t) { inner.fetch_add(1); });
  });
  EXPECT_EQ(outer.load(), 4);
  EXPECT_EQ(inner.load(), 32);
}

TEST(ThreadPoolTest, NestedParallelForAcrossPoolsRunsInline) {
  ThreadPool outer_pool(4);
  ThreadPool inner_pool(4);
  std::atomic<int> inner{0};
  outer_pool.ParallelFor(0, 8, [&](size_t) {
    // Cross-pool nesting cannot deadlock, but it still runs inline to
    // avoid oversubscription; correctness is what we assert.
    inner_pool.ParallelFor(0, 8, [&](size_t) { inner.fetch_add(1); });
  });
  EXPECT_EQ(inner.load(), 64);
}

TEST(ThreadPoolTest, OrderedReduceEmptyAndInvertedRange) {
  ThreadPool pool(2);
  int reduces = 0;
  pool.OrderedReduce<int>(
      5, 5, [](size_t) { return 1; }, [&](size_t, int) { ++reduces; });
  pool.OrderedReduce<int>(
      9, 2, [](size_t) { return 1; }, [&](size_t, int) { ++reduces; });
  EXPECT_EQ(reduces, 0);
}

TEST(ThreadPoolTest, OrderedReduceVisitsIndicesInOrderUnderContention) {
  ThreadPool pool(8);
  const size_t n = 4096;
  std::vector<size_t> order;
  order.reserve(n);
  // Uneven per-index work so workers finish out of submission order; the
  // reduce sequence must stay strictly ascending regardless.
  pool.OrderedReduce<double>(
      0, n,
      [](size_t i) {
        double acc = 0.0;
        const int spins = (i % 7 == 0) ? 2000 : 10;
        for (int s = 0; s < spins; ++s) acc += std::sin(s + i);
        return acc + static_cast<double>(i);
      },
      [&](size_t i, double) { order.push_back(i); });
  ASSERT_EQ(order.size(), n);
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, OrderedReduceFoldMatchesSerialBitwise) {
  // An order-sensitive floating-point fold: x -> x * c + f(i). Any
  // reordering of the reduction changes the result, so equality with the
  // serial fold proves the parallel schedule is invisible.
  auto map = [](size_t i) {
    return std::sin(static_cast<double>(i) * 0.7) + 1.0 / (1.0 + i);
  };
  const size_t n = 2000;
  double serial = 0.0;
  for (size_t i = 0; i < n; ++i) serial = serial * 0.9999 + map(i);

  for (int trial = 0; trial < 3; ++trial) {
    ThreadPool pool(8);
    double folded = 0.0;
    pool.OrderedReduce<double>(
        0, n, map, [&](size_t, double v) { folded = folded * 0.9999 + v; });
    EXPECT_EQ(folded, serial) << "trial " << trial;
  }
}

TEST(ThreadPoolTest, OrderedReduceMoveOnlyResults) {
  ThreadPool pool(4);
  std::vector<int> collected;
  pool.OrderedReduce<std::unique_ptr<int>>(
      0, 64,
      [](size_t i) { return std::make_unique<int>(static_cast<int>(i)); },
      [&](size_t, std::unique_ptr<int> v) { collected.push_back(*v); });
  ASSERT_EQ(collected.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(collected[i], i);
}

}  // namespace
}  // namespace ctfl
