#include "ctfl/telemetry/exposition.h"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ctfl/data/gen/tictactoe.h"
#include "ctfl/fl/fedavg.h"
#include "ctfl/fl/partition.h"
#include "ctfl/telemetry/metrics.h"
#include "ctfl/util/json.h"
#include "ctfl/util/rng.h"

namespace ctfl {
namespace {

using telemetry::MetricsRegistry;
using telemetry::MetricsSnapshotWriter;
using telemetry::PrometheusMetricName;
using telemetry::PrometheusText;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(ExpositionTest, MetricNameSanitization) {
  EXPECT_EQ(PrometheusMetricName("ctfl.train.rounds"), "ctfl_train_rounds");
  EXPECT_EQ(PrometheusMetricName("already_fine:ok"), "already_fine:ok");
  EXPECT_EQ(PrometheusMetricName("9starts.with-digit"), "_starts_with_digit");
  EXPECT_EQ(PrometheusMetricName("mid9digit"), "mid9digit");
  EXPECT_EQ(PrometheusMetricName(""), "_");
}

TEST(ExpositionTest, PrometheusTextCoversAllInstrumentKinds) {
  MetricsRegistry registry;
  registry.GetCounter("exp.requests").Add(7);
  registry.GetGauge("exp.parallelism").Set(2.5);
  telemetry::Histogram& hist =
      registry.GetHistogram("exp.latency", {1.0, 10.0});
  hist.Observe(0.5);
  hist.Observe(5.0);
  hist.Observe(100.0);  // overflow bucket

  const std::string text = PrometheusText(registry.TakeSnapshot());

  EXPECT_NE(text.find("# TYPE exp_requests counter\nexp_requests 7\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE exp_parallelism gauge\nexp_parallelism 2.5\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE exp_latency histogram\n"), std::string::npos);
  // Buckets are cumulative and closed by +Inf.
  EXPECT_NE(text.find("exp_latency_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("exp_latency_bucket{le=\"10\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("exp_latency_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("exp_latency_sum 105.5\n"), std::string::npos);
  EXPECT_NE(text.find("exp_latency_count 3\n"), std::string::npos);
  // Quantile samples ride along; p99 lands in the overflow bucket, whose
  // upper bound is +Inf — the official Prometheus spelling.
  EXPECT_NE(text.find("exp_latency{quantile=\"0.5\"} 10\n"),
            std::string::npos);
  EXPECT_NE(text.find("exp_latency{quantile=\"0.99\"} +Inf\n"),
            std::string::npos);
}

TEST(ExpositionTest, PrometheusTextEmptyHistogramIsWellFormed) {
  MetricsRegistry registry;
  registry.GetHistogram("exp.idle", {1.0});
  const std::string text = PrometheusText(registry.TakeSnapshot());
  EXPECT_NE(text.find("exp_idle_count 0\n"), std::string::npos) << text;
  EXPECT_NE(text.find("exp_idle_sum 0\n"), std::string::npos) << text;
  EXPECT_NE(text.find("exp_idle_bucket{le=\"+Inf\"} 0\n"),
            std::string::npos);
}

TEST(ExpositionTest, SnapshotWriterReportsOpenFailure) {
  MetricsSnapshotWriter writer("/nonexistent-dir/metrics.jsonl");
  EXPECT_FALSE(writer.status().ok());
  EXPECT_FALSE(writer.WriteLabeled("x").ok());
  EXPECT_EQ(writer.snapshots_written(), 0);
}

TEST(ExpositionTest, SnapshotLinesParseBackWithRoundAndDigests) {
  const std::string path = TempPath("exposition_snapshots.jsonl");
  MetricsSnapshotWriter writer(path);
  ASSERT_TRUE(writer.status().ok());

  telemetry::RoundTelemetry round;
  round.round = 3;
  round.seconds = 0.25;
  round.cpu_seconds = 0.125;
  round.mean_local_loss = 0.5;
  round.clients_trained = 4;
  round.clients_dropped = 1;
  round.retries = 2;
  round.degraded = true;
  ASSERT_TRUE(writer.WriteRound(round).ok());
  ASSERT_TRUE(writer.WriteLabeled("final").ok());
  EXPECT_EQ(writer.snapshots_written(), 2);

  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 2u);

  auto first = ParseJson(lines[0]);
  ASSERT_TRUE(first.ok()) << lines[0];
  EXPECT_EQ(first->Find("seq")->AsInt64(), 0);
  EXPECT_EQ(first->Find("label")->string, "round_3");
  const JsonValue* r = first->Find("round");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->Find("round")->AsInt64(), 3);
  EXPECT_EQ(r->Find("seconds")->number, 0.25);
  EXPECT_EQ(r->Find("cpu_seconds")->number, 0.125);
  EXPECT_EQ(r->Find("mean_local_loss")->number, 0.5);
  EXPECT_EQ(r->Find("clients_trained")->AsInt64(), 4);
  EXPECT_EQ(r->Find("clients_dropped")->AsInt64(), 1);
  EXPECT_EQ(r->Find("retries")->AsInt64(), 2);
  EXPECT_EQ(r->Find("degraded")->boolean, true);
  // Counters/gauges/histograms sections always exist (possibly empty).
  EXPECT_NE(first->Find("counters"), nullptr);
  EXPECT_NE(first->Find("gauges"), nullptr);
  EXPECT_NE(first->Find("histograms"), nullptr);

  auto second = ParseJson(lines[1]);
  ASSERT_TRUE(second.ok()) << lines[1];
  EXPECT_EQ(second->Find("seq")->AsInt64(), 1);
  EXPECT_EQ(second->Find("label")->string, "final");
  EXPECT_EQ(second->Find("round"), nullptr);
}

// End-to-end: FedAvg's round_observer feeds the writer one line per
// round, and the written time series matches the RoundTelemetry that
// lands in FedAvgStats — the --metrics-out contract.
TEST(ExpositionTest, FedAvgRoundObserverProducesOneLinePerRound) {
  const std::string path = TempPath("exposition_fedavg.jsonl");
  MetricsSnapshotWriter writer(path);
  ASSERT_TRUE(writer.status().ok());

  Dataset data = GenerateTicTacToe();
  Rng rng(11);
  const std::vector<Dataset> clients = PartitionSkewSample(data, 3, 0.5,
                                                           rng);

  FedAvgConfig config;
  config.rounds = 3;
  config.local_epochs = 1;
  config.local.epochs = 1;
  config.num_threads = 1;
  config.round_observer =
      [&writer](const telemetry::RoundTelemetry& round) {
        EXPECT_TRUE(writer.WriteRound(round).ok());
      };

  LogicalNetConfig net_config;
  net_config.logic_layers = {{8, 8}};
  FedAvgStats stats;
  auto net = TrainFederated(data.schema(), net_config, clients, config,
                            &stats);
  ASSERT_TRUE(net.ok()) << net.status();
  ASSERT_EQ(stats.rounds.size(), 3u);
  EXPECT_EQ(writer.snapshots_written(), 3);

  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), stats.rounds.size());
  for (size_t i = 0; i < lines.size(); ++i) {
    auto parsed = ParseJson(lines[i]);
    ASSERT_TRUE(parsed.ok()) << lines[i];
    const JsonValue* round = parsed->Find("round");
    ASSERT_NE(round, nullptr);
    const telemetry::RoundTelemetry& expected = stats.rounds[i];
    EXPECT_EQ(round->Find("round")->AsInt64(), expected.round);
    // %.17g round-trips doubles bit-exactly.
    EXPECT_EQ(round->Find("seconds")->number, expected.seconds);
    EXPECT_EQ(round->Find("cpu_seconds")->number, expected.cpu_seconds);
    EXPECT_EQ(round->Find("mean_local_loss")->number,
              expected.mean_local_loss);
    EXPECT_EQ(round->Find("clients_trained")->AsInt64(),
              expected.clients_trained);
    EXPECT_GE(round->Find("cpu_seconds")->number, 0.0);
  }
}

}  // namespace
}  // namespace ctfl
