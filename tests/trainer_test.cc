#include "ctfl/nn/trainer.h"

#include <gtest/gtest.h>

#include "ctfl/data/gen/synthetic.h"
#include "ctfl/data/gen/tictactoe.h"
#include "ctfl/data/split.h"
#include "ctfl/nn/matrix.h"

namespace ctfl {
namespace {

// A cleanly separable single-threshold task: x > 0.5 -> positive.
Dataset ThresholdDataset(size_t n, uint64_t seed) {
  SyntheticSpec spec;
  spec.schema = std::make_shared<FeatureSchema>(
      std::vector<FeatureSpec>{FeatureSchema::Continuous("x", 0, 1)}, "neg",
      "pos");
  spec.samplers = {FeatureSampler{FeatureSampler::Kind::kUniform, 0, 0, {}}};
  spec.rules = {{{{0, GtPredicate::Op::kGt, 0.5}}, 1, 1.0},
                {{{0, GtPredicate::Op::kLt, 0.5}}, 0, 1.0}};
  Rng rng(seed);
  return GenerateSynthetic(spec, n, rng);
}

// Conjunction task over discrete features: label = (a=yes AND b=yes).
Dataset ConjunctionDataset(size_t n, uint64_t seed) {
  const SchemaPtr schema = std::make_shared<FeatureSchema>(
      std::vector<FeatureSpec>{
          FeatureSchema::Discrete("a", {"no", "yes"}),
          FeatureSchema::Discrete("b", {"no", "yes"}),
          FeatureSchema::Discrete("noise", {"u", "v", "w"}),
      },
      "neg", "pos");
  Dataset d(schema);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    Instance inst;
    const int a = static_cast<int>(rng.UniformInt(2));
    const int b = static_cast<int>(rng.UniformInt(2));
    inst.values = {static_cast<double>(a), static_cast<double>(b),
                   static_cast<double>(rng.UniformInt(3))};
    inst.label = (a == 1 && b == 1) ? 1 : 0;
    d.AppendUnchecked(std::move(inst));
  }
  return d;
}

TEST(TrainerTest, LearnsThresholdTask) {
  const Dataset train = ThresholdDataset(800, 21);
  const Dataset test = ThresholdDataset(400, 22);
  LogicalNetConfig config;
  config.tau_d = 10;
  config.logic_layers = {{16, 16}};
  config.seed = 5;
  LogicalNet net(train.schema(), config);

  TrainConfig tc;
  tc.epochs = 30;
  tc.batch_size = 64;
  tc.learning_rate = 0.05;
  const TrainReport report = TrainGrafted(net, train, tc);
  EXPECT_GT(report.steps, 0);
  EXPECT_GT(report.train_accuracy, 0.9);
  EXPECT_GT(net.Accuracy(test), 0.9);
}

TEST(TrainerTest, LearnsConjunctionTask) {
  const Dataset train = ConjunctionDataset(1200, 31);
  const Dataset test = ConjunctionDataset(400, 32);
  LogicalNetConfig config;
  config.logic_layers = {{16, 16}};
  config.fan_in = 2;
  config.seed = 6;
  LogicalNet net(train.schema(), config);

  TrainConfig tc;
  tc.epochs = 40;
  tc.learning_rate = 0.05;
  TrainGrafted(net, train, tc);
  EXPECT_GT(net.Accuracy(test), 0.93);
}

TEST(TrainerTest, TrainingImprovesOverInitialModel) {
  const Dataset train = ThresholdDataset(600, 41);
  LogicalNetConfig config;
  config.logic_layers = {{8, 8}};
  config.seed = 7;
  LogicalNet net(train.schema(), config);
  const double before = net.Accuracy(train);
  TrainConfig tc;
  tc.epochs = 25;
  tc.learning_rate = 0.05;
  TrainGrafted(net, train, tc);
  EXPECT_GT(net.Accuracy(train), before);
}

TEST(TrainerTest, EmptyDatasetIsNoOp) {
  Dataset empty(ThresholdDataset(1, 1).schema());
  Dataset none(empty.schema());
  LogicalNet net(none.schema(), LogicalNetConfig{});
  const TrainReport report = TrainGrafted(net, none, TrainConfig{});
  EXPECT_EQ(report.steps, 0);
}

TEST(TrainerTest, DeterministicGivenSeeds) {
  const Dataset train = ThresholdDataset(300, 51);
  LogicalNetConfig config;
  config.logic_layers = {{8, 8}};
  config.seed = 9;
  TrainConfig tc;
  tc.epochs = 5;
  tc.seed = 13;

  LogicalNet a(train.schema(), config);
  LogicalNet b(train.schema(), config);
  TrainGrafted(a, train, tc);
  TrainGrafted(b, train, tc);
  EXPECT_EQ(a.GetParameters(), b.GetParameters());
}

TEST(TrainerTest, LossTrajectoryIdenticalAcrossThreadCounts) {
  // The sharded kernels promise bit-identical results, so the whole loss
  // trajectory — not just the endpoint — must match between a serial and a
  // heavily parallel run with the same seed.
  const Dataset train = ThresholdDataset(400, 55);
  LogicalNetConfig config;
  config.logic_layers = {{8, 8}};
  config.seed = 9;

  // Force even these tiny matrices onto the sharded kernels.
  SetMatrixParallelGrain(1);

  TrainConfig tc;
  tc.epochs = 6;
  tc.seed = 13;
  tc.learning_rate = 0.05;

  tc.num_threads = 1;
  LogicalNet serial(train.schema(), config);
  const TrainReport serial_report = TrainGrafted(serial, train, tc);

  tc.num_threads = 8;
  LogicalNet parallel(train.schema(), config);
  const TrainReport parallel_report = TrainGrafted(parallel, train, tc);

  // Restore process defaults for the other tests in this binary.
  SetMatrixParallelism(0);
  SetMatrixParallelGrain(size_t{1} << 16);

  EXPECT_EQ(serial.GetParameters(), parallel.GetParameters());
  EXPECT_EQ(serial_report.final_loss, parallel_report.final_loss);
  EXPECT_EQ(serial_report.train_accuracy, parallel_report.train_accuracy);
  EXPECT_EQ(serial_report.steps, parallel_report.steps);
  ASSERT_EQ(serial_report.epoch_stats.size(),
            parallel_report.epoch_stats.size());
  for (size_t e = 0; e < serial_report.epoch_stats.size(); ++e) {
    SCOPED_TRACE(e);
    EXPECT_EQ(serial_report.epoch_stats[e].loss,
              parallel_report.epoch_stats[e].loss);
  }
}

TEST(TrainerTest, SgdPathAlsoLearns) {
  const Dataset train = ThresholdDataset(800, 61);
  LogicalNetConfig config;
  config.logic_layers = {{16, 16}};
  config.seed = 10;
  LogicalNet net(train.schema(), config);
  TrainConfig tc;
  tc.use_adam = false;
  tc.learning_rate = 0.5;
  tc.epochs = 40;
  TrainGrafted(net, train, tc);
  EXPECT_GT(net.Accuracy(train), 0.85);
}

TEST(TrainerTest, LearnsTicTacToeReasonably) {
  const Dataset full = GenerateTicTacToe();
  Rng rng(71);
  const TrainTestSplit split = StratifiedSplit(full, 0.2, rng);
  LogicalNetConfig config;
  config.logic_layers = {{64, 64}};
  config.fan_in = 3;
  config.seed = 11;
  LogicalNet net(split.train.schema(), config);
  TrainConfig tc;
  tc.epochs = 60;
  tc.learning_rate = 0.05;
  TrainGrafted(net, split.train, tc);
  // Paper-grade models reach high 90s; we only require clearly-learned.
  EXPECT_GT(net.Accuracy(split.test), 0.8);
}

}  // namespace
}  // namespace ctfl
