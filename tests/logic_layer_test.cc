#include "ctfl/nn/logic_layer.h"

#include <cmath>

#include <gtest/gtest.h>

namespace ctfl {
namespace {

TEST(LogicLayerTest, ContinuousConjDisjHandValues) {
  // 1 conj node + 1 disj node over 2 inputs.
  LogicLayer layer(2, 1, 1);
  layer.weights()(0, 0) = 1.0;  // conj uses both inputs fully
  layer.weights()(0, 1) = 1.0;
  layer.weights()(1, 0) = 1.0;  // disj likewise
  layer.weights()(1, 1) = 1.0;

  Matrix x(1, 2);
  x(0, 0) = 0.5;
  x(0, 1) = 1.0;
  const Matrix y = layer.ForwardContinuous(x);
  // Conj: (1 - 1*(1-0.5)) * (1 - 1*(1-1)) = 0.5 * 1 = 0.5.
  EXPECT_NEAR(y(0, 0), 0.5, 1e-6);
  // Disj: 1 - (1 - 0.5)(1 - 1.0) = 1 - 0 = 1.
  EXPECT_NEAR(y(0, 1), 1.0, 1e-6);
}

TEST(LogicLayerTest, ZeroWeightMeansNoParticipation) {
  LogicLayer layer(3, 1, 1);
  layer.weights()(0, 1) = 1.0;  // conj only looks at input 1
  layer.weights()(1, 2) = 1.0;  // disj only looks at input 2
  Matrix x(1, 3);
  x(0, 0) = 0.0;
  x(0, 1) = 1.0;
  x(0, 2) = 0.0;
  const Matrix y = layer.ForwardContinuous(x);
  EXPECT_NEAR(y(0, 0), 1.0, 1e-6);
  EXPECT_NEAR(y(0, 1), 0.0, 1e-6);
}

TEST(LogicLayerTest, DiscreteIsCrispAndOr) {
  LogicLayer layer(3, 1, 1);
  // Conj over inputs {0, 1}; disj over inputs {1, 2}. Weight 0.6 > 0.5 is
  // active, 0.4 is not.
  layer.weights()(0, 0) = 0.6;
  layer.weights()(0, 1) = 0.9;
  layer.weights()(0, 2) = 0.4;
  layer.weights()(1, 1) = 0.7;
  layer.weights()(1, 2) = 0.8;

  auto eval = [&](double a, double b, double c) {
    Matrix x(1, 3);
    x(0, 0) = a;
    x(0, 1) = b;
    x(0, 2) = c;
    return layer.ForwardDiscrete(x);
  };
  EXPECT_DOUBLE_EQ(eval(1, 1, 0)(0, 0), 1.0);  // AND(0,1) = 1
  EXPECT_DOUBLE_EQ(eval(1, 0, 0)(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(eval(0, 0, 1)(0, 1), 1.0);  // OR(1,2) = 1
  EXPECT_DOUBLE_EQ(eval(0, 0, 0)(0, 1), 0.0);
}

TEST(LogicLayerTest, EmptyNodesAreConstants) {
  LogicLayer layer(2, 1, 1);  // all weights zero
  Matrix x(1, 2);
  x(0, 0) = 1.0;
  const Matrix yd = layer.ForwardDiscrete(x);
  EXPECT_DOUBLE_EQ(yd(0, 0), 1.0);  // empty AND = true
  EXPECT_DOUBLE_EQ(yd(0, 1), 0.0);  // empty OR = false
  const Matrix yc = layer.ForwardContinuous(x);
  EXPECT_DOUBLE_EQ(yc(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(yc(0, 1), 0.0);
}

TEST(LogicLayerTest, ContinuousMatchesDiscreteOnBinaryWeights) {
  Rng rng(5);
  LogicLayer layer(6, 3, 3);
  // Weights exactly 0 or 1 make the fuzzy forms collapse to crisp logic.
  for (int node = 0; node < layer.out_dim(); ++node) {
    for (int i = 0; i < 6; ++i) {
      layer.weights()(node, i) = rng.Bernoulli(0.4) ? 1.0 : 0.0;
    }
  }
  Matrix x(8, 6);
  for (size_t r = 0; r < 8; ++r) {
    for (int i = 0; i < 6; ++i) x(r, i) = rng.Bernoulli(0.5) ? 1.0 : 0.0;
  }
  const Matrix yc = layer.ForwardContinuous(x);
  const Matrix yd = layer.ForwardDiscrete(x);
  for (size_t r = 0; r < 8; ++r) {
    for (int node = 0; node < layer.out_dim(); ++node) {
      EXPECT_NEAR(yc(r, node), yd(r, node), 1e-6);
    }
  }
}

TEST(LogicLayerTest, InitSparseBoundsActiveInputs) {
  Rng rng(6);
  LogicLayer layer(32, 8, 8);
  layer.InitSparse(rng, 3);
  for (int node = 0; node < layer.out_dim(); ++node) {
    const auto active = layer.ActiveInputs(node);
    EXPECT_GE(active.size(), 1u);
    EXPECT_LE(active.size(), 3u);
    for (int i = 0; i < 32; ++i) {
      const double w = layer.weights()(node, i);
      EXPECT_TRUE(w == 0.0 || (w > 0.5 && w < 0.95));
    }
  }
}

// Finite-difference check of the analytic gradients — the central
// correctness test of the differentiable logic substrate.
class LogicLayerGradientTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LogicLayerGradientTest, BackwardMatchesFiniteDifferences) {
  Rng rng(GetParam());
  const int in_dim = 5;
  LogicLayer layer(in_dim, 2, 2);
  for (int node = 0; node < layer.out_dim(); ++node) {
    for (int i = 0; i < in_dim; ++i) {
      layer.weights()(node, i) = rng.Uniform(0.05, 0.95);
    }
  }
  Matrix x(3, in_dim);
  for (size_t r = 0; r < 3; ++r) {
    for (int i = 0; i < in_dim; ++i) x(r, i) = rng.Uniform(0.05, 0.95);
  }
  // Random upstream gradient; scalar loss L = sum dy .* y.
  Matrix dy(3, layer.out_dim());
  for (size_t r = 0; r < 3; ++r) {
    for (int node = 0; node < layer.out_dim(); ++node) {
      dy(r, node) = rng.Uniform(-1.0, 1.0);
    }
  }
  auto loss = [&](const Matrix& input) {
    const Matrix y = layer.ForwardContinuous(input);
    double total = 0.0;
    for (size_t r = 0; r < y.rows(); ++r) {
      for (size_t c = 0; c < y.cols(); ++c) total += dy(r, c) * y(r, c);
    }
    return total;
  };

  layer.grads().Fill(0.0);
  const Matrix y = layer.ForwardContinuous(x);
  const Matrix dx = layer.Backward(x, y, dy);

  const double eps = 1e-6;
  // Weight gradients.
  for (int node = 0; node < layer.out_dim(); ++node) {
    for (int i = 0; i < in_dim; ++i) {
      const double w0 = layer.weights()(node, i);
      layer.weights()(node, i) = w0 + eps;
      const double up = loss(x);
      layer.weights()(node, i) = w0 - eps;
      const double down = loss(x);
      layer.weights()(node, i) = w0;
      const double numeric = (up - down) / (2 * eps);
      EXPECT_NEAR(layer.grads()(node, i), numeric, 1e-5)
          << "node " << node << " input " << i;
    }
  }
  // Input gradients.
  for (size_t r = 0; r < 3; ++r) {
    for (int i = 0; i < in_dim; ++i) {
      Matrix xp = x, xm = x;
      xp(r, i) += eps;
      xm(r, i) -= eps;
      const double numeric = (loss(xp) - loss(xm)) / (2 * eps);
      EXPECT_NEAR(dx(r, i), numeric, 1e-5) << "row " << r << " input " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LogicLayerGradientTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace ctfl
