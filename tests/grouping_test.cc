#include "ctfl/mining/test_grouping.h"

#include <gtest/gtest.h>

#include "ctfl/util/rng.h"

namespace ctfl {
namespace {

Bitset MakeActivation(size_t n, std::vector<int> items) {
  Bitset b(n);
  for (int i : items) b.Set(i);
  return b;
}

double Weighted(const Bitset& bits, const std::vector<double>& weights) {
  double total = 0.0;
  for (size_t i : bits.SetBits()) total += weights[i];
  return total;
}

TEST(GroupingTest, EveryActivationAssignedExactlyOnce) {
  Rng rng(1);
  const size_t num_items = 20;
  std::vector<Bitset> activations;
  for (int t = 0; t < 100; ++t) {
    Bitset b(num_items);
    for (size_t i = 0; i < num_items; ++i) {
      if (rng.Bernoulli(0.25)) b.Set(i);
    }
    activations.push_back(std::move(b));
  }
  const std::vector<double> weights(num_items, 1.0);
  GroupingConfig config;
  config.min_support_fraction = 0.1;
  config.min_instances = 10;
  const auto groups = GroupActivations(activations, weights, 0.9, config);

  std::vector<int> seen(activations.size(), 0);
  for (const TestGroup& g : groups) {
    for (size_t member : g.members) ++seen[member];
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(GroupingTest, FrequentSubsetIsContainedInMembers) {
  Rng rng(2);
  const size_t num_items = 16;
  std::vector<Bitset> activations;
  for (int t = 0; t < 80; ++t) {
    Bitset b(num_items);
    // Common core {0,1} in most transactions + random extras.
    if (t % 4 != 0) {
      b.Set(0);
      b.Set(1);
    }
    for (size_t i = 2; i < num_items; ++i) {
      if (rng.Bernoulli(0.2)) b.Set(i);
    }
    activations.push_back(std::move(b));
  }
  const std::vector<double> weights(num_items, 1.0);
  GroupingConfig config;
  config.min_support_fraction = 0.3;
  config.min_instances = 10;
  const auto groups = GroupActivations(activations, weights, 1.0, config);
  for (const TestGroup& g : groups) {
    for (size_t member : g.members) {
      for (int item : g.frequent_subset) {
        EXPECT_TRUE(activations[member].Test(item))
            << "member " << member << " lacks item " << item;
      }
    }
  }
}

TEST(GroupingTest, FewInstancesBecomeSingletons) {
  std::vector<Bitset> activations = {MakeActivation(8, {1, 2}),
                                     MakeActivation(8, {3})};
  const std::vector<double> weights(8, 1.0);
  GroupingConfig config;
  config.min_instances = 32;  // grouping disabled below this
  const auto groups = GroupActivations(activations, weights, 0.8, config);
  ASSERT_EQ(groups.size(), 2u);
  for (const TestGroup& g : groups) EXPECT_EQ(g.members.size(), 1u);
}

// Soundness: a training activation passing the exact relatedness test
// (weighted overlap ratio >= tau_w) must also pass the group prefilter
// theta — i.e. the prefilter never discards a true positive.
class GroupingSoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GroupingSoundness, PrefilterNeverDropsRelatedPairs) {
  Rng rng(GetParam());
  const size_t num_items = 24;
  std::vector<double> weights(num_items);
  for (double& w : weights) w = rng.Uniform(0.1, 1.0);

  std::vector<Bitset> tests;
  for (int t = 0; t < 60; ++t) {
    Bitset b(num_items);
    for (size_t i = 0; i < num_items; ++i) {
      if (rng.Bernoulli(0.3)) b.Set(i);
    }
    if (b.None()) b.Set(rng.UniformInt(num_items));
    tests.push_back(std::move(b));
  }
  std::vector<Bitset> train;
  for (int t = 0; t < 120; ++t) {
    Bitset b(num_items);
    for (size_t i = 0; i < num_items; ++i) {
      if (rng.Bernoulli(0.3)) b.Set(i);
    }
    train.push_back(std::move(b));
  }

  const double tau_w = 0.7 + 0.3 * rng.Uniform();
  GroupingConfig config;
  config.min_support_fraction = 0.15;
  config.min_instances = 10;
  const auto groups = GroupActivations(tests, weights, tau_w, config);

  for (const TestGroup& g : groups) {
    for (size_t member : g.members) {
      const double wsum = Weighted(tests[member], weights);
      for (const Bitset& tr : train) {
        double overlap = 0.0;
        for (size_t i : tests[member].SetBits()) {
          if (tr.Test(i)) overlap += weights[i];
        }
        const bool related = overlap >= tau_w * wsum - 1e-12;
        if (!related) continue;
        // The prefilter quantity must reach theta.
        double f_overlap = 0.0;
        for (int item : g.frequent_subset) {
          if (tr.Test(item)) f_overlap += weights[item];
        }
        EXPECT_GE(f_overlap + 1e-9, g.theta)
            << "prefilter would drop a related pair (tau_w=" << tau_w << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupingSoundness,
                         ::testing::Range<uint64_t>(0, 8));

TEST(GroupingTest, EmptyInputYieldsNoGroups) {
  const std::vector<Bitset> none;
  const std::vector<double> weights;
  EXPECT_TRUE(GroupActivations(none, weights, 0.9, GroupingConfig{}).empty());
}

}  // namespace
}  // namespace ctfl
