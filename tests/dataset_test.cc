#include "ctfl/data/dataset.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "ctfl/util/csv.h"

namespace ctfl {
namespace {

SchemaPtr MakeSchema() {
  return std::make_shared<FeatureSchema>(
      std::vector<FeatureSpec>{
          FeatureSchema::Continuous("x", 0, 10),
          FeatureSchema::Discrete("c", {"a", "b"}),
      },
      "neg", "pos");
}

Instance MakeInstance(double x, int c, int label) {
  Instance inst;
  inst.values = {x, static_cast<double>(c)};
  inst.label = label;
  return inst;
}

TEST(DatasetTest, AppendValidates) {
  Dataset d(MakeSchema());
  EXPECT_TRUE(d.Append(MakeInstance(1.0, 0, 1)).ok());
  EXPECT_EQ(d.size(), 1u);

  Instance wrong_width;
  wrong_width.values = {1.0};
  EXPECT_FALSE(d.Append(wrong_width).ok());

  EXPECT_FALSE(d.Append(MakeInstance(1.0, 5, 0)).ok());  // bad category
  Instance bad_label = MakeInstance(1.0, 0, 2);
  EXPECT_FALSE(d.Append(bad_label).ok());
  EXPECT_EQ(d.size(), 1u);
}

TEST(DatasetTest, SubsetPreservesOrder) {
  Dataset d(MakeSchema());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(d.Append(MakeInstance(i, i % 2, i % 2)).ok());
  }
  const Dataset sub = d.Subset({4, 1});
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_DOUBLE_EQ(sub.instance(0).values[0], 4.0);
  EXPECT_DOUBLE_EQ(sub.instance(1).values[0], 1.0);
}

TEST(DatasetTest, MergeAndCounts) {
  Dataset a(MakeSchema()), b(MakeSchema());
  ASSERT_TRUE(a.Append(MakeInstance(1, 0, 1)).ok());
  ASSERT_TRUE(b.Append(MakeInstance(2, 1, 0)).ok());
  ASSERT_TRUE(b.Append(MakeInstance(3, 1, 0)).ok());
  a.Merge(b);
  EXPECT_EQ(a.size(), 3u);
  const auto counts = a.ClassCounts();
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_NEAR(a.PositiveRate(), 1.0 / 3, 1e-12);
}

TEST(DatasetTest, EmptyDatasetBehaviors) {
  Dataset d(MakeSchema());
  EXPECT_TRUE(d.empty());
  EXPECT_DOUBLE_EQ(d.PositiveRate(), 0.0);
  EXPECT_EQ(d.ClassCounts()[0], 0u);
}

TEST(DatasetTest, CsvRoundTrip) {
  const SchemaPtr schema = MakeSchema();
  Dataset d(schema);
  ASSERT_TRUE(d.Append(MakeInstance(1.25, 0, 1)).ok());
  ASSERT_TRUE(d.Append(MakeInstance(7.5, 1, 0)).ok());

  const std::string path = ::testing::TempDir() + "/dataset_roundtrip.csv";
  ASSERT_TRUE(SaveCsvDataset(path, d).ok());
  const Result<Dataset> loaded = LoadCsvDataset(path, schema);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_DOUBLE_EQ(loaded->instance(0).values[0], 1.25);
  EXPECT_EQ(loaded->instance(0).label, 1);
  EXPECT_EQ(static_cast<int>(loaded->instance(1).values[1]), 1);
  EXPECT_EQ(loaded->instance(1).label, 0);
  std::remove(path.c_str());
}

TEST(DatasetTest, LoadRejectsUnknownLabel) {
  const SchemaPtr schema = MakeSchema();
  const std::string path = ::testing::TempDir() + "/bad_label.csv";
  {
    CsvTable table;
    table.header = {"x", "c", "label"};
    table.rows = {{"1.0", "a", "maybe"}};
    ASSERT_TRUE(WriteCsv(path, table).ok());
  }
  EXPECT_FALSE(LoadCsvDataset(path, schema).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ctfl
