#include "ctfl/nn/binarization_layer.h"

#include <gtest/gtest.h>

#include "ctfl/data/gen/benchmarks.h"

namespace ctfl {
namespace {

SchemaPtr MakeSchema() {
  return std::make_shared<FeatureSchema>(
      std::vector<FeatureSpec>{
          FeatureSchema::Continuous("x", 0.0, 10.0),
          FeatureSchema::Discrete("c", {"a", "b", "c"}),
      },
      "neg", "pos");
}

TEST(BinarizationTest, EncodedSizeCountsOneHotAndBounds) {
  Rng rng(1);
  const BinarizationLayer layer(MakeSchema(), /*tau_d=*/4, rng);
  // 2*4 bounds for the continuous feature + 3 one-hot bits.
  EXPECT_EQ(layer.encoded_size(), 8 + 3);
}

TEST(BinarizationTest, EncodingIsBinaryAndConsistentWithPredicates) {
  Rng rng(2);
  const SchemaPtr schema = MakeSchema();
  const BinarizationLayer layer(schema, 5, rng);
  Instance inst;
  inst.values = {3.7, 1.0};

  std::vector<double> out(layer.encoded_size());
  layer.Encode(inst, out.data());
  for (int j = 0; j < layer.encoded_size(); ++j) {
    EXPECT_TRUE(out[j] == 0.0 || out[j] == 1.0);
    const EncodedPredicate& p = layer.predicate(j);
    bool expected = false;
    switch (p.kind) {
      case EncodedPredicate::Kind::kGreater:
        expected = inst.values[p.feature] > p.threshold;
        break;
      case EncodedPredicate::Kind::kLess:
        expected = inst.values[p.feature] < p.threshold;
        break;
      case EncodedPredicate::Kind::kEquals:
        expected = static_cast<int>(inst.values[p.feature]) == p.category;
        break;
    }
    EXPECT_EQ(out[j] == 1.0, expected) << "predicate " << j;
  }
}

TEST(BinarizationTest, OneHotIsExactlyOnePerDiscreteFeature) {
  Rng rng(3);
  const SchemaPtr schema = MakeSchema();
  const BinarizationLayer layer(schema, 3, rng);
  for (int cat = 0; cat < 3; ++cat) {
    Instance inst;
    inst.values = {5.0, static_cast<double>(cat)};
    std::vector<double> out(layer.encoded_size());
    layer.Encode(inst, out.data());
    int ones = 0;
    for (int j = 0; j < layer.encoded_size(); ++j) {
      if (layer.predicate(j).kind == EncodedPredicate::Kind::kEquals &&
          out[j] == 1.0) {
        ++ones;
        EXPECT_EQ(layer.predicate(j).category, cat);
      }
    }
    EXPECT_EQ(ones, 1);
  }
}

TEST(BinarizationTest, BoundsDrawnFromDomainOnly) {
  Rng rng(4);
  const SchemaPtr schema = MakeSchema();
  const BinarizationLayer layer(schema, 16, rng);
  for (int j = 0; j < layer.encoded_size(); ++j) {
    const EncodedPredicate& p = layer.predicate(j);
    if (p.kind == EncodedPredicate::Kind::kEquals) continue;
    EXPECT_GE(p.threshold, 0.0);
    EXPECT_LE(p.threshold, 10.0);
  }
}

TEST(BinarizationTest, DeterministicGivenSeed) {
  const SchemaPtr schema = MakeSchema();
  Rng rng1(7), rng2(7);
  const BinarizationLayer a(schema, 6, rng1);
  const BinarizationLayer b(schema, 6, rng2);
  for (int j = 0; j < a.encoded_size(); ++j) {
    EXPECT_DOUBLE_EQ(a.predicate(j).threshold, b.predicate(j).threshold);
  }
}

TEST(BinarizationTest, EncodeBatchMatchesSingle) {
  Rng rng(8);
  const SchemaPtr schema = MakeSchema();
  const BinarizationLayer layer(schema, 4, rng);
  Dataset d(schema);
  for (int i = 0; i < 10; ++i) {
    Instance inst;
    inst.values = {i * 1.0, static_cast<double>(i % 3)};
    d.AppendUnchecked(std::move(inst));
  }
  std::vector<size_t> indices = {2, 7};
  const Matrix batch = layer.EncodeBatch(d, indices);
  std::vector<double> single(layer.encoded_size());
  layer.Encode(d.instance(7), single.data());
  for (int j = 0; j < layer.encoded_size(); ++j) {
    EXPECT_DOUBLE_EQ(batch(1, j), single[j]);
  }
}

TEST(BinarizationTest, PredicateToString) {
  Rng rng(9);
  const SchemaPtr schema = MakeSchema();
  const BinarizationLayer layer(schema, 2, rng);
  bool saw_threshold = false, saw_equals = false;
  for (int j = 0; j < layer.encoded_size(); ++j) {
    const std::string s = layer.predicate(j).ToString(*schema);
    if (s.find("x >") != std::string::npos ||
        s.find("x <") != std::string::npos) {
      saw_threshold = true;
    }
    if (s.find("c = ") != std::string::npos) saw_equals = true;
  }
  EXPECT_TRUE(saw_threshold);
  EXPECT_TRUE(saw_equals);
}

}  // namespace
}  // namespace ctfl
