#include "ctfl/fl/adversary.h"

#include <gtest/gtest.h>

namespace ctfl {
namespace {

SchemaPtr MakeSchema() {
  return std::make_shared<FeatureSchema>(
      std::vector<FeatureSpec>{FeatureSchema::Continuous("x", 0, 1)}, "neg",
      "pos");
}

Dataset MakeDataset(size_t n, uint64_t seed) {
  Dataset d(MakeSchema());
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    Instance inst;
    inst.values = {rng.Uniform()};
    inst.label = rng.Bernoulli(0.4) ? 1 : 0;
    d.AppendUnchecked(std::move(inst));
  }
  return d;
}

TEST(AdversaryTest, ReplicationAppendsExactCopies) {
  Dataset d = MakeDataset(100, 1);
  const Dataset original = d;
  Rng rng(2);
  const size_t added = ReplicateData(d, 0.3, rng);
  EXPECT_EQ(added, 30u);
  EXPECT_EQ(d.size(), 130u);
  // The first 100 instances are untouched.
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(d.instance(i).values, original.instance(i).values);
    EXPECT_EQ(d.instance(i).label, original.instance(i).label);
  }
  // Every appended record is a copy of some original.
  for (size_t i = 100; i < d.size(); ++i) {
    bool found = false;
    for (size_t j = 0; j < 100 && !found; ++j) {
      found = d.instance(i).values == original.instance(j).values &&
              d.instance(i).label == original.instance(j).label;
    }
    EXPECT_TRUE(found);
  }
}

TEST(AdversaryTest, LowQualityKeepsSizeChangesLabelsOnly) {
  Dataset d = MakeDataset(400, 3);
  const Dataset original = d;
  Rng rng(4);
  const size_t touched = InjectLowQuality(d, 0.5, rng);
  EXPECT_EQ(touched, 200u);
  EXPECT_EQ(d.size(), original.size());
  size_t label_changes = 0;
  for (size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(d.instance(i).values, original.instance(i).values);
    label_changes += d.instance(i).label != original.instance(i).label;
  }
  // Random relabeling flips a label with prob ~ (1 - p)p + p(1 - p) given
  // the class mix; just require a substantial but partial change.
  EXPECT_GT(label_changes, 50u);
  EXPECT_LT(label_changes, 200u);
}

TEST(AdversaryTest, FlipInvertsExactFraction) {
  Dataset d = MakeDataset(300, 5);
  const Dataset original = d;
  Rng rng(6);
  const size_t touched = FlipLabels(d, 0.2, rng);
  EXPECT_EQ(touched, 60u);
  size_t flipped = 0;
  for (size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(d.instance(i).values, original.instance(i).values);
    flipped += d.instance(i).label != original.instance(i).label;
  }
  EXPECT_EQ(flipped, 60u);
}

TEST(AdversaryTest, ZeroRatioIsNoOp) {
  Dataset d = MakeDataset(50, 7);
  const Dataset original = d;
  Rng rng(8);
  EXPECT_EQ(ReplicateData(d, 0.0, rng), 0u);
  EXPECT_EQ(FlipLabels(d, 0.0, rng), 0u);
  EXPECT_EQ(InjectLowQuality(d, 0.0, rng), 0u);
  EXPECT_EQ(d.size(), original.size());
  for (size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(d.instance(i).label, original.instance(i).label);
  }
}

TEST(AdversaryTest, FullRatioFlipsEverything) {
  Dataset d = MakeDataset(40, 9);
  const Dataset original = d;
  Rng rng(10);
  EXPECT_EQ(FlipLabels(d, 1.0, rng), 40u);
  for (size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(d.instance(i).label, 1 - original.instance(i).label);
  }
}

TEST(AdversaryTest, RatioClampedAboveOne) {
  Dataset d = MakeDataset(20, 11);
  Rng rng(12);
  EXPECT_EQ(ReplicateData(d, 5.0, rng), 20u);
  EXPECT_EQ(d.size(), 40u);
}

}  // namespace
}  // namespace ctfl
