#include "ctfl/core/interpret.h"

#include <gtest/gtest.h>

namespace ctfl {
namespace {

TraceResult MakeTrace(int n, int num_rules) {
  TraceResult trace;
  trace.num_participants = n;
  trace.num_rules = num_rules;
  trace.beneficial_rule_freq = Matrix(n, num_rules);
  trace.harmful_rule_freq = Matrix(n, num_rules);
  trace.uncovered_rule_freq.assign(num_rules, 0.0);
  trace.train_match_correct.resize(n);
  trace.train_match_miss.resize(n);
  return trace;
}

TEST(InterpretTest, TopRulesSortedByWeightedFrequency) {
  TraceResult trace = MakeTrace(1, 5);
  trace.train_match_correct[0] = {1, 1};
  trace.train_match_miss[0] = {0, 0};
  trace.beneficial_rule_freq(0, 0) = 1.0;
  trace.beneficial_rule_freq(0, 3) = 5.0;
  trace.beneficial_rule_freq(0, 4) = 2.0;

  const auto profiles = BuildProfiles(trace, /*top_k=*/2);
  ASSERT_EQ(profiles.size(), 1u);
  ASSERT_EQ(profiles[0].beneficial.size(), 2u);
  EXPECT_EQ(profiles[0].beneficial[0].rule, 3);
  EXPECT_EQ(profiles[0].beneficial[1].rule, 4);
}

TEST(InterpretTest, UselessRatioCountsNeverMatchedRecords) {
  TraceResult trace = MakeTrace(1, 2);
  trace.train_match_correct[0] = {2, 0, 0, 1};
  trace.train_match_miss[0] = {0, 0, 1, 0};
  const auto profiles = BuildProfiles(trace, 3);
  // Record 1 never matched anywhere -> 1 of 4.
  EXPECT_NEAR(profiles[0].useless_ratio, 0.25, 1e-12);
  EXPECT_EQ(profiles[0].data_size, 4u);
}

TEST(InterpretTest, HarmfulRulesTracked) {
  TraceResult trace = MakeTrace(2, 3);
  trace.train_match_correct[0] = {1};
  trace.train_match_correct[1] = {1};
  trace.train_match_miss[0] = {0};
  trace.train_match_miss[1] = {0};
  trace.harmful_rule_freq(1, 2) = 4.0;
  const auto profiles = BuildProfiles(trace, 5);
  EXPECT_TRUE(profiles[0].harmful.empty());
  ASSERT_EQ(profiles[1].harmful.size(), 1u);
  EXPECT_EQ(profiles[1].harmful[0].rule, 2);
}

TEST(InterpretTest, GuidanceSortsUncoveredRules) {
  TraceResult trace = MakeTrace(1, 4);
  trace.uncovered_tests = 3;
  trace.uncovered_rule_freq = {0.5, 0.0, 2.0, 1.0};
  const CollectionGuidance guidance = GuideDataCollection(trace, 2);
  EXPECT_EQ(guidance.uncovered_tests, 3u);
  ASSERT_EQ(guidance.uncovered_rules.size(), 2u);
  EXPECT_EQ(guidance.uncovered_rules[0].rule, 2);
  EXPECT_EQ(guidance.uncovered_rules[1].rule, 3);
}

TEST(InterpretTest, FormattersResolveRuleText) {
  // Minimal extraction: two atoms over a tiny schema.
  const SchemaPtr schema = std::make_shared<FeatureSchema>(
      std::vector<FeatureSpec>{FeatureSchema::Continuous("income", 0, 100)},
      "low", "high");
  ExtractionResult extraction;
  for (int j = 0; j < 2; ++j) {
    ExtractedRule er;
    er.coordinate = j;
    Predicate p;
    p.feature = 0;
    p.op = Predicate::Op::kGt;
    p.threshold = 10.0 * (j + 1);
    er.rule = Rule::Atom(p);
    er.support_class = j % 2;
    er.weight = 1.0;
    extraction.rules.push_back(std::move(er));
  }

  ParticipantProfile profile;
  profile.participant = 0;
  profile.data_size = 10;
  profile.useless_ratio = 0.1;
  profile.beneficial = {{1, 3.5}};
  const std::string text =
      FormatProfile(profile, extraction, *schema, "P0");
  EXPECT_NE(text.find("P0"), std::string::npos);
  EXPECT_NE(text.find("income > 20"), std::string::npos);

  CollectionGuidance guidance;
  guidance.uncovered_tests = 2;
  guidance.uncovered_rules = {{0, 1.5}};
  const std::string gtext = FormatGuidance(guidance, extraction, *schema);
  EXPECT_NE(gtext.find("income > 10"), std::string::npos);
  EXPECT_NE(gtext.find("2 misclassified"), std::string::npos);
}

}  // namespace
}  // namespace ctfl
