// Tests of the streaming contribution pipeline (src/ctfl/stream/,
// DESIGN.md §15): the tentpole property — scores folded one RoundDelta at
// a time bit-match the one-shot pipeline after EVERY round, across both
// Eq. 4 kernels, every trace ISA this machine supports, and thread counts
// 1/2/8, on a faulty secure-agg run — plus the delta-log corruption
// matrix (truncated tail, CRC flip, future version, unknown record kind),
// the StreamedEngine poll/verify loop, and the committed golden log.
//
// Suite names start with "Stream" so the TSan CI job's --gtest-style
// regex picks every suite up.

#include <bit>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ctfl/core/allocation.h"
#include "ctfl/core/pipeline.h"
#include "ctfl/core/tracer.h"
#include "ctfl/data/gen/synthetic.h"
#include "ctfl/fl/partition.h"
#include "ctfl/store/bundle.h"
#include "ctfl/stream/delta_log.h"
#include "ctfl/stream/emitter.h"
#include "ctfl/stream/scorer.h"
#include "ctfl/util/cpu_features.h"
#include "ctfl/util/rng.h"

namespace ctfl {
namespace stream {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string DataPath(const std::string& name) {
  return std::string(CTFL_TEST_DATA_DIR) + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// Appends one raw framed record (kind | len | payload | crc) so tests
/// can inject record kinds the current reader does not know.
void AppendRawRecord(const std::string& path, uint32_t kind,
                     const std::string& payload) {
  std::string framed;
  const auto put32 = [&framed](uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      framed.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  };
  put32(kind);
  put32(static_cast<uint32_t>(payload.size()));
  framed += payload;
  put32(store::Crc32(payload.data(), payload.size()));
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out.write(framed.data(), static_cast<std::streamsize>(framed.size()));
  ASSERT_TRUE(out.good()) << path;
}

::testing::AssertionResult BitEq(const std::vector<double>& want,
                                 const std::vector<double>& got) {
  if (want.size() != got.size()) {
    return ::testing::AssertionFailure()
           << "size " << got.size() << ", want " << want.size();
  }
  for (size_t i = 0; i < want.size(); ++i) {
    if (std::bit_cast<uint64_t>(want[i]) != std::bit_cast<uint64_t>(got[i])) {
      return ::testing::AssertionFailure()
             << "index " << i << ": " << got[i] << " != " << want[i]
             << " (bit patterns differ)";
    }
  }
  return ::testing::AssertionSuccess();
}

SyntheticSpec ThreeRuleSpec() {
  SyntheticSpec spec;
  spec.schema = std::make_shared<FeatureSchema>(
      std::vector<FeatureSpec>{
          FeatureSchema::Continuous("a", 0, 1),
          FeatureSchema::Continuous("b", 0, 1),
          FeatureSchema::Continuous("c", 0, 1),
      },
      "neg", "pos");
  spec.samplers = {FeatureSampler{FeatureSampler::Kind::kUniform, 0, 0, {}},
                   FeatureSampler{FeatureSampler::Kind::kUniform, 0, 0, {}},
                   FeatureSampler{FeatureSampler::Kind::kUniform, 0, 0, {}}};
  spec.rules = {{{{0, GtPredicate::Op::kGt, 0.6}}, 1, 1.0},
                {{{1, GtPredicate::Op::kLt, 0.4}}, 0, 1.0},
                {{{2, GtPredicate::Op::kGt, 0.5},
                  {0, GtPredicate::Op::kLt, 0.6}},
                 1,
                 0.8}};
  return spec;
}

/// A faulty secure-agg federated run: dropouts and corrupt uploads force
/// degraded rounds through the fold path, not just the happy path.
CtflConfig FaultyStreamConfig() {
  CtflConfig config;
  config.federated = true;
  config.fedavg.rounds = 5;
  config.fedavg.local_epochs = 2;
  config.fedavg.local.learning_rate = 0.05;
  config.fedavg.local.seed = 7;
  config.fedavg.secure_aggregation = true;
  config.fedavg.failure =
      FailurePlan::Parse("dropout=0.25,corrupt=0.1,seed=23").value();
  config.fedavg.retry_budget = 1;
  config.net.logic_layers = {{10, 10}};
  config.net.seed = 7;
  config.tracer.tau_w = 0.85;
  return config;
}

/// One instrumented run shared by every test: the emitted log, the
/// persisted bundle, the final report, and the one-shot micro/macro
/// baselines recomputed from scratch at every round (index r = scores
/// after round r; index 0 = the initialized model).
struct StreamFixture {
  Federation fed;
  Dataset test;
  CtflConfig config;
  std::string log_path;
  std::string bundle_path;
  CtflReport report;
  DeltaLogContents log;
  std::vector<std::vector<double>> micro_at;
  std::vector<std::vector<double>> macro_at;
};

StreamFixture MakeStreamFixture() {
  Rng rng(31);
  const SyntheticSpec spec = ThreeRuleSpec();
  const Dataset all = GenerateSynthetic(spec, 480, rng);
  Dataset test = GenerateSynthetic(spec, 120, rng);
  Rng prng(32);
  Federation fed = MakeFederation(PartitionSkewSample(all, 4, 0.7, prng));
  CtflConfig config = FaultyStreamConfig();
  std::string log_path = TempPath("stream_fx.ctfld");
  std::string bundle_path = TempPath("stream_fx.ctflb");
  config.bundle_out = bundle_path;

  // Snapshot the committed global model at every round so the one-shot
  // baseline can be recomputed from scratch per round — the emitter
  // chains this observer, so both see identical models.
  std::vector<LogicalNet> snapshots;
  config.fedavg.model_observer =
      [&snapshots](int round, const LogicalNet& global,
                   const telemetry::RoundTelemetry&) {
        EXPECT_EQ(static_cast<size_t>(round), snapshots.size());
        snapshots.push_back(global);
      };
  CtflReport report = [&] {
    DeltaLogEmitter emitter(log_path, &fed, &test, &config);
    emitter.Attach(&config.fedavg);
    CtflReport r = RunCtfl(fed, test, config).value();
    EXPECT_TRUE(emitter.status().ok()) << emitter.status();
    return r;
  }();
  EXPECT_TRUE(report.bundle_status.ok()) << report.bundle_status;
  // Drop the observer chain: it references the dead emitter and the
  // snapshots local of this function.
  config.fedavg.model_observer = nullptr;

  DeltaLogContents log = ReadDeltaLog(log_path).value();
  std::vector<std::vector<double>> micro_at;
  std::vector<std::vector<double>> macro_at;
  for (const LogicalNet& model : snapshots) {
    const ContributionTracer tracer(&model, &fed, config.tracer);
    const TraceResult trace = tracer.Trace(test);
    micro_at.push_back(MicroAllocation(trace));
    macro_at.push_back(MacroAllocation(trace, config.macro_delta));
  }
  return StreamFixture{std::move(fed),         std::move(test),
                       std::move(config),      std::move(log_path),
                       std::move(bundle_path), std::move(report),
                       std::move(log),         std::move(micro_at),
                       std::move(macro_at)};
}

const StreamFixture& Fx() {
  static const StreamFixture* fx = new StreamFixture(MakeStreamFixture());
  return *fx;
}

// ---------------------------------------------------------------------------
// The tentpole property.
// ---------------------------------------------------------------------------

TEST(StreamScorerTest, FoldBitMatchesOneShotAfterEveryRoundEverywhere) {
  const StreamFixture& fx = Fx();
  ASSERT_EQ(fx.log.rounds.size(),
            static_cast<size_t>(fx.config.fedavg.rounds));
  ASSERT_EQ(fx.micro_at.size(), fx.log.rounds.size() + 1);
  EXPECT_EQ(fx.log.truncated_bytes, 0u);
  EXPECT_EQ(fx.log.skipped_records, 0u);

  // The fault plan must actually have fired, or the "streamed scores
  // survive degraded rounds" half of the property is vacuous.
  uint32_t dropped = 0, retries = 0;
  for (const RoundDelta& round : fx.log.rounds) {
    dropped += round.clients_dropped;
    retries += round.retries;
  }
  EXPECT_GT(dropped + retries, 0u);

  for (const TraceKernelKind kernel :
       {TraceKernelKind::kLegacy, TraceKernelKind::kBlocked}) {
    for (const TraceIsa isa : AvailableTraceIsas()) {
      for (const int threads : {1, 2, 8}) {
        ScorerOptions options;
        options.kernel = kernel;
        options.isa = isa;
        options.trace_threads = threads;
        options.num_threads = threads;
        const std::string leg =
            std::string(kernel == TraceKernelKind::kLegacy ? "legacy"
                                                           : "blocked") +
            "/" + TraceIsaName(isa) + "/t" + std::to_string(threads);

        Result<StreamingScorer> scorer =
            StreamingScorer::FromHeader(fx.log.header, options);
        ASSERT_TRUE(scorer.ok()) << leg << ": " << scorer.status();
        EXPECT_TRUE(BitEq(fx.micro_at[0], scorer->micro_scores())) << leg;
        EXPECT_TRUE(BitEq(fx.macro_at[0], scorer->macro_scores())) << leg;

        for (size_t r = 0; r < fx.log.rounds.size(); ++r) {
          const Status folded = scorer->Fold(fx.log.rounds[r]);
          ASSERT_TRUE(folded.ok()) << leg << " round " << r + 1 << ": "
                                   << folded;
          EXPECT_TRUE(BitEq(fx.micro_at[r + 1], scorer->micro_scores()))
              << leg << " after round " << r + 1;
          EXPECT_TRUE(BitEq(fx.macro_at[r + 1], scorer->macro_scores()))
              << leg << " after round " << r + 1;
        }
        // And the final fold equals the pipeline's own report.
        EXPECT_TRUE(BitEq(fx.report.micro_scores, scorer->micro_scores()))
            << leg;
        EXPECT_TRUE(BitEq(fx.report.macro_scores, scorer->macro_scores()))
            << leg;
      }
    }
  }
}

TEST(StreamScorerTest, HeaderCarriesRunIdentity) {
  const StreamFixture& fx = Fx();
  const DeltaHeader& header = fx.log.header;
  EXPECT_EQ(header.config_digest, CtflConfigDigest(fx.config));
  EXPECT_EQ(header.schema_fingerprint, SchemaFingerprint(*fx.test.schema()));
  EXPECT_EQ(header.failure_plan_fingerprint,
            fx.config.fedavg.failure.Fingerprint());
  EXPECT_GT(header.num_rules, 0u);
  ASSERT_EQ(header.participant_names.size(), fx.fed.size());
  for (size_t p = 0; p < fx.fed.size(); ++p) {
    EXPECT_EQ(header.participant_names[p], fx.fed[p].name);
  }
  ASSERT_EQ(fx.log.rounds.size(),
            static_cast<size_t>(fx.config.fedavg.rounds));
  for (size_t i = 0; i < fx.log.rounds.size(); ++i) {
    EXPECT_EQ(fx.log.rounds[i].round, i + 1) << "rounds not consecutive";
  }
}

TEST(StreamScorerTest, FoldRejectsNonConsecutiveRounds) {
  const StreamFixture& fx = Fx();
  ASSERT_GE(fx.log.rounds.size(), 2u);
  Result<StreamingScorer> scorer =
      StreamingScorer::FromHeader(fx.log.header);
  ASSERT_TRUE(scorer.ok()) << scorer.status();
  EXPECT_FALSE(scorer->Fold(fx.log.rounds[1]).ok())
      << "round 2 folded before round 1";
  // The consecutive round still folds after the rejection.
  EXPECT_TRUE(scorer->Fold(fx.log.rounds[0]).ok());
}

// ---------------------------------------------------------------------------
// StreamedEngine: fold on attach, poll for appended rounds, verify
// against the bundle snapshot.
// ---------------------------------------------------------------------------

TEST(StreamEngineTest, PollsAppendedRoundsAndVerifiesAgainstBundle) {
  const StreamFixture& fx = Fx();
  const std::string path = TempPath("stream_poll.ctfld");
  Result<DeltaLogWriter> writer = DeltaLogWriter::Create(path);
  ASSERT_TRUE(writer.ok()) << writer.status();
  ASSERT_TRUE(writer->AppendHeader(fx.log.header).ok());
  ASSERT_TRUE(writer->AppendRound(fx.log.rounds[0]).ok());
  ASSERT_TRUE(writer->AppendRound(fx.log.rounds[1]).ok());

  Result<StreamedEngine> engine =
      StreamedEngine::Open(fx.bundle_path, path);
  ASSERT_TRUE(engine.ok()) << engine.status();
  EXPECT_EQ(engine->rounds_folded(), 2u);
  EXPECT_TRUE(BitEq(fx.micro_at[2], engine->scorer().micro_scores()));

  // The live half of the contract: training appends, the server polls.
  for (size_t r = 2; r < fx.log.rounds.size(); ++r) {
    ASSERT_TRUE(writer->AppendRound(fx.log.rounds[r]).ok());
  }
  Result<uint64_t> appended = engine->PollAppended();
  ASSERT_TRUE(appended.ok()) << appended.status();
  EXPECT_EQ(*appended, fx.log.rounds.size() - 2);
  EXPECT_EQ(engine->rounds_folded(), fx.log.rounds.size());
  EXPECT_TRUE(engine->VerifyAgainstBundle().ok());

  // Idempotent when the log has not grown.
  appended = engine->PollAppended();
  ASSERT_TRUE(appended.ok()) << appended.status();
  EXPECT_EQ(*appended, 0u);
}

// ---------------------------------------------------------------------------
// Corruption matrix (mirrors the replay container's coverage).
// ---------------------------------------------------------------------------

TEST(StreamDeltaLogTest, TruncatedTailRecoversToLastWholeRecord) {
  const StreamFixture& fx = Fx();
  const std::string bytes = ReadFile(fx.log_path);
  ASSERT_GT(bytes.size(), 16u);
  // A crash mid-append: the last record loses its tail.
  const std::string chopped = bytes.substr(0, bytes.size() - 5);
  Result<DeltaLogContents> parsed = ParseDeltaLog(chopped, "chopped");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_GT(parsed->truncated_bytes, 0u);
  EXPECT_EQ(parsed->rounds.size(), fx.log.rounds.size() - 1);
  EXPECT_EQ(parsed->bytes_consumed + parsed->truncated_bytes,
            chopped.size());

  // The recovered prefix still folds (live logs look exactly like this
  // between appends).
  Result<StreamingScorer> scorer =
      StreamingScorer::FromHeader(parsed->header);
  ASSERT_TRUE(scorer.ok()) << scorer.status();
  Result<uint64_t> folded = scorer->FoldAll(*parsed);
  ASSERT_TRUE(folded.ok()) << folded.status();
  EXPECT_EQ(*folded, parsed->rounds.size());
  EXPECT_TRUE(BitEq(fx.micro_at[parsed->rounds.size()],
                    scorer->micro_scores()));
}

TEST(StreamDeltaLogTest, CrcCorruptionIsRejectedNotAbsorbed) {
  const StreamFixture& fx = Fx();
  std::string bytes = ReadFile(fx.log_path);
  // Flip one byte inside the header record's payload (preamble is 12
  // bytes, record framing 8 more; +16 is payload territory).
  ASSERT_GT(bytes.size(), 40u);
  bytes[12 + 8 + 16] ^= 0x40;
  const Result<DeltaLogContents> parsed = ParseDeltaLog(bytes, "flipped");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(StreamDeltaLogTest, FutureContainerVersionIsRejected) {
  const StreamFixture& fx = Fx();
  std::string bytes = ReadFile(fx.log_path);
  bytes[8] = 2;  // version u32 follows the 8-byte magic
  EXPECT_FALSE(ParseDeltaLog(bytes, "future").ok());
  // And garbage magic is not a delta log at all.
  std::string not_magic = ReadFile(fx.log_path);
  not_magic[0] = 'X';
  EXPECT_FALSE(ParseDeltaLog(not_magic, "magic").ok());
}

TEST(StreamDeltaLogTest, UnknownRecordKindsAreSkippedAndCounted) {
  const StreamFixture& fx = Fx();
  const std::string path = TempPath("stream_unknown.ctfld");
  {
    Result<DeltaLogWriter> writer = DeltaLogWriter::Create(path);
    ASSERT_TRUE(writer.ok()) << writer.status();
    ASSERT_TRUE(writer->AppendHeader(fx.log.header).ok());
    ASSERT_TRUE(writer->AppendRound(fx.log.rounds[0]).ok());
  }
  // A record kind from the future lands mid-log; readers must step over
  // it and keep decoding (the replay container's tolerance rule).
  AppendRawRecord(path, /*kind=*/99, "from-the-future");
  AppendRawRecord(path, /*kind=*/2, EncodeRound(fx.log.rounds[1]));

  Result<DeltaLogContents> parsed = ReadDeltaLog(path);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->skipped_records, 1u);
  ASSERT_EQ(parsed->rounds.size(), 2u);
  EXPECT_EQ(parsed->rounds[1].round, 2u);

  Result<StreamingScorer> scorer =
      StreamingScorer::FromHeader(parsed->header);
  ASSERT_TRUE(scorer.ok()) << scorer.status();
  Result<uint64_t> folded = scorer->FoldAll(*parsed);
  ASSERT_TRUE(folded.ok()) << folded.status();
  EXPECT_TRUE(BitEq(fx.micro_at[2], scorer->micro_scores()));
}

// ---------------------------------------------------------------------------
// Golden log: a delta log committed at container v1. If this test breaks,
// the reader stopped understanding logs already written to disk — bump
// the container version instead of changing v1 semantics. Regeneration
// recipe: EXPERIMENTS.md §"Streaming delta logs".
// ---------------------------------------------------------------------------

TEST(StreamGoldenTest, GoldenV1LogFoldsAndVerifiesAgainstGoldenBundle) {
  const std::string log_path = DataPath("golden_stream_v1.ctfld");
  const std::string bundle_path = DataPath("golden_stream_v1.ctflb");
  Result<DeltaLogContents> log = ReadDeltaLog(log_path);
  ASSERT_TRUE(log.ok()) << log.status();
  EXPECT_EQ(log->truncated_bytes, 0u);
  EXPECT_EQ(log->skipped_records, 0u);
  EXPECT_EQ(log->rounds.size(), 3u);
  EXPECT_EQ(log->header.participant_names.size(), 3u);

  Result<StreamedEngine> engine = StreamedEngine::Open(bundle_path, log_path);
  ASSERT_TRUE(engine.ok()) << engine.status();
  EXPECT_EQ(engine->rounds_folded(), 3u);
  // The end-to-end integrity statement: folding the committed chain
  // reproduces the committed bundle's scores bit-for-bit.
  EXPECT_TRUE(engine->VerifyAgainstBundle().ok())
      << engine->VerifyAgainstBundle();
  double total = 0.0;
  for (const double score : engine->scorer().micro_scores()) total += score;
  EXPECT_GT(total, 0.0);
}

}  // namespace
}  // namespace stream
}  // namespace ctfl
