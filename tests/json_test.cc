#include "ctfl/util/json.h"

#include <cmath>
#include <string>

#include <gtest/gtest.h>

namespace ctfl {
namespace {

TEST(JsonTest, ParsesScalars) {
  auto parsed = ParseJson("42");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->is_number());
  EXPECT_EQ(parsed->number, 42.0);
  EXPECT_EQ(parsed->AsInt64(), 42);

  parsed = ParseJson("true");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->kind, JsonValue::Kind::kBool);
  EXPECT_TRUE(parsed->boolean);

  parsed = ParseJson("null");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->kind, JsonValue::Kind::kNull);

  parsed = ParseJson("\"hi\\nthere\"");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->is_string());
  EXPECT_EQ(parsed->string, "hi\nthere");
}

TEST(JsonTest, ParsesNestedStructures) {
  auto parsed = ParseJson(
      R"({"a": [1, 2.5, {"b": "c"}], "d": {"e": false}, "f": null})");
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed->is_object());
  const JsonValue* a = parsed->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_EQ(a->array[0].number, 1.0);
  EXPECT_EQ(a->array[1].number, 2.5);
  EXPECT_EQ(a->array[2].Find("b")->string, "c");
  EXPECT_EQ(parsed->Find("d")->Find("e")->boolean, false);
  EXPECT_EQ(parsed->Find("missing"), nullptr);
}

TEST(JsonTest, KeepsRawNumberTextForExactInt64) {
  // 2^63 - 1 is not representable as a double; AsInt64 must come from
  // the raw token, not the rounded double.
  auto parsed = ParseJson("{\"v\": 9223372036854775807}");
  ASSERT_TRUE(parsed.ok());
  const JsonValue* v = parsed->Find("v");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->raw_number, "9223372036854775807");
  EXPECT_EQ(v->AsInt64(), INT64_MAX);
}

TEST(JsonTest, RoundTripsDoublesVia17g) {
  for (double value : {0.1, 1.0 / 3.0, 1e-300, 12345.678901234567}) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    auto parsed = ParseJson(buffer);
    ASSERT_TRUE(parsed.ok()) << buffer;
    EXPECT_EQ(parsed->number, value) << buffer;  // bit-exact
  }
}

TEST(JsonTest, DecodesUnicodeEscapes) {
  auto parsed = ParseJson("\"a\\u0041\\u00e9\"");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->string, "aA\xc3\xa9");  // é as UTF-8
}

TEST(JsonTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("1 trailing").ok());
  EXPECT_FALSE(ParseJson("nul").ok());
}

TEST(JsonTest, EscapeRoundTripsThroughParser) {
  const std::string nasty = "quote\" back\\slash \n\t\r ctrl\x01 end";
  const std::string doc = "\"" + JsonEscape(nasty) + "\"";
  auto parsed = ParseJson(doc);
  ASSERT_TRUE(parsed.ok()) << doc;
  EXPECT_EQ(parsed->string, nasty);
}

}  // namespace
}  // namespace ctfl
