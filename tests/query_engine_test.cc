#include "ctfl/store/query_engine.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "ctfl/core/interpret.h"
#include "ctfl/core/pipeline.h"
#include "ctfl/data/gen/synthetic.h"
#include "ctfl/fl/partition.h"
#include "ctfl/store/snapshot.h"

namespace ctfl {
namespace store {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

SyntheticSpec TwoRuleSpec() {
  SyntheticSpec spec;
  spec.schema = std::make_shared<FeatureSchema>(
      std::vector<FeatureSpec>{
          FeatureSchema::Continuous("x", 0, 1),
          FeatureSchema::Continuous("y", 0, 1),
      },
      "neg", "pos");
  spec.samplers = {
      FeatureSampler{FeatureSampler::Kind::kUniform, 0, 0, {}},
      FeatureSampler{FeatureSampler::Kind::kUniform, 0, 0, {}}};
  spec.rules = {{{{0, GtPredicate::Op::kGt, 0.5}}, 1, 1.0},
                {{{0, GtPredicate::Op::kLt, 0.5}}, 0, 1.0}};
  return spec;
}

CtflConfig FastConfig() {
  CtflConfig config;
  config.federated = false;
  config.central.epochs = 12;
  config.central.learning_rate = 0.05;
  config.net.logic_layers = {{10, 10}};
  config.net.seed = 7;
  config.tracer.tau_w = 0.85;
  return config;
}

/// A full run whose bundle was written through the pipeline itself. The
/// bundle files live in the test temp dir; the harness cleans them up.
struct Fixture {
  Federation fed;
  Dataset test;
  CtflReport report;
  std::string bundle_path;
};

Fixture MakeFixture(CtflConfig config, const std::string& name,
                    int participants = 4) {
  Rng rng(41);
  const SyntheticSpec spec = TwoRuleSpec();
  const Dataset all = GenerateSynthetic(spec, 500, rng);
  Dataset test = GenerateSynthetic(spec, 140, rng);
  Rng prng(42);
  Federation fed =
      MakeFederation(PartitionSkewSample(all, participants, 0.7, prng));
  config.bundle_out = TempPath(name);
  CtflReport report = RunCtfl(fed, test, config).value();
  EXPECT_TRUE(report.bundle_status.ok()) << report.bundle_status;
  return Fixture{std::move(fed), std::move(test), std::move(report),
                 config.bundle_out};
}

TEST(QueryEngineTest, EvaluateReproducesOriginatingRunBitIdentically) {
  const Fixture fx = MakeFixture(FastConfig(), "qe_origin.ctflb");
  const Result<QueryEngine> engine = QueryEngine::Open(fx.bundle_path);
  ASSERT_TRUE(engine.ok()) << engine.status();
  EXPECT_EQ(engine->origin_tau_w(), 0.85);
  EXPECT_EQ(engine->origin_delta(), 1);

  const QueryReport report = engine->Evaluate();
  EXPECT_EQ(report.tau_w, 0.85);
  EXPECT_EQ(report.delta, 1);
  // Bit-identical, not approximately equal: the engine replays the exact
  // floating-point accumulation order of core/allocation.
  EXPECT_EQ(report.micro, fx.report.micro_scores);
  EXPECT_EQ(report.macro, fx.report.macro_scores);
  EXPECT_EQ(report.global_accuracy, fx.report.trace.global_accuracy);
  EXPECT_EQ(report.matched_accuracy, fx.report.trace.matched_accuracy);
  EXPECT_EQ(report.uncovered_tests, fx.report.trace.uncovered_tests);
  EXPECT_EQ(report.keys, fx.report.trace.num_keys);
}

TEST(QueryEngineTest, RelatedAgreesWithTracerOnEveryTestInstance) {
  const Fixture fx = MakeFixture(FastConfig(), "qe_related.ctflb");
  const QueryEngine engine = QueryEngine::Open(fx.bundle_path).value();

  int64_t pruned_total = 0;
  for (size_t t = 0; t < fx.test.size(); ++t) {
    const TestTrace& expected = fx.report.trace.tests[t];

    // Stored-test path (persisted activation + prediction).
    const RelatedResult stored = engine.RelatedForTest(t);
    EXPECT_EQ(stored.predicted, expected.predicted);
    EXPECT_EQ(stored.support_size, expected.support_size);
    EXPECT_EQ(stored.related_count, expected.related_count);
    EXPECT_EQ(stored.total_related, expected.total_related);
    pruned_total += stored.candidates_pruned;

    // Fresh-instance path (restored-model inference) and the linear
    // reference scan must agree with it everywhere.
    QueryOptions linear;
    linear.use_index = false;
    const RelatedResult fresh = engine.Related(fx.test.instance(t));
    const RelatedResult scan = engine.Related(fx.test.instance(t), linear);
    EXPECT_EQ(fresh.related_count, expected.related_count);
    EXPECT_EQ(scan.related_count, expected.related_count);
    EXPECT_EQ(scan.candidates_pruned, 0);
    EXPECT_GE(stored.postings_scanned, 0);
  }
  // The posting-list prefilter actually prunes on this workload.
  EXPECT_GT(pruned_total, 0);
}

TEST(QueryEngineTest, MaterializedRecordsAreExactlyTheRelatedSet) {
  const Fixture fx = MakeFixture(FastConfig(), "qe_records.ctflb");
  const QueryEngine engine = QueryEngine::Open(fx.bundle_path).value();

  for (size_t t = 0; t < fx.test.size(); ++t) {
    QueryOptions all;
    all.max_records = fx.fed.size() * 1000;
    const RelatedResult result = engine.RelatedForTest(t, all);
    ASSERT_EQ(result.records.size(), result.total_related);
    std::vector<int> counted(fx.fed.size(), 0);
    for (const RecordRef& ref : result.records) {
      ASSERT_GE(ref.participant, 0);
      ASSERT_LT(ref.participant, static_cast<int>(fx.fed.size()));
      ++counted[ref.participant];
      // Every materialized record really is related: its label matches the
      // prediction (Eq. 4 matches within the predicted class bucket).
      EXPECT_EQ(fx.fed[ref.participant].data.instance(ref.local_index).label,
                result.predicted);
    }
    EXPECT_EQ(counted, result.related_count);

    // Truncation keeps a prefix.
    QueryOptions few;
    few.max_records = 2;
    const RelatedResult truncated = engine.RelatedForTest(t, few);
    ASSERT_LE(truncated.records.size(), 2u);
    for (size_t i = 0; i < truncated.records.size(); ++i) {
      EXPECT_EQ(truncated.records[i].participant,
                result.records[i].participant);
      EXPECT_EQ(truncated.records[i].local_index,
                result.records[i].local_index);
    }
  }
}

TEST(QueryEngineTest, NewParametersMatchAFreshTracerRun) {
  const Fixture fx = MakeFixture(FastConfig(), "qe_params.ctflb");
  const QueryEngine engine = QueryEngine::Open(fx.bundle_path).value();

  EvalOptions eval;
  eval.tau_w = 0.7;
  eval.delta = 2;
  const QueryReport report = engine.Evaluate(eval);

  // Reference: retrace from scratch at the new parameters.
  CtflConfig config = FastConfig();
  config.tracer.tau_w = 0.7;
  const ContributionTracer tracer(&fx.report.model, &fx.fed, config.tracer);
  const TraceResult trace = tracer.Trace(fx.test);
  EXPECT_EQ(report.micro, MicroAllocation(trace));
  EXPECT_EQ(report.macro, MacroAllocation(trace, 2));

  for (size_t t = 0; t < fx.test.size(); ++t) {
    QueryOptions options;
    options.tau_w = 0.7;
    const RelatedResult related = engine.RelatedForTest(t, options);
    EXPECT_EQ(related.related_count, trace.tests[t].related_count);
  }
}

TEST(QueryEngineTest, PrecomputedActivationTracerReproducesTrace) {
  const Fixture fx = MakeFixture(FastConfig(), "qe_pretracer.ctflb");
  const BundleContent bundle = ReadBundle(fx.bundle_path).value();
  const LogicalNet model = RestoreModel(bundle).value();

  // Rehydrate the tracer from the bundle's persisted uploads — no
  // RuleActivations call on any training record.
  std::vector<std::vector<Bitset>> activations;
  activations.reserve(bundle.participants.size());
  for (const ParticipantRecords& records : bundle.participants) {
    activations.push_back(records.activations);
  }
  const ContributionTracer tracer(&model, &fx.fed, FastConfig().tracer,
                                  std::move(activations));
  EXPECT_EQ(tracer.train_activations().size(), fx.fed.size());
  const TraceResult trace = tracer.Trace(fx.test);

  EXPECT_EQ(MicroAllocation(trace), fx.report.micro_scores);
  EXPECT_EQ(MacroAllocation(trace, 1), fx.report.macro_scores);
  for (size_t t = 0; t < fx.test.size(); ++t) {
    EXPECT_EQ(trace.tests[t].related_count,
              fx.report.trace.tests[t].related_count);
  }
}

TEST(QueryEngineTest, SummariesMatchInterpretProfiles) {
  const Fixture fx = MakeFixture(FastConfig(), "qe_profiles.ctflb");
  const QueryEngine engine = QueryEngine::Open(fx.bundle_path).value();

  EvalOptions eval;
  eval.top_k = 3;
  const QueryReport report = engine.Evaluate(eval);
  const std::vector<ParticipantProfile> profiles =
      BuildProfiles(fx.report.trace, 3);

  ASSERT_EQ(report.participants.size(), profiles.size());
  for (size_t p = 0; p < profiles.size(); ++p) {
    const ParticipantSummary& summary = report.participants[p];
    EXPECT_EQ(summary.participant, profiles[p].participant);
    EXPECT_EQ(summary.data_size, profiles[p].data_size);
    EXPECT_EQ(summary.useless_ratio, profiles[p].useless_ratio);
    ASSERT_EQ(summary.beneficial.size(), profiles[p].beneficial.size());
    for (size_t i = 0; i < summary.beneficial.size(); ++i) {
      EXPECT_EQ(summary.beneficial[i].rule, profiles[p].beneficial[i].rule);
      EXPECT_EQ(summary.beneficial[i].frequency,
                profiles[p].beneficial[i].weighted_frequency);
      EXPECT_FALSE(summary.beneficial[i].text.empty());
    }
    ASSERT_EQ(summary.harmful.size(), profiles[p].harmful.size());
    for (size_t i = 0; i < summary.harmful.size(); ++i) {
      EXPECT_EQ(summary.harmful[i].rule, profiles[p].harmful[i].rule);
      EXPECT_EQ(summary.harmful[i].frequency,
                profiles[p].harmful[i].weighted_frequency);
    }
  }

  // Uncovered guidance agrees with the interpret module too.
  const CollectionGuidance guidance =
      GuideDataCollection(fx.report.trace, 3);
  EXPECT_EQ(report.uncovered_tests, guidance.uncovered_tests);
  ASSERT_EQ(report.uncovered_rules.size(), guidance.uncovered_rules.size());
  for (size_t i = 0; i < guidance.uncovered_rules.size(); ++i) {
    EXPECT_EQ(report.uncovered_rules[i].rule,
              guidance.uncovered_rules[i].rule);
    EXPECT_EQ(report.uncovered_rules[i].frequency,
              guidance.uncovered_rules[i].weighted_frequency);
  }
}

TEST(QueryEngineTest, DpPerturbedRunStillReproducesBitIdentically) {
  CtflConfig config = FastConfig();
  config.tracer.dp_epsilon = 1.0;  // heavy randomized-response noise
  const Fixture fx = MakeFixture(config, "qe_dp.ctflb");
  const QueryEngine engine = QueryEngine::Open(fx.bundle_path).value();
  EXPECT_EQ(engine.bundle().meta.dp_epsilon, 1.0);

  // The bundle persisted the *perturbed* uploads, so queries replay the
  // originating DP run exactly — no fresh noise draw involved.
  const QueryReport report = engine.Evaluate();
  EXPECT_EQ(report.micro, fx.report.micro_scores);
  EXPECT_EQ(report.macro, fx.report.macro_scores);
  for (size_t t = 0; t < fx.test.size(); ++t) {
    EXPECT_EQ(engine.RelatedForTest(t).related_count,
              fx.report.trace.tests[t].related_count);
  }
}

TEST(QueryEngineTest, OpenRejectsMissingAndRelatedForTestBounds) {
  EXPECT_FALSE(QueryEngine::Open(TempPath("qe_missing.ctflb")).ok());

  const Fixture fx = MakeFixture(FastConfig(), "qe_bounds.ctflb");
  const QueryEngine engine = QueryEngine::Open(fx.bundle_path).value();
  // FromContent over the same decoded bundle behaves identically.
  const Result<QueryEngine> from_content =
      QueryEngine::FromContent(ReadBundle(fx.bundle_path).value());
  ASSERT_TRUE(from_content.ok()) << from_content.status();
  EXPECT_EQ(from_content->Evaluate().micro, engine.Evaluate().micro);
}

}  // namespace
}  // namespace store
}  // namespace ctfl
