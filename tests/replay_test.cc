// Tests of the record/replay harness (src/ctfl/replay/): container codec
// strictness and the version-evolution contract (goldens under
// tests/data/), recorder/tap digest parity, the replay-events legs, and
// the differential regression matrix over a small in-process run —
// including the faulty-vs-clean fingerprint-divergence cell.
//
// Suite names start with "Replay" so the TSan CI job's regex picks every
// suite up.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ctfl/replay/recorder.h"
#include "ctfl/replay/replay_file.h"
#include "ctfl/replay/runner.h"
#include "ctfl/serve/protocol.h"
#include "ctfl/serve/service.h"
#include "ctfl/store/bundle.h"
#include "ctfl/store/query_engine.h"
#include "ctfl/util/cpu_features.h"
#include "ctfl/util/wire.h"

namespace ctfl {
namespace replay {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// A replay file with every field populated (no pipeline run needed).
ReplayFile SampleFile() {
  ReplayFile file;
  file.has_spec = true;
  file.spec.source = DataSource::kCsv;
  file.spec.dataset = "adult";
  file.spec.train_path = "train.csv";
  file.spec.test_path = "test.csv";
  file.spec.train_csv_digest = 0x1122334455667788ull;
  file.spec.test_csv_digest = 0x8877665544332211ull;
  file.spec.participants = 5;
  file.spec.alpha = 0.65;
  file.spec.skew_label = true;
  file.spec.seed = 99;
  file.spec.federated = true;
  file.spec.rounds = 3;
  file.spec.local_epochs = 1;
  file.spec.epochs = 11;
  file.spec.width = 32;
  file.spec.tau_w = 0.87;
  file.spec.secure_agg = true;
  file.spec.failure_plan = "dropout=0.3,seed=17";
  file.spec.retry_budget = 2;
  file.spec.trace_kernel = 0;
  file.spec.num_threads = 4;
  file.has_outcome = true;
  file.outcome.config_digest = 0xa1;
  file.outcome.schema_fingerprint = 0xb2;
  file.outcome.failure_plan_fingerprint = 0xc3;
  file.outcome.run_fingerprint = 0xd4;
  file.outcome.test_accuracy = 0.8125;
  file.outcome.micro = {0.25, 0.5, 0.25};
  file.outcome.macro = {0.2, 0.3, 0.5};
  file.outcome.score_digest = ScoreDigest(file.outcome.micro,
                                          file.outcome.macro);
  file.outcome.render_digest = 0xe5;
  serve::Request evaluate;
  evaluate.op = serve::Op::kEvaluate;
  evaluate.evaluate.options.tau_w = 0.8;
  serve::Request stats;
  stats.op = serve::Op::kStats;
  file.events = {
      {static_cast<uint8_t>(serve::Op::kEvaluate),
       EncodeRequest(evaluate), 0x1111},
      {static_cast<uint8_t>(serve::Op::kStats), EncodeRequest(stats), 0},
  };
  return file;
}

void ExpectFilesEqual(const ReplayFile& a, const ReplayFile& b) {
  // Field-level spot checks plus the authoritative byte-level identity.
  EXPECT_EQ(a.version, b.version);
  EXPECT_EQ(a.has_spec, b.has_spec);
  EXPECT_EQ(a.spec.failure_plan, b.spec.failure_plan);
  EXPECT_EQ(a.spec.num_threads, b.spec.num_threads);
  EXPECT_EQ(a.has_outcome, b.has_outcome);
  EXPECT_EQ(a.outcome.micro, b.outcome.micro);
  EXPECT_EQ(a.outcome.macro, b.outcome.macro);
  EXPECT_EQ(a.events.size(), b.events.size());
  EXPECT_EQ(EncodeReplay(a), EncodeReplay(b));
}

// ---------------------------------------------------------------------------
// Container codec.
// ---------------------------------------------------------------------------

TEST(ReplayFileTest, RoundTripIsByteIdentical) {
  const ReplayFile file = SampleFile();
  const std::string bytes = EncodeReplay(file);
  Result<ReplayFile> decoded = DecodeReplay(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ExpectFilesEqual(file, *decoded);
  // serialize -> parse -> serialize is the identity.
  EXPECT_EQ(EncodeReplay(*decoded), bytes);
}

TEST(ReplayFileTest, EmptyFileRoundTrips) {
  ReplayFile file;  // no spec, no outcome, no events
  Result<ReplayFile> decoded = DecodeReplay(EncodeReplay(file));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_FALSE(decoded->has_spec);
  EXPECT_FALSE(decoded->has_outcome);
  EXPECT_TRUE(decoded->events.empty());
}

TEST(ReplayFileTest, FutureVersionRejectedWithClearMessage) {
  std::string bytes = EncodeReplay(SampleFile());
  // Version is the u32 straight after the 8-byte magic.
  const uint32_t future = kReplayVersion + 1;
  std::memcpy(&bytes[8], &future, sizeof(future));
  Result<ReplayFile> decoded = DecodeReplay(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("newer"), std::string::npos)
      << decoded.status();
}

TEST(ReplayFileTest, UnknownTrailingSectionIgnored) {
  const ReplayFile file = SampleFile();
  std::string bytes = EncodeReplay(file);
  // Splice in a section a future writer might add: bump section_count
  // (the u32 at offset 12) and append { name | payload | crc }.
  uint32_t count = 0;
  std::memcpy(&count, &bytes[12], sizeof(count));
  ++count;
  std::memcpy(&bytes[12], &count, sizeof(count));
  wire::Writer extra;
  extra.Str("future-section");
  const std::string payload = "payload this reader cannot know about";
  extra.Str(payload);
  extra.U32(store::Crc32(payload.data(), payload.size()));
  bytes += std::move(extra).Take();

  Result<ReplayFile> decoded = DecodeReplay(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ExpectFilesEqual(file, *decoded);
}

TEST(ReplayFileTest, CrcCorruptionRejected) {
  std::string bytes = EncodeReplay(SampleFile());
  // Flip one byte well inside the first section's payload (past the
  // 16-byte header and the section name).
  bytes[40] = static_cast<char>(bytes[40] ^ 0x5a);
  Result<ReplayFile> decoded = DecodeReplay(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("CRC"), std::string::npos)
      << decoded.status();
}

TEST(ReplayFileTest, BadMagicAndTruncationRejected) {
  const std::string bytes = EncodeReplay(SampleFile());
  std::string wrong_magic = bytes;
  wrong_magic[0] = 'X';
  EXPECT_FALSE(DecodeReplay(wrong_magic).ok());
  // Every proper prefix must fail — never decode half a file.
  for (size_t len : {size_t{0}, size_t{4}, size_t{8}, size_t{15},
                     bytes.size() / 2, bytes.size() - 1}) {
    EXPECT_FALSE(DecodeReplay(std::string_view(bytes.data(), len)).ok())
        << "prefix of " << len << " bytes decoded";
  }
}

TEST(ReplayFileTest, WriteReadRoundTripsOnDisk) {
  const ReplayFile file = SampleFile();
  const std::string path = TempPath("roundtrip.ctflr");
  ASSERT_TRUE(WriteReplayFile(file, path).ok());
  Result<ReplayFile> read = ReadReplayFile(path);
  ASSERT_TRUE(read.ok()) << read.status();
  ExpectFilesEqual(file, *read);
}

TEST(ReplayFileTest, DigestStableOps) {
  EXPECT_TRUE(OpIsDigestStable(static_cast<uint8_t>(serve::Op::kRelated)));
  EXPECT_TRUE(
      OpIsDigestStable(static_cast<uint8_t>(serve::Op::kRelatedForTest)));
  EXPECT_TRUE(OpIsDigestStable(static_cast<uint8_t>(serve::Op::kEvaluate)));
  EXPECT_FALSE(OpIsDigestStable(static_cast<uint8_t>(serve::Op::kStats)));
  EXPECT_FALSE(OpIsDigestStable(static_cast<uint8_t>(serve::Op::kShutdown)));
}

// ---------------------------------------------------------------------------
// Goldens: committed files pin the on-disk format across releases.
// ---------------------------------------------------------------------------

std::string GoldenPath(const std::string& name) {
  return std::string(CTFL_TEST_DATA_DIR) + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden " << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

TEST(ReplayGoldenTest, V1GoldenParsesAndReserializesIdentically) {
  const std::string bytes = ReadFileBytes(GoldenPath("golden_replay_v1.ctflr"));
  ASSERT_FALSE(bytes.empty());
  Result<ReplayFile> decoded = DecodeReplay(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->version, kReplayVersion);
  EXPECT_TRUE(decoded->has_spec);
  EXPECT_TRUE(decoded->has_outcome);
  EXPECT_FALSE(decoded->events.empty());
  // A current writer reproduces the golden byte-for-byte.
  EXPECT_EQ(EncodeReplay(*decoded), bytes);
}

TEST(ReplayGoldenTest, TrailingSectionGoldenIgnored) {
  // Same file as the v1 golden plus an unknown trailing section: a
  // future writer's output must load cleanly on this reader.
  const std::string v1 = ReadFileBytes(GoldenPath("golden_replay_v1.ctflr"));
  const std::string trailing =
      ReadFileBytes(GoldenPath("golden_replay_trailing.ctflr"));
  ASSERT_FALSE(trailing.empty());
  Result<ReplayFile> decoded = DecodeReplay(trailing);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  Result<ReplayFile> base = DecodeReplay(v1);
  ASSERT_TRUE(base.ok()) << base.status();
  ExpectFilesEqual(*base, *decoded);
}

TEST(ReplayGoldenTest, FutureVersionGoldenRejected) {
  const std::string bytes =
      ReadFileBytes(GoldenPath("golden_replay_future.ctflr"));
  ASSERT_FALSE(bytes.empty());
  Result<ReplayFile> decoded = DecodeReplay(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("newer"), std::string::npos)
      << decoded.status();
}

// ---------------------------------------------------------------------------
// Recorder + replay legs over a real (small) run.
// ---------------------------------------------------------------------------

/// Small self-contained run: regenerated benchmark data, central
/// training, two epochs — fast enough to re-execute several times in the
/// matrix test.
RunSpec SmallSpec() {
  RunSpec spec;
  spec.source = DataSource::kGenerate;
  spec.dataset = "adult";
  spec.train_n = 120;
  spec.train_seed = 7;
  spec.test_n = 40;
  spec.test_seed = 8;
  spec.participants = 3;
  spec.alpha = 0.8;
  spec.seed = 42;
  spec.federated = false;
  spec.epochs = 2;
  spec.width = 8;
  spec.tau_w = 0.9;
  return spec;
}

RunSpec FaultySpec() {
  RunSpec spec = SmallSpec();
  spec.federated = true;
  spec.rounds = 2;
  spec.local_epochs = 1;
  spec.secure_agg = true;
  spec.failure_plan = "dropout=0.3,seed=17";
  return spec;
}

TEST(ReplayRunnerTest, ExecuteRunSpecIsReproducible) {
  const RunSpec spec = SmallSpec();
  Result<RunArtifacts> a = ExecuteRunSpec(spec);
  ASSERT_TRUE(a.ok()) << a.status();
  Result<RunArtifacts> b = ExecuteRunSpec(spec);
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_TRUE(CompareOutcomes(a->outcome, b->outcome).ok());
  EXPECT_EQ(a->score_table, b->score_table);
  EXPECT_EQ(a->outcome.render_digest, HashBytes(a->score_table));
}

TEST(ReplayRunnerTest, KernelFlipAndThreadsAreBitIdentical) {
  const RunSpec spec = SmallSpec();
  Result<RunArtifacts> base = ExecuteRunSpec(spec);
  ASSERT_TRUE(base.ok()) << base.status();

  RunOverrides legacy;
  legacy.kernel = 0;  // TraceKernelKind::kLegacy
  Result<RunArtifacts> flipped = ExecuteRunSpec(spec, legacy);
  ASSERT_TRUE(flipped.ok()) << flipped.status();
  const Status kernel_match = CompareOutcomes(base->outcome, flipped->outcome);
  EXPECT_TRUE(kernel_match.ok()) << kernel_match;

  RunOverrides threads;
  threads.num_threads = 2;
  Result<RunArtifacts> parallel = ExecuteRunSpec(spec, threads);
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  const Status thread_match =
      CompareOutcomes(base->outcome, parallel->outcome);
  EXPECT_TRUE(thread_match.ok()) << thread_match;
}

TEST(ReplayRunnerTest, CompareOutcomesNamesTheDivergentField) {
  RunOutcome want;
  want.run_fingerprint = 1;
  RunOutcome got = want;
  EXPECT_TRUE(CompareOutcomes(want, got).ok());
  got.run_fingerprint = 2;
  const Status diverged = CompareOutcomes(want, got);
  ASSERT_FALSE(diverged.ok());
  EXPECT_NE(diverged.message().find("run_fingerprint"), std::string::npos)
      << diverged;
}

TEST(ReplayRunnerTest, CsvDigestMismatchFailsLoudly) {
  const std::string path = TempPath("edited.csv");
  { std::ofstream(path) << "not,the,recorded,bytes\n"; }
  RunSpec spec = SmallSpec();
  spec.source = DataSource::kCsv;
  spec.train_path = path;
  spec.test_path = path;
  spec.train_csv_digest = 0xdeadbeef;  // anything but the real digest
  spec.test_csv_digest = 0xdeadbeef;
  Result<RunArtifacts> run = ExecuteRunSpec(spec);
  ASSERT_FALSE(run.ok());
  EXPECT_NE(run.status().message().find("changed since recording"),
            std::string::npos)
      << run.status();
}

TEST(ReplayRecorderTest, TapMatchesEngineDirectRecording) {
  RunSpec spec = SmallSpec();
  RunOverrides with_bundle;
  with_bundle.bundle_out = TempPath("recorder_parity.ctflb");
  Result<RunArtifacts> run = ExecuteRunSpec(spec, with_bundle);
  ASSERT_TRUE(run.ok()) << run.status();

  Result<store::QueryEngine> engine =
      store::QueryEngine::Open(with_bundle.bundle_out);
  ASSERT_TRUE(engine.ok()) << engine.status();

  // One recorder captures through the service tap, the other through the
  // engine-direct helpers the CLI uses; the same queries must land with
  // identical request bytes and response digests.
  ReplayRecorder tapped;
  serve::ServiceConfig config;
  config.request_tap = tapped.Tap();
  Result<store::QueryEngine> engine2 =
      store::QueryEngine::Open(with_bundle.bundle_out);
  ASSERT_TRUE(engine2.ok()) << engine2.status();
  serve::QueryService service(std::move(*engine2), config);

  ReplayRecorder direct;
  store::EvalOptions eval;
  eval.tau_w = 0.85;
  store::QueryOptions options;
  options.max_records = 3;

  serve::Request evaluate;
  evaluate.op = serve::Op::kEvaluate;
  evaluate.evaluate.options = eval;
  service.Handle(evaluate);
  direct.RecordEvaluate(*engine, eval);

  serve::Request related_test;
  related_test.op = serve::Op::kRelatedForTest;
  related_test.related_for_test.test_index = 1;
  related_test.related_for_test.options = options;
  service.Handle(related_test);
  direct.RecordRelatedForTest(*engine, 1, options);

  serve::Request related;
  related.op = serve::Op::kRelated;
  related.related.instance = run->test.instance(0);
  related.related.options = options;
  service.Handle(related);
  direct.RecordRelated(*engine, run->test.instance(0), options);

  const ReplayFile a = tapped.Snapshot();
  const ReplayFile b = direct.Snapshot();
  ASSERT_EQ(a.events.size(), 3u);
  ASSERT_EQ(b.events.size(), 3u);
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].op, b.events[i].op) << "event " << i;
    EXPECT_EQ(a.events[i].response_digest, b.events[i].response_digest)
        << "event " << i;
  }
}

TEST(ReplayRecorderTest, ConcurrentTapCapturesEveryRequest) {
  RunSpec spec = SmallSpec();
  RunOverrides with_bundle;
  with_bundle.bundle_out = TempPath("recorder_concurrent.ctflb");
  Result<RunArtifacts> run = ExecuteRunSpec(spec, with_bundle);
  ASSERT_TRUE(run.ok()) << run.status();

  ReplayRecorder recorder;
  serve::ServiceConfig config;
  config.request_tap = recorder.Tap();
  Result<store::QueryEngine> engine =
      store::QueryEngine::Open(with_bundle.bundle_out);
  ASSERT_TRUE(engine.ok()) << engine.status();
  serve::QueryService service(std::move(*engine), config);

  constexpr int kThreads = 4;
  constexpr int kRequests = 25;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&service, t] {
      for (int i = 0; i < kRequests; ++i) {
        serve::Request request;
        request.op = serve::Op::kRelatedForTest;
        request.related_for_test.test_index =
            static_cast<uint64_t>((t * kRequests + i) % 8);
        service.Handle(request);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(recorder.num_events(),
            static_cast<size_t>(kThreads * kRequests));
}

TEST(ReplayRunnerTest, EventLegsReplayDigestForDigest) {
  RunSpec spec = SmallSpec();
  RunOverrides with_bundle;
  with_bundle.bundle_out = TempPath("event_legs.ctflb");
  Result<RunArtifacts> run = ExecuteRunSpec(spec, with_bundle);
  ASSERT_TRUE(run.ok()) << run.status();

  Result<store::QueryEngine> engine =
      store::QueryEngine::Open(with_bundle.bundle_out);
  ASSERT_TRUE(engine.ok()) << engine.status();
  ReplayRecorder recorder;
  store::EvalOptions eval;
  recorder.RecordEvaluate(*engine, eval);
  store::QueryOptions options;
  options.max_records = 2;
  recorder.RecordRelatedForTest(*engine, 0, options);
  recorder.RecordRelatedForTest(*engine, 2, options);
  recorder.RecordRelated(*engine, run->test.instance(1), options);
  const ReplayFile file = recorder.Snapshot();

  // Streamed-batch leg: one warm service.
  Result<store::QueryEngine> engine2 =
      store::QueryEngine::Open(with_bundle.bundle_out);
  ASSERT_TRUE(engine2.ok()) << engine2.status();
  serve::QueryService service(std::move(*engine2));
  Result<EventReplayResult> batch =
      ReplayEventsThroughService(file.events, service);
  ASSERT_TRUE(batch.ok()) << batch.status();
  EXPECT_EQ(batch->replayed, 4u);
  EXPECT_EQ(batch->digest_checked, 4u);
  EXPECT_EQ(batch->mismatches, 0u) << batch->detail;

  // One-shot leg: a cold service per event.
  Result<EventReplayResult> oneshot =
      ReplayEventsOneShot(file.events, with_bundle.bundle_out);
  ASSERT_TRUE(oneshot.ok()) << oneshot.status();
  EXPECT_EQ(oneshot->replayed, 4u);
  EXPECT_EQ(oneshot->mismatches, 0u) << oneshot->detail;

  // A tampered digest must be caught, not absorbed.
  ReplayFile tampered = file;
  tampered.events[1].response_digest ^= 1;
  Result<store::QueryEngine> engine3 =
      store::QueryEngine::Open(with_bundle.bundle_out);
  ASSERT_TRUE(engine3.ok()) << engine3.status();
  serve::QueryService service3(std::move(*engine3));
  Result<EventReplayResult> caught =
      ReplayEventsThroughService(tampered.events, service3);
  ASSERT_TRUE(caught.ok()) << caught.status();
  EXPECT_EQ(caught->mismatches, 1u);
  EXPECT_FALSE(caught->detail.empty());
}

// ---------------------------------------------------------------------------
// Differential matrix.
// ---------------------------------------------------------------------------

TEST(ReplayMatrixTest, FaultyMatrixPassesIncludingCleanDivergence) {
  const RunSpec spec = FaultySpec();
  Result<RunArtifacts> base = ExecuteRunSpec(spec);
  ASSERT_TRUE(base.ok()) << base.status();
  ASSERT_NE(base->outcome.failure_plan_fingerprint, 0u);

  ReplayFile file;
  file.has_spec = true;
  file.spec = spec;
  file.has_outcome = true;
  file.outcome = base->outcome;

  const std::vector<MatrixCell> cells = GenerateMatrix(file);
  std::vector<std::string> names;
  names.reserve(cells.size());
  for (const MatrixCell& cell : cells) names.push_back(cell.name);
  // The isa cells depend on the machine: forced-scalar always, plus the
  // best available SIMD tier when the CPU has one.
  std::vector<std::string> want{"base_replay", "kernel_legacy",
                                "isa_scalar"};
  const TraceIsa best = BestAvailableTraceIsa();
  if (best != TraceIsa::kScalar) {
    want.push_back(std::string("isa_") + TraceIsaName(best));
  }
  // FaultySpec is federated, so the streamed delta-log cell joins in.
  want.insert(want.end(),
              {"threads_1", "threads_2", "threads_8", "clean", "streamed"});
  EXPECT_EQ(names, want);

  MatrixOptions options;
  options.scratch_dir = ::testing::TempDir();
  Result<std::vector<CellResult>> results = RunMatrix(file, options);
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_EQ(results->size(), cells.size());
  for (const CellResult& result : *results) {
    EXPECT_TRUE(result.pass) << result.name << ": " << result.detail;
  }
}

TEST(ReplayMatrixTest, TamperedOutcomeFailsEveryRunCell) {
  const RunSpec spec = SmallSpec();
  Result<RunArtifacts> base = ExecuteRunSpec(spec);
  ASSERT_TRUE(base.ok()) << base.status();

  ReplayFile file;
  file.has_spec = true;
  file.spec = spec;
  file.has_outcome = true;
  file.outcome = base->outcome;
  file.outcome.score_digest ^= 1;  // recorded outcome no longer matches

  MatrixOptions options;
  options.scratch_dir = ::testing::TempDir();
  options.only_cell = "base_replay";
  Result<std::vector<CellResult>> results = RunMatrix(file, options);
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_EQ(results->size(), 1u);
  EXPECT_FALSE((*results)[0].pass);
  EXPECT_NE((*results)[0].detail.find("score_digest"), std::string::npos)
      << (*results)[0].detail;
}

TEST(ReplayMatrixTest, QueryCellsIncludedWhenEventsPresent) {
  ReplayFile file = SampleFile();  // spec + outcome + events, no execution
  const std::vector<MatrixCell> cells = GenerateMatrix(file);
  std::vector<std::string> names;
  for (const MatrixCell& cell : cells) names.push_back(cell.name);
  EXPECT_NE(std::find(names.begin(), names.end(), "queries_batch"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "queries_oneshot"),
            names.end());
  // Events alone (a `ctfl_serve --record` capture) build no run cells.
  file.has_spec = false;
  file.has_outcome = false;
  EXPECT_TRUE(GenerateMatrix(file).empty());
}

}  // namespace
}  // namespace replay
}  // namespace ctfl
