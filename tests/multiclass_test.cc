#include "ctfl/multiclass/ovr.h"

#include <numeric>

#include <gtest/gtest.h>

#include "ctfl/util/rng.h"

namespace ctfl {
namespace {

SchemaPtr MakeSchema() {
  return std::make_shared<FeatureSchema>(
      std::vector<FeatureSpec>{FeatureSchema::Continuous("x", 0, 3)},
      "rest", "target");
}

// 3-class task: class = floor(x), x in [0, 3).
Instance Make(double x) {
  Instance inst;
  inst.values = {x};
  inst.label = static_cast<int>(x);
  return inst;
}

McDataset MakeData(size_t n, uint64_t seed) {
  McDataset data(MakeSchema(), 3);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(data.Append(Make(rng.Uniform(0.0, 3.0))).ok());
  }
  return data;
}

OneVsRestModel::Config SmallConfig() {
  OneVsRestModel::Config config;
  config.net.logic_layers = {{8, 8}};
  config.net.seed = 4;
  config.train.epochs = 20;
  config.train.learning_rate = 0.05;
  return config;
}

TEST(McDatasetTest, AppendValidatesLabelRange) {
  McDataset data(MakeSchema(), 3);
  Instance good = Make(1.5);
  EXPECT_TRUE(data.Append(good).ok());
  Instance bad = Make(0.5);
  bad.label = 3;
  EXPECT_FALSE(data.Append(bad).ok());
  bad.label = -1;
  EXPECT_FALSE(data.Append(bad).ok());
  Instance wrong_width;
  wrong_width.values = {1.0, 2.0};
  EXPECT_FALSE(data.Append(wrong_width).ok());
}

TEST(McDatasetTest, ClassCountsAndBinaryView) {
  McDataset data(MakeSchema(), 3);
  for (double x : {0.5, 1.5, 1.6, 2.5, 2.6, 2.7}) {
    ASSERT_TRUE(data.Append(Make(x)).ok());
  }
  const auto counts = data.ClassCounts();
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 3u);

  const Dataset view = data.BinaryView(1);
  ASSERT_EQ(view.size(), 6u);
  EXPECT_EQ(view.instance(0).label, 0);
  EXPECT_EQ(view.instance(1).label, 1);
  EXPECT_EQ(view.instance(2).label, 1);
  EXPECT_EQ(view.instance(3).label, 0);
  // Features untouched.
  EXPECT_DOUBLE_EQ(view.instance(0).values[0], 0.5);
}

TEST(OneVsRestTest, LearnsThreeClassTask) {
  const McDataset train = MakeData(900, 1);
  const McDataset test = MakeData(300, 2);
  const OneVsRestModel model = OneVsRestModel::Train(train, SmallConfig());
  EXPECT_EQ(model.num_classes(), 3);
  EXPECT_GT(model.Accuracy(test), 0.85);
}

TEST(OneVsRestTest, PredictReturnsValidClass) {
  const McDataset train = MakeData(200, 3);
  const OneVsRestModel model = OneVsRestModel::Train(train, SmallConfig());
  Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    const int pred = model.Predict(Make(rng.Uniform(0.0, 3.0)));
    EXPECT_GE(pred, 0);
    EXPECT_LT(pred, 3);
  }
}

CtflConfig FastCtfl() {
  CtflConfig config;
  config.federated = false;
  config.central.epochs = 15;
  config.central.learning_rate = 0.05;
  config.net.logic_layers = {{8, 8}};
  config.net.seed = 7;
  config.tracer.tau_w = 0.85;
  return config;
}

TEST(McCtflTest, ClassSpecialistEarnsItsClassCredit) {
  // P0: classes 0/1 only. P1: class 2 only (the specialist).
  McDataset p0(MakeSchema(), 3), p1(MakeSchema(), 3);
  Rng rng(5);
  while (p0.size() < 600) {
    const double x = rng.Uniform(0.0, 3.0);
    if (x < 2.0) {
      ASSERT_TRUE(p0.Append(Make(x)).ok());
    }
  }
  while (p1.size() < 300) {
    const double x = rng.Uniform(0.0, 3.0);
    if (x >= 2.0) {
      ASSERT_TRUE(p1.Append(Make(x)).ok());
    }
  }
  const McDataset test = MakeData(300, 6);

  const McCtflReport report = RunMcCtfl({p0, p1}, test, FastCtfl()).value();
  ASSERT_EQ(report.micro_scores.size(), 2u);
  ASSERT_EQ(report.per_class_micro.size(), 3u);
  // The class-2 one-vs-rest positive credit should favor the specialist.
  EXPECT_GT(report.per_class_micro[2][1], 0.0);
  // Both participants earn nonzero combined credit.
  EXPECT_GT(report.micro_scores[0], 0.0);
  EXPECT_GT(report.micro_scores[1], 0.0);
  // Class weights reflect the test distribution and sum to 1.
  const double weight_total = std::accumulate(
      report.class_weights.begin(), report.class_weights.end(), 0.0);
  EXPECT_NEAR(weight_total, 1.0, 1e-9);
}

TEST(McCtflTest, SymmetryAcrossIdenticalParticipants) {
  McDataset shared(MakeSchema(), 3);
  Rng rng(8);
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(shared.Append(Make(rng.Uniform(0.0, 3.0))).ok());
  }
  const McDataset test = MakeData(200, 9);
  const McCtflReport report =
      RunMcCtfl({shared, shared}, test, FastCtfl()).value();
  EXPECT_NEAR(report.micro_scores[0], report.micro_scores[1], 1e-9);
  EXPECT_NEAR(report.macro_scores[0], report.macro_scores[1], 1e-9);
}

}  // namespace
}  // namespace ctfl
