// Verifies the four theoretical properties of CTFL (paper §III-D):
// group rationality, symmetry, zero element, and additivity.

#include <numeric>

#include <gtest/gtest.h>

#include "ctfl/core/pipeline.h"
#include "ctfl/data/gen/synthetic.h"
#include "ctfl/fl/partition.h"

namespace ctfl {
namespace {

SyntheticSpec Spec() {
  SyntheticSpec spec;
  spec.schema = std::make_shared<FeatureSchema>(
      std::vector<FeatureSpec>{
          FeatureSchema::Continuous("x", 0, 1),
          FeatureSchema::Discrete("d", {"u", "v"}),
      },
      "neg", "pos");
  spec.samplers = {
      FeatureSampler{FeatureSampler::Kind::kUniform, 0, 0, {}},
      FeatureSampler{FeatureSampler::Kind::kCategorical, 0, 0, {}}};
  spec.rules = {{{{0, GtPredicate::Op::kGt, 0.55}}, 1, 1.0},
                {{{0, GtPredicate::Op::kLt, 0.45}}, 0, 1.0},
                {{{1, GtPredicate::Op::kEq, 1},
                  {0, GtPredicate::Op::kGt, 0.3}},
                 1,
                 0.3}};
  spec.label_noise = 0.03;
  return spec;
}

CtflConfig FastConfig(uint64_t seed) {
  CtflConfig config;
  config.federated = false;
  config.central.epochs = 15;
  config.central.learning_rate = 0.05;
  config.net.logic_layers = {{12, 12}};
  config.net.seed = seed;
  config.tracer.tau_w = 0.85;
  config.tracer.num_threads = 2;
  return config;
}

class PropertySweep : public ::testing::TestWithParam<uint64_t> {};

// Group rationality: sum of micro scores equals the matched accuracy (and
// equals the global accuracy exactly when every correct test has related
// training data).
TEST_P(PropertySweep, GroupRationality) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  const SyntheticSpec spec = Spec();
  const Dataset all = GenerateSynthetic(spec, 700, rng);
  const Dataset test = GenerateSynthetic(spec, 200, rng);
  Rng prng(seed + 1);
  const Federation fed =
      MakeFederation(PartitionSkewLabel(all, 4, 0.8, prng));
  const CtflReport report = RunCtfl(fed, test, FastConfig(seed)).value();

  const double micro_total = std::accumulate(
      report.micro_scores.begin(), report.micro_scores.end(), 0.0);
  EXPECT_NEAR(micro_total, report.trace.matched_accuracy, 1e-9);
  const double macro_total = std::accumulate(
      report.macro_scores.begin(), report.macro_scores.end(), 0.0);
  EXPECT_NEAR(macro_total, report.trace.matched_accuracy, 1e-9);
  // Matched accuracy is a tight lower bound of model accuracy here.
  EXPECT_LE(micro_total, report.trace.global_accuracy + 1e-12);
  EXPECT_GT(micro_total, report.trace.global_accuracy - 0.2);
}

// Symmetry: two participants holding identical data receive identical
// scores.
TEST_P(PropertySweep, Symmetry) {
  const uint64_t seed = GetParam();
  Rng rng(seed + 10);
  const SyntheticSpec spec = Spec();
  const Dataset shared = GenerateSynthetic(spec, 250, rng);
  const Dataset other = GenerateSynthetic(spec, 250, rng);
  const Dataset test = GenerateSynthetic(spec, 150, rng);
  // Participants 0 and 1 are byte-identical; 2 differs.
  const Federation fed = MakeFederation({shared, shared, other});
  const CtflReport report = RunCtfl(fed, test, FastConfig(seed)).value();
  EXPECT_NEAR(report.micro_scores[0], report.micro_scores[1], 1e-9);
  EXPECT_NEAR(report.macro_scores[0], report.macro_scores[1], 1e-9);
}

// Zero element: a participant with no data earns exactly zero.
TEST_P(PropertySweep, ZeroElement) {
  const uint64_t seed = GetParam();
  Rng rng(seed + 20);
  const SyntheticSpec spec = Spec();
  const Dataset data = GenerateSynthetic(spec, 400, rng);
  const Dataset test = GenerateSynthetic(spec, 100, rng);
  Rng prng(seed + 21);
  std::vector<Dataset> clients = PartitionUniform(data, 2, prng);
  clients.emplace_back(spec.schema);  // empty participant
  const Federation fed = MakeFederation(std::move(clients));
  const CtflReport report = RunCtfl(fed, test, FastConfig(seed)).value();
  EXPECT_DOUBLE_EQ(report.micro_scores[2], 0.0);
  EXPECT_DOUBLE_EQ(report.macro_scores[2], 0.0);
}

// Additivity: with utility metrics u, v given by two test sets, the score
// under the combined metric equals the test-size-weighted sum of the
// per-metric scores (all from the same trained model, as in the paper's
// single-pass setting).
TEST_P(PropertySweep, Additivity) {
  const uint64_t seed = GetParam();
  Rng rng(seed + 30);
  const SyntheticSpec spec = Spec();
  const Dataset all = GenerateSynthetic(spec, 600, rng);
  const Dataset test_u = GenerateSynthetic(spec, 120, rng);
  const Dataset test_v = GenerateSynthetic(spec, 80, rng);
  Dataset test_uv = test_u;
  test_uv.Merge(test_v);
  Rng prng(seed + 31);
  const Federation fed = MakeFederation(PartitionUniform(all, 3, prng));

  const CtflConfig config = FastConfig(seed);
  // One model; three tracing passes — exactly CTFL's additivity setting.
  std::vector<Dataset> clients;
  for (const Participant& p : fed) clients.push_back(p.data);
  const LogicalNet model =
      TrainCentral(spec.schema, config.net, MergeFederation(fed),
                   config.central);
  const ContributionTracer tracer(&model, &fed, config.tracer);
  const std::vector<double> phi_u = MicroAllocation(tracer.Trace(test_u));
  const std::vector<double> phi_v = MicroAllocation(tracer.Trace(test_v));
  const std::vector<double> phi_uv = MicroAllocation(tracer.Trace(test_uv));

  const double wu = static_cast<double>(test_u.size()) / test_uv.size();
  const double wv = static_cast<double>(test_v.size()) / test_uv.size();
  for (size_t p = 0; p < phi_uv.size(); ++p) {
    EXPECT_NEAR(phi_uv[p], wu * phi_u[p] + wv * phi_v[p], 1e-9)
        << "participant " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySweep,
                         ::testing::Values(100, 200, 300));

}  // namespace
}  // namespace ctfl
