#include "ctfl/nn/serialize.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "ctfl/data/gen/synthetic.h"
#include "ctfl/nn/trainer.h"
#include "ctfl/rules/extraction.h"

namespace ctfl {
namespace {

SchemaPtr MakeSchema() {
  return std::make_shared<FeatureSchema>(
      std::vector<FeatureSpec>{
          FeatureSchema::Continuous("x", 0, 1),
          FeatureSchema::Discrete("c", {"a", "b"}),
      },
      "neg", "pos");
}

Dataset RandomData(const SchemaPtr& schema, size_t n, uint64_t seed) {
  Dataset d(schema);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    Instance inst;
    inst.values = {rng.Uniform(), static_cast<double>(rng.UniformInt(2))};
    inst.label = inst.values[0] > 0.5 ? 1 : 0;
    d.AppendUnchecked(std::move(inst));
  }
  return d;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(SerializeTest, RoundTripPreservesModel) {
  const SchemaPtr schema = MakeSchema();
  LogicalNetConfig config;
  config.tau_d = 4;
  config.logic_layers = {{6, 6}, {3, 3}};
  config.fan_in = 2;
  config.seed = 9;
  LogicalNet net(schema, config);
  const Dataset train = RandomData(schema, 200, 1);
  TrainConfig tc;
  tc.epochs = 8;
  TrainGrafted(net, train, tc);

  const std::string path = TempPath("model_roundtrip.txt");
  ASSERT_TRUE(SaveLogicalNet(net, path).ok());
  const Result<LogicalNet> loaded = LoadLogicalNet(schema, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  EXPECT_EQ(loaded->GetParameters(), net.GetParameters());
  EXPECT_EQ(loaded->num_rules(), net.num_rules());
  // Behavioral equality on fresh data.
  const Dataset probe = RandomData(schema, 100, 2);
  for (const Instance& inst : probe.instances()) {
    EXPECT_EQ(loaded->Predict(inst), net.Predict(inst));
    EXPECT_EQ(loaded->RuleActivations(inst), net.RuleActivations(inst));
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadRejectsWrongSchema) {
  const SchemaPtr schema = MakeSchema();
  LogicalNetConfig config;
  config.tau_d = 4;
  config.logic_layers = {{4, 4}};
  LogicalNet net(schema, config);
  const std::string path = TempPath("model_wrong_schema.txt");
  ASSERT_TRUE(SaveLogicalNet(net, path).ok());

  // A schema with a different encoded width cannot host these params.
  const SchemaPtr other = std::make_shared<FeatureSchema>(
      std::vector<FeatureSpec>{FeatureSchema::Continuous("x", 0, 1)}, "n",
      "p");
  EXPECT_FALSE(LoadLogicalNet(other, path).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadRejectsFingerprintMismatchOfSameWidthSchema) {
  const SchemaPtr schema = MakeSchema();
  LogicalNetConfig config;
  config.tau_d = 4;
  config.logic_layers = {{4, 4}};
  LogicalNet net(schema, config);
  const std::string path = TempPath("model_fingerprint.txt");
  ASSERT_TRUE(SaveLogicalNet(net, path).ok());

  // Same encoded width (param count matches), different feature name: only
  // the v2 fingerprint can catch the swap.
  const SchemaPtr renamed = std::make_shared<FeatureSchema>(
      std::vector<FeatureSpec>{
          FeatureSchema::Continuous("y", 0, 1),
          FeatureSchema::Discrete("c", {"a", "b"}),
      },
      "neg", "pos");
  const Result<LogicalNet> loaded = LoadLogicalNet(renamed, path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("fingerprint"),
            std::string::npos)
      << loaded.status();
  // The original schema still loads.
  EXPECT_TRUE(LoadLogicalNet(schema, path).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadAcceptsVersion1FilesWithoutFingerprint) {
  const SchemaPtr schema = MakeSchema();
  LogicalNetConfig config;
  config.tau_d = 4;
  config.logic_layers = {{4, 4}};
  config.seed = 11;
  LogicalNet net(schema, config);
  const std::string path = TempPath("model_v1.txt");
  ASSERT_TRUE(SaveLogicalNet(net, path).ok());

  // Downgrade the file to the v1 format: old header, no fingerprint line.
  std::string contents;
  {
    std::ifstream in(path);
    contents.assign((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  }
  ASSERT_NE(contents.find("ctfl-model 2\n"), std::string::npos);
  contents.replace(contents.find("ctfl-model 2\n"),
                   std::string("ctfl-model 2\n").size(), "ctfl-model 1\n");
  const size_t fp_begin = contents.find("schema_fingerprint");
  ASSERT_NE(fp_begin, std::string::npos);
  contents.erase(fp_begin, contents.find('\n', fp_begin) - fp_begin + 1);
  {
    std::ofstream out(path);
    out << contents;
  }

  const Result<LogicalNet> loaded = LoadLogicalNet(schema, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->GetParameters(), net.GetParameters());
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadRejectsGarbage) {
  const std::string path = TempPath("not_a_model.txt");
  {
    std::ofstream out(path);
    out << "something else entirely\n";
  }
  EXPECT_FALSE(LoadLogicalNet(MakeSchema(), path).ok());
  std::remove(path.c_str());
  EXPECT_FALSE(LoadLogicalNet(MakeSchema(), TempPath("missing.txt")).ok());
}

TEST(SerializeTest, ExportRulesTextIsReadable) {
  const SchemaPtr schema = MakeSchema();
  LogicalNetConfig config;
  config.tau_d = 4;
  config.logic_layers = {{6, 6}};
  config.seed = 3;
  LogicalNet net(schema, config);
  const Dataset train = RandomData(schema, 300, 4);
  TrainConfig tc;
  tc.epochs = 10;
  tc.learning_rate = 0.05;
  TrainGrafted(net, train, tc);

  const std::string path = TempPath("rules.txt");
  ASSERT_TRUE(ExportRulesText(net, path, /*min_weight=*/1e-4).ok());
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("CTFL rule export"), std::string::npos);
  EXPECT_NE(contents.find("x >"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ctfl
