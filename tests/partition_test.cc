#include "ctfl/fl/partition.h"

#include <gtest/gtest.h>

#include "ctfl/fl/participant.h"

namespace ctfl {
namespace {

SchemaPtr MakeSchema() {
  return std::make_shared<FeatureSchema>(
      std::vector<FeatureSpec>{FeatureSchema::Continuous("x", 0, 1)}, "neg",
      "pos");
}

Dataset MakeDataset(size_t n, double positive_rate, uint64_t seed) {
  Dataset d(MakeSchema());
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    Instance inst;
    inst.values = {rng.Uniform()};
    inst.label = rng.Bernoulli(positive_rate) ? 1 : 0;
    d.AppendUnchecked(std::move(inst));
  }
  return d;
}

size_t TotalSize(const std::vector<Dataset>& parts) {
  size_t total = 0;
  for (const Dataset& p : parts) total += p.size();
  return total;
}

TEST(PartitionTest, SkewSampleConservesInstances) {
  const Dataset d = MakeDataset(1000, 0.5, 1);
  Rng rng(2);
  const std::vector<Dataset> parts = PartitionSkewSample(d, 8, 0.8, rng);
  EXPECT_EQ(parts.size(), 8u);
  EXPECT_EQ(TotalSize(parts), d.size());
}

TEST(PartitionTest, SkewSampleLowAlphaIsMoreSkewed) {
  const Dataset d = MakeDataset(4000, 0.5, 3);
  auto max_share = [&](double alpha, uint64_t seed) {
    double total_max = 0.0;
    for (int rep = 0; rep < 10; ++rep) {
      Rng rng(seed + rep);
      const std::vector<Dataset> parts = PartitionSkewSample(d, 8, alpha, rng);
      size_t largest = 0;
      for (const Dataset& p : parts) largest = std::max(largest, p.size());
      total_max += static_cast<double>(largest) / d.size();
    }
    return total_max / 10;
  };
  EXPECT_GT(max_share(0.1, 10), max_share(50.0, 20));
}

TEST(PartitionTest, SkewLabelConservesInstancesAndSkewsLabels) {
  const Dataset d = MakeDataset(4000, 0.5, 4);
  Rng rng(5);
  const std::vector<Dataset> parts = PartitionSkewLabel(d, 8, 0.3, rng);
  EXPECT_EQ(TotalSize(parts), d.size());
  // With low alpha, participants' positive rates should differ noticeably.
  double min_rate = 1.0, max_rate = 0.0;
  for (const Dataset& p : parts) {
    if (p.size() < 20) continue;
    min_rate = std::min(min_rate, p.PositiveRate());
    max_rate = std::max(max_rate, p.PositiveRate());
  }
  EXPECT_GT(max_rate - min_rate, 0.2);
}

TEST(PartitionTest, UniformIsBalanced) {
  const Dataset d = MakeDataset(800, 0.5, 6);
  Rng rng(7);
  const std::vector<Dataset> parts = PartitionUniform(d, 8, rng);
  for (const Dataset& p : parts) {
    EXPECT_NEAR(p.size(), 100u, 1);
  }
}

TEST(PartitionTest, SingleParticipantGetsEverything) {
  const Dataset d = MakeDataset(100, 0.5, 8);
  Rng rng(9);
  const std::vector<Dataset> parts = PartitionSkewSample(d, 1, 1.0, rng);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].size(), 100u);
}

TEST(FederationTest, MakeMergeAndCoalitions) {
  const Dataset d = MakeDataset(300, 0.4, 10);
  Rng rng(11);
  Federation fed = MakeFederation(PartitionUniform(d, 3, rng));
  ASSERT_EQ(fed.size(), 3u);
  EXPECT_EQ(fed[0].name, "P0");
  EXPECT_EQ(fed[2].id, 2);
  EXPECT_EQ(FederationSize(fed), 300u);
  EXPECT_EQ(MergeFederation(fed).size(), 300u);
  EXPECT_EQ(MergeCoalition(fed, {0, 2}).size(),
            fed[0].data.size() + fed[2].data.size());
  EXPECT_EQ(MergeCoalition(fed, {}).size(), 0u);
}

}  // namespace
}  // namespace ctfl
