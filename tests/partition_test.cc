#include "ctfl/fl/partition.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "ctfl/fl/participant.h"

namespace ctfl {
namespace {

SchemaPtr MakeSchema() {
  return std::make_shared<FeatureSchema>(
      std::vector<FeatureSpec>{FeatureSchema::Continuous("x", 0, 1)}, "neg",
      "pos");
}

Dataset MakeDataset(size_t n, double positive_rate, uint64_t seed) {
  Dataset d(MakeSchema());
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    Instance inst;
    inst.values = {rng.Uniform()};
    inst.label = rng.Bernoulli(positive_rate) ? 1 : 0;
    d.AppendUnchecked(std::move(inst));
  }
  return d;
}

size_t TotalSize(const std::vector<Dataset>& parts) {
  size_t total = 0;
  for (const Dataset& p : parts) total += p.size();
  return total;
}

TEST(PartitionTest, SkewSampleConservesInstances) {
  const Dataset d = MakeDataset(1000, 0.5, 1);
  Rng rng(2);
  const std::vector<Dataset> parts = PartitionSkewSample(d, 8, 0.8, rng);
  EXPECT_EQ(parts.size(), 8u);
  EXPECT_EQ(TotalSize(parts), d.size());
}

TEST(PartitionTest, SkewSampleLowAlphaIsMoreSkewed) {
  const Dataset d = MakeDataset(4000, 0.5, 3);
  auto max_share = [&](double alpha, uint64_t seed) {
    double total_max = 0.0;
    for (int rep = 0; rep < 10; ++rep) {
      Rng rng(seed + rep);
      const std::vector<Dataset> parts = PartitionSkewSample(d, 8, alpha, rng);
      size_t largest = 0;
      for (const Dataset& p : parts) largest = std::max(largest, p.size());
      total_max += static_cast<double>(largest) / d.size();
    }
    return total_max / 10;
  };
  EXPECT_GT(max_share(0.1, 10), max_share(50.0, 20));
}

TEST(PartitionTest, SkewLabelConservesInstancesAndSkewsLabels) {
  const Dataset d = MakeDataset(4000, 0.5, 4);
  Rng rng(5);
  const std::vector<Dataset> parts = PartitionSkewLabel(d, 8, 0.3, rng);
  EXPECT_EQ(TotalSize(parts), d.size());
  // With low alpha, participants' positive rates should differ noticeably.
  double min_rate = 1.0, max_rate = 0.0;
  for (const Dataset& p : parts) {
    if (p.size() < 20) continue;
    min_rate = std::min(min_rate, p.PositiveRate());
    max_rate = std::max(max_rate, p.PositiveRate());
  }
  EXPECT_GT(max_rate - min_rate, 0.2);
}

TEST(PartitionTest, UniformIsBalanced) {
  const Dataset d = MakeDataset(800, 0.5, 6);
  Rng rng(7);
  const std::vector<Dataset> parts = PartitionUniform(d, 8, rng);
  for (const Dataset& p : parts) {
    EXPECT_NEAR(p.size(), 100u, 1);
  }
}

TEST(PartitionTest, SingleParticipantGetsEverything) {
  const Dataset d = MakeDataset(100, 0.5, 8);
  Rng rng(9);
  const std::vector<Dataset> parts = PartitionSkewSample(d, 1, 1.0, rng);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].size(), 100u);
}

// A dataset whose feature values are the record indices, so partition
// outputs can be traced back to the exact source rows.
Dataset IndexTaggedDataset(size_t n, double positive_rate, uint64_t seed) {
  Dataset d(std::make_shared<FeatureSchema>(
      std::vector<FeatureSpec>{
          FeatureSchema::Continuous("idx", 0, static_cast<double>(n))},
      "neg", "pos"));
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    Instance inst;
    inst.values = {static_cast<double>(i)};
    inst.label = rng.Bernoulli(positive_rate) ? 1 : 0;
    d.AppendUnchecked(std::move(inst));
  }
  return d;
}

// Flattens a partition back into source-row ids via the index tag.
std::vector<size_t> CollectIndices(const std::vector<Dataset>& parts) {
  std::vector<size_t> out;
  for (const Dataset& p : parts) {
    for (const Instance& inst : p.instances()) {
      out.push_back(static_cast<size_t>(inst.values[0]));
    }
  }
  return out;
}

// Every source row must land in exactly one bucket: no loss, no duplication.
void ExpectExactCover(const std::vector<Dataset>& parts, size_t n) {
  std::vector<size_t> indices = CollectIndices(parts);
  ASSERT_EQ(indices.size(), n);
  std::sort(indices.begin(), indices.end());
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(indices[i], i) << "row " << i << " lost or duplicated";
  }
}

TEST(PartitionTest, MoreParticipantsThanInstances) {
  // n > |train|: most buckets must come back empty, but the split still
  // has to cover every row exactly once across all three partitioners.
  const size_t rows = 5;
  const Dataset d = IndexTaggedDataset(rows, 0.5, 21);
  {
    Rng rng(22);
    const std::vector<Dataset> parts = PartitionUniform(d, 20, rng);
    ASSERT_EQ(parts.size(), 20u);
    ExpectExactCover(parts, rows);
  }
  {
    Rng rng(23);
    const std::vector<Dataset> parts = PartitionSkewSample(d, 20, 0.3, rng);
    ASSERT_EQ(parts.size(), 20u);
    ExpectExactCover(parts, rows);
  }
  {
    Rng rng(24);
    const std::vector<Dataset> parts = PartitionSkewLabel(d, 20, 0.3, rng);
    ASSERT_EQ(parts.size(), 20u);
    ExpectExactCover(parts, rows);
  }
}

TEST(PartitionTest, RoundingLeftoversAreDistributed) {
  // Ratio * size rounds to 0.5 boundaries everywhere: 7 participants over
  // 100 rows (each nominal share 14.29 rounds to 14, leaving 2+ rows for
  // the remainder/round-robin path). Repeat across seeds so both the
  // under- and over-allocation branches get exercised.
  for (uint64_t seed = 30; seed < 40; ++seed) {
    const size_t rows = 100;
    const Dataset d = IndexTaggedDataset(rows, 0.5, seed);
    Rng rng(seed * 7 + 1);
    ExpectExactCover(PartitionUniform(d, 7, rng), rows);
    Rng rng2(seed * 7 + 2);
    ExpectExactCover(PartitionSkewSample(d, 7, 0.2, rng2), rows);
  }
}

TEST(PartitionTest, SkewLabelHandlesMissingClass) {
  // All-negative training data: the positive class bucket is empty and the
  // per-class Dirichlet split must simply skip it.
  const size_t rows = 60;
  const Dataset d = IndexTaggedDataset(rows, 0.0, 41);
  Rng rng(42);
  const std::vector<Dataset> parts = PartitionSkewLabel(d, 4, 0.5, rng);
  ASSERT_EQ(parts.size(), 4u);
  ExpectExactCover(parts, rows);
  for (const Dataset& p : parts) {
    for (const Instance& inst : p.instances()) EXPECT_EQ(inst.label, 0);
  }

  // Symmetric: all-positive.
  const Dataset all_pos = IndexTaggedDataset(rows, 1.0, 43);
  Rng rng2(44);
  ExpectExactCover(PartitionSkewLabel(all_pos, 4, 0.5, rng2), rows);
}

TEST(PartitionTest, EmptyDatasetYieldsEmptyBuckets) {
  const Dataset d = IndexTaggedDataset(0, 0.5, 45);
  Rng rng(46);
  const std::vector<Dataset> parts = PartitionSkewLabel(d, 3, 1.0, rng);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(TotalSize(parts), 0u);
}

TEST(FederationTest, MakeMergeAndCoalitions) {
  const Dataset d = MakeDataset(300, 0.4, 10);
  Rng rng(11);
  Federation fed = MakeFederation(PartitionUniform(d, 3, rng));
  ASSERT_EQ(fed.size(), 3u);
  EXPECT_EQ(fed[0].name, "P0");
  EXPECT_EQ(fed[2].id, 2);
  EXPECT_EQ(FederationSize(fed), 300u);
  EXPECT_EQ(MergeFederation(fed).size(), 300u);
  EXPECT_EQ(MergeCoalition(fed, {0, 2}).size(),
            fed[0].data.size() + fed[2].data.size());
  EXPECT_EQ(MergeCoalition(fed, {}).size(), 0u);
}

}  // namespace
}  // namespace ctfl
