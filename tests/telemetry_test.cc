#include <atomic>
#include <cctype>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ctfl/telemetry/metrics.h"
#include "ctfl/telemetry/run_telemetry.h"
#include "ctfl/telemetry/trace.h"
#include "ctfl/util/thread_pool.h"

namespace ctfl {
namespace {

using telemetry::Counter;
using telemetry::Gauge;
using telemetry::Histogram;
using telemetry::MetricsRegistry;
using telemetry::Span;

// ---------------------------------------------------------------------------
// Minimal JSON parser used to validate the Chrome trace export end-to-end
// (the acceptance criterion: "parse it back"). Supports the full JSON value
// grammar minus \uXXXX surrogate pairs, which the exporter never emits for
// span names.
// ---------------------------------------------------------------------------
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    pos_ = 0;
    if (!ParseValue(out)) return false;
    SkipWs();
    return pos_ == text_.size();  // no trailing garbage
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string);
    }
    if (c == 't' || c == 'f') return ParseBool(out);
    if (c == 'n') return ParseNull(out);
    return ParseNumber(out);
  }

  bool ParseObject(JsonValue* out) {
    if (!Consume('{')) return false;
    out->kind = JsonValue::Kind::kObject;
    SkipWs();
    if (Consume('}')) return true;
    while (true) {
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      if (Consume(',')) continue;
      return Consume('}');
    }
  }

  bool ParseArray(JsonValue* out) {
    if (!Consume('[')) return false;
    out->kind = JsonValue::Kind::kArray;
    SkipWs();
    if (Consume(']')) return true;
    while (true) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      if (Consume(',')) continue;
      return Consume(']');
    }
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 't': *out += '\t'; break;
          case 'r': *out += '\r'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            for (int i = 0; i < 4; ++i) {
              if (!std::isxdigit(
                      static_cast<unsigned char>(text_[pos_ + i]))) {
                return false;
              }
            }
            pos_ += 4;
            *out += '?';  // placeholder; exact code point irrelevant here
            break;
          }
          default:
            return false;
        }
      } else {
        *out += c;
      }
    }
    return false;  // unterminated
  }

  bool ParseBool(JsonValue* out) {
    SkipWs();
    out->kind = JsonValue::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->boolean = false;
      pos_ += 5;
      return true;
    }
    return false;
  }

  bool ParseNull(JsonValue* out) {
    SkipWs();
    if (text_.compare(pos_, 4, "null") != 0) return false;
    out->kind = JsonValue::Kind::kNull;
    pos_ += 4;
    return true;
  }

  bool ParseNumber(JsonValue* out) {
    SkipWs();
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->kind = JsonValue::Kind::kNumber;
    try {
      out->number = std::stod(text_.substr(start, pos_ - start));
    } catch (...) {
      return false;
    }
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

/// Shared fixture hygiene: every test starts with tracing off + clean
/// buffer so tests are order-independent.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    telemetry::SetTracingEnabled(false);
    telemetry::ClearTrace();
    telemetry::SetTraceCapacity(65536);
  }
  void TearDown() override {
    telemetry::SetTracingEnabled(false);
    telemetry::ClearTrace();
    telemetry::SetTraceCapacity(65536);
  }
};

// ---------------------------------------------------------------------------
// Counters / gauges / registry.
// ---------------------------------------------------------------------------

TEST_F(TelemetryTest, CounterBasics) {
  Counter& c = MetricsRegistry::Global().GetCounter("test.counter.basics");
  c.Reset();
  EXPECT_EQ(c.value(), 0);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42);
  // Same name returns the same instrument.
  EXPECT_EQ(&MetricsRegistry::Global().GetCounter("test.counter.basics"),
            &c);
}

TEST_F(TelemetryTest, GaugeLastWriteWins) {
  Gauge& g = MetricsRegistry::Global().GetGauge("test.gauge.basics");
  g.Set(1.5);
  g.Set(-2.25);
  EXPECT_DOUBLE_EQ(g.value(), -2.25);
}

TEST_F(TelemetryTest, RegistryConcurrencyHammer) {
  // Hammer one counter + one histogram from ThreadPool workers while also
  // racing registration of fresh names; every increment must land.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  Counter& shared =
      MetricsRegistry::Global().GetCounter("test.concurrency.shared");
  shared.Reset();
  Histogram& hist = MetricsRegistry::Global().GetHistogram(
      "test.concurrency.hist", {1.0, 10.0, 100.0});
  hist.Reset();

  ThreadPool pool(kThreads);
  std::atomic<int> registered{0};
  for (int t = 0; t < kThreads; ++t) {
    pool.Submit([t, &shared, &hist, &registered] {
      for (int i = 0; i < kPerThread; ++i) {
        shared.Add(1);
        hist.Observe(static_cast<double>(i % 200));
        if (i % 1000 == 0) {
          // Racy registration of both fresh and shared names.
          MetricsRegistry::Global()
              .GetCounter("test.concurrency.t" + std::to_string(t))
              .Add(1);
          MetricsRegistry::Global()
              .GetCounter("test.concurrency.contended")
              .Add(1);
          registered.fetch_add(1);
        }
      }
    });
  }
  pool.Wait();

  EXPECT_EQ(shared.value(), kThreads * kPerThread);
  EXPECT_EQ(hist.count(), kThreads * kPerThread);
  int64_t bucket_total = 0;
  for (int64_t b : hist.BucketCounts()) bucket_total += b;
  EXPECT_EQ(bucket_total, hist.count());
  EXPECT_EQ(MetricsRegistry::Global()
                .GetCounter("test.concurrency.contended")
                .value(),
            registered.load());
}

// ---------------------------------------------------------------------------
// Histogram bucketing edge cases.
// ---------------------------------------------------------------------------

TEST_F(TelemetryTest, HistogramBucketEdges) {
  Histogram h({0.0, 10.0, 100.0});
  h.Observe(-5.0);   // below first bound -> bucket 0
  h.Observe(0.0);    // exactly on a bound -> that bucket (v <= bound)
  h.Observe(10.0);   // on the second bound -> bucket 1
  h.Observe(10.5);   // -> bucket 2
  h.Observe(100.0);  // on the last bound -> bucket 2
  h.Observe(1e9);    // above all bounds -> overflow
  const std::vector<int64_t> counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2);  // -5, 0
  EXPECT_EQ(counts[1], 1);  // 10
  EXPECT_EQ(counts[2], 2);  // 10.5, 100
  EXPECT_EQ(counts[3], 1);  // 1e9
  EXPECT_EQ(h.count(), 6);
  EXPECT_DOUBLE_EQ(h.sum(), -5.0 + 0.0 + 10.0 + 10.5 + 100.0 + 1e9);
}

TEST_F(TelemetryTest, HistogramNonFiniteGoesToOverflow) {
  Histogram h({1.0});
  h.Observe(std::numeric_limits<double>::quiet_NaN());
  h.Observe(std::numeric_limits<double>::infinity());
  h.Observe(-std::numeric_limits<double>::infinity());
  const std::vector<int64_t> counts = h.BucketCounts();
  EXPECT_EQ(counts[0], 0);
  EXPECT_EQ(counts[1], 3);
  EXPECT_EQ(h.count(), 3);
  EXPECT_TRUE(std::isfinite(h.sum()));  // non-finite values excluded
}

TEST_F(TelemetryTest, HistogramQuantiles) {
  Histogram h({1.0, 2.0, 4.0});
  for (int i = 0; i < 50; ++i) h.Observe(0.5);  // bucket 0
  for (int i = 0; i < 49; ++i) h.Observe(1.5);  // bucket 1
  h.Observe(100.0);                             // overflow
  EXPECT_DOUBLE_EQ(h.ApproxQuantile(0.25), 1.0);
  EXPECT_DOUBLE_EQ(h.ApproxQuantile(0.75), 2.0);
  EXPECT_TRUE(std::isinf(h.ApproxQuantile(1.0)));
  Histogram empty({1.0});
  EXPECT_DOUBLE_EQ(empty.ApproxQuantile(0.5), 0.0);
}

TEST_F(TelemetryTest, LatencyBoundsAreAscending) {
  const std::vector<double> bounds = Histogram::LatencyMicrosBounds();
  ASSERT_FALSE(bounds.empty());
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

// ---------------------------------------------------------------------------
// Spans + trace buffer + Chrome export.
// ---------------------------------------------------------------------------

TEST_F(TelemetryTest, DisabledSpanRecordsNothing) {
  { Span span("test.disabled"); }
  EXPECT_EQ(telemetry::TraceEventCount(), 0u);
}

TEST_F(TelemetryTest, SpansRecordNestingAndDuration) {
  telemetry::SetTracingEnabled(true);
  {
    Span outer("test.outer");
    {
      CTFL_SPAN("test.inner");
    }
  }
  const std::vector<telemetry::TraceEvent> events = telemetry::TraceEvents();
  ASSERT_EQ(events.size(), 2u);
  // Inner ends first, so it is appended first.
  EXPECT_STREQ(events[0].name, "test.inner");
  EXPECT_STREQ(events[1].name, "test.outer");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_EQ(events[1].depth, 0);
  EXPECT_GE(events[0].start_us, events[1].start_us);
  EXPECT_LE(events[0].duration_us, events[1].duration_us);
  EXPECT_EQ(events[0].tid, events[1].tid);
}

TEST_F(TelemetryTest, SpanEndIsIdempotent) {
  telemetry::SetTracingEnabled(true);
  Span span("test.end");
  span.End();
  span.End();  // no double-record
  EXPECT_EQ(telemetry::TraceEventCount(), 1u);
  EXPECT_FALSE(span.active());
}

TEST_F(TelemetryTest, BoundedBufferCountsDrops) {
  telemetry::SetTracingEnabled(true);
  telemetry::SetTraceCapacity(4);
  for (int i = 0; i < 10; ++i) {
    Span span("test.drop");
  }
  EXPECT_EQ(telemetry::TraceEventCount(), 4u);
  EXPECT_EQ(telemetry::DroppedSpanCount(), 6u);
}

TEST_F(TelemetryTest, ChromeTraceJsonParsesBack) {
  telemetry::SetTracingEnabled(true);
  {
    Span outer("ctfl.test.outer");
    Span weird("name with \"quotes\" and \\slash\n");
    { CTFL_SPAN("ctfl.test.inner"); }
  }
  // Spans from a second thread must carry a different tid.
  ThreadPool pool(2);
  pool.Submit([] { Span span("ctfl.test.worker"); });
  pool.Wait();

  const std::string json = telemetry::ChromeTraceJson();
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(&root)) << json;
  ASSERT_EQ(root.kind, JsonValue::Kind::kObject);
  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::Kind::kArray);
  ASSERT_EQ(events->array.size(), 4u);

  bool saw_worker_tid = false;
  int main_tid = -1;
  for (const JsonValue& event : events->array) {
    ASSERT_EQ(event.kind, JsonValue::Kind::kObject);
    for (const char* key : {"name", "cat", "ph", "ts", "dur", "pid", "tid"}) {
      ASSERT_NE(event.Find(key), nullptr) << "missing " << key;
    }
    EXPECT_EQ(event.Find("ph")->string, "X");
    EXPECT_EQ(event.Find("cat")->string, "ctfl");
    EXPECT_GE(event.Find("dur")->number, 0.0);
    const std::string& name = event.Find("name")->string;
    const int tid = static_cast<int>(event.Find("tid")->number);
    if (name == "ctfl.test.worker") {
      saw_worker_tid = true;
    } else {
      main_tid = tid;
    }
    if (name == "name with \"quotes\" and \\slash\n") {
      // Escapes survived the round trip.
      SUCCEED();
    }
  }
  // Nesting: inner's [ts, ts+dur] lies within outer's on the same tid.
  const JsonValue* outer = nullptr;
  const JsonValue* inner = nullptr;
  for (const JsonValue& event : events->array) {
    if (event.Find("name")->string == "ctfl.test.outer") outer = &event;
    if (event.Find("name")->string == "ctfl.test.inner") inner = &event;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_GE(inner->Find("ts")->number, outer->Find("ts")->number);
  EXPECT_LE(inner->Find("ts")->number + inner->Find("dur")->number,
            outer->Find("ts")->number + outer->Find("dur")->number + 1.0);
  EXPECT_TRUE(saw_worker_tid);
  EXPECT_GE(main_tid, 0);
}

TEST_F(TelemetryTest, TraceSummaryTableAggregates) {
  telemetry::SetTracingEnabled(true);
  for (int i = 0; i < 3; ++i) {
    Span span("test.summary");
  }
  const std::string table = telemetry::TraceSummaryTable();
  EXPECT_NE(table.find("test.summary"), std::string::npos);
  EXPECT_NE(table.find("3"), std::string::npos);
}

// ---------------------------------------------------------------------------
// ScopedTimer + RunTelemetry formatting.
// ---------------------------------------------------------------------------

TEST_F(TelemetryTest, ScopedTimerAccumulatesSeconds) {
  double total = 0.0;
  {
    telemetry::ScopedTimer timer(&total);
    volatile double sink = 0.0;
    for (int i = 0; i < 100000; ++i) sink = sink + i;
  }
  EXPECT_GT(total, 0.0);
  const double first = total;
  { telemetry::ScopedTimer timer(&total); }
  EXPECT_GE(total, first);  // accumulates, not overwrites
}

TEST_F(TelemetryTest, ScopedTimerFeedsHistogram) {
  Histogram h({1e6});  // everything lands at or below 1s
  { telemetry::ScopedTimer timer(&h); }
  EXPECT_EQ(h.count(), 1);
}

TEST_F(TelemetryTest, RunTelemetrySummaryMentionsAllSections) {
  telemetry::RunTelemetry run;
  run.train_seconds = 1.0;
  run.trace_seconds = 0.5;
  run.allocate_seconds = 0.25;
  run.grafting_steps = 123;
  run.rules_total = 10;
  run.rules_kept = 7;
  run.rules_pruned = 3;
  run.trace_keys = 42;
  run.tau_w_checks = 1000;
  run.related_records = 77;
  run.rounds.push_back({0, 0.5, 0.9, 4});
  const std::string summary = run.Summary();
  EXPECT_NE(summary.find("train"), std::string::npos);
  EXPECT_NE(summary.find("trace"), std::string::npos);
  EXPECT_NE(summary.find("allocate"), std::string::npos);
  EXPECT_NE(summary.find("123"), std::string::npos);
  EXPECT_NE(summary.find("round 0"), std::string::npos);
  EXPECT_NE(summary.find("7 kept"), std::string::npos);
  EXPECT_DOUBLE_EQ(run.total_seconds(), 1.75);
}

TEST_F(TelemetryTest, MetricsSummaryTableListsInstruments) {
  MetricsRegistry::Global().GetCounter("test.summary.counter").Add(5);
  MetricsRegistry::Global().GetGauge("test.summary.gauge").Set(2.5);
  const std::string table = MetricsRegistry::Global().SummaryTable();
  EXPECT_NE(table.find("test.summary.counter"), std::string::npos);
  EXPECT_NE(table.find("test.summary.gauge"), std::string::npos);
  const MetricsRegistry::Snapshot snapshot =
      MetricsRegistry::Global().TakeSnapshot();
  EXPECT_EQ(snapshot.counters.at("test.summary.counter"), 5);
}

TEST_F(TelemetryTest, SnapshotCarriesHistogramDigest) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("test.digest", {1.0, 2.0, 4.0});
  for (int i = 0; i < 50; ++i) h.Observe(0.5);
  for (int i = 0; i < 49; ++i) h.Observe(1.5);
  h.Observe(100.0);
  const MetricsRegistry::Snapshot snapshot = registry.TakeSnapshot();
  const auto& data = snapshot.histograms.at("test.digest");
  EXPECT_EQ(data.count, 100);
  EXPECT_DOUBLE_EQ(data.sum, 50 * 0.5 + 49 * 1.5 + 100.0);
  EXPECT_DOUBLE_EQ(data.p50, 1.0);
  EXPECT_DOUBLE_EQ(data.p90, 2.0);
  EXPECT_DOUBLE_EQ(data.p99, 2.0);  // rank 99 is still in bucket le=2
}

TEST_F(TelemetryTest, SummaryTableShowsHistogramCountSumQuantiles) {
  Histogram& h = MetricsRegistry::Global().GetHistogram(
      "test.summary.histo", {1.0, 10.0});
  h.Observe(0.5);
  h.Observe(5.0);
  const std::string table = MetricsRegistry::Global().SummaryTable();
  EXPECT_NE(table.find("test.summary.histo"), std::string::npos);
  EXPECT_NE(table.find("n="), std::string::npos) << table;
  EXPECT_NE(table.find("sum="), std::string::npos) << table;
  EXPECT_NE(table.find("p50<="), std::string::npos) << table;
  EXPECT_NE(table.find("p90<="), std::string::npos) << table;
  EXPECT_NE(table.find("p99<="), std::string::npos) << table;
}

// ---------------------------------------------------------------------------
// Profiling-grade span CPU time.
// ---------------------------------------------------------------------------

TEST_F(TelemetryTest, SpanRecordsThreadCpuWithinWall) {
  telemetry::SetTracingEnabled(true);
  {
    Span span("test.cpu");
    volatile double sink = 0.0;
    for (int i = 0; i < 200000; ++i) sink = sink + i * 1e-9;
  }
  const std::vector<telemetry::TraceEvent> events =
      telemetry::TraceEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_GE(events[0].cpu_us, 0);
  // A span's thread-CPU delta never exceeds its wall duration (allow 1ms
  // of clock granularity between the two clocks).
  EXPECT_LE(events[0].cpu_us, events[0].duration_us + 1000);
}

TEST_F(TelemetryTest, ChromeTraceArgsCarryCpuMicros) {
  telemetry::SetTracingEnabled(true);
  { Span span("test.cpu.args"); }
  const std::string json = telemetry::ChromeTraceJson();
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(&root)) << json;
  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 1u);
  const JsonValue* args = events->array[0].Find("args");
  ASSERT_NE(args, nullptr);
  const JsonValue* cpu_us = args->Find("cpu_us");
  ASSERT_NE(cpu_us, nullptr) << json;
  EXPECT_GE(cpu_us->number, 0.0);
  EXPECT_LE(cpu_us->number,
            events->array[0].Find("dur")->number + 1000.0);
}

TEST_F(TelemetryTest, TraceSummaryTableHasCpuColumn) {
  telemetry::SetTracingEnabled(true);
  { Span span("test.cpu.table"); }
  const std::string table = telemetry::TraceSummaryTable();
  EXPECT_NE(table.find("cpu_ms"), std::string::npos) << table;
}

TEST_F(TelemetryTest, RunTelemetrySummaryShowsCpuAndResources) {
  telemetry::RunTelemetry run;
  run.train_seconds = 1.0;
  run.train_cpu_seconds = 1.5;  // parallel training: cpu > wall
  run.trace_seconds = 0.5;
  run.trace_cpu_seconds = 0.5;
  run.allocate_seconds = 0.25;
  run.allocate_cpu_seconds = 0.25;
  run.max_rss_kb = 2048;
  run.voluntary_ctx_switches = 10;
  run.involuntary_ctx_switches = 3;
  const std::string summary = run.Summary();
  EXPECT_NE(summary.find("cpu_s"), std::string::npos) << summary;
  EXPECT_NE(summary.find("max_rss=2048kB"), std::string::npos) << summary;
  EXPECT_NE(summary.find("10 voluntary"), std::string::npos) << summary;
  EXPECT_DOUBLE_EQ(run.total_cpu_seconds(), 2.25);
}

}  // namespace
}  // namespace ctfl
