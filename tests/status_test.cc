#include "ctfl/util/status.h"

#include <gtest/gtest.h>

#include "ctfl/util/result.h"

namespace ctfl {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad width");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad width");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad width");
}

TEST(StatusTest, FactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

Status FailsAtStep(int step) {
  CTFL_RETURN_IF_ERROR(step == 1 ? Status::Internal("one") : Status::OK());
  CTFL_RETURN_IF_ERROR(step == 2 ? Status::Internal("two") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorShortCircuits) {
  EXPECT_TRUE(FailsAtStep(0).ok());
  EXPECT_EQ(FailsAtStep(1).message(), "one");
  EXPECT_EQ(FailsAtStep(2).message(), "two");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

Result<int> Doubler(Result<int> input) {
  CTFL_ASSIGN_OR_RETURN(int v, input);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Doubler(21).value(), 42);
  Result<int> failed = Doubler(Status::Internal("boom"));
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().message(), "boom");
}

}  // namespace
}  // namespace ctfl
