#include "ctfl/solver/simplex.h"

#include <gtest/gtest.h>

#include "ctfl/util/rng.h"

namespace ctfl {
namespace {

LpConstraint Le(std::vector<double> coeffs, double rhs) {
  return {std::move(coeffs), LpConstraint::Rel::kLe, rhs};
}
LpConstraint Ge(std::vector<double> coeffs, double rhs) {
  return {std::move(coeffs), LpConstraint::Rel::kGe, rhs};
}
LpConstraint Eq(std::vector<double> coeffs, double rhs) {
  return {std::move(coeffs), LpConstraint::Rel::kEq, rhs};
}

TEST(SimplexTest, TextbookMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (as min of negative).
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {-3, -5};
  lp.constraints = {Le({1, 0}, 4), Le({0, 2}, 12), Le({3, 2}, 18)};
  const LpSolution sol = SolveLp(lp).value();
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-7);
  EXPECT_NEAR(sol.x[1], 6.0, 1e-7);
  EXPECT_NEAR(sol.objective, -36.0, 1e-7);
}

TEST(SimplexTest, GeConstraintsNeedPhaseOne) {
  // min x + y s.t. x + y >= 2, x >= 0.5.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1, 1};
  lp.constraints = {Ge({1, 1}, 2), Ge({1, 0}, 0.5)};
  const LpSolution sol = SolveLp(lp).value();
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 2.0, 1e-7);
}

TEST(SimplexTest, EqualityConstraint) {
  // min 2x + 3y s.t. x + y = 4, x <= 3.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {2, 3};
  lp.constraints = {Eq({1, 1}, 4), Le({1, 0}, 3)};
  const LpSolution sol = SolveLp(lp).value();
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 3.0, 1e-7);
  EXPECT_NEAR(sol.x[1], 1.0, 1e-7);
}

TEST(SimplexTest, FreeVariablesCanGoNegative) {
  // min e s.t. phi + e >= 1, phi <= 2 with both free: e* = -1 at phi = 2.
  LpProblem lp;
  lp.num_vars = 2;  // phi, e
  lp.objective = {0, 1};
  lp.free_vars = {true, true};
  lp.constraints = {Ge({1, 1}, 1), Le({1, 0}, 2)};
  const LpSolution sol = SolveLp(lp).value();
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -1.0, 1e-7);
}

TEST(SimplexTest, InfeasibleDetected) {
  LpProblem lp;
  lp.num_vars = 1;
  lp.objective = {1};
  lp.constraints = {Ge({1}, 5), Le({1}, 2)};
  const LpSolution sol = SolveLp(lp).value();
  EXPECT_EQ(sol.status, LpStatus::kInfeasible);
}

TEST(SimplexTest, UnboundedDetected) {
  // min -x with only x >= 0: unbounded below.
  LpProblem lp;
  lp.num_vars = 1;
  lp.objective = {-1};
  lp.constraints = {Ge({1}, 0)};
  const LpSolution sol = SolveLp(lp).value();
  EXPECT_EQ(sol.status, LpStatus::kUnbounded);
}

TEST(SimplexTest, NegativeRhsHandled) {
  // min x s.t. -x <= -3  (i.e. x >= 3).
  LpProblem lp;
  lp.num_vars = 1;
  lp.objective = {1};
  lp.constraints = {Le({-1}, -3)};
  const LpSolution sol = SolveLp(lp).value();
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 3.0, 1e-7);
}

TEST(SimplexTest, RejectsMalformedProblems) {
  LpProblem lp;
  lp.num_vars = 0;
  EXPECT_FALSE(SolveLp(lp).ok());

  lp.num_vars = 2;
  lp.objective = {1};  // wrong width
  EXPECT_FALSE(SolveLp(lp).ok());

  lp.objective = {1, 1};
  lp.constraints = {Le({1}, 0)};  // wrong width
  EXPECT_FALSE(SolveLp(lp).ok());
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Multiple constraints active at the optimum (degeneracy): Bland's rule
  // must still terminate.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {-1, -1};
  lp.constraints = {Le({1, 0}, 1), Le({0, 1}, 1), Le({1, 1}, 2),
                    Le({2, 1}, 3), Le({1, 2}, 3)};
  const LpSolution sol = SolveLp(lp).value();
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -2.0, 1e-7);
}

// Random LPs with a known feasible point: the solver must return a value
// no worse than that point while satisfying all constraints.
class SimplexRandomProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimplexRandomProperty, OptimalIsFeasibleAndNotWorseThanWitness) {
  Rng rng(GetParam());
  const int n = 3 + static_cast<int>(rng.UniformInt(4));
  const int m = 4 + static_cast<int>(rng.UniformInt(6));
  // Witness point in the positive orthant.
  std::vector<double> witness(n);
  for (double& w : witness) w = rng.Uniform(0.0, 2.0);

  LpProblem lp;
  lp.num_vars = n;
  lp.objective.resize(n);
  for (double& c : lp.objective) c = rng.Uniform(0.1, 2.0);  // bounded below
  for (int i = 0; i < m; ++i) {
    LpConstraint con;
    con.coeffs.resize(n);
    double lhs = 0.0;
    for (int j = 0; j < n; ++j) {
      con.coeffs[j] = rng.Uniform(-1.0, 1.0);
      lhs += con.coeffs[j] * witness[j];
    }
    con.rel = LpConstraint::Rel::kLe;
    con.rhs = lhs + rng.Uniform(0.0, 1.0);  // witness satisfies strictly
    lp.constraints.push_back(std::move(con));
  }

  const LpSolution sol = SolveLp(lp).value();
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  double witness_obj = 0.0;
  for (int j = 0; j < n; ++j) witness_obj += lp.objective[j] * witness[j];
  EXPECT_LE(sol.objective, witness_obj + 1e-7);
  // Feasibility of the returned point.
  for (const LpConstraint& con : lp.constraints) {
    double lhs = 0.0;
    for (int j = 0; j < n; ++j) lhs += con.coeffs[j] * sol.x[j];
    EXPECT_LE(lhs, con.rhs + 1e-6);
  }
  for (double x : sol.x) EXPECT_GE(x, -1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomProperty,
                         ::testing::Range<uint64_t>(0, 10));

}  // namespace
}  // namespace ctfl
