#include <gtest/gtest.h>

#include "ctfl/data/gen/benchmarks.h"
#include "ctfl/data/gen/synthetic.h"
#include "ctfl/data/gen/tictactoe.h"
#include "ctfl/data/stats.h"

namespace ctfl {
namespace {

TEST(TicTacToeTest, ReconstructsCanonicalDataset) {
  const Dataset d = GenerateTicTacToe();
  // The UCI endgame dataset: 958 boards, 626 "x wins".
  EXPECT_EQ(d.size(), 958u);
  EXPECT_EQ(d.ClassCounts()[1], 626u);
  EXPECT_EQ(d.ClassCounts()[0], 332u);
}

TEST(TicTacToeTest, SchemaHasNineTernaryCells) {
  const SchemaPtr schema = TicTacToeSchema();
  EXPECT_EQ(schema->num_features(), 9);
  for (int f = 0; f < 9; ++f) {
    EXPECT_EQ(schema->feature(f).type, FeatureType::kDiscrete);
    EXPECT_EQ(schema->feature(f).num_categories(), 3);
  }
}

TEST(TicTacToeTest, EveryBoardIsLegalTerminal) {
  const Dataset d = GenerateTicTacToe();
  for (const Instance& inst : d.instances()) {
    int x_count = 0, o_count = 0, blanks = 0;
    for (double v : inst.values) {
      const int c = static_cast<int>(v);
      x_count += c == 1;
      o_count += c == 2;
      blanks += c == 0;
    }
    // x moves first: x count is o count or o count + 1.
    EXPECT_TRUE(x_count == o_count || x_count == o_count + 1);
    EXPECT_EQ(x_count + o_count + blanks, 9);
  }
}

TEST(TicTacToeTest, DeterministicAcrossCalls) {
  const Dataset a = GenerateTicTacToe();
  const Dataset b = GenerateTicTacToe();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.instance(i).values, b.instance(i).values);
    EXPECT_EQ(a.instance(i).label, b.instance(i).label);
  }
}

TEST(SyntheticTest, PredicatesEvaluate) {
  Instance inst;
  inst.values = {5.0, 2.0};
  EXPECT_TRUE((GtPredicate{0, GtPredicate::Op::kGt, 4.0}).Holds(inst));
  EXPECT_FALSE((GtPredicate{0, GtPredicate::Op::kGt, 5.0}).Holds(inst));
  EXPECT_TRUE((GtPredicate{0, GtPredicate::Op::kLt, 6.0}).Holds(inst));
  EXPECT_TRUE((GtPredicate{1, GtPredicate::Op::kEq, 2.0}).Holds(inst));
  EXPECT_TRUE((GtPredicate{1, GtPredicate::Op::kNeq, 3.0}).Holds(inst));
}

TEST(SyntheticTest, RuleFiresOnlyWhenAllConjunctsHold) {
  GtRule rule{{{0, GtPredicate::Op::kGt, 1.0}, {1, GtPredicate::Op::kEq, 0.0}},
              1,
              1.0};
  Instance match;
  match.values = {2.0, 0.0};
  Instance miss;
  miss.values = {2.0, 1.0};
  EXPECT_TRUE(rule.Fires(match));
  EXPECT_FALSE(rule.Fires(miss));
}

TEST(SyntheticTest, NoiseFreeLabelsFollowRules) {
  SyntheticSpec spec;
  spec.schema = std::make_shared<FeatureSchema>(
      std::vector<FeatureSpec>{FeatureSchema::Continuous("x", 0, 1)}, "neg",
      "pos");
  spec.samplers = {FeatureSampler{FeatureSampler::Kind::kUniform, 0, 0, {}}};
  spec.rules = {{{{0, GtPredicate::Op::kGt, 0.5}}, 1, 1.0},
                {{{0, GtPredicate::Op::kLt, 0.5}}, 0, 1.0}};
  spec.label_noise = 0.0;
  Rng rng(3);
  const Dataset d = GenerateSynthetic(spec, 2000, rng);
  for (const Instance& inst : d.instances()) {
    EXPECT_EQ(inst.label, inst.values[0] > 0.5 ? 1 : 0);
  }
}

TEST(SyntheticTest, LabelNoiseBoundsAccuracy) {
  SyntheticSpec spec;
  spec.schema = std::make_shared<FeatureSchema>(
      std::vector<FeatureSpec>{FeatureSchema::Continuous("x", 0, 1)}, "neg",
      "pos");
  spec.samplers = {FeatureSampler{FeatureSampler::Kind::kUniform, 0, 0, {}}};
  spec.rules = {{{{0, GtPredicate::Op::kGt, 0.5}}, 1, 1.0},
                {{{0, GtPredicate::Op::kLt, 0.5}}, 0, 1.0}};
  spec.label_noise = 0.2;
  Rng rng(4);
  const Dataset d = GenerateSynthetic(spec, 20000, rng);
  size_t agree = 0;
  for (const Instance& inst : d.instances()) {
    agree += inst.label == (inst.values[0] > 0.5 ? 1 : 0);
  }
  // The optimal classifier agrees with 1 - noise of labels.
  EXPECT_NEAR(static_cast<double>(agree) / d.size(), 0.8, 0.02);
}

TEST(SyntheticTest, SamplersRespectDomains) {
  SyntheticSpec spec;
  spec.schema = std::make_shared<FeatureSchema>(
      std::vector<FeatureSpec>{
          FeatureSchema::Continuous("u", -1, 2),
          FeatureSchema::Continuous("n", 0, 10),
          FeatureSchema::Continuous("e", 0, 100),
          FeatureSchema::Continuous("s", 0, 50),
          FeatureSchema::Discrete("c", {"a", "b", "c"}),
      },
      "neg", "pos");
  spec.samplers = {
      FeatureSampler{FeatureSampler::Kind::kUniform, 0, 0, {}},
      FeatureSampler{FeatureSampler::Kind::kNormal, 5, 2, {}},
      FeatureSampler{FeatureSampler::Kind::kExponential, 10, 0, {}},
      FeatureSampler{FeatureSampler::Kind::kSpikeUniform, 0.5, 0, {}},
      FeatureSampler{FeatureSampler::Kind::kCategorical, 0, 0, {1, 1, 2}},
  };
  Rng rng(5);
  const Dataset d = GenerateSynthetic(spec, 5000, rng);
  size_t spikes = 0;
  for (const Instance& inst : d.instances()) {
    EXPECT_GE(inst.values[0], -1.0);
    EXPECT_LT(inst.values[0], 2.0);
    EXPECT_GE(inst.values[1], 0.0);
    EXPECT_LE(inst.values[1], 10.0);
    EXPECT_GE(inst.values[2], 0.0);
    EXPECT_LE(inst.values[2], 100.0);
    const int c = static_cast<int>(inst.values[4]);
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 3);
    spikes += inst.values[3] == 0.0;
  }
  EXPECT_NEAR(static_cast<double>(spikes) / d.size(), 0.5, 0.05);
}

struct BenchmarkCase {
  const char* name;
  size_t paper_size;
  double min_pos_rate;
  double max_pos_rate;
};

class BenchmarkDatasetTest : public ::testing::TestWithParam<BenchmarkCase> {};

TEST_P(BenchmarkDatasetTest, MatchesPaperShape) {
  const BenchmarkCase& c = GetParam();
  EXPECT_EQ(BenchmarkDefaultSize(c.name), c.paper_size);
  // Generate a scaled-down sample for speed.
  const size_t n = std::string(c.name) == "tic-tac-toe" ? 0 : 4000;
  const Result<Dataset> d = MakeBenchmark(c.name, n, /*seed=*/99);
  ASSERT_TRUE(d.ok()) << d.status();
  EXPECT_GE(d->PositiveRate(), c.min_pos_rate) << c.name;
  EXPECT_LE(d->PositiveRate(), c.max_pos_rate) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    PaperDatasets, BenchmarkDatasetTest,
    ::testing::Values(BenchmarkCase{"tic-tac-toe", 958, 0.6, 0.7},
                      BenchmarkCase{"adult", 32561, 0.15, 0.40},
                      BenchmarkCase{"bank", 45211, 0.05, 0.30},
                      BenchmarkCase{"dota2", 102944, 0.40, 0.65}),
    [](const ::testing::TestParamInfo<BenchmarkCase>& info) {
      std::string name = info.param.name;
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(BenchmarkDatasetTest, UnknownNameFails) {
  EXPECT_FALSE(MakeBenchmark("unknown", 10, 1).ok());
  EXPECT_FALSE(BenchmarkSpec("tic-tac-toe").ok());
}

TEST(BenchmarkDatasetTest, FeatureCountsMatchTableIV) {
  EXPECT_EQ(MakeBenchmark("tic-tac-toe", 0, 1)->schema()->num_features(), 9);
  EXPECT_EQ(BenchmarkSpec("adult")->schema->num_features(), 14);
  EXPECT_EQ(BenchmarkSpec("bank")->schema->num_features(), 16);
  EXPECT_EQ(BenchmarkSpec("dota2")->schema->num_features(), 116);
}

TEST(BenchmarkDatasetTest, SeedsChangeData) {
  const Dataset a = *MakeBenchmark("adult", 100, 1);
  const Dataset b = *MakeBenchmark("adult", 100, 2);
  bool any_diff = false;
  for (size_t i = 0; i < a.size() && !any_diff; ++i) {
    any_diff = a.instance(i).values != b.instance(i).values;
  }
  EXPECT_TRUE(any_diff);
}

TEST(StatsTest, ComputesTableIvRow) {
  const Dataset d = GenerateTicTacToe();
  const DatasetStats stats = ComputeStats("tic-tac-toe", d);
  EXPECT_EQ(stats.num_instances, 958u);
  EXPECT_EQ(stats.num_features, 9);
  EXPECT_EQ(stats.FeatureTypeLabel(), "discrete");
  const std::string row = FormatStatsRow(stats);
  EXPECT_NE(row.find("tic-tac-toe"), std::string::npos);
  EXPECT_NE(row.find("958"), std::string::npos);
}

TEST(StatsTest, MixedLabel) {
  const Dataset d = *MakeBenchmark("adult", 50, 3);
  const DatasetStats stats = ComputeStats("adult", d);
  EXPECT_EQ(stats.FeatureTypeLabel(), "mixed");
}

}  // namespace
}  // namespace ctfl
