#include "ctfl/nn/matrix.h"

#include <gtest/gtest.h>

namespace ctfl {
namespace {

TEST(MatrixTest, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(MatrixTest, FillScaleClamp) {
  Matrix m(2, 2);
  m.Fill(3.0);
  m.Scale(2.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 6.0);
  m(0, 0) = -5.0;
  m.Clamp(0.0, 4.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

TEST(MatrixTest, Axpy) {
  Matrix a(1, 2), b(1, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  b(0, 0) = 10.0;
  b(0, 1) = 20.0;
  a.Axpy(0.5, b);
  EXPECT_DOUBLE_EQ(a(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(a(0, 1), 12.0);
}

TEST(MatrixTest, MatMulHandExample) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  // a = [[1,2,3],[4,5,6]]; b = [[7,8],[9,10],[11,12]].
  double av[] = {1, 2, 3, 4, 5, 6};
  double bv[] = {7, 8, 9, 10, 11, 12};
  std::copy(av, av + 6, a.data());
  std::copy(bv, bv + 6, b.data());
  const Matrix c = a.MatMul(b);
  ASSERT_EQ(c.rows(), 2u);
  ASSERT_EQ(c.cols(), 2u);
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(MatrixTest, TransposedVariantsAgreeWithExplicit) {
  Rng rng(9);
  Matrix a(4, 5), b(4, 3), c(6, 5);
  a.RandomUniform(rng, -1, 1);
  b.RandomUniform(rng, -1, 1);
  c.RandomUniform(rng, -1, 1);

  // a^T * b  via TransposedMatMul.
  const Matrix atb = a.TransposedMatMul(b);
  ASSERT_EQ(atb.rows(), 5u);
  ASSERT_EQ(atb.cols(), 3u);
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      double expected = 0.0;
      for (size_t k = 0; k < 4; ++k) expected += a(k, i) * b(k, j);
      EXPECT_NEAR(atb(i, j), expected, 1e-12);
    }
  }

  // a * c^T via MatMulTransposed.
  const Matrix act = a.MatMulTransposed(c);
  ASSERT_EQ(act.rows(), 4u);
  ASSERT_EQ(act.cols(), 6u);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 6; ++j) {
      double expected = 0.0;
      for (size_t k = 0; k < 5; ++k) expected += a(i, k) * c(j, k);
      EXPECT_NEAR(act(i, j), expected, 1e-12);
    }
  }
}

TEST(MatrixTest, RandomUniformInRange) {
  Rng rng(10);
  Matrix m(10, 10);
  m.RandomUniform(rng, -0.5, 0.5);
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_GE(m.data()[i], -0.5);
    EXPECT_LT(m.data()[i], 0.5);
  }
}

}  // namespace
}  // namespace ctfl
