#include "ctfl/nn/matrix.h"

#include <cstring>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace ctfl {
namespace {

TEST(MatrixTest, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(MatrixTest, FillScaleClamp) {
  Matrix m(2, 2);
  m.Fill(3.0);
  m.Scale(2.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 6.0);
  m(0, 0) = -5.0;
  m.Clamp(0.0, 4.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

TEST(MatrixTest, Axpy) {
  Matrix a(1, 2), b(1, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  b(0, 0) = 10.0;
  b(0, 1) = 20.0;
  a.Axpy(0.5, b);
  EXPECT_DOUBLE_EQ(a(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(a(0, 1), 12.0);
}

TEST(MatrixTest, MatMulHandExample) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  // a = [[1,2,3],[4,5,6]]; b = [[7,8],[9,10],[11,12]].
  double av[] = {1, 2, 3, 4, 5, 6};
  double bv[] = {7, 8, 9, 10, 11, 12};
  std::copy(av, av + 6, a.data());
  std::copy(bv, bv + 6, b.data());
  const Matrix c = a.MatMul(b);
  ASSERT_EQ(c.rows(), 2u);
  ASSERT_EQ(c.cols(), 2u);
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(MatrixTest, TransposedVariantsAgreeWithExplicit) {
  Rng rng(9);
  Matrix a(4, 5), b(4, 3), c(6, 5);
  a.RandomUniform(rng, -1, 1);
  b.RandomUniform(rng, -1, 1);
  c.RandomUniform(rng, -1, 1);

  // a^T * b  via TransposedMatMul.
  const Matrix atb = a.TransposedMatMul(b);
  ASSERT_EQ(atb.rows(), 5u);
  ASSERT_EQ(atb.cols(), 3u);
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      double expected = 0.0;
      for (size_t k = 0; k < 4; ++k) expected += a(k, i) * b(k, j);
      EXPECT_NEAR(atb(i, j), expected, 1e-12);
    }
  }

  // a * c^T via MatMulTransposed.
  const Matrix act = a.MatMulTransposed(c);
  ASSERT_EQ(act.rows(), 4u);
  ASSERT_EQ(act.cols(), 6u);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 6; ++j) {
      double expected = 0.0;
      for (size_t k = 0; k < 5; ++k) expected += a(i, k) * c(j, k);
      EXPECT_NEAR(act(i, j), expected, 1e-12);
    }
  }
}

// ---- Sharded kernels vs serial reference --------------------------------
//
// The parallel kernels promise *bit* identity with the serial path: each
// output element is accumulated by exactly one thread in the same term
// order. These tests force the sharded path with a grain of 1 flop and
// compare against the serial result with memcmp — EXPECT_NEAR would hide a
// broken schedule.

class ShardedKernelTest : public ::testing::Test {
 protected:
  void TearDown() override {
    SetMatrixParallelism(0);
    SetMatrixParallelGrain(size_t{1} << 16);
  }

  static Matrix Random(size_t rows, size_t cols, uint64_t seed,
                       bool with_zeros = false) {
    Rng rng(seed);
    Matrix m(rows, cols);
    m.RandomUniform(rng, -1, 1);
    if (with_zeros) {
      // Sprinkle exact zeros so TransposedMatMul's zero-skip branch is
      // exercised (skipping vs adding 0.0 can flip signed zeros).
      for (size_t i = 0; i < m.size(); i += 3) m.data()[i] = 0.0;
    }
    return m;
  }

  static ::testing::AssertionResult SameBits(const Matrix& a,
                                             const Matrix& b) {
    if (a.rows() != b.rows() || a.cols() != b.cols()) {
      return ::testing::AssertionFailure() << "shape mismatch";
    }
    if (std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) != 0) {
      for (size_t i = 0; i < a.size(); ++i) {
        if (std::memcmp(&a.data()[i], &b.data()[i], sizeof(double)) != 0) {
          return ::testing::AssertionFailure()
                 << "first bit difference at flat index " << i << ": "
                 << a.data()[i] << " vs " << b.data()[i];
        }
      }
    }
    return ::testing::AssertionSuccess();
  }
};

TEST_F(ShardedKernelTest, AllKernelsBitIdenticalOnRaggedShapes) {
  // Ragged and degenerate shapes: single row, single column, prime
  // dimensions, and a shape with fewer rows than workers.
  const std::vector<std::pair<size_t, size_t>> shapes = {
      {1, 97}, {97, 1}, {3, 8}, {7, 11}, {13, 5}, {31, 2}, {64, 64}};
  uint64_t seed = 100;
  for (const auto& [m, k] : shapes) {
    for (const size_t n : {size_t{1}, size_t{7}, size_t{32}}) {
      SCOPED_TRACE(::testing::Message()
                   << "m=" << m << " k=" << k << " n=" << n);
      const Matrix a = Random(m, k, ++seed, /*with_zeros=*/true);
      const Matrix b = Random(k, n, ++seed);
      const Matrix bt = Random(n, k, ++seed);
      const Matrix at_rhs = Random(m, n, ++seed);

      SetMatrixParallelism(1);  // serial reference
      const Matrix serial_ab = a.MatMul(b);
      const Matrix serial_abt = a.MatMulTransposed(bt);
      const Matrix serial_atb = a.TransposedMatMul(at_rhs);

      SetMatrixParallelism(8);
      SetMatrixParallelGrain(1);  // force the sharded path on tiny inputs
      EXPECT_TRUE(SameBits(serial_ab, a.MatMul(b)));
      EXPECT_TRUE(SameBits(serial_abt, a.MatMulTransposed(bt)));
      EXPECT_TRUE(SameBits(serial_atb, a.TransposedMatMul(at_rhs)));
      SetMatrixParallelism(1);
      SetMatrixParallelGrain(size_t{1} << 16);
    }
  }
}

TEST_F(ShardedKernelTest, GrainThresholdKeepsSmallProductsSerial) {
  // Below the grain the parallel pool must not even be consulted; the
  // result is identical either way, but this pins the gate's semantics.
  SetMatrixParallelism(8);
  SetMatrixParallelGrain(size_t{1} << 30);
  const Matrix a = Random(5, 5, 1);
  const Matrix b = Random(5, 5, 2);
  const Matrix gated = a.MatMul(b);
  SetMatrixParallelism(1);
  EXPECT_TRUE(SameBits(gated, a.MatMul(b)));
}

TEST_F(ShardedKernelTest, ParallelismKnobRoundTrips) {
  SetMatrixParallelism(3);
  EXPECT_EQ(MatrixParallelism(), 3);
  SetMatrixParallelism(1);
  EXPECT_EQ(MatrixParallelism(), 1);
  SetMatrixParallelism(0);  // 0 = hardware concurrency, resolved >= 1
  EXPECT_GE(MatrixParallelism(), 1);
  SetMatrixParallelGrain(42);
  EXPECT_EQ(MatrixParallelGrain(), 42u);
}

TEST(MatrixTest, RandomUniformInRange) {
  Rng rng(10);
  Matrix m(10, 10);
  m.RandomUniform(rng, -0.5, 0.5);
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_GE(m.data()[i], -0.5);
    EXPECT_LT(m.data()[i], 0.5);
  }
}

}  // namespace
}  // namespace ctfl
