#include "ctfl/fl/metrics.h"

#include <numeric>

#include <gtest/gtest.h>

#include "ctfl/data/gen/synthetic.h"
#include "ctfl/nn/trainer.h"

namespace ctfl {
namespace {

TEST(ConfusionMatrixTest, HandValues) {
  ConfusionMatrix cm;
  cm.tp = 30;
  cm.tn = 50;
  cm.fp = 10;
  cm.fn = 10;
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 0.8);
  EXPECT_DOUBLE_EQ(cm.Precision(), 0.75);
  EXPECT_DOUBLE_EQ(cm.Recall(), 0.75);
  EXPECT_DOUBLE_EQ(cm.F1(), 0.75);
  // TPR = 30/40 = 0.75; TNR = 50/60 = 0.8333.
  EXPECT_NEAR(cm.BalancedAccuracy(), 0.5 * (0.75 + 50.0 / 60), 1e-12);
}

TEST(ConfusionMatrixTest, DegenerateDenominators) {
  ConfusionMatrix cm;  // all zero
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(cm.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(cm.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(cm.F1(), 0.0);

  // Only negatives present: balanced accuracy falls back to accuracy.
  cm.tn = 10;
  EXPECT_DOUBLE_EQ(cm.BalancedAccuracy(), 1.0);
}

TEST(ConfusionMatrixTest, ValueDispatch) {
  ConfusionMatrix cm;
  cm.tp = 1;
  cm.fn = 1;
  EXPECT_DOUBLE_EQ(cm.Value(MetricKind::kRecall), 0.5);
  EXPECT_DOUBLE_EQ(cm.Value(MetricKind::kPrecision), 1.0);
  EXPECT_DOUBLE_EQ(cm.Value(MetricKind::kAccuracy), 0.5);
}

TEST(MetricsTest, KindNames) {
  EXPECT_STREQ(MetricKindToString(MetricKind::kF1), "f1");
  EXPECT_STREQ(MetricKindToString(MetricKind::kBalancedAccuracy),
               "balanced-accuracy");
}

SyntheticSpec Spec() {
  SyntheticSpec spec;
  spec.schema = std::make_shared<FeatureSchema>(
      std::vector<FeatureSpec>{FeatureSchema::Continuous("x", 0, 1)}, "neg",
      "pos");
  spec.samplers = {FeatureSampler{FeatureSampler::Kind::kUniform, 0, 0, {}}};
  spec.rules = {{{{0, GtPredicate::Op::kGt, 0.7}}, 1, 1.0},
                {{{0, GtPredicate::Op::kLt, 0.7}}, 0, 1.0}};
  return spec;
}

TEST(MetricsTest, EvaluateConfusionMatchesAccuracy) {
  Rng rng(3);
  const Dataset train = GenerateSynthetic(Spec(), 600, rng);
  const Dataset test = GenerateSynthetic(Spec(), 300, rng);
  LogicalNetConfig config;
  config.logic_layers = {{8, 8}};
  LogicalNet net(train.schema(), config);
  TrainConfig tc;
  tc.epochs = 15;
  tc.learning_rate = 0.05;
  TrainGrafted(net, train, tc);

  const ConfusionMatrix cm = EvaluateConfusion(net, test);
  EXPECT_EQ(cm.total(), test.size());
  EXPECT_NEAR(cm.Accuracy(), net.Accuracy(test), 1e-12);
  EXPECT_NEAR(EvaluateMetric(net, test, MetricKind::kAccuracy),
              net.Accuracy(test), 1e-12);
  // Class-imbalanced task: balanced accuracy differs from accuracy.
  EXPECT_GT(EvaluateMetric(net, test, MetricKind::kF1), 0.5);
}

TEST(MetricsTest, AccuracyWeightsAreUniform) {
  Rng rng(4);
  const Dataset test = GenerateSynthetic(Spec(), 100, rng);
  const auto weights =
      InstanceCreditWeights(test, MetricKind::kAccuracy).value();
  for (double w : weights) EXPECT_DOUBLE_EQ(w, 0.01);
}

TEST(MetricsTest, BalancedWeightsSumToHalfPerClass) {
  Rng rng(5);
  const Dataset test = GenerateSynthetic(Spec(), 400, rng);
  const auto weights =
      InstanceCreditWeights(test, MetricKind::kBalancedAccuracy).value();
  double pos_sum = 0.0, neg_sum = 0.0;
  for (size_t t = 0; t < test.size(); ++t) {
    (test.instance(t).label == 1 ? pos_sum : neg_sum) += weights[t];
  }
  EXPECT_NEAR(pos_sum, 0.5, 1e-9);
  EXPECT_NEAR(neg_sum, 0.5, 1e-9);
}

TEST(MetricsTest, NonDecomposableMetricsRejected) {
  Rng rng(6);
  const Dataset test = GenerateSynthetic(Spec(), 10, rng);
  EXPECT_FALSE(InstanceCreditWeights(test, MetricKind::kF1).ok());
  EXPECT_FALSE(InstanceCreditWeights(test, MetricKind::kPrecision).ok());
  EXPECT_FALSE(InstanceCreditWeights(test, MetricKind::kRecall).ok());
}

// The decomposition identity: metric = sum over correct tests of weights.
TEST(MetricsTest, WeightsDecomposeTheMetric) {
  Rng rng(7);
  const Dataset train = GenerateSynthetic(Spec(), 500, rng);
  const Dataset test = GenerateSynthetic(Spec(), 300, rng);
  LogicalNetConfig config;
  config.logic_layers = {{8, 8}};
  LogicalNet net(train.schema(), config);
  TrainConfig tc;
  tc.epochs = 10;
  tc.learning_rate = 0.05;
  TrainGrafted(net, train, tc);

  for (MetricKind kind :
       {MetricKind::kAccuracy, MetricKind::kBalancedAccuracy}) {
    const auto weights = InstanceCreditWeights(test, kind).value();
    double reconstructed = 0.0;
    for (size_t t = 0; t < test.size(); ++t) {
      if (net.Predict(test.instance(t)) == test.instance(t).label) {
        reconstructed += weights[t];
      }
    }
    EXPECT_NEAR(reconstructed, EvaluateMetric(net, test, kind), 1e-9)
        << MetricKindToString(kind);
  }
}

}  // namespace
}  // namespace ctfl
