#include "ctfl/core/loss_tracing.h"

#include <gtest/gtest.h>

#include "ctfl/core/pipeline.h"
#include "ctfl/data/gen/synthetic.h"
#include "ctfl/fl/adversary.h"
#include "ctfl/fl/partition.h"

namespace ctfl {
namespace {

TraceResult MakeTrace(int n, std::vector<TestTrace> tests,
                      std::vector<std::vector<int>> miss_counts) {
  TraceResult trace;
  trace.num_participants = n;
  trace.tests = std::move(tests);
  trace.train_match_miss = std::move(miss_counts);
  trace.train_match_correct.resize(n);
  for (int p = 0; p < n; ++p) {
    trace.train_match_correct[p].assign(trace.train_match_miss[p].size(), 0);
  }
  return trace;
}

TestTrace Trace(bool correct, std::vector<int> related) {
  TestTrace t;
  t.correct = correct;
  t.related_count = std::move(related);
  t.total_related = 0;
  for (int c : t.related_count) t.total_related += c;
  return t;
}

TEST(LossTracingTest, SuspicionSeparatesGainFromLoss) {
  // P0: only gains. P1: only losses.
  const TraceResult trace = MakeTrace(
      2,
      {Trace(true, {4, 0}), Trace(true, {2, 0}), Trace(false, {0, 3}),
       Trace(false, {0, 5})},
      {{0, 0}, {1, 1}});
  const LossReport report = AnalyzeLoss(trace);
  EXPECT_LT(report.suspicion[0], 0.01);
  EXPECT_GT(report.suspicion[1], 0.99);
  ASSERT_EQ(report.flagged.size(), 1u);
  EXPECT_EQ(report.flagged[0], 1);
}

TEST(LossTracingTest, NoTracingMassMeansNoSuspicion) {
  const TraceResult trace =
      MakeTrace(2, {Trace(true, {1, 0})}, {{0}, {0}});
  const LossReport report = AnalyzeLoss(trace);
  EXPECT_DOUBLE_EQ(report.suspicion[1], 0.0);
  EXPECT_TRUE(report.flagged.empty() ||
              report.flagged == std::vector<int>{});
}

TEST(LossTracingTest, MissMatchRatioCountsTouchedRecords) {
  const TraceResult trace = MakeTrace(1, {Trace(false, {2})},
                                      {{3, 0, 1, 0}});
  const LossReport report = AnalyzeLoss(trace);
  EXPECT_NEAR(report.miss_match_ratio[0], 0.5, 1e-12);
}

TEST(LossTracingTest, FormatMentionsFlaggedParticipant) {
  const TraceResult trace = MakeTrace(
      2, {Trace(true, {4, 0}), Trace(false, {0, 5})}, {{0}, {1}});
  const LossReport report = AnalyzeLoss(trace);
  const std::string text = FormatLossReport(report);
  EXPECT_NE(text.find("FLAGGED"), std::string::npos);
}

// End-to-end: a label-flipping participant in a real federation should
// have markedly higher suspicion than honest ones.
TEST(LossTracingTest, EndToEndFlipperHasHighestSuspicion) {
  SyntheticSpec spec;
  spec.schema = std::make_shared<FeatureSchema>(
      std::vector<FeatureSpec>{
          FeatureSchema::Continuous("x", 0, 1),
          FeatureSchema::Continuous("y", 0, 1),
      },
      "neg", "pos");
  spec.samplers = {
      FeatureSampler{FeatureSampler::Kind::kUniform, 0, 0, {}},
      FeatureSampler{FeatureSampler::Kind::kUniform, 0, 0, {}}};
  spec.rules = {{{{0, GtPredicate::Op::kGt, 0.5}}, 1, 1.0},
                {{{0, GtPredicate::Op::kLt, 0.5}}, 0, 1.0}};
  Rng rng(7);
  const Dataset all = GenerateSynthetic(spec, 1200, rng);
  const Dataset test = GenerateSynthetic(spec, 300, rng);

  Rng prng(8);
  std::vector<Dataset> clients = PartitionUniform(all, 4, prng);
  Rng arng(9);
  FlipLabels(clients[2], 0.9, arng);  // participant 2 poisons its data
  const Federation fed = MakeFederation(std::move(clients));

  CtflConfig config;
  config.federated = false;
  config.central.epochs = 20;
  config.central.learning_rate = 0.05;
  config.net.logic_layers = {{16, 16}};
  config.net.seed = 4;
  config.tracer.tau_w = 0.8;
  const CtflReport report = RunCtfl(fed, test, config).value();

  const LossReport loss = AnalyzeLoss(report.trace);
  for (int p : {0, 1, 3}) {
    EXPECT_GT(loss.suspicion[2], loss.suspicion[p])
        << "flipper should out-suspect P" << p;
  }
}

}  // namespace
}  // namespace ctfl
