#include "ctfl/telemetry/run_report.h"

#include <thread>

#include <gtest/gtest.h>

#include "ctfl/core/pipeline.h"
#include "ctfl/data/gen/tictactoe.h"
#include "ctfl/data/split.h"
#include "ctfl/fl/partition.h"
#include "ctfl/util/build_info.h"
#include "ctfl/util/rng.h"

namespace ctfl {
namespace {

using telemetry::RunReport;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

RunReport MakeFixtureReport() {
  RunReport report;
  report.schema_version = 1;
  report.run_fingerprint = 0xdeadbeefcafef00dULL;
  report.config_digest = 0x0123456789abcdefULL;
  report.schema_fingerprint = 0xffffffffffffffffULL;
  report.failure_plan_fingerprint = 0x1ULL;
  report.build_type = "release";
  report.federated = true;
  report.num_participants = 4;
  report.train_records = 766;
  report.test_records = 192;
  report.test_accuracy = 0.971234567890123456;  // not representable: rounds

  telemetry::RunTelemetry& t = report.telemetry;
  t.train_seconds = 1.0 / 3.0;
  t.train_cpu_seconds = 0.1;  // 0.1 has no exact binary form: good probe
  t.trace_seconds = 2.5e-4;
  t.trace_cpu_seconds = 2.4e-4;
  t.allocate_seconds = 1e-6;
  t.allocate_cpu_seconds = 9.9e-7;
  t.grafting_steps = 1234;
  t.train_accuracy = 0.875;
  t.clients_dropped = 3;
  t.retries = 5;
  t.rounds_degraded = 2;
  t.rounds.push_back({0, 0.5, 0.9, 4, 0, 0, false, 0.45});
  t.rounds.push_back({1, 0.25, 0.8, 3, 1, 2, true, 0.2});
  t.epochs.push_back({0, 0.125, 0.7});
  t.rules_total = 96;
  t.rules_kept = 90;
  t.rules_pruned = 6;
  t.trace_keys = 100;
  t.tau_w_checks = 76600;
  t.related_records = 4321;
  t.uncovered_tests = 7;
  t.records_scanned = 50000;
  t.blocks_pruned = 400;
  t.max_rss_kb = 123456;
  t.voluntary_ctx_switches = 42;
  t.involuntary_ctx_switches = 17;
  return report;
}

void ExpectReportsEqual(const RunReport& a, const RunReport& b) {
  EXPECT_EQ(a.schema_version, b.schema_version);
  EXPECT_EQ(a.run_fingerprint, b.run_fingerprint);
  EXPECT_EQ(a.config_digest, b.config_digest);
  EXPECT_EQ(a.schema_fingerprint, b.schema_fingerprint);
  EXPECT_EQ(a.failure_plan_fingerprint, b.failure_plan_fingerprint);
  EXPECT_EQ(a.build_type, b.build_type);
  EXPECT_EQ(a.federated, b.federated);
  EXPECT_EQ(a.num_participants, b.num_participants);
  EXPECT_EQ(a.train_records, b.train_records);
  EXPECT_EQ(a.test_records, b.test_records);
  EXPECT_EQ(a.test_accuracy, b.test_accuracy);  // bit-exact

  const telemetry::RunTelemetry& x = a.telemetry;
  const telemetry::RunTelemetry& y = b.telemetry;
  EXPECT_EQ(x.train_seconds, y.train_seconds);
  EXPECT_EQ(x.train_cpu_seconds, y.train_cpu_seconds);
  EXPECT_EQ(x.trace_seconds, y.trace_seconds);
  EXPECT_EQ(x.trace_cpu_seconds, y.trace_cpu_seconds);
  EXPECT_EQ(x.allocate_seconds, y.allocate_seconds);
  EXPECT_EQ(x.allocate_cpu_seconds, y.allocate_cpu_seconds);
  EXPECT_EQ(x.grafting_steps, y.grafting_steps);
  EXPECT_EQ(x.train_accuracy, y.train_accuracy);
  EXPECT_EQ(x.clients_dropped, y.clients_dropped);
  EXPECT_EQ(x.retries, y.retries);
  EXPECT_EQ(x.rounds_degraded, y.rounds_degraded);
  ASSERT_EQ(x.rounds.size(), y.rounds.size());
  for (size_t i = 0; i < x.rounds.size(); ++i) {
    EXPECT_EQ(x.rounds[i].round, y.rounds[i].round);
    EXPECT_EQ(x.rounds[i].seconds, y.rounds[i].seconds);
    EXPECT_EQ(x.rounds[i].cpu_seconds, y.rounds[i].cpu_seconds);
    EXPECT_EQ(x.rounds[i].mean_local_loss, y.rounds[i].mean_local_loss);
    EXPECT_EQ(x.rounds[i].clients_trained, y.rounds[i].clients_trained);
    EXPECT_EQ(x.rounds[i].clients_dropped, y.rounds[i].clients_dropped);
    EXPECT_EQ(x.rounds[i].retries, y.rounds[i].retries);
    EXPECT_EQ(x.rounds[i].degraded, y.rounds[i].degraded);
  }
  ASSERT_EQ(x.epochs.size(), y.epochs.size());
  for (size_t i = 0; i < x.epochs.size(); ++i) {
    EXPECT_EQ(x.epochs[i].epoch, y.epochs[i].epoch);
    EXPECT_EQ(x.epochs[i].seconds, y.epochs[i].seconds);
    EXPECT_EQ(x.epochs[i].loss, y.epochs[i].loss);
  }
  EXPECT_EQ(x.rules_total, y.rules_total);
  EXPECT_EQ(x.rules_kept, y.rules_kept);
  EXPECT_EQ(x.rules_pruned, y.rules_pruned);
  EXPECT_EQ(x.trace_keys, y.trace_keys);
  EXPECT_EQ(x.tau_w_checks, y.tau_w_checks);
  EXPECT_EQ(x.related_records, y.related_records);
  EXPECT_EQ(x.uncovered_tests, y.uncovered_tests);
  EXPECT_EQ(x.records_scanned, y.records_scanned);
  EXPECT_EQ(x.blocks_pruned, y.blocks_pruned);
  EXPECT_EQ(x.max_rss_kb, y.max_rss_kb);
  EXPECT_EQ(x.voluntary_ctx_switches, y.voluntary_ctx_switches);
  EXPECT_EQ(x.involuntary_ctx_switches, y.involuntary_ctx_switches);
}

TEST(RunReportTest, JsonRoundTripIsBitExact) {
  const RunReport original = MakeFixtureReport();
  const std::string json = telemetry::RunReportJson(original);
  auto parsed = telemetry::ParseRunReportJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << json;
  ExpectReportsEqual(original, *parsed);
  // And the round trip is a fixed point: re-serializing the parsed
  // report reproduces the document byte-for-byte.
  EXPECT_EQ(telemetry::RunReportJson(*parsed), json);
}

TEST(RunReportTest, FileRoundTrip) {
  const RunReport original = MakeFixtureReport();
  const std::string path = TempPath("run_report_roundtrip.json");
  ASSERT_TRUE(telemetry::WriteRunReport(original, path).ok());
  auto parsed = telemetry::ReadRunReport(path);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ExpectReportsEqual(original, *parsed);
}

TEST(RunReportTest, UnknownFieldsIgnoredMissingKeepDefaults) {
  // Forward compatibility: a newer writer's extra fields are skipped and
  // absent sections leave defaults in place.
  auto parsed = telemetry::ParseRunReportJson(
      R"({"schema_version": 2, "future_section": {"x": [1, 2]},
          "run": {"fingerprint": "0x00000000000000ff", "novel": true}})");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->schema_version, 2);
  EXPECT_EQ(parsed->run_fingerprint, 0xffu);
  EXPECT_EQ(parsed->config_digest, 0u);
  EXPECT_TRUE(parsed->federated);  // default survives
  EXPECT_EQ(parsed->telemetry.rounds.size(), 0u);
}

TEST(RunReportTest, RejectsNonObjectAndMalformed) {
  EXPECT_FALSE(telemetry::ParseRunReportJson("[]").ok());
  EXPECT_FALSE(telemetry::ParseRunReportJson("{").ok());
  EXPECT_FALSE(telemetry::ReadRunReport("/no/such/report.json").ok());
}

// ---------------------------------------------------------------------------
// MakeRunReport over a real pipeline run.
// ---------------------------------------------------------------------------

struct PipelineFixture {
  Federation fed;
  Dataset test;
  CtflConfig config;

  PipelineFixture() : test(TicTacToeSchema()) {
    Dataset data = GenerateTicTacToe();
    Rng rng(5);
    auto split = StratifiedSplit(data, 0.25, rng);
    Rng prng(7);
    fed = MakeFederation(PartitionSkewSample(split.train, 3, 0.8, prng));
    test = std::move(split.test);
    config.federated = true;
    config.fedavg.rounds = 2;
    config.fedavg.local_epochs = 1;
    config.net.logic_layers = {{8, 8}};
    config.num_threads = 1;
  }
};

TEST(RunReportTest, MakeRunReportCarriesIdentityAndShape) {
  PipelineFixture fx;
  const CtflReport report = RunCtfl(fx.fed, fx.test, fx.config).value();
  const RunReport run_report =
      MakeRunReport(report, fx.config, fx.fed, fx.test);

  EXPECT_EQ(run_report.build_type, BuildTypeName());
  EXPECT_TRUE(run_report.federated);
  EXPECT_EQ(run_report.num_participants, 3);
  int64_t train_records = 0;
  for (const Participant& p : fx.fed) {
    train_records += static_cast<int64_t>(p.data.size());
  }
  EXPECT_EQ(run_report.train_records, train_records);
  EXPECT_EQ(run_report.test_records,
            static_cast<int64_t>(fx.test.size()));
  EXPECT_EQ(run_report.test_accuracy, report.test_accuracy);
  EXPECT_NE(run_report.config_digest, 0u);
  EXPECT_NE(run_report.schema_fingerprint, 0u);
  EXPECT_EQ(run_report.failure_plan_fingerprint, 0u);  // fault-free
  EXPECT_NE(run_report.run_fingerprint, 0u);

  // Telemetry rides along wholesale, kernel counters included.
  EXPECT_EQ(run_report.telemetry.rounds.size(), 2u);
  EXPECT_GT(run_report.telemetry.tau_w_checks, 0);
  EXPECT_EQ(run_report.telemetry.tau_w_checks,
            report.telemetry.tau_w_checks);

  // And the full report round-trips bit-exactly through JSON.
  auto parsed =
      telemetry::ParseRunReportJson(telemetry::RunReportJson(run_report));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ExpectReportsEqual(run_report, *parsed);
}

TEST(RunReportTest, PhaseCpuWithinWallTimesThreadBudget) {
  PipelineFixture fx;
  const CtflReport report = RunCtfl(fx.fed, fx.test, fx.config).value();
  const telemetry::RunTelemetry& t = report.telemetry;
  // The process-CPU clock sums every thread, so a phase's CPU time is
  // bounded by wall * total live threads. Use hardware concurrency as
  // the generous budget (the run itself was serial) plus scheduling
  // slack for clock granularity.
  const double budget = static_cast<double>(
      std::max(1u, std::thread::hardware_concurrency()));
  const double slack = 0.05;
  EXPECT_LE(t.train_cpu_seconds, t.train_seconds * budget + slack);
  EXPECT_LE(t.trace_cpu_seconds, t.trace_seconds * budget + slack);
  EXPECT_LE(t.allocate_cpu_seconds, t.allocate_seconds * budget + slack);
  EXPECT_GE(t.train_cpu_seconds, 0.0);
  EXPECT_GE(t.trace_cpu_seconds, 0.0);
  EXPECT_GE(t.allocate_cpu_seconds, 0.0);
  // Training dominates this workload; its CPU time must be visible.
  EXPECT_GT(t.train_cpu_seconds, 0.0);
  EXPECT_GE(t.total_cpu_seconds(),
            t.train_cpu_seconds + t.trace_cpu_seconds);
  // Per-round CPU tiles the training phase (up to per-lap granularity).
  double rounds_cpu = 0.0;
  for (const auto& round : t.rounds) rounds_cpu += round.cpu_seconds;
  EXPECT_LE(rounds_cpu, t.train_cpu_seconds + slack);
  EXPECT_GE(t.max_rss_kb, 0);
  EXPECT_GE(t.voluntary_ctx_switches, 0);
  EXPECT_GE(t.involuntary_ctx_switches, 0);
}

TEST(RunReportTest, ConfigDigestSemanticsNotThreads) {
  PipelineFixture fx;
  const uint64_t base = CtflConfigDigest(fx.config);

  // Thread knobs are explicitly excluded: the same semantic run at any
  // parallelism shares a digest (results are bit-identical, DESIGN.md §9).
  CtflConfig threads = fx.config;
  threads.num_threads = 8;
  threads.fedavg.num_threads = 4;
  threads.tracer.num_threads = 2;
  EXPECT_EQ(CtflConfigDigest(threads), base);

  // So is the trace-kernel selector: legacy and blocked are bit-identical
  // implementations of the same semantics (DESIGN.md §10), and the replay
  // harness's kernel-flip cells compare run fingerprints across them.
  CtflConfig kernel = fx.config;
  kernel.tracer.kernel = kernel.tracer.kernel == TraceKernelKind::kLegacy
                             ? TraceKernelKind::kBlocked
                             : TraceKernelKind::kLegacy;
  EXPECT_EQ(CtflConfigDigest(kernel), base);

  // Semantic knobs do move the digest.
  CtflConfig tau = fx.config;
  tau.tracer.tau_w = 0.8;
  EXPECT_NE(CtflConfigDigest(tau), base);

  CtflConfig seed = fx.config;
  seed.net.seed = 43;
  EXPECT_NE(CtflConfigDigest(seed), base);

  CtflConfig rounds = fx.config;
  rounds.fedavg.rounds = 3;
  EXPECT_NE(CtflConfigDigest(rounds), base);

  CtflConfig central = fx.config;
  central.federated = false;
  EXPECT_NE(CtflConfigDigest(central), base);

  // The run fingerprint additionally moves with the data shape.
  const CtflReport report = RunCtfl(fx.fed, fx.test, fx.config).value();
  const RunReport a = MakeRunReport(report, fx.config, fx.fed, fx.test);
  const RunReport b = MakeRunReport(report, fx.config, fx.fed, fx.fed[0].data);
  EXPECT_NE(a.run_fingerprint, b.run_fingerprint);
  const RunReport c = MakeRunReport(report, fx.config, fx.fed, fx.test);
  EXPECT_EQ(a.run_fingerprint, c.run_fingerprint);
}

}  // namespace
}  // namespace ctfl
