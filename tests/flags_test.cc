#include "ctfl/util/flags.h"

#include <gtest/gtest.h>

namespace ctfl {
namespace {

FlagParser MakeParser() {
  return FlagParser({{"name", "default"},
                     {"count", "3"},
                     {"rate", "0.5"},
                     {"verbose", "false"}});
}

TEST(FlagsTest, DefaultsApplyWhenUnset) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(parser.Parse(0, nullptr).ok());
  EXPECT_EQ(parser.GetString("name"), "default");
  EXPECT_EQ(parser.GetInt("count").value(), 3);
  EXPECT_DOUBLE_EQ(parser.GetDouble("rate").value(), 0.5);
  EXPECT_FALSE(parser.GetBool("verbose"));
}

TEST(FlagsTest, EqualsAndSpaceSyntax) {
  FlagParser parser = MakeParser();
  const char* argv[] = {"--name=alpha", "--count", "7"};
  ASSERT_TRUE(parser.Parse(3, argv).ok());
  EXPECT_EQ(parser.GetString("name"), "alpha");
  EXPECT_EQ(parser.GetInt("count").value(), 7);
}

TEST(FlagsTest, BooleanFlagPresenceMeansTrue) {
  FlagParser parser = MakeParser();
  const char* argv[] = {"--verbose"};
  ASSERT_TRUE(parser.Parse(1, argv).ok());
  EXPECT_TRUE(parser.GetBool("verbose"));
}

TEST(FlagsTest, BooleanFlagExplicitValue) {
  FlagParser parser = MakeParser();
  const char* argv[] = {"--verbose=false"};
  ASSERT_TRUE(parser.Parse(1, argv).ok());
  EXPECT_FALSE(parser.GetBool("verbose"));
}

TEST(FlagsTest, PositionalsCollected) {
  FlagParser parser = MakeParser();
  const char* argv[] = {"input.csv", "--count=1", "output.csv"};
  ASSERT_TRUE(parser.Parse(3, argv).ok());
  ASSERT_EQ(parser.positional().size(), 2u);
  EXPECT_EQ(parser.positional()[0], "input.csv");
  EXPECT_EQ(parser.positional()[1], "output.csv");
}

TEST(FlagsTest, UnknownFlagRejected) {
  FlagParser parser = MakeParser();
  const char* argv[] = {"--nonsense=1"};
  EXPECT_FALSE(parser.Parse(1, argv).ok());
}

TEST(FlagsTest, MissingValueRejected) {
  FlagParser parser = MakeParser();
  const char* argv[] = {"--count"};
  EXPECT_FALSE(parser.Parse(1, argv).ok());
}

TEST(FlagsTest, BadNumericValueSurfacesOnGet) {
  FlagParser parser = MakeParser();
  const char* argv[] = {"--count=abc"};
  ASSERT_TRUE(parser.Parse(1, argv).ok());
  EXPECT_FALSE(parser.GetInt("count").ok());
}

}  // namespace
}  // namespace ctfl
