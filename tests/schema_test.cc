#include "ctfl/data/schema.h"

#include <gtest/gtest.h>

namespace ctfl {
namespace {

FeatureSchema MakeSchema() {
  return FeatureSchema(
      {FeatureSchema::Continuous("age", 0, 100),
       FeatureSchema::Discrete("color", {"red", "green", "blue"}),
       FeatureSchema::Continuous("height", 1.0, 2.5)},
      "neg", "pos");
}

TEST(SchemaTest, CountsByType) {
  const FeatureSchema schema = MakeSchema();
  EXPECT_EQ(schema.num_features(), 3);
  EXPECT_EQ(schema.num_continuous(), 2);
  EXPECT_EQ(schema.num_discrete(), 1);
}

TEST(SchemaTest, LabelNames) {
  const FeatureSchema schema = MakeSchema();
  EXPECT_EQ(schema.label_name(0), "neg");
  EXPECT_EQ(schema.label_name(1), "pos");
}

TEST(SchemaTest, FeatureIndexLookup) {
  const FeatureSchema schema = MakeSchema();
  EXPECT_EQ(schema.FeatureIndex("color").value(), 1);
  EXPECT_EQ(schema.FeatureIndex("height").value(), 2);
  EXPECT_FALSE(schema.FeatureIndex("missing").ok());
}

TEST(SchemaTest, CategoryIndexLookup) {
  const FeatureSchema schema = MakeSchema();
  EXPECT_EQ(schema.CategoryIndex(1, "green").value(), 1);
  EXPECT_FALSE(schema.CategoryIndex(1, "purple").ok());
  // Continuous feature has no categories.
  EXPECT_FALSE(schema.CategoryIndex(0, "red").ok());
  // Out-of-range feature index.
  EXPECT_FALSE(schema.CategoryIndex(9, "red").ok());
}

TEST(SchemaTest, ContinuousDomainStored) {
  const FeatureSchema schema = MakeSchema();
  EXPECT_DOUBLE_EQ(schema.feature(2).lo, 1.0);
  EXPECT_DOUBLE_EQ(schema.feature(2).hi, 2.5);
}

}  // namespace
}  // namespace ctfl
