#include <gtest/gtest.h>

#include "ctfl/rules/rule_model.h"

namespace ctfl {
namespace {

SchemaPtr MakeSchema() {
  return std::make_shared<FeatureSchema>(
      std::vector<FeatureSpec>{
          FeatureSchema::Continuous("capital-gain", 0, 100000),
          FeatureSchema::Continuous("work-hours", 0, 100),
          FeatureSchema::Discrete("marital-status",
                                  {"married", "never", "divorced"}),
      },
      "low", "high");
}

Instance MakeInstance(double gain, double hours, int marital) {
  Instance inst;
  inst.values = {gain, hours, static_cast<double>(marital)};
  return inst;
}

Predicate Gt(int f, double v) {
  Predicate p;
  p.feature = f;
  p.op = Predicate::Op::kGt;
  p.threshold = v;
  return p;
}

Predicate Lt(int f, double v) {
  Predicate p;
  p.feature = f;
  p.op = Predicate::Op::kLt;
  p.threshold = v;
  return p;
}

Predicate Eq(int f, int c) {
  Predicate p;
  p.feature = f;
  p.op = Predicate::Op::kEq;
  p.category = c;
  return p;
}

TEST(PredicateTest, EvaluatesAllOps) {
  const Instance inst = MakeInstance(5000, 40, 1);
  EXPECT_TRUE(Gt(0, 4000).Evaluate(inst));
  EXPECT_FALSE(Gt(0, 5000).Evaluate(inst));
  EXPECT_TRUE(Lt(1, 41).Evaluate(inst));
  EXPECT_TRUE(Eq(2, 1).Evaluate(inst));
  Predicate neq = Eq(2, 0);
  neq.op = Predicate::Op::kNeq;
  EXPECT_TRUE(neq.Evaluate(inst));
}

TEST(PredicateTest, ToStringIsReadable) {
  const SchemaPtr schema = MakeSchema();
  EXPECT_EQ(Gt(0, 21000).ToString(*schema), "capital-gain > 21000");
  EXPECT_EQ(Eq(2, 1).ToString(*schema), "marital-status = never");
}

// The paper's example rule r2-: work-hours > 14 OR marital-status = never.
TEST(RuleTest, PaperExampleDisjunction) {
  const Rule r2_neg = Rule::Disj({Rule::Atom(Gt(1, 14)), Rule::Atom(Eq(2, 1))});
  EXPECT_TRUE(r2_neg.Evaluate(MakeInstance(0, 20, 0)));   // hours > 14
  EXPECT_TRUE(r2_neg.Evaluate(MakeInstance(0, 10, 1)));   // never married
  EXPECT_FALSE(r2_neg.Evaluate(MakeInstance(0, 10, 0)));  // neither
  const SchemaPtr schema = MakeSchema();
  EXPECT_EQ(r2_neg.ToString(*schema),
            "(work-hours > 14 v marital-status = never)");
}

TEST(RuleTest, NestedCompoundRules) {
  // (gain > 21k) AND (hours > 14 OR never-married).
  const Rule compound = Rule::Conj(
      {Rule::Atom(Gt(0, 21000)),
       Rule::Disj({Rule::Atom(Gt(1, 14)), Rule::Atom(Eq(2, 1))})});
  EXPECT_TRUE(compound.Evaluate(MakeInstance(30000, 20, 0)));
  EXPECT_FALSE(compound.Evaluate(MakeInstance(30000, 10, 0)));
  EXPECT_FALSE(compound.Evaluate(MakeInstance(10000, 20, 0)));
  EXPECT_EQ(compound.NumPredicates(), 3);
  EXPECT_EQ(compound.Depth(), 2);
}

TEST(RuleTest, SingleChildCollapses) {
  const Rule r = Rule::Conj({Rule::Atom(Gt(0, 1))});
  EXPECT_EQ(r.kind(), Rule::Kind::kAtom);
}

TEST(RuleTest, ConstantsEvaluate) {
  const Instance inst = MakeInstance(0, 0, 0);
  EXPECT_TRUE(Rule::True().Evaluate(inst));
  EXPECT_FALSE(Rule::False().Evaluate(inst));
  EXPECT_EQ(Rule::True().NumPredicates(), 0);
  EXPECT_EQ(Rule::True().ToString(*MakeSchema()), "true");
}

// Paper Example III.2: rule-based model classification by weighted voting.
TEST(RuleModelTest, PaperExampleClassification) {
  RuleModel model;
  model.AddRule({Rule::Atom(Gt(0, 21000)), 1, 1.0});
  model.AddRule({Rule::Atom(Gt(1, 50)), 1, 1.0});
  model.AddRule({Rule::Atom(Lt(0, 5000)), 0, 1.0});
  model.AddRule(
      {Rule::Disj({Rule::Atom(Gt(1, 14)), Rule::Atom(Eq(2, 1))}), 0, 0.5});

  // Activates r2+ (hours 60 > 50) and r2- (hours > 14): 1 vs 0.5 -> pos.
  const Instance x1 = MakeInstance(10000, 60, 0);
  EXPECT_DOUBLE_EQ(model.PositiveVote(x1), 1.0);
  EXPECT_DOUBLE_EQ(model.NegativeVote(x1), 0.5);
  EXPECT_EQ(model.Classify(x1), 1);

  // Activates r1- and r2- only -> neg.
  const Instance x2 = MakeInstance(1000, 20, 1);
  EXPECT_EQ(model.Classify(x2), 0);
}

TEST(RuleModelTest, ActivationBitsetIndicesAlign) {
  RuleModel model;
  const int a = model.AddRule({Rule::Atom(Gt(0, 100)), 1, 1.0});
  const int b = model.AddRule({Rule::Atom(Lt(1, 50)), 0, 1.0});
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  const Bitset bits = model.Activations(MakeInstance(200, 10, 0));
  EXPECT_TRUE(bits.Test(0));
  EXPECT_TRUE(bits.Test(1));
  const Bitset bits2 = model.Activations(MakeInstance(50, 90, 0));
  EXPECT_FALSE(bits2.Test(0));
  EXPECT_FALSE(bits2.Test(1));
}

TEST(RuleModelTest, BiasShiftsDecision) {
  RuleModel model;
  model.AddRule({Rule::True(), 1, 1.0});
  const Instance x = MakeInstance(0, 0, 0);
  EXPECT_EQ(model.Classify(x), 1);
  model.SetBias(2.0);  // require positive vote >= negative + 2
  EXPECT_EQ(model.Classify(x), 0);
}

TEST(RuleModelTest, TieGoesPositive) {
  RuleModel model;
  model.AddRule({Rule::True(), 1, 1.0});
  model.AddRule({Rule::True(), 0, 1.0});
  EXPECT_EQ(model.Classify(MakeInstance(0, 0, 0)), 1);
}

TEST(RuleModelTest, AccuracyOnLabeledData) {
  RuleModel model;
  model.AddRule({Rule::Atom(Gt(0, 500)), 1, 1.0});
  model.SetBias(0.5);  // positive only when the rule fires
  Dataset d(MakeSchema());
  for (int i = 0; i < 10; ++i) {
    Instance inst = MakeInstance(i * 100.0 + 1, 0, 0);
    inst.label = i >= 5 ? 1 : 0;
    d.AppendUnchecked(std::move(inst));
  }
  EXPECT_DOUBLE_EQ(model.Accuracy(d), 1.0);
}

TEST(RuleModelTest, DescribeListsRules) {
  RuleModel model;
  model.AddRule({Rule::Atom(Gt(0, 21000)), 1, 0.75});
  const std::string text = model.Describe(*MakeSchema());
  EXPECT_NE(text.find("r0+"), std::string::npos);
  EXPECT_NE(text.find("capital-gain > 21000"), std::string::npos);
  EXPECT_NE(text.find("0.75"), std::string::npos);
}

}  // namespace
}  // namespace ctfl
