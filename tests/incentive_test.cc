#include "ctfl/core/incentive.h"

#include <numeric>

#include <gtest/gtest.h>

#include "ctfl/data/gen/synthetic.h"
#include "ctfl/fl/adversary.h"
#include "ctfl/fl/partition.h"

namespace ctfl {
namespace {

// Builds a minimal CtflReport with fabricated scores/trace for unit tests
// (model content is irrelevant to payout math).
CtflReport FakeReport(std::vector<double> micro, std::vector<double> macro,
                      std::vector<TestTrace> tests) {
  const SchemaPtr schema = std::make_shared<FeatureSchema>(
      std::vector<FeatureSpec>{FeatureSchema::Continuous("x", 0, 1)}, "n",
      "p");
  LogicalNetConfig config;
  config.tau_d = 2;
  config.logic_layers = {{2, 2}};
  CtflReport report{LogicalNet(schema, config)};
  report.micro_scores = std::move(micro);
  report.macro_scores = std::move(macro);
  report.trace.num_participants =
      static_cast<int>(report.micro_scores.size());
  report.trace.tests = std::move(tests);
  report.trace.train_match_correct.resize(report.trace.num_participants);
  report.trace.train_match_miss.resize(report.trace.num_participants);
  return report;
}

TestTrace Trace(bool correct, std::vector<int> related) {
  TestTrace t;
  t.correct = correct;
  t.related_count = std::move(related);
  t.total_related = 0;
  for (int c : t.related_count) t.total_related += c;
  return t;
}

TEST(IncentiveTest, PayoutsProportionalToMacroScores) {
  CtflReport report = FakeReport({0.5, 0.3, 0.2}, {0.4, 0.4, 0.2},
                                 {Trace(true, {1, 1, 1})});
  IncentiveConfig config;
  config.budget = 100.0;
  const auto payouts = ComputePayouts(report, config);
  ASSERT_EQ(payouts.size(), 3u);
  EXPECT_NEAR(payouts[0].amount, 40.0, 1e-9);
  EXPECT_NEAR(payouts[1].amount, 40.0, 1e-9);
  EXPECT_NEAR(payouts[2].amount, 20.0, 1e-9);
}

TEST(IncentiveTest, MicroVariantUsesMicroScores) {
  CtflReport report = FakeReport({0.75, 0.25}, {0.5, 0.5},
                                 {Trace(true, {1, 1})});
  IncentiveConfig config;
  config.budget = 100.0;
  config.use_macro = false;
  const auto payouts = ComputePayouts(report, config);
  EXPECT_NEAR(payouts[0].amount, 75.0, 1e-9);
}

TEST(IncentiveTest, BudgetFullyDistributed) {
  CtflReport report = FakeReport({0.1, 0.6, 0.3}, {0.2, 0.5, 0.3},
                                 {Trace(true, {1, 1, 1})});
  IncentiveConfig config;
  config.budget = 250.0;
  config.participation_floor = 10.0;
  const auto payouts = ComputePayouts(report, config);
  double total = 0.0;
  for (const Payout& p : payouts) total += p.amount;
  EXPECT_NEAR(total, 250.0, 1e-9);
  for (const Payout& p : payouts) EXPECT_GE(p.amount, 10.0 - 1e-9);
}

TEST(IncentiveTest, FlaggedParticipantForfeits) {
  // P1's tracing mass is pure loss -> flagged by AnalyzeLoss defaults.
  CtflReport report = FakeReport(
      {0.5, 0.0}, {0.5, 0.3},
      {Trace(true, {3, 0}), Trace(false, {0, 4}), Trace(false, {0, 2})});
  IncentiveConfig config;
  config.budget = 100.0;
  config.flagged_penalty = 0.0;
  const auto payouts = ComputePayouts(report, config);
  EXPECT_FALSE(payouts[0].flagged);
  EXPECT_TRUE(payouts[1].flagged);
  EXPECT_NEAR(payouts[1].amount, 0.0, 1e-9);
  EXPECT_NEAR(payouts[0].amount, 100.0, 1e-9);
}

TEST(IncentiveTest, NoQualifyingScoresMeansNoPayouts) {
  CtflReport report = FakeReport({0.0, 0.0}, {0.0, 0.0}, {});
  IncentiveConfig config;
  config.budget = 50.0;
  const auto payouts = ComputePayouts(report, config);
  for (const Payout& p : payouts) EXPECT_DOUBLE_EQ(p.amount, 0.0);
}

TEST(IncentiveTest, FormatListsEveryParticipant) {
  CtflReport report = FakeReport({0.6, 0.4}, {0.5, 0.5},
                                 {Trace(true, {1, 1})});
  const auto payouts = ComputePayouts(report, IncentiveConfig{});
  const std::string text = FormatPayouts(payouts);
  EXPECT_NE(text.find("P0"), std::string::npos);
  EXPECT_NE(text.find("P1"), std::string::npos);
}

}  // namespace
}  // namespace ctfl
