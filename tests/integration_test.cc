// Cross-module integration scenarios: CTFL against the baselines on
// federations with known ground-truth structure.

#include <numeric>

#include <gtest/gtest.h>

#include "ctfl/core/pipeline.h"
#include "ctfl/data/gen/synthetic.h"
#include "ctfl/data/gen/tictactoe.h"
#include "ctfl/data/split.h"
#include "ctfl/fl/adversary.h"
#include "ctfl/fl/partition.h"
#include "ctfl/valuation/individual.h"
#include "ctfl/valuation/shapley.h"

namespace ctfl {
namespace {

SyntheticSpec Spec() {
  SyntheticSpec spec;
  spec.schema = std::make_shared<FeatureSchema>(
      std::vector<FeatureSpec>{
          FeatureSchema::Continuous("x", 0, 1),
          FeatureSchema::Continuous("y", 0, 1),
      },
      "neg", "pos");
  spec.samplers = {
      FeatureSampler{FeatureSampler::Kind::kUniform, 0, 0, {}},
      FeatureSampler{FeatureSampler::Kind::kUniform, 0, 0, {}}};
  spec.rules = {{{{0, GtPredicate::Op::kGt, 0.5}}, 1, 1.0},
                {{{0, GtPredicate::Op::kLt, 0.5}}, 0, 1.0}};
  spec.label_noise = 0.02;
  return spec;
}

CtflConfig FastConfig() {
  CtflConfig config;
  config.federated = false;
  config.central.epochs = 18;
  config.central.learning_rate = 0.05;
  config.net.logic_layers = {{16, 16}};
  config.net.seed = 5;
  config.tracer.tau_w = 0.85;
  return config;
}

// A participant holding 10x more data than the others earns a larger micro
// score.
TEST(IntegrationTest, VolumeEarnsMicroCredit) {
  Rng rng(1);
  const SyntheticSpec spec = Spec();
  const Dataset big = GenerateSynthetic(spec, 1000, rng);
  const Dataset small1 = GenerateSynthetic(spec, 100, rng);
  const Dataset small2 = GenerateSynthetic(spec, 100, rng);
  const Dataset test = GenerateSynthetic(spec, 250, rng);
  const Federation fed = MakeFederation({big, small1, small2});
  const CtflReport report = RunCtfl(fed, test, FastConfig()).value();
  EXPECT_GT(report.micro_scores[0], report.micro_scores[1] * 2);
  EXPECT_GT(report.micro_scores[0], report.micro_scores[2] * 2);
}

// Replication inflates micro but not macro (the paper's robustness
// argument for Eq. 6).
TEST(IntegrationTest, ReplicationHelpsMicroNotMacro) {
  Rng rng(2);
  const SyntheticSpec spec = Spec();
  const Dataset base_a = GenerateSynthetic(spec, 300, rng);
  const Dataset base_b = GenerateSynthetic(spec, 300, rng);
  const Dataset test = GenerateSynthetic(spec, 200, rng);

  const Federation honest = MakeFederation({base_a, base_b});
  const CtflReport before = RunCtfl(honest, test, FastConfig()).value();

  Dataset cheater = base_a;
  Rng arng(3);
  ReplicateData(cheater, 1.0, arng);  // doubles its data
  const Federation cheating = MakeFederation({cheater, base_b});
  const CtflReport after = RunCtfl(cheating, test, FastConfig()).value();

  // Micro credit for the replicator grows; macro stays put (within noise
  // from retraining on the enlarged dataset).
  EXPECT_GT(after.micro_scores[0], before.micro_scores[0] * 1.1);
  EXPECT_NEAR(after.macro_scores[0], before.macro_scores[0], 0.08);
}

// CTFL's ranking should broadly agree with exact Shapley on a small
// federation with a clear quality gradient.
TEST(IntegrationTest, RankingAgreesWithShapleyOnQualityGradient) {
  Rng rng(4);
  const SyntheticSpec spec = Spec();
  // Three participants: large clean, small clean, large but mostly
  // flipped.
  Dataset clean_large = GenerateSynthetic(spec, 700, rng);
  Dataset clean_small = GenerateSynthetic(spec, 150, rng);
  Dataset poisoned = GenerateSynthetic(spec, 700, rng);
  Rng arng(5);
  FlipLabels(poisoned, 1.0, arng);
  const Dataset test = GenerateSynthetic(spec, 250, rng);
  const Federation fed =
      MakeFederation({clean_large, clean_small, poisoned});

  const CtflReport ctfl = RunCtfl(fed, test, FastConfig()).value();
  const std::vector<int> ctfl_rank = RankByScore(ctfl.micro_scores);

  RetrainUtility::Config ucfg;
  ucfg.net.logic_layers = {{16, 16}};
  ucfg.net.seed = 5;
  ucfg.train.epochs = 12;
  ucfg.train.learning_rate = 0.05;
  RetrainUtility utility(&fed, &test, ucfg);
  const ContributionResult shapley =
      ShapleyValueScheme::ComputeExact(utility).value();
  const std::vector<int> shapley_rank = RankByScore(shapley.scores);

  // Both identify the large clean participant as the top contributor, and
  // Shapley (whose marginals see the damage) puts the flipper last.
  EXPECT_EQ(ctfl_rank.front(), 0);
  EXPECT_EQ(shapley_rank.front(), 0);
  EXPECT_EQ(shapley_rank.back(), 2);
  // CTFL's micro gain alone can still award the flipper coincidental
  // matches; its loss-tracing side is what singles the flipper out
  // (paper §IV-A) — by a wide margin.
  const LossReport loss = AnalyzeLoss(ctfl.trace);
  EXPECT_GT(loss.suspicion[2], loss.suspicion[0]);
  EXPECT_GT(loss.suspicion[2], loss.suspicion[1]);
}

// CTFL uses a single model training; Shapley-by-retraining needs
// exponentially more coalition evaluations.
TEST(IntegrationTest, CtflUsesOneTrainingShapleyMany) {
  Rng rng(6);
  const SyntheticSpec spec = Spec();
  const Dataset all = GenerateSynthetic(spec, 400, rng);
  const Dataset test = GenerateSynthetic(spec, 100, rng);
  Rng prng(7);
  const Federation fed = MakeFederation(PartitionUniform(all, 4, prng));

  CtflConfig cc = FastConfig();
  CtflScheme micro(&fed, &test, cc, CtflScheme::Variant::kMicro);
  RetrainUtility::Config ucfg;
  ucfg.net.logic_layers = {{8, 8}};
  ucfg.train.epochs = 4;
  RetrainUtility u1(&fed, &test, ucfg);
  const ContributionResult ctfl_result = micro.Compute(u1).value();

  RetrainUtility u2(&fed, &test, ucfg);
  const ContributionResult shapley =
      ShapleyValueScheme::ComputeExact(u2).value();
  EXPECT_EQ(ctfl_result.coalitions_evaluated, 1);
  EXPECT_GE(shapley.coalitions_evaluated, 15);
}

// End-to-end on the exact tic-tac-toe dataset with a skew-label split.
TEST(IntegrationTest, TicTacToeEndToEnd) {
  const Dataset full = GenerateTicTacToe();
  Rng rng(8);
  const TrainTestSplit split = StratifiedSplit(full, 0.25, rng);
  Rng prng(9);
  const Federation fed =
      MakeFederation(PartitionSkewLabel(split.train, 3, 0.6, prng));

  CtflConfig config = FastConfig();
  config.central.epochs = 40;
  config.net.logic_layers = {{48, 48}};
  const CtflReport report = RunCtfl(fed, split.test, config).value();
  EXPECT_GT(report.test_accuracy, 0.75);
  const double total = std::accumulate(report.micro_scores.begin(),
                                       report.micro_scores.end(), 0.0);
  EXPECT_GT(total, 0.5);  // most correct tests are traceable
}

// Individual scheme should NOT reward cooperation-only value, while CTFL
// still scores a complementary participant — the paper's Example II.1
// motivation, realized with feature-split data.
TEST(IntegrationTest, ComplementaryParticipantGetsCtflCredit) {
  // Two rules on different features; participant C holds the only data
  // exercising the second rule region.
  SyntheticSpec spec = Spec();
  spec.rules.push_back({{{1, GtPredicate::Op::kGt, 0.8}}, 0, 2.0});
  Rng rng(10);
  Dataset common1 = GenerateSynthetic(spec, 300, rng);
  Dataset common2 = GenerateSynthetic(spec, 300, rng);
  const Dataset test = GenerateSynthetic(spec, 250, rng);
  // Critical slice: y > 0.8 instances only.
  Dataset critical(spec.schema);
  while (critical.size() < 150) {
    Dataset batch = GenerateSynthetic(spec, 50, rng);
    for (const Instance& inst : batch.instances()) {
      if (inst.values[1] > 0.8) critical.AppendUnchecked(inst);
    }
  }
  const Federation fed = MakeFederation({common1, common2, critical});
  const CtflReport report = RunCtfl(fed, test, FastConfig()).value();
  EXPECT_GT(report.micro_scores[2], 0.01);
}

}  // namespace
}  // namespace ctfl
