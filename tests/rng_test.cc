#include "ctfl/util/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

namespace ctfl {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntCoversRangeEvenly) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int samples = 100000;
  for (int i = 0; i < samples; ++i) ++counts[rng.UniformInt(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, samples / 10, samples / 10 * 0.15);
  }
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int samples = 50000;
  for (int i = 0; i < samples; ++i) {
    const double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / samples, 0.0, 0.03);
  EXPECT_NEAR(sq / samples, 1.0, 0.05);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(17);
  int hits = 0;
  const int samples = 50000;
  for (int i = 0; i < samples; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / samples, 0.3, 0.02);
}

TEST(RngTest, GammaMeanEqualsShape) {
  Rng rng(19);
  for (double shape : {0.5, 1.0, 2.5, 7.0}) {
    double sum = 0.0;
    const int samples = 20000;
    for (int i = 0; i < samples; ++i) sum += rng.Gamma(shape);
    EXPECT_NEAR(sum / samples, shape, shape * 0.1) << "shape=" << shape;
  }
}

TEST(RngTest, DirichletSumsToOne) {
  Rng rng(23);
  for (double alpha : {0.1, 0.6, 1.0, 10.0}) {
    const std::vector<double> d = rng.Dirichlet(alpha, 8);
    EXPECT_EQ(d.size(), 8u);
    const double total = std::accumulate(d.begin(), d.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-9);
    for (double v : d) EXPECT_GE(v, 0.0);
  }
}

TEST(RngTest, DirichletSkewGrowsAsAlphaShrinks) {
  Rng rng(29);
  auto max_share = [&](double alpha) {
    double avg_max = 0.0;
    for (int rep = 0; rep < 200; ++rep) {
      const std::vector<double> d = rng.Dirichlet(alpha, 8);
      avg_max += *std::max_element(d.begin(), d.end());
    }
    return avg_max / 200;
  };
  EXPECT_GT(max_share(0.1), max_share(10.0));
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(31);
  std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int samples = 60000;
  for (int i = 0; i < samples; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(samples), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(samples), 0.3, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(samples), 0.6, 0.02);
}

TEST(RngTest, PermutationIsValid) {
  Rng rng(37);
  const std::vector<int> perm = rng.Permutation(50);
  std::vector<int> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(RngTest, ForkDecorrelates) {
  Rng a(41);
  Rng b = a.Fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

// Property sweep: distribution invariants hold across seeds.
class RngSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngSeedSweep, DirichletAlwaysNormalized) {
  Rng rng(GetParam());
  for (int k : {1, 2, 5, 16}) {
    const std::vector<double> d = rng.Dirichlet(0.6, k);
    EXPECT_NEAR(std::accumulate(d.begin(), d.end(), 0.0), 1.0, 1e-9);
  }
}

TEST_P(RngSeedSweep, UniformIntNeverOutOfRange) {
  Rng rng(GetParam());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformInt(7), 7u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0, 1, 42, 1234567, 0xdeadbeef));

}  // namespace
}  // namespace ctfl
