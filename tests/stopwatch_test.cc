#include "ctfl/util/stopwatch.h"

#include <thread>

#include <gtest/gtest.h>

namespace ctfl {
namespace {

void BurnCpu() {
  volatile double sink = 0.0;
  for (int i = 0; i < 500000; ++i) sink = sink + i * 1e-9;
}

TEST(StopwatchTest, ElapsedMicrosConsistentWithSeconds) {
  Stopwatch watch;
  BurnCpu();
  const int64_t micros = watch.ElapsedMicros();
  const double seconds = watch.ElapsedSeconds();
  EXPECT_GT(micros, 0);
  // Reads are sequential, so seconds (read later) >= micros-derived value
  // minus one microsecond of truncation.
  EXPECT_GE(seconds * 1e6, static_cast<double>(micros) - 1.0);
  // And they agree within a loose factor (no clock mixing).
  EXPECT_LT(static_cast<double>(micros), seconds * 1e6 + 1e6);
}

TEST(StopwatchTest, LapsTileTheTotal) {
  Stopwatch watch;
  BurnCpu();
  const double lap1 = watch.LapSeconds();
  BurnCpu();
  const double lap2 = watch.LapSeconds();
  const double total = watch.ElapsedSeconds();
  EXPECT_GT(lap1, 0.0);
  EXPECT_GT(lap2, 0.0);
  // lap1 + lap2 <= total (the final read happens after the last lap).
  EXPECT_LE(lap1 + lap2, total + 1e-6);
  // And they cover most of it.
  EXPECT_GT(lap1 + lap2, 0.5 * total);
}

TEST(StopwatchTest, LapMicrosAdvancesTheMark) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const int64_t lap1 = watch.LapMicros();
  EXPECT_GE(lap1, 1000);  // slept >= 2ms; allow coarse clocks
  const int64_t lap2 = watch.LapMicros();
  // Mark advanced: the second lap is tiny compared to the first.
  EXPECT_LT(lap2, lap1);
}

TEST(StopwatchTest, PeekDoesNotAdvance) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const double peek1 = watch.PeekLapSeconds();
  const double peek2 = watch.PeekLapSeconds();
  EXPECT_GE(peek2, peek1);  // still measuring from the same mark
  const double lap = watch.LapSeconds();
  EXPECT_GE(lap, peek1);
}

TEST(StopwatchTest, RestartResetsLapMark) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  watch.Restart();
  const int64_t lap = watch.LapMicros();
  EXPECT_LT(lap, 2000);  // the pre-Restart sleep is not included
  EXPECT_GE(watch.ElapsedMicros(), 0);
}

}  // namespace
}  // namespace ctfl
