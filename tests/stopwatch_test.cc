#include "ctfl/util/stopwatch.h"

#include <thread>

#include <gtest/gtest.h>

#include "ctfl/util/cpu_time.h"

namespace ctfl {
namespace {

void BurnCpu() {
  volatile double sink = 0.0;
  for (int i = 0; i < 500000; ++i) sink = sink + i * 1e-9;
}

TEST(StopwatchTest, ElapsedMicrosConsistentWithSeconds) {
  Stopwatch watch;
  BurnCpu();
  const int64_t micros = watch.ElapsedMicros();
  const double seconds = watch.ElapsedSeconds();
  EXPECT_GT(micros, 0);
  // Reads are sequential, so seconds (read later) >= micros-derived value
  // minus one microsecond of truncation.
  EXPECT_GE(seconds * 1e6, static_cast<double>(micros) - 1.0);
  // And they agree within a loose factor (no clock mixing).
  EXPECT_LT(static_cast<double>(micros), seconds * 1e6 + 1e6);
}

TEST(StopwatchTest, LapsTileTheTotal) {
  Stopwatch watch;
  BurnCpu();
  const double lap1 = watch.LapSeconds();
  BurnCpu();
  const double lap2 = watch.LapSeconds();
  const double total = watch.ElapsedSeconds();
  EXPECT_GT(lap1, 0.0);
  EXPECT_GT(lap2, 0.0);
  // lap1 + lap2 <= total (the final read happens after the last lap).
  EXPECT_LE(lap1 + lap2, total + 1e-6);
  // And they cover most of it.
  EXPECT_GT(lap1 + lap2, 0.5 * total);
}

TEST(StopwatchTest, LapMicrosAdvancesTheMark) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const int64_t lap1 = watch.LapMicros();
  EXPECT_GE(lap1, 1000);  // slept >= 2ms; allow coarse clocks
  const int64_t lap2 = watch.LapMicros();
  // Mark advanced: the second lap is tiny compared to the first.
  EXPECT_LT(lap2, lap1);
}

TEST(StopwatchTest, PeekDoesNotAdvance) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const double peek1 = watch.PeekLapSeconds();
  const double peek2 = watch.PeekLapSeconds();
  EXPECT_GE(peek2, peek1);  // still measuring from the same mark
  const double lap = watch.LapSeconds();
  EXPECT_GE(lap, peek1);
}

TEST(StopwatchTest, RestartResetsLapMark) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  watch.Restart();
  const int64_t lap = watch.LapMicros();
  EXPECT_LT(lap, 2000);  // the pre-Restart sleep is not included
  EXPECT_GE(watch.ElapsedMicros(), 0);
}

TEST(CpuTimeTest, ThreadCpuTracksWorkNotSleep) {
  if (!CpuTimeSupported()) GTEST_SKIP() << "no POSIX CPU clocks";
  ThreadCpuStopwatch cpu;
  Stopwatch wall;
  BurnCpu();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double cpu_seconds = cpu.ElapsedSeconds();
  const double wall_seconds = wall.ElapsedSeconds();
  EXPECT_GT(cpu_seconds, 0.0);  // the burn loop consumed CPU
  // A thread's CPU time never exceeds its wall time (allow 1ms of clock
  // granularity), and sleeping is wall-only, so cpu < wall here.
  EXPECT_LE(cpu_seconds, wall_seconds + 1e-3);
}

TEST(CpuTimeTest, ProcessCpuCoversAllThreadsAndLaps) {
  if (!CpuTimeSupported()) GTEST_SKIP() << "no POSIX CPU clocks";
  ProcessCpuStopwatch cpu;
  std::thread worker(BurnCpu);
  BurnCpu();
  worker.join();
  const double lap1 = cpu.LapSeconds();
  EXPECT_GT(lap1, 0.0);  // both threads' burn loops are visible
  const double lap2 = cpu.LapSeconds();
  // The mark advanced: the second lap no longer includes the burns.
  EXPECT_LT(lap2, lap1);
  EXPECT_GE(lap2, 0.0);
}

TEST(CpuTimeTest, ResourceUsageIsMonotone) {
  const ResourceUsage before = CurrentResourceUsage();
  BurnCpu();
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const ResourceUsage after = CurrentResourceUsage();
  // Context-switch totals and the RSS high-water mark never decrease.
  EXPECT_GE(after.voluntary_ctx_switches, before.voluntary_ctx_switches);
  EXPECT_GE(after.involuntary_ctx_switches,
            before.involuntary_ctx_switches);
  EXPECT_GE(after.max_rss_kb, before.max_rss_kb);
  if (CpuTimeSupported()) {
    // getrusage is populated alongside the CPU clocks on POSIX.
    EXPECT_GT(after.max_rss_kb, 0);
    // The sleep above yields the CPU: at least one voluntary switch.
    EXPECT_GT(after.voluntary_ctx_switches,
              before.voluntary_ctx_switches);
  }
}

}  // namespace
}  // namespace ctfl
