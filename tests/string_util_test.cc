#include "ctfl/util/string_util.h"

#include <gtest/gtest.h>

namespace ctfl {
namespace {

TEST(SplitTest, BasicFields) {
  const auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  const auto parts = Split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitTest, EmptyString) {
  const auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(TrimTest, StripsWhitespace) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(ParseDoubleTest, ValidAndInvalid) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(ParseDouble(" -2e3 ").value(), -2000.0);
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
  EXPECT_FALSE(ParseDouble("").ok());
}

TEST(ParseIntTest, ValidAndInvalid) {
  EXPECT_EQ(ParseInt("42").value(), 42);
  EXPECT_EQ(ParseInt(" -7 ").value(), -7);
  EXPECT_FALSE(ParseInt("4.2").ok());
  EXPECT_FALSE(ParseInt("x").ok());
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 3, "x", 1.5), "3-x-1.50");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

}  // namespace
}  // namespace ctfl
