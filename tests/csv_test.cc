#include "ctfl/util/csv.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace ctfl {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
  }
};

TEST_F(CsvTest, RoundTrip) {
  CsvTable table;
  table.header = {"a", "b"};
  table.rows = {{"1", "x"}, {"2", "y"}};
  const std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(WriteCsv(path, table).ok());

  const Result<CsvTable> loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->header, table.header);
  EXPECT_EQ(loaded->rows, table.rows);
  std::remove(path.c_str());
}

TEST_F(CsvTest, TrimsFieldsAndSkipsBlankLines) {
  const std::string path = TempPath("messy.csv");
  {
    std::ofstream out(path);
    out << "a , b\n\n 1, x \n\n2 ,y\n";
  }
  const Result<CsvTable> loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->header, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(loaded->rows.size(), 2u);
  EXPECT_EQ(loaded->rows[0], (std::vector<std::string>{"1", "x"}));
  std::remove(path.c_str());
}

TEST_F(CsvTest, RejectsRaggedRows) {
  const std::string path = TempPath("ragged.csv");
  {
    std::ofstream out(path);
    out << "a,b\n1,2\n1,2,3\n";
  }
  EXPECT_FALSE(ReadCsv(path).ok());
  std::remove(path.c_str());
}

TEST_F(CsvTest, MissingFileIsIoError) {
  const Result<CsvTable> loaded = ReadCsv(TempPath("does-not-exist.csv"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST_F(CsvTest, NoHeaderMode) {
  const std::string path = TempPath("nohdr.csv");
  {
    std::ofstream out(path);
    out << "1,2\n3,4\n";
  }
  const Result<CsvTable> loaded = ReadCsv(path, /*has_header=*/false);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->header.empty());
  EXPECT_EQ(loaded->rows.size(), 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ctfl
