#include "ctfl/store/bundle.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "ctfl/core/pipeline.h"
#include "ctfl/data/gen/synthetic.h"
#include "ctfl/fl/partition.h"
#include "ctfl/store/snapshot.h"

namespace ctfl {
namespace store {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

SyntheticSpec TwoRuleSpec() {
  SyntheticSpec spec;
  spec.schema = std::make_shared<FeatureSchema>(
      std::vector<FeatureSpec>{
          FeatureSchema::Continuous("x", 0, 1),
          FeatureSchema::Continuous("y", 0, 1),
      },
      "neg", "pos");
  spec.samplers = {
      FeatureSampler{FeatureSampler::Kind::kUniform, 0, 0, {}},
      FeatureSampler{FeatureSampler::Kind::kUniform, 0, 0, {}}};
  spec.rules = {{{{0, GtPredicate::Op::kGt, 0.5}}, 1, 1.0},
                {{{0, GtPredicate::Op::kLt, 0.5}}, 0, 1.0}};
  return spec;
}

/// One trained CTFL run plus everything a snapshot needs.
struct Fixture {
  Federation fed;
  Dataset test;
  CtflReport report;
  std::vector<std::vector<Bitset>> activations;
  SnapshotOptions options;
};

Fixture MakeFixture(int participants = 3) {
  Rng rng(21);
  const SyntheticSpec spec = TwoRuleSpec();
  const Dataset all = GenerateSynthetic(spec, 400, rng);
  Dataset test = GenerateSynthetic(spec, 120, rng);
  Rng prng(22);
  Federation fed =
      MakeFederation(PartitionSkewSample(all, participants, 0.7, prng));

  CtflConfig config;
  config.federated = false;
  config.central.epochs = 12;
  config.central.learning_rate = 0.05;
  config.net.logic_layers = {{10, 10}};
  config.net.seed = 5;
  config.tracer.tau_w = 0.85;
  CtflReport report = RunCtfl(fed, test, config).value();

  // Deterministic (no DP), so a fresh tracer reproduces the run's uploads.
  const ContributionTracer tracer(&report.model, &fed, config.tracer);

  Fixture fixture{std::move(fed), std::move(test), std::move(report),
                  tracer.train_activations(), SnapshotOptions{}};
  fixture.options.tau_w = config.tracer.tau_w;
  fixture.options.macro_delta = config.macro_delta;
  fixture.options.min_rule_weight = config.tracer.min_rule_weight;
  fixture.options.micro_scores = fixture.report.micro_scores;
  fixture.options.macro_scores = fixture.report.macro_scores;
  fixture.options.global_accuracy = fixture.report.trace.global_accuracy;
  fixture.options.matched_accuracy = fixture.report.trace.matched_accuracy;
  return fixture;
}

// ---------------------------------------------------------------------------
// Container level.
// ---------------------------------------------------------------------------

TEST(BundleContainerTest, Crc32MatchesKnownVectors) {
  EXPECT_EQ(Crc32("", 0), 0u);
  const std::string check = "123456789";
  EXPECT_EQ(Crc32(check.data(), check.size()), 0xCBF43926u);
}

TEST(BundleContainerTest, RoundTripPreservesBinarySections) {
  BundleWriter writer;
  const std::string binary("\x00\x01\xff\x7f payload\n\x00", 12);
  writer.AddSection("alpha", binary);
  writer.AddSection("beta", "");
  writer.AddSection("gamma", std::string(100000, 'x'));

  const std::string path = TempPath("container_roundtrip.ctflb");
  ASSERT_TRUE(writer.Write(path).ok());
  EXPECT_EQ(ReadFile(path).size(), writer.TotalBytes());

  const Result<BundleReader> reader = BundleReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ(reader->section_names(),
            (std::vector<std::string>{"alpha", "beta", "gamma"}));
  EXPECT_EQ(reader->Section("alpha").value(), binary);
  EXPECT_EQ(reader->Section("beta").value(), "");
  EXPECT_EQ(reader->Section("gamma").value(), std::string(100000, 'x'));
  EXPECT_TRUE(reader->HasSection("beta"));
  EXPECT_FALSE(reader->HasSection("delta"));
  EXPECT_FALSE(reader->Section("delta").ok());
  std::remove(path.c_str());
}

TEST(BundleContainerTest, RejectsDuplicateOrEmptySectionNames) {
  BundleWriter dup;
  dup.AddSection("s", "1");
  dup.AddSection("s", "2");
  EXPECT_FALSE(dup.Serialize().ok());
  BundleWriter anon;
  anon.AddSection("", "1");
  EXPECT_FALSE(anon.Serialize().ok());
}

TEST(BundleContainerTest, RejectsCorruptionTruncationAndBadMagic) {
  BundleWriter writer;
  writer.AddSection("alpha", std::string(512, 'a'));
  writer.AddSection("beta", std::string(512, 'b'));
  const std::string path = TempPath("container_corrupt.ctflb");
  ASSERT_TRUE(writer.Write(path).ok());
  const std::string good = ReadFile(path);
  ASSERT_TRUE(BundleReader::Open(path).ok());

  // Flip one payload byte: the per-section CRC must catch it.
  std::string corrupt = good;
  corrupt[corrupt.size() - 10] ^= 0x40;
  WriteFile(path, corrupt);
  const Result<BundleReader> crc = BundleReader::Open(path);
  ASSERT_FALSE(crc.ok());
  EXPECT_NE(crc.status().message().find("CRC"), std::string::npos)
      << crc.status();

  // Truncations anywhere must fail cleanly, never crash or misread.
  for (size_t keep : {size_t{0}, size_t{4}, size_t{11}, size_t{40},
                      good.size() / 2, good.size() - 1}) {
    WriteFile(path, good.substr(0, keep));
    EXPECT_FALSE(BundleReader::Open(path).ok()) << "kept " << keep;
  }

  // Wrong magic and wrong version.
  std::string magic = good;
  magic[0] = 'X';
  WriteFile(path, magic);
  EXPECT_FALSE(BundleReader::Open(path).ok());
  std::string version = good;
  version[8] = static_cast<char>(0xEE);
  WriteFile(path, version);
  EXPECT_FALSE(BundleReader::Open(path).ok());

  std::remove(path.c_str());
  EXPECT_FALSE(BundleReader::Open(TempPath("missing.ctflb")).ok());
}

TEST(BundleContainerTest, MmapAndStreamOpensAreByteIdentical) {
  BundleWriter writer;
  const std::string binary("\x00\x01\xff\x7f payload\n\x00", 12);
  writer.AddSection("alpha", binary);
  writer.AddSection("beta", "");
  writer.AddSection("gamma", std::string(100000, 'x'));
  const std::string path = TempPath("container_mmap.ctflb");
  ASSERT_TRUE(writer.Write(path).ok());

  const Result<BundleReader> stream =
      BundleReader::Open(path, BundleReader::OpenMode::kStream);
  ASSERT_TRUE(stream.ok()) << stream.status();
  EXPECT_FALSE(stream->mapped());

  const Result<BundleReader> automatic = BundleReader::Open(path);
  ASSERT_TRUE(automatic.ok()) << automatic.status();
  EXPECT_EQ(automatic->mapped(), BundleReader::MmapSupported());

  if (BundleReader::MmapSupported()) {
    const Result<BundleReader> mapped =
        BundleReader::Open(path, BundleReader::OpenMode::kMmap);
    ASSERT_TRUE(mapped.ok()) << mapped.status();
    EXPECT_TRUE(mapped->mapped());
    EXPECT_EQ(mapped->file_bytes(), stream->file_bytes());
    EXPECT_EQ(mapped->section_names(), stream->section_names());
    for (const std::string& name : stream->section_names()) {
      // Copying Section() and zero-copy SectionView() agree across modes.
      EXPECT_EQ(mapped->Section(name).value(), stream->Section(name).value());
      EXPECT_EQ(mapped->SectionView(name).value(),
                stream->SectionView(name).value());
    }
  } else {
    EXPECT_FALSE(
        BundleReader::Open(path, BundleReader::OpenMode::kMmap).ok());
  }
  std::remove(path.c_str());
}

TEST(BundleContainerTest, MmapViewsSurviveReaderCopies) {
  if (!BundleReader::MmapSupported()) {
    GTEST_SKIP() << "mmap not compiled in";
  }
  BundleWriter writer;
  writer.AddSection("alpha", std::string(4096, 'a'));
  const std::string path = TempPath("container_mmap_views.ctflb");
  ASSERT_TRUE(writer.Write(path).ok());

  std::string_view view;
  BundleReader copy = [&] {
    const BundleReader original =
        BundleReader::Open(path, BundleReader::OpenMode::kMmap).value();
    view = original.SectionView("alpha").value();
    return original;  // the copy shares ownership of the mapped region
  }();
  // The original reader is gone; the view must still be backed.
  EXPECT_EQ(view, std::string(4096, 'a'));
  EXPECT_EQ(copy.SectionView("alpha").value().data(), view.data());
  std::remove(path.c_str());
}

TEST(BundleContainerTest, MmapOpenValidatesCrcLikeStream) {
  if (!BundleReader::MmapSupported()) {
    GTEST_SKIP() << "mmap not compiled in";
  }
  BundleWriter writer;
  writer.AddSection("alpha", std::string(512, 'a'));
  const std::string path = TempPath("container_mmap_crc.ctflb");
  ASSERT_TRUE(writer.Write(path).ok());
  std::string corrupt = ReadFile(path);
  corrupt[corrupt.size() - 10] ^= 0x40;
  WriteFile(path, corrupt);
  const Result<BundleReader> reader =
      BundleReader::Open(path, BundleReader::OpenMode::kMmap);
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().message().find("CRC"), std::string::npos)
      << reader.status();
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Typed level.
// ---------------------------------------------------------------------------

TEST(BundleTypedTest, SnapshotRoundTripIsBitExact) {
  const Fixture fx = MakeFixture();
  const Result<BundleContent> built = BuildBundleContent(
      fx.report.model, fx.fed, fx.test, fx.activations, fx.options);
  ASSERT_TRUE(built.ok()) << built.status();

  const std::string path = TempPath("typed_roundtrip.ctflb");
  ASSERT_TRUE(WriteBundle(*built, path).ok());
  const Result<BundleContent> loaded = ReadBundle(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  // Meta: originating parameters and scores, bit-for-bit.
  EXPECT_EQ(loaded->meta.tau_w, fx.options.tau_w);
  EXPECT_EQ(loaded->meta.macro_delta, fx.options.macro_delta);
  EXPECT_EQ(loaded->meta.min_rule_weight, fx.options.min_rule_weight);
  EXPECT_EQ(loaded->meta.dp_epsilon, fx.options.dp_epsilon);
  EXPECT_EQ(loaded->meta.micro_scores, fx.report.micro_scores);
  EXPECT_EQ(loaded->meta.macro_scores, fx.report.macro_scores);
  EXPECT_EQ(loaded->meta.global_accuracy, fx.report.trace.global_accuracy);
  EXPECT_EQ(loaded->meta.matched_accuracy,
            fx.report.trace.matched_accuracy);
  EXPECT_EQ(loaded->meta.schema_fingerprint,
            SchemaFingerprint(*fx.fed[0].data.schema()));
  ASSERT_EQ(loaded->meta.participant_names.size(), fx.fed.size());
  for (size_t p = 0; p < fx.fed.size(); ++p) {
    EXPECT_EQ(loaded->meta.participant_names[p], fx.fed[p].name);
  }

  // Model parameters: bit-exact.
  EXPECT_EQ(loaded->params, fx.report.model.GetParameters());

  // Rules: one snapshot per coordinate with the model's class + weight.
  ASSERT_EQ(loaded->num_rules(), fx.report.model.num_rules());
  for (int j = 0; j < loaded->num_rules(); ++j) {
    EXPECT_EQ(loaded->rules[j].support_class,
              fx.report.model.RuleClass(j));
    EXPECT_EQ(loaded->rules[j].weight, fx.report.model.RuleWeight(j));
    EXPECT_EQ(loaded->rules[j].text, built->rules[j].text);
  }

  // Train section: labels + the exact uploaded activation bitsets.
  ASSERT_EQ(loaded->participants.size(), fx.fed.size());
  for (size_t p = 0; p < fx.fed.size(); ++p) {
    const Dataset& data = fx.fed[p].data;
    ASSERT_EQ(loaded->participants[p].size(), data.size());
    for (size_t i = 0; i < data.size(); ++i) {
      EXPECT_EQ(loaded->participants[p].labels[i],
                static_cast<uint8_t>(data.instance(i).label));
      EXPECT_EQ(loaded->participants[p].activations[i],
                fx.activations[p][i]);
    }
  }

  // Tests section: deployed inference artifacts.
  ASSERT_EQ(loaded->tests.size(), fx.test.size());
  for (size_t t = 0; t < fx.test.size(); ++t) {
    EXPECT_EQ(loaded->tests[t].label,
              static_cast<uint8_t>(fx.test.instance(t).label));
    EXPECT_EQ(loaded->tests[t].predicted,
              static_cast<uint8_t>(
                  fx.report.model.Predict(fx.test.instance(t))));
    EXPECT_EQ(loaded->tests[t].activation,
              fx.report.model.RuleActivations(fx.test.instance(t)));
  }

  // Index survives verbatim.
  EXPECT_EQ(loaded->posting_offsets, built->posting_offsets);
  EXPECT_EQ(loaded->postings, built->postings);
  std::remove(path.c_str());
}

TEST(BundleTypedTest, ReadBundleModesDecodeBitIdentically) {
  const Fixture fx = MakeFixture();
  const Result<BundleContent> built = BuildBundleContent(
      fx.report.model, fx.fed, fx.test, fx.activations, fx.options);
  ASSERT_TRUE(built.ok()) << built.status();
  const std::string path = TempPath("typed_modes.ctflb");
  ASSERT_TRUE(WriteBundle(*built, path).ok());

  const Result<BundleContent> stream =
      ReadBundle(path, BundleReader::OpenMode::kStream);
  ASSERT_TRUE(stream.ok()) << stream.status();
  const Result<BundleContent> automatic = ReadBundle(path);
  ASSERT_TRUE(automatic.ok()) << automatic.status();

  // Re-encoding both decoded contents must produce the same file bytes:
  // the read mode can never leak into the decoded structures.
  const std::string restream = TempPath("typed_modes_restream.ctflb");
  ASSERT_TRUE(WriteBundle(*stream, restream).ok());
  const std::string reauto = TempPath("typed_modes_reauto.ctflb");
  ASSERT_TRUE(WriteBundle(*automatic, reauto).ok());
  EXPECT_EQ(ReadFile(restream), ReadFile(path));
  EXPECT_EQ(ReadFile(reauto), ReadFile(path));

  if (BundleReader::MmapSupported()) {
    const Result<BundleContent> mapped =
        ReadBundle(path, BundleReader::OpenMode::kMmap);
    ASSERT_TRUE(mapped.ok()) << mapped.status();
    const std::string remap = TempPath("typed_modes_remap.ctflb");
    ASSERT_TRUE(WriteBundle(*mapped, remap).ok());
    EXPECT_EQ(ReadFile(remap), ReadFile(path));
    std::remove(remap.c_str());
  }
  std::remove(path.c_str());
  std::remove(restream.c_str());
  std::remove(reauto.c_str());
}

TEST(BundleTypedTest, FailurePlanFingerprintRoundTrips) {
  Fixture fx = MakeFixture();
  fx.options.failure_plan_fingerprint = 0xdeadbeefcafef00dULL;
  const Result<BundleContent> built = BuildBundleContent(
      fx.report.model, fx.fed, fx.test, fx.activations, fx.options);
  ASSERT_TRUE(built.ok()) << built.status();
  EXPECT_EQ(built->meta.failure_plan_fingerprint, 0xdeadbeefcafef00dULL);

  const std::string path = TempPath("fp_roundtrip.ctflb");
  ASSERT_TRUE(WriteBundle(*built, path).ok());
  const Result<BundleContent> loaded = ReadBundle(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->meta.failure_plan_fingerprint, 0xdeadbeefcafef00dULL);
}

TEST(BundleTypedTest, MetaWithoutFailureFingerprintDecodesToZero) {
  // Bundles written before failure injection existed carry a meta section
  // that ends right after the participant names. Simulate one by slicing
  // the trailing 8-byte fingerprint off a fresh bundle's meta payload: the
  // optional-field decode must land on fingerprint = 0, not an error.
  const Fixture fx = MakeFixture();
  const Result<BundleContent> built = BuildBundleContent(
      fx.report.model, fx.fed, fx.test, fx.activations, fx.options);
  ASSERT_TRUE(built.ok()) << built.status();
  const std::string path = TempPath("fp_legacy.ctflb");
  ASSERT_TRUE(WriteBundle(*built, path).ok());

  const Result<BundleReader> reader = BundleReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  BundleWriter rewriter;
  for (const std::string& name : reader->section_names()) {
    std::string payload = reader->Section(name).value();
    if (name == "meta") {
      ASSERT_GE(payload.size(), 8u);
      payload.resize(payload.size() - 8);  // drop the trailing u64
    }
    rewriter.AddSection(name, std::move(payload));
  }
  const std::string legacy_path = TempPath("fp_legacy_rewritten.ctflb");
  ASSERT_TRUE(rewriter.Write(legacy_path).ok());

  const Result<BundleContent> loaded = ReadBundle(legacy_path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->meta.failure_plan_fingerprint, 0u);
  EXPECT_EQ(loaded->meta.participant_names.size(), fx.fed.size());
}

TEST(BundleTypedTest, PostingIndexIsSoundAndComplete) {
  const Fixture fx = MakeFixture();
  const BundleContent content =
      BuildBundleContent(fx.report.model, fx.fed, fx.test, fx.activations,
                         fx.options)
          .value();

  // Flatten the records the way the index numbers them.
  std::vector<const Bitset*> flat;
  for (const ParticipantRecords& records : content.participants) {
    for (const Bitset& activation : records.activations) {
      flat.push_back(&activation);
    }
  }
  ASSERT_EQ(flat.size(), content.total_train_records());
  ASSERT_EQ(content.posting_offsets.size(),
            static_cast<size_t>(content.num_rules()) + 1);
  EXPECT_EQ(content.posting_offsets.back(), content.postings.size());

  for (int j = 0; j < content.num_rules(); ++j) {
    std::vector<uint32_t> expected;
    for (size_t g = 0; g < flat.size(); ++g) {
      if (flat[g]->Test(j)) expected.push_back(static_cast<uint32_t>(g));
    }
    const std::vector<uint32_t> actual(
        content.postings.begin() + content.posting_offsets[j],
        content.postings.begin() + content.posting_offsets[j + 1]);
    ASSERT_EQ(actual, expected) << "rule " << j;
  }
}

TEST(BundleTypedTest, RestoreModelReproducesInference) {
  const Fixture fx = MakeFixture();
  const std::string path = TempPath("typed_restore.ctflb");
  ASSERT_TRUE(
      WriteBundle(BuildBundleContent(fx.report.model, fx.fed, fx.test,
                                     fx.activations, fx.options)
                      .value(),
                  path)
          .ok());
  const BundleContent loaded = ReadBundle(path).value();
  const Result<LogicalNet> restored = RestoreModel(loaded);
  ASSERT_TRUE(restored.ok()) << restored.status();

  EXPECT_EQ(restored->GetParameters(), fx.report.model.GetParameters());
  for (size_t t = 0; t < fx.test.size(); ++t) {
    const Instance& inst = fx.test.instance(t);
    EXPECT_EQ(restored->Predict(inst), fx.report.model.Predict(inst));
    EXPECT_EQ(restored->RuleActivations(inst),
              fx.report.model.RuleActivations(inst));
  }
  std::remove(path.c_str());
}

TEST(BundleTypedTest, BuildValidatesShapes) {
  const Fixture fx = MakeFixture();

  // Participant count mismatch.
  std::vector<std::vector<Bitset>> short_activations = fx.activations;
  short_activations.pop_back();
  EXPECT_FALSE(BuildBundleContent(fx.report.model, fx.fed, fx.test,
                                  short_activations, fx.options)
                   .ok());

  // Per-participant record count mismatch.
  std::vector<std::vector<Bitset>> uneven = fx.activations;
  uneven[0].pop_back();
  EXPECT_FALSE(BuildBundleContent(fx.report.model, fx.fed, fx.test, uneven,
                                  fx.options)
                   .ok());

  // Activation width mismatch.
  std::vector<std::vector<Bitset>> narrow = fx.activations;
  narrow[0][0] = Bitset(3);
  EXPECT_FALSE(BuildBundleContent(fx.report.model, fx.fed, fx.test, narrow,
                                  fx.options)
                   .ok());

  // Score vectors must be empty or one per participant.
  SnapshotOptions bad_scores = fx.options;
  bad_scores.micro_scores.push_back(0.0);
  EXPECT_FALSE(BuildBundleContent(fx.report.model, fx.fed, fx.test,
                                  fx.activations, bad_scores)
                   .ok());

  // Empty scores are fine (bench fixtures never allocate).
  SnapshotOptions no_scores = fx.options;
  no_scores.micro_scores.clear();
  no_scores.macro_scores.clear();
  EXPECT_TRUE(BuildBundleContent(fx.report.model, fx.fed, fx.test,
                                 fx.activations, no_scores)
                  .ok());
}

TEST(BundleTypedTest, ReadRejectsCrossSectionInconsistency) {
  const Fixture fx = MakeFixture();
  BundleContent content =
      BuildBundleContent(fx.report.model, fx.fed, fx.test, fx.activations,
                         fx.options)
          .value();
  const std::string path = TempPath("typed_inconsistent.ctflb");

  // Posting id beyond the record table.
  BundleContent bad = content;
  ASSERT_FALSE(bad.postings.empty());
  bad.postings[0] = static_cast<uint32_t>(bad.total_train_records());
  ASSERT_TRUE(WriteBundle(bad, path).ok());
  EXPECT_FALSE(ReadBundle(path).ok());

  // Meta participant names out of sync with the train section.
  BundleContent extra = content;
  extra.meta.participant_names.push_back("ghost");
  ASSERT_TRUE(WriteBundle(extra, path).ok());
  EXPECT_FALSE(ReadBundle(path).ok());
  std::remove(path.c_str());
}

TEST(BundleTypedTest, PipelineEmitsBundleWhenAsked) {
  Rng rng(31);
  const SyntheticSpec spec = TwoRuleSpec();
  const Dataset all = GenerateSynthetic(spec, 300, rng);
  const Dataset test = GenerateSynthetic(spec, 80, rng);
  Rng prng(32);
  const Federation fed = MakeFederation(PartitionUniform(all, 3, prng));

  CtflConfig config;
  config.federated = false;
  config.central.epochs = 8;
  config.net.logic_layers = {{8, 8}};
  config.net.seed = 2;
  config.bundle_out = TempPath("pipeline_emit.ctflb");
  const CtflReport report = RunCtfl(fed, test, config).value();
  ASSERT_TRUE(report.bundle_status.ok()) << report.bundle_status;
  EXPECT_GT(report.bundle_bytes, 0u);

  const Result<BundleContent> loaded = ReadBundle(config.bundle_out);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->meta.micro_scores, report.micro_scores);
  EXPECT_EQ(loaded->meta.macro_scores, report.macro_scores);
  EXPECT_EQ(loaded->meta.global_accuracy, report.trace.global_accuracy);
  EXPECT_EQ(loaded->num_participants(), 3);
  std::remove(config.bundle_out.c_str());

  // Unwritable path: the run still succeeds, the status records why.
  CtflConfig bad = config;
  bad.bundle_out = "/nonexistent-dir/bundle.ctflb";
  const CtflReport failed = RunCtfl(fed, test, bad).value();
  EXPECT_FALSE(failed.bundle_status.ok());
  EXPECT_EQ(failed.micro_scores.size(), 3u);
}

}  // namespace
}  // namespace store
}  // namespace ctfl
