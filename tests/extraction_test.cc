#include "ctfl/rules/extraction.h"

#include <gtest/gtest.h>

#include "ctfl/data/gen/benchmarks.h"
#include "ctfl/data/gen/tictactoe.h"
#include "ctfl/nn/trainer.h"

namespace ctfl {
namespace {

SchemaPtr SmallSchema() {
  return std::make_shared<FeatureSchema>(
      std::vector<FeatureSpec>{
          FeatureSchema::Continuous("x", 0.0, 1.0),
          FeatureSchema::Discrete("c", {"a", "b", "c"}),
      },
      "neg", "pos");
}

LogicalNetConfig SmallConfig(uint64_t seed = 3) {
  LogicalNetConfig config;
  config.tau_d = 4;
  config.logic_layers = {{6, 6}};
  config.fan_in = 2;
  config.seed = seed;
  return config;
}

Dataset RandomData(const SchemaPtr& schema, size_t n, uint64_t seed) {
  Dataset d(schema);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    Instance inst;
    inst.values = {rng.Uniform(), static_cast<double>(rng.UniformInt(3))};
    inst.label = static_cast<int>(rng.UniformInt(2));
    d.AppendUnchecked(std::move(inst));
  }
  return d;
}

TEST(ExtractionTest, OneRulePerCoordinate) {
  const LogicalNet net(SmallSchema(), SmallConfig());
  const ExtractionResult extraction = ExtractRules(net);
  ASSERT_EQ(static_cast<int>(extraction.rules.size()), net.num_rules());
  for (int j = 0; j < net.num_rules(); ++j) {
    EXPECT_EQ(extraction.rules[j].coordinate, j);
    EXPECT_EQ(extraction.rules[j].support_class, net.RuleClass(j));
    EXPECT_NEAR(extraction.rules[j].weight, net.RuleWeight(j), 1e-12);
  }
}

TEST(ExtractionTest, SkipRulesAreAtoms) {
  const LogicalNet net(SmallSchema(), SmallConfig());
  const ExtractionResult extraction = ExtractRules(net);
  for (int j = 0; j < net.encoded_size(); ++j) {
    EXPECT_EQ(extraction.rules[j].rule.kind(), Rule::Kind::kAtom);
  }
}

// Core equivalence property: the symbolic RuleModel built from the net must
// agree with the net's binarized path on activations AND classifications.
class ExtractionEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExtractionEquivalence, RuleModelMatchesNetOnRandomInputs) {
  const SchemaPtr schema = SmallSchema();
  LogicalNet net(schema, SmallConfig(GetParam()));
  // Train briefly so weights are non-trivial (mix of learned structure).
  const Dataset train = RandomData(schema, 200, GetParam() + 1);
  TrainConfig tc;
  tc.epochs = 3;
  TrainGrafted(net, train, tc);

  const RuleModel model = BuildRuleModel(net);
  ASSERT_EQ(model.num_rules(), net.num_rules());

  const Dataset probe = RandomData(schema, 100, GetParam() + 2);
  for (const Instance& inst : probe.instances()) {
    const Bitset net_bits = net.RuleActivations(inst);
    const Bitset model_bits = model.Activations(inst);
    EXPECT_EQ(net_bits, model_bits);
    EXPECT_EQ(model.Classify(inst), net.Predict(inst));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtractionEquivalence,
                         ::testing::Values(10, 20, 30, 40));

TEST(ExtractionTest, EquivalenceHoldsOnTicTacToeAfterTraining) {
  const Dataset data = GenerateTicTacToe();
  LogicalNetConfig config;
  config.logic_layers = {{32, 32}};
  config.seed = 77;
  LogicalNet net(data.schema(), config);
  TrainConfig tc;
  tc.epochs = 10;
  TrainGrafted(net, data, tc);

  const RuleModel model = BuildRuleModel(net);
  size_t checked = 0;
  for (size_t i = 0; i < data.size(); i += 9) {
    const Instance& inst = data.instance(i);
    EXPECT_EQ(model.Classify(inst), net.Predict(inst));
    EXPECT_EQ(model.Activations(inst), net.RuleActivations(inst));
    ++checked;
  }
  EXPECT_GT(checked, 50u);
}

TEST(ExtractionTest, MultiLayerRulesExpandRecursively) {
  LogicalNetConfig config;
  config.tau_d = 3;
  config.logic_layers = {{4, 4}, {3, 3}};
  config.fan_in = 2;
  config.seed = 5;
  const SchemaPtr schema = SmallSchema();
  const LogicalNet net(schema, config);
  const ExtractionResult extraction = ExtractRules(net);
  ASSERT_EQ(static_cast<int>(extraction.rules.size()), net.num_rules());
  // Depth of second-layer rules can reach 2.
  int max_depth = 0;
  for (const ExtractedRule& er : extraction.rules) {
    max_depth = std::max(max_depth, er.rule.Depth());
  }
  EXPECT_GE(max_depth, 1);

  // Equivalence also holds for the deeper architecture.
  const RuleModel model = BuildRuleModel(net);
  const Dataset probe = RandomData(schema, 60, 6);
  for (const Instance& inst : probe.instances()) {
    EXPECT_EQ(model.Activations(inst), net.RuleActivations(inst));
    EXPECT_EQ(model.Classify(inst), net.Predict(inst));
  }
}

}  // namespace
}  // namespace ctfl
