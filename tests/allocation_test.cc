#include "ctfl/core/allocation.h"

#include <numeric>

#include <gtest/gtest.h>

namespace ctfl {
namespace {

// Builds a TraceResult by hand; only the fields allocation reads matter.
TraceResult MakeTrace(int n, std::vector<TestTrace> tests) {
  TraceResult trace;
  trace.num_participants = n;
  trace.tests = std::move(tests);
  return trace;
}

TestTrace Correct(std::vector<int> related) {
  TestTrace t;
  t.correct = true;
  t.related_count = std::move(related);
  t.total_related = 0;
  for (int c : t.related_count) t.total_related += c;
  return t;
}

TestTrace Wrong(std::vector<int> related) {
  TestTrace t = Correct(std::move(related));
  t.correct = false;
  return t;
}

// Paper Example III.4: participants B and C match a test instance with 6
// and 2 related records; micro gives 6/8 and 2/8 of the 1/|D_te| credit,
// macro (delta = 2) splits it evenly.
TEST(AllocationTest, PaperExampleIII4) {
  // 4 test records; only the third has matches {A:0, B:6, C:2}.
  const TraceResult trace = MakeTrace(
      3, {Correct({0, 0, 0}), Correct({0, 0, 0}), Correct({0, 6, 2}),
          Correct({0, 0, 0})});
  const std::vector<double> micro = MicroAllocation(trace);
  EXPECT_NEAR(micro[1], 3.0 / 16, 1e-12);  // 1/4 * 6/8
  EXPECT_NEAR(micro[2], 1.0 / 16, 1e-12);  // 1/4 * 2/8
  EXPECT_NEAR(micro[0], 0.0, 1e-12);

  const std::vector<double> macro = MacroAllocation(trace, /*delta=*/2);
  EXPECT_NEAR(macro[1], 1.0 / 8, 1e-12);  // 1/4 * 1/2
  EXPECT_NEAR(macro[2], 1.0 / 8, 1e-12);
  EXPECT_NEAR(macro[0], 0.0, 1e-12);
}

// Regression pin for the Eq. 5/6 normalization convention: scores divide
// by |D_te| — ALL reserved test records — not by the number of tests with
// the matching outcome, and not by the number of matched tests. A correct
// split over {4 tests, 1 matched} therefore yields exactly 1/4 of the
// per-test credit, and adding wrong-outcome tests dilutes everyone.
TEST(AllocationTest, NormalizationDividesByAllTests) {
  // One matched correct test among one unmatched correct and two wrong.
  const TraceResult trace = MakeTrace(
      2, {Correct({3, 1}), Correct({0, 0}), Wrong({5, 5}), Wrong({2, 0})});
  const std::vector<double> micro = MicroAllocation(trace);
  EXPECT_NEAR(micro[0], 0.75 / 4, 1e-12);  // NOT 0.75 / 1 or 0.75 / 2
  EXPECT_NEAR(micro[1], 0.25 / 4, 1e-12);

  const std::vector<double> macro = MacroAllocation(trace, /*delta=*/1);
  EXPECT_NEAR(macro[0], 0.5 / 4, 1e-12);
  EXPECT_NEAR(macro[1], 0.5 / 4, 1e-12);

  // The wrong-outcome view normalizes by the same |D_te| = 4.
  const std::vector<double> micro_wrong =
      MicroAllocation(trace, /*on_correct=*/false);
  EXPECT_NEAR(micro_wrong[0], (0.5 + 1.0) / 4, 1e-12);
  EXPECT_NEAR(micro_wrong[1], 0.5 / 4, 1e-12);

  // Appending more wrong tests shrinks correct-side scores: the
  // denominator tracks the full test set.
  TraceResult diluted = trace;
  diluted.tests.push_back(Wrong({1, 1}));
  diluted.tests.push_back(Wrong({1, 1}));
  const std::vector<double> diluted_micro = MicroAllocation(diluted);
  EXPECT_NEAR(diluted_micro[0], 0.75 / 6, 1e-12);
  EXPECT_NEAR(diluted_micro[1], 0.25 / 6, 1e-12);
}

TEST(AllocationTest, MicroIsProportionalToRelatedCounts) {
  const TraceResult trace = MakeTrace(2, {Correct({3, 1})});
  const std::vector<double> micro = MicroAllocation(trace);
  EXPECT_NEAR(micro[0], 0.75, 1e-12);
  EXPECT_NEAR(micro[1], 0.25, 1e-12);
}

TEST(AllocationTest, MacroIgnoresVolumeBeyondDelta) {
  // Replication: participant 0 has 100 copies, participant 1 has 2.
  const TraceResult trace = MakeTrace(2, {Correct({100, 2})});
  const std::vector<double> macro = MacroAllocation(trace, 2);
  EXPECT_NEAR(macro[0], 0.5, 1e-12);
  EXPECT_NEAR(macro[1], 0.5, 1e-12);
}

TEST(AllocationTest, MacroDeltaExcludesThinParticipants) {
  const TraceResult trace = MakeTrace(2, {Correct({5, 1})});
  const std::vector<double> macro = MacroAllocation(trace, 2);
  EXPECT_NEAR(macro[0], 1.0, 1e-12);
  EXPECT_NEAR(macro[1], 0.0, 1e-12);
}

TEST(AllocationTest, OnlyMatchingOutcomeCounts) {
  const TraceResult trace =
      MakeTrace(2, {Correct({1, 0}), Wrong({0, 3}), Correct({1, 0})});
  const std::vector<double> gain = MicroAllocation(trace, true);
  const std::vector<double> loss = MicroAllocation(trace, false);
  EXPECT_NEAR(gain[0], 2.0 / 3, 1e-12);
  EXPECT_NEAR(gain[1], 0.0, 1e-12);
  EXPECT_NEAR(loss[0], 0.0, 1e-12);
  EXPECT_NEAR(loss[1], 1.0 / 3, 1e-12);
}

TEST(AllocationTest, UnmatchedCorrectTestsDistributeNothing) {
  const TraceResult trace = MakeTrace(2, {Correct({0, 0}), Correct({1, 1})});
  const std::vector<double> micro = MicroAllocation(trace);
  const double total = micro[0] + micro[1];
  EXPECT_NEAR(total, 0.5, 1e-12);  // only the matched test distributes
}

TEST(AllocationTest, GroupRationalityOverMatchedTests) {
  // Sum of micro scores equals (#correct matched tests) / |D_te|.
  const TraceResult trace = MakeTrace(
      3, {Correct({1, 2, 0}), Correct({0, 0, 4}), Wrong({5, 0, 0}),
          Correct({0, 0, 0})});
  const std::vector<double> micro = MicroAllocation(trace);
  EXPECT_NEAR(std::accumulate(micro.begin(), micro.end(), 0.0), 2.0 / 4,
              1e-12);
  const std::vector<double> macro = MacroAllocation(trace, 1);
  EXPECT_NEAR(std::accumulate(macro.begin(), macro.end(), 0.0), 2.0 / 4,
              1e-12);
}

TEST(AllocationTest, SweepMatchesIndividualCalls) {
  const TraceResult trace =
      MakeTrace(2, {Correct({4, 1}), Correct({2, 2}), Correct({0, 9})});
  const std::vector<int> deltas = {1, 2, 3, 5};
  const auto sweep = MacroAllocationSweep(trace, deltas);
  ASSERT_EQ(sweep.size(), deltas.size());
  for (size_t d = 0; d < deltas.size(); ++d) {
    const std::vector<double> single = MacroAllocation(trace, deltas[d]);
    for (int p = 0; p < 2; ++p) {
      EXPECT_NEAR(sweep[d][p], single[p], 1e-12) << "delta " << deltas[d];
    }
  }
}

TEST(WeightedAllocationTest, UniformWeightsMatchPlainMicro) {
  const TraceResult trace =
      MakeTrace(2, {Correct({3, 1}), Correct({1, 1}), Wrong({2, 0})});
  const std::vector<double> uniform(trace.tests.size(),
                                    1.0 / trace.tests.size());
  const std::vector<double> weighted =
      WeightedMicroAllocation(trace, uniform);
  const std::vector<double> plain = MicroAllocation(trace);
  for (int p = 0; p < 2; ++p) {
    EXPECT_NEAR(weighted[p], plain[p], 1e-12);
  }
}

TEST(WeightedAllocationTest, WeightsScaleCredit) {
  const TraceResult trace = MakeTrace(2, {Correct({1, 0}), Correct({0, 1})});
  // First test worth 3x the second.
  const std::vector<double> weighted =
      WeightedMicroAllocation(trace, {0.75, 0.25});
  EXPECT_NEAR(weighted[0], 0.75, 1e-12);
  EXPECT_NEAR(weighted[1], 0.25, 1e-12);
}

TEST(WeightedAllocationTest, WeightedGroupRationality) {
  // Sum of weighted scores equals the total weight of matched correct
  // tests — group rationality for any instance-decomposable metric.
  const TraceResult trace = MakeTrace(
      2, {Correct({1, 2}), Correct({0, 0}), Wrong({4, 0}), Correct({5, 5})});
  const std::vector<double> weights = {0.4, 0.3, 0.2, 0.1};
  const std::vector<double> scores =
      WeightedMicroAllocation(trace, weights);
  EXPECT_NEAR(scores[0] + scores[1], 0.4 + 0.1, 1e-12);
  const std::vector<double> macro =
      WeightedMacroAllocation(trace, weights, 1);
  EXPECT_NEAR(macro[0] + macro[1], 0.4 + 0.1, 1e-12);
}

TEST(WeightedAllocationTest, MacroStillEqualSplit) {
  const TraceResult trace = MakeTrace(2, {Correct({9, 1})});
  const std::vector<double> macro =
      WeightedMacroAllocation(trace, {0.8}, 1);
  EXPECT_NEAR(macro[0], 0.4, 1e-12);
  EXPECT_NEAR(macro[1], 0.4, 1e-12);
}

TEST(AllocationTest, EmptyTraceGivesZeros) {
  const TraceResult trace = MakeTrace(3, {});
  EXPECT_EQ(MicroAllocation(trace), std::vector<double>(3, 0.0));
  EXPECT_EQ(MacroAllocation(trace, 1), std::vector<double>(3, 0.0));
}

}  // namespace
}  // namespace ctfl
