#include "ctfl/data/split.h"

#include <gtest/gtest.h>

namespace ctfl {
namespace {

SchemaPtr MakeSchema() {
  return std::make_shared<FeatureSchema>(
      std::vector<FeatureSpec>{FeatureSchema::Continuous("x", 0, 1)}, "neg",
      "pos");
}

Dataset MakeDataset(size_t n, double positive_rate) {
  Dataset d(MakeSchema());
  for (size_t i = 0; i < n; ++i) {
    Instance inst;
    inst.values = {static_cast<double>(i) / n};
    inst.label = i < n * positive_rate ? 1 : 0;
    d.AppendUnchecked(std::move(inst));
  }
  return d;
}

TEST(SplitTest, StratifiedPreservesClassRatio) {
  const Dataset d = MakeDataset(1000, 0.3);
  Rng rng(5);
  const TrainTestSplit split = StratifiedSplit(d, 0.2, rng);
  EXPECT_EQ(split.train.size() + split.test.size(), d.size());
  EXPECT_NEAR(split.test.size(), 200u, 2);
  EXPECT_NEAR(split.test.PositiveRate(), 0.3, 0.01);
  EXPECT_NEAR(split.train.PositiveRate(), 0.3, 0.01);
}

TEST(SplitTest, SplitsAreDisjointAndComplete) {
  const Dataset d = MakeDataset(100, 0.5);
  Rng rng(6);
  const TrainTestSplit split = StratifiedSplit(d, 0.25, rng);
  // Values are unique per instance, so we can check coverage via sums.
  double total = 0.0;
  for (const Instance& i : split.train.instances()) total += i.values[0];
  for (const Instance& i : split.test.instances()) total += i.values[0];
  double expected = 0.0;
  for (const Instance& i : d.instances()) expected += i.values[0];
  EXPECT_NEAR(total, expected, 1e-9);
}

TEST(SplitTest, RandomSplitSizes) {
  const Dataset d = MakeDataset(500, 0.4);
  Rng rng(7);
  const TrainTestSplit split = RandomSplit(d, 0.1, rng);
  EXPECT_EQ(split.test.size(), 50u);
  EXPECT_EQ(split.train.size(), 450u);
}

TEST(SplitTest, SubsampleCapsSize) {
  const Dataset d = MakeDataset(300, 0.5);
  Rng rng(8);
  EXPECT_EQ(Subsample(d, 100, rng).size(), 100u);
  EXPECT_EQ(Subsample(d, 1000, rng).size(), 300u);
}

TEST(SplitTest, DifferentSeedsGiveDifferentSplits) {
  const Dataset d = MakeDataset(200, 0.5);
  Rng rng1(1), rng2(2);
  const TrainTestSplit a = StratifiedSplit(d, 0.5, rng1);
  const TrainTestSplit b = StratifiedSplit(d, 0.5, rng2);
  double sum_a = 0.0, sum_b = 0.0;
  for (const Instance& i : a.test.instances()) sum_a += i.values[0];
  for (const Instance& i : b.test.instances()) sum_b += i.values[0];
  EXPECT_NE(sum_a, sum_b);
}

}  // namespace
}  // namespace ctfl
