# Empty compiler generated dependencies file for incentive_test.
# This may be replaced when dependencies are built.
