file(REMOVE_RECURSE
  "CMakeFiles/incentive_test.dir/incentive_test.cc.o"
  "CMakeFiles/incentive_test.dir/incentive_test.cc.o.d"
  "incentive_test"
  "incentive_test.pdb"
  "incentive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incentive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
