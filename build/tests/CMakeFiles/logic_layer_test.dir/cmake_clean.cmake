file(REMOVE_RECURSE
  "CMakeFiles/logic_layer_test.dir/logic_layer_test.cc.o"
  "CMakeFiles/logic_layer_test.dir/logic_layer_test.cc.o.d"
  "logic_layer_test"
  "logic_layer_test.pdb"
  "logic_layer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logic_layer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
