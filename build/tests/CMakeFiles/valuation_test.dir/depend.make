# Empty dependencies file for valuation_test.
# This may be replaced when dependencies are built.
