# Empty dependencies file for binarization_test.
# This may be replaced when dependencies are built.
