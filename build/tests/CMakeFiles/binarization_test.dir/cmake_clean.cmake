file(REMOVE_RECURSE
  "CMakeFiles/binarization_test.dir/binarization_test.cc.o"
  "CMakeFiles/binarization_test.dir/binarization_test.cc.o.d"
  "binarization_test"
  "binarization_test.pdb"
  "binarization_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/binarization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
