file(REMOVE_RECURSE
  "CMakeFiles/logical_net_test.dir/logical_net_test.cc.o"
  "CMakeFiles/logical_net_test.dir/logical_net_test.cc.o.d"
  "logical_net_test"
  "logical_net_test.pdb"
  "logical_net_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logical_net_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
