# Empty compiler generated dependencies file for logical_net_test.
# This may be replaced when dependencies are built.
