file(REMOVE_RECURSE
  "CMakeFiles/secure_agg_test.dir/secure_agg_test.cc.o"
  "CMakeFiles/secure_agg_test.dir/secure_agg_test.cc.o.d"
  "secure_agg_test"
  "secure_agg_test.pdb"
  "secure_agg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_agg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
