# Empty compiler generated dependencies file for secure_agg_test.
# This may be replaced when dependencies are built.
