# Empty dependencies file for loss_tracing_test.
# This may be replaced when dependencies are built.
