file(REMOVE_RECURSE
  "CMakeFiles/loss_tracing_test.dir/loss_tracing_test.cc.o"
  "CMakeFiles/loss_tracing_test.dir/loss_tracing_test.cc.o.d"
  "loss_tracing_test"
  "loss_tracing_test.pdb"
  "loss_tracing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loss_tracing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
