file(REMOVE_RECURSE
  "CMakeFiles/fedavg_test.dir/fedavg_test.cc.o"
  "CMakeFiles/fedavg_test.dir/fedavg_test.cc.o.d"
  "fedavg_test"
  "fedavg_test.pdb"
  "fedavg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedavg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
