file(REMOVE_RECURSE
  "CMakeFiles/ctfl_cli.dir/ctfl_cli.cc.o"
  "CMakeFiles/ctfl_cli.dir/ctfl_cli.cc.o.d"
  "ctfl"
  "ctfl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctfl_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
