# Empty compiler generated dependencies file for ctfl_cli.
# This may be replaced when dependencies are built.
