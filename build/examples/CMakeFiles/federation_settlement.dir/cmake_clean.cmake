file(REMOVE_RECURSE
  "CMakeFiles/federation_settlement.dir/federation_settlement.cc.o"
  "CMakeFiles/federation_settlement.dir/federation_settlement.cc.o.d"
  "federation_settlement"
  "federation_settlement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federation_settlement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
