# Empty dependencies file for federation_settlement.
# This may be replaced when dependencies are built.
