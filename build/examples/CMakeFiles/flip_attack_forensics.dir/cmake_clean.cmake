file(REMOVE_RECURSE
  "CMakeFiles/flip_attack_forensics.dir/flip_attack_forensics.cc.o"
  "CMakeFiles/flip_attack_forensics.dir/flip_attack_forensics.cc.o.d"
  "flip_attack_forensics"
  "flip_attack_forensics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flip_attack_forensics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
