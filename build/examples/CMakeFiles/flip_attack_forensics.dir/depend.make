# Empty dependencies file for flip_attack_forensics.
# This may be replaced when dependencies are built.
