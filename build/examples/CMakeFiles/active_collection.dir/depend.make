# Empty dependencies file for active_collection.
# This may be replaced when dependencies are built.
