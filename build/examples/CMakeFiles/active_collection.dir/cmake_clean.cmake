file(REMOVE_RECURSE
  "CMakeFiles/active_collection.dir/active_collection.cc.o"
  "CMakeFiles/active_collection.dir/active_collection.cc.o.d"
  "active_collection"
  "active_collection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/active_collection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
