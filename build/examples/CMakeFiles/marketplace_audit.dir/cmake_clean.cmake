file(REMOVE_RECURSE
  "CMakeFiles/marketplace_audit.dir/marketplace_audit.cc.o"
  "CMakeFiles/marketplace_audit.dir/marketplace_audit.cc.o.d"
  "marketplace_audit"
  "marketplace_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marketplace_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
