file(REMOVE_RECURSE
  "CMakeFiles/ctfl_util.dir/ctfl/util/bitset.cc.o"
  "CMakeFiles/ctfl_util.dir/ctfl/util/bitset.cc.o.d"
  "CMakeFiles/ctfl_util.dir/ctfl/util/csv.cc.o"
  "CMakeFiles/ctfl_util.dir/ctfl/util/csv.cc.o.d"
  "CMakeFiles/ctfl_util.dir/ctfl/util/flags.cc.o"
  "CMakeFiles/ctfl_util.dir/ctfl/util/flags.cc.o.d"
  "CMakeFiles/ctfl_util.dir/ctfl/util/logging.cc.o"
  "CMakeFiles/ctfl_util.dir/ctfl/util/logging.cc.o.d"
  "CMakeFiles/ctfl_util.dir/ctfl/util/rng.cc.o"
  "CMakeFiles/ctfl_util.dir/ctfl/util/rng.cc.o.d"
  "CMakeFiles/ctfl_util.dir/ctfl/util/status.cc.o"
  "CMakeFiles/ctfl_util.dir/ctfl/util/status.cc.o.d"
  "CMakeFiles/ctfl_util.dir/ctfl/util/string_util.cc.o"
  "CMakeFiles/ctfl_util.dir/ctfl/util/string_util.cc.o.d"
  "CMakeFiles/ctfl_util.dir/ctfl/util/thread_pool.cc.o"
  "CMakeFiles/ctfl_util.dir/ctfl/util/thread_pool.cc.o.d"
  "libctfl_util.a"
  "libctfl_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctfl_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
