
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ctfl/util/bitset.cc" "src/CMakeFiles/ctfl_util.dir/ctfl/util/bitset.cc.o" "gcc" "src/CMakeFiles/ctfl_util.dir/ctfl/util/bitset.cc.o.d"
  "/root/repo/src/ctfl/util/csv.cc" "src/CMakeFiles/ctfl_util.dir/ctfl/util/csv.cc.o" "gcc" "src/CMakeFiles/ctfl_util.dir/ctfl/util/csv.cc.o.d"
  "/root/repo/src/ctfl/util/flags.cc" "src/CMakeFiles/ctfl_util.dir/ctfl/util/flags.cc.o" "gcc" "src/CMakeFiles/ctfl_util.dir/ctfl/util/flags.cc.o.d"
  "/root/repo/src/ctfl/util/logging.cc" "src/CMakeFiles/ctfl_util.dir/ctfl/util/logging.cc.o" "gcc" "src/CMakeFiles/ctfl_util.dir/ctfl/util/logging.cc.o.d"
  "/root/repo/src/ctfl/util/rng.cc" "src/CMakeFiles/ctfl_util.dir/ctfl/util/rng.cc.o" "gcc" "src/CMakeFiles/ctfl_util.dir/ctfl/util/rng.cc.o.d"
  "/root/repo/src/ctfl/util/status.cc" "src/CMakeFiles/ctfl_util.dir/ctfl/util/status.cc.o" "gcc" "src/CMakeFiles/ctfl_util.dir/ctfl/util/status.cc.o.d"
  "/root/repo/src/ctfl/util/string_util.cc" "src/CMakeFiles/ctfl_util.dir/ctfl/util/string_util.cc.o" "gcc" "src/CMakeFiles/ctfl_util.dir/ctfl/util/string_util.cc.o.d"
  "/root/repo/src/ctfl/util/thread_pool.cc" "src/CMakeFiles/ctfl_util.dir/ctfl/util/thread_pool.cc.o" "gcc" "src/CMakeFiles/ctfl_util.dir/ctfl/util/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
