file(REMOVE_RECURSE
  "libctfl_util.a"
)
