# Empty dependencies file for ctfl_util.
# This may be replaced when dependencies are built.
