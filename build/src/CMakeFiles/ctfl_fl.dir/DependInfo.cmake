
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ctfl/fl/adversary.cc" "src/CMakeFiles/ctfl_fl.dir/ctfl/fl/adversary.cc.o" "gcc" "src/CMakeFiles/ctfl_fl.dir/ctfl/fl/adversary.cc.o.d"
  "/root/repo/src/ctfl/fl/fedavg.cc" "src/CMakeFiles/ctfl_fl.dir/ctfl/fl/fedavg.cc.o" "gcc" "src/CMakeFiles/ctfl_fl.dir/ctfl/fl/fedavg.cc.o.d"
  "/root/repo/src/ctfl/fl/metrics.cc" "src/CMakeFiles/ctfl_fl.dir/ctfl/fl/metrics.cc.o" "gcc" "src/CMakeFiles/ctfl_fl.dir/ctfl/fl/metrics.cc.o.d"
  "/root/repo/src/ctfl/fl/participant.cc" "src/CMakeFiles/ctfl_fl.dir/ctfl/fl/participant.cc.o" "gcc" "src/CMakeFiles/ctfl_fl.dir/ctfl/fl/participant.cc.o.d"
  "/root/repo/src/ctfl/fl/partition.cc" "src/CMakeFiles/ctfl_fl.dir/ctfl/fl/partition.cc.o" "gcc" "src/CMakeFiles/ctfl_fl.dir/ctfl/fl/partition.cc.o.d"
  "/root/repo/src/ctfl/fl/privacy.cc" "src/CMakeFiles/ctfl_fl.dir/ctfl/fl/privacy.cc.o" "gcc" "src/CMakeFiles/ctfl_fl.dir/ctfl/fl/privacy.cc.o.d"
  "/root/repo/src/ctfl/fl/secure_agg.cc" "src/CMakeFiles/ctfl_fl.dir/ctfl/fl/secure_agg.cc.o" "gcc" "src/CMakeFiles/ctfl_fl.dir/ctfl/fl/secure_agg.cc.o.d"
  "/root/repo/src/ctfl/fl/utility.cc" "src/CMakeFiles/ctfl_fl.dir/ctfl/fl/utility.cc.o" "gcc" "src/CMakeFiles/ctfl_fl.dir/ctfl/fl/utility.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ctfl_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctfl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctfl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctfl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
