# Empty dependencies file for ctfl_fl.
# This may be replaced when dependencies are built.
