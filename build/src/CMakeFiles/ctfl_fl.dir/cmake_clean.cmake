file(REMOVE_RECURSE
  "CMakeFiles/ctfl_fl.dir/ctfl/fl/adversary.cc.o"
  "CMakeFiles/ctfl_fl.dir/ctfl/fl/adversary.cc.o.d"
  "CMakeFiles/ctfl_fl.dir/ctfl/fl/fedavg.cc.o"
  "CMakeFiles/ctfl_fl.dir/ctfl/fl/fedavg.cc.o.d"
  "CMakeFiles/ctfl_fl.dir/ctfl/fl/metrics.cc.o"
  "CMakeFiles/ctfl_fl.dir/ctfl/fl/metrics.cc.o.d"
  "CMakeFiles/ctfl_fl.dir/ctfl/fl/participant.cc.o"
  "CMakeFiles/ctfl_fl.dir/ctfl/fl/participant.cc.o.d"
  "CMakeFiles/ctfl_fl.dir/ctfl/fl/partition.cc.o"
  "CMakeFiles/ctfl_fl.dir/ctfl/fl/partition.cc.o.d"
  "CMakeFiles/ctfl_fl.dir/ctfl/fl/privacy.cc.o"
  "CMakeFiles/ctfl_fl.dir/ctfl/fl/privacy.cc.o.d"
  "CMakeFiles/ctfl_fl.dir/ctfl/fl/secure_agg.cc.o"
  "CMakeFiles/ctfl_fl.dir/ctfl/fl/secure_agg.cc.o.d"
  "CMakeFiles/ctfl_fl.dir/ctfl/fl/utility.cc.o"
  "CMakeFiles/ctfl_fl.dir/ctfl/fl/utility.cc.o.d"
  "libctfl_fl.a"
  "libctfl_fl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctfl_fl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
