file(REMOVE_RECURSE
  "libctfl_fl.a"
)
