
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ctfl/data/dataset.cc" "src/CMakeFiles/ctfl_data.dir/ctfl/data/dataset.cc.o" "gcc" "src/CMakeFiles/ctfl_data.dir/ctfl/data/dataset.cc.o.d"
  "/root/repo/src/ctfl/data/gen/benchmarks.cc" "src/CMakeFiles/ctfl_data.dir/ctfl/data/gen/benchmarks.cc.o" "gcc" "src/CMakeFiles/ctfl_data.dir/ctfl/data/gen/benchmarks.cc.o.d"
  "/root/repo/src/ctfl/data/gen/synthetic.cc" "src/CMakeFiles/ctfl_data.dir/ctfl/data/gen/synthetic.cc.o" "gcc" "src/CMakeFiles/ctfl_data.dir/ctfl/data/gen/synthetic.cc.o.d"
  "/root/repo/src/ctfl/data/gen/tictactoe.cc" "src/CMakeFiles/ctfl_data.dir/ctfl/data/gen/tictactoe.cc.o" "gcc" "src/CMakeFiles/ctfl_data.dir/ctfl/data/gen/tictactoe.cc.o.d"
  "/root/repo/src/ctfl/data/schema.cc" "src/CMakeFiles/ctfl_data.dir/ctfl/data/schema.cc.o" "gcc" "src/CMakeFiles/ctfl_data.dir/ctfl/data/schema.cc.o.d"
  "/root/repo/src/ctfl/data/split.cc" "src/CMakeFiles/ctfl_data.dir/ctfl/data/split.cc.o" "gcc" "src/CMakeFiles/ctfl_data.dir/ctfl/data/split.cc.o.d"
  "/root/repo/src/ctfl/data/stats.cc" "src/CMakeFiles/ctfl_data.dir/ctfl/data/stats.cc.o" "gcc" "src/CMakeFiles/ctfl_data.dir/ctfl/data/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ctfl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
