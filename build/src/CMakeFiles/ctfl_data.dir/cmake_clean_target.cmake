file(REMOVE_RECURSE
  "libctfl_data.a"
)
