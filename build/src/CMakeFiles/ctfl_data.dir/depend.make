# Empty dependencies file for ctfl_data.
# This may be replaced when dependencies are built.
