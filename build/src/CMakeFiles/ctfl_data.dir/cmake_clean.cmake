file(REMOVE_RECURSE
  "CMakeFiles/ctfl_data.dir/ctfl/data/dataset.cc.o"
  "CMakeFiles/ctfl_data.dir/ctfl/data/dataset.cc.o.d"
  "CMakeFiles/ctfl_data.dir/ctfl/data/gen/benchmarks.cc.o"
  "CMakeFiles/ctfl_data.dir/ctfl/data/gen/benchmarks.cc.o.d"
  "CMakeFiles/ctfl_data.dir/ctfl/data/gen/synthetic.cc.o"
  "CMakeFiles/ctfl_data.dir/ctfl/data/gen/synthetic.cc.o.d"
  "CMakeFiles/ctfl_data.dir/ctfl/data/gen/tictactoe.cc.o"
  "CMakeFiles/ctfl_data.dir/ctfl/data/gen/tictactoe.cc.o.d"
  "CMakeFiles/ctfl_data.dir/ctfl/data/schema.cc.o"
  "CMakeFiles/ctfl_data.dir/ctfl/data/schema.cc.o.d"
  "CMakeFiles/ctfl_data.dir/ctfl/data/split.cc.o"
  "CMakeFiles/ctfl_data.dir/ctfl/data/split.cc.o.d"
  "CMakeFiles/ctfl_data.dir/ctfl/data/stats.cc.o"
  "CMakeFiles/ctfl_data.dir/ctfl/data/stats.cc.o.d"
  "libctfl_data.a"
  "libctfl_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctfl_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
