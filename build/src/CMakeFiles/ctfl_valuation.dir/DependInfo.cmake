
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ctfl/valuation/individual.cc" "src/CMakeFiles/ctfl_valuation.dir/ctfl/valuation/individual.cc.o" "gcc" "src/CMakeFiles/ctfl_valuation.dir/ctfl/valuation/individual.cc.o.d"
  "/root/repo/src/ctfl/valuation/least_core.cc" "src/CMakeFiles/ctfl_valuation.dir/ctfl/valuation/least_core.cc.o" "gcc" "src/CMakeFiles/ctfl_valuation.dir/ctfl/valuation/least_core.cc.o.d"
  "/root/repo/src/ctfl/valuation/leave_one_out.cc" "src/CMakeFiles/ctfl_valuation.dir/ctfl/valuation/leave_one_out.cc.o" "gcc" "src/CMakeFiles/ctfl_valuation.dir/ctfl/valuation/leave_one_out.cc.o.d"
  "/root/repo/src/ctfl/valuation/scheme.cc" "src/CMakeFiles/ctfl_valuation.dir/ctfl/valuation/scheme.cc.o" "gcc" "src/CMakeFiles/ctfl_valuation.dir/ctfl/valuation/scheme.cc.o.d"
  "/root/repo/src/ctfl/valuation/shapley.cc" "src/CMakeFiles/ctfl_valuation.dir/ctfl/valuation/shapley.cc.o" "gcc" "src/CMakeFiles/ctfl_valuation.dir/ctfl/valuation/shapley.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ctfl_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctfl_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctfl_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctfl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctfl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctfl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
