file(REMOVE_RECURSE
  "libctfl_valuation.a"
)
