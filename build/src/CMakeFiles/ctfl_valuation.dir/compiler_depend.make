# Empty compiler generated dependencies file for ctfl_valuation.
# This may be replaced when dependencies are built.
