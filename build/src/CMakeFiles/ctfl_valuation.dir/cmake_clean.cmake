file(REMOVE_RECURSE
  "CMakeFiles/ctfl_valuation.dir/ctfl/valuation/individual.cc.o"
  "CMakeFiles/ctfl_valuation.dir/ctfl/valuation/individual.cc.o.d"
  "CMakeFiles/ctfl_valuation.dir/ctfl/valuation/least_core.cc.o"
  "CMakeFiles/ctfl_valuation.dir/ctfl/valuation/least_core.cc.o.d"
  "CMakeFiles/ctfl_valuation.dir/ctfl/valuation/leave_one_out.cc.o"
  "CMakeFiles/ctfl_valuation.dir/ctfl/valuation/leave_one_out.cc.o.d"
  "CMakeFiles/ctfl_valuation.dir/ctfl/valuation/scheme.cc.o"
  "CMakeFiles/ctfl_valuation.dir/ctfl/valuation/scheme.cc.o.d"
  "CMakeFiles/ctfl_valuation.dir/ctfl/valuation/shapley.cc.o"
  "CMakeFiles/ctfl_valuation.dir/ctfl/valuation/shapley.cc.o.d"
  "libctfl_valuation.a"
  "libctfl_valuation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctfl_valuation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
