file(REMOVE_RECURSE
  "CMakeFiles/ctfl_solver.dir/ctfl/solver/simplex.cc.o"
  "CMakeFiles/ctfl_solver.dir/ctfl/solver/simplex.cc.o.d"
  "libctfl_solver.a"
  "libctfl_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctfl_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
