# Empty compiler generated dependencies file for ctfl_solver.
# This may be replaced when dependencies are built.
