file(REMOVE_RECURSE
  "libctfl_solver.a"
)
