file(REMOVE_RECURSE
  "CMakeFiles/ctfl_rules.dir/ctfl/rules/extraction.cc.o"
  "CMakeFiles/ctfl_rules.dir/ctfl/rules/extraction.cc.o.d"
  "CMakeFiles/ctfl_rules.dir/ctfl/rules/predicate.cc.o"
  "CMakeFiles/ctfl_rules.dir/ctfl/rules/predicate.cc.o.d"
  "CMakeFiles/ctfl_rules.dir/ctfl/rules/rule.cc.o"
  "CMakeFiles/ctfl_rules.dir/ctfl/rules/rule.cc.o.d"
  "CMakeFiles/ctfl_rules.dir/ctfl/rules/rule_model.cc.o"
  "CMakeFiles/ctfl_rules.dir/ctfl/rules/rule_model.cc.o.d"
  "libctfl_rules.a"
  "libctfl_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctfl_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
