
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ctfl/rules/extraction.cc" "src/CMakeFiles/ctfl_rules.dir/ctfl/rules/extraction.cc.o" "gcc" "src/CMakeFiles/ctfl_rules.dir/ctfl/rules/extraction.cc.o.d"
  "/root/repo/src/ctfl/rules/predicate.cc" "src/CMakeFiles/ctfl_rules.dir/ctfl/rules/predicate.cc.o" "gcc" "src/CMakeFiles/ctfl_rules.dir/ctfl/rules/predicate.cc.o.d"
  "/root/repo/src/ctfl/rules/rule.cc" "src/CMakeFiles/ctfl_rules.dir/ctfl/rules/rule.cc.o" "gcc" "src/CMakeFiles/ctfl_rules.dir/ctfl/rules/rule.cc.o.d"
  "/root/repo/src/ctfl/rules/rule_model.cc" "src/CMakeFiles/ctfl_rules.dir/ctfl/rules/rule_model.cc.o" "gcc" "src/CMakeFiles/ctfl_rules.dir/ctfl/rules/rule_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ctfl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctfl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctfl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
