# Empty dependencies file for ctfl_rules.
# This may be replaced when dependencies are built.
