file(REMOVE_RECURSE
  "libctfl_rules.a"
)
