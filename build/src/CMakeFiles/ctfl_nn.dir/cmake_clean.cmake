file(REMOVE_RECURSE
  "CMakeFiles/ctfl_nn.dir/ctfl/nn/binarization_layer.cc.o"
  "CMakeFiles/ctfl_nn.dir/ctfl/nn/binarization_layer.cc.o.d"
  "CMakeFiles/ctfl_nn.dir/ctfl/nn/linear_layer.cc.o"
  "CMakeFiles/ctfl_nn.dir/ctfl/nn/linear_layer.cc.o.d"
  "CMakeFiles/ctfl_nn.dir/ctfl/nn/logic_layer.cc.o"
  "CMakeFiles/ctfl_nn.dir/ctfl/nn/logic_layer.cc.o.d"
  "CMakeFiles/ctfl_nn.dir/ctfl/nn/logical_net.cc.o"
  "CMakeFiles/ctfl_nn.dir/ctfl/nn/logical_net.cc.o.d"
  "CMakeFiles/ctfl_nn.dir/ctfl/nn/loss.cc.o"
  "CMakeFiles/ctfl_nn.dir/ctfl/nn/loss.cc.o.d"
  "CMakeFiles/ctfl_nn.dir/ctfl/nn/matrix.cc.o"
  "CMakeFiles/ctfl_nn.dir/ctfl/nn/matrix.cc.o.d"
  "CMakeFiles/ctfl_nn.dir/ctfl/nn/optimizer.cc.o"
  "CMakeFiles/ctfl_nn.dir/ctfl/nn/optimizer.cc.o.d"
  "CMakeFiles/ctfl_nn.dir/ctfl/nn/serialize.cc.o"
  "CMakeFiles/ctfl_nn.dir/ctfl/nn/serialize.cc.o.d"
  "CMakeFiles/ctfl_nn.dir/ctfl/nn/trainer.cc.o"
  "CMakeFiles/ctfl_nn.dir/ctfl/nn/trainer.cc.o.d"
  "libctfl_nn.a"
  "libctfl_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctfl_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
