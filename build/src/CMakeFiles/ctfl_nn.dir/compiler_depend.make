# Empty compiler generated dependencies file for ctfl_nn.
# This may be replaced when dependencies are built.
