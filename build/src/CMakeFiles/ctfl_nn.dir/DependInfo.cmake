
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ctfl/nn/binarization_layer.cc" "src/CMakeFiles/ctfl_nn.dir/ctfl/nn/binarization_layer.cc.o" "gcc" "src/CMakeFiles/ctfl_nn.dir/ctfl/nn/binarization_layer.cc.o.d"
  "/root/repo/src/ctfl/nn/linear_layer.cc" "src/CMakeFiles/ctfl_nn.dir/ctfl/nn/linear_layer.cc.o" "gcc" "src/CMakeFiles/ctfl_nn.dir/ctfl/nn/linear_layer.cc.o.d"
  "/root/repo/src/ctfl/nn/logic_layer.cc" "src/CMakeFiles/ctfl_nn.dir/ctfl/nn/logic_layer.cc.o" "gcc" "src/CMakeFiles/ctfl_nn.dir/ctfl/nn/logic_layer.cc.o.d"
  "/root/repo/src/ctfl/nn/logical_net.cc" "src/CMakeFiles/ctfl_nn.dir/ctfl/nn/logical_net.cc.o" "gcc" "src/CMakeFiles/ctfl_nn.dir/ctfl/nn/logical_net.cc.o.d"
  "/root/repo/src/ctfl/nn/loss.cc" "src/CMakeFiles/ctfl_nn.dir/ctfl/nn/loss.cc.o" "gcc" "src/CMakeFiles/ctfl_nn.dir/ctfl/nn/loss.cc.o.d"
  "/root/repo/src/ctfl/nn/matrix.cc" "src/CMakeFiles/ctfl_nn.dir/ctfl/nn/matrix.cc.o" "gcc" "src/CMakeFiles/ctfl_nn.dir/ctfl/nn/matrix.cc.o.d"
  "/root/repo/src/ctfl/nn/optimizer.cc" "src/CMakeFiles/ctfl_nn.dir/ctfl/nn/optimizer.cc.o" "gcc" "src/CMakeFiles/ctfl_nn.dir/ctfl/nn/optimizer.cc.o.d"
  "/root/repo/src/ctfl/nn/serialize.cc" "src/CMakeFiles/ctfl_nn.dir/ctfl/nn/serialize.cc.o" "gcc" "src/CMakeFiles/ctfl_nn.dir/ctfl/nn/serialize.cc.o.d"
  "/root/repo/src/ctfl/nn/trainer.cc" "src/CMakeFiles/ctfl_nn.dir/ctfl/nn/trainer.cc.o" "gcc" "src/CMakeFiles/ctfl_nn.dir/ctfl/nn/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ctfl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctfl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
