file(REMOVE_RECURSE
  "libctfl_nn.a"
)
