file(REMOVE_RECURSE
  "CMakeFiles/ctfl_multiclass.dir/ctfl/multiclass/ovr.cc.o"
  "CMakeFiles/ctfl_multiclass.dir/ctfl/multiclass/ovr.cc.o.d"
  "libctfl_multiclass.a"
  "libctfl_multiclass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctfl_multiclass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
