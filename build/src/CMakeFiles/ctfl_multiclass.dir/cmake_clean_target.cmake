file(REMOVE_RECURSE
  "libctfl_multiclass.a"
)
