# Empty dependencies file for ctfl_multiclass.
# This may be replaced when dependencies are built.
