
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ctfl/core/allocation.cc" "src/CMakeFiles/ctfl_core.dir/ctfl/core/allocation.cc.o" "gcc" "src/CMakeFiles/ctfl_core.dir/ctfl/core/allocation.cc.o.d"
  "/root/repo/src/ctfl/core/incentive.cc" "src/CMakeFiles/ctfl_core.dir/ctfl/core/incentive.cc.o" "gcc" "src/CMakeFiles/ctfl_core.dir/ctfl/core/incentive.cc.o.d"
  "/root/repo/src/ctfl/core/interpret.cc" "src/CMakeFiles/ctfl_core.dir/ctfl/core/interpret.cc.o" "gcc" "src/CMakeFiles/ctfl_core.dir/ctfl/core/interpret.cc.o.d"
  "/root/repo/src/ctfl/core/loss_tracing.cc" "src/CMakeFiles/ctfl_core.dir/ctfl/core/loss_tracing.cc.o" "gcc" "src/CMakeFiles/ctfl_core.dir/ctfl/core/loss_tracing.cc.o.d"
  "/root/repo/src/ctfl/core/pipeline.cc" "src/CMakeFiles/ctfl_core.dir/ctfl/core/pipeline.cc.o" "gcc" "src/CMakeFiles/ctfl_core.dir/ctfl/core/pipeline.cc.o.d"
  "/root/repo/src/ctfl/core/rounds.cc" "src/CMakeFiles/ctfl_core.dir/ctfl/core/rounds.cc.o" "gcc" "src/CMakeFiles/ctfl_core.dir/ctfl/core/rounds.cc.o.d"
  "/root/repo/src/ctfl/core/tracer.cc" "src/CMakeFiles/ctfl_core.dir/ctfl/core/tracer.cc.o" "gcc" "src/CMakeFiles/ctfl_core.dir/ctfl/core/tracer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ctfl_valuation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctfl_mining.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctfl_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctfl_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctfl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctfl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctfl_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctfl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
