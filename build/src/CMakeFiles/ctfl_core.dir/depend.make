# Empty dependencies file for ctfl_core.
# This may be replaced when dependencies are built.
