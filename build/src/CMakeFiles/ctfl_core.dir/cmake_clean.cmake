file(REMOVE_RECURSE
  "CMakeFiles/ctfl_core.dir/ctfl/core/allocation.cc.o"
  "CMakeFiles/ctfl_core.dir/ctfl/core/allocation.cc.o.d"
  "CMakeFiles/ctfl_core.dir/ctfl/core/incentive.cc.o"
  "CMakeFiles/ctfl_core.dir/ctfl/core/incentive.cc.o.d"
  "CMakeFiles/ctfl_core.dir/ctfl/core/interpret.cc.o"
  "CMakeFiles/ctfl_core.dir/ctfl/core/interpret.cc.o.d"
  "CMakeFiles/ctfl_core.dir/ctfl/core/loss_tracing.cc.o"
  "CMakeFiles/ctfl_core.dir/ctfl/core/loss_tracing.cc.o.d"
  "CMakeFiles/ctfl_core.dir/ctfl/core/pipeline.cc.o"
  "CMakeFiles/ctfl_core.dir/ctfl/core/pipeline.cc.o.d"
  "CMakeFiles/ctfl_core.dir/ctfl/core/rounds.cc.o"
  "CMakeFiles/ctfl_core.dir/ctfl/core/rounds.cc.o.d"
  "CMakeFiles/ctfl_core.dir/ctfl/core/tracer.cc.o"
  "CMakeFiles/ctfl_core.dir/ctfl/core/tracer.cc.o.d"
  "libctfl_core.a"
  "libctfl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctfl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
