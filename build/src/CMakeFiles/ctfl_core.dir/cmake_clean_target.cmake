file(REMOVE_RECURSE
  "libctfl_core.a"
)
