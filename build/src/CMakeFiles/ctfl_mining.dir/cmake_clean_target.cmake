file(REMOVE_RECURSE
  "libctfl_mining.a"
)
