file(REMOVE_RECURSE
  "CMakeFiles/ctfl_mining.dir/ctfl/mining/apriori.cc.o"
  "CMakeFiles/ctfl_mining.dir/ctfl/mining/apriori.cc.o.d"
  "CMakeFiles/ctfl_mining.dir/ctfl/mining/itemset.cc.o"
  "CMakeFiles/ctfl_mining.dir/ctfl/mining/itemset.cc.o.d"
  "CMakeFiles/ctfl_mining.dir/ctfl/mining/max_miner.cc.o"
  "CMakeFiles/ctfl_mining.dir/ctfl/mining/max_miner.cc.o.d"
  "CMakeFiles/ctfl_mining.dir/ctfl/mining/test_grouping.cc.o"
  "CMakeFiles/ctfl_mining.dir/ctfl/mining/test_grouping.cc.o.d"
  "libctfl_mining.a"
  "libctfl_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctfl_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
