
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ctfl/mining/apriori.cc" "src/CMakeFiles/ctfl_mining.dir/ctfl/mining/apriori.cc.o" "gcc" "src/CMakeFiles/ctfl_mining.dir/ctfl/mining/apriori.cc.o.d"
  "/root/repo/src/ctfl/mining/itemset.cc" "src/CMakeFiles/ctfl_mining.dir/ctfl/mining/itemset.cc.o" "gcc" "src/CMakeFiles/ctfl_mining.dir/ctfl/mining/itemset.cc.o.d"
  "/root/repo/src/ctfl/mining/max_miner.cc" "src/CMakeFiles/ctfl_mining.dir/ctfl/mining/max_miner.cc.o" "gcc" "src/CMakeFiles/ctfl_mining.dir/ctfl/mining/max_miner.cc.o.d"
  "/root/repo/src/ctfl/mining/test_grouping.cc" "src/CMakeFiles/ctfl_mining.dir/ctfl/mining/test_grouping.cc.o" "gcc" "src/CMakeFiles/ctfl_mining.dir/ctfl/mining/test_grouping.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ctfl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
