# Empty dependencies file for ctfl_mining.
# This may be replaced when dependencies are built.
