# Empty compiler generated dependencies file for table5_interpret_adult.
# This may be replaced when dependencies are built.
