file(REMOVE_RECURSE
  "CMakeFiles/table5_interpret_adult.dir/table5_interpret_adult.cc.o"
  "CMakeFiles/table5_interpret_adult.dir/table5_interpret_adult.cc.o.d"
  "table5_interpret_adult"
  "table5_interpret_adult.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_interpret_adult.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
