file(REMOVE_RECURSE
  "CMakeFiles/table2_toy_example.dir/table2_toy_example.cc.o"
  "CMakeFiles/table2_toy_example.dir/table2_toy_example.cc.o.d"
  "table2_toy_example"
  "table2_toy_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_toy_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
