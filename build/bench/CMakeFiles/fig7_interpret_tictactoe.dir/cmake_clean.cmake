file(REMOVE_RECURSE
  "CMakeFiles/fig7_interpret_tictactoe.dir/fig7_interpret_tictactoe.cc.o"
  "CMakeFiles/fig7_interpret_tictactoe.dir/fig7_interpret_tictactoe.cc.o.d"
  "fig7_interpret_tictactoe"
  "fig7_interpret_tictactoe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_interpret_tictactoe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
