# Empty dependencies file for fig7_interpret_tictactoe.
# This may be replaced when dependencies are built.
