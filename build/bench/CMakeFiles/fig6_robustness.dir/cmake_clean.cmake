file(REMOVE_RECURSE
  "CMakeFiles/fig6_robustness.dir/fig6_robustness.cc.o"
  "CMakeFiles/fig6_robustness.dir/fig6_robustness.cc.o.d"
  "fig6_robustness"
  "fig6_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
