# Empty dependencies file for fig6_robustness.
# This may be replaced when dependencies are built.
