
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/common.cc" "bench/CMakeFiles/ctfl_bench_common.dir/common.cc.o" "gcc" "bench/CMakeFiles/ctfl_bench_common.dir/common.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ctfl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctfl_valuation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctfl_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctfl_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctfl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctfl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctfl_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctfl_mining.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ctfl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
