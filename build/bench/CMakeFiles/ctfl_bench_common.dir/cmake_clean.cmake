file(REMOVE_RECURSE
  "CMakeFiles/ctfl_bench_common.dir/common.cc.o"
  "CMakeFiles/ctfl_bench_common.dir/common.cc.o.d"
  "libctfl_bench_common.a"
  "libctfl_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctfl_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
