file(REMOVE_RECURSE
  "libctfl_bench_common.a"
)
