# Empty compiler generated dependencies file for ctfl_bench_common.
# This may be replaced when dependencies are built.
