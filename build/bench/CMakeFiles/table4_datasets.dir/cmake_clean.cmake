file(REMOVE_RECURSE
  "CMakeFiles/table4_datasets.dir/table4_datasets.cc.o"
  "CMakeFiles/table4_datasets.dir/table4_datasets.cc.o.d"
  "table4_datasets"
  "table4_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
