# Empty compiler generated dependencies file for table4_datasets.
# This may be replaced when dependencies are built.
