file(REMOVE_RECURSE
  "CMakeFiles/fig5_execution_time.dir/fig5_execution_time.cc.o"
  "CMakeFiles/fig5_execution_time.dir/fig5_execution_time.cc.o.d"
  "fig5_execution_time"
  "fig5_execution_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_execution_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
