#ifndef CTFL_VALUATION_LEAVE_ONE_OUT_H_
#define CTFL_VALUATION_LEAVE_ONE_OUT_H_

#include "ctfl/valuation/scheme.h"

namespace ctfl {

/// LeaveOneOut scheme (paper §II-B2): phi_v(i) = v(D_N) - v(D_{N\{i}}).
/// Undervalues participants with substitutable (homogeneous) data.
class LeaveOneOutScheme : public ContributionScheme {
 public:
  std::string name() const override { return "LeaveOneOut"; }
  Result<ContributionResult> Compute(CoalitionUtility& utility) override;
};

}  // namespace ctfl

#endif  // CTFL_VALUATION_LEAVE_ONE_OUT_H_
