#include "ctfl/valuation/individual.h"

#include "ctfl/util/stopwatch.h"

namespace ctfl {

Result<ContributionResult> IndividualScheme::Compute(
    CoalitionUtility& utility) {
  Stopwatch watch;
  ContributionResult result;
  result.scheme = name();
  const int before = utility.evaluations();
  for (int i = 0; i < utility.num_participants(); ++i) {
    result.scores.push_back(utility.Value({i}));
  }
  result.coalitions_evaluated = utility.evaluations() - before;
  result.seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace ctfl
