#ifndef CTFL_VALUATION_INDIVIDUAL_H_
#define CTFL_VALUATION_INDIVIDUAL_H_

#include "ctfl/valuation/scheme.h"

namespace ctfl {

/// Individual scheme (paper §II-B1): phi_v(i) = v(D_i) — each participant
/// is scored by its stand-alone data value; cooperation is ignored.
class IndividualScheme : public ContributionScheme {
 public:
  std::string name() const override { return "Individual"; }
  Result<ContributionResult> Compute(CoalitionUtility& utility) override;
};

}  // namespace ctfl

#endif  // CTFL_VALUATION_INDIVIDUAL_H_
