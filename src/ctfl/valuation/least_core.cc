#include "ctfl/valuation/least_core.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "ctfl/solver/simplex.h"
#include "ctfl/util/stopwatch.h"

namespace ctfl {

Result<ContributionResult> LeastCoreScheme::Compute(
    CoalitionUtility& utility) {
  Stopwatch watch;
  const int n = utility.num_participants();
  ContributionResult result;
  result.scheme = name();
  const int before = utility.evaluations();

  // Collect constraint coalitions as masks (dedup via set).
  std::set<uint64_t> masks;
  const bool exact =
      options_.exact_limit > 0 && n <= 20 && (1LL << n) <= options_.exact_limit;
  if (exact) {
    for (uint64_t mask = 1; mask + 1 < (1ULL << n); ++mask) masks.insert(mask);
  } else {
    for (int i = 0; i < n; ++i) {
      masks.insert(1ULL << i);                         // singletons
      masks.insert(((1ULL << n) - 1) ^ (1ULL << i));   // leave-one-out
    }
    int budget = std::max(
        n, static_cast<int>(std::ceil(options_.budget_multiplier * n * n *
                                      std::log2(std::max(2, n)))));
    // There are only 2^n - 2 proper non-empty coalitions to sample.
    if (n < 20) {
      budget = std::min<int>(budget, (1 << n) - 2);
    }
    Rng rng(options_.seed);
    while (static_cast<int>(masks.size()) < budget) {
      uint64_t mask = rng.Next() & ((1ULL << n) - 1);
      if (mask == 0 || mask == (1ULL << n) - 1) continue;
      masks.insert(mask);
    }
  }

  const double grand = utility.Value(GrandCoalition(n));

  // Variables: phi_0..phi_{n-1} (free), e (free). Minimize e.
  LpProblem lp;
  lp.num_vars = n + 1;
  lp.objective.assign(n + 1, 0.0);
  lp.objective[n] = 1.0;
  lp.free_vars.assign(n + 1, true);

  for (uint64_t mask : masks) {
    std::vector<int> coalition;
    for (int i = 0; i < n; ++i) {
      if (mask & (1ULL << i)) coalition.push_back(i);
    }
    LpConstraint con;
    con.coeffs.assign(n + 1, 0.0);
    for (int i : coalition) con.coeffs[i] = 1.0;
    con.coeffs[n] = 1.0;
    con.rel = LpConstraint::Rel::kGe;
    con.rhs = utility.Value(coalition);
    lp.constraints.push_back(std::move(con));
  }
  // Efficiency: sum phi = v(D_N).
  LpConstraint eff;
  eff.coeffs.assign(n + 1, 0.0);
  for (int i = 0; i < n; ++i) eff.coeffs[i] = 1.0;
  eff.rel = LpConstraint::Rel::kEq;
  eff.rhs = grand;
  lp.constraints.push_back(std::move(eff));

  CTFL_ASSIGN_OR_RETURN(LpSolution sol, SolveLp(lp));
  if (sol.status != LpStatus::kOptimal) {
    return Status::Internal("least-core LP did not reach optimality");
  }
  result.scores.assign(sol.x.begin(), sol.x.begin() + n);
  result.coalitions_evaluated = utility.evaluations() - before;
  result.seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace ctfl
