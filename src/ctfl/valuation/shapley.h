#ifndef CTFL_VALUATION_SHAPLEY_H_
#define CTFL_VALUATION_SHAPLEY_H_

#include "ctfl/util/rng.h"
#include "ctfl/valuation/scheme.h"

namespace ctfl {

/// Monte-Carlo permutation Shapley value with per-permutation truncation
/// (the GTG-Shapley-style acceleration the paper's baseline uses, §VI-A):
/// phi_v(i) = E over random permutations of i's marginal gain when joining
/// the prefix before it. The sampling budget is Theta(n^2 log n) coalition
/// evaluations; a permutation is truncated once the running prefix value
/// is within `truncation_tol` of v(D_N) (remaining marginals ~ 0).
class ShapleyValueScheme : public ContributionScheme {
 public:
  struct Options {
    /// Multiplier c on the c * n^2 log2(n) evaluation budget.
    double budget_multiplier = 1.0;
    /// Exact enumeration instead of sampling when 2^n <= this.
    int exact_limit = 0;
    double truncation_tol = 1e-3;
    uint64_t seed = 17;
  };

  ShapleyValueScheme() = default;
  explicit ShapleyValueScheme(Options options) : options_(options) {}

  std::string name() const override { return "ShapleyValue"; }
  Result<ContributionResult> Compute(CoalitionUtility& utility) override;

  /// Exact Shapley by full enumeration (2^n evaluations); used by tests
  /// and small-n studies.
  static Result<ContributionResult> ComputeExact(CoalitionUtility& utility);

 private:
  Options options_ = Options{};
};

}  // namespace ctfl

#endif  // CTFL_VALUATION_SHAPLEY_H_
