#include "ctfl/valuation/shapley.h"

#include <algorithm>
#include <cmath>

#include "ctfl/telemetry/metrics.h"
#include "ctfl/telemetry/trace.h"
#include "ctfl/util/stopwatch.h"

namespace {

// Shared by the exact and sampled paths; valuation baselines report their
// coalition budgets here so a bench run can contrast them against CTFL's
// single pass (`ctfl.runs` / `ctfl.trace.passes`).
ctfl::telemetry::Counter& CoalitionCounter() {
  static ctfl::telemetry::Counter& counter =
      ctfl::telemetry::MetricsRegistry::Global().GetCounter(
          "ctfl.valuation.coalitions");
  return counter;
}

}  // namespace

namespace ctfl {

Result<ContributionResult> ShapleyValueScheme::ComputeExact(
    CoalitionUtility& utility) {
  CTFL_SPAN("ctfl.valuation.shapley_exact");
  Stopwatch watch;
  const int n = utility.num_participants();
  if (n > 20) {
    return Status::InvalidArgument("exact Shapley limited to n <= 20");
  }
  ContributionResult result;
  result.scheme = "ShapleyValue(exact)";
  result.scores.assign(n, 0.0);
  const int before = utility.evaluations();

  // Precompute v for every mask.
  const uint64_t total = 1ULL << n;
  std::vector<double> value(total);
  for (uint64_t mask = 0; mask < total; ++mask) {
    std::vector<int> coalition;
    for (int i = 0; i < n; ++i) {
      if (mask & (1ULL << i)) coalition.push_back(i);
    }
    value[mask] = utility.Value(coalition);
  }

  // phi_i = sum_S (|S|! (n-|S|-1)! / n!) [v(S+i) - v(S)].
  std::vector<double> fact(n + 1, 1.0);
  for (int k = 1; k <= n; ++k) fact[k] = fact[k - 1] * k;
  for (int i = 0; i < n; ++i) {
    for (uint64_t mask = 0; mask < total; ++mask) {
      if (mask & (1ULL << i)) continue;
      const int s = std::popcount(mask);
      const double weight = fact[s] * fact[n - s - 1] / fact[n];
      result.scores[i] +=
          weight * (value[mask | (1ULL << i)] - value[mask]);
    }
  }
  result.coalitions_evaluated = utility.evaluations() - before;
  result.seconds = watch.ElapsedSeconds();
  CoalitionCounter().Add(result.coalitions_evaluated);
  return result;
}

Result<ContributionResult> ShapleyValueScheme::Compute(
    CoalitionUtility& utility) {
  const int n = utility.num_participants();
  if (options_.exact_limit > 0 && n <= 20 &&
      (1LL << n) <= options_.exact_limit) {
    return ComputeExact(utility);
  }

  CTFL_SPAN("ctfl.valuation.shapley");
  Stopwatch watch;
  ContributionResult result;
  result.scheme = name();
  result.scores.assign(n, 0.0);
  const int before = utility.evaluations();

  // Budget: Theta(n^2 log n) coalition evaluations; each permutation costs
  // at most n, so sample ~ c * n * log2(n) permutations.
  const int permutations = std::max(
      4, static_cast<int>(std::ceil(options_.budget_multiplier * n *
                                    std::log2(std::max(2, n)))));
  Rng rng(options_.seed);
  const double grand = utility.Value(GrandCoalition(n));
  std::vector<int> counts(n, 0);

  for (int p = 0; p < permutations; ++p) {
    const std::vector<int> perm = rng.Permutation(n);
    std::vector<int> prefix;
    prefix.reserve(n);
    double prev = utility.Value({});
    bool truncated = false;
    for (int pos = 0; pos < n; ++pos) {
      const int i = perm[pos];
      if (truncated) {
        // Remaining marginals are treated as zero (GTG-style truncation).
        result.scores[i] += 0.0;
        ++counts[i];
        continue;
      }
      prefix.push_back(i);
      std::vector<int> sorted = prefix;
      std::sort(sorted.begin(), sorted.end());
      const double current = utility.Value(sorted);
      result.scores[i] += current - prev;
      ++counts[i];
      prev = current;
      // tol <= 0 disables truncation entirely.
      if (options_.truncation_tol > 0.0 &&
          std::abs(grand - current) <= options_.truncation_tol) {
        truncated = true;
      }
    }
  }
  for (int i = 0; i < n; ++i) {
    if (counts[i] > 0) result.scores[i] /= counts[i];
  }
  result.coalitions_evaluated = utility.evaluations() - before;
  result.seconds = watch.ElapsedSeconds();
  CoalitionCounter().Add(result.coalitions_evaluated);
  return result;
}

}  // namespace ctfl
