#ifndef CTFL_VALUATION_LEAST_CORE_H_
#define CTFL_VALUATION_LEAST_CORE_H_

#include "ctfl/util/rng.h"
#include "ctfl/valuation/scheme.h"

namespace ctfl {

/// LeastCore scheme (paper §II-B4, Eq. 2): find scores phi and minimal
/// deficit e with
///   min e   s.t.  sum_{i in S} phi_i + e >= v(D_S) for sampled S,
///                 sum_i phi_i = v(D_N).
/// Following the paper's baseline, Theta(n^2 log n) random coalitions are
/// sampled as constraints (plus all singletons and the leave-one-out
/// coalitions, which are cheap and informative), and the LP is solved with
/// the in-repo simplex.
class LeastCoreScheme : public ContributionScheme {
 public:
  struct Options {
    double budget_multiplier = 1.0;
    /// Enumerate all 2^n coalitions as constraints when 2^n <= this
    /// (exact least core).
    int exact_limit = 0;
    uint64_t seed = 23;
  };

  LeastCoreScheme() = default;
  explicit LeastCoreScheme(Options options) : options_(options) {}

  std::string name() const override { return "LeastCore"; }
  Result<ContributionResult> Compute(CoalitionUtility& utility) override;

 private:
  Options options_ = Options{};
};

}  // namespace ctfl

#endif  // CTFL_VALUATION_LEAST_CORE_H_
