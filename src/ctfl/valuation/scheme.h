#ifndef CTFL_VALUATION_SCHEME_H_
#define CTFL_VALUATION_SCHEME_H_

#include <string>
#include <vector>

#include "ctfl/fl/utility.h"
#include "ctfl/util/result.h"

namespace ctfl {

/// Output of a contribution-allocation scheme phi_v (paper Def. II.2).
struct ContributionResult {
  std::string scheme;
  /// scores[i] = phi_v(i).
  std::vector<double> scores;
  /// Coalition evaluations spent (each = one model training).
  int coalitions_evaluated = 0;
  /// Wall-clock seconds.
  double seconds = 0.0;
};

/// Interface all baseline schemes implement: consume a coalition-value
/// oracle, produce per-participant scores.
class ContributionScheme {
 public:
  virtual ~ContributionScheme() = default;

  virtual std::string name() const = 0;
  virtual Result<ContributionResult> Compute(CoalitionUtility& utility) = 0;
};

/// Participant ranking by descending score (ties by id).
std::vector<int> RankByScore(const std::vector<double>& scores);

/// All participant ids {0..n-1}.
std::vector<int> GrandCoalition(int n);

}  // namespace ctfl

#endif  // CTFL_VALUATION_SCHEME_H_
