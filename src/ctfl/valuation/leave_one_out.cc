#include "ctfl/valuation/leave_one_out.h"

#include "ctfl/telemetry/metrics.h"
#include "ctfl/telemetry/trace.h"
#include "ctfl/util/stopwatch.h"

namespace ctfl {

Result<ContributionResult> LeaveOneOutScheme::Compute(
    CoalitionUtility& utility) {
  CTFL_SPAN("ctfl.valuation.leave_one_out");
  Stopwatch watch;
  ContributionResult result;
  result.scheme = name();
  const int n = utility.num_participants();
  const int before = utility.evaluations();
  const double grand = utility.Value(GrandCoalition(n));
  for (int i = 0; i < n; ++i) {
    std::vector<int> others;
    others.reserve(n - 1);
    for (int j = 0; j < n; ++j) {
      if (j != i) others.push_back(j);
    }
    result.scores.push_back(grand - utility.Value(others));
  }
  result.coalitions_evaluated = utility.evaluations() - before;
  result.seconds = watch.ElapsedSeconds();
  telemetry::MetricsRegistry::Global()
      .GetCounter("ctfl.valuation.coalitions")
      .Add(result.coalitions_evaluated);
  return result;
}

}  // namespace ctfl
