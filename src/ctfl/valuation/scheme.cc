#include "ctfl/valuation/scheme.h"

#include <algorithm>
#include <numeric>

namespace ctfl {

std::vector<int> RankByScore(const std::vector<double>& scores) {
  std::vector<int> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return scores[a] > scores[b];
  });
  return order;
}

std::vector<int> GrandCoalition(int n) {
  std::vector<int> everyone(n);
  std::iota(everyone.begin(), everyone.end(), 0);
  return everyone;
}

}  // namespace ctfl
