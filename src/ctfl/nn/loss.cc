#include "ctfl/nn/loss.h"

#include <algorithm>
#include <cmath>

#include "ctfl/util/logging.h"

namespace ctfl {

double SoftmaxCrossEntropy(const Matrix& logits,
                           const std::vector<int>& labels, Matrix* dlogits) {
  CTFL_CHECK(logits.rows() == labels.size());
  const size_t batch = logits.rows();
  const size_t classes = logits.cols();
  if (dlogits != nullptr) *dlogits = Matrix(batch, classes);
  double total = 0.0;
  std::vector<double> probs(classes);
  for (size_t r = 0; r < batch; ++r) {
    const double* row = logits.row(r);
    const double mx = *std::max_element(row, row + classes);
    double z = 0.0;
    for (size_t c = 0; c < classes; ++c) {
      probs[c] = std::exp(row[c] - mx);
      z += probs[c];
    }
    for (double& p : probs) p /= z;
    const int label = labels[r];
    total += -std::log(std::max(probs[label], 1e-12));
    if (dlogits != nullptr) {
      for (size_t c = 0; c < classes; ++c) {
        (*dlogits)(r, c) =
            (probs[c] - (static_cast<int>(c) == label ? 1.0 : 0.0)) / batch;
      }
    }
  }
  return total / batch;
}

std::vector<int> ArgmaxRows(const Matrix& logits) {
  std::vector<int> out(logits.rows());
  for (size_t r = 0; r < logits.rows(); ++r) {
    const double* row = logits.row(r);
    out[r] = static_cast<int>(
        std::max_element(row, row + logits.cols()) - row);
  }
  return out;
}

}  // namespace ctfl
