#ifndef CTFL_NN_LOGIC_LAYER_H_
#define CTFL_NN_LOGIC_LAYER_H_

#include <vector>

#include "ctfl/nn/matrix.h"
#include "ctfl/util/rng.h"

namespace ctfl {

/// One logical layer of the rule-based model (paper §V Eq. 7): the first
/// `num_conj` nodes are conjunctions, the rest disjunctions, each with a
/// weight vector w in [0,1]^in controlling how strongly every input takes
/// part in the logical operation:
///
///   Conj(x, w) = prod_i (1 - w_i (1 - x_i))
///   Disj(x, w) = 1 - prod_i (1 - w_i x_i)
///
/// With binarized weights (w > 0.5) and binary inputs these become crisp
/// AND / OR over the selected inputs; the continuous form is what gradient
/// grafting differentiates through.
class LogicLayer {
 public:
  LogicLayer(int in_dim, int num_conj, int num_disj);

  int in_dim() const { return in_dim_; }
  int num_conj() const { return num_conj_; }
  int num_disj() const { return num_disj_; }
  int out_dim() const { return num_conj_ + num_disj_; }
  bool IsConjNode(int node) const { return node < num_conj_; }

  /// Sparse initialization: each node gets `fan_in` random active inputs
  /// with weights in (0.5, 1) and zeros elsewhere. Keeps initial products
  /// away from 0 so grafted gradients do not vanish.
  void InitSparse(Rng& rng, int fan_in);

  /// Continuous (fuzzy) forward: Y(batch x out).
  Matrix ForwardContinuous(const Matrix& x) const;

  /// Forward with weights binarized at 0.5: crisp AND/OR when x is binary.
  Matrix ForwardDiscrete(const Matrix& x) const;

  /// Accumulates parameter gradients for the continuous form given the
  /// cached input `x`, cached continuous output `y`, and upstream gradient
  /// `dy`; returns the gradient w.r.t. x.
  Matrix Backward(const Matrix& x, const Matrix& y, const Matrix& dy);

  /// Inputs whose binarized weight is active (> 0.5) for `node`.
  std::vector<int> ActiveInputs(int node) const;

  Matrix& weights() { return weights_; }
  const Matrix& weights() const { return weights_; }
  Matrix& grads() { return grads_; }

  /// Projects weights back into [0, 1] (called after optimizer steps).
  void ProjectWeights() { weights_.Clamp(0.0, 1.0); }

 private:
  int in_dim_;
  int num_conj_;
  int num_disj_;
  Matrix weights_;  // (out_dim x in_dim), values in [0, 1]
  Matrix grads_;
};

}  // namespace ctfl

#endif  // CTFL_NN_LOGIC_LAYER_H_
