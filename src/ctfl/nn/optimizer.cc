#include "ctfl/nn/optimizer.h"

#include <cmath>

#include "ctfl/util/logging.h"

namespace ctfl {

void SgdOptimizer::Step(const std::vector<ParamSlot>& slots) {
  if (velocity_.empty()) {
    for (const ParamSlot& s : slots) {
      velocity_.emplace_back(s.param->rows(), s.param->cols());
    }
  }
  CTFL_CHECK(velocity_.size() == slots.size());
  for (size_t i = 0; i < slots.size(); ++i) {
    Matrix& vel = velocity_[i];
    vel.Scale(momentum_);
    vel.Axpy(1.0, *slots[i].grad);
    slots[i].param->Axpy(-lr_, vel);
  }
}

void AdamOptimizer::Step(const std::vector<ParamSlot>& slots) {
  if (m_.empty()) {
    for (const ParamSlot& s : slots) {
      m_.emplace_back(s.param->rows(), s.param->cols());
      v_.emplace_back(s.param->rows(), s.param->cols());
    }
  }
  CTFL_CHECK(m_.size() == slots.size());
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, t_);
  const double bc2 = 1.0 - std::pow(beta2_, t_);
  for (size_t i = 0; i < slots.size(); ++i) {
    Matrix& m = m_[i];
    Matrix& v = v_[i];
    Matrix& p = *slots[i].param;
    const Matrix& g = *slots[i].grad;
    for (size_t k = 0; k < p.size(); ++k) {
      const double gk = g.data()[k];
      m.data()[k] = beta1_ * m.data()[k] + (1.0 - beta1_) * gk;
      v.data()[k] = beta2_ * v.data()[k] + (1.0 - beta2_) * gk * gk;
      const double mhat = m.data()[k] / bc1;
      const double vhat = v.data()[k] / bc2;
      p.data()[k] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace ctfl
