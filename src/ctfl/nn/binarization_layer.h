#ifndef CTFL_NN_BINARIZATION_LAYER_H_
#define CTFL_NN_BINARIZATION_LAYER_H_

#include <string>
#include <vector>

#include "ctfl/data/dataset.h"
#include "ctfl/nn/matrix.h"
#include "ctfl/util/rng.h"

namespace ctfl {

/// Atomic predicate realized by one output bit of the encoder: either a
/// threshold test on a continuous feature or an equality test on a discrete
/// one. Rule extraction stitches these into symbolic rules.
struct EncodedPredicate {
  enum class Kind { kGreater, kLess, kEquals };
  int feature = 0;
  Kind kind = Kind::kEquals;
  double threshold = 0.0;  // continuous kinds
  int category = 0;        // kEquals

  /// e.g. "capital-gain > 21000" or "marital-status = never".
  std::string ToString(const FeatureSchema& schema) const;
};

/// The paper's privacy-preserving input encoding (§V "Encode Input
/// Features"): discrete features become one-hot bits; each continuous
/// feature c in [lo, hi] becomes 2*tau_d indicator bits
/// [1(c > l_1..l_tau), 1(c < u_1..u_tau)] against bounds drawn only from
/// the public value domain — never from participant data. Which bounds
/// matter is learned downstream by the logical layers.
class BinarizationLayer {
 public:
  /// `tau_d` bounds per direction per continuous feature.
  BinarizationLayer(SchemaPtr schema, int tau_d, Rng& rng);

  const SchemaPtr& schema() const { return schema_; }
  int tau_d() const { return tau_d_; }

  /// Width of the encoded binary vector.
  int encoded_size() const { return static_cast<int>(predicates_.size()); }

  /// Encodes one instance into `out` (length encoded_size(), values 0/1).
  void Encode(const Instance& instance, double* out) const;

  /// Encodes a whole dataset into a (n x encoded_size) matrix.
  Matrix EncodeBatch(const Dataset& dataset,
                     const std::vector<size_t>& indices) const;

  /// The predicate realized by encoded bit `j`.
  const EncodedPredicate& predicate(int j) const { return predicates_[j]; }

 private:
  SchemaPtr schema_;
  int tau_d_;
  std::vector<EncodedPredicate> predicates_;
};

}  // namespace ctfl

#endif  // CTFL_NN_BINARIZATION_LAYER_H_
