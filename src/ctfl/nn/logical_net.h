#ifndef CTFL_NN_LOGICAL_NET_H_
#define CTFL_NN_LOGICAL_NET_H_

#include <utility>
#include <vector>

#include "ctfl/data/dataset.h"
#include "ctfl/nn/binarization_layer.h"
#include "ctfl/nn/linear_layer.h"
#include "ctfl/nn/logic_layer.h"
#include "ctfl/nn/optimizer.h"
#include "ctfl/util/bitset.h"

namespace ctfl {

/// Hyper-parameters of the practical rule-based model (paper §V, Fig. 3).
struct LogicalNetConfig {
  /// Candidate bounds per direction per continuous feature.
  int tau_d = 10;
  /// (num_conjunction, num_disjunction) nodes per logical layer; the paper
  /// default is a single layer of 64-512 nodes.
  std::vector<std::pair<int, int>> logic_layers = {{64, 64}};
  /// Active inputs per logic node at initialization.
  int fan_in = 3;
  /// If true the encoded predicates feed the vote layer directly as
  /// single-predicate rules (a skip connection past the logic layers).
  bool input_skip = true;
  double linear_init_scale = 0.05;
  uint64_t seed = 42;
};

/// The practical rule-based model: binarization encoding, logical layers,
/// and a linear vote layer. Maintains both the continuous (differentiable)
/// and the binarized (deployed, rule-crisp) forward paths that gradient
/// grafting couples during training.
///
/// Rule space: the vote layer's input vector is the concatenation of
/// [encoded predicates (if input_skip)] + [every logic layer's outputs]
/// (skip connections, paper §V "Build Logical Rules"); each coordinate is
/// one *rule* in the sense of Def. III.2.
class LogicalNet {
 public:
  LogicalNet(SchemaPtr schema, const LogicalNetConfig& config);

  const SchemaPtr& schema() const { return encoder_.schema(); }
  const LogicalNetConfig& config() const { return config_; }
  const BinarizationLayer& encoder() const { return encoder_; }
  const std::vector<LogicLayer>& logic_layers() const {
    return logic_layers_;
  }
  std::vector<LogicLayer>& mutable_logic_layers() { return logic_layers_; }
  const LinearLayer& linear() const { return linear_; }

  int encoded_size() const { return encoder_.encoded_size(); }
  /// Number of rule coordinates seen by the vote layer.
  int num_rules() const { return num_rules_; }

  /// Where rule coordinate `j` comes from: {-1, encoded_bit} for skip
  /// predicates or {layer_index, node_index} for logic nodes.
  std::pair<int, int> RuleSource(int j) const;

  /// Encodes dataset rows `indices` (all rows if empty) to binary inputs.
  Matrix EncodeBatch(const Dataset& dataset,
                     const std::vector<size_t>& indices = {}) const;

  /// Intermediate activations of a continuous forward pass, kept for
  /// Backward.
  struct Cache {
    Matrix encoded;
    std::vector<Matrix> layer_out;
    Matrix rules;
  };

  /// Continuous (fuzzy) logits; fills `cache` if non-null.
  Matrix ForwardContinuous(const Matrix& encoded, Cache* cache) const;

  /// Binarized logits — the deployed model's inference (Eq. 3).
  Matrix ForwardDiscrete(const Matrix& encoded) const;

  /// Binarized rule-activation matrix (batch x num_rules, entries 0/1).
  /// Large batches are row-sharded across the shared matrix pool
  /// (DESIGN.md §9): every row's computation is unchanged, so the result
  /// is bit-identical to a serial pass at any thread count.
  Matrix RulesDiscrete(const Matrix& encoded) const;

  /// Gradient-grafting backward: `dlogits` is dL(Ȳ)/dȲ computed on the
  /// *discrete* outputs; it is pushed through the *continuous* graph in
  /// `cache`, accumulating parameter gradients.
  void Backward(const Cache& cache, const Matrix& dlogits);

  void ZeroGrads();
  /// Projects logic weights back into [0, 1] after an optimizer step.
  void ProjectWeights();
  std::vector<ParamSlot> ParamSlots();

  /// Flat parameter vector (for FedAvg aggregation).
  std::vector<double> GetParameters() const;
  void SetParameters(const std::vector<double>& flat);
  size_t NumParameters() const;

  /// Deployed single-instance inference (binarized model).
  int Predict(const Instance& instance) const;
  /// Deployed accuracy on `dataset` — the paper's utility metric Eq. (1).
  double Accuracy(const Dataset& dataset) const;

  /// Binarized rule-activation vector of one instance, as a Bitset over
  /// rule coordinates — the object participants upload for tracing.
  Bitset RuleActivations(const Instance& instance) const;

  /// Class supported by rule j per Def. III.2: 1 if the vote layer weighs
  /// it more for the positive class, else 0.
  int RuleClass(int j) const;
  /// Importance weight of rule j: |w_pos(j) - w_neg(j)|.
  double RuleWeight(int j) const;

 private:
  /// One-shot (single-thread) discrete rule pass over the whole batch.
  Matrix RulesDiscreteSerial(const Matrix& encoded) const;

  LogicalNetConfig config_;
  BinarizationLayer encoder_;
  std::vector<LogicLayer> logic_layers_;
  LinearLayer linear_;
  int num_rules_;
};

}  // namespace ctfl

#endif  // CTFL_NN_LOGICAL_NET_H_
