#include "ctfl/nn/logical_net.h"

#include <algorithm>
#include <cmath>

#include "ctfl/util/logging.h"
#include "ctfl/util/thread_pool.h"

namespace ctfl {

LogicalNet::LogicalNet(SchemaPtr schema, const LogicalNetConfig& config)
    : config_(config),
      encoder_([&] {
        Rng rng(config.seed);
        return BinarizationLayer(std::move(schema), config.tau_d, rng);
      }()),
      linear_(1, 2),  // resized below once the rule count is known
      num_rules_(0) {
  Rng rng(config_.seed + 1);
  int in_dim = encoder_.encoded_size();
  int total_logic_out = 0;
  for (const auto& [num_conj, num_disj] : config_.logic_layers) {
    logic_layers_.emplace_back(in_dim, num_conj, num_disj);
    logic_layers_.back().InitSparse(rng, config_.fan_in);
    in_dim = num_conj + num_disj;
    total_logic_out += in_dim;
  }
  num_rules_ = total_logic_out +
               (config_.input_skip ? encoder_.encoded_size() : 0);
  CTFL_CHECK(num_rules_ > 0);
  linear_ = LinearLayer(num_rules_, 2);
  linear_.InitRandom(rng, config_.linear_init_scale);
}

std::pair<int, int> LogicalNet::RuleSource(int j) const {
  CTFL_CHECK(j >= 0 && j < num_rules_);
  if (config_.input_skip) {
    if (j < encoder_.encoded_size()) return {-1, j};
    j -= encoder_.encoded_size();
  }
  for (size_t layer = 0; layer < logic_layers_.size(); ++layer) {
    if (j < logic_layers_[layer].out_dim()) {
      return {static_cast<int>(layer), j};
    }
    j -= logic_layers_[layer].out_dim();
  }
  CTFL_LOG_FATAL << "rule index out of range";
}

Matrix LogicalNet::EncodeBatch(const Dataset& dataset,
                               const std::vector<size_t>& indices) const {
  if (!indices.empty()) return encoder_.EncodeBatch(dataset, indices);
  std::vector<size_t> all(dataset.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  return encoder_.EncodeBatch(dataset, all);
}

namespace {

// Concatenates [encoded (optional)] + layer outputs into the rule matrix.
Matrix ConcatRules(const Matrix& encoded, const std::vector<Matrix>& outs,
                   bool input_skip, int num_rules) {
  const size_t batch = encoded.rows();
  Matrix rules(batch, num_rules);
  for (size_t r = 0; r < batch; ++r) {
    double* dst = rules.row(r);
    size_t offset = 0;
    if (input_skip) {
      const double* src = encoded.row(r);
      for (size_t c = 0; c < encoded.cols(); ++c) dst[offset + c] = src[c];
      offset += encoded.cols();
    }
    for (const Matrix& out : outs) {
      const double* src = out.row(r);
      for (size_t c = 0; c < out.cols(); ++c) dst[offset + c] = src[c];
      offset += out.cols();
    }
  }
  return rules;
}

}  // namespace

Matrix LogicalNet::ForwardContinuous(const Matrix& encoded,
                                     Cache* cache) const {
  std::vector<Matrix> outs;
  const Matrix* layer_in = &encoded;
  for (const LogicLayer& layer : logic_layers_) {
    outs.push_back(layer.ForwardContinuous(*layer_in));
    layer_in = &outs.back();
  }
  Matrix rules = ConcatRules(encoded, outs, config_.input_skip, num_rules_);
  Matrix logits = linear_.Forward(rules);
  if (cache != nullptr) {
    cache->encoded = encoded;
    cache->layer_out = std::move(outs);
    cache->rules = std::move(rules);
  }
  return logits;
}

Matrix LogicalNet::RulesDiscreteSerial(const Matrix& encoded) const {
  std::vector<Matrix> outs;
  const Matrix* layer_in = &encoded;
  for (const LogicLayer& layer : logic_layers_) {
    outs.push_back(layer.ForwardDiscrete(*layer_in));
    layer_in = &outs.back();
  }
  return ConcatRules(encoded, outs, config_.input_skip, num_rules_);
}

namespace {

/// Minimum batch before the discrete forward pass fans out row chunks.
constexpr size_t kBatchedForwardMinRows = 256;

}  // namespace

Matrix LogicalNet::RulesDiscrete(const Matrix& encoded) const {
  const size_t batch = encoded.rows();
  ThreadPool* pool = nullptr;
  if (batch >= kBatchedForwardMinRows) pool = MatrixParallelPool();
  if (pool == nullptr) return RulesDiscreteSerial(encoded);

  // Batched forward (DESIGN.md §9): each chunk runs the unmodified serial
  // pipeline on a contiguous row slice. Every output row is produced by
  // exactly the per-row arithmetic of the serial pass, so the stitched
  // result is bit-identical regardless of thread count or chunking.
  Matrix rules(batch, num_rules_);
  const size_t chunks = std::min<size_t>(
      batch, static_cast<size_t>(pool->num_threads()) * 2);
  const size_t chunk_rows = (batch + chunks - 1) / chunks;
  pool->ParallelFor(0, chunks, [&](size_t ci) {
    const size_t lo = ci * chunk_rows;
    const size_t hi = std::min(batch, lo + chunk_rows);
    if (lo >= hi) return;
    Matrix sub(hi - lo, encoded.cols());
    std::copy(encoded.row(lo), encoded.row(lo) + (hi - lo) * encoded.cols(),
              sub.data());
    const Matrix sub_rules = RulesDiscreteSerial(sub);
    std::copy(sub_rules.data(), sub_rules.data() + sub_rules.size(),
              rules.row(lo));
  });
  return rules;
}

Matrix LogicalNet::ForwardDiscrete(const Matrix& encoded) const {
  return linear_.Forward(RulesDiscrete(encoded));
}

void LogicalNet::Backward(const Cache& cache, const Matrix& dlogits) {
  // Note: linear_.Backward consumes the *continuous* rule activations; the
  // upstream dlogits came from the discrete loss — that asymmetry is
  // exactly the gradient-grafting update.
  Matrix drules = linear_.Backward(cache.rules, dlogits);

  // Split drules into per-segment upstream gradients.
  const size_t batch = drules.rows();
  size_t offset = config_.input_skip ? encoder_.encoded_size() : 0;
  std::vector<Matrix> dout(logic_layers_.size());
  for (size_t layer = 0; layer < logic_layers_.size(); ++layer) {
    const int width = logic_layers_[layer].out_dim();
    dout[layer] = Matrix(batch, width);
    for (size_t r = 0; r < batch; ++r) {
      const double* src = drules.row(r) + offset;
      double* dst = dout[layer].row(r);
      for (int c = 0; c < width; ++c) dst[c] = src[c];
    }
    offset += width;
  }

  // Reverse pass through the logic layers; each layer's dx adds to the
  // previous layer's upstream gradient.
  for (int layer = static_cast<int>(logic_layers_.size()) - 1; layer >= 0;
       --layer) {
    const Matrix& input =
        layer == 0 ? cache.encoded : cache.layer_out[layer - 1];
    Matrix dx = logic_layers_[layer].Backward(input, cache.layer_out[layer],
                                              dout[layer]);
    if (layer > 0) dout[layer - 1].Axpy(1.0, dx);
    // dx w.r.t. the encoder input is discarded (no parameters there).
  }
}

void LogicalNet::ZeroGrads() {
  for (LogicLayer& layer : logic_layers_) layer.grads().Fill(0.0);
  linear_.weight_grads().Fill(0.0);
  linear_.bias_grads().Fill(0.0);
}

void LogicalNet::ProjectWeights() {
  for (LogicLayer& layer : logic_layers_) layer.ProjectWeights();
}

std::vector<ParamSlot> LogicalNet::ParamSlots() {
  std::vector<ParamSlot> slots;
  for (LogicLayer& layer : logic_layers_) {
    slots.push_back({&layer.weights(), &layer.grads()});
  }
  slots.push_back({&linear_.weights(), &linear_.weight_grads()});
  slots.push_back({&linear_.bias(), &linear_.bias_grads()});
  return slots;
}

std::vector<double> LogicalNet::GetParameters() const {
  std::vector<double> flat;
  flat.reserve(NumParameters());
  for (const LogicLayer& layer : logic_layers_) {
    const Matrix& w = layer.weights();
    flat.insert(flat.end(), w.data(), w.data() + w.size());
  }
  const Matrix& lw = linear_.weights();
  flat.insert(flat.end(), lw.data(), lw.data() + lw.size());
  const Matrix& lb = linear_.bias();
  flat.insert(flat.end(), lb.data(), lb.data() + lb.size());
  return flat;
}

void LogicalNet::SetParameters(const std::vector<double>& flat) {
  CTFL_CHECK(flat.size() == NumParameters());
  size_t offset = 0;
  auto copy_into = [&](Matrix& m) {
    for (size_t i = 0; i < m.size(); ++i) m.data()[i] = flat[offset + i];
    offset += m.size();
  };
  for (LogicLayer& layer : logic_layers_) copy_into(layer.weights());
  copy_into(linear_.weights());
  copy_into(linear_.bias());
}

size_t LogicalNet::NumParameters() const {
  size_t n = 0;
  for (const LogicLayer& layer : logic_layers_) n += layer.weights().size();
  n += linear_.weights().size() + linear_.bias().size();
  return n;
}

int LogicalNet::Predict(const Instance& instance) const {
  Matrix encoded(1, encoder_.encoded_size());
  encoder_.Encode(instance, encoded.row(0));
  const Matrix logits = ForwardDiscrete(encoded);
  // Eq. (3) resolves ties toward the positive class.
  return logits(0, 1) >= logits(0, 0) ? 1 : 0;
}

double LogicalNet::Accuracy(const Dataset& dataset) const {
  if (dataset.empty()) return 0.0;
  const Matrix encoded = EncodeBatch(dataset);
  const Matrix logits = ForwardDiscrete(encoded);
  size_t correct = 0;
  for (size_t r = 0; r < dataset.size(); ++r) {
    const int pred = logits(r, 1) >= logits(r, 0) ? 1 : 0;
    if (pred == dataset.instance(r).label) ++correct;
  }
  return static_cast<double>(correct) / dataset.size();
}

Bitset LogicalNet::RuleActivations(const Instance& instance) const {
  Matrix encoded(1, encoder_.encoded_size());
  encoder_.Encode(instance, encoded.row(0));
  const Matrix rules = RulesDiscrete(encoded);
  Bitset bits(num_rules_);
  for (int j = 0; j < num_rules_; ++j) {
    if (rules(0, j) > 0.5) bits.Set(j);
  }
  return bits;
}

int LogicalNet::RuleClass(int j) const {
  return linear_.weights()(1, j) >= linear_.weights()(0, j) ? 1 : 0;
}

double LogicalNet::RuleWeight(int j) const {
  return std::abs(linear_.weights()(1, j) - linear_.weights()(0, j));
}

}  // namespace ctfl
