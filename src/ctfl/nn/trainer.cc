#include "ctfl/nn/trainer.h"

#include <algorithm>
#include <memory>

#include "ctfl/nn/loss.h"
#include "ctfl/telemetry/metrics.h"
#include "ctfl/telemetry/trace.h"
#include "ctfl/util/logging.h"
#include "ctfl/util/rng.h"
#include "ctfl/util/stopwatch.h"
#include "ctfl/util/thread_pool.h"

namespace ctfl {

double GraftedStep(LogicalNet& net, const Matrix& encoded,
                   const std::vector<int>& labels, Optimizer& optimizer) {
  LogicalNet::Cache cache;
  net.ForwardContinuous(encoded, &cache);
  const Matrix discrete_logits = net.ForwardDiscrete(encoded);
  Matrix dlogits;
  const double loss = SoftmaxCrossEntropy(discrete_logits, labels, &dlogits);
  net.ZeroGrads();
  net.Backward(cache, dlogits);
  const std::vector<ParamSlot> slots = net.ParamSlots();
  optimizer.Step(slots);
  net.ProjectWeights();
  return loss;
}

TrainReport TrainGrafted(LogicalNet& net, const Dataset& data,
                         const TrainConfig& config) {
  TrainReport report;
  if (data.empty()) return report;

  // Honor the config's matrix-parallelism budget. Inside a pool worker
  // (FedAvg client fan-out) the kernels run serial regardless, so the
  // process-wide knob is left alone there.
  if (!ThreadPool::InPoolWorker()) {
    SetMatrixParallelism(config.num_threads);
  }

  std::unique_ptr<Optimizer> optimizer;
  if (config.use_adam) {
    optimizer = std::make_unique<AdamOptimizer>(config.learning_rate);
  } else {
    optimizer = std::make_unique<SgdOptimizer>(config.learning_rate,
                                               config.sgd_momentum);
  }

  // Encode the whole dataset once; batches are row subsets.
  const Matrix all_encoded = net.EncodeBatch(data);
  Rng rng(config.seed);
  std::vector<int> order(static_cast<int>(data.size()));
  for (size_t i = 0; i < data.size(); ++i) order[i] = static_cast<int>(i);

  // Cached registry lookups: after the first call these are pure atomics.
  static telemetry::Counter& step_counter =
      telemetry::MetricsRegistry::Global().GetCounter("ctfl.train.steps");
  static telemetry::Histogram& epoch_hist =
      telemetry::MetricsRegistry::Global().GetHistogram(
          "ctfl.train.epoch_us");

  const int batch_size = std::max(1, config.batch_size);
  Stopwatch epoch_watch;
  report.epoch_stats.reserve(config.epochs > 0 ? config.epochs : 0);
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    CTFL_SPAN("ctfl.train.epoch");
    rng.Shuffle(order);
    double epoch_loss = 0.0;
    int batches = 0;
    for (size_t start = 0; start < order.size();
         start += static_cast<size_t>(batch_size)) {
      const size_t end =
          std::min(order.size(), start + static_cast<size_t>(batch_size));
      Matrix batch(end - start, all_encoded.cols());
      std::vector<int> labels(end - start);
      for (size_t r = start; r < end; ++r) {
        const int src = order[r];
        const double* src_row = all_encoded.row(src);
        double* dst_row = batch.row(r - start);
        std::copy(src_row, src_row + all_encoded.cols(), dst_row);
        labels[r - start] = data.instance(src).label;
      }
      epoch_loss += GraftedStep(net, batch, labels, *optimizer);
      ++batches;
      ++report.steps;
    }
    report.final_loss = batches > 0 ? epoch_loss / batches : 0.0;
    step_counter.Add(batches);
    const double epoch_seconds = epoch_watch.LapSeconds();
    epoch_hist.Observe(epoch_seconds * 1e6);
    report.epoch_stats.push_back({epoch, epoch_seconds, report.final_loss});
    if (config.verbose) {
      CTFL_LOG(Info) << "epoch " << epoch << " loss " << report.final_loss;
    }
  }
  report.train_accuracy = net.Accuracy(data);
  return report;
}

}  // namespace ctfl
