#ifndef CTFL_NN_MATRIX_H_
#define CTFL_NN_MATRIX_H_

#include <cstddef>
#include <vector>

#include "ctfl/util/rng.h"

namespace ctfl {

class ThreadPool;

// ---------------------------------------------------------------------------
// Process-wide parallelism knobs for the dense kernels (DESIGN.md §9).
//
// The sharded kernels split work across *output rows*, so every output
// element is accumulated by exactly one thread in exactly the same term
// order as the serial loop — results are bit-identical for any thread
// count, and the knobs below only trade wall time.
// ---------------------------------------------------------------------------

/// Sets the worker budget of the sharded kernels: 0 = hardware
/// concurrency, 1 = always serial, N = N workers. Thread-safe (atomic),
/// but intended to be set from entry points (CLI, RunCtfl, TrainGrafted),
/// not concurrently with running kernels.
void SetMatrixParallelism(int num_threads);
/// Resolved current setting (>= 1).
int MatrixParallelism();

/// Minimum multiply-accumulate count before a kernel engages the sharded
/// path (serial fallback below it; default 64k). Exposed as a test hook so
/// the differential suite can force tiny matrices onto the parallel path.
void SetMatrixParallelGrain(size_t min_flops);
size_t MatrixParallelGrain();

/// Shared pool behind the sharded kernels, sized to MatrixParallelism().
/// Returns nullptr when the resolved setting is serial or the caller is
/// already inside a pool worker (nested parallelism is never profitable
/// here). Exposed so other batch-parallel code (LogicalNet's batched
/// forward) shares one pool instead of spawning its own.
ThreadPool* MatrixParallelPool();

/// Dense row-major matrix of doubles; the numeric workhorse of the logical
/// neural network. Deliberately minimal: only the operations the training
/// loop needs.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }

  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  double* row(size_t r) { return data_.data() + r * cols_; }
  const double* row(size_t r) const { return data_.data() + r * cols_; }

  void Fill(double v);

  /// Element-wise in-place scaled add: this += alpha * other.
  void Axpy(double alpha, const Matrix& other);

  /// this = this * scalar.
  void Scale(double s);

  /// Clamps every element into [lo, hi].
  void Clamp(double lo, double hi);

  /// Returns this(rows x k) * other(k x cols). Row-sharded across the
  /// matrix pool above the grain threshold; bit-identical to the serial
  /// loop at any thread count.
  Matrix MatMul(const Matrix& other) const;

  /// Returns transpose(this)(cols x rows) * other(rows x c) without
  /// materializing the transpose. The sharded path walks output rows
  /// (columns of this) and accumulates the r-terms in the same ascending
  /// order as the serial loop — bit-identical results.
  Matrix TransposedMatMul(const Matrix& other) const;

  /// Returns this(rows x k) * transpose(other)(k x c) without materializing
  /// the transpose. Row-sharded; bit-identical to serial.
  Matrix MatMulTransposed(const Matrix& other) const;

  /// Fills with U[lo, hi) samples.
  void RandomUniform(Rng& rng, double lo, double hi);

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

}  // namespace ctfl

#endif  // CTFL_NN_MATRIX_H_
