#ifndef CTFL_NN_MATRIX_H_
#define CTFL_NN_MATRIX_H_

#include <cstddef>
#include <vector>

#include "ctfl/util/rng.h"

namespace ctfl {

/// Dense row-major matrix of doubles; the numeric workhorse of the logical
/// neural network. Deliberately minimal: only the operations the training
/// loop needs.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }

  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  double* row(size_t r) { return data_.data() + r * cols_; }
  const double* row(size_t r) const { return data_.data() + r * cols_; }

  void Fill(double v);

  /// Element-wise in-place scaled add: this += alpha * other.
  void Axpy(double alpha, const Matrix& other);

  /// this = this * scalar.
  void Scale(double s);

  /// Clamps every element into [lo, hi].
  void Clamp(double lo, double hi);

  /// Returns this(rows x k) * other(k x cols).
  Matrix MatMul(const Matrix& other) const;

  /// Returns transpose(this)(cols x rows) * other(rows x c) without
  /// materializing the transpose.
  Matrix TransposedMatMul(const Matrix& other) const;

  /// Returns this(rows x k) * transpose(other)(k x c) without materializing
  /// the transpose.
  Matrix MatMulTransposed(const Matrix& other) const;

  /// Fills with U[lo, hi) samples.
  void RandomUniform(Rng& rng, double lo, double hi);

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

}  // namespace ctfl

#endif  // CTFL_NN_MATRIX_H_
