#include "ctfl/nn/logic_layer.h"

#include <algorithm>
#include <cmath>

#include "ctfl/util/logging.h"

namespace ctfl {
namespace {

// Clamp floor for product terms; keeps y / t_i well defined in backward.
constexpr double kEps = 1e-8;

}  // namespace

LogicLayer::LogicLayer(int in_dim, int num_conj, int num_disj)
    : in_dim_(in_dim),
      num_conj_(num_conj),
      num_disj_(num_disj),
      weights_(num_conj + num_disj, in_dim),
      grads_(num_conj + num_disj, in_dim) {
  CTFL_CHECK(in_dim > 0);
  CTFL_CHECK(num_conj >= 0 && num_disj >= 0 && num_conj + num_disj > 0);
}

void LogicLayer::InitSparse(Rng& rng, int fan_in) {
  weights_.Fill(0.0);
  fan_in = std::min(fan_in, in_dim_);
  for (int node = 0; node < out_dim(); ++node) {
    for (int k = 0; k < fan_in; ++k) {
      const int input = static_cast<int>(rng.UniformInt(in_dim_));
      weights_(node, input) = rng.Uniform(0.55, 0.95);
    }
  }
}

Matrix LogicLayer::ForwardContinuous(const Matrix& x) const {
  CTFL_CHECK(static_cast<int>(x.cols()) == in_dim_);
  Matrix y(x.rows(), out_dim());
  for (size_t r = 0; r < x.rows(); ++r) {
    const double* xr = x.row(r);
    for (int node = 0; node < out_dim(); ++node) {
      const double* w = weights_.row(node);
      double prod = 1.0;
      if (IsConjNode(node)) {
        for (int i = 0; i < in_dim_; ++i) {
          if (w[i] == 0.0) continue;
          prod *= std::max(kEps, 1.0 - w[i] * (1.0 - xr[i]));
        }
        y(r, node) = prod;
      } else {
        for (int i = 0; i < in_dim_; ++i) {
          if (w[i] == 0.0) continue;
          prod *= std::max(kEps, 1.0 - w[i] * xr[i]);
        }
        y(r, node) = 1.0 - prod;
      }
    }
  }
  return y;
}

Matrix LogicLayer::ForwardDiscrete(const Matrix& x) const {
  CTFL_CHECK(static_cast<int>(x.cols()) == in_dim_);
  Matrix y(x.rows(), out_dim());
  for (size_t r = 0; r < x.rows(); ++r) {
    const double* xr = x.row(r);
    for (int node = 0; node < out_dim(); ++node) {
      const double* w = weights_.row(node);
      if (IsConjNode(node)) {
        double out = 1.0;
        for (int i = 0; i < in_dim_; ++i) {
          if (w[i] > 0.5 && xr[i] < 0.5) {
            out = 0.0;
            break;
          }
        }
        y(r, node) = out;
      } else {
        double out = 0.0;
        for (int i = 0; i < in_dim_; ++i) {
          if (w[i] > 0.5 && xr[i] >= 0.5) {
            out = 1.0;
            break;
          }
        }
        y(r, node) = out;
      }
    }
  }
  return y;
}

Matrix LogicLayer::Backward(const Matrix& x, const Matrix& y,
                            const Matrix& dy) {
  CTFL_CHECK(x.rows() == y.rows() && y.rows() == dy.rows());
  Matrix dx(x.rows(), in_dim_);
  for (size_t r = 0; r < x.rows(); ++r) {
    const double* xr = x.row(r);
    double* dxr = dx.row(r);
    for (int node = 0; node < out_dim(); ++node) {
      const double g = dy(r, node);
      if (g == 0.0) continue;
      const double* w = weights_.row(node);
      double* gw = grads_.row(node);
      if (IsConjNode(node)) {
        const double prod = y(r, node);
        if (prod <= 0.0) continue;
        for (int i = 0; i < in_dim_; ++i) {
          const double t = std::max(kEps, 1.0 - w[i] * (1.0 - xr[i]));
          const double rest = prod / t;  // product of the other terms, <= 1
          gw[i] += g * (-(1.0 - xr[i]) * rest);
          dxr[i] += g * (w[i] * rest);
        }
      } else {
        const double prod = 1.0 - y(r, node);  // prod of (1 - w x)
        if (prod <= 0.0) continue;
        for (int i = 0; i < in_dim_; ++i) {
          const double s = std::max(kEps, 1.0 - w[i] * xr[i]);
          const double rest = prod / s;
          gw[i] += g * (xr[i] * rest);
          dxr[i] += g * (w[i] * rest);
        }
      }
    }
  }
  return dx;
}

std::vector<int> LogicLayer::ActiveInputs(int node) const {
  std::vector<int> out;
  for (int i = 0; i < in_dim_; ++i) {
    if (weights_(node, i) > 0.5) out.push_back(i);
  }
  return out;
}

}  // namespace ctfl
