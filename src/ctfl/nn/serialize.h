#ifndef CTFL_NN_SERIALIZE_H_
#define CTFL_NN_SERIALIZE_H_

#include <string>

#include "ctfl/nn/logical_net.h"

namespace ctfl {

/// Plain-text model persistence. The format stores the architecture
/// hyper-parameters plus all trained parameters (versioned, line based):
///
///   ctfl-model 1
///   tau_d <int>
///   fan_in <int>
///   input_skip <0|1>
///   seed <uint64>
///   linear_init_scale <double>
///   layers <n> <conj_0> <disj_0> ...
///   params <count>
///   <param values, whitespace separated, full precision>
///
/// The feature schema is NOT serialized — models only make sense against
/// the federation's agreed schema, which the caller supplies on load (and
/// which the loader validates by parameter-count compatibility).
Status SaveLogicalNet(const LogicalNet& net, const std::string& path);

Result<LogicalNet> LoadLogicalNet(SchemaPtr schema, const std::string& path);

}  // namespace ctfl

#endif  // CTFL_NN_SERIALIZE_H_
