#include "ctfl/nn/linear_layer.h"

#include "ctfl/util/logging.h"

namespace ctfl {

LinearLayer::LinearLayer(int in_dim, int out_dim)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      weights_(out_dim, in_dim),
      bias_(1, out_dim),
      weight_grads_(out_dim, in_dim),
      bias_grads_(1, out_dim) {
  CTFL_CHECK(in_dim > 0 && out_dim > 0);
}

void LinearLayer::InitRandom(Rng& rng, double scale) {
  weights_.RandomUniform(rng, -scale, scale);
  bias_.Fill(0.0);
}

Matrix LinearLayer::Forward(const Matrix& x) const {
  CTFL_CHECK(static_cast<int>(x.cols()) == in_dim_);
  Matrix logits = x.MatMulTransposed(weights_);
  for (size_t r = 0; r < logits.rows(); ++r) {
    for (int c = 0; c < out_dim_; ++c) logits(r, c) += bias_(0, c);
  }
  return logits;
}

Matrix LinearLayer::Backward(const Matrix& x, const Matrix& dlogits) {
  CTFL_CHECK(x.rows() == dlogits.rows());
  // dW = dlogits^T * x ; db = column sums of dlogits ; dx = dlogits * W.
  weight_grads_.Axpy(1.0, dlogits.TransposedMatMul(x));
  for (size_t r = 0; r < dlogits.rows(); ++r) {
    for (int c = 0; c < out_dim_; ++c) bias_grads_(0, c) += dlogits(r, c);
  }
  return dlogits.MatMul(weights_);
}

}  // namespace ctfl
