#ifndef CTFL_NN_OPTIMIZER_H_
#define CTFL_NN_OPTIMIZER_H_

#include <memory>
#include <vector>

#include "ctfl/nn/matrix.h"

namespace ctfl {

/// A trainable parameter matrix paired with its gradient accumulator.
struct ParamSlot {
  Matrix* param = nullptr;
  Matrix* grad = nullptr;
};

/// Gradient-descent update rule applied to a model's parameter slots.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update using the accumulated gradients (does not zero
  /// them; the trainer owns that).
  virtual void Step(const std::vector<ParamSlot>& slots) = 0;

  /// Drops accumulated optimizer state (momentum/moments).
  virtual void Reset() = 0;
};

/// SGD with optional momentum.
class SgdOptimizer : public Optimizer {
 public:
  explicit SgdOptimizer(double lr, double momentum = 0.0)
      : lr_(lr), momentum_(momentum) {}

  void Step(const std::vector<ParamSlot>& slots) override;
  void Reset() override { velocity_.clear(); }

 private:
  double lr_;
  double momentum_;
  std::vector<Matrix> velocity_;
};

/// Adam (Kingma & Ba); the default for logical-net training, matching the
/// RRL reference implementation the paper builds on.
class AdamOptimizer : public Optimizer {
 public:
  explicit AdamOptimizer(double lr, double beta1 = 0.9, double beta2 = 0.999,
                         double eps = 1e-8)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

  void Step(const std::vector<ParamSlot>& slots) override;
  void Reset() override {
    m_.clear();
    v_.clear();
    t_ = 0;
  }

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  int t_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

}  // namespace ctfl

#endif  // CTFL_NN_OPTIMIZER_H_
