#include "ctfl/nn/serialize.h"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "ctfl/data/schema.h"
#include "ctfl/util/string_util.h"

namespace ctfl {
namespace {

// v1: config + params. v2 adds a schema_fingerprint line so a model file
// refuses to load against a schema other than the one it was trained on.
// Loading still accepts v1 files (no fingerprint check possible).
constexpr int kFormatVersion = 2;

}  // namespace

Status SaveLogicalNet(const LogicalNet& net, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path);
  const LogicalNetConfig& config = net.config();
  out << "ctfl-model " << kFormatVersion << "\n";
  out << "schema_fingerprint " << SchemaFingerprint(*net.schema()) << "\n";
  out << "tau_d " << config.tau_d << "\n";
  out << "fan_in " << config.fan_in << "\n";
  out << "input_skip " << (config.input_skip ? 1 : 0) << "\n";
  out << "seed " << config.seed << "\n";
  out << "linear_init_scale " << std::setprecision(17)
      << config.linear_init_scale << "\n";
  out << "layers " << config.logic_layers.size();
  for (const auto& [conj, disj] : config.logic_layers) {
    out << " " << conj << " " << disj;
  }
  out << "\n";
  const std::vector<double> params = net.GetParameters();
  out << "params " << params.size() << "\n";
  out << std::setprecision(17);
  for (size_t i = 0; i < params.size(); ++i) {
    out << params[i] << (i + 1 == params.size() ? "\n" : " ");
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<LogicalNet> LoadLogicalNet(SchemaPtr schema,
                                  const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);

  std::string tag;
  int version = 0;
  in >> tag >> version;
  if (tag != "ctfl-model") {
    return Status::InvalidArgument(path + ": not a ctfl model file");
  }
  if (version < 1 || version > kFormatVersion) {
    return Status::InvalidArgument(
        StrFormat("%s: unsupported version %d", path.c_str(), version));
  }

  LogicalNetConfig config;
  std::string key;
  size_t num_layers = 0;
  config.logic_layers.clear();
  while (in >> key) {
    if (key == "schema_fingerprint") {
      uint64_t fingerprint = 0;
      in >> fingerprint;
      const uint64_t expected = SchemaFingerprint(*schema);
      if (in && fingerprint != expected) {
        return Status::InvalidArgument(StrFormat(
            "%s: schema fingerprint mismatch — the model was trained on a "
            "different schema (file %llu, supplied schema %llu)",
            path.c_str(), static_cast<unsigned long long>(fingerprint),
            static_cast<unsigned long long>(expected)));
      }
    } else if (key == "tau_d") {
      in >> config.tau_d;
    } else if (key == "fan_in") {
      in >> config.fan_in;
    } else if (key == "input_skip") {
      int flag = 1;
      in >> flag;
      config.input_skip = flag != 0;
    } else if (key == "seed") {
      in >> config.seed;
    } else if (key == "linear_init_scale") {
      in >> config.linear_init_scale;
    } else if (key == "layers") {
      in >> num_layers;
      for (size_t l = 0; l < num_layers; ++l) {
        int conj = 0, disj = 0;
        in >> conj >> disj;
        config.logic_layers.emplace_back(conj, disj);
      }
    } else if (key == "params") {
      size_t count = 0;
      in >> count;
      LogicalNet net(std::move(schema), config);
      if (net.NumParameters() != count) {
        return Status::InvalidArgument(StrFormat(
            "%s: parameter count %zu does not match the architecture/"
            "schema (%zu expected)",
            path.c_str(), count, net.NumParameters()));
      }
      std::vector<double> params(count);
      for (double& v : params) {
        if (!(in >> v)) {
          return Status::InvalidArgument(path + ": truncated parameters");
        }
      }
      net.SetParameters(params);
      return net;
    } else {
      return Status::InvalidArgument(path + ": unknown key " + key);
    }
    if (!in) return Status::InvalidArgument(path + ": malformed value");
  }
  return Status::InvalidArgument(path + ": missing params section");
}

}  // namespace ctfl
