#ifndef CTFL_NN_LOSS_H_
#define CTFL_NN_LOSS_H_

#include <vector>

#include "ctfl/nn/matrix.h"

namespace ctfl {

/// Mean softmax cross-entropy over the batch. If `dlogits` is non-null it
/// receives the mean gradient (softmax(logits) - onehot(label)) / batch.
double SoftmaxCrossEntropy(const Matrix& logits,
                           const std::vector<int>& labels, Matrix* dlogits);

/// Row-wise argmax of the logits.
std::vector<int> ArgmaxRows(const Matrix& logits);

}  // namespace ctfl

#endif  // CTFL_NN_LOSS_H_
