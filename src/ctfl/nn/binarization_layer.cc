#include "ctfl/nn/binarization_layer.h"

#include <algorithm>

#include "ctfl/util/logging.h"
#include "ctfl/util/string_util.h"

namespace ctfl {

std::string EncodedPredicate::ToString(const FeatureSchema& schema) const {
  const FeatureSpec& spec = schema.feature(feature);
  switch (kind) {
    case Kind::kGreater:
      return StrFormat("%s > %.6g", spec.name.c_str(), threshold);
    case Kind::kLess:
      return StrFormat("%s < %.6g", spec.name.c_str(), threshold);
    case Kind::kEquals:
      return spec.name + " = " + spec.categories[category];
  }
  return "?";
}

BinarizationLayer::BinarizationLayer(SchemaPtr schema, int tau_d, Rng& rng)
    : schema_(std::move(schema)), tau_d_(tau_d) {
  CTFL_CHECK(tau_d_ > 0);
  for (int f = 0; f < schema_->num_features(); ++f) {
    const FeatureSpec& spec = schema_->feature(f);
    if (spec.type == FeatureType::kDiscrete) {
      for (int c = 0; c < spec.num_categories(); ++c) {
        EncodedPredicate p;
        p.feature = f;
        p.kind = EncodedPredicate::Kind::kEquals;
        p.category = c;
        predicates_.push_back(p);
      }
      continue;
    }
    // Random candidate bounds drawn from the public value domain only
    // (the privacy constraint); sorted for readability of extracted rules.
    std::vector<double> lower(tau_d_), upper(tau_d_);
    for (double& b : lower) b = rng.Uniform(spec.lo, spec.hi);
    for (double& b : upper) b = rng.Uniform(spec.lo, spec.hi);
    std::sort(lower.begin(), lower.end());
    std::sort(upper.begin(), upper.end());
    for (double b : lower) {
      EncodedPredicate p;
      p.feature = f;
      p.kind = EncodedPredicate::Kind::kGreater;
      p.threshold = b;
      predicates_.push_back(p);
    }
    for (double b : upper) {
      EncodedPredicate p;
      p.feature = f;
      p.kind = EncodedPredicate::Kind::kLess;
      p.threshold = b;
      predicates_.push_back(p);
    }
  }
}

void BinarizationLayer::Encode(const Instance& instance, double* out) const {
  for (size_t j = 0; j < predicates_.size(); ++j) {
    const EncodedPredicate& p = predicates_[j];
    const double v = instance.values[p.feature];
    bool bit = false;
    switch (p.kind) {
      case EncodedPredicate::Kind::kGreater:
        bit = v > p.threshold;
        break;
      case EncodedPredicate::Kind::kLess:
        bit = v < p.threshold;
        break;
      case EncodedPredicate::Kind::kEquals:
        bit = static_cast<int>(v) == p.category;
        break;
    }
    out[j] = bit ? 1.0 : 0.0;
  }
}

Matrix BinarizationLayer::EncodeBatch(
    const Dataset& dataset, const std::vector<size_t>& indices) const {
  Matrix out(indices.size(), predicates_.size());
  for (size_t r = 0; r < indices.size(); ++r) {
    Encode(dataset.instance(indices[r]), out.row(r));
  }
  return out;
}

}  // namespace ctfl
