#ifndef CTFL_NN_TRAINER_H_
#define CTFL_NN_TRAINER_H_

#include "ctfl/data/dataset.h"
#include "ctfl/nn/logical_net.h"
#include "ctfl/telemetry/run_telemetry.h"

namespace ctfl {

/// Hyper-parameters for gradient-grafting training (paper §V "Learn
/// Non-fuzzy Rules").
struct TrainConfig {
  int epochs = 40;
  int batch_size = 64;
  double learning_rate = 0.02;
  bool use_adam = true;
  double sgd_momentum = 0.9;
  uint64_t seed = 7;
  /// Worker budget for the sharded matrix kernels / batched forward used
  /// while this config trains (0 = hardware concurrency, 1 = serial).
  /// Applied process-wide via SetMatrixParallelism at TrainGrafted entry
  /// (skipped inside pool workers, where kernels are serial by design).
  /// Results are bit-identical for any value (DESIGN.md §9).
  int num_threads = 0;
  bool verbose = false;
};

struct TrainReport {
  double final_loss = 0.0;
  /// Accuracy of the deployed (binarized) model on the training data.
  double train_accuracy = 0.0;
  int steps = 0;
  /// Per-epoch wall time + mean loss (one entry per epoch run).
  std::vector<telemetry::EpochTelemetry> epoch_stats;
};

/// Trains `net` in place on `data` with gradient grafting: the loss is
/// evaluated on the binarized model's outputs and its gradient is pushed
/// through the continuous model (θ^{t+1} = θ^t − η ∂L(Ȳ)/∂Ȳ · ∂Y/∂θ^t).
TrainReport TrainGrafted(LogicalNet& net, const Dataset& data,
                         const TrainConfig& config);

/// One grafted gradient step over the given pre-encoded batch; returns the
/// discrete-model loss. Exposed for the FedAvg client loop and tests.
double GraftedStep(LogicalNet& net, const Matrix& encoded,
                   const std::vector<int>& labels, Optimizer& optimizer);

}  // namespace ctfl

#endif  // CTFL_NN_TRAINER_H_
