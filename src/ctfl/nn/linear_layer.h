#ifndef CTFL_NN_LINEAR_LAYER_H_
#define CTFL_NN_LINEAR_LAYER_H_

#include "ctfl/nn/matrix.h"
#include "ctfl/util/rng.h"

namespace ctfl {

/// Final vote layer of the rule-based model: maps the rule-activation
/// vector to per-class scores. Its (real-valued, non-binarized) weights are
/// exactly the rule importance weights w+ / w- of paper Def. III.2 — rule r
/// supports the class whose weight for it is larger.
class LinearLayer {
 public:
  LinearLayer(int in_dim, int out_dim);

  int in_dim() const { return in_dim_; }
  int out_dim() const { return out_dim_; }

  void InitRandom(Rng& rng, double scale);

  /// logits = x * W^T + b, for x(batch x in).
  Matrix Forward(const Matrix& x) const;

  /// Accumulates parameter gradients; returns dx.
  Matrix Backward(const Matrix& x, const Matrix& dlogits);

  Matrix& weights() { return weights_; }
  const Matrix& weights() const { return weights_; }
  Matrix& bias() { return bias_; }
  const Matrix& bias() const { return bias_; }
  Matrix& weight_grads() { return weight_grads_; }
  Matrix& bias_grads() { return bias_grads_; }

 private:
  int in_dim_;
  int out_dim_;
  Matrix weights_;       // (out x in)
  Matrix bias_;          // (1 x out)
  Matrix weight_grads_;  // (out x in)
  Matrix bias_grads_;    // (1 x out)
};

}  // namespace ctfl

#endif  // CTFL_NN_LINEAR_LAYER_H_
