#include "ctfl/nn/matrix.h"

#include <algorithm>

#include "ctfl/util/logging.h"

namespace ctfl {

void Matrix::Fill(double v) { std::fill(data_.begin(), data_.end(), v); }

void Matrix::Axpy(double alpha, const Matrix& other) {
  CTFL_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

void Matrix::Scale(double s) {
  for (double& v : data_) v *= s;
}

void Matrix::Clamp(double lo, double hi) {
  for (double& v : data_) v = std::clamp(v, lo, hi);
}

Matrix Matrix::MatMul(const Matrix& other) const {
  CTFL_CHECK(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (size_t r = 0; r < rows_; ++r) {
    const double* a = row(r);
    double* o = out.row(r);
    for (size_t k = 0; k < cols_; ++k) {
      const double av = a[k];
      if (av == 0.0) continue;
      const double* b = other.row(k);
      for (size_t c = 0; c < other.cols_; ++c) o[c] += av * b[c];
    }
  }
  return out;
}

Matrix Matrix::TransposedMatMul(const Matrix& other) const {
  CTFL_CHECK(rows_ == other.rows_);
  Matrix out(cols_, other.cols_);
  for (size_t r = 0; r < rows_; ++r) {
    const double* a = row(r);
    const double* b = other.row(r);
    for (size_t k = 0; k < cols_; ++k) {
      const double av = a[k];
      if (av == 0.0) continue;
      double* o = out.row(k);
      for (size_t c = 0; c < other.cols_; ++c) o[c] += av * b[c];
    }
  }
  return out;
}

Matrix Matrix::MatMulTransposed(const Matrix& other) const {
  CTFL_CHECK(cols_ == other.cols_);
  Matrix out(rows_, other.rows_);
  for (size_t r = 0; r < rows_; ++r) {
    const double* a = row(r);
    for (size_t c = 0; c < other.rows_; ++c) {
      const double* b = other.row(c);
      double sum = 0.0;
      for (size_t k = 0; k < cols_; ++k) sum += a[k] * b[k];
      out(r, c) = sum;
    }
  }
  return out;
}

void Matrix::RandomUniform(Rng& rng, double lo, double hi) {
  for (double& v : data_) v = rng.Uniform(lo, hi);
}

}  // namespace ctfl
