#include "ctfl/nn/matrix.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>

#include "ctfl/util/logging.h"
#include "ctfl/util/thread_pool.h"

namespace ctfl {

namespace {

// 0 = hardware concurrency; see SetMatrixParallelism.
std::atomic<int> g_matrix_threads{0};
std::atomic<size_t> g_matrix_grain{size_t{1} << 16};

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;         // guarded by g_pool_mu
int g_pool_size = 0;                        // guarded by g_pool_mu

/// True when `flops` of multiply-accumulate work should fan out across the
/// shared pool under the current settings and calling context.
bool UseParallel(size_t flops) {
  if (MatrixParallelism() <= 1) return false;
  if (ThreadPool::InPoolWorker()) return false;  // no nested parallelism
  return flops >= g_matrix_grain.load(std::memory_order_relaxed);
}

}  // namespace

void SetMatrixParallelism(int num_threads) {
  g_matrix_threads.store(std::max(0, num_threads),
                         std::memory_order_relaxed);
}

int MatrixParallelism() {
  return ResolveThreadCount(g_matrix_threads.load(std::memory_order_relaxed));
}

void SetMatrixParallelGrain(size_t min_flops) {
  g_matrix_grain.store(std::max<size_t>(1, min_flops),
                       std::memory_order_relaxed);
}

size_t MatrixParallelGrain() {
  return g_matrix_grain.load(std::memory_order_relaxed);
}

ThreadPool* MatrixParallelPool() {
  const int threads = MatrixParallelism();
  if (threads <= 1 || ThreadPool::InPoolWorker()) return nullptr;
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (g_pool == nullptr || g_pool_size != threads) {
    g_pool.reset();  // join the old workers before resizing
    g_pool = std::make_unique<ThreadPool>(threads);
    g_pool_size = threads;
  }
  return g_pool.get();
}

void Matrix::Fill(double v) { std::fill(data_.begin(), data_.end(), v); }

void Matrix::Axpy(double alpha, const Matrix& other) {
  CTFL_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

void Matrix::Scale(double s) {
  for (double& v : data_) v *= s;
}

void Matrix::Clamp(double lo, double hi) {
  for (double& v : data_) v = std::clamp(v, lo, hi);
}

Matrix Matrix::MatMul(const Matrix& other) const {
  CTFL_CHECK(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  // One output row is one unit of work: the inner k/c loops are identical
  // to the serial kernel, so sharding rows cannot change a single bit.
  auto row_kernel = [&](size_t r) {
    const double* a = row(r);
    double* o = out.row(r);
    for (size_t k = 0; k < cols_; ++k) {
      const double av = a[k];
      if (av == 0.0) continue;
      const double* b = other.row(k);
      for (size_t c = 0; c < other.cols_; ++c) o[c] += av * b[c];
    }
  };
  ThreadPool* pool;
  if (rows_ > 1 && UseParallel(rows_ * cols_ * other.cols_) &&
      (pool = MatrixParallelPool()) != nullptr) {
    pool->ParallelFor(0, rows_, row_kernel);
  } else {
    for (size_t r = 0; r < rows_; ++r) row_kernel(r);
  }
  return out;
}

Matrix Matrix::TransposedMatMul(const Matrix& other) const {
  CTFL_CHECK(rows_ == other.rows_);
  Matrix out(cols_, other.cols_);
  ThreadPool* pool = nullptr;
  if (cols_ > 1 && UseParallel(rows_ * cols_ * other.cols_)) {
    pool = MatrixParallelPool();
  }
  if (pool == nullptr) {
    // Serial kernel: r-outer is cache-friendly on `this`. Each out(k, c)
    // accumulates its a(r, k) * b(r, c) terms for r ascending, skipping
    // zero a(r, k).
    for (size_t r = 0; r < rows_; ++r) {
      const double* a = row(r);
      const double* b = other.row(r);
      for (size_t k = 0; k < cols_; ++k) {
        const double av = a[k];
        if (av == 0.0) continue;
        double* o = out.row(k);
        for (size_t c = 0; c < other.cols_; ++c) o[c] += av * b[c];
      }
    }
    return out;
  }
  // Sharded kernel: one *output* row k per unit of work. For a fixed k the
  // r-terms are visited in the same ascending order, with the same
  // zero-skip, as the serial kernel — identical floating-point sequence
  // per element, hence bit-identical results (DESIGN.md §9).
  pool->ParallelFor(0, cols_, [&](size_t k) {
    double* o = out.row(k);
    for (size_t r = 0; r < rows_; ++r) {
      const double av = data_[r * cols_ + k];
      if (av == 0.0) continue;
      const double* b = other.row(r);
      for (size_t c = 0; c < other.cols_; ++c) o[c] += av * b[c];
    }
  });
  return out;
}

Matrix Matrix::MatMulTransposed(const Matrix& other) const {
  CTFL_CHECK(cols_ == other.cols_);
  Matrix out(rows_, other.rows_);
  auto row_kernel = [&](size_t r) {
    const double* a = row(r);
    for (size_t c = 0; c < other.rows_; ++c) {
      const double* b = other.row(c);
      double sum = 0.0;
      for (size_t k = 0; k < cols_; ++k) sum += a[k] * b[k];
      out(r, c) = sum;
    }
  };
  ThreadPool* pool;
  if (rows_ > 1 && UseParallel(rows_ * cols_ * other.rows_) &&
      (pool = MatrixParallelPool()) != nullptr) {
    pool->ParallelFor(0, rows_, row_kernel);
  } else {
    for (size_t r = 0; r < rows_; ++r) row_kernel(r);
  }
  return out;
}

void Matrix::RandomUniform(Rng& rng, double lo, double hi) {
  for (double& v : data_) v = rng.Uniform(lo, hi);
}

}  // namespace ctfl
