#ifndef CTFL_STORE_QUERY_ENGINE_H_
#define CTFL_STORE_QUERY_ENGINE_H_

// Serving side of the contribution bundle store: memory-loads a bundle and
// answers contribution / interpretability queries with no retraining and
// no recomputation of activation vectors. The expensive artifacts of the
// single training+inference pass — model parameters, rule weights, and
// every rule-activation bitset — come straight from the bundle; queries
// only redo the cheap Eq. 4 overlap comparisons, prefiltered by the
// bundle's inverted rule -> record posting lists.
//
// Exactness contract: for the originating run's parameters, Evaluate()
// reproduces the run's micro/macro scores *bit-identically* (same related
// sets, same floating-point accumulation order as core/allocation), and
// Related() agrees with ContributionTracer::Trace on every instance. The
// posting-list prefilter is lossless: a candidate set is the union of
// postings of a minimal heaviest-weight prefix of the support rules whose
// complement cannot reach the tau_w threshold.

#include <string>
#include <vector>

#include "ctfl/kernel/trace_kernel.h"
#include "ctfl/store/bundle.h"

namespace ctfl {
namespace store {

/// Knobs of a single related-record lookup.
struct QueryOptions {
  /// Eq. 4 threshold; defaults to the originating run's tau_w when < 0.
  double tau_w = -1.0;
  /// Posting-list candidate prefilter (false = linear scan of the class
  /// bucket; the two paths return identical results).
  bool use_index = true;
  /// Max (participant, record) refs materialized in RelatedResult::records
  /// (0 = counts only).
  size_t max_records = 0;
  /// Eq. 4 matching implementation (kernel/trace_kernel.h). kBlocked runs
  /// the word-parallel blocked kernel over the engine's transposed
  /// per-class bit-matrices; kLegacy is the scalar reference scan. Results
  /// are bit-identical either way.
  TraceKernelKind kernel = TraceKernelKind::kBlocked;
  /// SIMD tier of the blocked kernel (defaults to the process-wide runtime
  /// selection) and worker threads sharding each Match call (1 = serial,
  /// 0 = hardware concurrency). Pure implementation selectors — results
  /// stay bit-identical — and *local* ones: neither is part of the serve
  /// wire format.
  TraceIsa isa = CurrentTraceIsa();
  int trace_threads = 1;
};

struct RecordRef {
  int participant = 0;
  int local_index = 0;
};

/// Outcome of one Eq. 4 related-record lookup.
struct RelatedResult {
  int predicted = 0;
  int support_size = 0;        ///< supporting rules of the predicted class
  double support_weight = 0.0; ///< their total vote weight
  std::vector<int> related_count;  ///< per participant
  size_t total_related = 0;
  std::vector<RecordRef> records;  ///< first max_records matches
  // Lookup cost accounting.
  int64_t bucket_size = 0;   ///< training records of the predicted class
  int64_t tau_w_checks = 0;  ///< candidates submitted to Eq. 4 matching
  int64_t postings_scanned = 0;
  int64_t candidates_pruned = 0;  ///< bucket_size - tau_w_checks
  /// Blocked-kernel work accounting (0 on the legacy path): candidates the
  /// kernel actually touched (always <= tau_w_checks) and 64-record blocks
  /// skipped or early-exited by pruning.
  int64_t records_scanned = 0;
  int64_t blocks_pruned = 0;
  /// Lanes re-decided by the exact scalar comparison because the pruning
  /// bounds landed inside the float-drift safety band (0 on legacy).
  int64_t exact_fallbacks = 0;
};

/// One rule with its weight-regularized tracing frequency + symbolic text.
struct RuleStat {
  int rule = 0;
  double frequency = 0.0;
  std::string text;
};

/// Per-participant interpretability summary (paper section IV-B) computed
/// from the bundle alone.
struct ParticipantSummary {
  int participant = 0;
  std::string name;
  size_t data_size = 0;
  std::vector<RuleStat> beneficial;
  std::vector<RuleStat> harmful;
  double useless_ratio = 0.0;
};

/// Parameters of a batch re-evaluation; negative values default to the
/// originating run's parameters.
struct EvalOptions {
  double tau_w = -1.0;
  int delta = -1;
  int top_k = 5;
  /// Eq. 4 matching implementation for the batch pass (bit-identical
  /// results either way).
  TraceKernelKind kernel = TraceKernelKind::kBlocked;
  /// Blocked-kernel implementation selectors (see QueryOptions).
  TraceIsa isa = CurrentTraceIsa();
  int trace_threads = 1;
};

/// Batch query answer: micro/macro scores under the requested parameters
/// plus the interpretability artifacts of section IV-B.
struct QueryReport {
  double tau_w = 0.0;
  int delta = 1;
  std::vector<double> micro;
  std::vector<double> macro;
  double global_accuracy = 0.0;
  double matched_accuracy = 0.0;
  size_t uncovered_tests = 0;
  std::vector<RuleStat> uncovered_rules;
  std::vector<ParticipantSummary> participants;
  // Evaluation cost accounting.
  int64_t keys = 0;  ///< distinct (class, support-set) tracing tasks
  int64_t tau_w_checks = 0;
  int64_t postings_scanned = 0;
  int64_t candidates_pruned = 0;
  /// Blocked-kernel work accounting (0 on the legacy path).
  int64_t records_scanned = 0;
  int64_t blocks_pruned = 0;
  int64_t exact_fallbacks = 0;
};

class QueryEngine {
 public:
  /// Reads + validates the bundle file and builds the engine (restores the
  /// model, rule masks, and the flat record table).
  static Result<QueryEngine> Open(const std::string& path);
  /// Builds the engine over already-decoded content.
  static Result<QueryEngine> FromContent(BundleContent content);

  QueryEngine(QueryEngine&&) = default;
  QueryEngine& operator=(QueryEngine&&) = delete;
  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  const BundleContent& bundle() const { return content_; }
  const LogicalNet& model() const { return model_; }
  int num_participants() const { return content_.num_participants(); }
  /// Originating-run parameters (the Evaluate/Related defaults).
  double origin_tau_w() const { return content_.meta.tau_w; }
  int origin_delta() const { return content_.meta.macro_delta; }

  /// Eq. 4 related-record lookup for a new instance: runs deployed
  /// inference on the restored model, then matches the stored training
  /// activations (posting-prefiltered).
  RelatedResult Related(const Instance& instance,
                        const QueryOptions& options = {}) const;

  /// Same lookup for stored test instance `test_index`, reusing its
  /// persisted activation + prediction (no model inference at all).
  RelatedResult RelatedForTest(size_t test_index,
                               const QueryOptions& options = {}) const;

  /// Batch micro/macro recomputation + interpretability summaries over the
  /// bundle's reserved test set. One pass over deduplicated support sets;
  /// no retraining, no activation recomputation.
  QueryReport Evaluate(const EvalOptions& options = {}) const;

 private:
  QueryEngine(BundleContent content, LogicalNet model);

  RelatedResult RelatedForActivation(const Bitset& activation, int predicted,
                                     double tau_w, bool use_index,
                                     size_t max_records,
                                     TraceKernelKind kernel,
                                     const TraceMatchOptions& match) const;

  // NOTE: record_activation_ points into content_.participants' vectors;
  // moves of QueryEngine keep those heap buffers alive (hence: movable,
  // not copyable).
  BundleContent content_;
  LogicalNet model_;
  std::vector<double> rule_weights_;  ///< zeroed below min_rule_weight
  Bitset class_mask_[2];
  std::vector<int32_t> record_participant_;
  std::vector<int32_t> record_local_;
  std::vector<uint8_t> record_label_;
  std::vector<const Bitset*> record_activation_;
  std::vector<uint32_t> class_records_[2];  ///< ascending global ids
  /// Position of each global record inside its class bucket (the blocked
  /// kernel's lane address space).
  std::vector<uint32_t> record_bucket_pos_;
  /// Per class: transposed rule-major bit-matrix over the class bucket
  /// (kernel/trace_kernel.h), packed once at engine build.
  TraceKernel class_kernel_[2];
};

}  // namespace store
}  // namespace ctfl

#endif  // CTFL_STORE_QUERY_ENGINE_H_
