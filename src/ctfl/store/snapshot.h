#ifndef CTFL_STORE_SNAPSHOT_H_
#define CTFL_STORE_SNAPSHOT_H_

// Builds BundleContent from the artifacts of one CTFL pass: the trained
// global model, the federation's uploaded rule-activation bitsets, and the
// reserved test set. The higher layers (core/pipeline, tools/ctfl_cli)
// call this right after tracing so a run leaves behind a queryable
// artifact — the train-once/evaluate-many split of the paper's single-pass
// claim.

#include <vector>

#include "ctfl/fl/participant.h"
#include "ctfl/store/bundle.h"

namespace ctfl {
namespace store {

/// Originating-run parameters and results stamped into the bundle meta.
/// Score vectors may be empty (e.g. bench fixtures that never allocated);
/// when present they must have one entry per participant.
struct SnapshotOptions {
  double tau_w = 0.9;
  int macro_delta = 1;
  double min_rule_weight = 1e-6;
  double dp_epsilon = 0.0;
  /// FailurePlan::Fingerprint() of the fault schedule the originating
  /// run trained under (0 = fault-free). Scores from a degraded run are
  /// a pure function of (seed, plan); the bundle records which plan.
  uint64_t failure_plan_fingerprint = 0;
  std::vector<double> micro_scores;
  std::vector<double> macro_scores;
  double global_accuracy = 0.0;
  double matched_accuracy = 0.0;
};

/// Assembles a bundle: extracts the rule model (symbolic text + r+-/w+-)
/// from `net`, snapshots `train_activations` (one bitset per training
/// record, exactly as the tracer used them — including any DP
/// perturbation), re-runs deployed inference over `test` for the tests
/// section, and builds the inverted posting-list index.
///
/// `train_activations` must be indexed [participant][local record] and
/// sized to the federation; pass ContributionTracer::train_activations().
Result<BundleContent> BuildBundleContent(
    const LogicalNet& net, const Federation& federation, const Dataset& test,
    const std::vector<std::vector<Bitset>>& train_activations,
    const SnapshotOptions& options);

}  // namespace store
}  // namespace ctfl

#endif  // CTFL_STORE_SNAPSHOT_H_
