#include "ctfl/store/query_engine.h"

#include <algorithm>
#include <bit>
#include <unordered_map>
#include <utility>

#include "ctfl/nn/matrix.h"
#include "ctfl/telemetry/metrics.h"
#include "ctfl/telemetry/trace.h"
#include "ctfl/util/logging.h"
#include "ctfl/util/string_util.h"

namespace ctfl {
namespace store {
namespace {

// Must match the tracer's comparison slack (core/tracer.cc) so that the
// engine reproduces its related sets exactly.
constexpr double kRatioEps = 1e-9;
// Extra slack when deciding which support rules the posting prefilter may
// skip; absorbs the floating-point drift between "sum of skipped weights"
// and any candidate's exact ascending-order overlap sum.
constexpr double kPrefilterSafety = 1e-9;

telemetry::Counter& RelatedCounter() {
  static telemetry::Counter& c = telemetry::MetricsRegistry::Global()
                                     .GetCounter("ctfl.query.related_lookups");
  return c;
}
telemetry::Counter& ChecksCounter() {
  static telemetry::Counter& c = telemetry::MetricsRegistry::Global()
                                     .GetCounter("ctfl.query.tau_w_checks");
  return c;
}
telemetry::Counter& PostingsCounter() {
  static telemetry::Counter& c =
      telemetry::MetricsRegistry::Global().GetCounter(
          "ctfl.query.postings_scanned");
  return c;
}
telemetry::Counter& PrunedCounter() {
  static telemetry::Counter& c =
      telemetry::MetricsRegistry::Global().GetCounter(
          "ctfl.query.candidates_pruned");
  return c;
}

// Top-k (rule, frequency) entries of one row of a frequency matrix,
// frequency descending with rule-index tie-break (mirrors
// core/interpret.cc's non-distinctive ranking).
std::vector<RuleStat> TopRuleStats(const Matrix& freq, int participant,
                                   int top_k,
                                   const std::vector<RuleSnapshot>& rules) {
  std::vector<RuleStat> all;
  for (size_t j = 0; j < freq.cols(); ++j) {
    const double f = freq(participant, j);
    if (f <= 0.0) continue;
    all.push_back({static_cast<int>(j), f, rules[j].text});
  }
  std::sort(all.begin(), all.end(), [](const RuleStat& a, const RuleStat& b) {
    if (a.frequency != b.frequency) return a.frequency > b.frequency;
    return a.rule < b.rule;
  });
  if (top_k >= 0 && static_cast<int>(all.size()) > top_k) all.resize(top_k);
  return all;
}

}  // namespace

QueryEngine::QueryEngine(BundleContent content, LogicalNet model)
    : content_(std::move(content)), model_(std::move(model)) {
  const int num_rules = content_.num_rules();
  rule_weights_.assign(num_rules, 0.0);
  class_mask_[0] = Bitset(num_rules);
  class_mask_[1] = Bitset(num_rules);
  for (int j = 0; j < num_rules; ++j) {
    const double w = content_.rules[j].weight;
    if (w < content_.meta.min_rule_weight) continue;
    rule_weights_[j] = w;
    class_mask_[content_.rules[j].support_class].Set(j);
  }
  const size_t total = content_.total_train_records();
  record_participant_.reserve(total);
  record_local_.reserve(total);
  record_label_.reserve(total);
  record_activation_.reserve(total);
  record_bucket_pos_.reserve(total);
  for (size_t p = 0; p < content_.participants.size(); ++p) {
    const ParticipantRecords& records = content_.participants[p];
    for (size_t i = 0; i < records.size(); ++i) {
      const uint32_t id = static_cast<uint32_t>(record_participant_.size());
      const int cls = records.labels[i] & 1;
      record_participant_.push_back(static_cast<int32_t>(p));
      record_local_.push_back(static_cast<int32_t>(i));
      record_label_.push_back(records.labels[i]);
      record_activation_.push_back(&records.activations[i]);
      record_bucket_pos_.push_back(
          static_cast<uint32_t>(class_records_[cls].size()));
      class_records_[cls].push_back(id);
    }
  }
  // Pack the per-class blocked kernels once; the pointed-to activation
  // bitsets live on content_.participants' heap buffers, which stay put
  // across moves of the engine.
  for (int c = 0; c < 2; ++c) {
    std::vector<const Bitset*> records;
    records.reserve(class_records_[c].size());
    for (uint32_t id : class_records_[c]) {
      records.push_back(record_activation_[id]);
    }
    class_kernel_[c] = TraceKernel(std::move(records), num_rules);
  }
}

Result<QueryEngine> QueryEngine::Open(const std::string& path) {
  CTFL_ASSIGN_OR_RETURN(BundleContent content, ReadBundle(path));
  return FromContent(std::move(content));
}

Result<QueryEngine> QueryEngine::FromContent(BundleContent content) {
  CTFL_SPAN("ctfl.query.engine_build");
  const size_t n = content.participants.size();
  if (!content.meta.micro_scores.empty() &&
      content.meta.micro_scores.size() != n) {
    return Status::InvalidArgument(
        "bundle micro score count disagrees with participants");
  }
  if (!content.meta.macro_scores.empty() &&
      content.meta.macro_scores.size() != n) {
    return Status::InvalidArgument(
        "bundle macro score count disagrees with participants");
  }
  if (content.posting_offsets.size() != content.rules.size() + 1) {
    BuildPostingIndex(content);
  }
  CTFL_ASSIGN_OR_RETURN(LogicalNet model, RestoreModel(content));
  return QueryEngine(std::move(content), std::move(model));
}

RelatedResult QueryEngine::RelatedForActivation(
    const Bitset& activation, int predicted, double tau_w, bool use_index,
    size_t max_records, TraceKernelKind kernel_kind,
    const TraceMatchOptions& match) const {
  const int n = content_.num_participants();
  RelatedResult result;
  result.predicted = predicted;
  result.related_count.assign(n, 0);
  result.bucket_size =
      static_cast<int64_t>(class_records_[predicted & 1].size());

  // Supporting rules of the predicted class (Eq. 4's weighted support),
  // accumulated in ascending rule order exactly like the tracer.
  Bitset support = activation;
  support &= class_mask_[predicted & 1];
  std::vector<std::pair<int, double>> supp_list;
  double weight_sum = 0.0;
  support.ForEachSetBit([&](size_t j) {
    supp_list.emplace_back(static_cast<int>(j), rule_weights_[j]);
    weight_sum += rule_weights_[j];
  });
  result.support_size = static_cast<int>(supp_list.size());
  result.support_weight = weight_sum;
  if (weight_sum <= 0.0) {
    // Nothing to match against (tracer semantics: no related records).
    result.candidates_pruned = result.bucket_size;
    return result;
  }
  const double threshold = tau_w * weight_sum - kRatioEps;

  // ---- Candidate generation. ---------------------------------------------
  // Posting-prefiltered path: pick the minimal heaviest-weight prefix T of
  // the support rules whose complement's total weight cannot reach the
  // threshold; every related record must activate at least one rule of T,
  // so the union of T's posting lists is a lossless candidate superset.
  std::vector<uint32_t> candidates;
  const std::vector<uint32_t>& bucket = class_records_[predicted & 1];
  bool prefiltered = false;
  if (use_index && threshold > 0.0 &&
      content_.posting_offsets.size() == content_.rules.size() + 1) {
    std::vector<size_t> order(supp_list.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      if (supp_list[a].second != supp_list[b].second) {
        return supp_list[a].second > supp_list[b].second;
      }
      return supp_list[a].first < supp_list[b].first;
    });
    std::vector<uint8_t> seen(record_participant_.size(), 0);
    double remaining = weight_sum;
    for (size_t i : order) {
      if (remaining + kPrefilterSafety < threshold) break;
      const int rule = supp_list[i].first;
      const uint64_t lo = content_.posting_offsets[rule];
      const uint64_t hi = content_.posting_offsets[rule + 1];
      result.postings_scanned += static_cast<int64_t>(hi - lo);
      for (uint64_t k = lo; k < hi; ++k) {
        const uint32_t id = content_.postings[k];
        if (seen[id]) continue;
        seen[id] = 1;
        if ((record_label_[id] & 1) == (predicted & 1)) {
          candidates.push_back(id);
        }
      }
      remaining -= supp_list[i].second;
    }
    // Ascending ids: deterministic match order, same as the tracer's
    // class-bucket sweep.
    std::sort(candidates.begin(), candidates.end());
    prefiltered = true;
  }
  const std::vector<uint32_t>& scan = prefiltered ? candidates : bucket;

  if (kernel_kind == TraceKernelKind::kBlocked) {
    // ---- Blocked word-parallel match (bit-identical to the scalar scan;
    // kernel/trace_kernel.h). Candidates are addressed by bucket position,
    // so the lane sweep reproduces the ascending-id match order.
    const TraceKernel& kernel = class_kernel_[predicted & 1];
    const size_t nb = kernel.num_blocks();
    std::vector<uint64_t> cmask_storage;
    const uint64_t* cmask = nullptr;
    if (prefiltered) {
      cmask_storage.assign(nb, 0);
      for (uint32_t id : candidates) {
        const uint32_t pos = record_bucket_pos_[id];
        cmask_storage[pos / 64] |= 1ULL << (pos % 64);
      }
      cmask = cmask_storage.data();
    }
    result.tau_w_checks = static_cast<int64_t>(scan.size());
    const TraceKernel::Support support_set =
        TraceKernel::Prepare(supp_list, threshold);
    std::vector<uint64_t> related(nb, 0);
    TraceKernelStats kstats;
    result.total_related =
        kernel.Match(support_set, cmask, related.data(), &kstats, match);
    result.records_scanned = kstats.records_scanned;
    result.blocks_pruned = kstats.blocks_pruned;
    result.exact_fallbacks = kstats.exact_fallbacks;
    for (size_t b = 0; b < nb; ++b) {
      uint64_t word = related[b];
      while (word != 0) {
        const int lane = std::countr_zero(word);
        word &= word - 1;
        const uint32_t id = bucket[b * 64 + static_cast<size_t>(lane)];
        ++result.related_count[record_participant_[id]];
        if (result.records.size() < max_records) {
          result.records.push_back(
              {record_participant_[id], record_local_[id]});
        }
      }
    }
  } else {
    // ---- Exact Eq. 4 check (identical arithmetic to the tracer). ---------
    for (uint32_t id : scan) {
      ++result.tau_w_checks;
      const Bitset& record = *record_activation_[id];
      double overlap = 0.0;
      for (const auto& [rule, weight] : supp_list) {
        if (record.Test(rule)) overlap += weight;
      }
      if (overlap < threshold) continue;
      ++result.related_count[record_participant_[id]];
      ++result.total_related;
      if (result.records.size() < max_records) {
        result.records.push_back(
            {record_participant_[id], record_local_[id]});
      }
    }
  }
  result.candidates_pruned = result.bucket_size - result.tau_w_checks;
  ChecksCounter().Add(result.tau_w_checks);
  PostingsCounter().Add(result.postings_scanned);
  PrunedCounter().Add(result.candidates_pruned);
  return result;
}

RelatedResult QueryEngine::Related(const Instance& instance,
                                   const QueryOptions& options) const {
  CTFL_SPAN("ctfl.query.related");
  RelatedCounter().Add(1);
  const double tau_w = options.tau_w < 0.0 ? origin_tau_w() : options.tau_w;
  const int predicted = model_.Predict(instance);
  const Bitset activation = model_.RuleActivations(instance);
  return RelatedForActivation(activation, predicted, tau_w,
                              options.use_index, options.max_records,
                              options.kernel,
                              {options.isa, options.trace_threads});
}

RelatedResult QueryEngine::RelatedForTest(size_t test_index,
                                          const QueryOptions& options) const {
  CTFL_SPAN("ctfl.query.related");
  CTFL_CHECK(test_index < content_.tests.size());
  RelatedCounter().Add(1);
  const double tau_w = options.tau_w < 0.0 ? origin_tau_w() : options.tau_w;
  const TestRecord& test = content_.tests[test_index];
  return RelatedForActivation(test.activation, test.predicted, tau_w,
                              options.use_index, options.max_records,
                              options.kernel,
                              {options.isa, options.trace_threads});
}

QueryReport QueryEngine::Evaluate(const EvalOptions& options) const {
  CTFL_SPAN("ctfl.query.evaluate");
  static telemetry::Counter& evaluations =
      telemetry::MetricsRegistry::Global().GetCounter(
          "ctfl.query.evaluations");
  evaluations.Add(1);

  const double tau_w = options.tau_w < 0.0 ? origin_tau_w() : options.tau_w;
  const int delta = options.delta < 0 ? origin_delta() : options.delta;
  const int n = content_.num_participants();
  const int num_rules = content_.num_rules();
  const size_t num_tests = content_.tests.size();

  QueryReport report;
  report.tau_w = tau_w;
  report.delta = delta;

  // ---- Dedup (class, support-set) keys, first-seen test order. -----------
  struct Key {
    int target = 0;
    Bitset support;
    int correct_members = 0;
    int miss_members = 0;
    std::vector<size_t> members;
  };
  std::vector<Key> keys;
  std::unordered_map<Bitset, size_t, BitsetHash> key_index[2];
  size_t correct_total = 0;
  for (size_t t = 0; t < num_tests; ++t) {
    const TestRecord& test = content_.tests[t];
    const bool correct = test.predicted == test.label;
    if (correct) ++correct_total;
    Bitset support = test.activation;
    support &= class_mask_[test.predicted & 1];
    auto [it, inserted] =
        key_index[test.predicted & 1].try_emplace(support, keys.size());
    if (inserted) {
      keys.push_back({});
      keys.back().target = test.predicted;
      keys.back().support = std::move(support);
    }
    Key& key = keys[it->second];
    key.members.push_back(t);
    if (correct) {
      ++key.correct_members;
    } else {
      ++key.miss_members;
    }
  }
  report.keys = static_cast<int64_t>(keys.size());
  report.global_accuracy =
      num_tests == 0 ? 0.0
                     : static_cast<double>(correct_total) / num_tests;

  // ---- Per-key matching + interpretability accumulation. -----------------
  std::vector<std::vector<int>> test_related(num_tests);
  std::vector<size_t> test_total(num_tests, 0);
  Matrix beneficial(n, num_rules);
  Matrix harmful(n, num_rules);
  std::vector<uint8_t> record_matched(record_participant_.size(), 0);

  for (const Key& key : keys) {
    RelatedResult related = RelatedForActivation(
        key.support, key.target, tau_w, /*use_index=*/true,
        /*max_records=*/record_participant_.size(), options.kernel,
        {options.isa, options.trace_threads});
    report.tau_w_checks += related.tau_w_checks;
    report.postings_scanned += related.postings_scanned;
    report.candidates_pruned += related.candidates_pruned;
    report.records_scanned += related.records_scanned;
    report.blocks_pruned += related.blocks_pruned;
    report.exact_fallbacks += related.exact_fallbacks;
    // Section IV-B frequencies, weighted by how many member tests the key
    // covers — the same closed-form accumulation as the tracer: count
    // related activations per (supporting rule, participant), then one
    // fused multiply per cell in rule-outer / participant-ascending order
    // so query scores stay bit-identical to the originating run.
    std::vector<std::pair<int, double>> supp_list;
    key.support.ForEachSetBit([&](size_t j) {
      supp_list.emplace_back(static_cast<int>(j), rule_weights_[j]);
    });
    std::vector<int64_t> rule_part_counts(
        supp_list.size() * static_cast<size_t>(n), 0);
    for (const RecordRef& ref : related.records) {
      size_t global = 0;
      for (int p = 0; p < ref.participant; ++p) {
        global += content_.participants[p].size();
      }
      global += static_cast<size_t>(ref.local_index);
      record_matched[global] = 1;
      const Bitset& activation = *record_activation_[global];
      int64_t* counts = rule_part_counts.data() + ref.participant;
      for (size_t si = 0; si < supp_list.size(); ++si) {
        if (activation.Test(supp_list[si].first)) {
          counts[si * static_cast<size_t>(n)] += 1;
        }
      }
    }
    for (size_t si = 0; si < supp_list.size(); ++si) {
      const auto& [rule, weight] = supp_list[si];
      for (int p = 0; p < n; ++p) {
        const int64_t cnt =
            rule_part_counts[si * static_cast<size_t>(n) + p];
        if (cnt == 0) continue;
        if (key.correct_members > 0) {
          beneficial(p, rule) +=
              (weight * key.correct_members) * static_cast<double>(cnt);
        }
        if (key.miss_members > 0) {
          harmful(p, rule) +=
              (weight * key.miss_members) * static_cast<double>(cnt);
        }
      }
    }
    for (size_t t : key.members) {
      test_related[t] = related.related_count;
      test_total[t] = related.total_related;
    }
  }

  // ---- Micro (Eq. 5) — identical accumulation to core/allocation. --------
  report.micro.assign(n, 0.0);
  if (num_tests > 0) {
    for (size_t t = 0; t < num_tests; ++t) {
      const TestRecord& test = content_.tests[t];
      if (test.predicted != test.label) continue;
      if (test_total[t] == 0) continue;
      for (int p = 0; p < n; ++p) {
        report.micro[p] += static_cast<double>(test_related[t][p]) /
                           static_cast<double>(test_total[t]);
      }
    }
    for (double& s : report.micro) s /= num_tests;
  }

  // ---- Macro (Eq. 6) — identical accumulation to core/allocation. --------
  report.macro.assign(n, 0.0);
  if (num_tests > 0) {
    for (size_t t = 0; t < num_tests; ++t) {
      const TestRecord& test = content_.tests[t];
      if (test.predicted != test.label) continue;
      int qualifying = 0;
      for (int p = 0; p < n; ++p) {
        if (test_related[t][p] >= delta) ++qualifying;
      }
      if (qualifying == 0) continue;
      const double share = 1.0 / qualifying;
      for (int p = 0; p < n; ++p) {
        if (test_related[t][p] >= delta) report.macro[p] += share;
      }
    }
    for (double& s : report.macro) s /= num_tests;
  }

  // ---- Matched accuracy + uncovered scenarios. ---------------------------
  size_t matched_correct = 0;
  std::vector<double> uncovered_freq(num_rules, 0.0);
  for (size_t t = 0; t < num_tests; ++t) {
    const TestRecord& test = content_.tests[t];
    const bool correct = test.predicted == test.label;
    if (correct && test_total[t] > 0) ++matched_correct;
    if (!correct && test_total[t] == 0) {
      ++report.uncovered_tests;
      test.activation.ForEachSetBit([&](size_t j) {
        uncovered_freq[j] += rule_weights_[j];
      });
    }
  }
  report.matched_accuracy =
      num_tests == 0 ? 0.0
                     : static_cast<double>(matched_correct) / num_tests;
  for (int j = 0; j < num_rules; ++j) {
    if (uncovered_freq[j] > 0.0) {
      report.uncovered_rules.push_back(
          {j, uncovered_freq[j], content_.rules[j].text});
    }
  }
  std::sort(report.uncovered_rules.begin(), report.uncovered_rules.end(),
            [](const RuleStat& a, const RuleStat& b) {
              if (a.frequency != b.frequency) {
                return a.frequency > b.frequency;
              }
              return a.rule < b.rule;
            });
  if (options.top_k >= 0 &&
      static_cast<int>(report.uncovered_rules.size()) > options.top_k) {
    report.uncovered_rules.resize(options.top_k);
  }

  // ---- Per-participant summaries (section IV-B). -------------------------
  size_t global = 0;
  for (int p = 0; p < n; ++p) {
    ParticipantSummary summary;
    summary.participant = p;
    summary.name = p < static_cast<int>(content_.meta.participant_names.size())
                       ? content_.meta.participant_names[p]
                       : StrFormat("P%d", p);
    summary.data_size = content_.participants[p].size();
    summary.beneficial =
        TopRuleStats(beneficial, p, options.top_k, content_.rules);
    summary.harmful = TopRuleStats(harmful, p, options.top_k, content_.rules);
    size_t never_matched = 0;
    for (size_t i = 0; i < summary.data_size; ++i) {
      if (!record_matched[global + i]) ++never_matched;
    }
    global += summary.data_size;
    summary.useless_ratio =
        summary.data_size == 0
            ? 0.0
            : static_cast<double>(never_matched) / summary.data_size;
    report.participants.push_back(std::move(summary));
  }
  return report;
}

}  // namespace store
}  // namespace ctfl
