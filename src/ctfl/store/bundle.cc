#include "ctfl/store/bundle.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define CTFL_BUNDLE_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "ctfl/telemetry/metrics.h"
#include "ctfl/telemetry/trace.h"
#include "ctfl/util/string_util.h"
#include "ctfl/util/wire.h"

namespace ctfl {
namespace store {
namespace {

constexpr char kMagic[8] = {'C', 'T', 'F', 'L', 'B', 'N', 'D', 'L'};
constexpr uint32_t kFormatVersion = 1;

// Section names (fixed vocabulary of format v1).
constexpr const char* kMetaSection = "meta";
constexpr const char* kSchemaSection = "schema";
constexpr const char* kModelSection = "model";
constexpr const char* kRulesSection = "rules";
constexpr const char* kTrainSection = "train";
constexpr const char* kTestsSection = "tests";
constexpr const char* kIndexSection = "index";

// Little-endian primitive encoding now lives in util/wire.h (shared with
// the serve wire protocol); these aliases keep the section codecs terse.
using ByteWriter = wire::Writer;

/// wire::Reader with the historical bundle error-message prefix.
class ByteReader : public wire::Reader {
 public:
  explicit ByteReader(std::string_view data)
      : wire::Reader(data, "bundle section") {}
};

telemetry::Counter& BytesWrittenCounter() {
  static telemetry::Counter& c = telemetry::MetricsRegistry::Global()
                                     .GetCounter("ctfl.bundle.bytes_written");
  return c;
}
telemetry::Counter& BytesReadCounter() {
  static telemetry::Counter& c = telemetry::MetricsRegistry::Global()
                                     .GetCounter("ctfl.bundle.bytes_read");
  return c;
}
telemetry::Counter& SectionsCounter() {
  static telemetry::Counter& c =
      telemetry::MetricsRegistry::Global().GetCounter("ctfl.bundle.sections");
  return c;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

// ---------------------------------------------------------------------------
// Container layer.
// ---------------------------------------------------------------------------

void BundleWriter::AddSection(std::string name, std::string payload) {
  sections_.emplace_back(std::move(name), std::move(payload));
}

size_t BundleWriter::TotalBytes() const {
  size_t total = sizeof(kMagic) + 4 + 4;  // magic + version + count
  for (const auto& [name, payload] : sections_) {
    total += 4 + name.size() + 8 + 8 + 4;  // table entry
    total += payload.size();
  }
  return total;
}

Result<std::string> BundleWriter::Serialize() const {
  for (size_t i = 0; i < sections_.size(); ++i) {
    if (sections_[i].first.empty()) {
      return Status::InvalidArgument("bundle section name must be non-empty");
    }
    for (size_t j = i + 1; j < sections_.size(); ++j) {
      if (sections_[i].first == sections_[j].first) {
        return Status::InvalidArgument("duplicate bundle section " +
                                       sections_[i].first);
      }
    }
  }
  // Header + table size determine the first payload offset.
  size_t table_bytes = 0;
  for (const auto& section : sections_) {
    table_bytes += 4 + section.first.size() + 8 + 8 + 4;
  }
  uint64_t offset = sizeof(kMagic) + 4 + 4 + table_bytes;

  std::string buf;
  buf.append(kMagic, sizeof(kMagic));
  ByteWriter header;
  header.U32(kFormatVersion);
  header.U32(static_cast<uint32_t>(sections_.size()));
  for (const auto& [name, payload] : sections_) {
    header.Str(name);
    header.U64(offset);
    header.U64(payload.size());
    header.U32(Crc32(payload.data(), payload.size()));
    offset += payload.size();
  }
  buf += header.Take();
  for (const auto& section : sections_) buf += section.second;
  return buf;
}

Status BundleWriter::Write(const std::string& path) const {
  CTFL_SPAN("ctfl.bundle.write");
  CTFL_ASSIGN_OR_RETURN(const std::string bytes, Serialize());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) return Status::IoError("write failed: " + path);
  BytesWrittenCounter().Add(static_cast<int64_t>(bytes.size()));
  SectionsCounter().Add(static_cast<int64_t>(sections_.size()));
  static telemetry::Counter& writes =
      telemetry::MetricsRegistry::Global().GetCounter("ctfl.bundle.writes");
  writes.Add(1);
  return Status::OK();
}

/// Owner of the raw file bytes. Exactly one of the two storage forms is
/// active: an owned string (Parse / ifstream fallback) or an mmap'd
/// region released on destruction. Sections are string_views into it, so
/// a reader (and every BundleReader copy sharing the buffer) is zero-copy.
struct BundleReader::Buffer {
  std::string owned;
  const char* map_data = nullptr;
  size_t map_size = 0;

  ~Buffer() {
#if CTFL_BUNDLE_HAS_MMAP
    if (map_data != nullptr) {
      ::munmap(const_cast<char*>(map_data), map_size);
    }
#endif
  }

  std::string_view view() const {
    if (map_data != nullptr) return std::string_view(map_data, map_size);
    return owned;
  }
  bool mapped() const { return map_data != nullptr; }
};

bool BundleReader::MmapSupported() {
#if CTFL_BUNDLE_HAS_MMAP
  return true;
#else
  return false;
#endif
}

namespace {

#if CTFL_BUNDLE_HAS_MMAP
Result<std::shared_ptr<BundleReader::Buffer>> MmapFile(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IoError("cannot open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError("cannot stat " + path);
  }
  auto buffer = std::make_shared<BundleReader::Buffer>();
  if (st.st_size > 0) {
    void* map = ::mmap(nullptr, static_cast<size_t>(st.st_size), PROT_READ,
                       MAP_PRIVATE, fd, 0);
    if (map == MAP_FAILED) {
      ::close(fd);
      return Status::IoError("mmap failed: " + path);
    }
    buffer->map_data = static_cast<const char*>(map);
    buffer->map_size = static_cast<size_t>(st.st_size);
  }
  ::close(fd);  // the mapping survives the descriptor
  static telemetry::Counter& mmap_reads =
      telemetry::MetricsRegistry::Global().GetCounter(
          "ctfl.bundle.mmap_reads");
  mmap_reads.Add(1);
  return buffer;
}
#endif

Result<std::shared_ptr<BundleReader::Buffer>> SlurpFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  auto buffer = std::make_shared<BundleReader::Buffer>();
  buffer->owned.assign((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) return Status::IoError("read failed: " + path);
  return buffer;
}

}  // namespace

Result<BundleReader> BundleReader::Open(const std::string& path,
                                        OpenMode mode) {
  CTFL_SPAN("ctfl.bundle.read");
  std::shared_ptr<Buffer> buffer;
#if CTFL_BUNDLE_HAS_MMAP
  if (mode != OpenMode::kStream) {
    CTFL_ASSIGN_OR_RETURN(buffer, MmapFile(path));
  }
#else
  if (mode == OpenMode::kMmap) {
    return Status::Unimplemented("mmap is unavailable on this platform");
  }
#endif
  if (buffer == nullptr) {
    CTFL_ASSIGN_OR_RETURN(buffer, SlurpFile(path));
  }
  return ParseBuffer(std::move(buffer), path);
}

Result<BundleReader> BundleReader::Parse(std::string file_bytes,
                                         const std::string& origin) {
  auto buffer = std::make_shared<Buffer>();
  buffer->owned = std::move(file_bytes);
  return ParseBuffer(std::move(buffer), origin);
}

Result<BundleReader> BundleReader::ParseBuffer(std::shared_ptr<Buffer> buffer,
                                               const std::string& origin) {
  const std::string_view file_bytes = buffer->view();
  BundleReader reader;
  reader.buffer_ = buffer;
  reader.mapped_ = buffer->mapped();
  reader.file_bytes_ = file_bytes.size();
  if (file_bytes.size() < sizeof(kMagic) + 8 ||
      std::memcmp(file_bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(origin + ": not a CTFL bundle file");
  }
  ByteReader in(file_bytes.substr(sizeof(kMagic)));
  uint32_t version = 0;
  uint32_t count = 0;
  CTFL_RETURN_IF_ERROR(in.U32(&version));
  if (version != kFormatVersion) {
    return Status::InvalidArgument(StrFormat(
        "%s: unsupported bundle version %u", origin.c_str(), version));
  }
  CTFL_RETURN_IF_ERROR(in.U32(&count));
  struct Entry {
    std::string name;
    uint64_t offset = 0;
    uint64_t size = 0;
    uint32_t crc = 0;
  };
  std::vector<Entry> entries(count);
  for (Entry& e : entries) {
    Status table = Status::OK();
    if (!(table = in.Str(&e.name)).ok() || !(table = in.U64(&e.offset)).ok() ||
        !(table = in.U64(&e.size)).ok() || !(table = in.U32(&e.crc)).ok()) {
      return Status::InvalidArgument(origin +
                                     ": truncated bundle section table");
    }
  }
  for (const Entry& e : entries) {
    if (e.offset > file_bytes.size() ||
        e.size > file_bytes.size() - e.offset) {
      return Status::InvalidArgument(
          StrFormat("%s: section '%s' exceeds file bounds (truncated file?)",
                    origin.c_str(), e.name.c_str()));
    }
    const std::string_view payload = file_bytes.substr(e.offset, e.size);
    const uint32_t crc = Crc32(payload.data(), payload.size());
    if (crc != e.crc) {
      return Status::InvalidArgument(StrFormat(
          "%s: CRC32 mismatch in section '%s' (stored %08x, computed %08x)",
          origin.c_str(), e.name.c_str(), e.crc, crc));
    }
    reader.names_.push_back(e.name);
    reader.sections_.emplace_back(e.name, payload);
  }
  BytesReadCounter().Add(static_cast<int64_t>(file_bytes.size()));
  static telemetry::Counter& reads =
      telemetry::MetricsRegistry::Global().GetCounter("ctfl.bundle.reads");
  reads.Add(1);
  return reader;
}

bool BundleReader::HasSection(const std::string& name) const {
  for (const auto& section : sections_) {
    if (section.first == name) return true;
  }
  return false;
}

Result<std::string> BundleReader::Section(const std::string& name) const {
  CTFL_ASSIGN_OR_RETURN(const std::string_view view, SectionView(name));
  return std::string(view);
}

Result<std::string_view> BundleReader::SectionView(
    const std::string& name) const {
  for (const auto& section : sections_) {
    if (section.first == name) return section.second;
  }
  return Status::NotFound("bundle has no section '" + name + "'");
}

// ---------------------------------------------------------------------------
// Typed sections.
// ---------------------------------------------------------------------------

size_t BundleContent::total_train_records() const {
  size_t total = 0;
  for (const ParticipantRecords& p : participants) total += p.size();
  return total;
}

namespace {

std::string EncodeMeta(const BundleContent& c) {
  ByteWriter w;
  w.U32(static_cast<uint32_t>(c.participants.size()));
  w.U32(static_cast<uint32_t>(c.rules.size()));
  w.U64(c.tests.size());
  w.F64(c.meta.tau_w);
  w.U32(static_cast<uint32_t>(c.meta.macro_delta));
  w.F64(c.meta.min_rule_weight);
  w.F64(c.meta.dp_epsilon);
  w.F64(c.meta.global_accuracy);
  w.F64(c.meta.matched_accuracy);
  w.U64(c.meta.schema_fingerprint);
  w.U32(static_cast<uint32_t>(c.meta.micro_scores.size()));
  for (double v : c.meta.micro_scores) w.F64(v);
  w.U32(static_cast<uint32_t>(c.meta.macro_scores.size()));
  for (double v : c.meta.macro_scores) w.F64(v);
  w.U32(static_cast<uint32_t>(c.meta.participant_names.size()));
  for (const std::string& name : c.meta.participant_names) w.Str(name);
  // Trailing optional fields (decoders treat end-of-payload as defaults,
  // so pre-failure-injection bundles keep decoding).
  w.U64(c.meta.failure_plan_fingerprint);
  return w.Take();
}

Status DecodeMeta(std::string_view payload, BundleContent& c,
                  uint32_t* num_participants, uint32_t* num_rules,
                  uint64_t* num_tests) {
  ByteReader r(payload);
  CTFL_RETURN_IF_ERROR(r.U32(num_participants));
  CTFL_RETURN_IF_ERROR(r.U32(num_rules));
  CTFL_RETURN_IF_ERROR(r.U64(num_tests));
  CTFL_RETURN_IF_ERROR(r.F64(&c.meta.tau_w));
  uint32_t delta = 0;
  CTFL_RETURN_IF_ERROR(r.U32(&delta));
  c.meta.macro_delta = static_cast<int>(delta);
  CTFL_RETURN_IF_ERROR(r.F64(&c.meta.min_rule_weight));
  CTFL_RETURN_IF_ERROR(r.F64(&c.meta.dp_epsilon));
  CTFL_RETURN_IF_ERROR(r.F64(&c.meta.global_accuracy));
  CTFL_RETURN_IF_ERROR(r.F64(&c.meta.matched_accuracy));
  CTFL_RETURN_IF_ERROR(r.U64(&c.meta.schema_fingerprint));
  uint32_t micro = 0;
  CTFL_RETURN_IF_ERROR(r.U32(&micro));
  c.meta.micro_scores.resize(micro);
  for (double& v : c.meta.micro_scores) CTFL_RETURN_IF_ERROR(r.F64(&v));
  uint32_t macro = 0;
  CTFL_RETURN_IF_ERROR(r.U32(&macro));
  c.meta.macro_scores.resize(macro);
  for (double& v : c.meta.macro_scores) CTFL_RETURN_IF_ERROR(r.F64(&v));
  uint32_t names = 0;
  CTFL_RETURN_IF_ERROR(r.U32(&names));
  c.meta.participant_names.resize(names);
  for (std::string& name : c.meta.participant_names) {
    CTFL_RETURN_IF_ERROR(r.Str(&name));
  }
  // Per-participant vectors must be absent or exactly one per participant.
  if ((micro != 0 && micro != *num_participants) ||
      (macro != 0 && macro != *num_participants) ||
      names != *num_participants) {
    return Status::InvalidArgument(
        "meta: scores/names are not one per participant");
  }
  // Optional trailing fields: absent in bundles written before failure
  // injection existed (defaults already hold).
  if (!r.AtEnd()) {
    CTFL_RETURN_IF_ERROR(r.U64(&c.meta.failure_plan_fingerprint));
  }
  return r.ExpectEnd(kMetaSection);
}

std::string EncodeRules(const BundleContent& c) {
  ByteWriter w;
  w.F64(c.rule_bias);
  w.U32(static_cast<uint32_t>(c.rules.size()));
  for (const RuleSnapshot& rule : c.rules) {
    w.U8(static_cast<uint8_t>(rule.support_class));
    w.F64(rule.weight);
    w.Str(rule.text);
  }
  return w.Take();
}

Status DecodeRules(std::string_view payload, BundleContent& c) {
  ByteReader r(payload);
  CTFL_RETURN_IF_ERROR(r.F64(&c.rule_bias));
  uint32_t count = 0;
  CTFL_RETURN_IF_ERROR(r.U32(&count));
  c.rules.resize(count);
  for (RuleSnapshot& rule : c.rules) {
    uint8_t support_class = 0;
    CTFL_RETURN_IF_ERROR(r.U8(&support_class));
    if (support_class > 1) {
      return Status::InvalidArgument("bundle rule has support class > 1");
    }
    rule.support_class = support_class;
    CTFL_RETURN_IF_ERROR(r.F64(&rule.weight));
    CTFL_RETURN_IF_ERROR(r.Str(&rule.text));
  }
  return r.ExpectEnd(kRulesSection);
}

std::string EncodeIndex(const BundleContent& c) {
  ByteWriter w;
  w.U32(static_cast<uint32_t>(c.posting_offsets.empty()
                                  ? 0
                                  : c.posting_offsets.size() - 1));
  w.U64(c.postings.size());
  for (uint64_t offset : c.posting_offsets) w.U64(offset);
  for (uint32_t id : c.postings) w.U32(id);
  return w.Take();
}

Status DecodeIndex(std::string_view payload, uint32_t num_rules,
                   BundleContent& c) {
  ByteReader r(payload);
  uint32_t index_rules = 0;
  uint64_t postings_size = 0;
  CTFL_RETURN_IF_ERROR(r.U32(&index_rules));
  CTFL_RETURN_IF_ERROR(r.U64(&postings_size));
  if (index_rules != num_rules) {
    return Status::InvalidArgument(
        "bundle index rule count disagrees with meta");
  }
  c.posting_offsets.resize(static_cast<size_t>(index_rules) + 1);
  for (uint64_t& offset : c.posting_offsets) {
    CTFL_RETURN_IF_ERROR(r.U64(&offset));
  }
  c.postings.resize(postings_size);
  for (uint32_t& id : c.postings) CTFL_RETURN_IF_ERROR(r.U32(&id));
  CTFL_RETURN_IF_ERROR(r.ExpectEnd(kIndexSection));
  // Structural validation: monotone offsets bounded by the postings array,
  // ids within the record table.
  uint64_t prev = 0;
  for (uint64_t offset : c.posting_offsets) {
    if (offset < prev || offset > c.postings.size()) {
      return Status::InvalidArgument("bundle index offsets not monotone");
    }
    prev = offset;
  }
  if (c.posting_offsets.front() != 0 ||
      c.posting_offsets.back() != c.postings.size()) {
    return Status::InvalidArgument("bundle index offsets do not span");
  }
  const uint64_t total_records = c.total_train_records();
  for (uint32_t id : c.postings) {
    if (id >= total_records) {
      return Status::InvalidArgument("bundle index posting id out of range");
    }
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// Public payload codecs (section bodies without the container framing),
// shared with the streaming delta-log header so both artifacts stay
// bit-compatible.
// ---------------------------------------------------------------------------

std::string EncodeSchemaPayload(const FeatureSchema& schema) {
  ByteWriter w;
  w.U32(static_cast<uint32_t>(schema.num_features()));
  for (const FeatureSpec& spec : schema.features()) {
    w.Str(spec.name);
    w.U8(spec.type == FeatureType::kDiscrete ? 1 : 0);
    if (spec.type == FeatureType::kDiscrete) {
      w.U32(static_cast<uint32_t>(spec.categories.size()));
      for (const std::string& category : spec.categories) w.Str(category);
    } else {
      w.F64(spec.lo);
      w.F64(spec.hi);
    }
  }
  w.Str(schema.label_name(0));
  w.Str(schema.label_name(1));
  return w.Take();
}

Result<SchemaPtr> DecodeSchemaPayload(std::string_view payload) {
  ByteReader r(payload);
  uint32_t num_features = 0;
  CTFL_RETURN_IF_ERROR(r.U32(&num_features));
  std::vector<FeatureSpec> features(num_features);
  for (FeatureSpec& spec : features) {
    CTFL_RETURN_IF_ERROR(r.Str(&spec.name));
    uint8_t type = 0;
    CTFL_RETURN_IF_ERROR(r.U8(&type));
    spec.type = type == 1 ? FeatureType::kDiscrete : FeatureType::kContinuous;
    if (spec.type == FeatureType::kDiscrete) {
      uint32_t ncat = 0;
      CTFL_RETURN_IF_ERROR(r.U32(&ncat));
      spec.categories.resize(ncat);
      for (std::string& category : spec.categories) {
        CTFL_RETURN_IF_ERROR(r.Str(&category));
      }
    } else {
      CTFL_RETURN_IF_ERROR(r.F64(&spec.lo));
      CTFL_RETURN_IF_ERROR(r.F64(&spec.hi));
    }
  }
  std::string negative, positive;
  CTFL_RETURN_IF_ERROR(r.Str(&negative));
  CTFL_RETURN_IF_ERROR(r.Str(&positive));
  CTFL_RETURN_IF_ERROR(r.ExpectEnd(kSchemaSection));
  return std::make_shared<const FeatureSchema>(
      std::move(features), std::move(negative), std::move(positive));
}

std::string EncodeModelPayload(const LogicalNetConfig& net_config,
                               const std::vector<double>& params) {
  ByteWriter w;
  w.U32(static_cast<uint32_t>(net_config.tau_d));
  w.U32(static_cast<uint32_t>(net_config.fan_in));
  w.U8(net_config.input_skip ? 1 : 0);
  w.U64(net_config.seed);
  w.F64(net_config.linear_init_scale);
  w.U32(static_cast<uint32_t>(net_config.logic_layers.size()));
  for (const auto& [conj, disj] : net_config.logic_layers) {
    w.U32(static_cast<uint32_t>(conj));
    w.U32(static_cast<uint32_t>(disj));
  }
  w.U64(params.size());
  for (double v : params) w.F64(v);
  return w.Take();
}

Status DecodeModelPayload(std::string_view payload,
                          LogicalNetConfig* net_config,
                          std::vector<double>* params) {
  ByteReader r(payload);
  uint32_t tau_d = 0, fan_in = 0, num_layers = 0;
  uint8_t input_skip = 0;
  CTFL_RETURN_IF_ERROR(r.U32(&tau_d));
  CTFL_RETURN_IF_ERROR(r.U32(&fan_in));
  CTFL_RETURN_IF_ERROR(r.U8(&input_skip));
  CTFL_RETURN_IF_ERROR(r.U64(&net_config->seed));
  CTFL_RETURN_IF_ERROR(r.F64(&net_config->linear_init_scale));
  CTFL_RETURN_IF_ERROR(r.U32(&num_layers));
  net_config->tau_d = static_cast<int>(tau_d);
  net_config->fan_in = static_cast<int>(fan_in);
  net_config->input_skip = input_skip != 0;
  net_config->logic_layers.clear();
  for (uint32_t l = 0; l < num_layers; ++l) {
    uint32_t conj = 0, disj = 0;
    CTFL_RETURN_IF_ERROR(r.U32(&conj));
    CTFL_RETURN_IF_ERROR(r.U32(&disj));
    net_config->logic_layers.emplace_back(static_cast<int>(conj),
                                          static_cast<int>(disj));
  }
  uint64_t param_count = 0;
  CTFL_RETURN_IF_ERROR(r.U64(&param_count));
  params->resize(param_count);
  for (double& v : *params) CTFL_RETURN_IF_ERROR(r.F64(&v));
  return r.ExpectEnd(kModelSection);
}

std::string EncodeTrainPayload(
    const std::vector<ParticipantRecords>& participants) {
  ByteWriter w;
  w.U32(static_cast<uint32_t>(participants.size()));
  for (const ParticipantRecords& p : participants) {
    w.U64(p.labels.size());
    // Labels packed 8 per byte.
    uint8_t packed = 0;
    for (size_t i = 0; i < p.labels.size(); ++i) {
      if (p.labels[i]) packed |= static_cast<uint8_t>(1u << (i % 8));
      if (i % 8 == 7) {
        w.U8(packed);
        packed = 0;
      }
    }
    if (p.labels.size() % 8 != 0) w.U8(packed);
    for (const Bitset& activation : p.activations) {
      w.Words(activation.words());
    }
  }
  return w.Take();
}

Result<std::vector<ParticipantRecords>> DecodeTrainPayload(
    std::string_view payload, uint32_t num_rules) {
  ByteReader r(payload);
  uint32_t num_participants = 0;
  CTFL_RETURN_IF_ERROR(r.U32(&num_participants));
  std::vector<ParticipantRecords> participants(num_participants);
  const size_t words_per_row = (num_rules + 63) / 64;
  for (ParticipantRecords& p : participants) {
    uint64_t num_records = 0;
    CTFL_RETURN_IF_ERROR(r.U64(&num_records));
    p.labels.resize(num_records);
    for (size_t i = 0; i < num_records; i += 8) {
      uint8_t packed = 0;
      CTFL_RETURN_IF_ERROR(r.U8(&packed));
      for (size_t b = 0; b < 8 && i + b < num_records; ++b) {
        p.labels[i + b] = (packed >> b) & 1;
      }
    }
    p.activations.reserve(num_records);
    for (uint64_t i = 0; i < num_records; ++i) {
      std::vector<uint64_t> words;
      CTFL_RETURN_IF_ERROR(r.Words(words_per_row, &words));
      CTFL_ASSIGN_OR_RETURN(Bitset activation,
                            Bitset::FromWords(num_rules, std::move(words)));
      p.activations.push_back(std::move(activation));
    }
  }
  CTFL_RETURN_IF_ERROR(r.ExpectEnd(kTrainSection));
  return participants;
}

std::string EncodeTestsPayload(const std::vector<TestRecord>& tests) {
  ByteWriter w;
  w.U64(tests.size());
  for (const TestRecord& t : tests) {
    w.U8(t.label);
    w.U8(t.predicted);
    w.Words(t.activation.words());
  }
  return w.Take();
}

Result<std::vector<TestRecord>> DecodeTestsPayload(std::string_view payload,
                                                   uint32_t num_rules) {
  ByteReader r(payload);
  uint64_t num_tests = 0;
  CTFL_RETURN_IF_ERROR(r.U64(&num_tests));
  std::vector<TestRecord> tests(num_tests);
  const size_t words_per_row = (num_rules + 63) / 64;
  for (TestRecord& t : tests) {
    CTFL_RETURN_IF_ERROR(r.U8(&t.label));
    CTFL_RETURN_IF_ERROR(r.U8(&t.predicted));
    if (t.label > 1 || t.predicted > 1) {
      return Status::InvalidArgument("bundle test record label out of range");
    }
    std::vector<uint64_t> words;
    CTFL_RETURN_IF_ERROR(r.Words(words_per_row, &words));
    CTFL_ASSIGN_OR_RETURN(t.activation,
                          Bitset::FromWords(num_rules, std::move(words)));
  }
  CTFL_RETURN_IF_ERROR(r.ExpectEnd(kTestsSection));
  return tests;
}

Status WriteBundle(const BundleContent& content, const std::string& path) {
  CTFL_SPAN("ctfl.bundle.encode");
  if (content.schema == nullptr) {
    return Status::InvalidArgument("bundle content has no schema");
  }
  if (content.meta.schema_fingerprint != 0 &&
      content.meta.schema_fingerprint != SchemaFingerprint(*content.schema)) {
    return Status::InvalidArgument(
        "bundle meta fingerprint disagrees with the schema section");
  }
  for (const ParticipantRecords& p : content.participants) {
    if (p.labels.size() != p.activations.size()) {
      return Status::InvalidArgument(
          "participant label/activation counts disagree");
    }
  }
  BundleWriter writer;
  writer.AddSection(kMetaSection, EncodeMeta(content));
  writer.AddSection(kSchemaSection, EncodeSchemaPayload(*content.schema));
  writer.AddSection(kModelSection,
                    EncodeModelPayload(content.net_config, content.params));
  writer.AddSection(kRulesSection, EncodeRules(content));
  writer.AddSection(kTrainSection, EncodeTrainPayload(content.participants));
  writer.AddSection(kTestsSection, EncodeTestsPayload(content.tests));
  writer.AddSection(kIndexSection, EncodeIndex(content));
  return writer.Write(path);
}

Result<BundleContent> ReadBundle(const std::string& path,
                                 BundleReader::OpenMode mode) {
  CTFL_SPAN("ctfl.bundle.decode");
  CTFL_ASSIGN_OR_RETURN(const BundleReader reader,
                        BundleReader::Open(path, mode));
  BundleContent content;
  uint32_t num_participants = 0, num_rules = 0;
  uint64_t num_tests = 0;
  {
    CTFL_ASSIGN_OR_RETURN(const std::string_view payload,
                          reader.SectionView(kMetaSection));
    CTFL_RETURN_IF_ERROR(DecodeMeta(payload, content, &num_participants,
                                    &num_rules, &num_tests));
  }
  {
    CTFL_ASSIGN_OR_RETURN(const std::string_view payload,
                          reader.SectionView(kSchemaSection));
    CTFL_ASSIGN_OR_RETURN(content.schema, DecodeSchemaPayload(payload));
  }
  if (content.meta.schema_fingerprint != 0 &&
      content.meta.schema_fingerprint != SchemaFingerprint(*content.schema)) {
    return Status::InvalidArgument(
        path + ": schema fingerprint disagrees with the schema section");
  }
  {
    CTFL_ASSIGN_OR_RETURN(const std::string_view payload,
                          reader.SectionView(kModelSection));
    CTFL_RETURN_IF_ERROR(
        DecodeModelPayload(payload, &content.net_config, &content.params));
  }
  {
    CTFL_ASSIGN_OR_RETURN(const std::string_view payload,
                          reader.SectionView(kRulesSection));
    CTFL_RETURN_IF_ERROR(DecodeRules(payload, content));
  }
  if (content.rules.size() != num_rules) {
    return Status::InvalidArgument(
        path + ": rules section size disagrees with meta");
  }
  {
    CTFL_ASSIGN_OR_RETURN(const std::string_view payload,
                          reader.SectionView(kTrainSection));
    CTFL_ASSIGN_OR_RETURN(content.participants,
                          DecodeTrainPayload(payload, num_rules));
  }
  if (content.participants.size() != num_participants) {
    return Status::InvalidArgument(
        path + ": train section participant count disagrees with meta");
  }
  {
    CTFL_ASSIGN_OR_RETURN(const std::string_view payload,
                          reader.SectionView(kTestsSection));
    CTFL_ASSIGN_OR_RETURN(content.tests, DecodeTestsPayload(payload, num_rules));
  }
  if (content.tests.size() != num_tests) {
    return Status::InvalidArgument(
        path + ": tests section size disagrees with meta");
  }
  {
    CTFL_ASSIGN_OR_RETURN(const std::string_view payload,
                          reader.SectionView(kIndexSection));
    CTFL_RETURN_IF_ERROR(DecodeIndex(payload, num_rules, content));
  }
  return content;
}

Result<LogicalNet> RestoreModel(const BundleContent& content) {
  if (content.schema == nullptr) {
    return Status::FailedPrecondition("bundle content has no schema");
  }
  LogicalNet net(content.schema, content.net_config);
  if (net.NumParameters() != content.params.size()) {
    return Status::InvalidArgument(StrFormat(
        "bundle parameter count %zu does not match the architecture/schema "
        "(%zu expected)",
        content.params.size(), net.NumParameters()));
  }
  net.SetParameters(content.params);
  if (net.num_rules() != content.num_rules()) {
    return Status::InvalidArgument(
        "bundle rule count does not match the restored model");
  }
  return net;
}

void BuildPostingIndex(BundleContent& content) {
  CTFL_SPAN("ctfl.bundle.index_build");
  const size_t num_rules = content.rules.size();
  // Counting pass -> offsets -> fill; record ids are emitted in ascending
  // order per rule by construction.
  std::vector<uint64_t> counts(num_rules, 0);
  for (const ParticipantRecords& p : content.participants) {
    for (const Bitset& activation : p.activations) {
      for (size_t j : activation.SetBits()) ++counts[j];
    }
  }
  content.posting_offsets.assign(num_rules + 1, 0);
  for (size_t j = 0; j < num_rules; ++j) {
    content.posting_offsets[j + 1] = content.posting_offsets[j] + counts[j];
  }
  content.postings.assign(content.posting_offsets[num_rules], 0);
  std::vector<uint64_t> cursor(content.posting_offsets.begin(),
                               content.posting_offsets.end() - 1);
  uint32_t record_id = 0;
  for (const ParticipantRecords& p : content.participants) {
    for (const Bitset& activation : p.activations) {
      for (size_t j : activation.SetBits()) {
        content.postings[cursor[j]++] = record_id;
      }
      ++record_id;
    }
  }
}

}  // namespace store
}  // namespace ctfl
