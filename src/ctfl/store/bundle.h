#ifndef CTFL_STORE_BUNDLE_H_
#define CTFL_STORE_BUNDLE_H_

// Contribution bundle: the persisted artifacts of one CTFL
// train-once/evaluate-many pass. A bundle snapshots everything the serving
// side needs to answer contribution and interpretability queries without
// retraining and without recomputing any activation vector:
//
//   meta    originating-run parameters (tau_w, delta, min_rule_weight,
//           dp_epsilon), the run's micro/macro scores and accuracies,
//           participant names, and the schema fingerprint
//   schema  the full feature schema (self-contained restore)
//   model   LogicalNetConfig + flat parameters (binary, bit-exact)
//   rules   the extracted rule model (r+/-, w+/-): per-coordinate support
//           class, vote weight, and symbolic text
//   train   per participant, per training record: label + rule-activation
//           bitset (the only training-data artifact that ever leaves a
//           client, paper section V)
//   tests   per reserved test instance: label, prediction, activation
//   index   inverted rule -> training-record posting lists over global
//           record ids (candidate prefilter for Eq. 4 lookups)
//
// File layout (version 1, little-endian):
//
//   magic "CTFLBNDL" | u32 version | u32 section_count
//   section table: { u32 name_len, name, u64 offset, u64 size, u32 crc32 }*
//   section payloads (offsets absolute, CRC-32/IEEE per payload)
//
// BundleWriter/BundleReader handle the container; WriteBundle/ReadBundle
// handle the typed sections. Readers validate magic, version, bounds, and
// every section CRC before any payload is decoded.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ctfl/nn/logical_net.h"
#include "ctfl/util/bitset.h"
#include "ctfl/util/result.h"

namespace ctfl {
namespace store {

/// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) of `size` bytes.
uint32_t Crc32(const void* data, size_t size);

/// Container-level writer: named binary sections -> one bundle file.
class BundleWriter {
 public:
  /// Section names must be unique and non-empty (checked at Write).
  void AddSection(std::string name, std::string payload);

  /// Serialized size of the bundle (header + table + payloads).
  size_t TotalBytes() const;

  Status Write(const std::string& path) const;

  /// In-memory serialization (what Write puts on disk).
  Result<std::string> Serialize() const;

 private:
  std::vector<std::pair<std::string, std::string>> sections_;
};

/// Container-level reader. Open() maps (or loads) the whole file,
/// validates the header and every section's bounds + CRC32, and exposes
/// payloads. On POSIX platforms Open() memory-maps the file by default so
/// a resident server's posting index and record table are zero-copy views
/// of the page cache; everywhere else (and on kStream) it falls back to a
/// plain ifstream slurp. Both paths produce byte-identical sections.
class BundleReader {
 public:
  /// How Open() acquires the file bytes. kAuto prefers mmap where the
  /// platform supports it; kMmap fails when it does not; kStream always
  /// reads through ifstream (the historical path).
  enum class OpenMode { kAuto, kMmap, kStream };

  static Result<BundleReader> Open(const std::string& path,
                                   OpenMode mode = OpenMode::kAuto);
  static Result<BundleReader> Parse(std::string file_bytes,
                                    const std::string& origin);

  /// True when mmap is compiled in (POSIX); kAuto uses it opportunistically.
  static bool MmapSupported();

  bool HasSection(const std::string& name) const;
  /// Payload bytes of `name` (copy), or NotFound.
  Result<std::string> Section(const std::string& name) const;
  /// Zero-copy payload view of `name`; valid while this reader (or any
  /// copy of it) is alive.
  Result<std::string_view> SectionView(const std::string& name) const;
  const std::vector<std::string>& section_names() const { return names_; }
  size_t file_bytes() const { return file_bytes_; }
  /// True when the sections are views into an mmap'd region.
  bool mapped() const { return mapped_; }

  /// Opaque owner of the raw bytes (mmap region or owned string); public
  /// only so the .cc's file-loading helpers can construct it.
  struct Buffer;

 private:
  static Result<BundleReader> ParseBuffer(std::shared_ptr<Buffer> buffer,
                                          const std::string& origin);

  std::shared_ptr<Buffer> buffer_;
  bool mapped_ = false;
  std::vector<std::string> names_;
  std::vector<std::pair<std::string, std::string_view>> sections_;
  size_t file_bytes_ = 0;
};

// ---------------------------------------------------------------------------
// Typed bundle content.
// ---------------------------------------------------------------------------

/// Originating-run parameters and headline results (section "meta").
struct BundleMeta {
  double tau_w = 0.9;
  int macro_delta = 1;
  double min_rule_weight = 1e-6;
  double dp_epsilon = 0.0;
  double global_accuracy = 0.0;
  double matched_accuracy = 0.0;
  uint64_t schema_fingerprint = 0;
  /// Digest of the FailurePlan the originating run trained under
  /// (FailurePlan::Fingerprint(); 0 = fault-free). Encoded as an optional
  /// trailing meta field: bundles written before failure injection
  /// existed decode with 0.
  uint64_t failure_plan_fingerprint = 0;
  std::vector<double> micro_scores;
  std::vector<double> macro_scores;
  std::vector<std::string> participant_names;
};

/// One extracted rule coordinate (Def. III.2 entry of (r+-, w+-)).
struct RuleSnapshot {
  int support_class = 1;
  double weight = 0.0;
  std::string text;  ///< symbolic form, e.g. "capital-gain > 21000"
};

/// One participant's uploaded tracing artifacts.
struct ParticipantRecords {
  std::vector<uint8_t> labels;      ///< one 0/1 label per training record
  std::vector<Bitset> activations;  ///< one bitset (num_rules) per record
  size_t size() const { return labels.size(); }
};

/// One reserved test instance's inference artifacts.
struct TestRecord {
  uint8_t label = 0;
  uint8_t predicted = 0;
  Bitset activation;
};

/// Fully decoded bundle.
struct BundleContent {
  BundleMeta meta;
  SchemaPtr schema;
  LogicalNetConfig net_config;
  std::vector<double> params;
  double rule_bias = 0.0;
  std::vector<RuleSnapshot> rules;
  std::vector<ParticipantRecords> participants;
  std::vector<TestRecord> tests;
  /// Inverted index: postings[posting_offsets[j] .. posting_offsets[j+1])
  /// are the ascending global record ids whose activation sets rule j.
  /// Global id = records flattened in (participant, local index) order.
  std::vector<uint64_t> posting_offsets;  ///< num_rules + 1 entries
  std::vector<uint32_t> postings;

  int num_rules() const { return static_cast<int>(rules.size()); }
  int num_participants() const {
    return static_cast<int>(participants.size());
  }
  size_t total_train_records() const;
};

// ---------------------------------------------------------------------------
// Section payload codecs (shared with the streaming delta log).
//
// The delta-log header (src/ctfl/stream/) embeds a schema, model, train and
// tests payload so a StreamingScorer can bootstrap without a bundle; using
// the bundle's own codecs keeps the two containers bit-compatible and
// single-sources the formats.
// ---------------------------------------------------------------------------

std::string EncodeSchemaPayload(const FeatureSchema& schema);
Result<SchemaPtr> DecodeSchemaPayload(std::string_view payload);

std::string EncodeModelPayload(const LogicalNetConfig& net_config,
                               const std::vector<double>& params);
Status DecodeModelPayload(std::string_view payload,
                          LogicalNetConfig* net_config,
                          std::vector<double>* params);

std::string EncodeTrainPayload(
    const std::vector<ParticipantRecords>& participants);
Result<std::vector<ParticipantRecords>> DecodeTrainPayload(
    std::string_view payload, uint32_t num_rules);

std::string EncodeTestsPayload(const std::vector<TestRecord>& tests);
Result<std::vector<TestRecord>> DecodeTestsPayload(std::string_view payload,
                                                   uint32_t num_rules);

/// Encodes every section and writes the bundle file. Emits telemetry spans
/// (ctfl.bundle.encode / ctfl.bundle.write) and bumps ctfl.bundle.writes /
/// ctfl.bundle.bytes_written / ctfl.bundle.sections.
Status WriteBundle(const BundleContent& content, const std::string& path);

/// Reads + validates + decodes a bundle file. Emits ctfl.bundle.read span
/// and bumps ctfl.bundle.reads / ctfl.bundle.bytes_read. `mode` selects
/// the container read path (mmap vs ifstream; identical results).
Result<BundleContent> ReadBundle(
    const std::string& path,
    BundleReader::OpenMode mode = BundleReader::OpenMode::kAuto);

/// Rebuilds the trained LogicalNet from the bundle's schema + model
/// sections; parameters are bit-exact, so predictions and activations
/// match the originating run everywhere.
Result<LogicalNet> RestoreModel(const BundleContent& content);

/// Builds the inverted rule -> record posting lists from
/// `content.participants` (overwrites posting_offsets/postings).
void BuildPostingIndex(BundleContent& content);

}  // namespace store
}  // namespace ctfl

#endif  // CTFL_STORE_BUNDLE_H_
