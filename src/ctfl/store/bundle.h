#ifndef CTFL_STORE_BUNDLE_H_
#define CTFL_STORE_BUNDLE_H_

// Contribution bundle: the persisted artifacts of one CTFL
// train-once/evaluate-many pass. A bundle snapshots everything the serving
// side needs to answer contribution and interpretability queries without
// retraining and without recomputing any activation vector:
//
//   meta    originating-run parameters (tau_w, delta, min_rule_weight,
//           dp_epsilon), the run's micro/macro scores and accuracies,
//           participant names, and the schema fingerprint
//   schema  the full feature schema (self-contained restore)
//   model   LogicalNetConfig + flat parameters (binary, bit-exact)
//   rules   the extracted rule model (r+/-, w+/-): per-coordinate support
//           class, vote weight, and symbolic text
//   train   per participant, per training record: label + rule-activation
//           bitset (the only training-data artifact that ever leaves a
//           client, paper section V)
//   tests   per reserved test instance: label, prediction, activation
//   index   inverted rule -> training-record posting lists over global
//           record ids (candidate prefilter for Eq. 4 lookups)
//
// File layout (version 1, little-endian):
//
//   magic "CTFLBNDL" | u32 version | u32 section_count
//   section table: { u32 name_len, name, u64 offset, u64 size, u32 crc32 }*
//   section payloads (offsets absolute, CRC-32/IEEE per payload)
//
// BundleWriter/BundleReader handle the container; WriteBundle/ReadBundle
// handle the typed sections. Readers validate magic, version, bounds, and
// every section CRC before any payload is decoded.

#include <cstdint>
#include <string>
#include <vector>

#include "ctfl/nn/logical_net.h"
#include "ctfl/util/bitset.h"
#include "ctfl/util/result.h"

namespace ctfl {
namespace store {

/// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) of `size` bytes.
uint32_t Crc32(const void* data, size_t size);

/// Container-level writer: named binary sections -> one bundle file.
class BundleWriter {
 public:
  /// Section names must be unique and non-empty (checked at Write).
  void AddSection(std::string name, std::string payload);

  /// Serialized size of the bundle (header + table + payloads).
  size_t TotalBytes() const;

  Status Write(const std::string& path) const;

  /// In-memory serialization (what Write puts on disk).
  Result<std::string> Serialize() const;

 private:
  std::vector<std::pair<std::string, std::string>> sections_;
};

/// Container-level reader. Open() loads the whole file, validates the
/// header and every section's bounds + CRC32, and exposes payloads.
class BundleReader {
 public:
  static Result<BundleReader> Open(const std::string& path);
  static Result<BundleReader> Parse(std::string file_bytes,
                                    const std::string& origin);

  bool HasSection(const std::string& name) const;
  /// Payload bytes of `name`, or NotFound.
  Result<std::string> Section(const std::string& name) const;
  const std::vector<std::string>& section_names() const { return names_; }
  size_t file_bytes() const { return file_bytes_; }

 private:
  std::vector<std::string> names_;
  std::vector<std::pair<std::string, std::string>> sections_;
  size_t file_bytes_ = 0;
};

// ---------------------------------------------------------------------------
// Typed bundle content.
// ---------------------------------------------------------------------------

/// Originating-run parameters and headline results (section "meta").
struct BundleMeta {
  double tau_w = 0.9;
  int macro_delta = 1;
  double min_rule_weight = 1e-6;
  double dp_epsilon = 0.0;
  double global_accuracy = 0.0;
  double matched_accuracy = 0.0;
  uint64_t schema_fingerprint = 0;
  /// Digest of the FailurePlan the originating run trained under
  /// (FailurePlan::Fingerprint(); 0 = fault-free). Encoded as an optional
  /// trailing meta field: bundles written before failure injection
  /// existed decode with 0.
  uint64_t failure_plan_fingerprint = 0;
  std::vector<double> micro_scores;
  std::vector<double> macro_scores;
  std::vector<std::string> participant_names;
};

/// One extracted rule coordinate (Def. III.2 entry of (r+-, w+-)).
struct RuleSnapshot {
  int support_class = 1;
  double weight = 0.0;
  std::string text;  ///< symbolic form, e.g. "capital-gain > 21000"
};

/// One participant's uploaded tracing artifacts.
struct ParticipantRecords {
  std::vector<uint8_t> labels;      ///< one 0/1 label per training record
  std::vector<Bitset> activations;  ///< one bitset (num_rules) per record
  size_t size() const { return labels.size(); }
};

/// One reserved test instance's inference artifacts.
struct TestRecord {
  uint8_t label = 0;
  uint8_t predicted = 0;
  Bitset activation;
};

/// Fully decoded bundle.
struct BundleContent {
  BundleMeta meta;
  SchemaPtr schema;
  LogicalNetConfig net_config;
  std::vector<double> params;
  double rule_bias = 0.0;
  std::vector<RuleSnapshot> rules;
  std::vector<ParticipantRecords> participants;
  std::vector<TestRecord> tests;
  /// Inverted index: postings[posting_offsets[j] .. posting_offsets[j+1])
  /// are the ascending global record ids whose activation sets rule j.
  /// Global id = records flattened in (participant, local index) order.
  std::vector<uint64_t> posting_offsets;  ///< num_rules + 1 entries
  std::vector<uint32_t> postings;

  int num_rules() const { return static_cast<int>(rules.size()); }
  int num_participants() const {
    return static_cast<int>(participants.size());
  }
  size_t total_train_records() const;
};

/// Encodes every section and writes the bundle file. Emits telemetry spans
/// (ctfl.bundle.encode / ctfl.bundle.write) and bumps ctfl.bundle.writes /
/// ctfl.bundle.bytes_written / ctfl.bundle.sections.
Status WriteBundle(const BundleContent& content, const std::string& path);

/// Reads + validates + decodes a bundle file. Emits ctfl.bundle.read span
/// and bumps ctfl.bundle.reads / ctfl.bundle.bytes_read.
Result<BundleContent> ReadBundle(const std::string& path);

/// Rebuilds the trained LogicalNet from the bundle's schema + model
/// sections; parameters are bit-exact, so predictions and activations
/// match the originating run everywhere.
Result<LogicalNet> RestoreModel(const BundleContent& content);

/// Builds the inverted rule -> record posting lists from
/// `content.participants` (overwrites posting_offsets/postings).
void BuildPostingIndex(BundleContent& content);

}  // namespace store
}  // namespace ctfl

#endif  // CTFL_STORE_BUNDLE_H_
