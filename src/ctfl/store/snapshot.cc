#include "ctfl/store/snapshot.h"

#include <utility>

#include "ctfl/rules/extraction.h"
#include "ctfl/telemetry/trace.h"
#include "ctfl/util/string_util.h"

namespace ctfl {
namespace store {

Result<BundleContent> BuildBundleContent(
    const LogicalNet& net, const Federation& federation, const Dataset& test,
    const std::vector<std::vector<Bitset>>& train_activations,
    const SnapshotOptions& options) {
  CTFL_SPAN("ctfl.bundle.build");
  if (train_activations.size() != federation.size()) {
    return Status::InvalidArgument(StrFormat(
        "train_activations holds %zu participants, federation has %zu",
        train_activations.size(), federation.size()));
  }
  for (size_t p = 0; p < federation.size(); ++p) {
    if (train_activations[p].size() != federation[p].data.size()) {
      return Status::InvalidArgument(StrFormat(
          "participant %zu: %zu activations vs %zu records", p,
          train_activations[p].size(), federation[p].data.size()));
    }
  }
  const size_t n = federation.size();
  if ((!options.micro_scores.empty() && options.micro_scores.size() != n) ||
      (!options.macro_scores.empty() && options.macro_scores.size() != n)) {
    return Status::InvalidArgument(
        "score vectors must be empty or one entry per participant");
  }

  BundleContent content;
  content.schema = net.schema();
  content.meta.tau_w = options.tau_w;
  content.meta.macro_delta = options.macro_delta;
  content.meta.min_rule_weight = options.min_rule_weight;
  content.meta.dp_epsilon = options.dp_epsilon;
  content.meta.micro_scores = options.micro_scores;
  content.meta.macro_scores = options.macro_scores;
  content.meta.global_accuracy = options.global_accuracy;
  content.meta.matched_accuracy = options.matched_accuracy;
  content.meta.schema_fingerprint = SchemaFingerprint(*content.schema);
  content.meta.failure_plan_fingerprint = options.failure_plan_fingerprint;
  for (const Participant& participant : federation) {
    content.meta.participant_names.push_back(participant.name);
  }

  // Model: config + bit-exact flat parameters.
  content.net_config = net.config();
  content.params = net.GetParameters();

  // Rules: the extracted (r+-, w+-) model with symbolic text.
  const ExtractionResult extraction = ExtractRules(net);
  content.rule_bias = extraction.bias;
  content.rules.reserve(extraction.rules.size());
  for (const ExtractedRule& er : extraction.rules) {
    RuleSnapshot snapshot;
    snapshot.support_class = er.support_class;
    snapshot.weight = er.weight;
    snapshot.text = er.rule.ToString(*content.schema);
    content.rules.push_back(std::move(snapshot));
  }

  // Train: labels + the exact activation bitsets the tracer matched
  // against (DP perturbation and all), so queries reproduce the run.
  content.participants.resize(n);
  for (size_t p = 0; p < n; ++p) {
    const Dataset& data = federation[p].data;
    ParticipantRecords& records = content.participants[p];
    records.labels.resize(data.size());
    records.activations = train_activations[p];
    for (size_t i = 0; i < data.size(); ++i) {
      records.labels[i] = static_cast<uint8_t>(data.instance(i).label);
      if (records.activations[i].size() !=
          static_cast<size_t>(net.num_rules())) {
        return Status::InvalidArgument(
            "activation bitset width does not match the model's rule count");
      }
    }
  }

  // Tests: deployed inference artifacts of the reserved test set.
  content.tests.reserve(test.size());
  for (size_t t = 0; t < test.size(); ++t) {
    const Instance& inst = test.instance(t);
    TestRecord record;
    record.label = static_cast<uint8_t>(inst.label);
    record.predicted = static_cast<uint8_t>(net.Predict(inst));
    record.activation = net.RuleActivations(inst);
    content.tests.push_back(std::move(record));
  }

  BuildPostingIndex(content);
  return content;
}

}  // namespace store
}  // namespace ctfl
