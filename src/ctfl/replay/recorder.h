#ifndef CTFL_REPLAY_RECORDER_H_
#define CTFL_REPLAY_RECORDER_H_

// Capture side of the record/replay harness (DESIGN.md §14). One
// ReplayRecorder accumulates a ReplayFile in memory from any of the
// three recording points:
//
//   serve    ServiceConfig::request_tap — plug Tap() into the tapped
//            QueryService and every handled request/response pair lands
//            here, from whatever thread ran Handle()
//   CLI      the engine-direct Record{Related,RelatedForTest,Evaluate}
//            helpers mirror QueryService's response assembly exactly, so
//            a one-shot `ctfl query --record` captures digests that a
//            later served replay reproduces
//   run      CaptureRun pins the run spec + outcome computed by the
//            runner (runner.h)
//
// All methods are thread-safe; event order is arrival order under the
// recorder's lock.

#include <functional>
#include <mutex>
#include <string>

#include "ctfl/replay/replay_file.h"
#include "ctfl/serve/protocol.h"
#include "ctfl/store/query_engine.h"

namespace ctfl {
namespace replay {

class ReplayRecorder {
 public:
  ReplayRecorder() = default;
  /// Seeds the recorder from an existing file so `ctfl query --record`
  /// can append fresh events to a previously recorded run.
  explicit ReplayRecorder(ReplayFile seed) : file_(std::move(seed)) {}

  /// Pins the run spec + outcome (replaces any seeded ones).
  void CaptureRun(const RunSpec& spec, const RunOutcome& outcome);

  /// Appends one request/response pair as a QueryEvent.
  void RecordEvent(const serve::Request& request,
                   const serve::Response& response);

  /// ServiceConfig::request_tap adapter bound to this recorder. The
  /// recorder must outlive the service it is plugged into.
  std::function<void(const serve::Request&, const serve::Response&)> Tap();

  // Engine-direct capture for the one-shot CLI path. Each helper runs the
  // query, assembles the response exactly as QueryService would (including
  // the origin_* fields on EVALUATE), records the event, and returns the
  // engine result for the caller to render.
  store::RelatedResult RecordRelated(const store::QueryEngine& engine,
                                     const Instance& instance,
                                     const store::QueryOptions& options);
  store::RelatedResult RecordRelatedForTest(
      const store::QueryEngine& engine, uint64_t test_index,
      const store::QueryOptions& options);
  store::QueryReport RecordEvaluate(const store::QueryEngine& engine,
                                    const store::EvalOptions& options);

  /// Point-in-time copy of the accumulated file.
  ReplayFile Snapshot() const;

  size_t num_events() const;

  Status WriteTo(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  ReplayFile file_;
};

}  // namespace replay
}  // namespace ctfl

#endif  // CTFL_REPLAY_RECORDER_H_
