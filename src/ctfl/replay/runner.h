#ifndef CTFL_REPLAY_RUNNER_H_
#define CTFL_REPLAY_RUNNER_H_

// Replay side of the record/replay harness (DESIGN.md §14). Three layers:
//
//   ExecuteRunSpec    re-runs a recorded RunSpec (optionally with
//                     per-cell overrides) and recomputes its RunOutcome —
//                     the bit-identity surface a replay is checked
//                     against
//   ReplayEvents*     re-issues a recorded query stream against a fresh
//                     QueryService (batch), a fresh service per event
//                     (one-shot), or an in-process socket server
//                     (served), digest-checking every digest-stable
//                     response
//   GenerateMatrix /  expands one replay file into the differential
//   RunMatrix         regression cells (legacy-vs-blocked kernel,
//                     threads 1/2/8, faulty-vs-clean, batch vs one-shot
//                     vs served) and executes them
//
// Every run cell must reproduce the recorded outcome bit-for-bit —
// identical score/render digests AND an equal run fingerprint — except
// the `clean` cell, which drops the fault plan and must *diverge* in
// fingerprint (the fingerprint is doing its job).

#include <memory>
#include <string>
#include <vector>

#include "ctfl/core/pipeline.h"
#include "ctfl/replay/replay_file.h"
#include "ctfl/serve/service.h"

namespace ctfl {
namespace replay {

/// Canonical full-precision score table: one "%-11s %8zu   %.17g   %.17g"
/// row per participant. %.17g round-trips doubles exactly, so two tables
/// are byte-identical iff the score vectors are bit-identical — this is
/// the rendered surface pinned by RunOutcome::render_digest.
std::string RenderScoreTable(const Federation& federation,
                             const std::vector<double>& micro,
                             const std::vector<double>& macro);

/// Computes the outcome of a finished run (fingerprints via
/// MakeRunReport, score + render digests).
RunOutcome MakeRunOutcome(const CtflReport& report, const CtflConfig& config,
                          const Federation& federation, const Dataset& test);

/// Per-cell knob overrides applied on top of a recorded spec. Only the
/// score-neutral knobs (plus the fault plan, whose divergence is asserted,
/// not assumed) are overridable — everything semantic replays as recorded.
struct RunOverrides {
  /// Master thread knob; kKeep leaves the recorded value.
  static constexpr int64_t kKeep = INT64_MIN;
  int64_t num_threads = kKeep;
  /// TraceKernelKind value, or -1 to keep the recorded kernel.
  int kernel = -1;
  /// TraceIsa value, or -1 to keep the process-wide dispatch. Replay
  /// files never record an ISA (it is execution context, not semantics);
  /// the isa cells force a tier and assert the outcome is unchanged.
  int trace_isa = -1;
  /// Trace-kernel shard threads, or kKeep for the default (serial).
  int64_t trace_threads = kKeep;
  /// Drop the recorded failure plan (the faulty-vs-clean cell).
  bool clean = false;
  /// When non-empty, persist a contribution bundle (for query cells).
  std::string bundle_out;
  /// When non-empty, attach a streaming delta-log emitter to the run
  /// (federated specs only; the streamed cell folds this log and asserts
  /// score bit-identity against the one-shot outcome).
  std::string delta_log_out;
};

/// A re-executed run: the effective config, the reconstructed inputs, and
/// the recomputed outcome.
struct RunArtifacts {
  CtflConfig config;
  Federation federation;
  Dataset test;
  RunOutcome outcome;
  std::string score_table;
  size_t bundle_bytes = 0;
};

/// Rebuilds the inputs (regenerating benchmarks or reloading
/// digest-checked CSVs), mirrors the `ctfl score` config mapping
/// knob-for-knob, runs the pipeline, and recomputes the outcome.
Result<RunArtifacts> ExecuteRunSpec(const RunSpec& spec,
                                    const RunOverrides& overrides = {});

/// Bitwise outcome comparison. Returns OK when `got` reproduces `want`
/// (all four fingerprints, score digest, render digest, accuracy bits);
/// FailedPrecondition naming the first divergent field otherwise.
Status CompareOutcomes(const RunOutcome& want, const RunOutcome& got);

/// Outcome of replaying a recorded query stream.
struct EventReplayResult {
  size_t replayed = 0;        ///< events re-issued (SHUTDOWN skipped)
  size_t digest_checked = 0;  ///< digest-stable events compared
  size_t mismatches = 0;
  std::string detail;  ///< first mismatch, human-readable
  bool ok() const { return mismatches == 0; }
};

/// Replays the stream against one long-lived service (the streamed-batch
/// leg; LRU warm across events, like a resident server).
Result<EventReplayResult> ReplayEventsThroughService(
    const std::vector<QueryEvent>& events, serve::QueryService& service);

/// Replays each event against a freshly opened engine + service (the
/// one-shot CLI leg; nothing cached between events).
Result<EventReplayResult> ReplayEventsOneShot(
    const std::vector<QueryEvent>& events, const std::string& bundle_path);

/// Replays the stream through an in-process socket server + client over
/// `socket_path` (the served leg). Unimplemented off-POSIX.
Result<EventReplayResult> ReplayEventsServed(
    const std::vector<QueryEvent>& events, const std::string& bundle_path,
    const std::string& socket_path);

/// One differential regression cell derived from a replay file.
struct MatrixCell {
  enum class Kind {
    kRun,          ///< re-run the spec, require bitwise outcome match
    kRunDiverge,   ///< re-run, require the run fingerprint to differ
    kRunStreamed,  ///< re-run emitting a delta log, fold it, require the
                   ///< streamed scores to bit-match the one-shot outcome
    kQueryBatch,   ///< replay events against one warm service
    kQueryOneShot, ///< replay events, fresh service per event
    kQueryServed,  ///< replay events through a socket server
  };
  std::string name;
  std::string description;
  Kind kind = Kind::kRun;
  RunOverrides overrides;
};

/// Expands `file` into its differential matrix: base replay; kernel
/// flipped (when a spec is present); forced-scalar trace ISA (plus the
/// best available tier when it differs); threads 1/2/8; clean (when the
/// recorded run had a fault plan); streamed delta-log fold (federated
/// specs); query batch/one-shot (when events are present) and served
/// (POSIX). Deterministic order.
std::vector<MatrixCell> GenerateMatrix(const ReplayFile& file);

struct MatrixOptions {
  /// Directory for scratch bundles/sockets (must exist).
  std::string scratch_dir = ".";
  /// When non-empty, run only the cell with this name.
  std::string only_cell;
  /// Skip kQueryServed cells (no-socket environments, TSan runs that
  /// should stay in-process, ...).
  bool include_served = true;
};

struct CellResult {
  std::string name;
  bool pass = false;
  std::string detail;  ///< "scores bit-identical, fingerprint 0x..." or
                       ///< the first divergence
};

/// Executes the matrix. The base spec runs once per distinct override set;
/// query cells reuse one bundle emitted by the base run. A cell that
/// cannot run (e.g. served without socket support) reports pass=false
/// with the reason unless it was excluded via `options`.
Result<std::vector<CellResult>> RunMatrix(const ReplayFile& file,
                                          const MatrixOptions& options = {});

}  // namespace replay
}  // namespace ctfl

#endif  // CTFL_REPLAY_RUNNER_H_
