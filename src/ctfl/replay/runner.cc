#include "ctfl/replay/runner.h"

#include <cstring>
#include <fstream>
#include <memory>
#include <utility>

#include "ctfl/data/gen/benchmarks.h"
#include "ctfl/data/gen/tictactoe.h"
#include "ctfl/fl/partition.h"
#include "ctfl/serve/client.h"
#include "ctfl/serve/server.h"
#include "ctfl/store/query_engine.h"
#include "ctfl/stream/emitter.h"
#include "ctfl/stream/scorer.h"
#include "ctfl/util/rng.h"
#include "ctfl/util/string_util.h"

namespace ctfl {
namespace replay {
namespace {

Result<SchemaPtr> SchemaFor(const std::string& dataset) {
  if (dataset == "tic-tac-toe") return TicTacToeSchema();
  CTFL_ASSIGN_OR_RETURN(SyntheticSpec spec, BenchmarkSpec(dataset));
  return spec.schema;
}

/// Loads a recorded CSV input, failing loudly when the file's bytes no
/// longer match the recorded digest — an edited input would otherwise
/// "reproduce" noise instead of the run.
Result<Dataset> LoadPinnedCsv(const std::string& path, uint64_t want_digest,
                              const SchemaPtr& schema, const char* role) {
  if (want_digest != 0) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      return Status::IoError(StrFormat("cannot open recorded %s CSV %s",
                                       role, path.c_str()));
    }
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    const uint64_t got = HashBytes(bytes);
    if (got != want_digest) {
      return Status::FailedPrecondition(StrFormat(
          "%s CSV %s changed since recording (digest %016llx, recorded "
          "%016llx) — replaying it would not reproduce the run",
          role, path.c_str(), static_cast<unsigned long long>(got),
          static_cast<unsigned long long>(want_digest)));
    }
  }
  return LoadCsvDataset(path, schema);
}

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

std::string Hex64(uint64_t v) {
  return StrFormat("0x%016llx", static_cast<unsigned long long>(v));
}

// QueryService is neither copyable nor movable (atomics, const config),
// so it travels behind a unique_ptr here.
Result<std::unique_ptr<serve::QueryService>> OpenService(
    const std::string& bundle_path) {
  CTFL_ASSIGN_OR_RETURN(store::QueryEngine engine,
                        store::QueryEngine::Open(bundle_path));
  return std::make_unique<serve::QueryService>(std::move(engine));
}

/// Replays one decoded event against `service`, digest-checking the
/// response when the op is digest-stable. Shared by all three legs.
void CheckEvent(const QueryEvent& event, const serve::Response& response,
                size_t index, EventReplayResult* result) {
  if (!OpIsDigestStable(event.op)) return;
  ++result->digest_checked;
  const uint64_t got = ResponseDigest(response);
  if (got == event.response_digest) return;
  ++result->mismatches;
  if (result->detail.empty()) {
    result->detail = StrFormat(
        "event %zu (%s): response digest %s, recorded %s", index,
        serve::OpName(static_cast<serve::Op>(event.op)), Hex64(got).c_str(),
        Hex64(event.response_digest).c_str());
  }
}

}  // namespace

std::string RenderScoreTable(const Federation& federation,
                             const std::vector<double>& micro,
                             const std::vector<double>& macro) {
  std::string out = "participant  records    micro   macro\n";
  for (const Participant& p : federation) {
    const size_t id = static_cast<size_t>(p.id);
    out += StrFormat("%-11s %8zu   %.17g   %.17g\n", p.name.c_str(),
                     p.data.size(), id < micro.size() ? micro[id] : 0.0,
                     id < macro.size() ? macro[id] : 0.0);
  }
  return out;
}

RunOutcome MakeRunOutcome(const CtflReport& report, const CtflConfig& config,
                          const Federation& federation, const Dataset& test) {
  const telemetry::RunReport run_report =
      MakeRunReport(report, config, federation, test);
  RunOutcome outcome;
  outcome.config_digest = run_report.config_digest;
  outcome.schema_fingerprint = run_report.schema_fingerprint;
  outcome.failure_plan_fingerprint = run_report.failure_plan_fingerprint;
  outcome.run_fingerprint = run_report.run_fingerprint;
  outcome.test_accuracy = report.test_accuracy;
  outcome.micro = report.micro_scores;
  outcome.macro = report.macro_scores;
  outcome.score_digest = ScoreDigest(outcome.micro, outcome.macro);
  outcome.render_digest = HashBytes(
      RenderScoreTable(federation, outcome.micro, outcome.macro));
  return outcome;
}

Result<RunArtifacts> ExecuteRunSpec(const RunSpec& spec,
                                    const RunOverrides& overrides) {
  // Rebuild the inputs exactly as recorded.
  Result<Dataset> train = Status::Internal("unreachable");
  Result<Dataset> test = Status::Internal("unreachable");
  if (spec.source == DataSource::kGenerate) {
    train = MakeBenchmark(spec.dataset, spec.train_n, spec.train_seed);
    test = MakeBenchmark(spec.dataset, spec.test_n, spec.test_seed);
  } else {
    CTFL_ASSIGN_OR_RETURN(SchemaPtr schema, SchemaFor(spec.dataset));
    train = LoadPinnedCsv(spec.train_path, spec.train_csv_digest, schema,
                          "train");
    test = LoadPinnedCsv(spec.test_path, spec.test_csv_digest, schema,
                         "test");
  }
  if (!train.ok()) return train.status();
  if (!test.ok()) return test.status();

  // Partition with the recorded PRNG stream (same draw order as the CLI).
  Rng prng(spec.seed);
  const int participants = static_cast<int>(spec.participants);
  Federation federation = MakeFederation(
      spec.skew_label
          ? PartitionSkewLabel(*train, participants, spec.alpha, prng)
          : PartitionSkewSample(*train, participants, spec.alpha, prng));

  // Mirror the `ctfl score` config mapping knob-for-knob (tools/ctfl_cli.cc
  // RunScore) — any drift here breaks the bit-identity contract.
  CTFL_ASSIGN_OR_RETURN(
      FailurePlan failure_plan,
      FailurePlan::Parse(overrides.clean ? "" : spec.failure_plan));
  if (spec.trace_kernel >
      static_cast<uint8_t>(TraceKernelKind::kBlocked)) {
    return Status::InvalidArgument(StrFormat(
        "recorded trace kernel %u is unknown", spec.trace_kernel));
  }
  CtflConfig config;
  config.federated = spec.federated;
  config.central.epochs = static_cast<int>(spec.epochs);
  config.central.learning_rate = 0.05;
  config.fedavg.rounds = static_cast<int>(spec.rounds);
  config.fedavg.local_epochs = static_cast<int>(spec.local_epochs);
  config.fedavg.local.learning_rate = 0.05;
  config.fedavg.local.seed = spec.seed;
  config.fedavg.secure_aggregation = spec.secure_agg;
  config.fedavg.failure = failure_plan;
  config.fedavg.retry_budget = static_cast<int>(spec.retry_budget);
  if (!config.federated &&
      (!failure_plan.empty() || config.fedavg.secure_aggregation)) {
    return Status::InvalidArgument(
        "recorded spec has --failure-plan/--secure-agg without --federated");
  }
  const int width = static_cast<int>(spec.width);
  config.net.logic_layers = {{width / 2, width - width / 2}};
  config.net.seed = spec.seed;
  config.tracer.tau_w = spec.tau_w;
  config.tracer.kernel = overrides.kernel >= 0
                             ? static_cast<TraceKernelKind>(overrides.kernel)
                             : static_cast<TraceKernelKind>(spec.trace_kernel);
  if (overrides.trace_isa >= 0) {
    config.tracer.isa = static_cast<TraceIsa>(overrides.trace_isa);
  }
  if (overrides.trace_threads != RunOverrides::kKeep) {
    config.tracer.trace_threads =
        static_cast<int>(overrides.trace_threads);
  }
  config.num_threads = overrides.num_threads == RunOverrides::kKeep
                           ? static_cast<int>(spec.num_threads)
                           : static_cast<int>(overrides.num_threads);
  config.bundle_out = overrides.bundle_out;

  // The streamed cell instruments the run with a delta-log emitter; it
  // observes every round through the model_observer hook and must not
  // perturb the outcome (asserted by the caller via CompareOutcomes).
  std::unique_ptr<stream::DeltaLogEmitter> emitter;
  if (!overrides.delta_log_out.empty()) {
    if (!config.federated) {
      return Status::InvalidArgument(
          "delta_log_out requires a federated spec (deltas are per FedAvg "
          "round)");
    }
    emitter = std::make_unique<stream::DeltaLogEmitter>(
        overrides.delta_log_out, &federation, &*test, &config);
    emitter->Attach(&config.fedavg);
  }

  CTFL_ASSIGN_OR_RETURN(const CtflReport report,
                        RunCtfl(federation, *test, config));
  if (!config.bundle_out.empty()) {
    CTFL_RETURN_IF_ERROR(report.bundle_status);
  }
  if (emitter != nullptr) {
    CTFL_RETURN_IF_ERROR(emitter->status());
  }

  RunOutcome outcome = MakeRunOutcome(report, config, federation, *test);
  std::string table =
      RenderScoreTable(federation, outcome.micro, outcome.macro);
  return RunArtifacts{std::move(config), std::move(federation),
                      std::move(*test), std::move(outcome),
                      std::move(table), report.bundle_bytes};
}

Status CompareOutcomes(const RunOutcome& want, const RunOutcome& got) {
  struct Field {
    const char* name;
    uint64_t want;
    uint64_t got;
  };
  const Field fields[] = {
      {"config_digest", want.config_digest, got.config_digest},
      {"schema_fingerprint", want.schema_fingerprint,
       got.schema_fingerprint},
      {"failure_plan_fingerprint", want.failure_plan_fingerprint,
       got.failure_plan_fingerprint},
      {"run_fingerprint", want.run_fingerprint, got.run_fingerprint},
      {"test_accuracy_bits", DoubleBits(want.test_accuracy),
       DoubleBits(got.test_accuracy)},
      {"score_digest", want.score_digest, got.score_digest},
      {"render_digest", want.render_digest, got.render_digest},
  };
  for (const Field& f : fields) {
    if (f.want != f.got) {
      return Status::FailedPrecondition(
          StrFormat("%s diverged: recorded %s, replayed %s", f.name,
                    Hex64(f.want).c_str(), Hex64(f.got).c_str()));
    }
  }
  return Status::OK();
}

Result<EventReplayResult> ReplayEventsThroughService(
    const std::vector<QueryEvent>& events, serve::QueryService& service) {
  EventReplayResult result;
  for (size_t i = 0; i < events.size(); ++i) {
    const QueryEvent& event = events[i];
    if (event.op == static_cast<uint8_t>(serve::Op::kShutdown)) continue;
    CTFL_ASSIGN_OR_RETURN(serve::Request request,
                          serve::DecodeRequest(event.request));
    const serve::Response response = service.Handle(request);
    ++result.replayed;
    CheckEvent(event, response, i, &result);
  }
  return result;
}

Result<EventReplayResult> ReplayEventsOneShot(
    const std::vector<QueryEvent>& events, const std::string& bundle_path) {
  EventReplayResult result;
  for (size_t i = 0; i < events.size(); ++i) {
    const QueryEvent& event = events[i];
    if (event.op == static_cast<uint8_t>(serve::Op::kShutdown)) continue;
    CTFL_ASSIGN_OR_RETURN(serve::Request request,
                          serve::DecodeRequest(event.request));
    // Fresh engine + service per event: the cold-path leg.
    CTFL_ASSIGN_OR_RETURN(std::unique_ptr<serve::QueryService> service,
                          OpenService(bundle_path));
    const serve::Response response = service->Handle(request);
    ++result.replayed;
    CheckEvent(event, response, i, &result);
  }
  return result;
}

Result<EventReplayResult> ReplayEventsServed(
    const std::vector<QueryEvent>& events, const std::string& bundle_path,
    const std::string& socket_path) {
  if (!serve::ServerSupported()) {
    return Status::Unimplemented("socket server not supported here");
  }
  CTFL_ASSIGN_OR_RETURN(std::unique_ptr<serve::QueryService> service,
                        OpenService(bundle_path));
  serve::ServerConfig server_config;
  server_config.socket_path = socket_path;
  server_config.num_threads = 2;
  serve::Server server(service.get(), std::move(server_config));
  CTFL_RETURN_IF_ERROR(server.Start());

  Result<EventReplayResult> out = [&]() -> Result<EventReplayResult> {
    CTFL_ASSIGN_OR_RETURN(serve::Client client,
                          serve::Client::ConnectUnix(socket_path));
    EventReplayResult result;
    for (size_t i = 0; i < events.size(); ++i) {
      const QueryEvent& event = events[i];
      if (event.op == static_cast<uint8_t>(serve::Op::kShutdown)) continue;
      CTFL_ASSIGN_OR_RETURN(serve::Request request,
                            serve::DecodeRequest(event.request));
      CTFL_ASSIGN_OR_RETURN(serve::Response response, client.Call(request));
      ++result.replayed;
      CheckEvent(event, response, i, &result);
    }
    return result;
  }();

  server.Shutdown();
  server.Wait();
  return out;
}

std::vector<MatrixCell> GenerateMatrix(const ReplayFile& file) {
  std::vector<MatrixCell> cells;
  const bool has_run = file.has_spec && file.has_outcome;
  if (has_run) {
    cells.push_back({"base_replay",
                     "re-run the recorded spec; bitwise outcome match",
                     MatrixCell::Kind::kRun,
                     {}});
    // Flip the Eq. 4 kernel: the implementation knob must not move a
    // single bit, fingerprint included.
    MatrixCell kernel;
    const bool recorded_blocked =
        file.spec.trace_kernel ==
        static_cast<uint8_t>(TraceKernelKind::kBlocked);
    kernel.name = recorded_blocked ? "kernel_legacy" : "kernel_blocked";
    kernel.description = recorded_blocked
                             ? "re-run with the legacy scalar kernel"
                             : "re-run with the blocked kernel";
    kernel.overrides.kernel = static_cast<int>(
        recorded_blocked ? TraceKernelKind::kLegacy
                         : TraceKernelKind::kBlocked);
    cells.push_back(std::move(kernel));
    // Force the scalar trace ISA (and the best available tier when the
    // host has one): the SIMD dispatch knob must not move a single bit,
    // fingerprint included.
    MatrixCell isa_scalar;
    isa_scalar.name = "isa_scalar";
    isa_scalar.description =
        "re-run with the scalar trace ISA; bitwise outcome match";
    isa_scalar.overrides.trace_isa =
        static_cast<int>(TraceIsa::kScalar);
    cells.push_back(std::move(isa_scalar));
    const TraceIsa best = BestAvailableTraceIsa();
    if (best != TraceIsa::kScalar) {
      MatrixCell isa_best;
      isa_best.name = StrFormat("isa_%s", TraceIsaName(best));
      isa_best.description = StrFormat(
          "re-run with the %s trace ISA (sharded x8); bitwise match",
          TraceIsaName(best));
      isa_best.overrides.trace_isa = static_cast<int>(best);
      isa_best.overrides.trace_threads = 8;
      cells.push_back(std::move(isa_best));
    }
    for (int threads : {1, 2, 8}) {
      MatrixCell cell;
      cell.name = StrFormat("threads_%d", threads);
      cell.description =
          StrFormat("re-run with num_threads=%d; bitwise match", threads);
      cell.overrides.num_threads = threads;
      cells.push_back(std::move(cell));
    }
    if (!file.spec.failure_plan.empty()) {
      MatrixCell clean;
      clean.name = "clean";
      clean.description =
          "re-run without the fault plan; run fingerprint must diverge";
      clean.kind = MatrixCell::Kind::kRunDiverge;
      clean.overrides.clean = true;
      cells.push_back(std::move(clean));
    }
    if (file.spec.federated) {
      MatrixCell streamed;
      streamed.name = "streamed";
      streamed.description =
          "re-run emitting a delta log; folded scores must bit-match";
      streamed.kind = MatrixCell::Kind::kRunStreamed;
      cells.push_back(std::move(streamed));
    }
  }
  if (has_run && !file.events.empty()) {
    cells.push_back({"queries_batch",
                     "replay the query stream against one warm service",
                     MatrixCell::Kind::kQueryBatch,
                     {}});
    cells.push_back({"queries_oneshot",
                     "replay the query stream, fresh service per request",
                     MatrixCell::Kind::kQueryOneShot,
                     {}});
    if (serve::ServerSupported()) {
      cells.push_back({"queries_served",
                       "replay the query stream through a socket server",
                       MatrixCell::Kind::kQueryServed,
                       {}});
    }
  }
  return cells;
}

Result<std::vector<CellResult>> RunMatrix(const ReplayFile& file,
                                          const MatrixOptions& options) {
  std::vector<MatrixCell> cells = GenerateMatrix(file);
  if (cells.empty()) {
    return Status::InvalidArgument(
        "replay file has no spec+outcome to build a matrix from");
  }

  const bool need_bundle = [&] {
    for (const MatrixCell& cell : cells) {
      if (cell.kind == MatrixCell::Kind::kQueryBatch ||
          cell.kind == MatrixCell::Kind::kQueryOneShot ||
          cell.kind == MatrixCell::Kind::kQueryServed) {
        if (options.only_cell.empty() || options.only_cell == cell.name) {
          return true;
        }
      }
    }
    return false;
  }();
  const std::string bundle_path =
      options.scratch_dir + "/replay_base.ctflb";
  const std::string socket_path = options.scratch_dir + "/replay.sock";

  // The base spec runs once; its bundle feeds every query cell.
  bool base_ran = false;
  RunOutcome base_outcome;
  Status base_status = Status::OK();
  auto ensure_base = [&]() -> Status {
    if (base_ran) return base_status;
    base_ran = true;
    RunOverrides overrides;
    if (need_bundle) overrides.bundle_out = bundle_path;
    Result<RunArtifacts> artifacts = ExecuteRunSpec(file.spec, overrides);
    if (!artifacts.ok()) {
      base_status = artifacts.status();
    } else {
      base_outcome = artifacts->outcome;
    }
    return base_status;
  };

  std::vector<CellResult> results;
  for (const MatrixCell& cell : cells) {
    if (!options.only_cell.empty() && cell.name != options.only_cell) {
      continue;
    }
    if (cell.kind == MatrixCell::Kind::kQueryServed &&
        !options.include_served) {
      continue;
    }
    CellResult result;
    result.name = cell.name;
    switch (cell.kind) {
      case MatrixCell::Kind::kRun: {
        Status ok;
        if (cell.name == "base_replay") {
          ok = ensure_base();
          if (ok.ok()) ok = CompareOutcomes(file.outcome, base_outcome);
        } else {
          Result<RunArtifacts> artifacts =
              ExecuteRunSpec(file.spec, cell.overrides);
          ok = artifacts.ok()
                   ? CompareOutcomes(file.outcome, artifacts->outcome)
                   : artifacts.status();
        }
        result.pass = ok.ok();
        result.detail =
            ok.ok() ? StrFormat(
                          "bit-identical (fingerprint %s)",
                          Hex64(file.outcome.run_fingerprint).c_str())
                    : ok.ToString();
        break;
      }
      case MatrixCell::Kind::kRunDiverge: {
        Result<RunArtifacts> artifacts =
            ExecuteRunSpec(file.spec, cell.overrides);
        if (!artifacts.ok()) {
          result.detail = artifacts.status().ToString();
          break;
        }
        const RunOutcome& got = artifacts->outcome;
        if (got.failure_plan_fingerprint != 0) {
          result.detail = "clean replay still reports a fault plan";
        } else if (got.run_fingerprint == file.outcome.run_fingerprint) {
          result.detail = StrFormat(
              "run fingerprint %s did not diverge without the fault plan",
              Hex64(got.run_fingerprint).c_str());
        } else {
          result.pass = true;
          result.detail = StrFormat(
              "fingerprint diverged as required (%s -> %s)",
              Hex64(file.outcome.run_fingerprint).c_str(),
              Hex64(got.run_fingerprint).c_str());
        }
        break;
      }
      case MatrixCell::Kind::kRunStreamed: {
        RunOverrides overrides = cell.overrides;
        overrides.delta_log_out =
            options.scratch_dir + "/replay_stream.ctfld";
        Result<RunArtifacts> artifacts =
            ExecuteRunSpec(file.spec, overrides);
        if (!artifacts.ok()) {
          result.detail = artifacts.status().ToString();
          break;
        }
        // The emitter is a pure observer: the instrumented run must still
        // reproduce the recorded outcome bit-for-bit.
        Status same = CompareOutcomes(file.outcome, artifacts->outcome);
        if (!same.ok()) {
          result.detail = "instrumented run diverged: " + same.ToString();
          break;
        }
        Result<stream::DeltaLogContents> log =
            stream::ReadDeltaLog(overrides.delta_log_out);
        if (!log.ok()) {
          result.detail = log.status().ToString();
          break;
        }
        Result<stream::StreamingScorer> scorer =
            stream::StreamingScorer::FromHeader(log->header);
        if (!scorer.ok()) {
          result.detail = scorer.status().ToString();
          break;
        }
        Result<uint64_t> folded = scorer->FoldAll(*log);
        if (!folded.ok()) {
          result.detail = folded.status().ToString();
          break;
        }
        // %.17g round-trips doubles exactly, so byte-equal tables mean
        // bit-identical score vectors (the streamed differential cell).
        const std::string streamed_table = RenderScoreTable(
            artifacts->federation, scorer->micro_scores(),
            scorer->macro_scores());
        if (streamed_table != artifacts->score_table) {
          result.detail =
              "streamed scores diverged from the one-shot score table";
          break;
        }
        result.pass = true;
        result.detail = StrFormat(
            "%llu rounds folded, streamed scores bit-identical",
            static_cast<unsigned long long>(*folded));
        break;
      }
      case MatrixCell::Kind::kQueryBatch:
      case MatrixCell::Kind::kQueryOneShot:
      case MatrixCell::Kind::kQueryServed: {
        Status base = ensure_base();
        if (!base.ok()) {
          result.detail = "base run failed: " + base.ToString();
          break;
        }
        Result<EventReplayResult> replay =
            Status::Internal("unreachable");
        if (cell.kind == MatrixCell::Kind::kQueryBatch) {
          Result<std::unique_ptr<serve::QueryService>> service =
              OpenService(bundle_path);
          replay = service.ok() ? ReplayEventsThroughService(file.events,
                                                             **service)
                                : Result<EventReplayResult>(
                                      service.status());
        } else if (cell.kind == MatrixCell::Kind::kQueryOneShot) {
          replay = ReplayEventsOneShot(file.events, bundle_path);
        } else {
          replay =
              ReplayEventsServed(file.events, bundle_path, socket_path);
        }
        if (!replay.ok()) {
          result.detail = replay.status().ToString();
          break;
        }
        result.pass = replay->ok();
        result.detail =
            replay->ok()
                ? StrFormat("%zu events replayed, %zu digests matched",
                            replay->replayed, replay->digest_checked)
                : replay->detail;
        break;
      }
    }
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace replay
}  // namespace ctfl
