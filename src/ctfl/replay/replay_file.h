#ifndef CTFL_REPLAY_REPLAY_FILE_H_
#define CTFL_REPLAY_REPLAY_FILE_H_

// Trace-driven record/replay container (DESIGN.md §14). One replay file
// captures everything needed to reproduce a CTFL run and its query
// traffic bit-for-bit:
//
//   spec     how to re-create the inputs and the semantic run
//            configuration — dataset generation (name, n, seed) or the
//            CSV paths + content digests of a CLI run, the partition
//            knobs, and every CtflConfig knob that can move a score
//   outcome  what the recorded run produced: config/schema/failure-plan
//            fingerprints, the run fingerprint, the exact micro/macro
//            score vectors, and digests of the canonical score rendering
//   events   the query stream: each RELATED / RELATED_FOR_TEST /
//            EVALUATE / STATS request as its encoded wire payload
//            (serve/protocol.h) plus a digest of the response bytes
//
// File layout (version 1, little-endian):
//
//   magic "CTFLRPLY" | u32 version | u32 section_count
//   sections: { str name | str payload | u32 crc32(payload) }*
//
// The reader is strict about integrity (magic, CRC per section, bounded
// lengths) and tolerant about evolution, mirroring the RunReport JSON
// contract: a version newer than kReplayVersion is rejected with a clear
// Status, unknown section names and unknown trailing bytes inside a known
// section are ignored, and serialize -> parse -> serialize of a file this
// writer produced is byte-identical (pinned by tests/replay_test.cc and
// the goldens under tests/data/).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ctfl/serve/protocol.h"
#include "ctfl/util/result.h"

namespace ctfl {
namespace replay {

inline constexpr uint32_t kReplayVersion = 1;
inline constexpr char kReplayMagic[] = "CTFLRPLY";  // 8 bytes, no NUL

/// Where a replayed run gets its train/test data from.
enum class DataSource : uint8_t {
  kGenerate = 0,  ///< regenerate from (dataset, n, seed) — self-contained
  kCsv = 1,       ///< reload the recorded CSV paths (content-digest checked)
};

/// Everything needed to re-execute the recorded run deterministically.
/// Mirrors the `ctfl score` flag surface: thread/kernel knobs are recorded
/// for fidelity but never move scores, so the differential matrix can vary
/// them freely against one recorded outcome.
struct RunSpec {
  DataSource source = DataSource::kGenerate;
  std::string dataset = "adult";  ///< schema + generator name
  // kGenerate: benchmark generator inputs.
  uint64_t train_n = 600;
  uint64_t train_seed = 7;
  uint64_t test_n = 150;
  uint64_t test_seed = 8;
  // kCsv: recorded input files; digests pin the exact bytes so a replay
  // against edited data fails loudly instead of "reproducing" noise.
  std::string train_path;
  std::string test_path;
  uint64_t train_csv_digest = 0;
  uint64_t test_csv_digest = 0;
  // Partition.
  uint32_t participants = 3;
  double alpha = 0.8;
  bool skew_label = false;
  // Semantic run knobs (ctfl_cli score surface).
  uint64_t seed = 42;
  bool federated = false;
  uint32_t rounds = 5;
  uint32_t local_epochs = 2;
  uint32_t epochs = 20;
  uint32_t width = 96;
  double tau_w = 0.9;
  bool secure_agg = false;
  std::string failure_plan;  ///< FailurePlan::Parse spec ("" = fault-free)
  uint32_t retry_budget = 1;
  // Recorded-but-score-neutral knobs (DESIGN.md §9/§10).
  uint8_t trace_kernel = 1;  ///< TraceKernelKind as recorded (1 = blocked)
  int64_t num_threads = -1;
};

/// What the recorded run produced — the bit-identity contract every
/// replay and every differential-matrix cell is checked against.
struct RunOutcome {
  uint64_t config_digest = 0;
  uint64_t schema_fingerprint = 0;
  uint64_t failure_plan_fingerprint = 0;
  uint64_t run_fingerprint = 0;
  double test_accuracy = 0.0;
  std::vector<double> micro;
  std::vector<double> macro;
  /// Order-sensitive digest over the micro+macro IEEE-754 bit patterns.
  uint64_t score_digest = 0;
  /// Digest of RenderScoreTable() — the canonical %.17g score rendering a
  /// replay must reproduce byte-identically.
  uint64_t render_digest = 0;
};

/// One captured request/response pair of the query stream.
struct QueryEvent {
  uint8_t op = 0;             ///< serve::Op byte (redundant index, cheap)
  std::string request;        ///< serve::EncodeRequest payload, verbatim
  uint64_t response_digest = 0;  ///< ResponseDigest() of the reply
};

struct ReplayFile {
  uint32_t version = kReplayVersion;
  bool has_spec = false;
  RunSpec spec;
  bool has_outcome = false;
  RunOutcome outcome;
  std::vector<QueryEvent> events;
};

/// FNV-1a 64 over raw bytes; the digest primitive of this subsystem.
uint64_t HashBytes(std::string_view bytes);

/// Order-sensitive digest over the IEEE-754 bit patterns of both vectors.
uint64_t ScoreDigest(const std::vector<double>& micro,
                     const std::vector<double>& macro);

/// Canonical digest of a response: the encoded bytes with request_id
/// zeroed, so the same answer digests identically regardless of which
/// connection or ordinal asked.
uint64_t ResponseDigest(const serve::Response& response);

/// True when `op` is a pure function of the bundle (RELATED,
/// RELATED_FOR_TEST, EVALUATE): its response digest is comparable across
/// replays. STATS/SHUTDOWN answers depend on service counters and are
/// replayed but never digest-checked.
bool OpIsDigestStable(uint8_t op);

std::string EncodeReplay(const ReplayFile& file);
Result<ReplayFile> DecodeReplay(std::string_view bytes);

Status WriteReplayFile(const ReplayFile& file, const std::string& path);
Result<ReplayFile> ReadReplayFile(const std::string& path);

}  // namespace replay
}  // namespace ctfl

#endif  // CTFL_REPLAY_REPLAY_FILE_H_
