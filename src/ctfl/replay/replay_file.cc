#include "ctfl/replay/replay_file.h"

#include <cstring>
#include <fstream>

#include "ctfl/store/bundle.h"
#include "ctfl/util/string_util.h"
#include "ctfl/util/wire.h"

namespace ctfl {
namespace replay {
namespace {

constexpr size_t kMagicBytes = 8;
/// Upper bound on one section payload; guards length prefixes against
/// corrupt files (the largest real section — a long query stream — stays
/// far below this).
constexpr uint32_t kMaxSectionBytes = 256u << 20;

std::string EncodeSpec(const RunSpec& spec) {
  wire::Writer w;
  w.U8(static_cast<uint8_t>(spec.source));
  w.Str(spec.dataset);
  w.U64(spec.train_n);
  w.U64(spec.train_seed);
  w.U64(spec.test_n);
  w.U64(spec.test_seed);
  w.Str(spec.train_path);
  w.Str(spec.test_path);
  w.U64(spec.train_csv_digest);
  w.U64(spec.test_csv_digest);
  w.U32(spec.participants);
  w.F64(spec.alpha);
  w.U8(spec.skew_label ? 1 : 0);
  w.U64(spec.seed);
  w.U8(spec.federated ? 1 : 0);
  w.U32(spec.rounds);
  w.U32(spec.local_epochs);
  w.U32(spec.epochs);
  w.U32(spec.width);
  w.F64(spec.tau_w);
  w.U8(spec.secure_agg ? 1 : 0);
  w.Str(spec.failure_plan);
  w.U32(spec.retry_budget);
  w.U8(spec.trace_kernel);
  w.I64(spec.num_threads);
  return w.Take();
}

// Section decoders deliberately do NOT ExpectEnd(): unknown trailing
// fields appended by a future writer are ignored, exactly like unknown
// JSON fields in a RunReport. Integrity is the section CRC's job.
Status DecodeSpec(std::string_view payload, RunSpec* spec) {
  wire::Reader r(payload, "replay spec");
  uint8_t source = 0, flag = 0;
  CTFL_RETURN_IF_ERROR(r.U8(&source));
  if (source > static_cast<uint8_t>(DataSource::kCsv)) {
    return Status::InvalidArgument(
        StrFormat("replay spec has unknown data source %u", source));
  }
  spec->source = static_cast<DataSource>(source);
  CTFL_RETURN_IF_ERROR(r.Str(&spec->dataset));
  CTFL_RETURN_IF_ERROR(r.U64(&spec->train_n));
  CTFL_RETURN_IF_ERROR(r.U64(&spec->train_seed));
  CTFL_RETURN_IF_ERROR(r.U64(&spec->test_n));
  CTFL_RETURN_IF_ERROR(r.U64(&spec->test_seed));
  CTFL_RETURN_IF_ERROR(r.Str(&spec->train_path));
  CTFL_RETURN_IF_ERROR(r.Str(&spec->test_path));
  CTFL_RETURN_IF_ERROR(r.U64(&spec->train_csv_digest));
  CTFL_RETURN_IF_ERROR(r.U64(&spec->test_csv_digest));
  CTFL_RETURN_IF_ERROR(r.U32(&spec->participants));
  CTFL_RETURN_IF_ERROR(r.F64(&spec->alpha));
  CTFL_RETURN_IF_ERROR(r.U8(&flag));
  spec->skew_label = flag != 0;
  CTFL_RETURN_IF_ERROR(r.U64(&spec->seed));
  CTFL_RETURN_IF_ERROR(r.U8(&flag));
  spec->federated = flag != 0;
  CTFL_RETURN_IF_ERROR(r.U32(&spec->rounds));
  CTFL_RETURN_IF_ERROR(r.U32(&spec->local_epochs));
  CTFL_RETURN_IF_ERROR(r.U32(&spec->epochs));
  CTFL_RETURN_IF_ERROR(r.U32(&spec->width));
  CTFL_RETURN_IF_ERROR(r.F64(&spec->tau_w));
  CTFL_RETURN_IF_ERROR(r.U8(&flag));
  spec->secure_agg = flag != 0;
  CTFL_RETURN_IF_ERROR(r.Str(&spec->failure_plan));
  CTFL_RETURN_IF_ERROR(r.U32(&spec->retry_budget));
  CTFL_RETURN_IF_ERROR(r.U8(&spec->trace_kernel));
  CTFL_RETURN_IF_ERROR(r.I64(&spec->num_threads));
  return Status::OK();
}

std::string EncodeOutcome(const RunOutcome& outcome) {
  wire::Writer w;
  w.U64(outcome.config_digest);
  w.U64(outcome.schema_fingerprint);
  w.U64(outcome.failure_plan_fingerprint);
  w.U64(outcome.run_fingerprint);
  w.F64(outcome.test_accuracy);
  w.U32(static_cast<uint32_t>(outcome.micro.size()));
  for (double v : outcome.micro) w.F64(v);
  w.U32(static_cast<uint32_t>(outcome.macro.size()));
  for (double v : outcome.macro) w.F64(v);
  w.U64(outcome.score_digest);
  w.U64(outcome.render_digest);
  return w.Take();
}

Status DecodeOutcome(std::string_view payload, RunOutcome* outcome) {
  wire::Reader r(payload, "replay outcome");
  CTFL_RETURN_IF_ERROR(r.U64(&outcome->config_digest));
  CTFL_RETURN_IF_ERROR(r.U64(&outcome->schema_fingerprint));
  CTFL_RETURN_IF_ERROR(r.U64(&outcome->failure_plan_fingerprint));
  CTFL_RETURN_IF_ERROR(r.U64(&outcome->run_fingerprint));
  CTFL_RETURN_IF_ERROR(r.F64(&outcome->test_accuracy));
  uint32_t n = 0;
  CTFL_RETURN_IF_ERROR(r.U32(&n));
  if (n > kMaxSectionBytes / sizeof(double)) {
    return Status::InvalidArgument("replay outcome micro count implausible");
  }
  outcome->micro.resize(n);
  for (double& v : outcome->micro) CTFL_RETURN_IF_ERROR(r.F64(&v));
  CTFL_RETURN_IF_ERROR(r.U32(&n));
  if (n > kMaxSectionBytes / sizeof(double)) {
    return Status::InvalidArgument("replay outcome macro count implausible");
  }
  outcome->macro.resize(n);
  for (double& v : outcome->macro) CTFL_RETURN_IF_ERROR(r.F64(&v));
  CTFL_RETURN_IF_ERROR(r.U64(&outcome->score_digest));
  CTFL_RETURN_IF_ERROR(r.U64(&outcome->render_digest));
  return Status::OK();
}

std::string EncodeEvents(const std::vector<QueryEvent>& events) {
  wire::Writer w;
  w.U32(static_cast<uint32_t>(events.size()));
  for (const QueryEvent& event : events) {
    w.U8(event.op);
    w.Str(event.request);
    w.U64(event.response_digest);
  }
  return w.Take();
}

Status DecodeEvents(std::string_view payload,
                    std::vector<QueryEvent>* events) {
  wire::Reader r(payload, "replay events");
  uint32_t count = 0;
  CTFL_RETURN_IF_ERROR(r.U32(&count));
  // Each event costs at least 13 bytes on the wire; anything claiming
  // more entries than the payload could hold is corruption, not traffic.
  if (count > payload.size() / 13 + 1) {
    return Status::InvalidArgument(
        StrFormat("replay events count %u exceeds payload capacity", count));
  }
  events->clear();
  events->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    QueryEvent event;
    CTFL_RETURN_IF_ERROR(r.U8(&event.op));
    CTFL_RETURN_IF_ERROR(r.Str(&event.request));
    CTFL_RETURN_IF_ERROR(r.U64(&event.response_digest));
    events->push_back(std::move(event));
  }
  return Status::OK();
}

}  // namespace

uint64_t HashBytes(std::string_view bytes) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a 64 offset basis
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t ScoreDigest(const std::vector<double>& micro,
                     const std::vector<double>& macro) {
  wire::Writer w;
  w.U32(static_cast<uint32_t>(micro.size()));
  for (double v : micro) w.F64(v);
  w.U32(static_cast<uint32_t>(macro.size()));
  for (double v : macro) w.F64(v);
  const std::string bytes = w.Take();
  return HashBytes(bytes);
}

uint64_t ResponseDigest(const serve::Response& response) {
  serve::Response canonical = response;
  canonical.request_id = 0;
  return HashBytes(EncodeResponse(canonical));
}

bool OpIsDigestStable(uint8_t op) {
  return op == static_cast<uint8_t>(serve::Op::kRelated) ||
         op == static_cast<uint8_t>(serve::Op::kRelatedForTest) ||
         op == static_cast<uint8_t>(serve::Op::kEvaluate);
}

std::string EncodeReplay(const ReplayFile& file) {
  wire::Writer w;
  // Sections in fixed order so serialize -> parse -> serialize is the
  // identity on files this writer produced.
  std::vector<std::pair<std::string, std::string>> sections;
  if (file.has_spec) sections.emplace_back("spec", EncodeSpec(file.spec));
  if (file.has_outcome) {
    sections.emplace_back("outcome", EncodeOutcome(file.outcome));
  }
  sections.emplace_back("events", EncodeEvents(file.events));

  std::string out(kReplayMagic, kMagicBytes);
  wire::Writer header;
  header.U32(file.version);
  header.U32(static_cast<uint32_t>(sections.size()));
  for (auto& [name, payload] : sections) {
    header.Str(name);
    header.Str(payload);
    header.U32(store::Crc32(payload.data(), payload.size()));
  }
  out += header.Take();
  return out;
}

Result<ReplayFile> DecodeReplay(std::string_view bytes) {
  if (bytes.size() < kMagicBytes ||
      std::memcmp(bytes.data(), kReplayMagic, kMagicBytes) != 0) {
    return Status::InvalidArgument("not a CTFL replay file (bad magic)");
  }
  wire::Reader r(bytes.substr(kMagicBytes), "replay file");
  ReplayFile file;
  CTFL_RETURN_IF_ERROR(r.U32(&file.version));
  if (file.version == 0 || file.version > kReplayVersion) {
    return Status::InvalidArgument(StrFormat(
        "replay file version %u is newer than the supported version %u; "
        "rebuild ctfl_replay or re-record the trace",
        file.version, kReplayVersion));
  }
  uint32_t section_count = 0;
  CTFL_RETURN_IF_ERROR(r.U32(&section_count));
  for (uint32_t i = 0; i < section_count; ++i) {
    std::string name, payload;
    CTFL_RETURN_IF_ERROR(r.Str(&name));
    CTFL_RETURN_IF_ERROR(r.Str(&payload));
    if (payload.size() > kMaxSectionBytes) {
      return Status::InvalidArgument(
          StrFormat("replay section '%s' implausibly large (%zu bytes)",
                    name.c_str(), payload.size()));
    }
    uint32_t crc = 0;
    CTFL_RETURN_IF_ERROR(r.U32(&crc));
    if (crc != store::Crc32(payload.data(), payload.size())) {
      return Status::IoError(
          StrFormat("replay section '%s' failed its CRC check",
                    name.c_str()));
    }
    if (name == "spec") {
      CTFL_RETURN_IF_ERROR(DecodeSpec(payload, &file.spec));
      file.has_spec = true;
    } else if (name == "outcome") {
      CTFL_RETURN_IF_ERROR(DecodeOutcome(payload, &file.outcome));
      file.has_outcome = true;
    } else if (name == "events") {
      CTFL_RETURN_IF_ERROR(DecodeEvents(payload, &file.events));
    }
    // Unknown section names: integrity-checked above, then ignored.
  }
  CTFL_RETURN_IF_ERROR(r.ExpectEnd("replay file"));
  return file;
}

Status WriteReplayFile(const ReplayFile& file, const std::string& path) {
  const std::string bytes = EncodeReplay(file);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) return Status::IoError("short write to " + path);
  return Status::OK();
}

Result<ReplayFile> ReadReplayFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open replay file " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    return Status::IoError("read failure on replay file " + path);
  }
  return DecodeReplay(bytes);
}

}  // namespace replay
}  // namespace ctfl
