#include "ctfl/replay/recorder.h"

#include <utility>

namespace ctfl {
namespace replay {

void ReplayRecorder::CaptureRun(const RunSpec& spec,
                                const RunOutcome& outcome) {
  std::lock_guard<std::mutex> lock(mu_);
  file_.spec = spec;
  file_.has_spec = true;
  file_.outcome = outcome;
  file_.has_outcome = true;
}

void ReplayRecorder::RecordEvent(const serve::Request& request,
                                 const serve::Response& response) {
  QueryEvent event;
  event.op = static_cast<uint8_t>(request.op);
  event.request = serve::EncodeRequest(request);
  event.response_digest = ResponseDigest(response);
  std::lock_guard<std::mutex> lock(mu_);
  file_.events.push_back(std::move(event));
}

std::function<void(const serve::Request&, const serve::Response&)>
ReplayRecorder::Tap() {
  return [this](const serve::Request& request,
                const serve::Response& response) {
    RecordEvent(request, response);
  };
}

store::RelatedResult ReplayRecorder::RecordRelated(
    const store::QueryEngine& engine, const Instance& instance,
    const store::QueryOptions& options) {
  serve::Request request;
  request.op = serve::Op::kRelated;
  request.related.instance = instance;
  request.related.options = options;

  serve::Response response;
  response.op = request.op;
  response.related = engine.Related(instance, options);

  RecordEvent(request, response);
  return response.related;
}

store::RelatedResult ReplayRecorder::RecordRelatedForTest(
    const store::QueryEngine& engine, uint64_t test_index,
    const store::QueryOptions& options) {
  serve::Request request;
  request.op = serve::Op::kRelatedForTest;
  request.related_for_test.test_index = test_index;
  request.related_for_test.options = options;

  serve::Response response;
  response.op = request.op;
  response.related =
      engine.RelatedForTest(static_cast<size_t>(test_index), options);

  RecordEvent(request, response);
  return response.related;
}

store::QueryReport ReplayRecorder::RecordEvaluate(
    const store::QueryEngine& engine, const store::EvalOptions& options) {
  serve::Request request;
  request.op = serve::Op::kEvaluate;
  request.evaluate.options = options;

  // Mirror QueryService::HandleEvaluate field-for-field: the digest must
  // match what a served replay of this request will produce.
  serve::Response response;
  response.op = request.op;
  response.report = engine.Evaluate(options);
  response.origin_tau_w = engine.origin_tau_w();
  response.origin_delta = engine.origin_delta();
  response.origin_micro = engine.bundle().meta.micro_scores;
  response.origin_macro = engine.bundle().meta.macro_scores;

  RecordEvent(request, response);
  return response.report;
}

ReplayFile ReplayRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return file_;
}

size_t ReplayRecorder::num_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return file_.events.size();
}

Status ReplayRecorder::WriteTo(const std::string& path) const {
  return WriteReplayFile(Snapshot(), path);
}

}  // namespace replay
}  // namespace ctfl
