#ifndef CTFL_STREAM_SCORER_H_
#define CTFL_STREAM_SCORER_H_

// StreamingScorer: live per-participant contribution scores folded
// forward one RoundDelta at a time, in O(delta) work per round instead of
// O(run).
//
// Why the fold is bit-exact (DESIGN.md §15): micro and macro scores are
// pure functions of the tracing pass (Eq. 5/6 over Eq. 4 matches), and
// the tracing pass is a pure function of (rule weights, activation
// uploads, test forwards). A RoundDelta carries exactly the changes to
// that state — model parameters as XOR of IEEE-754 bit patterns,
// activation/prediction changes as flip lists — so after folding round r
// the scorer's state is bit-identical to what the one-shot pipeline would
// compute from scratch at round r, and re-running the (identical) trace +
// allocation code on identical bits yields identical scores. The fold
// skips training and every forward pass (the dominant costs); a fully
// degraded round's empty delta folds in O(1) without retracing.
//
// StreamedEngine pairs a scorer with a read-only store::QueryEngine: open
// a bundle plus its delta chain, fold on attach, poll for appended
// rounds, and verify that the folded scores bit-match the bundle
// snapshot.

#include <cstdint>
#include <string>
#include <vector>

#include "ctfl/core/tracer.h"
#include "ctfl/store/query_engine.h"
#include "ctfl/stream/delta_log.h"

namespace ctfl {
namespace stream {

/// Execution knobs of the streaming scorer (never change results,
/// DESIGN.md §9/§10).
struct ScorerOptions {
  TraceKernelKind kernel = TraceKernelKind::kBlocked;
  TraceIsa isa = CurrentTraceIsa();
  int trace_threads = 1;
  /// Worker threads of the per-key tracing loop (0 = hardware).
  int num_threads = 0;
};

class StreamingScorer {
 public:
  using Options = ScorerOptions;

  /// Restores the round-0 state from a decoded delta-log header and
  /// computes the round-0 scores. Fails on any shape mismatch between the
  /// embedded model, uploads and forwards.
  static Result<StreamingScorer> FromHeader(DeltaHeader header,
                                            Options options = {});

  /// Folds one round. Rounds must arrive consecutively (round ==
  /// rounds_folded() + 1). An empty delta (fully degraded round) is an
  /// O(1) carry-over; otherwise the model/upload/forward state is patched
  /// in O(delta) and the scores re-traced with the blocked/SIMD kernel.
  Status Fold(const RoundDelta& delta);

  /// Folds every round of `contents` beyond rounds_folded() — idempotent
  /// over already-folded prefixes, so pollers can re-read a growing log
  /// and call this repeatedly. Returns the number of rounds newly folded.
  Result<uint64_t> FoldAll(const DeltaLogContents& contents);

  uint64_t rounds_folded() const { return rounds_folded_; }
  size_t num_participants() const { return labels_.size(); }
  /// Training records held by participant `p` (render parity with the
  /// one-shot score table).
  size_t participant_records(size_t p) const { return labels_[p].size(); }
  const std::vector<double>& micro_scores() const { return micro_scores_; }
  const std::vector<double>& macro_scores() const { return macro_scores_; }
  const std::vector<std::string>& participant_names() const {
    return participant_names_;
  }
  /// Full trace of the last fold (accuracies, per-test related sets, ...).
  const TraceResult& trace() const { return last_trace_; }
  const LogicalNet& model() const { return net_; }
  uint64_t config_digest() const { return config_digest_; }
  uint64_t failure_plan_fingerprint() const {
    return failure_plan_fingerprint_;
  }

 private:
  StreamingScorer(LogicalNet net, TracerConfig tracer_config)
      : net_(std::move(net)), tracer_config_(tracer_config) {}

  /// Fresh trace + allocation over the current state (the O(delta) fold's
  /// only non-constant phase: Eq. 4 must re-match because every round
  /// moves rule weights, but training and all forward passes are skipped).
  Status Rescore();

  LogicalNet net_;
  TracerConfig tracer_config_;
  int macro_delta_ = 1;
  uint64_t config_digest_ = 0;
  uint64_t failure_plan_fingerprint_ = 0;
  std::vector<std::string> participant_names_;

  // Live state, patched by each fold.
  std::vector<double> params_;
  std::vector<std::vector<uint8_t>> labels_;
  std::vector<std::vector<Bitset>> activations_;
  std::vector<TestForward> forwards_;

  uint64_t rounds_folded_ = 0;
  TraceResult last_trace_;
  std::vector<double> micro_scores_;
  std::vector<double> macro_scores_;
};

/// A read-only QueryEngine over a bundle snapshot plus the streaming
/// scorer of its delta chain. Open() folds every round already in the log
/// ("fold on attach"); PollAppended() re-reads the log and folds rounds
/// appended since — the serve layer's between-rounds update path.
class StreamedEngine {
 public:
  static Result<StreamedEngine> Open(const std::string& bundle_path,
                                     const std::string& delta_log_path,
                                     StreamingScorer::Options options = {});

  const store::QueryEngine& engine() const { return engine_; }
  const StreamingScorer& scorer() const { return scorer_; }
  uint64_t rounds_folded() const { return scorer_.rounds_folded(); }

  /// Re-reads the delta log and folds any rounds appended since the last
  /// call. Returns the number of rounds newly folded (0 = no growth).
  Result<uint64_t> PollAppended();

  /// Checks the folded final scores bit-match the bundle snapshot's —
  /// the end-to-end integrity check that the log's chain reproduces the
  /// run the bundle persisted.
  Status VerifyAgainstBundle() const;

 private:
  StreamedEngine(store::QueryEngine engine, StreamingScorer scorer,
                 std::string log_path)
      : engine_(std::move(engine)),
        scorer_(std::move(scorer)),
        log_path_(std::move(log_path)) {}

  store::QueryEngine engine_;
  StreamingScorer scorer_;
  std::string log_path_;
};

}  // namespace stream
}  // namespace ctfl

#endif  // CTFL_STREAM_SCORER_H_
