#include "ctfl/stream/emitter.h"

#include <bit>
#include <utility>

#include "ctfl/telemetry/metrics.h"
#include "ctfl/telemetry/trace.h"

namespace ctfl {
namespace stream {

DeltaLogEmitter::DeltaLogEmitter(std::string path,
                                 const Federation* federation,
                                 const Dataset* test,
                                 const CtflConfig* config)
    : path_(std::move(path)),
      federation_(federation),
      test_(test),
      config_(config) {}

void DeltaLogEmitter::Attach(FedAvgConfig* fedavg) {
  auto previous = fedavg->model_observer;
  fedavg->model_observer = [this, previous](
                               int round, const LogicalNet& global,
                               const telemetry::RoundTelemetry& rt) {
    if (previous) previous(round, global, rt);
    Observe(round, global, rt);
  };
}

void DeltaLogEmitter::Observe(int round, const LogicalNet& global,
                              const telemetry::RoundTelemetry& rt) {
  if (!status_.ok()) return;  // sticky: one failure stops the log
  const Status emitted =
      round == 0 ? EmitHeader(global) : EmitRound(round, global, rt);
  if (!emitted.ok()) status_ = emitted;
}

std::vector<store::TestRecord> DeltaLogEmitter::ComputeForwards(
    const LogicalNet& global) const {
  std::vector<store::TestRecord> forwards(test_->size());
  for (size_t t = 0; t < test_->size(); ++t) {
    const Instance& inst = test_->instance(t);
    forwards[t].label = static_cast<uint8_t>(inst.label);
    forwards[t].predicted = static_cast<uint8_t>(global.Predict(inst));
    forwards[t].activation = global.RuleActivations(inst);
  }
  return forwards;
}

Status DeltaLogEmitter::EmitHeader(const LogicalNet& global) {
  CTFL_SPAN("ctfl.stream.emit_header");
  CTFL_ASSIGN_OR_RETURN(DeltaLogWriter writer,
                        DeltaLogWriter::Create(path_));
  writer_ = std::move(writer);

  DeltaHeader header;
  header.config_digest = CtflConfigDigest(*config_);
  header.schema = global.schema();
  header.schema_fingerprint = SchemaFingerprint(*global.schema());
  header.failure_plan_fingerprint = config_->fedavg.failure.Fingerprint();
  header.num_rules = static_cast<uint32_t>(global.num_rules());
  header.tau_w = config_->tracer.tau_w;
  header.use_dedup = config_->tracer.use_dedup;
  header.use_max_miner = config_->tracer.use_max_miner;
  header.min_rule_weight = config_->tracer.min_rule_weight;
  header.dp_epsilon = config_->tracer.dp_epsilon;
  header.dp_seed = config_->tracer.dp_seed;
  header.macro_delta = config_->macro_delta;
  header.net_config = config_->net;
  header.params = global.GetParameters();

  // Round-0 uploads, DP-perturbed exactly as the tracer would compute
  // them — the privacy boundary of a bundle snapshot, per round.
  prev_activations_ = ContributionTracer::ComputeUploadActivations(
      global, *federation_, config_->tracer);
  prev_forwards_ = ComputeForwards(global);
  prev_params_ = header.params;

  header.participant_names.reserve(federation_->size());
  header.participants.reserve(federation_->size());
  for (size_t p = 0; p < federation_->size(); ++p) {
    const Participant& participant = (*federation_)[p];
    header.participant_names.push_back(participant.name);
    store::ParticipantRecords records;
    records.labels.reserve(participant.data.size());
    for (size_t i = 0; i < participant.data.size(); ++i) {
      records.labels.push_back(
          static_cast<uint8_t>(participant.data.instance(i).label));
    }
    records.activations = prev_activations_[p];
    header.participants.push_back(std::move(records));
  }
  header.tests = prev_forwards_;
  return writer_->AppendHeader(header);
}

Status DeltaLogEmitter::EmitRound(int round, const LogicalNet& global,
                                  const telemetry::RoundTelemetry& rt) {
  CTFL_SPAN("ctfl.stream.emit_round");
  if (!writer_.has_value()) {
    return Status::FailedPrecondition(
        "delta-log round observed before the round-0 header");
  }

  RoundDelta delta;
  delta.round = static_cast<uint32_t>(round);
  delta.degraded = rt.degraded;
  delta.clients_trained = static_cast<uint32_t>(rt.clients_trained);
  delta.clients_dropped = static_cast<uint32_t>(rt.clients_dropped);
  delta.retries = static_cast<uint32_t>(rt.retries);

  std::vector<double> params = global.GetParameters();
  if (params.size() != prev_params_.size()) {
    return Status::Internal("delta-log emitter: parameter count changed");
  }
  for (size_t i = 0; i < params.size(); ++i) {
    const uint64_t bits = std::bit_cast<uint64_t>(params[i]) ^
                          std::bit_cast<uint64_t>(prev_params_[i]);
    if (bits != 0) {
      delta.param_xors.emplace_back(static_cast<uint32_t>(i), bits);
    }
  }

  std::vector<std::vector<Bitset>> activations =
      ContributionTracer::ComputeUploadActivations(global, *federation_,
                                                   config_->tracer);
  for (size_t p = 0; p < activations.size(); ++p) {
    for (size_t i = 0; i < activations[p].size(); ++i) {
      const std::vector<uint64_t>& old_words =
          prev_activations_[p][i].words();
      const std::vector<uint64_t>& new_words = activations[p][i].words();
      for (size_t wi = 0; wi < new_words.size(); ++wi) {
        uint64_t diff = old_words[wi] ^ new_words[wi];
        while (diff != 0) {
          const int bit = std::countr_zero(diff);
          diff &= diff - 1;
          delta.train_flips.push_back(
              {static_cast<uint32_t>(p), static_cast<uint32_t>(i),
               static_cast<uint32_t>(wi * 64 + static_cast<size_t>(bit))});
        }
      }
    }
  }

  std::vector<store::TestRecord> forwards = ComputeForwards(global);
  for (size_t t = 0; t < forwards.size(); ++t) {
    if (forwards[t].predicted != prev_forwards_[t].predicted) {
      delta.predicted_flips.push_back(static_cast<uint32_t>(t));
    }
    const std::vector<uint64_t>& old_words =
        prev_forwards_[t].activation.words();
    const std::vector<uint64_t>& new_words = forwards[t].activation.words();
    for (size_t wi = 0; wi < new_words.size(); ++wi) {
      uint64_t diff = old_words[wi] ^ new_words[wi];
      while (diff != 0) {
        const int bit = std::countr_zero(diff);
        diff &= diff - 1;
        delta.test_activation_flips.push_back(
            {static_cast<uint32_t>(t),
             static_cast<uint32_t>(wi * 64 + static_cast<size_t>(bit))});
      }
    }
  }

  CTFL_RETURN_IF_ERROR(writer_->AppendRound(delta));
  prev_params_ = std::move(params);
  prev_activations_ = std::move(activations);
  prev_forwards_ = std::move(forwards);
  ++rounds_emitted_;
  static telemetry::Counter& emitted =
      telemetry::MetricsRegistry::Global().GetCounter(
          "ctfl.stream.rounds_emitted");
  emitted.Add(1);
  return Status::OK();
}

}  // namespace stream
}  // namespace ctfl
