#include "ctfl/stream/scorer.h"

#include <bit>
#include <utility>

#include "ctfl/core/allocation.h"
#include "ctfl/telemetry/metrics.h"
#include "ctfl/telemetry/trace.h"
#include "ctfl/util/string_util.h"

namespace ctfl {
namespace stream {
namespace {

telemetry::Counter& FoldsCounter() {
  static telemetry::Counter& c =
      telemetry::MetricsRegistry::Global().GetCounter(
          "ctfl.stream.rounds_folded");
  return c;
}
telemetry::Counter& EmptyFoldsCounter() {
  static telemetry::Counter& c =
      telemetry::MetricsRegistry::Global().GetCounter(
          "ctfl.stream.empty_folds");
  return c;
}

}  // namespace

Result<StreamingScorer> StreamingScorer::FromHeader(DeltaHeader header,
                                                    Options options) {
  if (header.schema == nullptr) {
    return Status::InvalidArgument("delta-log header has no schema");
  }
  LogicalNet net(header.schema, header.net_config);
  if (net.NumParameters() != header.params.size()) {
    return Status::InvalidArgument(StrFormat(
        "delta-log parameter count %zu does not match the "
        "architecture/schema (%zu expected)",
        header.params.size(), net.NumParameters()));
  }
  net.SetParameters(header.params);
  if (net.num_rules() != static_cast<int>(header.num_rules)) {
    return Status::InvalidArgument(
        "delta-log rule count does not match the restored model");
  }

  TracerConfig tracer_config;
  tracer_config.tau_w = header.tau_w;
  tracer_config.use_dedup = header.use_dedup;
  tracer_config.use_max_miner = header.use_max_miner;
  tracer_config.min_rule_weight = header.min_rule_weight;
  // dp_epsilon/dp_seed are carried for provenance only: the uploads in
  // the log were perturbed client-side before they were written, and the
  // borrowing tracer adopts them verbatim.
  tracer_config.dp_epsilon = header.dp_epsilon;
  tracer_config.dp_seed = header.dp_seed;
  tracer_config.kernel = options.kernel;
  tracer_config.isa = options.isa;
  tracer_config.trace_threads = options.trace_threads;
  tracer_config.num_threads = options.num_threads;

  StreamingScorer scorer(std::move(net), tracer_config);
  scorer.macro_delta_ = header.macro_delta;
  scorer.config_digest_ = header.config_digest;
  scorer.failure_plan_fingerprint_ = header.failure_plan_fingerprint;
  scorer.participant_names_ = std::move(header.participant_names);
  scorer.params_ = std::move(header.params);
  scorer.labels_.reserve(header.participants.size());
  scorer.activations_.reserve(header.participants.size());
  for (store::ParticipantRecords& p : header.participants) {
    if (p.labels.size() != p.activations.size()) {
      return Status::InvalidArgument(
          "delta-log participant label/activation counts disagree");
    }
    scorer.labels_.push_back(std::move(p.labels));
    scorer.activations_.push_back(std::move(p.activations));
  }
  scorer.forwards_.reserve(header.tests.size());
  for (store::TestRecord& t : header.tests) {
    TestForward fwd;
    fwd.label = t.label;
    fwd.predicted = t.predicted;
    fwd.activation = std::move(t.activation);
    scorer.forwards_.push_back(std::move(fwd));
  }
  CTFL_RETURN_IF_ERROR(scorer.Rescore());
  return scorer;
}

Status StreamingScorer::Fold(const RoundDelta& delta) {
  CTFL_SPAN("ctfl.stream.fold");
  if (delta.round != rounds_folded_ + 1) {
    return Status::FailedPrecondition(StrFormat(
        "delta-log fold out of order: got round %u, expected %llu",
        delta.round,
        static_cast<unsigned long long>(rounds_folded_ + 1)));
  }
  if (delta.empty()) {
    // Fully degraded round: the model (and therefore every upload and
    // forward) is unchanged, so the scores carry over in O(1).
    ++rounds_folded_;
    EmptyFoldsCounter().Add(1);
    FoldsCounter().Add(1);
    return Status::OK();
  }

  for (const auto& [idx, bits] : delta.param_xors) {
    if (idx >= params_.size()) {
      return Status::InvalidArgument(
          StrFormat("delta-log round %u: parameter index %u out of range",
                    delta.round, idx));
    }
    // new = old ^ xor over raw IEEE-754 bits: exact in both directions,
    // no rounding anywhere.
    params_[idx] =
        std::bit_cast<double>(std::bit_cast<uint64_t>(params_[idx]) ^ bits);
  }
  if (!delta.param_xors.empty()) net_.SetParameters(params_);

  for (const ActivationFlip& flip : delta.train_flips) {
    if (flip.participant >= activations_.size() ||
        flip.record >= activations_[flip.participant].size() ||
        flip.rule >= activations_[flip.participant][flip.record].size()) {
      return Status::InvalidArgument(
          StrFormat("delta-log round %u: train flip out of range",
                    delta.round));
    }
    Bitset& activation = activations_[flip.participant][flip.record];
    if (activation.Test(flip.rule)) {
      activation.Clear(flip.rule);
    } else {
      activation.Set(flip.rule);
    }
  }
  for (const TestActivationFlip& flip : delta.test_activation_flips) {
    if (flip.test >= forwards_.size() ||
        flip.rule >= forwards_[flip.test].activation.size()) {
      return Status::InvalidArgument(StrFormat(
          "delta-log round %u: test flip out of range", delta.round));
    }
    Bitset& activation = forwards_[flip.test].activation;
    if (activation.Test(flip.rule)) {
      activation.Clear(flip.rule);
    } else {
      activation.Set(flip.rule);
    }
  }
  for (uint32_t t : delta.predicted_flips) {
    if (t >= forwards_.size()) {
      return Status::InvalidArgument(StrFormat(
          "delta-log round %u: predicted flip out of range", delta.round));
    }
    forwards_[t].predicted = forwards_[t].predicted == 0 ? 1 : 0;
  }

  ++rounds_folded_;
  FoldsCounter().Add(1);
  return Rescore();
}

Result<uint64_t> StreamingScorer::FoldAll(const DeltaLogContents& contents) {
  uint64_t folded = 0;
  for (const RoundDelta& round : contents.rounds) {
    if (round.round <= rounds_folded_) continue;
    CTFL_RETURN_IF_ERROR(Fold(round));
    ++folded;
  }
  return folded;
}

Status StreamingScorer::Rescore() {
  CTFL_SPAN("ctfl.stream.rescore");
  // The tracer borrows labels/uploads (no copies) and re-packs the
  // blocked kernel over the patched bitsets; TraceForwards then re-runs
  // the Eq. 4 match + Eq. 5/6 allocations — the exact code path of the
  // one-shot pipeline, on bit-identical state.
  const ContributionTracer tracer(&net_, &labels_, &activations_,
                                  tracer_config_);
  last_trace_ = tracer.TraceForwards(forwards_);
  micro_scores_ = MicroAllocation(last_trace_);
  macro_scores_ = MacroAllocation(last_trace_, macro_delta_);
  return Status::OK();
}

Result<StreamedEngine> StreamedEngine::Open(const std::string& bundle_path,
                                            const std::string& delta_log_path,
                                            StreamingScorer::Options options) {
  CTFL_ASSIGN_OR_RETURN(store::QueryEngine engine,
                        store::QueryEngine::Open(bundle_path));
  CTFL_ASSIGN_OR_RETURN(DeltaLogContents contents,
                        ReadDeltaLog(delta_log_path));
  const uint64_t bundle_fp = engine.bundle().meta.schema_fingerprint;
  if (bundle_fp != 0 && contents.header.schema_fingerprint != 0 &&
      bundle_fp != contents.header.schema_fingerprint) {
    return Status::InvalidArgument(
        delta_log_path +
        ": delta-log schema fingerprint disagrees with the bundle");
  }
  CTFL_ASSIGN_OR_RETURN(
      StreamingScorer scorer,
      StreamingScorer::FromHeader(std::move(contents.header), options));
  CTFL_RETURN_IF_ERROR(scorer.FoldAll(contents).status());
  return StreamedEngine(std::move(engine), std::move(scorer),
                        delta_log_path);
}

Result<uint64_t> StreamedEngine::PollAppended() {
  CTFL_ASSIGN_OR_RETURN(const DeltaLogContents contents,
                        ReadDeltaLog(log_path_));
  return scorer_.FoldAll(contents);
}

Status StreamedEngine::VerifyAgainstBundle() const {
  const store::BundleMeta& meta = engine_.bundle().meta;
  if (meta.micro_scores != scorer_.micro_scores()) {
    return Status::InvalidArgument(
        "streamed micro scores do not bit-match the bundle snapshot");
  }
  if (meta.macro_scores != scorer_.macro_scores()) {
    return Status::InvalidArgument(
        "streamed macro scores do not bit-match the bundle snapshot");
  }
  return Status::OK();
}

}  // namespace stream
}  // namespace ctfl
