#include "ctfl/stream/delta_log.h"

#include <cstring>
#include <fstream>

#include "ctfl/telemetry/metrics.h"
#include "ctfl/telemetry/trace.h"
#include "ctfl/util/string_util.h"
#include "ctfl/util/wire.h"

namespace ctfl {
namespace stream {
namespace {

constexpr char kMagic[8] = {'C', 'T', 'F', 'L', 'D', 'L', 'T', 'A'};
constexpr uint32_t kFormatVersion = 1;

// Record kinds of format v1. Readers skip kinds they do not know, so a
// future writer can append new record types without breaking old readers.
constexpr uint32_t kHeaderRecord = 1;
constexpr uint32_t kRoundRecord = 2;

// Framing bytes around every record payload: kind + length + crc.
constexpr size_t kRecordFraming = 4 + 4 + 4;

using ByteWriter = wire::Writer;

/// wire::Reader with the delta-log error-message prefix.
class ByteReader : public wire::Reader {
 public:
  explicit ByteReader(std::string_view data)
      : wire::Reader(data, "delta-log record") {}
};

telemetry::Counter& BytesWrittenCounter() {
  static telemetry::Counter& c = telemetry::MetricsRegistry::Global()
                                     .GetCounter("ctfl.stream.bytes_written");
  return c;
}
telemetry::Counter& RecordsWrittenCounter() {
  static telemetry::Counter& c =
      telemetry::MetricsRegistry::Global().GetCounter(
          "ctfl.stream.records_written");
  return c;
}

}  // namespace

std::string EncodeHeader(const DeltaHeader& header) {
  ByteWriter w;
  w.U64(header.config_digest);
  w.U64(header.schema_fingerprint);
  w.U64(header.failure_plan_fingerprint);
  w.U32(header.num_rules);
  w.F64(header.tau_w);
  w.U8(header.use_dedup ? 1 : 0);
  w.U8(header.use_max_miner ? 1 : 0);
  w.F64(header.min_rule_weight);
  w.F64(header.dp_epsilon);
  w.U64(header.dp_seed);
  w.U32(static_cast<uint32_t>(header.macro_delta));
  w.U32(static_cast<uint32_t>(header.participant_names.size()));
  for (const std::string& name : header.participant_names) w.Str(name);
  // Round-0 baseline, encoded with the bundle's own section codecs so the
  // two containers stay bit-compatible.
  w.Str(store::EncodeSchemaPayload(*header.schema));
  w.Str(store::EncodeModelPayload(header.net_config, header.params));
  w.Str(store::EncodeTrainPayload(header.participants));
  w.Str(store::EncodeTestsPayload(header.tests));
  return w.Take();
}

Result<DeltaHeader> DecodeHeader(std::string_view payload) {
  ByteReader r(payload);
  DeltaHeader header;
  CTFL_RETURN_IF_ERROR(r.U64(&header.config_digest));
  CTFL_RETURN_IF_ERROR(r.U64(&header.schema_fingerprint));
  CTFL_RETURN_IF_ERROR(r.U64(&header.failure_plan_fingerprint));
  CTFL_RETURN_IF_ERROR(r.U32(&header.num_rules));
  CTFL_RETURN_IF_ERROR(r.F64(&header.tau_w));
  uint8_t use_dedup = 0, use_max_miner = 0;
  CTFL_RETURN_IF_ERROR(r.U8(&use_dedup));
  CTFL_RETURN_IF_ERROR(r.U8(&use_max_miner));
  header.use_dedup = use_dedup != 0;
  header.use_max_miner = use_max_miner != 0;
  CTFL_RETURN_IF_ERROR(r.F64(&header.min_rule_weight));
  CTFL_RETURN_IF_ERROR(r.F64(&header.dp_epsilon));
  CTFL_RETURN_IF_ERROR(r.U64(&header.dp_seed));
  uint32_t macro_delta = 0;
  CTFL_RETURN_IF_ERROR(r.U32(&macro_delta));
  header.macro_delta = static_cast<int>(macro_delta);
  uint32_t names = 0;
  CTFL_RETURN_IF_ERROR(r.U32(&names));
  header.participant_names.resize(names);
  for (std::string& name : header.participant_names) {
    CTFL_RETURN_IF_ERROR(r.Str(&name));
  }
  std::string schema_payload, model_payload, train_payload, tests_payload;
  CTFL_RETURN_IF_ERROR(r.Str(&schema_payload));
  CTFL_RETURN_IF_ERROR(r.Str(&model_payload));
  CTFL_RETURN_IF_ERROR(r.Str(&train_payload));
  CTFL_RETURN_IF_ERROR(r.Str(&tests_payload));
  CTFL_RETURN_IF_ERROR(r.ExpectEnd("delta-log header"));
  CTFL_ASSIGN_OR_RETURN(header.schema,
                        store::DecodeSchemaPayload(schema_payload));
  CTFL_RETURN_IF_ERROR(store::DecodeModelPayload(
      model_payload, &header.net_config, &header.params));
  CTFL_ASSIGN_OR_RETURN(
      header.participants,
      store::DecodeTrainPayload(train_payload, header.num_rules));
  CTFL_ASSIGN_OR_RETURN(
      header.tests, store::DecodeTestsPayload(tests_payload, header.num_rules));
  if (header.participants.size() != header.participant_names.size()) {
    return Status::InvalidArgument(
        "delta-log header: participant names/records disagree");
  }
  if (header.schema_fingerprint != 0 &&
      header.schema_fingerprint != SchemaFingerprint(*header.schema)) {
    return Status::InvalidArgument(
        "delta-log header: schema fingerprint disagrees with the embedded "
        "schema");
  }
  return header;
}

std::string EncodeRound(const RoundDelta& round) {
  ByteWriter w;
  w.U32(round.round);
  w.U8(round.degraded ? 1 : 0);
  w.U32(round.clients_trained);
  w.U32(round.clients_dropped);
  w.U32(round.retries);
  w.U64(round.param_xors.size());
  for (const auto& [idx, bits] : round.param_xors) {
    w.U32(idx);
    w.U64(bits);
  }
  w.U64(round.train_flips.size());
  for (const ActivationFlip& flip : round.train_flips) {
    w.U32(flip.participant);
    w.U32(flip.record);
    w.U32(flip.rule);
  }
  w.U64(round.test_activation_flips.size());
  for (const TestActivationFlip& flip : round.test_activation_flips) {
    w.U32(flip.test);
    w.U32(flip.rule);
  }
  w.U64(round.predicted_flips.size());
  for (uint32_t t : round.predicted_flips) w.U32(t);
  return w.Take();
}

Result<RoundDelta> DecodeRound(std::string_view payload) {
  ByteReader r(payload);
  RoundDelta round;
  CTFL_RETURN_IF_ERROR(r.U32(&round.round));
  uint8_t degraded = 0;
  CTFL_RETURN_IF_ERROR(r.U8(&degraded));
  round.degraded = degraded != 0;
  CTFL_RETURN_IF_ERROR(r.U32(&round.clients_trained));
  CTFL_RETURN_IF_ERROR(r.U32(&round.clients_dropped));
  CTFL_RETURN_IF_ERROR(r.U32(&round.retries));
  uint64_t count = 0;
  CTFL_RETURN_IF_ERROR(r.U64(&count));
  round.param_xors.resize(count);
  for (auto& [idx, bits] : round.param_xors) {
    CTFL_RETURN_IF_ERROR(r.U32(&idx));
    CTFL_RETURN_IF_ERROR(r.U64(&bits));
  }
  CTFL_RETURN_IF_ERROR(r.U64(&count));
  round.train_flips.resize(count);
  for (ActivationFlip& flip : round.train_flips) {
    CTFL_RETURN_IF_ERROR(r.U32(&flip.participant));
    CTFL_RETURN_IF_ERROR(r.U32(&flip.record));
    CTFL_RETURN_IF_ERROR(r.U32(&flip.rule));
  }
  CTFL_RETURN_IF_ERROR(r.U64(&count));
  round.test_activation_flips.resize(count);
  for (TestActivationFlip& flip : round.test_activation_flips) {
    CTFL_RETURN_IF_ERROR(r.U32(&flip.test));
    CTFL_RETURN_IF_ERROR(r.U32(&flip.rule));
  }
  CTFL_RETURN_IF_ERROR(r.U64(&count));
  round.predicted_flips.resize(count);
  for (uint32_t& t : round.predicted_flips) CTFL_RETURN_IF_ERROR(r.U32(&t));
  CTFL_RETURN_IF_ERROR(r.ExpectEnd("delta-log round"));
  return round;
}

// ---------------------------------------------------------------------------
// Container layer.
// ---------------------------------------------------------------------------

Result<DeltaLogWriter> DeltaLogWriter::Create(const std::string& path) {
  DeltaLogWriter writer;
  writer.path_ = path;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path);
  out.write(kMagic, sizeof(kMagic));
  ByteWriter preamble;
  preamble.U32(kFormatVersion);
  const std::string bytes = preamble.Take();
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) return Status::IoError("write failed: " + path);
  writer.bytes_written_ = sizeof(kMagic) + bytes.size();
  return writer;
}

Status DeltaLogWriter::AppendRecord(uint32_t kind,
                                    const std::string& payload) {
  // One whole record per append, flushed before returning: a crash
  // between appends leaves at worst a partial tail, which readers drop.
  ByteWriter w;
  w.U32(kind);
  w.U32(static_cast<uint32_t>(payload.size()));
  std::string bytes = w.Take();
  bytes += payload;
  ByteWriter crc;
  crc.U32(store::Crc32(payload.data(), payload.size()));
  bytes += crc.Take();

  std::ofstream out(path_, std::ios::binary | std::ios::app);
  if (!out) return Status::IoError("cannot open " + path_);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) return Status::IoError("write failed: " + path_);
  bytes_written_ += bytes.size();
  BytesWrittenCounter().Add(static_cast<int64_t>(bytes.size()));
  RecordsWrittenCounter().Add(1);
  return Status::OK();
}

Status DeltaLogWriter::AppendHeader(const DeltaHeader& header) {
  if (header.schema == nullptr) {
    return Status::InvalidArgument("delta-log header has no schema");
  }
  return AppendRecord(kHeaderRecord, EncodeHeader(header));
}

Status DeltaLogWriter::AppendRound(const RoundDelta& round) {
  if (round.round == 0) {
    return Status::InvalidArgument("delta-log rounds are 1-based");
  }
  return AppendRecord(kRoundRecord, EncodeRound(round));
}

Result<DeltaLogContents> ReadDeltaLog(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) return Status::IoError("read failed: " + path);
  return ParseDeltaLog(bytes, path);
}

Result<DeltaLogContents> ParseDeltaLog(std::string_view bytes,
                                       const std::string& origin) {
  CTFL_SPAN("ctfl.stream.parse");
  if (bytes.size() < sizeof(kMagic) + 4 ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(origin + ": not a CTFL delta-log file");
  }
  {
    wire::Reader preamble(bytes.substr(sizeof(kMagic), 4), "delta-log");
    uint32_t version = 0;
    CTFL_RETURN_IF_ERROR(preamble.U32(&version));
    if (version > kFormatVersion) {
      return Status::InvalidArgument(
          StrFormat("%s: delta-log version %u is newer than this reader "
                    "(max %u)",
                    origin.c_str(), version, kFormatVersion));
    }
  }

  DeltaLogContents contents;
  bool saw_header = false;
  size_t pos = sizeof(kMagic) + 4;
  contents.bytes_consumed = pos;
  while (pos < bytes.size()) {
    // A record that does not fit in the remaining bytes is a partial tail
    // (crash mid-append): recover to the last whole record.
    if (bytes.size() - pos < kRecordFraming) break;
    wire::Reader frame(bytes.substr(pos, 8), "delta-log");
    uint32_t kind = 0, payload_len = 0;
    CTFL_RETURN_IF_ERROR(frame.U32(&kind));
    CTFL_RETURN_IF_ERROR(frame.U32(&payload_len));
    if (bytes.size() - pos - kRecordFraming < payload_len) break;
    const std::string_view payload = bytes.substr(pos + 8, payload_len);
    wire::Reader crc_reader(bytes.substr(pos + 8 + payload_len, 4),
                            "delta-log");
    uint32_t stored_crc = 0;
    CTFL_RETURN_IF_ERROR(crc_reader.U32(&stored_crc));
    const uint32_t crc = store::Crc32(payload.data(), payload.size());
    if (crc != stored_crc) {
      return Status::InvalidArgument(StrFormat(
          "%s: CRC32 mismatch in delta-log record at offset %zu (stored "
          "%08x, computed %08x)",
          origin.c_str(), pos, stored_crc, crc));
    }
    pos += kRecordFraming + payload_len;
    contents.bytes_consumed = pos;

    switch (kind) {
      case kHeaderRecord: {
        if (saw_header) {
          return Status::InvalidArgument(origin +
                                         ": duplicate delta-log header");
        }
        CTFL_ASSIGN_OR_RETURN(contents.header, DecodeHeader(payload));
        saw_header = true;
        break;
      }
      case kRoundRecord: {
        if (!saw_header) {
          return Status::InvalidArgument(
              origin + ": delta-log round precedes the header");
        }
        CTFL_ASSIGN_OR_RETURN(RoundDelta round, DecodeRound(payload));
        if (round.round != contents.rounds.size() + 1) {
          return Status::InvalidArgument(StrFormat(
              "%s: delta-log round %u out of order (expected %zu)",
              origin.c_str(), round.round, contents.rounds.size() + 1));
        }
        contents.rounds.push_back(std::move(round));
        break;
      }
      default:
        // Unknown record kind: tolerated (future writers may add kinds).
        ++contents.skipped_records;
        break;
    }
  }
  contents.truncated_bytes = bytes.size() - contents.bytes_consumed;
  if (!saw_header) {
    return Status::InvalidArgument(origin + ": delta-log has no header");
  }
  static telemetry::Counter& reads =
      telemetry::MetricsRegistry::Global().GetCounter("ctfl.stream.reads");
  reads.Add(1);
  return contents;
}

}  // namespace stream
}  // namespace ctfl
