#ifndef CTFL_STREAM_EMITTER_H_
#define CTFL_STREAM_EMITTER_H_

// DeltaLogEmitter: the training-side half of the streaming pipeline.
// Attached to FedAvgConfig::model_observer, it writes the delta-log
// header at round 0 (run identity + the initialized model + round-0
// uploads/forwards) and appends one RoundDelta per committed round —
// recomputing the uploads/forwards against each round's model and
// diffing them against the previous round's, so the log carries only
// what changed. I/O failures are sticky in status() and never abort
// training (mirroring CtflReport::bundle_status semantics).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ctfl/core/pipeline.h"
#include "ctfl/stream/delta_log.h"

namespace ctfl {
namespace stream {

class DeltaLogEmitter {
 public:
  /// `federation`, `test` and `config` must outlive the emitter (and the
  /// training run it observes).
  DeltaLogEmitter(std::string path, const Federation* federation,
                  const Dataset* test, const CtflConfig* config);

  /// Installs this emitter as `fedavg->model_observer`, chaining any
  /// observer already present. The emitter must outlive the run.
  void Attach(FedAvgConfig* fedavg);

  /// model_observer entry point (round 0 = header, round r = delta).
  void Observe(int round, const LogicalNet& global,
               const telemetry::RoundTelemetry& rt);

  /// First emit failure, sticky; OK while everything was written.
  const Status& status() const { return status_; }
  uint32_t rounds_emitted() const { return rounds_emitted_; }
  uint64_t bytes_written() const {
    return writer_.has_value() ? writer_->bytes_written() : 0;
  }

 private:
  Status EmitHeader(const LogicalNet& global);
  Status EmitRound(int round, const LogicalNet& global,
                   const telemetry::RoundTelemetry& rt);

  /// Per-test forwards (label, prediction, raw activation) of `global`.
  std::vector<store::TestRecord> ComputeForwards(
      const LogicalNet& global) const;

  std::string path_;
  const Federation* federation_;
  const Dataset* test_;
  const CtflConfig* config_;

  std::optional<DeltaLogWriter> writer_;
  // Previous round's state, diffed against each new commit.
  std::vector<double> prev_params_;
  std::vector<std::vector<Bitset>> prev_activations_;
  std::vector<store::TestRecord> prev_forwards_;

  Status status_;
  uint32_t rounds_emitted_ = 0;
};

}  // namespace stream
}  // namespace ctfl

#endif  // CTFL_STREAM_EMITTER_H_
