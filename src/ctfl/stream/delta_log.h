#ifndef CTFL_STREAM_DELTA_LOG_H_
#define CTFL_STREAM_DELTA_LOG_H_

// Streaming per-round contribution delta log: the append-only artifact a
// federated run emits *while training* so contribution scores can be
// folded incrementally (StreamingScorer, scorer.h) instead of recomputed
// from scratch after the final round.
//
// File layout ("CTFLDLTA" container, version 1, little-endian):
//
//   magic "CTFLDLTA" | u32 version
//   record*: { u32 kind | u32 payload_len | payload | u32 crc32(payload) }
//
// Record kinds (unknown kinds are skipped, mirroring the replay
// container's unknown-section tolerance):
//
//   1 header  one per log, first: run identity (config digest, schema +
//             failure-plan fingerprints), the tracer/allocation knobs the
//             fold must reproduce, and the round-0 baseline — schema,
//             initialized model, participant labels + activation uploads,
//             and test forwards — encoded with the bundle's own section
//             codecs (store/bundle.h) so the two containers stay
//             bit-compatible.
//   2 round   one per federated round, consecutive from 1: cohort
//             metadata plus the round's deltas — model parameters as XOR
//             of IEEE-754 bit patterns (new = old ^ x, bit-exact both
//             ways), activation and prediction changes as flip lists. A
//             fully degraded round's record is empty and folds in O(1).
//
// Reader semantics match the replay-file corruption matrix: a partial
// tail (crash mid-append) recovers to the last whole record and reports
// the dropped byte count; a CRC mismatch or a future container version is
// an error; unknown record kinds are tolerated and counted.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "ctfl/nn/logical_net.h"
#include "ctfl/store/bundle.h"
#include "ctfl/util/result.h"

namespace ctfl {
namespace stream {

/// Run identity + round-0 baseline. Everything a StreamingScorer needs to
/// bootstrap without the originating Federation or test Dataset.
struct DeltaHeader {
  /// CtflConfigDigest of the originating run (semantic knobs only).
  uint64_t config_digest = 0;
  uint64_t schema_fingerprint = 0;
  /// FailurePlan::Fingerprint of the fault schedule (0 = fault-free).
  uint64_t failure_plan_fingerprint = 0;
  uint32_t num_rules = 0;

  // Tracer/allocation knobs the fold replays (execution knobs — kernel,
  // ISA, thread counts — are deliberately absent: they never change
  // results, DESIGN.md §9/§10).
  double tau_w = 0.9;
  bool use_dedup = true;
  bool use_max_miner = true;
  double min_rule_weight = 1e-6;
  double dp_epsilon = 0.0;
  uint64_t dp_seed = 0x5eed;
  int macro_delta = 1;

  // Round-0 baseline.
  SchemaPtr schema;
  LogicalNetConfig net_config;
  std::vector<double> params;  ///< initialized (pre-training) parameters
  std::vector<std::string> participant_names;
  /// Per participant: labels + round-0 activation uploads (DP-perturbed
  /// exactly as the tracer would, so the privacy boundary of paper §V is
  /// identical to a bundle snapshot's).
  std::vector<store::ParticipantRecords> participants;
  /// Round-0 test forwards (label, prediction, raw activation).
  std::vector<store::TestRecord> tests;
};

/// One flipped bit in a participant's activation upload.
struct ActivationFlip {
  uint32_t participant = 0;
  uint32_t record = 0;
  uint32_t rule = 0;
};

/// One flipped bit in a test instance's raw activation.
struct TestActivationFlip {
  uint32_t test = 0;
  uint32_t rule = 0;
};

/// One federated round's delta against the previous round's state.
struct RoundDelta {
  uint32_t round = 0;  ///< 1-based, consecutive
  bool degraded = false;
  uint32_t clients_trained = 0;
  uint32_t clients_dropped = 0;
  uint32_t retries = 0;
  /// (parameter index, XOR of IEEE-754 u64 bit patterns).
  std::vector<std::pair<uint32_t, uint64_t>> param_xors;
  std::vector<ActivationFlip> train_flips;
  std::vector<TestActivationFlip> test_activation_flips;
  /// Tests whose predicted class flipped this round.
  std::vector<uint32_t> predicted_flips;

  /// True when the round changed nothing (fully degraded): folds in O(1).
  bool empty() const {
    return param_xors.empty() && train_flips.empty() &&
           test_activation_flips.empty() && predicted_flips.empty();
  }
};

// Record payload codecs (container framing handled by writer/reader).
std::string EncodeHeader(const DeltaHeader& header);
Result<DeltaHeader> DecodeHeader(std::string_view payload);
std::string EncodeRound(const RoundDelta& round);
Result<RoundDelta> DecodeRound(std::string_view payload);

/// Append-only writer. Each Append* call frames, CRCs, writes and flushes
/// one whole record, so a crash between calls leaves a recoverable log
/// (at worst a partial tail that readers drop).
class DeltaLogWriter {
 public:
  /// Creates/truncates `path` and writes the container preamble.
  static Result<DeltaLogWriter> Create(const std::string& path);

  DeltaLogWriter(DeltaLogWriter&&) = default;
  DeltaLogWriter& operator=(DeltaLogWriter&&) = default;

  Status AppendHeader(const DeltaHeader& header);
  Status AppendRound(const RoundDelta& round);
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  DeltaLogWriter() = default;
  Status AppendRecord(uint32_t kind, const std::string& payload);

  std::string path_;
  uint64_t bytes_written_ = 0;
};

/// Fully decoded delta log.
struct DeltaLogContents {
  DeltaHeader header;
  std::vector<RoundDelta> rounds;  ///< consecutive, rounds[i].round == i+1
  /// Bytes of the file covered by whole records (preamble included).
  size_t bytes_consumed = 0;
  /// Partial-tail bytes dropped (0 for a cleanly closed log).
  size_t truncated_bytes = 0;
  /// Records with an unknown kind that were skipped.
  uint32_t skipped_records = 0;
};

Result<DeltaLogContents> ReadDeltaLog(const std::string& path);
Result<DeltaLogContents> ParseDeltaLog(std::string_view bytes,
                                       const std::string& origin);

}  // namespace stream
}  // namespace ctfl

#endif  // CTFL_STREAM_DELTA_LOG_H_
