#ifndef CTFL_MULTICLASS_OVR_H_
#define CTFL_MULTICLASS_OVR_H_

#include <vector>

#include "ctfl/core/pipeline.h"
#include "ctfl/data/dataset.h"
#include "ctfl/nn/trainer.h"

namespace ctfl {

/// Multi-class labeled dataset: features follow `schema`, labels lie in
/// [0, num_classes). The binary Dataset stays the library's core type;
/// multi-class work flows through one-vs-rest binary views (the paper's
/// "extended to multi-class with minor changes", §III-B).
class McDataset {
 public:
  McDataset(SchemaPtr schema, int num_classes);

  const SchemaPtr& schema() const { return schema_; }
  int num_classes() const { return num_classes_; }
  size_t size() const { return instances_.size(); }
  bool empty() const { return instances_.empty(); }
  const Instance& instance(size_t i) const { return instances_[i]; }

  /// Validates feature width and label range.
  Status Append(Instance instance);

  /// Number of instances per class.
  std::vector<size_t> ClassCounts() const;

  /// Binary one-vs-rest view: label 1 iff the multi-class label equals
  /// `positive_class`.
  Dataset BinaryView(int positive_class) const;

 private:
  SchemaPtr schema_;
  int num_classes_;
  std::vector<Instance> instances_;
};

/// One-vs-rest ensemble of binary rule-based models: model k separates
/// class k from the rest; prediction is the class whose model reports the
/// largest positive-vs-negative vote margin.
class OneVsRestModel {
 public:
  struct Config {
    LogicalNetConfig net;
    TrainConfig train;
  };

  /// Trains num_classes binary models with gradient grafting.
  static OneVsRestModel Train(const McDataset& data, const Config& config);

  int num_classes() const { return static_cast<int>(models_.size()); }
  const LogicalNet& class_model(int k) const { return models_[k]; }

  /// argmax_k margin_k(x), margin = positive logit - negative logit.
  int Predict(const Instance& instance) const;
  double Accuracy(const McDataset& data) const;

 private:
  explicit OneVsRestModel(std::vector<LogicalNet> models)
      : models_(std::move(models)) {}

  std::vector<LogicalNet> models_;
};

/// Multi-class CTFL: runs the binary contribution pipeline once per class
/// (on the one-vs-rest views) and combines the per-class scores weighted
/// by class prevalence in the reserved test set. Group rationality then
/// holds against the prevalence-weighted average of the per-class binary
/// matched accuracies.
struct McCtflReport {
  /// Combined scores (one per participant).
  std::vector<double> micro_scores;
  std::vector<double> macro_scores;
  /// Per-class binary reports' scores: [class][participant].
  std::vector<std::vector<double>> per_class_micro;
  /// Binary one-vs-rest test accuracy per class.
  std::vector<double> per_class_accuracy;
  /// Class prevalence weights used for combination.
  std::vector<double> class_weights;
};

Result<McCtflReport> RunMcCtfl(const std::vector<McDataset>& participants,
                               const McDataset& test,
                               const CtflConfig& config);

}  // namespace ctfl

#endif  // CTFL_MULTICLASS_OVR_H_
