#include "ctfl/multiclass/ovr.h"

#include "ctfl/util/logging.h"
#include "ctfl/util/string_util.h"

namespace ctfl {

McDataset::McDataset(SchemaPtr schema, int num_classes)
    : schema_(std::move(schema)), num_classes_(num_classes) {
  CTFL_CHECK(num_classes_ >= 2);
}

Status McDataset::Append(Instance instance) {
  if (static_cast<int>(instance.values.size()) != schema_->num_features()) {
    return Status::InvalidArgument("instance width mismatch");
  }
  if (instance.label < 0 || instance.label >= num_classes_) {
    return Status::OutOfRange(
        StrFormat("label %d outside [0, %d)", instance.label,
                  num_classes_));
  }
  instances_.push_back(std::move(instance));
  return Status::OK();
}

std::vector<size_t> McDataset::ClassCounts() const {
  std::vector<size_t> counts(num_classes_, 0);
  for (const Instance& inst : instances_) ++counts[inst.label];
  return counts;
}

Dataset McDataset::BinaryView(int positive_class) const {
  CTFL_CHECK(positive_class >= 0 && positive_class < num_classes_);
  Dataset view(schema_);
  for (const Instance& inst : instances_) {
    Instance binary = inst;
    binary.label = inst.label == positive_class ? 1 : 0;
    view.AppendUnchecked(std::move(binary));
  }
  return view;
}

OneVsRestModel OneVsRestModel::Train(const McDataset& data,
                                     const Config& config) {
  std::vector<LogicalNet> models;
  models.reserve(data.num_classes());
  for (int k = 0; k < data.num_classes(); ++k) {
    LogicalNetConfig net_config = config.net;
    net_config.seed = config.net.seed + static_cast<uint64_t>(k) * 101;
    LogicalNet net(data.schema(), net_config);
    TrainGrafted(net, data.BinaryView(k), config.train);
    models.push_back(std::move(net));
  }
  return OneVsRestModel(std::move(models));
}

int OneVsRestModel::Predict(const Instance& instance) const {
  int best = 0;
  double best_margin = 0.0;
  for (int k = 0; k < num_classes(); ++k) {
    const LogicalNet& net = models_[k];
    Matrix encoded(1, net.encoded_size());
    net.encoder().Encode(instance, encoded.row(0));
    const Matrix logits = net.ForwardDiscrete(encoded);
    const double margin = logits(0, 1) - logits(0, 0);
    if (k == 0 || margin > best_margin) {
      best = k;
      best_margin = margin;
    }
  }
  return best;
}

double OneVsRestModel::Accuracy(const McDataset& data) const {
  if (data.empty()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    if (Predict(data.instance(i)) == data.instance(i).label) ++correct;
  }
  return static_cast<double>(correct) / data.size();
}

Result<McCtflReport> RunMcCtfl(const std::vector<McDataset>& participants,
                               const McDataset& test,
                               const CtflConfig& config) {
  if (participants.empty()) {
    return Status::InvalidArgument("RunMcCtfl requires participants");
  }
  const int num_classes = test.num_classes();
  const int n = static_cast<int>(participants.size());

  McCtflReport report;
  report.micro_scores.assign(n, 0.0);
  report.macro_scores.assign(n, 0.0);
  report.per_class_micro.resize(num_classes);
  report.per_class_accuracy.resize(num_classes);
  report.class_weights.resize(num_classes);

  const std::vector<size_t> counts = test.ClassCounts();
  for (int k = 0; k < num_classes; ++k) {
    report.class_weights[k] =
        test.empty() ? 0.0
                     : static_cast<double>(counts[k]) / test.size();
  }

  for (int k = 0; k < num_classes; ++k) {
    // Binary federation and test view for class k vs rest.
    std::vector<Dataset> views;
    views.reserve(participants.size());
    for (const McDataset& p : participants) {
      CTFL_CHECK(p.num_classes() == num_classes);
      views.push_back(p.BinaryView(k));
    }
    const Federation federation = MakeFederation(std::move(views));
    const Dataset test_view = test.BinaryView(k);

    CtflConfig class_config = config;
    class_config.net.seed = config.net.seed + static_cast<uint64_t>(k) * 101;
    CTFL_ASSIGN_OR_RETURN(const CtflReport binary,
                          RunCtfl(federation, test_view, class_config));

    report.per_class_micro[k] = binary.micro_scores;
    report.per_class_accuracy[k] = binary.test_accuracy;
    for (int p = 0; p < n; ++p) {
      report.micro_scores[p] +=
          report.class_weights[k] * binary.micro_scores[p];
      report.macro_scores[p] +=
          report.class_weights[k] * binary.macro_scores[p];
    }
  }
  return report;
}

}  // namespace ctfl
