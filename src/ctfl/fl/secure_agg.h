#ifndef CTFL_FL_SECURE_AGG_H_
#define CTFL_FL_SECURE_AGG_H_

#include <vector>

#include "ctfl/util/result.h"
#include "ctfl/util/rng.h"

namespace ctfl {

/// Pairwise-masking secure aggregation (Bonawitz et al. style, simulated
/// in-process; paper §V: "security protection techniques such as secret
/// sharing can also be applied like in regular FL").
///
/// Every ordered pair of clients (i < j) derives a shared mask vector from
/// a common seed; client i ADDS the mask to its update, client j SUBTRACTS
/// it. Each masked update in isolation is statistically garbage, but the
/// server-side sum cancels every mask exactly, recovering the true sum of
/// updates — the server never sees an individual client's update.
class SecureAggregator {
 public:
  /// `session_seed` stands in for the key-agreement transcript.
  SecureAggregator(int num_clients, size_t update_size,
                   uint64_t session_seed);

  int num_clients() const { return num_clients_; }
  size_t update_size() const { return update_size_; }

  /// The masked update client `client` would send for `update` under full
  /// participation (every client in the session survives the round).
  Result<std::vector<double>> Mask(int client,
                                   const std::vector<double>& update) const;

  /// Server-side aggregation of all masked updates; the pairwise masks
  /// cancel, so this equals the element-wise sum of the true updates.
  Result<std::vector<double>> Aggregate(
      const std::vector<std::vector<double>>& masked_updates) const;

  /// Cohort-aware masking for rounds with partial participation: the
  /// masked update `client` (a member of `cohort`) would send when only
  /// `cohort` survives the round. Masks are derived pairwise over the
  /// cohort only — a dropped client owes no mask and is owed none — so
  /// AggregateCohort over the same cohort cancels them exactly.
  /// `cohort` must be strictly ascending client ids in
  /// [0, num_clients()). With the full cohort this is bit-identical to
  /// Mask (same pair masks, folded in the same order).
  Result<std::vector<double>> MaskCohort(
      int client, const std::vector<int>& cohort,
      const std::vector<double>& update) const;

  /// Server-side aggregation of the surviving cohort's masked updates
  /// (one per cohort member, in cohort order). The cohort's pairwise
  /// masks cancel, recovering the element-wise sum of the survivors'
  /// true updates; with the full cohort this is bit-identical to
  /// Aggregate.
  Result<std::vector<double>> AggregateCohort(
      const std::vector<int>& cohort,
      const std::vector<std::vector<double>>& masked_updates) const;

 private:
  /// Deterministic mask shared by the pair (i, j), i < j.
  std::vector<double> PairMask(int i, int j) const;

  /// Cohorts must be non-empty, strictly ascending, in range.
  Status CheckCohort(const std::vector<int>& cohort) const;

  int num_clients_;
  size_t update_size_;
  uint64_t session_seed_;
};

}  // namespace ctfl

#endif  // CTFL_FL_SECURE_AGG_H_
