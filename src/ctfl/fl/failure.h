#ifndef CTFL_FL_FAILURE_H_
#define CTFL_FL_FAILURE_H_

// Deterministic failure injection for federated rounds (DESIGN.md §11).
//
// Production federations lose participants constantly: devices go offline
// mid-round (dropout), uploads miss the aggregation deadline (stragglers),
// and payloads arrive corrupted (NaN weights, truncated tensors). The
// paper's robustness claim — and the fragility critique of contribution
// scores (Pejó et al.) — both demand that score computation degrade
// gracefully under exactly these faults. A FailurePlan makes every fault a
// *pure function of (seed, round, client, attempt)*, so a faulty run is
// replayable bit-for-bit: run the same plan twice and you must get the
// same dropouts, the same retries, the same quarantines, and therefore the
// same scores. The empty plan injects nothing and leaves the round engine
// on its fault-free fast path.

#include <cstdint>
#include <string>
#include <vector>

#include "ctfl/util/result.h"

namespace ctfl {

/// What happened to one client's participation attempt.
enum class FailureKind : uint8_t {
  kNone = 0,        ///< clean upload, accepted
  kDropout,         ///< client offline for the whole round (no retries)
  kStraggler,       ///< upload missed the round deadline
  kCorrupt,         ///< upload arrived with non-finite (NaN) coordinates
  kSizeMismatch,    ///< upload arrived truncated (wrong parameter count)
};

/// Canonical name, e.g. "dropout".
const char* FailureKindName(FailureKind kind);

/// Per-round, per-client fault rates. All rates are probabilities in
/// [0, 1]; `dropout` is drawn once per (round, client), the other three
/// are drawn independently per upload attempt (so a retry can fail again).
struct FailureSpec {
  double dropout = 0.0;
  double straggler = 0.0;
  double corrupt = 0.0;
  double size_mismatch = 0.0;
  uint64_t seed = 0;

  bool empty() const {
    return dropout <= 0.0 && straggler <= 0.0 && corrupt <= 0.0 &&
           size_mismatch <= 0.0;
  }
};

/// A replayable schedule of client failures, keyed by seed. Stateless:
/// every draw hashes (seed, round, client, attempt), so outcomes do not
/// depend on evaluation order, thread count, or how many draws preceded
/// them — the properties the determinism suite (DESIGN.md §9) relies on.
class FailurePlan {
 public:
  /// The empty plan: no faults, ever.
  FailurePlan() = default;
  explicit FailurePlan(const FailureSpec& spec) : spec_(spec) {}

  /// Parses a plan spec of comma-separated `key=value` terms, e.g.
  ///   "dropout=0.2,straggler=0.1,corrupt=0.05,mismatch=0.05,seed=17".
  /// Unknown keys and rates outside [0, 1] are errors; the empty string
  /// parses to the empty plan.
  static Result<FailurePlan> Parse(const std::string& text);

  const FailureSpec& spec() const { return spec_; }
  bool empty() const { return spec_.empty(); }

  /// True when `client` is offline for all of `round` (terminal: a
  /// dropped-out client has no upload to retry).
  bool DropsOut(int round, int client) const;

  /// Outcome of upload attempt `attempt` (0-based) for a client that is
  /// not dropped out: kNone, kStraggler, kCorrupt, or kSizeMismatch.
  FailureKind UploadOutcome(int round, int client, int attempt) const;

  /// Stable 64-bit digest of the spec (0 for the empty plan); recorded in
  /// bundle metadata so a persisted run names the fault schedule it ran
  /// under.
  uint64_t Fingerprint() const;

  /// Canonical spec string (round-trips through Parse); "" when empty.
  std::string ToString() const;

 private:
  FailureSpec spec_;
};

/// Server-side upload validation: accepts exactly the updates the
/// aggregator can use — the right parameter count and every coordinate
/// finite. Anything else is quarantined by the round engine instead of
/// aborting the process (the bug this subsystem replaces).
Status ValidateClientUpdate(const std::vector<double>& update,
                            size_t expected_size);

/// Applies `kind`'s wire-level damage to `update` in place, deterministic
/// in (round, client, attempt): kCorrupt plants quiet NaNs at hashed
/// coordinates, kSizeMismatch truncates the tail. kNone/kStraggler leave
/// the payload untouched (a straggler's payload is fine — it is just
/// late). Exposed for tests.
void TamperUpdate(FailureKind kind, int round, int client, int attempt,
                  std::vector<double>& update);

}  // namespace ctfl

#endif  // CTFL_FL_FAILURE_H_
