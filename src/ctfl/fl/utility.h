#ifndef CTFL_FL_UTILITY_H_
#define CTFL_FL_UTILITY_H_

#include <unordered_map>
#include <vector>

#include "ctfl/fl/fedavg.h"
#include "ctfl/fl/metrics.h"
#include "ctfl/fl/participant.h"

namespace ctfl {

/// Abstract coalition-value oracle v(D_S) (paper Def. II.1). Valuation
/// schemes are written against this interface, so tests can plug in exact
/// synthetic games (with known Shapley values) and benches plug in real
/// retraining.
class CoalitionUtility {
 public:
  virtual ~CoalitionUtility() = default;

  virtual int num_participants() const = 0;

  /// Data utility of the coalition (ids need not be sorted; duplicates are
  /// ignored). Deterministic per coalition.
  virtual double Value(const std::vector<int>& coalition) = 0;

  /// Number of *distinct* coalition evaluations performed (the unit the
  /// paper's efficiency comparison counts, since each one costs a model
  /// training + inference).
  virtual int evaluations() const = 0;
};

/// Retraining-based utility: v(D_S) = test accuracy of a rule-based model
/// trained on the union of coalition members' data (Eq. 1). Memoizes by
/// coalition bitmask. v(emptyset) is the majority-class accuracy of the
/// test set (the no-information baseline).
class RetrainUtility : public CoalitionUtility {
 public:
  struct Config {
    LogicalNetConfig net;
    TrainConfig train;
    /// If true, coalition models are trained with FedAvg across the
    /// members; otherwise centrally on the merged coalition data (faster,
    /// same utility signal).
    bool federated = false;
    FedAvgConfig fedavg;
    /// Performance metric realizing v(D) (paper §II-A: accuracy by
    /// default, extensible to F1 etc.).
    MetricKind metric = MetricKind::kAccuracy;
  };

  /// `federation` and `test` must outlive this object.
  RetrainUtility(const Federation* federation, const Dataset* test,
                 Config config);

  int num_participants() const override {
    return static_cast<int>(federation_->size());
  }
  double Value(const std::vector<int>& coalition) override;
  int evaluations() const override { return evaluations_; }

  /// Metric value of the constant majority-class predictor on the test
  /// set — the no-information baseline v(emptyset).
  double EmptyValue() const;

 private:
  const Federation* federation_;
  const Dataset* test_;
  Config config_;
  std::unordered_map<uint64_t, double> cache_;
  int evaluations_ = 0;
};

/// Table-lookup utility over all 2^n coalitions; the workhorse of unit
/// tests where exact Shapley/least-core values are hand-computable.
class TabularUtility : public CoalitionUtility {
 public:
  /// `values[mask]` is v(S) for the coalition whose members are the set
  /// bits of `mask`; size must be 2^n.
  TabularUtility(int n, std::vector<double> values);

  int num_participants() const override { return n_; }
  double Value(const std::vector<int>& coalition) override;
  int evaluations() const override { return evaluations_; }

 private:
  int n_;
  std::vector<double> values_;
  std::unordered_map<uint64_t, bool> seen_;
  int evaluations_ = 0;
};

/// Bitmask of a coalition id list.
uint64_t CoalitionMask(const std::vector<int>& coalition);

}  // namespace ctfl

#endif  // CTFL_FL_UTILITY_H_
