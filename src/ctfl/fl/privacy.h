#ifndef CTFL_FL_PRIVACY_H_
#define CTFL_FL_PRIVACY_H_

#include <vector>

#include "ctfl/util/bitset.h"
#include "ctfl/util/rng.h"

namespace ctfl {

/// Local differential privacy for uploaded rule-activation vectors (paper
/// §V privacy analysis: activation vectors "can be further perturbed to
/// guarantee differential privacy").
///
/// Mechanism: per-bit randomized response. Each bit is reported truthfully
/// with probability e^eps / (1 + e^eps) and flipped otherwise, which makes
/// the per-bit report eps-locally-differentially-private. A whole vector
/// of m bits is then (m*eps)-DP in the worst case; in practice the
/// federation chooses eps per bit.

/// Probability that randomized response flips a bit at privacy level eps.
/// eps -> infinity: 0 (no noise); eps = 0: 0.5 (pure noise).
double RandomizedResponseFlipProbability(double epsilon);

/// Applies per-bit randomized response to an activation vector.
Bitset RandomizedResponse(const Bitset& bits, double epsilon, Rng& rng);

/// Convenience: perturbs a whole participant upload.
std::vector<Bitset> RandomizedResponseAll(const std::vector<Bitset>& uploads,
                                          double epsilon, Rng& rng);

/// Estimate of the true activation count from perturbed reports: given
/// observed count c over n reports with flip probability q, the unbiased
/// estimator (c - n q) / (1 - 2 q) projected onto the feasible range
/// [0, n] (a raw count can never be negative nor exceed the number of
/// reports, but the estimator's tails can — especially as eps -> 0).
/// Exposed so aggregate statistics (e.g. rule popularity) stay calibrated
/// under DP.
double DebiasedCount(double observed_count, double num_reports,
                     double epsilon);

}  // namespace ctfl

#endif  // CTFL_FL_PRIVACY_H_
