#include "ctfl/fl/secure_agg.h"

#include "ctfl/util/logging.h"
#include "ctfl/util/string_util.h"

namespace ctfl {

SecureAggregator::SecureAggregator(int num_clients, size_t update_size,
                                   uint64_t session_seed)
    : num_clients_(num_clients),
      update_size_(update_size),
      session_seed_(session_seed) {
  CTFL_CHECK(num_clients_ > 0);
}

std::vector<double> SecureAggregator::PairMask(int i, int j) const {
  CTFL_CHECK(i < j);
  // The pair seed models the Diffie-Hellman-agreed PRG seed.
  Rng rng(session_seed_ ^ (static_cast<uint64_t>(i) * 0x9e3779b1ULL) ^
          (static_cast<uint64_t>(j) * 0x85ebca6bULL));
  std::vector<double> mask(update_size_);
  for (double& m : mask) m = rng.Uniform(-1.0, 1.0);
  return mask;
}

Result<std::vector<double>> SecureAggregator::Mask(
    int client, const std::vector<double>& update) const {
  if (client < 0 || client >= num_clients_) {
    return Status::OutOfRange(StrFormat("client %d", client));
  }
  if (update.size() != update_size_) {
    return Status::InvalidArgument("update size mismatch");
  }
  std::vector<double> masked = update;
  for (int other = 0; other < num_clients_; ++other) {
    if (other == client) continue;
    const std::vector<double> mask = client < other
                                         ? PairMask(client, other)
                                         : PairMask(other, client);
    const double sign = client < other ? 1.0 : -1.0;
    for (size_t k = 0; k < update_size_; ++k) {
      masked[k] += sign * mask[k];
    }
  }
  return masked;
}

Result<std::vector<double>> SecureAggregator::Aggregate(
    const std::vector<std::vector<double>>& masked_updates) const {
  if (static_cast<int>(masked_updates.size()) != num_clients_) {
    return Status::InvalidArgument(
        "secure aggregation requires every client's masked update");
  }
  std::vector<double> sum(update_size_, 0.0);
  for (const auto& update : masked_updates) {
    if (update.size() != update_size_) {
      return Status::InvalidArgument("masked update size mismatch");
    }
    for (size_t k = 0; k < update_size_; ++k) sum[k] += update[k];
  }
  return sum;
}

Status SecureAggregator::CheckCohort(const std::vector<int>& cohort) const {
  if (cohort.empty()) {
    return Status::InvalidArgument("cohort is empty");
  }
  int prev = -1;
  for (int member : cohort) {
    if (member < 0 || member >= num_clients_) {
      return Status::OutOfRange(StrFormat("cohort member %d", member));
    }
    if (member <= prev) {
      return Status::InvalidArgument(
          "cohort ids must be strictly ascending");
    }
    prev = member;
  }
  return Status::OK();
}

Result<std::vector<double>> SecureAggregator::MaskCohort(
    int client, const std::vector<int>& cohort,
    const std::vector<double>& update) const {
  CTFL_RETURN_IF_ERROR(CheckCohort(cohort));
  bool member = false;
  for (int id : cohort) member = member || id == client;
  if (!member) {
    return Status::InvalidArgument(
        StrFormat("client %d is not in the cohort", client));
  }
  if (update.size() != update_size_) {
    return Status::InvalidArgument("update size mismatch");
  }
  // Identical fold to Mask(), restricted to the surviving cohort: the
  // pair seeds still hash *global* client ids, so a pair that survives
  // together derives the very same mask it would under full
  // participation.
  std::vector<double> masked = update;
  for (int other : cohort) {
    if (other == client) continue;
    const std::vector<double> mask = client < other
                                         ? PairMask(client, other)
                                         : PairMask(other, client);
    const double sign = client < other ? 1.0 : -1.0;
    for (size_t k = 0; k < update_size_; ++k) {
      masked[k] += sign * mask[k];
    }
  }
  return masked;
}

Result<std::vector<double>> SecureAggregator::AggregateCohort(
    const std::vector<int>& cohort,
    const std::vector<std::vector<double>>& masked_updates) const {
  CTFL_RETURN_IF_ERROR(CheckCohort(cohort));
  if (masked_updates.size() != cohort.size()) {
    return Status::InvalidArgument(StrFormat(
        "cohort has %zu members but %zu masked updates were submitted",
        cohort.size(), masked_updates.size()));
  }
  std::vector<double> sum(update_size_, 0.0);
  for (const auto& update : masked_updates) {
    if (update.size() != update_size_) {
      return Status::InvalidArgument("masked update size mismatch");
    }
    for (size_t k = 0; k < update_size_; ++k) sum[k] += update[k];
  }
  return sum;
}

}  // namespace ctfl
