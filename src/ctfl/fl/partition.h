#ifndef CTFL_FL_PARTITION_H_
#define CTFL_FL_PARTITION_H_

#include <vector>

#include "ctfl/data/dataset.h"
#include "ctfl/util/rng.h"

namespace ctfl {

/// Skew-sample partitioning (paper §VI-A): the training data is split
/// i.i.d. across `n` participants with per-participant volume ratios drawn
/// from a symmetric Dirichlet(alpha). Smaller alpha = more skew.
std::vector<Dataset> PartitionSkewSample(const Dataset& train, int n,
                                         double alpha, Rng& rng);

/// Skew-label partitioning (paper §VI-A): each class is split across
/// participants with its own Dirichlet(alpha) ratio draw, producing
/// heterogeneous label distributions.
std::vector<Dataset> PartitionSkewLabel(const Dataset& train, int n,
                                        double alpha, Rng& rng);

/// Even random partitioning (alpha -> infinity limit), for tests.
std::vector<Dataset> PartitionUniform(const Dataset& train, int n, Rng& rng);

}  // namespace ctfl

#endif  // CTFL_FL_PARTITION_H_
