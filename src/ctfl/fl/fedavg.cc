#include "ctfl/fl/fedavg.h"

#include <algorithm>
#include <memory>

#include "ctfl/fl/secure_agg.h"
#include "ctfl/telemetry/metrics.h"
#include "ctfl/telemetry/trace.h"
#include "ctfl/util/logging.h"
#include "ctfl/util/stopwatch.h"
#include "ctfl/util/thread_pool.h"

namespace ctfl {

namespace {

/// Result of one client's local training for one round, produced by any
/// worker thread but *committed* in client-index order so that weighted
/// averaging, secure-aggregation masking, and the round's loss stats are
/// bit-identical to the serial schedule (DESIGN.md §9).
struct ClientUpdate {
  /// Weighted local parameters (zeros for an empty client).
  std::vector<double> params;
  double final_loss = 0.0;
  int steps = 0;
  bool trained = false;
};

}  // namespace

void RunFedAvg(LogicalNet& global, const std::vector<Dataset>& clients,
               const FedAvgConfig& config, FedAvgStats* stats) {
  // Reset stats before any early return so callers never read a previous
  // invocation's rounds out of a reused FedAvgStats.
  if (stats != nullptr) {
    stats->rounds.clear();
    stats->rounds.reserve(config.rounds > 0 ? config.rounds : 0);
    stats->grafting_steps = 0;
  }

  size_t total = 0;
  size_t nonempty_clients = 0;
  for (const Dataset& c : clients) {
    total += c.size();
    if (!c.empty()) ++nonempty_clients;
  }
  if (total == 0) return;

  static telemetry::Counter& round_counter =
      telemetry::MetricsRegistry::Global().GetCounter("ctfl.train.rounds");
  static telemetry::Histogram& round_hist =
      telemetry::MetricsRegistry::Global().GetHistogram(
          "ctfl.train.round_us");
  static telemetry::Gauge& parallel_gauge =
      telemetry::MetricsRegistry::Global().GetGauge(
          "ctfl.train.parallel_clients");

  TrainConfig local = config.local;
  local.epochs = config.local_epochs;

  // Fan local training out across at most one worker per non-empty
  // client. Inside a pool worker (e.g. a nested federated run) we stay
  // serial: ParallelFor would inline anyway, so skip the pool entirely.
  int fan_out = std::min<int>(ResolveThreadCount(config.num_threads),
                              static_cast<int>(nonempty_clients));
  fan_out = std::max(1, fan_out);
  std::unique_ptr<ThreadPool> pool;
  if (fan_out > 1 && !ThreadPool::InPoolWorker()) {
    pool = std::make_unique<ThreadPool>(fan_out);
  }
  parallel_gauge.Set(pool != nullptr ? fan_out : 1);

  Stopwatch round_watch;
  for (int round = 0; round < config.rounds; ++round) {
    CTFL_SPAN("ctfl.train.round");
    const std::vector<double> global_params = global.GetParameters();
    local.seed = config.local.seed + static_cast<uint64_t>(round) * 7919;

    // ---- Fan-out: each client trains a private copy of the global net.
    // Workers only touch their own ClientUpdate slot; `global` is read-
    // only until every worker has joined. Spans inside workers carry the
    // worker's trace thread id, so Chrome-trace timelines attribute each
    // client's training to the worker that ran it.
    std::vector<ClientUpdate> results(clients.size());
    auto train_client = [&](size_t c) {
      const Dataset& client = clients[c];
      ClientUpdate& out = results[c];
      if (client.empty()) {
        // Empty clients contribute a zero update to the weighted average.
        out.params.assign(global_params.size(), 0.0);
        return;
      }
      CTFL_SPAN("ctfl.train.client");
      LogicalNet local_net = global;  // start from the global weights
      const TrainReport report = TrainGrafted(local_net, client, local);
      out.final_loss = report.final_loss;
      out.steps = report.steps;
      out.trained = true;
      out.params = local_net.GetParameters();
      // Weight by data volume (the FedAvg average, McMahan et al.).
      const double weight = static_cast<double>(client.size()) / total;
      for (double& v : out.params) v *= weight;
    };
    if (pool != nullptr) {
      pool->ParallelFor(0, clients.size(), train_client);
    } else {
      for (size_t c = 0; c < clients.size(); ++c) train_client(c);
    }

    // ---- Ordered commit: consume updates in client-index order. The
    // floating-point folds below (loss sum, aggregation) therefore see
    // the exact operand sequence of the serial schedule.
    double loss_sum = 0.0;
    int clients_trained = 0;
    std::vector<std::vector<double>> updates;
    updates.reserve(clients.size());
    for (ClientUpdate& result : results) {
      if (result.trained) {
        loss_sum += result.final_loss;
        ++clients_trained;
        if (stats != nullptr) stats->grafting_steps += result.steps;
      }
      updates.push_back(std::move(result.params));
    }

    std::vector<double> averaged(global_params.size(), 0.0);
    {
      CTFL_SPAN("ctfl.train.aggregate");
      if (config.secure_aggregation) {
        const SecureAggregator aggregator(
            static_cast<int>(clients.size()), global_params.size(),
            config.secure_session_seed + round);
        std::vector<std::vector<double>> masked;
        masked.reserve(updates.size());
        for (size_t c = 0; c < updates.size(); ++c) {
          masked.push_back(
              aggregator.Mask(static_cast<int>(c), updates[c]).value());
        }
        averaged = aggregator.Aggregate(masked).value();
      } else {
        for (const auto& update : updates) {
          for (size_t k = 0; k < averaged.size(); ++k) {
            averaged[k] += update[k];
          }
        }
      }
    }
    global.SetParameters(averaged);
    global.ProjectWeights();

    round_counter.Add(1);
    const double round_seconds = round_watch.LapSeconds();
    round_hist.Observe(round_seconds * 1e6);
    if (stats != nullptr) {
      telemetry::RoundTelemetry rt;
      rt.round = round;
      rt.seconds = round_seconds;
      // Guard the mean: a round where every client is empty (or where
      // training is skipped entirely) must not divide by zero.
      rt.mean_local_loss =
          clients_trained > 0 ? loss_sum / clients_trained : 0.0;
      rt.clients_trained = clients_trained;
      stats->rounds.push_back(rt);
    }
    if (config.verbose) {
      CTFL_LOG(Info) << "fedavg round " << round << " done";
    }
  }
}

LogicalNet TrainFederated(SchemaPtr schema,
                          const LogicalNetConfig& net_config,
                          const std::vector<Dataset>& clients,
                          const FedAvgConfig& config, FedAvgStats* stats) {
  LogicalNet net(std::move(schema), net_config);
  RunFedAvg(net, clients, config, stats);
  return net;
}

LogicalNet TrainCentral(SchemaPtr schema, const LogicalNetConfig& net_config,
                        const Dataset& data, const TrainConfig& config,
                        TrainReport* report) {
  LogicalNet net(std::move(schema), net_config);
  TrainReport local_report = TrainGrafted(net, data, config);
  if (report != nullptr) *report = std::move(local_report);
  return net;
}

}  // namespace ctfl
