#include "ctfl/fl/fedavg.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "ctfl/fl/secure_agg.h"
#include "ctfl/telemetry/metrics.h"
#include "ctfl/telemetry/trace.h"
#include "ctfl/util/cpu_time.h"
#include "ctfl/util/logging.h"
#include "ctfl/util/stopwatch.h"
#include "ctfl/util/string_util.h"
#include "ctfl/util/thread_pool.h"

namespace ctfl {

namespace {

/// Result of one client's local training for one round, produced by any
/// worker thread but *committed* in client-index order so that weighted
/// averaging, secure-aggregation masking, and the round's loss stats are
/// bit-identical to the serial schedule (DESIGN.md §9).
struct ClientUpdate {
  /// Raw (unweighted) local parameters; re-weighting happens at commit
  /// time over the surviving cohort (zeros for an empty client).
  std::vector<double> params;
  double final_loss = 0.0;
  int steps = 0;
  bool trained = false;
};

/// Per-(round, client) training seed. Mixing the client index in (via a
/// SplitMix64-style finalizer) guarantees that clients holding identical
/// data still draw distinct batch shuffles and therefore emit distinct
/// updates — the old derivation `base + round * 7919` made every client
/// of a round train with one shared seed, correlating shuffles across
/// the federation.
uint64_t PerClientSeed(uint64_t base, int round, size_t client) {
  uint64_t z = base + static_cast<uint64_t>(round) * 7919;
  z ^= (static_cast<uint64_t>(client) + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Status RunFedAvg(LogicalNet& global, const std::vector<Dataset>& clients,
                 const FedAvgConfig& config, FedAvgStats* stats) {
  // Reset stats before any early return so callers never read a previous
  // invocation's rounds out of a reused FedAvgStats.
  if (stats != nullptr) {
    stats->rounds.clear();
    stats->rounds.reserve(config.rounds > 0 ? config.rounds : 0);
    stats->grafting_steps = 0;
    stats->clients_dropped = 0;
    stats->retries = 0;
    stats->rounds_degraded = 0;
  }
  if (config.retry_budget < 0) {
    return Status::InvalidArgument(
        StrFormat("retry_budget must be >= 0, got %d", config.retry_budget));
  }

  size_t nonempty_clients = 0;
  {
    size_t total = 0;
    for (const Dataset& c : clients) {
      total += c.size();
      if (!c.empty()) ++nonempty_clients;
    }
    if (total == 0) return Status::OK();
  }

  static telemetry::Counter& round_counter =
      telemetry::MetricsRegistry::Global().GetCounter("ctfl.train.rounds");
  static telemetry::Histogram& round_hist =
      telemetry::MetricsRegistry::Global().GetHistogram(
          "ctfl.train.round_us");
  static telemetry::Gauge& parallel_gauge =
      telemetry::MetricsRegistry::Global().GetGauge(
          "ctfl.train.parallel_clients");
  static telemetry::Counter& dropped_counter =
      telemetry::MetricsRegistry::Global().GetCounter(
          "ctfl.train.clients_dropped");
  static telemetry::Counter& degraded_counter =
      telemetry::MetricsRegistry::Global().GetCounter(
          "ctfl.train.rounds_degraded");
  static telemetry::Counter& retry_counter =
      telemetry::MetricsRegistry::Global().GetCounter("ctfl.train.retries");

  TrainConfig local = config.local;
  local.epochs = config.local_epochs;
  const FailurePlan& plan = config.failure;

  // Fan local training out across at most one worker per non-empty
  // client. Inside a pool worker (e.g. a nested federated run) we stay
  // serial: ParallelFor would inline anyway, so skip the pool entirely.
  int fan_out = std::min<int>(ResolveThreadCount(config.num_threads),
                              static_cast<int>(nonempty_clients));
  fan_out = std::max(1, fan_out);
  std::unique_ptr<ThreadPool> pool;
  if (fan_out > 1 && !ThreadPool::InPoolWorker()) {
    pool = std::make_unique<ThreadPool>(fan_out);
  }
  parallel_gauge.Set(pool != nullptr ? fan_out : 1);

  if (config.model_observer) {
    // Round 0: the initialized global model before any training — the
    // baseline a streaming delta chain diffs against.
    config.model_observer(0, global, telemetry::RoundTelemetry{});
  }

  Stopwatch round_watch;
  // Process-wide CPU clock so a round's cpu_seconds includes the
  // ThreadPool workers' local-training time, not just this thread.
  ProcessCpuStopwatch round_cpu_watch;
  for (int round = 0; round < config.rounds; ++round) {
    CTFL_SPAN("ctfl.train.round");
    const std::vector<double> global_params = global.GetParameters();

    // ---- Availability: dropout is decided before any compute is spent —
    // an offline client neither trains nor uploads, and (being offline)
    // gets no retries.
    std::vector<char> available(clients.size(), 1);
    if (!plan.empty()) {
      for (size_t c = 0; c < clients.size(); ++c) {
        if (!clients[c].empty() &&
            plan.DropsOut(round, static_cast<int>(c))) {
          available[c] = 0;
        }
      }
    }

    // ---- Fan-out: each available client trains a private copy of the
    // global net. Workers only touch their own ClientUpdate slot;
    // `global` is read-only until every worker has joined. Spans inside
    // workers carry the worker's trace thread id, so Chrome-trace
    // timelines attribute each client's training to the worker that ran
    // it.
    std::vector<ClientUpdate> results(clients.size());
    auto train_client = [&](size_t c) {
      const Dataset& client = clients[c];
      ClientUpdate& out = results[c];
      if (client.empty()) {
        // Empty clients contribute a zero update to the weighted average.
        out.params.assign(global_params.size(), 0.0);
        return;
      }
      if (!available[c]) return;  // offline: no update this round
      CTFL_SPAN("ctfl.train.client");
      LogicalNet local_net = global;  // start from the global weights
      TrainConfig client_config = local;
      client_config.seed = PerClientSeed(config.local.seed, round, c);
      const TrainReport report = TrainGrafted(local_net, client,
                                              client_config);
      out.final_loss = report.final_loss;
      out.steps = report.steps;
      out.trained = true;
      out.params = local_net.GetParameters();
    };
    if (pool != nullptr) {
      pool->ParallelFor(0, clients.size(), train_client);
    } else {
      for (size_t c = 0; c < clients.size(); ++c) train_client(c);
    }

    // ---- Ordered commit: uploads are received, validated, and (on
    // fault) retried in client-index order. The floating-point folds
    // below (loss sum, re-weighting, aggregation) therefore see the
    // exact operand sequence of the serial schedule, and — with an empty
    // plan — of the fault-free engine.
    double loss_sum = 0.0;
    int clients_trained = 0;
    int round_dropped = 0;
    int round_retries = 0;
    std::vector<int> cohort;  // accepted clients, ascending
    cohort.reserve(clients.size());
    std::vector<std::vector<double>> updates(clients.size());
    size_t cohort_volume = 0;  // data volume of the surviving cohort
    for (size_t c = 0; c < clients.size(); ++c) {
      ClientUpdate& result = results[c];
      if (clients[c].empty()) {
        // An empty client's zero update is always "accepted": it cannot
        // fail, and keeping it in the cohort preserves the fault-free
        // masking schedule bit-for-bit.
        cohort.push_back(static_cast<int>(c));
        updates[c] = std::move(result.params);
        continue;
      }
      if (!available[c]) {
        ++round_dropped;
        if (config.verbose) {
          CTFL_LOG(Info) << "round " << round << ": client " << c
                         << " dropped out";
        }
        continue;
      }
      // Upload with a bounded retry budget. Every attempt draws its own
      // fault outcome from the plan (a retry can fail again) and the
      // server validates what actually arrived — quarantine, never
      // abort.
      bool accepted = false;
      Status last_error;
      const int attempts = 1 + config.retry_budget;
      for (int attempt = 0; attempt < attempts && !accepted; ++attempt) {
        const FailureKind kind =
            plan.empty() ? FailureKind::kNone
                         : plan.UploadOutcome(round, static_cast<int>(c),
                                              attempt);
        Status verdict;
        if (kind == FailureKind::kStraggler) {
          // The payload never arrived inside the round deadline; there
          // is nothing to validate.
          verdict = Status::FailedPrecondition(
              "upload missed the round deadline");
        } else if (kind == FailureKind::kNone) {
          // Clean attempt: validate in place, no defensive copy — this
          // is the whole fault-free fast path.
          verdict = ValidateClientUpdate(result.params,
                                         global_params.size());
          if (verdict.ok()) {
            updates[c] = std::move(result.params);
            accepted = true;
            break;
          }
        } else {
          std::vector<double> upload = result.params;
          TamperUpdate(kind, round, static_cast<int>(c), attempt, upload);
          verdict = ValidateClientUpdate(upload, global_params.size());
          if (verdict.ok()) {
            updates[c] = std::move(upload);
            accepted = true;
            break;
          }
        }
        last_error = verdict;
        if (attempt + 1 < attempts) ++round_retries;
        if (config.verbose) {
          CTFL_LOG(Info) << "round " << round << ": client " << c
                         << " upload attempt " << attempt << " rejected ("
                         << FailureKindName(kind)
                         << "): " << verdict.message();
        }
      }
      if (!accepted) {
        ++round_dropped;
        CTFL_LOG(Warning) << "round " << round << ": client " << c
                          << " quarantined after " << attempts
                          << " attempt(s): " << last_error.message();
        continue;
      }
      cohort.push_back(static_cast<int>(c));
      cohort_volume += clients[c].size();
      loss_sum += result.final_loss;
      ++clients_trained;
      if (stats != nullptr) stats->grafting_steps += result.steps;
    }

    const bool degraded = round_dropped > 0;
    // ---- Partial-cohort re-weighted averaging: survivors are weighted
    // by their share of the *surviving* data volume (the FedAvg average
    // over the cohort, McMahan et al.). With a full cohort this is the
    // same weight sequence as the fault-free engine.
    if (cohort_volume > 0) {
      for (int c : cohort) {
        const double weight =
            static_cast<double>(clients[c].size()) /
            static_cast<double>(cohort_volume);
        for (double& v : updates[c]) v *= weight;
      }

      std::vector<double> averaged(global_params.size(), 0.0);
      {
        CTFL_SPAN("ctfl.train.aggregate");
        if (config.secure_aggregation) {
          const SecureAggregator aggregator(
              static_cast<int>(clients.size()), global_params.size(),
              config.secure_session_seed + round);
          std::vector<std::vector<double>> masked;
          masked.reserve(cohort.size());
          for (int c : cohort) {
            CTFL_ASSIGN_OR_RETURN(
                std::vector<double> masked_update,
                aggregator.MaskCohort(c, cohort, updates[c]));
            masked.push_back(std::move(masked_update));
          }
          CTFL_ASSIGN_OR_RETURN(averaged,
                                aggregator.AggregateCohort(cohort, masked));
        } else {
          for (int c : cohort) {
            const std::vector<double>& update = updates[c];
            for (size_t k = 0; k < averaged.size(); ++k) {
              averaged[k] += update[k];
            }
          }
        }
      }
      global.SetParameters(averaged);
      global.ProjectWeights();
    } else if (config.verbose || degraded) {
      // Every data-bearing client was lost: the round degrades to a
      // no-op instead of dividing by zero or aborting — the model simply
      // carries over to the next round.
      CTFL_LOG(Warning) << "round " << round
                        << " fully degraded: no surviving uploads, "
                           "global model unchanged";
    }

    round_counter.Add(1);
    if (round_dropped > 0) dropped_counter.Add(round_dropped);
    if (round_retries > 0) retry_counter.Add(round_retries);
    if (degraded) degraded_counter.Add(1);
    const double round_seconds = round_watch.LapSeconds();
    const double round_cpu_seconds = round_cpu_watch.LapSeconds();
    round_hist.Observe(round_seconds * 1e6);
    if (stats != nullptr || config.round_observer || config.model_observer) {
      telemetry::RoundTelemetry rt;
      rt.round = round;
      rt.seconds = round_seconds;
      rt.cpu_seconds = round_cpu_seconds;
      // Guard the mean: a round where every client is empty (or
      // quarantined) must not divide by zero.
      rt.mean_local_loss =
          clients_trained > 0 ? loss_sum / clients_trained : 0.0;
      rt.clients_trained = clients_trained;
      rt.clients_dropped = round_dropped;
      rt.retries = round_retries;
      rt.degraded = degraded;
      if (config.round_observer) config.round_observer(rt);
      if (config.model_observer) {
        // 1-based: round r's committed model (unchanged when the round
        // fully degraded).
        config.model_observer(round + 1, global, rt);
      }
      if (stats != nullptr) {
        stats->rounds.push_back(rt);
        stats->clients_dropped += round_dropped;
        stats->retries += round_retries;
        if (degraded) ++stats->rounds_degraded;
      }
    }
    if (config.verbose) {
      CTFL_LOG(Info) << "fedavg round " << round << " done ("
                     << clients_trained << " trained, " << round_dropped
                     << " dropped, " << round_retries << " retries)";
    }
  }
  return Status::OK();
}

Result<LogicalNet> TrainFederated(SchemaPtr schema,
                                  const LogicalNetConfig& net_config,
                                  const std::vector<Dataset>& clients,
                                  const FedAvgConfig& config,
                                  FedAvgStats* stats) {
  LogicalNet net(std::move(schema), net_config);
  CTFL_RETURN_IF_ERROR(RunFedAvg(net, clients, config, stats));
  return net;
}

LogicalNet TrainCentral(SchemaPtr schema, const LogicalNetConfig& net_config,
                        const Dataset& data, const TrainConfig& config,
                        TrainReport* report) {
  LogicalNet net(std::move(schema), net_config);
  TrainReport local_report = TrainGrafted(net, data, config);
  if (report != nullptr) *report = std::move(local_report);
  return net;
}

}  // namespace ctfl
