#include "ctfl/fl/fedavg.h"

#include "ctfl/fl/secure_agg.h"
#include "ctfl/util/logging.h"

namespace ctfl {

void RunFedAvg(LogicalNet& global, const std::vector<Dataset>& clients,
               const FedAvgConfig& config) {
  size_t total = 0;
  for (const Dataset& c : clients) total += c.size();
  if (total == 0) return;

  TrainConfig local = config.local;
  local.epochs = config.local_epochs;

  for (int round = 0; round < config.rounds; ++round) {
    const std::vector<double> global_params = global.GetParameters();
    local.seed = config.local.seed + static_cast<uint64_t>(round) * 7919;

    // Each client's contribution to the average, weighted by data volume
    // (empty clients contribute a zero update).
    std::vector<std::vector<double>> updates;
    updates.reserve(clients.size());
    for (const Dataset& client : clients) {
      if (client.empty()) {
        updates.emplace_back(global_params.size(), 0.0);
        continue;
      }
      LogicalNet local_net = global;  // start from the global weights
      TrainGrafted(local_net, client, local);
      std::vector<double> params = local_net.GetParameters();
      const double weight = static_cast<double>(client.size()) / total;
      for (double& v : params) v *= weight;
      updates.push_back(std::move(params));
    }

    std::vector<double> averaged(global_params.size(), 0.0);
    if (config.secure_aggregation) {
      const SecureAggregator aggregator(
          static_cast<int>(clients.size()), global_params.size(),
          config.secure_session_seed + round);
      std::vector<std::vector<double>> masked;
      masked.reserve(updates.size());
      for (size_t c = 0; c < updates.size(); ++c) {
        masked.push_back(
            aggregator.Mask(static_cast<int>(c), updates[c]).value());
      }
      averaged = aggregator.Aggregate(masked).value();
    } else {
      for (const auto& update : updates) {
        for (size_t k = 0; k < averaged.size(); ++k) {
          averaged[k] += update[k];
        }
      }
    }
    global.SetParameters(averaged);
    global.ProjectWeights();
    if (config.verbose) {
      CTFL_LOG(Info) << "fedavg round " << round << " done";
    }
  }
}

LogicalNet TrainFederated(SchemaPtr schema,
                          const LogicalNetConfig& net_config,
                          const std::vector<Dataset>& clients,
                          const FedAvgConfig& config) {
  LogicalNet net(std::move(schema), net_config);
  RunFedAvg(net, clients, config);
  return net;
}

LogicalNet TrainCentral(SchemaPtr schema, const LogicalNetConfig& net_config,
                        const Dataset& data, const TrainConfig& config) {
  LogicalNet net(std::move(schema), net_config);
  TrainGrafted(net, data, config);
  return net;
}

}  // namespace ctfl
