#include "ctfl/fl/fedavg.h"

#include "ctfl/fl/secure_agg.h"
#include "ctfl/telemetry/metrics.h"
#include "ctfl/telemetry/trace.h"
#include "ctfl/util/logging.h"
#include "ctfl/util/stopwatch.h"

namespace ctfl {

void RunFedAvg(LogicalNet& global, const std::vector<Dataset>& clients,
               const FedAvgConfig& config, FedAvgStats* stats) {
  size_t total = 0;
  for (const Dataset& c : clients) total += c.size();
  if (total == 0) return;

  static telemetry::Counter& round_counter =
      telemetry::MetricsRegistry::Global().GetCounter("ctfl.train.rounds");
  static telemetry::Histogram& round_hist =
      telemetry::MetricsRegistry::Global().GetHistogram(
          "ctfl.train.round_us");

  TrainConfig local = config.local;
  local.epochs = config.local_epochs;

  if (stats != nullptr) {
    stats->rounds.clear();
    stats->rounds.reserve(config.rounds > 0 ? config.rounds : 0);
    stats->grafting_steps = 0;
  }

  Stopwatch round_watch;
  for (int round = 0; round < config.rounds; ++round) {
    CTFL_SPAN("ctfl.train.round");
    const std::vector<double> global_params = global.GetParameters();
    local.seed = config.local.seed + static_cast<uint64_t>(round) * 7919;

    // Each client's contribution to the average, weighted by data volume
    // (empty clients contribute a zero update).
    std::vector<std::vector<double>> updates;
    updates.reserve(clients.size());
    double loss_sum = 0.0;
    int clients_trained = 0;
    for (const Dataset& client : clients) {
      if (client.empty()) {
        updates.emplace_back(global_params.size(), 0.0);
        continue;
      }
      CTFL_SPAN("ctfl.train.client");
      LogicalNet local_net = global;  // start from the global weights
      const TrainReport local_report = TrainGrafted(local_net, client, local);
      loss_sum += local_report.final_loss;
      ++clients_trained;
      if (stats != nullptr) stats->grafting_steps += local_report.steps;
      std::vector<double> params = local_net.GetParameters();
      const double weight = static_cast<double>(client.size()) / total;
      for (double& v : params) v *= weight;
      updates.push_back(std::move(params));
    }

    std::vector<double> averaged(global_params.size(), 0.0);
    {
      CTFL_SPAN("ctfl.train.aggregate");
      if (config.secure_aggregation) {
        const SecureAggregator aggregator(
            static_cast<int>(clients.size()), global_params.size(),
            config.secure_session_seed + round);
        std::vector<std::vector<double>> masked;
        masked.reserve(updates.size());
        for (size_t c = 0; c < updates.size(); ++c) {
          masked.push_back(
              aggregator.Mask(static_cast<int>(c), updates[c]).value());
        }
        averaged = aggregator.Aggregate(masked).value();
      } else {
        for (const auto& update : updates) {
          for (size_t k = 0; k < averaged.size(); ++k) {
            averaged[k] += update[k];
          }
        }
      }
    }
    global.SetParameters(averaged);
    global.ProjectWeights();

    round_counter.Add(1);
    const double round_seconds = round_watch.LapSeconds();
    round_hist.Observe(round_seconds * 1e6);
    if (stats != nullptr) {
      telemetry::RoundTelemetry rt;
      rt.round = round;
      rt.seconds = round_seconds;
      rt.mean_local_loss =
          clients_trained > 0 ? loss_sum / clients_trained : 0.0;
      rt.clients_trained = clients_trained;
      stats->rounds.push_back(rt);
    }
    if (config.verbose) {
      CTFL_LOG(Info) << "fedavg round " << round << " done";
    }
  }
}

LogicalNet TrainFederated(SchemaPtr schema,
                          const LogicalNetConfig& net_config,
                          const std::vector<Dataset>& clients,
                          const FedAvgConfig& config, FedAvgStats* stats) {
  LogicalNet net(std::move(schema), net_config);
  RunFedAvg(net, clients, config, stats);
  return net;
}

LogicalNet TrainCentral(SchemaPtr schema, const LogicalNetConfig& net_config,
                        const Dataset& data, const TrainConfig& config,
                        TrainReport* report) {
  LogicalNet net(std::move(schema), net_config);
  TrainReport local_report = TrainGrafted(net, data, config);
  if (report != nullptr) *report = std::move(local_report);
  return net;
}

}  // namespace ctfl
