#include "ctfl/fl/utility.h"

#include <algorithm>

#include "ctfl/util/logging.h"

namespace ctfl {

uint64_t CoalitionMask(const std::vector<int>& coalition) {
  uint64_t mask = 0;
  for (int id : coalition) {
    CTFL_CHECK(id >= 0 && id < 64);
    mask |= (1ULL << id);
  }
  return mask;
}

RetrainUtility::RetrainUtility(const Federation* federation,
                               const Dataset* test, Config config)
    : federation_(federation), test_(test), config_(std::move(config)) {
  CTFL_CHECK(federation_ != nullptr && test_ != nullptr);
  CTFL_CHECK(!test_->empty());
}

double RetrainUtility::EmptyValue() const {
  const auto counts = test_->ClassCounts();
  // Confusion matrix of the constant majority-class predictor.
  ConfusionMatrix cm;
  if (counts[1] >= counts[0]) {
    cm.tp = counts[1];
    cm.fp = counts[0];
  } else {
    cm.tn = counts[0];
    cm.fn = counts[1];
  }
  return cm.Value(config_.metric);
}

double RetrainUtility::Value(const std::vector<int>& coalition) {
  const uint64_t mask = CoalitionMask(coalition);
  const auto it = cache_.find(mask);
  if (it != cache_.end()) return it->second;

  double value = 0.0;
  if (mask == 0) {
    value = EmptyValue();
  } else {
    ++evaluations_;
    std::vector<int> members;
    for (int id = 0; id < num_participants(); ++id) {
      if (mask & (1ULL << id)) members.push_back(id);
    }
    const SchemaPtr schema = (*federation_)[0].data.schema();
    if (config_.federated) {
      std::vector<Dataset> clients;
      clients.reserve(members.size());
      for (int id : members) clients.push_back((*federation_)[id].data);
      Result<LogicalNet> net =
          TrainFederated(schema, config_.net, clients, config_.fedavg);
      // Coalition evaluation never configures failure injection, so an
      // error here can only be a malformed FedAvgConfig — a caller bug.
      CTFL_CHECK(net.ok()) << "coalition training failed: " << net.status();
      value = EvaluateMetric(*net, *test_, config_.metric);
    } else {
      const Dataset merged = MergeCoalition(*federation_, members);
      if (merged.empty()) {
        value = EmptyValue();
      } else {
        LogicalNet net =
            TrainCentral(schema, config_.net, merged, config_.train);
        value = EvaluateMetric(net, *test_, config_.metric);
      }
    }
  }
  cache_[mask] = value;
  return value;
}

TabularUtility::TabularUtility(int n, std::vector<double> values)
    : n_(n), values_(std::move(values)) {
  CTFL_CHECK(n_ > 0 && n_ < 20);
  CTFL_CHECK(values_.size() == (1ULL << n_));
}

double TabularUtility::Value(const std::vector<int>& coalition) {
  const uint64_t mask = CoalitionMask(coalition);
  CTFL_CHECK(mask < values_.size());
  if (mask != 0 && !seen_[mask]) {
    seen_[mask] = true;
    ++evaluations_;
  }
  return values_[mask];
}

}  // namespace ctfl
