#ifndef CTFL_FL_METRICS_H_
#define CTFL_FL_METRICS_H_

#include <string>
#include <vector>

#include "ctfl/data/dataset.h"
#include "ctfl/nn/logical_net.h"

namespace ctfl {

/// Task-performance metrics beyond plain accuracy (paper §II-A: "can be
/// extended to ... other performance metrics, such as F1-score").
enum class MetricKind {
  kAccuracy,
  kBalancedAccuracy,
  kF1,
  kPrecision,
  kRecall,
};

const char* MetricKindToString(MetricKind kind);

/// Binary-classification confusion counts and the metrics derived from
/// them. Degenerate denominators evaluate to 0.
struct ConfusionMatrix {
  size_t tp = 0;
  size_t tn = 0;
  size_t fp = 0;
  size_t fn = 0;

  size_t total() const { return tp + tn + fp + fn; }
  double Accuracy() const;
  double Precision() const;
  double Recall() const;
  double F1() const;
  double BalancedAccuracy() const;
  double Value(MetricKind kind) const;
};

/// Confusion counts of the deployed (binarized) model on `dataset`.
ConfusionMatrix EvaluateConfusion(const LogicalNet& net,
                                  const Dataset& dataset);

/// Metric value of the deployed model — the generalized data utility
/// v(D) for the chosen metric.
double EvaluateMetric(const LogicalNet& net, const Dataset& dataset,
                      MetricKind kind);

/// Per-test-instance credit weights realizing an *instance-decomposable*
/// metric as sum over correctly classified tests:
///     metric = sum_t 1[correct_t] * w_t.
/// Accuracy: w_t = 1/|D|; balanced accuracy: w_t = 1/(2 |D_{class(t)}|).
/// F1 / precision / recall are not instance-decomposable (their
/// denominators depend on the predictions), so they return NotFound —
/// callers evaluate them via EvaluateMetric instead.
Result<std::vector<double>> InstanceCreditWeights(const Dataset& test,
                                                  MetricKind kind);

}  // namespace ctfl

#endif  // CTFL_FL_METRICS_H_
