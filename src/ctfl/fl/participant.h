#ifndef CTFL_FL_PARTICIPANT_H_
#define CTFL_FL_PARTICIPANT_H_

#include <string>
#include <vector>

#include "ctfl/data/dataset.h"
#include "ctfl/util/bitset.h"

namespace ctfl {

/// One federated-learning client: an identity plus its private local
/// dataset. In this simulation the dataset lives in-process, but every
/// algorithm in the library only touches the pieces a real deployment
/// would expose (model updates and rule-activation vectors).
struct Participant {
  int id = 0;
  std::string name;
  Dataset data;

  Participant(int id_in, std::string name_in, Dataset data_in)
      : id(id_in), name(std::move(name_in)), data(std::move(data_in)) {}
};

/// A federation: the ordered list of participants. Participant i's
/// contribution score lands at index i of every scheme's output.
using Federation = std::vector<Participant>;

/// Wraps per-participant datasets into a Federation with names "P0", "P1"…
Federation MakeFederation(std::vector<Dataset> datasets);

/// Union of all participants' data (D_N in the paper).
Dataset MergeFederation(const Federation& federation);

/// Union of the named participants' data (D_S for coalition S).
Dataset MergeCoalition(const Federation& federation,
                       const std::vector<int>& coalition);

/// Total number of training instances across the federation.
size_t FederationSize(const Federation& federation);

}  // namespace ctfl

#endif  // CTFL_FL_PARTICIPANT_H_
