#include "ctfl/fl/privacy.h"

#include <cmath>

#include "ctfl/util/logging.h"

namespace ctfl {

double RandomizedResponseFlipProbability(double epsilon) {
  CTFL_CHECK(epsilon >= 0.0);
  return 1.0 / (1.0 + std::exp(epsilon));
}

Bitset RandomizedResponse(const Bitset& bits, double epsilon, Rng& rng) {
  const double flip = RandomizedResponseFlipProbability(epsilon);
  Bitset out = bits;
  for (size_t i = 0; i < bits.size(); ++i) {
    if (rng.Bernoulli(flip)) {
      if (out.Test(i)) {
        out.Clear(i);
      } else {
        out.Set(i);
      }
    }
  }
  return out;
}

std::vector<Bitset> RandomizedResponseAll(const std::vector<Bitset>& uploads,
                                          double epsilon, Rng& rng) {
  std::vector<Bitset> out;
  out.reserve(uploads.size());
  for (const Bitset& b : uploads) {
    out.push_back(RandomizedResponse(b, epsilon, rng));
  }
  return out;
}

double DebiasedCount(double observed_count, double num_reports,
                     double epsilon) {
  const double q = RandomizedResponseFlipProbability(epsilon);
  const double denom = 1.0 - 2.0 * q;
  double estimate = observed_count;
  if (denom > 0.0) {  // eps = 0 leaves denom at 0: nothing to recover
    estimate = (observed_count - num_reports * q) / denom;
  }
  // The unbiased estimator has unbounded range: sampling noise (or an
  // adversarial report) can push it below 0 or above the number of
  // reports, and as eps -> 0 the 1/(1-2q) blow-up amplifies both tails.
  // A count, by definition, lives in [0, n] — clamp to the feasible set
  // (this is the standard projection step for randomized-response
  // estimators; it can only reduce estimation error).
  if (estimate < 0.0) return 0.0;
  if (estimate > num_reports) return num_reports;
  return estimate;
}

}  // namespace ctfl
