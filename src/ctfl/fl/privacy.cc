#include "ctfl/fl/privacy.h"

#include <cmath>

#include "ctfl/util/logging.h"

namespace ctfl {

double RandomizedResponseFlipProbability(double epsilon) {
  CTFL_CHECK(epsilon >= 0.0);
  return 1.0 / (1.0 + std::exp(epsilon));
}

Bitset RandomizedResponse(const Bitset& bits, double epsilon, Rng& rng) {
  const double flip = RandomizedResponseFlipProbability(epsilon);
  Bitset out = bits;
  for (size_t i = 0; i < bits.size(); ++i) {
    if (rng.Bernoulli(flip)) {
      if (out.Test(i)) {
        out.Clear(i);
      } else {
        out.Set(i);
      }
    }
  }
  return out;
}

std::vector<Bitset> RandomizedResponseAll(const std::vector<Bitset>& uploads,
                                          double epsilon, Rng& rng) {
  std::vector<Bitset> out;
  out.reserve(uploads.size());
  for (const Bitset& b : uploads) {
    out.push_back(RandomizedResponse(b, epsilon, rng));
  }
  return out;
}

double DebiasedCount(double observed_count, double num_reports,
                     double epsilon) {
  const double q = RandomizedResponseFlipProbability(epsilon);
  const double denom = 1.0 - 2.0 * q;
  if (denom <= 0.0) return observed_count;  // eps = 0: nothing to recover
  return (observed_count - num_reports * q) / denom;
}

}  // namespace ctfl
