#include "ctfl/fl/partition.h"

#include <algorithm>

#include "ctfl/util/logging.h"

namespace ctfl {
namespace {

// Assigns the (shuffled) indices to n buckets with the given ratios.
std::vector<std::vector<size_t>> AssignByRatio(
    std::vector<size_t> indices, const std::vector<double>& ratios,
    Rng& rng) {
  std::vector<int> perm(indices.size());
  for (size_t i = 0; i < indices.size(); ++i) perm[i] = static_cast<int>(i);
  rng.Shuffle(perm);

  const int n = static_cast<int>(ratios.size());
  std::vector<std::vector<size_t>> buckets(n);
  size_t cursor = 0;
  for (int p = 0; p < n; ++p) {
    size_t take = static_cast<size_t>(ratios[p] * indices.size() + 0.5);
    if (p == n - 1) take = indices.size() - cursor;  // remainder
    take = std::min(take, indices.size() - cursor);
    for (size_t k = 0; k < take; ++k) {
      buckets[p].push_back(indices[perm[cursor + k]]);
    }
    cursor += take;
  }
  // Distribute any rounding leftovers round-robin.
  for (int p = 0; cursor < indices.size(); ++cursor, p = (p + 1) % n) {
    buckets[p].push_back(indices[perm[cursor]]);
  }
  return buckets;
}

std::vector<Dataset> BucketsToDatasets(
    const Dataset& train, std::vector<std::vector<size_t>> buckets) {
  std::vector<Dataset> out;
  out.reserve(buckets.size());
  for (auto& bucket : buckets) {
    std::sort(bucket.begin(), bucket.end());
    out.push_back(train.Subset(bucket));
  }
  return out;
}

}  // namespace

std::vector<Dataset> PartitionSkewSample(const Dataset& train, int n,
                                         double alpha, Rng& rng) {
  CTFL_CHECK(n > 0);
  std::vector<size_t> all(train.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  const std::vector<double> ratios = rng.Dirichlet(alpha, n);
  return BucketsToDatasets(train, AssignByRatio(std::move(all), ratios, rng));
}

std::vector<Dataset> PartitionSkewLabel(const Dataset& train, int n,
                                        double alpha, Rng& rng) {
  CTFL_CHECK(n > 0);
  std::vector<size_t> by_class[2];
  for (size_t i = 0; i < train.size(); ++i) {
    by_class[train.instance(i).label].push_back(i);
  }
  std::vector<std::vector<size_t>> buckets(n);
  for (auto& class_indices : by_class) {
    if (class_indices.empty()) continue;
    const std::vector<double> ratios = rng.Dirichlet(alpha, n);
    std::vector<std::vector<size_t>> class_buckets =
        AssignByRatio(class_indices, ratios, rng);
    for (int p = 0; p < n; ++p) {
      buckets[p].insert(buckets[p].end(), class_buckets[p].begin(),
                        class_buckets[p].end());
    }
  }
  return BucketsToDatasets(train, std::move(buckets));
}

std::vector<Dataset> PartitionUniform(const Dataset& train, int n, Rng& rng) {
  const std::vector<double> ratios(n, 1.0 / n);
  std::vector<size_t> all(train.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  return BucketsToDatasets(train, AssignByRatio(std::move(all), ratios, rng));
}

}  // namespace ctfl
