#include "ctfl/fl/failure.h"

#include <cmath>
#include <limits>

#include "ctfl/util/string_util.h"

namespace ctfl {

namespace {

/// SplitMix64 finalizer: a cheap, well-mixed 64 -> 64 bit hash.
uint64_t Mix64(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless uniform draw in [0, 1) keyed by (seed, round, client,
/// attempt, salt). Order-independent by construction: no generator state
/// is threaded between draws.
double HashUniform(uint64_t seed, int round, int client, int attempt,
                   uint64_t salt) {
  uint64_t h = Mix64(seed ^ (salt * 0x9e3779b97f4a7c15ULL));
  h = Mix64(h ^ (static_cast<uint64_t>(static_cast<uint32_t>(round)) |
                 (static_cast<uint64_t>(static_cast<uint32_t>(client))
                  << 32)));
  h = Mix64(h ^ static_cast<uint64_t>(static_cast<uint32_t>(attempt)));
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

Status RateError(const char* key, double value) {
  return Status::InvalidArgument(StrFormat(
      "failure plan: %s=%g is not a probability in [0, 1]", key, value));
}

}  // namespace

const char* FailureKindName(FailureKind kind) {
  switch (kind) {
    case FailureKind::kNone:
      return "none";
    case FailureKind::kDropout:
      return "dropout";
    case FailureKind::kStraggler:
      return "straggler";
    case FailureKind::kCorrupt:
      return "corrupt";
    case FailureKind::kSizeMismatch:
      return "mismatch";
  }
  return "unknown";
}

Result<FailurePlan> FailurePlan::Parse(const std::string& text) {
  FailureSpec spec;
  if (Trim(text).empty()) return FailurePlan(spec);
  for (const std::string& raw_term : Split(text, ',')) {
    const std::string term(Trim(raw_term));
    if (term.empty()) continue;
    const std::vector<std::string> kv = Split(term, '=');
    if (kv.size() != 2) {
      return Status::InvalidArgument(
          StrFormat("failure plan: term '%s' is not key=value",
                    term.c_str()));
    }
    const std::string key(Trim(kv[0]));
    const std::string value(Trim(kv[1]));
    if (key == "seed") {
      CTFL_ASSIGN_OR_RETURN(const int seed, ParseInt(value));
      spec.seed = static_cast<uint64_t>(seed);
      continue;
    }
    CTFL_ASSIGN_OR_RETURN(const double rate, ParseDouble(value));
    double* slot = nullptr;
    if (key == "dropout") {
      slot = &spec.dropout;
    } else if (key == "straggler") {
      slot = &spec.straggler;
    } else if (key == "corrupt") {
      slot = &spec.corrupt;
    } else if (key == "mismatch" || key == "size_mismatch") {
      slot = &spec.size_mismatch;
    } else {
      return Status::InvalidArgument(
          StrFormat("failure plan: unknown key '%s'", key.c_str()));
    }
    if (!(rate >= 0.0 && rate <= 1.0)) return RateError(key.c_str(), rate);
    *slot = rate;
  }
  const double upload_total =
      spec.straggler + spec.corrupt + spec.size_mismatch;
  if (upload_total > 1.0) {
    return Status::InvalidArgument(StrFormat(
        "failure plan: straggler+corrupt+mismatch=%g exceeds 1",
        upload_total));
  }
  return FailurePlan(spec);
}

bool FailurePlan::DropsOut(int round, int client) const {
  if (spec_.dropout <= 0.0) return false;
  return HashUniform(spec_.seed, round, client, /*attempt=*/0,
                     /*salt=*/0xd0u) < spec_.dropout;
}

FailureKind FailurePlan::UploadOutcome(int round, int client,
                                       int attempt) const {
  const double straggler = spec_.straggler;
  const double corrupt = spec_.corrupt;
  const double mismatch = spec_.size_mismatch;
  if (straggler <= 0.0 && corrupt <= 0.0 && mismatch <= 0.0) {
    return FailureKind::kNone;
  }
  const double u =
      HashUniform(spec_.seed, round, client, attempt, /*salt=*/0x0au);
  if (u < straggler) return FailureKind::kStraggler;
  if (u < straggler + corrupt) return FailureKind::kCorrupt;
  if (u < straggler + corrupt + mismatch) return FailureKind::kSizeMismatch;
  return FailureKind::kNone;
}

uint64_t FailurePlan::Fingerprint() const {
  if (empty()) return 0;
  auto mix_double = [](uint64_t h, double v) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    return Mix64(h ^ bits);
  };
  uint64_t h = Mix64(0xfa17u ^ spec_.seed);
  h = mix_double(h, spec_.dropout);
  h = mix_double(h, spec_.straggler);
  h = mix_double(h, spec_.corrupt);
  h = mix_double(h, spec_.size_mismatch);
  // Never collide with the "no plan" sentinel 0.
  return h == 0 ? 1 : h;
}

std::string FailurePlan::ToString() const {
  if (empty()) return "";
  std::string out;
  auto append = [&out](const char* key, double rate) {
    if (rate <= 0.0) return;
    if (!out.empty()) out += ',';
    out += StrFormat("%s=%g", key, rate);
  };
  append("dropout", spec_.dropout);
  append("straggler", spec_.straggler);
  append("corrupt", spec_.corrupt);
  append("mismatch", spec_.size_mismatch);
  out += StrFormat(",seed=%llu",
                   static_cast<unsigned long long>(spec_.seed));
  return out;
}

Status ValidateClientUpdate(const std::vector<double>& update,
                            size_t expected_size) {
  if (update.size() != expected_size) {
    return Status::InvalidArgument(
        StrFormat("update has %zu parameters, expected %zu", update.size(),
                  expected_size));
  }
  for (size_t i = 0; i < update.size(); ++i) {
    if (!std::isfinite(update[i])) {
      return Status::InvalidArgument(
          StrFormat("update coordinate %zu is not finite", i));
    }
  }
  return Status::OK();
}

void TamperUpdate(FailureKind kind, int round, int client, int attempt,
                  std::vector<double>& update) {
  switch (kind) {
    case FailureKind::kNone:
    case FailureKind::kStraggler:
    case FailureKind::kDropout:
      return;
    case FailureKind::kCorrupt: {
      if (update.empty()) return;
      // Plant NaNs at hashed coordinates — at least one, roughly 1/8 of
      // the vector — so validation sees realistic partial corruption.
      const uint64_t h =
          Mix64((static_cast<uint64_t>(static_cast<uint32_t>(round)) << 40) ^
                (static_cast<uint64_t>(static_cast<uint32_t>(client)) << 8) ^
                static_cast<uint64_t>(static_cast<uint32_t>(attempt)));
      const double nan = std::numeric_limits<double>::quiet_NaN();
      update[h % update.size()] = nan;
      for (size_t i = 0; i < update.size(); ++i) {
        if (((i * 0x9e3779b97f4a7c15ULL) ^ h) % 8 == 0) update[i] = nan;
      }
      return;
    }
    case FailureKind::kSizeMismatch:
      if (!update.empty()) {
        update.resize(update.size() - 1 - (update.size() - 1) / 2);
      } else {
        update.push_back(0.0);
      }
      return;
  }
}

}  // namespace ctfl
