#ifndef CTFL_FL_ADVERSARY_H_
#define CTFL_FL_ADVERSARY_H_

#include "ctfl/data/dataset.h"
#include "ctfl/util/rng.h"

namespace ctfl {

/// The three adverse behaviors of paper §IV-A / §VI-A. Each mutates a
/// participant's local dataset the way a strategic or malicious client
/// would, and returns how many instances were touched.

/// Data replication: duplicates a uniformly chosen `ratio` fraction of the
/// dataset (appended as exact copies). A strategic client hoping the
/// volume-proportional micro scheme over-credits it.
size_t ReplicateData(Dataset& data, double ratio, Rng& rng);

/// Low-quality data: relabels a `ratio` fraction with labels drawn at
/// random from the participant's own label distribution — careless
/// annotation rather than a targeted attack.
size_t InjectLowQuality(Dataset& data, double ratio, Rng& rng);

/// Label flipping: inverts the labels of a `ratio` fraction — the
/// poisoning attack of Biggio et al. that tracing's loss analysis should
/// expose.
size_t FlipLabels(Dataset& data, double ratio, Rng& rng);

}  // namespace ctfl

#endif  // CTFL_FL_ADVERSARY_H_
