#include "ctfl/fl/metrics.h"

namespace ctfl {

const char* MetricKindToString(MetricKind kind) {
  switch (kind) {
    case MetricKind::kAccuracy:
      return "accuracy";
    case MetricKind::kBalancedAccuracy:
      return "balanced-accuracy";
    case MetricKind::kF1:
      return "f1";
    case MetricKind::kPrecision:
      return "precision";
    case MetricKind::kRecall:
      return "recall";
  }
  return "?";
}

double ConfusionMatrix::Accuracy() const {
  const size_t n = total();
  return n == 0 ? 0.0 : static_cast<double>(tp + tn) / n;
}

double ConfusionMatrix::Precision() const {
  const size_t denom = tp + fp;
  return denom == 0 ? 0.0 : static_cast<double>(tp) / denom;
}

double ConfusionMatrix::Recall() const {
  const size_t denom = tp + fn;
  return denom == 0 ? 0.0 : static_cast<double>(tp) / denom;
}

double ConfusionMatrix::F1() const {
  const double p = Precision();
  const double r = Recall();
  return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double ConfusionMatrix::BalancedAccuracy() const {
  const size_t pos = tp + fn;
  const size_t neg = tn + fp;
  if (pos == 0 || neg == 0) return Accuracy();
  const double tpr = static_cast<double>(tp) / pos;
  const double tnr = static_cast<double>(tn) / neg;
  return 0.5 * (tpr + tnr);
}

double ConfusionMatrix::Value(MetricKind kind) const {
  switch (kind) {
    case MetricKind::kAccuracy:
      return Accuracy();
    case MetricKind::kBalancedAccuracy:
      return BalancedAccuracy();
    case MetricKind::kF1:
      return F1();
    case MetricKind::kPrecision:
      return Precision();
    case MetricKind::kRecall:
      return Recall();
  }
  return 0.0;
}

ConfusionMatrix EvaluateConfusion(const LogicalNet& net,
                                  const Dataset& dataset) {
  ConfusionMatrix cm;
  if (dataset.empty()) return cm;
  const Matrix encoded = net.EncodeBatch(dataset);
  const Matrix logits = net.ForwardDiscrete(encoded);
  for (size_t r = 0; r < dataset.size(); ++r) {
    const int pred = logits(r, 1) >= logits(r, 0) ? 1 : 0;
    const int label = dataset.instance(r).label;
    if (pred == 1 && label == 1) ++cm.tp;
    if (pred == 0 && label == 0) ++cm.tn;
    if (pred == 1 && label == 0) ++cm.fp;
    if (pred == 0 && label == 1) ++cm.fn;
  }
  return cm;
}

double EvaluateMetric(const LogicalNet& net, const Dataset& dataset,
                      MetricKind kind) {
  return EvaluateConfusion(net, dataset).Value(kind);
}

Result<std::vector<double>> InstanceCreditWeights(const Dataset& test,
                                                  MetricKind kind) {
  std::vector<double> weights(test.size(), 0.0);
  switch (kind) {
    case MetricKind::kAccuracy: {
      const double w = test.empty() ? 0.0 : 1.0 / test.size();
      for (double& x : weights) x = w;
      return weights;
    }
    case MetricKind::kBalancedAccuracy: {
      const auto counts = test.ClassCounts();
      for (size_t t = 0; t < test.size(); ++t) {
        const size_t class_size = counts[test.instance(t).label];
        weights[t] = class_size == 0 ? 0.0 : 0.5 / class_size;
      }
      return weights;
    }
    case MetricKind::kF1:
    case MetricKind::kPrecision:
    case MetricKind::kRecall:
      return Status::NotFound(
          std::string(MetricKindToString(kind)) +
          " is not instance-decomposable; evaluate it via EvaluateMetric");
  }
  return Status::Internal("unhandled metric kind");
}

}  // namespace ctfl
