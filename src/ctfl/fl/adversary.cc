#include "ctfl/fl/adversary.h"

#include <algorithm>

namespace ctfl {
namespace {

// First ceil(ratio * size) indices of a random permutation.
std::vector<size_t> SampleIndices(size_t size, double ratio, Rng& rng) {
  ratio = std::clamp(ratio, 0.0, 1.0);
  const size_t count = static_cast<size_t>(ratio * size + 0.5);
  std::vector<int> perm = rng.Permutation(static_cast<int>(size));
  return std::vector<size_t>(perm.begin(), perm.begin() + count);
}

}  // namespace

size_t ReplicateData(Dataset& data, double ratio, Rng& rng) {
  const std::vector<size_t> picks = SampleIndices(data.size(), ratio, rng);
  for (size_t i : picks) data.AppendUnchecked(data.instance(i));
  return picks.size();
}

size_t InjectLowQuality(Dataset& data, double ratio, Rng& rng) {
  const double positive_rate = data.PositiveRate();
  const std::vector<size_t> picks = SampleIndices(data.size(), ratio, rng);
  // Rebuild with mutated labels (Dataset exposes no mutable instance
  // access by design; adversaries are the one writer).
  std::vector<bool> corrupt(data.size(), false);
  for (size_t i : picks) corrupt[i] = true;
  Dataset mutated(data.schema());
  for (size_t i = 0; i < data.size(); ++i) {
    Instance inst = data.instance(i);
    if (corrupt[i]) inst.label = rng.Bernoulli(positive_rate) ? 1 : 0;
    mutated.AppendUnchecked(std::move(inst));
  }
  data = std::move(mutated);
  return picks.size();
}

size_t FlipLabels(Dataset& data, double ratio, Rng& rng) {
  const std::vector<size_t> picks = SampleIndices(data.size(), ratio, rng);
  std::vector<bool> flip(data.size(), false);
  for (size_t i : picks) flip[i] = true;
  Dataset mutated(data.schema());
  for (size_t i = 0; i < data.size(); ++i) {
    Instance inst = data.instance(i);
    if (flip[i]) inst.label = 1 - inst.label;
    mutated.AppendUnchecked(std::move(inst));
  }
  data = std::move(mutated);
  return picks.size();
}

}  // namespace ctfl
