#ifndef CTFL_FL_FEDAVG_H_
#define CTFL_FL_FEDAVG_H_

#include <vector>

#include "ctfl/fl/participant.h"
#include "ctfl/nn/logical_net.h"
#include "ctfl/nn/trainer.h"

namespace ctfl {

/// FedAvg orchestration parameters (McMahan et al.).
struct FedAvgConfig {
  int rounds = 5;
  int local_epochs = 2;
  /// Local optimizer settings; its `epochs` field is overridden by
  /// `local_epochs` each round.
  TrainConfig local;
  /// Aggregate each round through pairwise-masked secure aggregation
  /// (SecureAggregator): the server only ever sees masked updates whose
  /// sum equals the true weighted sum. Numerically equivalent to plain
  /// FedAvg up to floating-point rounding.
  bool secure_aggregation = false;
  uint64_t secure_session_seed = 0xa66;
  /// Worker threads for the per-client local-training fan-out (0 =
  /// hardware concurrency, 1 = serial). Determinism contract (DESIGN.md
  /// §9): each client trains an independent copy of the global net with
  /// its own optimizer/RNG state, and updates are committed in client-
  /// index order, so the aggregated parameters — and the per-round loss
  /// stats — are bit-identical for every value of this knob.
  int num_threads = 0;
  bool verbose = false;
};

/// Per-run statistics of one RunFedAvg invocation, feeding
/// telemetry::RunTelemetry.
struct FedAvgStats {
  std::vector<telemetry::RoundTelemetry> rounds;
  /// Total grafted steps across all clients and rounds.
  int64_t grafting_steps = 0;
};

/// Runs FedAvg rounds on an existing global model: every round each
/// non-empty client trains a copy locally, and the server averages the
/// resulting parameters weighted by client data volume — the observation
/// CTFL's micro allocation scheme leans on (paper §III-C). When `stats`
/// is non-null it is filled with per-round timings and loss telemetry.
void RunFedAvg(LogicalNet& global, const std::vector<Dataset>& clients,
               const FedAvgConfig& config, FedAvgStats* stats = nullptr);

/// Builds a fresh LogicalNet and federally trains it across `clients`.
LogicalNet TrainFederated(SchemaPtr schema,
                          const LogicalNetConfig& net_config,
                          const std::vector<Dataset>& clients,
                          const FedAvgConfig& config,
                          FedAvgStats* stats = nullptr);

/// Builds a fresh LogicalNet and centrally trains it on one dataset
/// (equivalent to FedAvg with a single full-participation client; used
/// where retraining speed matters, e.g. coalition utility evaluation).
/// When `report` is non-null the TrainGrafted report is copied out.
LogicalNet TrainCentral(SchemaPtr schema, const LogicalNetConfig& net_config,
                        const Dataset& data, const TrainConfig& config,
                        TrainReport* report = nullptr);

}  // namespace ctfl

#endif  // CTFL_FL_FEDAVG_H_
