#ifndef CTFL_FL_FEDAVG_H_
#define CTFL_FL_FEDAVG_H_

#include <functional>
#include <vector>

#include "ctfl/fl/failure.h"
#include "ctfl/fl/participant.h"
#include "ctfl/nn/logical_net.h"
#include "ctfl/nn/trainer.h"
#include "ctfl/util/result.h"

namespace ctfl {

/// FedAvg orchestration parameters (McMahan et al.).
struct FedAvgConfig {
  int rounds = 5;
  int local_epochs = 2;
  /// Local optimizer settings; its `epochs` field is overridden by
  /// `local_epochs` each round and its `seed` is re-derived per (round,
  /// client) so clients with identical data never emit byte-identical
  /// updates.
  TrainConfig local;
  /// Aggregate each round through pairwise-masked secure aggregation
  /// (SecureAggregator): the server only ever sees masked updates whose
  /// sum equals the true weighted sum. Numerically equivalent to plain
  /// FedAvg up to floating-point rounding. Under partial participation
  /// the masks are derived over the surviving cohort, so a dropped
  /// client never poisons the round (DESIGN.md §11).
  bool secure_aggregation = false;
  uint64_t secure_session_seed = 0xa66;
  /// Deterministic fault schedule injected into every round: per-client
  /// dropout, straggler deadlines, corrupted (NaN) and size-mismatched
  /// uploads, all keyed by the plan's seed so faulty runs replay
  /// bit-for-bit. The default (empty) plan injects nothing and keeps the
  /// round engine on its fault-free path.
  FailurePlan failure;
  /// Upload re-attempts granted to each client per round before its
  /// update is quarantined for that round (straggler/corrupt/mismatch
  /// faults only — a dropped-out client is offline and cannot retry).
  int retry_budget = 1;
  /// Worker threads for the per-client local-training fan-out (0 =
  /// hardware concurrency, 1 = serial). Determinism contract (DESIGN.md
  /// §9): each client trains an independent copy of the global net with
  /// its own optimizer/RNG state, and updates are committed in client-
  /// index order, so the aggregated parameters — and the per-round loss
  /// stats — are bit-identical for every value of this knob.
  int num_threads = 0;
  bool verbose = false;
  /// Invoked once per completed round with that round's telemetry (wall
  /// and process-CPU seconds, loss, participation churn), before the
  /// round is appended to `stats`. Used by the CLI's `--metrics-out`
  /// JSONL snapshot writer to turn round health into a time series.
  /// Called from the orchestrating thread; may be empty.
  std::function<void(const telemetry::RoundTelemetry&)> round_observer;
  /// Invoked with the committed global model after every round: once with
  /// round = 0 and a default RoundTelemetry before the first round (the
  /// freshly initialized model — the baseline a streaming delta chain
  /// diffs against), then with round = r (1-based) after round r's
  /// parameters are committed (including fully-degraded rounds, where the
  /// model is unchanged). The reference is only valid for the duration of
  /// the call. Called from the orchestrating thread; may be empty. Used
  /// by the streaming delta-log emitter (src/ctfl/stream/).
  std::function<void(int round, const LogicalNet& global,
                     const telemetry::RoundTelemetry& rt)>
      model_observer;
};

/// Per-run statistics of one RunFedAvg invocation, feeding
/// telemetry::RunTelemetry.
struct FedAvgStats {
  std::vector<telemetry::RoundTelemetry> rounds;
  /// Total grafted steps that made it into the global model (accepted
  /// uploads only) across all clients and rounds.
  int64_t grafting_steps = 0;
  /// Participation churn totals across all rounds: clients that ended a
  /// round without an accepted upload (dropout or exhausted retries),
  /// upload re-attempts consumed, and rounds that aggregated fewer
  /// clients than the fault-free schedule would have.
  int64_t clients_dropped = 0;
  int64_t retries = 0;
  int rounds_degraded = 0;
};

/// Runs FedAvg rounds on an existing global model: every round each
/// non-empty client trains a copy locally, and the server averages the
/// resulting parameters weighted by client data volume — the observation
/// CTFL's micro allocation scheme leans on (paper §III-C). When `stats`
/// is non-null it is filled with per-round timings, loss, and
/// participation telemetry.
///
/// Fault tolerance (DESIGN.md §11): uploads are validated server-side and
/// bad ones (wrong size, non-finite coordinates, missed deadline) are
/// retried up to `config.retry_budget` times, then quarantined — the
/// round completes over the surviving cohort with re-weighted averaging
/// (and cohort-aware secure aggregation) instead of crashing or silently
/// mis-aggregating. A fully quarantined round leaves the model untouched.
/// Returns an error Status only for malformed configuration or internal
/// aggregation invariant violations; per-client faults never fail the
/// run.
Status RunFedAvg(LogicalNet& global, const std::vector<Dataset>& clients,
                 const FedAvgConfig& config, FedAvgStats* stats = nullptr);

/// Builds a fresh LogicalNet and federally trains it across `clients`.
Result<LogicalNet> TrainFederated(SchemaPtr schema,
                                  const LogicalNetConfig& net_config,
                                  const std::vector<Dataset>& clients,
                                  const FedAvgConfig& config,
                                  FedAvgStats* stats = nullptr);

/// Builds a fresh LogicalNet and centrally trains it on one dataset
/// (equivalent to FedAvg with a single full-participation client; used
/// where retraining speed matters, e.g. coalition utility evaluation).
/// When `report` is non-null the TrainGrafted report is copied out.
LogicalNet TrainCentral(SchemaPtr schema, const LogicalNetConfig& net_config,
                        const Dataset& data, const TrainConfig& config,
                        TrainReport* report = nullptr);

}  // namespace ctfl

#endif  // CTFL_FL_FEDAVG_H_
