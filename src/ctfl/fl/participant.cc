#include "ctfl/fl/participant.h"

#include "ctfl/util/logging.h"

namespace ctfl {

Federation MakeFederation(std::vector<Dataset> datasets) {
  Federation federation;
  federation.reserve(datasets.size());
  for (size_t i = 0; i < datasets.size(); ++i) {
    federation.emplace_back(static_cast<int>(i),
                            "P" + std::to_string(i),
                            std::move(datasets[i]));
  }
  return federation;
}

Dataset MergeFederation(const Federation& federation) {
  CTFL_CHECK(!federation.empty());
  Dataset merged(federation[0].data.schema());
  for (const Participant& p : federation) merged.Merge(p.data);
  return merged;
}

Dataset MergeCoalition(const Federation& federation,
                       const std::vector<int>& coalition) {
  CTFL_CHECK(!federation.empty());
  Dataset merged(federation[0].data.schema());
  for (int id : coalition) {
    CTFL_CHECK(id >= 0 && id < static_cast<int>(federation.size()));
    merged.Merge(federation[id].data);
  }
  return merged;
}

size_t FederationSize(const Federation& federation) {
  size_t total = 0;
  for (const Participant& p : federation) total += p.data.size();
  return total;
}

}  // namespace ctfl
