#ifndef CTFL_TELEMETRY_RUN_TELEMETRY_H_
#define CTFL_TELEMETRY_RUN_TELEMETRY_H_

// Structured per-run telemetry attached to CtflReport: where one CTFL
// pass (train -> trace -> allocate) spent its time and what the rule /
// tracer machinery did. This is the data behind the paper's single-pass
// efficiency claim (§III, Fig. 5) — benches and the CLI print it, and
// BENCH_*.json regressions can be argued from it.

#include <cstdint>
#include <string>
#include <vector>

namespace ctfl {
namespace telemetry {

/// One FedAvg communication round (federated training path).
struct RoundTelemetry {
  int round = 0;
  double seconds = 0.0;
  /// Mean of the accepted clients' final local training losses.
  double mean_local_loss = 0.0;
  int clients_trained = 0;
  /// Participation churn under failure injection (DESIGN.md §11):
  /// clients that ended the round without an accepted upload, upload
  /// re-attempts consumed, and whether the round aggregated a smaller
  /// cohort than scheduled. All zero/false on the fault-free path.
  int clients_dropped = 0;
  int retries = 0;
  bool degraded = false;
  /// Process CPU time the round consumed across every thread
  /// (CLOCK_PROCESS_CPUTIME_ID delta; 0 when unsupported). At most
  /// seconds * worker-threads up to clock granularity.
  double cpu_seconds = 0.0;
};

/// One local/central training epoch.
struct EpochTelemetry {
  int epoch = 0;
  double seconds = 0.0;
  double loss = 0.0;
};

/// Everything a single RunCtfl invocation reports about itself.
struct RunTelemetry {
  // ---- Training phase ----------------------------------------------------
  /// Per-round timings (federated path; empty when training centrally).
  std::vector<RoundTelemetry> rounds;
  /// Per-epoch stats of the central path (empty when federated).
  std::vector<EpochTelemetry> epochs;
  /// Total grafted gradient steps across all local/central training.
  int64_t grafting_steps = 0;
  double train_seconds = 0.0;
  double train_accuracy = 0.0;
  /// Fault-tolerance totals across all rounds (federated path; zero when
  /// training centrally or fault-free — DESIGN.md §11).
  int64_t clients_dropped = 0;
  int64_t retries = 0;
  int rounds_degraded = 0;

  // ---- Rule extraction stats (model -> traceable rule set) --------------
  int rules_total = 0;
  /// Rules with vote weight >= the tracer's min_rule_weight.
  int rules_kept = 0;
  int rules_pruned = 0;

  // ---- Tracer pass stats -------------------------------------------------
  /// Distinct (class, supporting-rule-set) tracing keys after dedup.
  int64_t trace_keys = 0;
  /// Candidate (key, training-record) pairs examined against tau_w.
  int64_t tau_w_checks = 0;
  /// Pairs that met the tau_w threshold — total related-record hits.
  int64_t related_records = 0;
  int64_t uncovered_tests = 0;
  /// Blocked-kernel work accounting (0 on the legacy scalar path):
  /// candidates the kernel actually touched (<= tau_w_checks) and
  /// 64-record blocks skipped or early-exited by pruning.
  int64_t records_scanned = 0;
  int64_t blocks_pruned = 0;
  /// Lanes re-decided by the exact scalar comparison (float-drift band).
  int64_t exact_fallbacks = 0;
  double trace_seconds = 0.0;

  // ---- Allocation phase --------------------------------------------------
  double allocate_seconds = 0.0;

  // ---- Profiling-grade breakdown (DESIGN.md §12) -------------------------
  /// Process CPU time per phase across all threads
  /// (CLOCK_PROCESS_CPUTIME_ID deltas; 0 when the platform lacks the
  /// clock). Each is bounded by the phase's wall time times the number of
  /// running threads; cpu ~= wall on a single core means the phase is
  /// compute-bound, cpu << wall means it was blocked or preempted.
  double train_cpu_seconds = 0.0;
  double trace_cpu_seconds = 0.0;
  double allocate_cpu_seconds = 0.0;
  /// getrusage(RUSAGE_SELF) view of the run: peak resident set (process
  /// high-water mark, not a delta) and context switches consumed between
  /// RunCtfl entry and exit.
  int64_t max_rss_kb = 0;
  int64_t voluntary_ctx_switches = 0;
  int64_t involuntary_ctx_switches = 0;

  double total_seconds() const {
    return train_seconds + trace_seconds + allocate_seconds;
  }
  double total_cpu_seconds() const {
    return train_cpu_seconds + trace_cpu_seconds + allocate_cpu_seconds;
  }

  /// Multi-line human-readable summary (phase table + per-round lines).
  std::string Summary() const;
};

}  // namespace telemetry
}  // namespace ctfl

#endif  // CTFL_TELEMETRY_RUN_TELEMETRY_H_
