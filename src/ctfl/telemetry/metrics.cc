#include "ctfl/telemetry/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "ctfl/util/logging.h"
#include "ctfl/util/string_util.h"

namespace ctfl {
namespace telemetry {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  CTFL_CHECK(!bounds_.empty()) << "histogram needs at least one bound";
  for (size_t i = 1; i < bounds_.size(); ++i) {
    CTFL_CHECK(bounds_[i - 1] < bounds_[i])
        << "histogram bounds must be strictly ascending";
  }
  buckets_ = std::make_unique<std::atomic<int64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double v) {
  size_t bucket = bounds_.size();  // overflow (also catches NaN/inf)
  if (std::isfinite(v)) {
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    bucket = static_cast<size_t>(it - bounds_.begin());
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  if (std::isfinite(v)) {
    // Relaxed CAS loop; contention is rare (histograms record span ends,
    // not per-record work).
    double expected = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(expected, expected + v,
                                       std::memory_order_relaxed)) {
    }
  }
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> counts(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

double Histogram::ApproxQuantile(double p) const {
  const std::vector<int64_t> counts = BucketCounts();
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  if (total == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  // Integer rank in [1, total]: p=0 resolves to the first observation's
  // bucket (not blindly bounds[0]) and no float accumulation can skip a
  // bucket.
  const int64_t target = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(p * static_cast<double>(total))));
  int64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (cumulative >= target) {
      return i < bounds_.size()
                 ? bounds_[i]
                 : std::numeric_limits<double>::infinity();
    }
  }
  return std::numeric_limits<double>::infinity();
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> Histogram::LatencyMicrosBounds() {
  // 1-2-5 decades from 1us to 1e9us (~17 minutes), 28 buckets + overflow.
  std::vector<double> bounds;
  for (double decade = 1.0; decade <= 1e9; decade *= 10.0) {
    bounds.push_back(decade);
    if (decade < 1e9) {
      bounds.push_back(decade * 2.0);
      bounds.push_back(decade * 5.0);
    }
  }
  return bounds;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

MetricsRegistry::Snapshot MetricsRegistry::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    Snapshot::HistogramData data;
    data.bounds = histogram->bounds();
    data.bucket_counts = histogram->BucketCounts();
    data.count = histogram->count();
    data.sum = histogram->sum();
    data.p50 = histogram->ApproxQuantile(0.5);
    data.p90 = histogram->ApproxQuantile(0.9);
    data.p99 = histogram->ApproxQuantile(0.99);
    snapshot.histograms[name] = std::move(data);
  }
  return snapshot;
}

std::string MetricsRegistry::SummaryTable() const {
  const Snapshot snapshot = TakeSnapshot();
  std::ostringstream out;
  for (const auto& [name, value] : snapshot.counters) {
    out << StrFormat("%-40s counter %12lld\n", name.c_str(),
                     static_cast<long long>(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out << StrFormat("%-40s gauge   %12.4f\n", name.c_str(), value);
  }
  for (const auto& [name, data] : snapshot.histograms) {
    const double mean =
        data.count > 0 ? data.sum / static_cast<double>(data.count) : 0.0;
    out << StrFormat(
        "%-40s histo   n=%-9lld sum=%-12.4g mean=%-12.2f p50<=%-10.3g "
        "p90<=%-10.3g p99<=%-10.3g\n",
        name.c_str(), static_cast<long long>(data.count), data.sum, mean,
        data.p50, data.p90, data.p99);
  }
  return out.str();
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace telemetry
}  // namespace ctfl
