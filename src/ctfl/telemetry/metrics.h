#ifndef CTFL_TELEMETRY_METRICS_H_
#define CTFL_TELEMETRY_METRICS_H_

// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms. Registration (name lookup) takes a mutex once; after that
// every update is a single relaxed atomic on the instrument itself, so the
// fast path is lock-free and safe to hammer from ThreadPool workers.
//
// Naming convention (see DESIGN.md §"Observability"): dot-separated,
// lower-case, subsystem-first — `ctfl.train.steps`, `ctfl.trace.related_records`,
// `ctfl.valuation.coalitions`, ...

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ctfl {
namespace telemetry {

/// Monotonically increasing integer metric.
class Counter {
 public:
  void Add(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins floating-point metric.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts observations v with
/// v <= bounds[i] (first matching bound); values above the last bound —
/// and non-finite values — land in the implicit overflow bucket.
/// Observe() is lock-free: a branchless binary search plus two relaxed
/// fetch_adds and one CAS loop for the running sum.
class Histogram {
 public:
  /// `bounds` must be non-empty and strictly ascending (checked).
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const {
    const int64_t n = count();
    return n > 0 ? sum() / static_cast<double>(n) : 0.0;
  }

  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  std::vector<int64_t> BucketCounts() const;

  /// Upper bound of the bucket containing the p-quantile (p clamped to
  /// [0,1]). Returns +inf when the quantile falls in the overflow bucket,
  /// 0 when the histogram is empty. Safe against concurrent Observe()
  /// racing the bucket scan: the target rank is derived from the same
  /// bucket snapshot that is scanned, never from the live count.
  double ApproxQuantile(double p) const;

  void Reset();

  /// Default bounds for microsecond-scale latency metrics: 1us..~1000s in
  /// roughly 1-2-5 decades.
  static std::vector<double> LatencyMicrosBounds();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<int64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Owns all instruments; instruments live for the process lifetime, so a
/// reference obtained once may be cached (e.g. in a function-local static)
/// and updated without ever touching the registry again.
class MetricsRegistry {
 public:
  /// The process-wide registry.
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create; thread-safe. The returned reference is stable.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  /// `bounds` is only used on first registration; later callers get the
  /// existing histogram regardless of the bounds they pass.
  Histogram& GetHistogram(
      const std::string& name,
      std::vector<double> bounds = Histogram::LatencyMicrosBounds());

  /// Point-in-time copy of every instrument's value, for export.
  struct Snapshot {
    std::map<std::string, int64_t> counters;
    std::map<std::string, double> gauges;
    struct HistogramData {
      std::vector<double> bounds;
      std::vector<int64_t> bucket_counts;
      int64_t count = 0;
      double sum = 0.0;
      double p50 = 0.0;
      double p90 = 0.0;
      double p99 = 0.0;
    };
    std::map<std::string, HistogramData> histograms;
  };
  Snapshot TakeSnapshot() const;

  /// Human-readable dump of all instruments (one line each).
  std::string SummaryTable() const;

  /// Zeroes every instrument (names stay registered). Test-only in spirit.
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace telemetry
}  // namespace ctfl

#endif  // CTFL_TELEMETRY_METRICS_H_
