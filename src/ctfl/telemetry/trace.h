#ifndef CTFL_TELEMETRY_TRACE_H_
#define CTFL_TELEMETRY_TRACE_H_

// RAII span tracing with a bounded in-memory buffer and Chrome
// `chrome://tracing` / Perfetto JSON export (the `trace_event` "X"
// complete-event format).
//
// Tracing is disabled by default: a disabled Span construction is a single
// relaxed atomic load + branch (verified by BM_SpanDisabled in
// bench/micro_benchmarks.cc and tools/check_telemetry_overhead.sh).
// Span names must be string literals (or otherwise outlive the buffer);
// they are stored by pointer.

#include <cstdint>
#include <string>
#include <vector>

#include "ctfl/telemetry/metrics.h"
#include "ctfl/util/status.h"
#include "ctfl/util/stopwatch.h"

namespace ctfl {
namespace telemetry {

/// One completed span, Chrome trace_event "X" style.
struct TraceEvent {
  const char* name = nullptr;
  int64_t start_us = 0;  ///< microseconds since process trace epoch
  int64_t duration_us = 0;
  /// CPU time the span's own thread consumed inside the span
  /// (CLOCK_THREAD_CPUTIME_ID delta; 0 when the platform lacks the
  /// clock). cpu_us <= duration_us up to scheduler/clock granularity —
  /// a large gap means the span was blocked or preempted, not working.
  int64_t cpu_us = 0;
  int tid = 0;     ///< small dense thread id (not the OS tid)
  int depth = 0;   ///< nesting depth on its thread at the time
};

/// Turns span recording on/off process-wide. Off by default.
void SetTracingEnabled(bool enabled);
bool TracingEnabled();

/// Microseconds since the process trace epoch (first use).
int64_t TraceClockMicros();

/// Small dense id for the calling thread (0, 1, 2, ... in first-seen
/// order); stable for the thread's lifetime.
int CurrentTraceThreadId();

/// Clears buffered events and the drop counter (capacity is kept).
void ClearTrace();
/// Max buffered events before new spans are counted as dropped (default
/// 65536). Shrinking below the current size drops the tail.
void SetTraceCapacity(size_t capacity);
size_t TraceEventCount();
size_t DroppedSpanCount();
/// Copy of the buffered events (test/export use).
std::vector<TraceEvent> TraceEvents();

/// Serializes the buffer as Chrome trace JSON:
/// {"traceEvents":[{"name":...,"ph":"X","ts":...,"dur":...,"pid":1,
///   "tid":...,"cat":"ctfl","args":{"depth":...,"cpu_us":...}}, ...],
///  "displayTimeUnit":"ms"}.
std::string ChromeTraceJson();
/// Writes ChromeTraceJson() to `path`.
Status WriteChromeTrace(const std::string& path);

/// Plain-text aggregation of the buffer: per span name — count, total ms,
/// mean ms, min/max ms — sorted by total descending.
std::string TraceSummaryTable();

/// RAII span. Construction snapshots the trace clock; destruction appends
/// a TraceEvent to the bounded buffer. No-op (one atomic load) when
/// tracing is disabled at construction time.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Ends the span now (records the event); idempotent. Lets one function
  /// time consecutive sections without artificial scopes.
  void End();

  bool active() const { return active_; }

 private:
  const char* name_;
  Stopwatch watch_;
  int64_t start_us_ = 0;
  int64_t start_cpu_us_ = 0;
  bool active_ = false;
};

/// RAII timer that feeds elapsed time into a histogram (microseconds) or
/// accumulates seconds into a caller-owned double — always on, for code
/// that wants timings independent of the tracing switch.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram_micros)
      : histogram_(histogram_micros) {}
  explicit ScopedTimer(double* accumulate_seconds)
      : seconds_out_(accumulate_seconds) {}
  ~ScopedTimer() {
    if (histogram_ != nullptr) {
      histogram_->Observe(static_cast<double>(watch_.ElapsedMicros()));
    }
    if (seconds_out_ != nullptr) *seconds_out_ += watch_.ElapsedSeconds();
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Stopwatch watch_;
  Histogram* histogram_ = nullptr;
  double* seconds_out_ = nullptr;
};

}  // namespace telemetry
}  // namespace ctfl

// Convenience: `CTFL_SPAN("ctfl.trace.pass");` — names a unique local.
#define CTFL_SPAN_CONCAT_INNER(a, b) a##b
#define CTFL_SPAN_CONCAT(a, b) CTFL_SPAN_CONCAT_INNER(a, b)
#define CTFL_SPAN(name) \
  ::ctfl::telemetry::Span CTFL_SPAN_CONCAT(ctfl_span_, __COUNTER__)(name)

#endif  // CTFL_TELEMETRY_TRACE_H_
