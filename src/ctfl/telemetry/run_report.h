#ifndef CTFL_TELEMETRY_RUN_REPORT_H_
#define CTFL_TELEMETRY_RUN_REPORT_H_

// Structured, machine-readable run report (DESIGN.md §12): one JSON
// document per CTFL run carrying the run's identity (fingerprints), its
// per-phase wall/CPU breakdown, kernel counters, and resource footprint.
// Benches and the perf gate consume these instead of scraping stdout.
//
// The writer emits doubles with %.17g and fingerprints as hex strings,
// and ParseRunReportJson reverses both losslessly, so a written report
// parses back *bit-exactly* (pinned by tests/run_report_test.cc).

#include <cstdint>
#include <string>

#include "ctfl/telemetry/run_telemetry.h"
#include "ctfl/util/result.h"

namespace ctfl {
namespace telemetry {

/// Everything a RunReport says about one RunCtfl invocation.
struct RunReport {
  /// Format version of the JSON document; bump on breaking changes.
  int schema_version = 1;

  // ---- Run identity ------------------------------------------------------
  /// Fingerprint of the whole run setup: config digest mixed with the
  /// data-shape fingerprints below. Two runs with equal fingerprints are
  /// expected to reproduce each other's scores bit-for-bit.
  uint64_t run_fingerprint = 0;
  /// Digest over the semantic CtflConfig knobs (net shape, seeds,
  /// rounds/epochs, tau_w, ...). Thread counts and the trace-kernel
  /// selector are excluded: they never change results (DESIGN.md §9/§10).
  uint64_t config_digest = 0;
  /// SchemaFingerprint of the federation's feature schema.
  uint64_t schema_fingerprint = 0;
  /// FailurePlan::Fingerprint() of the fault schedule (0 = fault-free).
  uint64_t failure_plan_fingerprint = 0;
  /// "release" or "debug" (BuildTypeName()) — perf numbers from debug
  /// builds must never enter a trajectory.
  std::string build_type;
  /// SIMD tier the trace kernel ran with ("scalar", "avx2", ...). Pure
  /// execution context, like build_type: not part of the run fingerprint
  /// (results are bit-identical across tiers), but recorded so perf
  /// numbers are only ever compared like-for-like.
  std::string trace_isa;

  // ---- Run shape + outcome ----------------------------------------------
  bool federated = true;
  int num_participants = 0;
  int64_t train_records = 0;
  int64_t test_records = 0;
  double test_accuracy = 0.0;

  /// Full phase/round/kernel telemetry, including the per-phase CPU
  /// breakdown and rusage footprint.
  RunTelemetry telemetry;
};

/// Serializes `report` as a self-contained JSON document.
std::string RunReportJson(const RunReport& report);

/// Writes RunReportJson() to `path`.
Status WriteRunReport(const RunReport& report, const std::string& path);

/// Parses a document produced by RunReportJson(); unknown fields are
/// ignored, missing fields keep their defaults (forward compatibility).
Result<RunReport> ParseRunReportJson(const std::string& json);

/// Reads `path` and parses it.
Result<RunReport> ReadRunReport(const std::string& path);

}  // namespace telemetry
}  // namespace ctfl

#endif  // CTFL_TELEMETRY_RUN_REPORT_H_
