#ifndef CTFL_TELEMETRY_EXPOSITION_H_
#define CTFL_TELEMETRY_EXPOSITION_H_

// Metrics exposition (DESIGN.md §12): Prometheus text-format export of
// the MetricsRegistry and a JSONL snapshot writer that turns round
// health (clients_dropped, retries, degraded, ...) into a time series —
// one line per federated round — instead of a single end-of-run total.

#include <fstream>
#include <string>

#include "ctfl/telemetry/metrics.h"
#include "ctfl/telemetry/run_telemetry.h"
#include "ctfl/util/status.h"

namespace ctfl {
namespace telemetry {

/// Renders `snapshot` in the Prometheus text exposition format
/// (version 0.0.4): counters and gauges as single samples, histograms as
/// cumulative `_bucket{le="..."}` series plus `_sum`/`_count`, and the
/// approximate p50/p90/p99 as `{quantile="..."}` samples. Metric names
/// are sanitized (dots and other invalid characters become underscores),
/// e.g. `ctfl.train.steps` -> `ctfl_train_steps`.
std::string PrometheusText(const MetricsRegistry::Snapshot& snapshot);

/// Convenience: snapshot + render the process-wide registry.
std::string PrometheusText();

/// Sanitized Prometheus metric name for a registry instrument name.
std::string PrometheusMetricName(const std::string& name);

/// Appends point-in-time metric snapshots to a JSONL file: one JSON
/// object per line, each carrying a monotone sequence number, a label,
/// optional per-round telemetry, and the registry's counters/gauges plus
/// histogram digests (count/sum/p50/p90/p99). Lines are flushed as they
/// are written so a crashed run keeps every completed round.
class MetricsSnapshotWriter {
 public:
  /// Opens `path` for writing (truncates). Check status() before use.
  explicit MetricsSnapshotWriter(const std::string& path);

  MetricsSnapshotWriter(const MetricsSnapshotWriter&) = delete;
  MetricsSnapshotWriter& operator=(const MetricsSnapshotWriter&) = delete;

  /// Open/write health of the underlying stream.
  const Status& status() const { return status_; }
  int snapshots_written() const { return sequence_; }

  /// One snapshot line labeled with a federated round's telemetry.
  Status WriteRound(const RoundTelemetry& round);
  /// One snapshot line with a free-form label ("final", "start", ...).
  Status WriteLabeled(const std::string& label);

 private:
  Status WriteLine(const std::string& label, const RoundTelemetry* round);

  std::ofstream out_;
  std::string path_;
  Status status_;
  int sequence_ = 0;
};

}  // namespace telemetry
}  // namespace ctfl

#endif  // CTFL_TELEMETRY_EXPOSITION_H_
