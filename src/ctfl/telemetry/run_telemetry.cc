#include "ctfl/telemetry/run_telemetry.h"

#include <sstream>

#include "ctfl/util/string_util.h"

namespace ctfl {
namespace telemetry {

std::string RunTelemetry::Summary() const {
  std::ostringstream out;
  const double total = total_seconds();
  const auto share = [total](double s) {
    return total > 0.0 ? 100.0 * s / total : 0.0;
  };
  out << "phase        seconds    cpu_s    share\n";
  out << StrFormat("train       %8.3f %8.3f   %5.1f%%\n", train_seconds,
                   train_cpu_seconds, share(train_seconds));
  out << StrFormat("trace       %8.3f %8.3f   %5.1f%%\n", trace_seconds,
                   trace_cpu_seconds, share(trace_seconds));
  out << StrFormat("allocate    %8.3f %8.3f   %5.1f%%\n", allocate_seconds,
                   allocate_cpu_seconds, share(allocate_seconds));
  out << StrFormat("total       %8.3f %8.3f\n", total, total_cpu_seconds());
  if (max_rss_kb > 0 || voluntary_ctx_switches > 0 ||
      involuntary_ctx_switches > 0) {
    out << StrFormat(
        "resources: max_rss=%lldkB ctx_switches=%lld voluntary, "
        "%lld involuntary\n",
        static_cast<long long>(max_rss_kb),
        static_cast<long long>(voluntary_ctx_switches),
        static_cast<long long>(involuntary_ctx_switches));
  }

  out << StrFormat(
      "train: %lld grafting steps, accuracy %.4f\n",
      static_cast<long long>(grafting_steps), train_accuracy);
  if (!rounds.empty()) {
    for (const RoundTelemetry& r : rounds) {
      out << StrFormat(
          "  round %-3d %7.3fs  mean local loss %.4f  (%d clients)",
          r.round, r.seconds, r.mean_local_loss, r.clients_trained);
      if (r.degraded || r.retries > 0) {
        out << StrFormat("  [degraded: %d dropped, %d retries]",
                         r.clients_dropped, r.retries);
      }
      out << "\n";
    }
    out << StrFormat(
        "faults: clients_dropped=%lld retries=%lld rounds_degraded=%d\n",
        static_cast<long long>(clients_dropped),
        static_cast<long long>(retries), rounds_degraded);
  } else if (!epochs.empty()) {
    // Epoch lines can be numerous; print first/last plus count.
    const EpochTelemetry& first = epochs.front();
    const EpochTelemetry& last = epochs.back();
    out << StrFormat(
        "  %zu central epochs: loss %.4f (epoch %d) -> %.4f (epoch %d)\n",
        epochs.size(), first.loss, first.epoch, last.loss, last.epoch);
  }
  out << StrFormat("rules: %d total, %d kept, %d pruned\n", rules_total,
                   rules_kept, rules_pruned);
  out << StrFormat(
      "trace: %lld keys, %lld tau_w checks, %lld related hits, "
      "%lld uncovered tests\n",
      static_cast<long long>(trace_keys),
      static_cast<long long>(tau_w_checks),
      static_cast<long long>(related_records),
      static_cast<long long>(uncovered_tests));
  if (records_scanned > 0 || blocks_pruned > 0) {
    out << StrFormat(
        "trace kernel: %lld records scanned, %lld blocks pruned, "
        "%lld exact fallbacks\n",
        static_cast<long long>(records_scanned),
        static_cast<long long>(blocks_pruned),
        static_cast<long long>(exact_fallbacks));
  }
  return out.str();
}

}  // namespace telemetry
}  // namespace ctfl
